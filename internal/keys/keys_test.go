package keys

import (
	"bytes"
	"testing"

	"alwaysencrypted/internal/aecrypto"
)

func newVaultWithKey(t *testing.T, path string) *MemoryVault {
	t.Helper()
	v := NewMemoryVault(ProviderVault)
	if _, err := v.CreateKey(path); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestProvisionCMKSignatureVerifies(t *testing.T) {
	v := newVaultWithKey(t, "https://vault.example/keys/cmk1")
	cmk, err := ProvisionCMK(v, "MyCMK", "https://vault.example/keys/cmk1", true)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := v.PublicKey(cmk.KeyPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmk.Verify(pub); err != nil {
		t.Fatal(err)
	}
}

// TestCMKMetadataTamperDetected is the §2.2 attack: the untrusted server
// flips EnclaveEnabled to sneak a CEK into the enclave; the client-side
// signature check must catch it.
func TestCMKMetadataTamperDetected(t *testing.T) {
	v := newVaultWithKey(t, "p")
	cmk, err := ProvisionCMK(v, "MyCMK", "p", false)
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := v.PublicKey("p")

	tampered := *cmk
	tampered.EnclaveEnabled = true
	if err := tampered.Verify(pub); err == nil {
		t.Fatal("flipping EnclaveEnabled was not detected")
	}
	tampered = *cmk
	tampered.KeyPath = "https://attacker.example/keys/evil"
	if err := tampered.Verify(pub); err == nil {
		t.Fatal("changing KeyPath was not detected")
	}
	tampered = *cmk
	tampered.Name = "OtherCMK"
	if err := tampered.Verify(pub); err == nil {
		t.Fatal("changing Name was not detected")
	}
}

func TestProvisionCEKRoundTrip(t *testing.T) {
	v := newVaultWithKey(t, "p")
	cmk, _ := ProvisionCMK(v, "MyCMK", "p", true)
	cek, root, err := ProvisionCEK(v, cmk, "MyCEK")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != aecrypto.KeySize {
		t.Fatalf("root size = %d", len(root))
	}
	val := cek.PrimaryValue()
	if val == nil || val.Algorithm != aecrypto.CEKWrapAlgorithm {
		t.Fatalf("bad primary value: %+v", val)
	}
	got, err := v.Unwrap(cmk.KeyPath, val.EncryptedValue)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, root) {
		t.Fatal("unwrapped CEK differs from provisioned root")
	}
	pub, _ := v.PublicKey("p")
	if err := aecrypto.VerifySignature(pub, val.EncryptedValue, val.Signature); err != nil {
		t.Fatalf("CEK value signature: %v", err)
	}
}

func TestCMKRotationDualWrapWindow(t *testing.T) {
	v := NewMemoryVault(ProviderVault)
	v.CreateKey("old")
	v.CreateKey("new")
	oldCMK, _ := ProvisionCMK(v, "OldCMK", "old", true)
	newCMK, _ := ProvisionCMK(v, "NewCMK", "new", true)
	cek, root, err := ProvisionCEK(v, oldCMK, "MyCEK")
	if err != nil {
		t.Fatal(err)
	}

	if err := BeginCMKRotation(v, cek, oldCMK, newCMK); err != nil {
		t.Fatal(err)
	}
	if len(cek.Values) != 2 {
		t.Fatalf("expected dual wrap, got %d values", len(cek.Values))
	}
	// During the window both CMKs can recover the same root.
	for _, tc := range []struct{ cmk *CMKMetadata }{{oldCMK}, {newCMK}} {
		val, ok := cek.ValueFor(tc.cmk.Name)
		if !ok {
			t.Fatalf("missing value for %s", tc.cmk.Name)
		}
		got, err := v.Unwrap(tc.cmk.KeyPath, val.EncryptedValue)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, root) {
			t.Fatalf("root recovered via %s differs", tc.cmk.Name)
		}
	}

	if err := CompleteCMKRotation(cek, "NewCMK"); err != nil {
		t.Fatal(err)
	}
	if len(cek.Values) != 1 || cek.Values[0].CMKName != "NewCMK" {
		t.Fatalf("rotation not completed: %+v", cek.Values)
	}
	if _, ok := cek.ValueFor("OldCMK"); ok {
		t.Fatal("old wrap survived CompleteCMKRotation")
	}
}

func TestCompleteCMKRotationUnknownCMK(t *testing.T) {
	cek := &CEKMetadata{Name: "k", Values: []CEKValue{{CMKName: "A"}}}
	if err := CompleteCMKRotation(cek, "B"); err == nil {
		t.Fatal("expected error for unknown CMK")
	}
}

func TestBeginCMKRotationMissingOldValue(t *testing.T) {
	v := NewMemoryVault(ProviderVault)
	v.CreateKey("old")
	v.CreateKey("new")
	oldCMK, _ := ProvisionCMK(v, "OldCMK", "old", true)
	newCMK, _ := ProvisionCMK(v, "NewCMK", "new", true)
	cek := &CEKMetadata{Name: "k", Values: []CEKValue{{CMKName: "Unrelated"}}}
	if err := BeginCMKRotation(v, cek, oldCMK, newCMK); err == nil {
		t.Fatal("expected error when CEK has no value under old CMK")
	}
}

func TestProviderRegistry(t *testing.T) {
	r := NewProviderRegistry()
	v := NewMemoryVault(ProviderVault)
	r.Register(v)
	got, err := r.Lookup(ProviderVault)
	if err != nil || got != Provider(v) {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := r.Lookup("NOPE"); err == nil {
		t.Fatal("expected error for unknown provider")
	}
}

func TestVaultKeyNotFound(t *testing.T) {
	v := NewMemoryVault(ProviderVault)
	if _, err := v.PublicKey("missing"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := v.Unwrap("missing", nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := v.Sign("missing", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestVaultCallCounting(t *testing.T) {
	v := newVaultWithKey(t, "p")
	before := v.Calls()
	v.PublicKey("p")
	v.PublicKey("p")
	if got := v.Calls() - before; got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
}

func TestVaultDeleteKey(t *testing.T) {
	v := newVaultWithKey(t, "p")
	v.DeleteKey("p")
	if _, err := v.PublicKey("p"); err == nil {
		t.Fatal("key still present after delete")
	}
}

func TestVaultZeroizeRetiresKeys(t *testing.T) {
	v := newVaultWithKey(t, "p")
	v.mu.RLock()
	key := v.keys["p"]
	v.mu.RUnlock()
	if key == nil || key.D.Sign() == 0 {
		t.Fatal("sanity: vault key missing or degenerate before Zeroize")
	}

	v.Zeroize()

	// The vault forgot the key entirely...
	if _, err := v.PublicKey("p"); err == nil {
		t.Fatal("key still resolvable after Zeroize")
	}
	if _, err := v.Unwrap("p", nil); err == nil {
		t.Fatal("Unwrap still works after Zeroize")
	}
	// ...and any alias to the old key object lost its private components,
	// so a retained pointer cannot be used to unwrap CEKs either.
	if key.D.Sign() != 0 {
		t.Fatal("private exponent not wiped by Zeroize")
	}
	if key.Primes != nil {
		t.Fatal("prime factors not dropped by Zeroize")
	}
	if key.Precomputed.Dp != nil {
		t.Fatal("CRT precomputation not dropped by Zeroize")
	}

	// A zeroized vault stays usable for fresh keys (rotation re-provisions).
	if _, err := v.CreateKey("q"); err != nil {
		t.Fatalf("CreateKey after Zeroize: %v", err)
	}
	if _, err := v.PublicKey("q"); err != nil {
		t.Fatalf("fresh key not resolvable after Zeroize: %v", err)
	}
}

// Package keys implements the two-level Always Encrypted key hierarchy of
// §2.2: column master keys (CMKs) held in client-controlled key providers,
// and column encryption keys (CEKs) stored in the database wrapped under a
// CMK with RSA-OAEP. CMK metadata carries an enclave-computations signature
// made with the CMK itself, so the untrusted server cannot flip the
// enclave-enabled bit; wrapped CEK values are likewise signed.
package keys

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"sync"

	"alwaysencrypted/internal/aecrypto"
)

// Provider names supported out of the box (§2.2 lists Azure Key Vault, the
// Windows certificate store, Java Key Store and HSM-rooted stores; this
// reproduction ships an in-memory vault and a local store and keeps the
// interface open for custom providers).
const (
	ProviderVault      = "AZURE_KEY_VAULT_PROVIDER"
	ProviderLocalStore = "LOCAL_CERTIFICATE_STORE"
)

// Errors surfaced by key operations.
var (
	ErrKeyNotFound        = errors.New("keys: key not found in provider")
	ErrUntrustedSignature = errors.New("keys: CMK metadata signature invalid (possible server tampering)")
	ErrNotEnclaveEnabled  = errors.New("keys: CEK is not enclave-enabled")
)

// CMKMetadata is what the database stores about a column master key: only a
// URI reference into the key provider, never the key material, plus the
// signature that binds the enclave-computations setting to the key itself.
type CMKMetadata struct {
	Name           string
	ProviderName   string
	KeyPath        string
	EnclaveEnabled bool
	// Signature is an RSA-PSS signature over SignedPayload() made with the
	// CMK private key (the SIGNATURE in ENCLAVE_COMPUTATIONS, Figure 1).
	Signature []byte
}

// SignedPayload is the byte string covered by the metadata signature. It
// binds name, provider, path and the enclave flag, so the server cannot use
// a CEK in the enclave when the client disallowed it (§2.2).
func (m *CMKMetadata) SignedPayload() []byte {
	flag := byte(0)
	if m.EnclaveEnabled {
		flag = 1
	}
	payload := make([]byte, 0, len(m.Name)+len(m.ProviderName)+len(m.KeyPath)+8)
	payload = append(payload, "CMK-METADATA\x00"...)
	payload = append(payload, m.Name...)
	payload = append(payload, 0)
	payload = append(payload, m.ProviderName...)
	payload = append(payload, 0)
	payload = append(payload, m.KeyPath...)
	payload = append(payload, 0, flag)
	return payload
}

// Verify checks the metadata signature against the CMK public key.
func (m *CMKMetadata) Verify(pub *rsa.PublicKey) error {
	if err := aecrypto.VerifySignature(pub, m.SignedPayload(), m.Signature); err != nil {
		return ErrUntrustedSignature
	}
	return nil
}

// CEKMetadata is what the database stores about a column encryption key: the
// wrapping CMK, the RSA-OAEP encrypted value and a signature over it. During
// a CMK rotation a CEK may temporarily carry two encrypted values, one per
// CMK, so clients holding either CMK keep working with no downtime (§2.4.2).
type CEKMetadata struct {
	Name   string
	Values []CEKValue
}

// CEKValue is one (CMK, encrypted CEK) binding.
type CEKValue struct {
	CMKName        string
	Algorithm      string // always RSA_OAEP today, declared for extensibility
	EncryptedValue []byte
	Signature      []byte // RSA-PSS over the encrypted value, by the CMK
}

// PrimaryValue returns the first (current) value; CEKs always have at least
// one value.
func (m *CEKMetadata) PrimaryValue() *CEKValue {
	if len(m.Values) == 0 {
		return nil
	}
	return &m.Values[0]
}

// ValueFor returns the encrypted value wrapped under the named CMK, if any.
func (m *CEKMetadata) ValueFor(cmkName string) (*CEKValue, bool) {
	for i := range m.Values {
		if m.Values[i].CMKName == cmkName {
			return &m.Values[i], true
		}
	}
	return nil, false
}

// Provider is the extensible key-provider interface of §2.2. Providers hold
// CMK material; the database only ever sees KeyPath strings.
type Provider interface {
	// Name reports the provider name used in CMK metadata.
	Name() string
	// PublicKey fetches the public half of the CMK at path.
	PublicKey(path string) (*rsa.PublicKey, error)
	// Unwrap decrypts a wrapped CEK using the CMK at path. Only trusted
	// client-side components call this.
	Unwrap(path string, wrapped []byte) ([]byte, error)
	// Sign signs a payload with the CMK at path (used for metadata and CEK
	// value signatures during provisioning).
	Sign(path string, payload []byte) ([]byte, error)
}

// MemoryVault is an in-memory key provider standing in for Azure Key Vault.
// A configurable per-call latency models the network round trip to a real
// vault, which is what makes driver-side CEK caching measurable (§4.1).
type MemoryVault struct {
	name    string
	mu      sync.RWMutex
	keys    map[string]*rsa.PrivateKey
	latency func() // optional call-latency hook
	calls   int
}

// NewMemoryVault creates an empty vault with the given provider name.
func NewMemoryVault(name string) *MemoryVault {
	return &MemoryVault{name: name, keys: make(map[string]*rsa.PrivateKey)}
}

// SetLatency installs a hook invoked on every vault operation, modelling
// network latency to an external provider.
func (v *MemoryVault) SetLatency(f func()) { v.latency = f }

// Calls reports how many vault operations have been performed; tests use it
// to prove the driver's CEK cache avoids repeated round trips.
func (v *MemoryVault) Calls() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.calls
}

// CreateKey generates and stores a fresh CMK at path, returning its public key.
func (v *MemoryVault) CreateKey(path string) (*rsa.PublicKey, error) {
	key, err := aecrypto.GenerateRSAKey()
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.keys[path] = key
	return &key.PublicKey, nil
}

// ImportKey stores an existing private key at path.
func (v *MemoryVault) ImportKey(path string, key *rsa.PrivateKey) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.keys[path] = key
}

// DeleteKey removes the key at path (used by tests to model revocation).
func (v *MemoryVault) DeleteKey(path string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.keys, path)
}

// Zeroize retires every CMK in the vault: private components are wiped and
// the map is reset, so a decommissioned vault cannot unwrap CEKs even if its
// heap is later exposed. This is the Zeroize-on-evict path the secretretain
// analyzer requires of any long-lived container of key material.
func (v *MemoryVault) Zeroize() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, k := range v.keys {
		zeroizeRSA(k)
	}
	v.keys = make(map[string]*rsa.PrivateKey)
}

// zeroizeRSA clears the private components of an RSA key in place. big.Int
// cannot guarantee its old limbs are wiped, so this is best-effort hygiene:
// after the call the key can no longer sign or unwrap, and the precomputed
// CRT values — the fast path an attacker would actually lift — are dropped.
func zeroizeRSA(k *rsa.PrivateKey) {
	if k == nil {
		return
	}
	if k.D != nil {
		k.D.SetInt64(0)
	}
	for _, p := range k.Primes {
		if p != nil {
			p.SetInt64(0)
		}
	}
	k.Primes = nil
	k.Precomputed = rsa.PrecomputedValues{}
}

func (v *MemoryVault) get(path string) (*rsa.PrivateKey, error) {
	v.mu.Lock()
	v.calls++
	key, ok := v.keys[path]
	v.mu.Unlock()
	if v.latency != nil {
		v.latency()
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s %s", ErrKeyNotFound, v.name, path)
	}
	return key, nil
}

// Name implements Provider.
func (v *MemoryVault) Name() string { return v.name }

// PublicKey implements Provider.
func (v *MemoryVault) PublicKey(path string) (*rsa.PublicKey, error) {
	key, err := v.get(path)
	if err != nil {
		return nil, err
	}
	return &key.PublicKey, nil
}

// Unwrap implements Provider.
func (v *MemoryVault) Unwrap(path string, wrapped []byte) ([]byte, error) {
	key, err := v.get(path)
	if err != nil {
		return nil, err
	}
	return aecrypto.UnwrapKey(key, wrapped)
}

// Sign implements Provider.
func (v *MemoryVault) Sign(path string, payload []byte) ([]byte, error) {
	key, err := v.get(path)
	if err != nil {
		return nil, err
	}
	return aecrypto.Sign(key, payload)
}

// ProviderRegistry maps provider names to implementations; the client driver
// consults it when resolving CMK metadata returned by the server.
type ProviderRegistry struct {
	mu        sync.RWMutex
	providers map[string]Provider
}

// NewProviderRegistry returns an empty registry.
func NewProviderRegistry() *ProviderRegistry {
	return &ProviderRegistry{providers: make(map[string]Provider)}
}

// Register adds or replaces a provider.
func (r *ProviderRegistry) Register(p Provider) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers[p.Name()] = p
}

// Lookup finds a provider by name.
func (r *ProviderRegistry) Lookup(name string) (Provider, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.providers[name]
	if !ok {
		return nil, fmt.Errorf("keys: no provider registered for %q", name)
	}
	return p, nil
}

// ProvisionCMK creates CMK metadata for the key at path in provider p,
// signing the metadata with the key itself. This is the tooling automation
// behind CREATE COLUMN MASTER KEY (§2.4.1).
func ProvisionCMK(p Provider, name, path string, enclaveEnabled bool) (*CMKMetadata, error) {
	m := &CMKMetadata{
		Name:           name,
		ProviderName:   p.Name(),
		KeyPath:        path,
		EnclaveEnabled: enclaveEnabled,
	}
	sig, err := p.Sign(path, m.SignedPayload())
	if err != nil {
		return nil, fmt.Errorf("keys: signing CMK metadata: %w", err)
	}
	m.Signature = sig
	return m, nil
}

// ProvisionCEK generates a fresh CEK root, wraps it under the given CMK and
// signs the wrapped value, producing the metadata for CREATE COLUMN
// ENCRYPTION KEY. The plaintext root is returned to the caller (the client
// tool) and never stored server-side.
func ProvisionCEK(p Provider, cmk *CMKMetadata, name string) (*CEKMetadata, []byte, error) {
	root, err := aecrypto.GenerateKey()
	if err != nil {
		return nil, nil, err
	}
	meta, err := WrapCEK(p, cmk, name, root)
	if err != nil {
		// The generated root is real key material even on the failure
		// path; wipe it before surfacing the wrap error.
		aecrypto.Zeroize(root)
		return nil, nil, err
	}
	return meta, root, nil
}

// WrapCEK wraps an existing CEK root under a CMK (used by rotation, where the
// root must be preserved while the wrapping changes).
func WrapCEK(p Provider, cmk *CMKMetadata, name string, root []byte) (*CEKMetadata, error) {
	val, err := wrapValue(p, cmk, root)
	if err != nil {
		return nil, err
	}
	return &CEKMetadata{Name: name, Values: []CEKValue{*val}}, nil
}

func wrapValue(p Provider, cmk *CMKMetadata, root []byte) (*CEKValue, error) {
	pub, err := p.PublicKey(cmk.KeyPath)
	if err != nil {
		return nil, err
	}
	wrapped, err := aecrypto.WrapKey(pub, root)
	if err != nil {
		return nil, err
	}
	sig, err := p.Sign(cmk.KeyPath, wrapped)
	if err != nil {
		return nil, err
	}
	return &CEKValue{
		CMKName:        cmk.Name,
		Algorithm:      aecrypto.CEKWrapAlgorithm,
		EncryptedValue: wrapped,
		Signature:      sig,
	}, nil
}

// BeginCMKRotation adds a second encrypted value (under newCMK) to the CEK,
// leaving the old value in place so clients holding either CMK can operate
// during the rotation window (§2.4.2). The plaintext root is recovered via
// the old CMK, re-wrapped, and zeroed before return.
func BeginCMKRotation(p Provider, cek *CEKMetadata, oldCMK, newCMK *CMKMetadata) error {
	oldVal, ok := cek.ValueFor(oldCMK.Name)
	if !ok {
		return fmt.Errorf("keys: CEK %s has no value under CMK %s", cek.Name, oldCMK.Name)
	}
	root, err := p.Unwrap(oldCMK.KeyPath, oldVal.EncryptedValue)
	if err != nil {
		return fmt.Errorf("keys: unwrapping CEK for rotation: %w", err)
	}
	defer aecrypto.Zeroize(root)
	newVal, err := wrapValue(p, newCMK, root)
	if err != nil {
		return err
	}
	cek.Values = append(cek.Values, *newVal)
	return nil
}

// CompleteCMKRotation drops all values except the one under keepCMK, ending
// the dual-wrap window.
func CompleteCMKRotation(cek *CEKMetadata, keepCMK string) error {
	val, ok := cek.ValueFor(keepCMK)
	if !ok {
		return fmt.Errorf("keys: CEK %s has no value under CMK %s", cek.Name, keepCMK)
	}
	cek.Values = []CEKValue{*val}
	return nil
}

package attestation

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"testing"

	"alwaysencrypted/internal/aecrypto"
)

// testFixture wires up a full attestation chain: HGS, a registered host, and
// a synthetic enclave identity, mirroring what the enclave package does.
type testFixture struct {
	hgs        *HGS
	host       *Host
	enclaveRSA *enclaveIdentity
	policy     Policy
}

type enclaveIdentity struct {
	keyDER   []byte
	dhPriv   *ecdh.PrivateKey
	report   Report
	signKey  func(msg []byte) []byte
	authorID Measurement
}

func newFixture(t *testing.T) *testFixture {
	t.Helper()
	hgs, err := NewHGS()
	if err != nil {
		t.Fatal(err)
	}
	tcg := []byte("boot-sequence: uefi -> hyperv 10.0")
	host, err := NewHost(tcg, 10)
	if err != nil {
		t.Fatal(err)
	}
	hgs.RegisterHost(tcg)

	// Synthetic enclave identity: RSA keypair at load + ECDH keypair.
	rsaKey, err := aecrypto.GenerateRSAKey()
	if err != nil {
		t.Fatal(err)
	}
	der, err := x509.MarshalPKIXPublicKey(&rsaKey.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	authorKey, _ := aecrypto.GenerateRSAKey()
	authorDER, _ := x509.MarshalPKIXPublicKey(&authorKey.PublicKey)
	authorID := Measure(authorDER)

	id := &enclaveIdentity{
		keyDER: der,
		dhPriv: dh,
		report: Report{
			AuthorID:       authorID,
			BinaryHash:     Measure([]byte("enclave-binary-v2")),
			EnclaveVersion: 2,
			HostVersion:    10,
			EnclaveKeyHash: Measure(der),
			EnclaveDHPub:   dh.PublicKey().Bytes(),
		},
		signKey: func(msg []byte) []byte {
			sig, err := aecrypto.Sign(rsaKey, msg)
			if err != nil {
				t.Fatal(err)
			}
			return sig
		},
		authorID: authorID,
	}
	return &testFixture{
		hgs:        hgs,
		host:       host,
		enclaveRSA: id,
		policy: Policy{
			HGSKey:            hgs.SigningKey(),
			TrustedAuthorIDs:  []Measurement{authorID},
			MinEnclaveVersion: 2,
			MinHostVersion:    10,
		},
	}
}

func (f *testFixture) info(t *testing.T) *Info {
	t.Helper()
	cert, err := f.hgs.AttestHost(f.host.TCGLog(), f.host.SigningKey())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := f.host.SignReport(&f.enclaveRSA.report)
	if err != nil {
		t.Fatal(err)
	}
	return &Info{
		HealthCert:      *cert,
		Report:          f.enclaveRSA.report,
		ReportSignature: sig,
		EnclaveKeyDER:   f.enclaveRSA.keyDER,
		DHSignature:     f.enclaveRSA.signKey(f.enclaveRSA.report.EnclaveDHPub),
	}
}

func TestFullChainSucceedsAndSecretsAgree(t *testing.T) {
	f := newFixture(t)
	info := f.info(t)
	clientDH, err := NewClientDH()
	if err != nil {
		t.Fatal(err)
	}
	secret, err := f.policy.Verify(info, clientDH)
	if err != nil {
		t.Fatal(err)
	}
	// Enclave side derives the same secret from the client's DH public key.
	peer, err := ecdh.P256().NewPublicKey(clientDH.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	shared, err := f.enclaveRSA.dhPriv.ECDH(peer)
	if err != nil {
		t.Fatal(err)
	}
	if DeriveSecret(shared) != secret {
		t.Fatal("client and enclave derived different session secrets")
	}
}

func TestUnregisteredHostRejectedByHGS(t *testing.T) {
	f := newFixture(t)
	if _, err := f.hgs.AttestHost([]byte("rogue boot log"), f.host.SigningKey()); !errors.Is(err, ErrHostNotRegistered) {
		t.Fatalf("err = %v, want ErrHostNotRegistered", err)
	}
	f.hgs.UnregisterHost(f.host.TCGLog())
	if _, err := f.hgs.AttestHost(f.host.TCGLog(), f.host.SigningKey()); !errors.Is(err, ErrHostNotRegistered) {
		t.Fatalf("after unregister: err = %v", err)
	}
}

func TestForgedHealthCertRejected(t *testing.T) {
	f := newFixture(t)
	info := f.info(t)
	// A strong adversary substitutes its own "HGS": signature no longer
	// verifies under the real HGS key the client trusts.
	info.HealthCert.Signature[0] ^= 1
	clientDH, _ := NewClientDH()
	if _, err := f.policy.Verify(info, clientDH); !errors.Is(err, ErrBadHealthCert) {
		t.Fatalf("err = %v, want ErrBadHealthCert", err)
	}
}

func TestTamperedReportRejected(t *testing.T) {
	f := newFixture(t)
	info := f.info(t)
	info.Report.EnclaveVersion = 99 // inflate version without re-signing
	clientDH, _ := NewClientDH()
	if _, err := f.policy.Verify(info, clientDH); !errors.Is(err, ErrBadReportSignature) {
		t.Fatalf("err = %v, want ErrBadReportSignature", err)
	}
}

func TestUntrustedAuthorRejected(t *testing.T) {
	f := newFixture(t)
	f.enclaveRSA.report.AuthorID = Measure([]byte("evil corp signing key"))
	info := f.info(t) // host re-signs the altered report: signature is valid
	clientDH, _ := NewClientDH()
	if _, err := f.policy.Verify(info, clientDH); !errors.Is(err, ErrUntrustedAuthor) {
		t.Fatalf("err = %v, want ErrUntrustedAuthor", err)
	}
}

func TestStaleVersionRejected(t *testing.T) {
	f := newFixture(t)
	f.enclaveRSA.report.EnclaveVersion = 1 // below the client's floor of 2;
	info := f.info(t)                      // models the §4.2 security-update flow
	clientDH, _ := NewClientDH()
	if _, err := f.policy.Verify(info, clientDH); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("err = %v, want ErrStaleVersion", err)
	}
}

func TestEnclaveKeySubstitutionRejected(t *testing.T) {
	f := newFixture(t)
	info := f.info(t)
	// The server swaps in a key it controls; the hash in the signed report
	// no longer matches.
	otherKey, _ := aecrypto.GenerateRSAKey()
	otherDER, _ := x509.MarshalPKIXPublicKey(&otherKey.PublicKey)
	info.EnclaveKeyDER = otherDER
	clientDH, _ := NewClientDH()
	if _, err := f.policy.Verify(info, clientDH); !errors.Is(err, ErrKeyHashMismatch) {
		t.Fatalf("err = %v, want ErrKeyHashMismatch", err)
	}
}

func TestForgedDHSignatureRejected(t *testing.T) {
	f := newFixture(t)
	info := f.info(t)
	info.DHSignature[10] ^= 0xff
	clientDH, _ := NewClientDH()
	if _, err := f.policy.Verify(info, clientDH); !errors.Is(err, ErrBadDHSignature) {
		t.Fatalf("err = %v, want ErrBadDHSignature", err)
	}
}

func TestHealthCertHostKeyDecode(t *testing.T) {
	f := newFixture(t)
	cert, err := f.hgs.AttestHost(f.host.TCGLog(), f.host.SigningKey())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := cert.HostKey()
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(f.host.SigningKey().N) != 0 {
		t.Fatal("decoded host key differs")
	}
}

func TestReportPayloadCoversAllFields(t *testing.T) {
	f := newFixture(t)
	base := f.enclaveRSA.report.Payload()
	mutations := []func(r *Report){
		func(r *Report) { r.AuthorID[0] ^= 1 },
		func(r *Report) { r.BinaryHash[0] ^= 1 },
		func(r *Report) { r.EnclaveVersion++ },
		func(r *Report) { r.HostVersion++ },
		func(r *Report) { r.EnclaveKeyHash[0] ^= 1 },
		func(r *Report) { r.EnclaveDHPub = append([]byte{}, r.EnclaveDHPub...); r.EnclaveDHPub[0] ^= 1 },
	}
	for i, mutate := range mutations {
		r := f.enclaveRSA.report
		mutate(&r)
		if string(r.Payload()) == string(base) {
			t.Fatalf("mutation %d not reflected in payload (field unsigned)", i)
		}
	}
}

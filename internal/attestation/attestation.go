// Package attestation implements the attestation protocol of §4.2 against a
// simulated Host Guardian Service (HGS). The moving parts mirror the paper:
//
//   - HGS measures host health from a TCG log (here, a synthetic boot
//     measurement standing in for TPM quotes) against a pre-registered
//     whitelist and issues a health certificate signed with the HGS signing
//     key; the certificate embeds the host (hypervisor) signing key.
//   - The host signs the enclave report, which carries the author ID (hash
//     of the key that signed the enclave binary), the binary hash, enclave
//     and host version numbers, and a hash of the enclave's RSA public key.
//   - Diffie–Hellman key exchange (ECDH P-256) is folded into attestation:
//     the enclave's DH public key is signed by the enclave's RSA key, and
//     the client derives the shared secret after the four-step chain-of-
//     trust verification.
//
// Only the root of trust is synthetic; everything the client checks — who
// signed what, version floors, key-hash consistency — follows the paper.
package attestation

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"alwaysencrypted/internal/aecrypto"
)

// Errors returned by attestation verification; each corresponds to one link
// of the §4.2 chain of trust.
var (
	ErrHostNotRegistered  = errors.New("attestation: host TCG log not in HGS whitelist")
	ErrBadHealthCert      = errors.New("attestation: health certificate not signed by HGS")
	ErrBadReportSignature = errors.New("attestation: enclave report not signed by host key")
	ErrUntrustedAuthor    = errors.New("attestation: enclave author ID not trusted")
	ErrStaleVersion       = errors.New("attestation: enclave or host version below required floor")
	ErrKeyHashMismatch    = errors.New("attestation: enclave public key does not match report hash")
	ErrBadDHSignature     = errors.New("attestation: enclave DH public key signature invalid")
)

// Measurement is a SHA-256 digest used for TCG logs, binaries and keys.
type Measurement [sha256.Size]byte

// Measure hashes arbitrary bytes into a Measurement.
func Measure(b []byte) Measurement { return sha256.Sum256(b) }

// HealthCertificate is issued by HGS for a whitelisted host; it embeds the
// host (hypervisor) signing key (§4.2: "contains a signing key possessed by
// the host hypervisor").
type HealthCertificate struct {
	HostMeasurement Measurement
	HostKeyDER      []byte // PKIX-encoded host signing public key
	Signature       []byte // by the HGS signing key
}

func (c *HealthCertificate) payload() []byte {
	buf := make([]byte, 0, len(c.HostMeasurement)+len(c.HostKeyDER)+16)
	buf = append(buf, "HGS-HEALTH-CERT\x00"...)
	buf = append(buf, c.HostMeasurement[:]...)
	buf = append(buf, c.HostKeyDER...)
	return buf
}

// HostKey decodes the embedded host signing public key.
func (c *HealthCertificate) HostKey() (*rsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(c.HostKeyDER)
	if err != nil {
		return nil, fmt.Errorf("attestation: decoding host key: %w", err)
	}
	k, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("attestation: host key is not RSA")
	}
	return k, nil
}

// Report is the enclave measurement produced when SQL asks Windows to
// measure the enclave (§4.2).
type Report struct {
	AuthorID       Measurement // hash of the public key that signed the enclave binary
	BinaryHash     Measurement // hash of the enclave binary
	EnclaveVersion int
	HostVersion    int
	EnclaveKeyHash Measurement // hash of the enclave's RSA public key (DER)
	EnclaveDHPub   []byte      // ECDH P-256 public key bytes
}

// Payload returns the canonical byte serialization covered by the host's
// report signature.
func (r *Report) Payload() []byte {
	buf := bytes.NewBuffer(make([]byte, 0, 160+len(r.EnclaveDHPub)))
	buf.WriteString("VBS-ENCLAVE-REPORT\x00")
	buf.Write(r.AuthorID[:])
	buf.Write(r.BinaryHash[:])
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], uint64(r.EnclaveVersion))
	buf.Write(v[:])
	binary.BigEndian.PutUint64(v[:], uint64(r.HostVersion))
	buf.Write(v[:])
	buf.Write(r.EnclaveKeyHash[:])
	buf.Write(r.EnclaveDHPub)
	return buf.Bytes()
}

// Info is the attestation information SQL Server returns to the client as
// part of sp_describe_parameter_encryption output (§4.2): the health
// certificate, the signed report, the enclave's public key and the DH
// signature made with the enclave's RSA key.
type Info struct {
	HealthCert      HealthCertificate
	Report          Report
	ReportSignature []byte // by the host signing key
	EnclaveKeyDER   []byte // the enclave's RSA public key
	DHSignature     []byte // over the enclave DH public key, by the enclave RSA key
}

// HGS simulates the Host Guardian Service: a whitelist of host measurements
// and a signing key. Its "API is exposed over https" in production; here the
// methods stand in for those endpoints.
type HGS struct {
	mu        sync.RWMutex
	signing   *rsa.PrivateKey
	whitelist map[Measurement]bool
}

// NewHGS creates an HGS instance with a fresh signing key.
func NewHGS() (*HGS, error) {
	key, err := aecrypto.GenerateRSAKey()
	if err != nil {
		return nil, err
	}
	return &HGS{signing: key, whitelist: make(map[Measurement]bool)}, nil
}

// SigningKey returns the HGS public signing key; clients fetch this by
// querying HGS directly (§4.2 step 1).
func (h *HGS) SigningKey() *rsa.PublicKey { return &h.signing.PublicKey }

// RegisterHost whitelists a host's TCG log (the offline registration step).
func (h *HGS) RegisterHost(tcgLog []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.whitelist[Measure(tcgLog)] = true
}

// UnregisterHost removes a host, modelling fleet rotation or compromise.
func (h *HGS) UnregisterHost(tcgLog []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.whitelist, Measure(tcgLog))
}

// AttestHost checks the TCG log against the whitelist and, on a match,
// issues a health certificate embedding the host's signing key.
func (h *HGS) AttestHost(tcgLog []byte, hostKey *rsa.PublicKey) (*HealthCertificate, error) {
	m := Measure(tcgLog)
	h.mu.RLock()
	ok := h.whitelist[m]
	h.mu.RUnlock()
	if !ok {
		return nil, ErrHostNotRegistered
	}
	der, err := x509.MarshalPKIXPublicKey(hostKey)
	if err != nil {
		return nil, fmt.Errorf("attestation: encoding host key: %w", err)
	}
	cert := &HealthCertificate{HostMeasurement: m, HostKeyDER: der}
	sig, err := aecrypto.Sign(h.signing, cert.payload())
	if err != nil {
		return nil, err
	}
	cert.Signature = sig
	return cert, nil
}

// Host models the hypervisor of the machine running SQL Server: it holds the
// host signing key and the boot-time TCG log, and signs enclave reports.
type Host struct {
	signing *rsa.PrivateKey
	tcgLog  []byte
	Version int
}

// NewHost boots a host with the given TCG log and version.
func NewHost(tcgLog []byte, version int) (*Host, error) {
	key, err := aecrypto.GenerateRSAKey()
	if err != nil {
		return nil, err
	}
	log := make([]byte, len(tcgLog))
	copy(log, tcgLog)
	return &Host{signing: key, tcgLog: log, Version: version}, nil
}

// TCGLog returns the host's boot measurement log.
func (h *Host) TCGLog() []byte { return h.tcgLog }

// SigningKey returns the host's public signing key.
func (h *Host) SigningKey() *rsa.PublicKey { return &h.signing.PublicKey }

// SignReport signs an enclave report with the host signing key (the VBS
// platform's role in §4.2).
func (h *Host) SignReport(r *Report) ([]byte, error) {
	return aecrypto.Sign(h.signing, r.Payload())
}

// Policy is what the client trusts: the HGS signing key, the enclave author
// IDs it accepts, and minimum version floors (§4.2 bases enclave health on
// the signing key rather than the binary hash, plus version numbers that can
// be raised after a security update).
type Policy struct {
	HGSKey            *rsa.PublicKey
	TrustedAuthorIDs  []Measurement
	MinEnclaveVersion int
	MinHostVersion    int
}

// Verify runs the client-side chain-of-trust checks of §4.2 and, on success,
// derives the shared secret from the client's DH private key and the
// enclave's DH public key carried in the report.
func (p *Policy) Verify(info *Info, clientDH *ecdh.PrivateKey) ([32]byte, error) {
	var secret [32]byte

	// Step 1: health certificate is signed by the HGS signing key.
	if err := aecrypto.VerifySignature(p.HGSKey, info.HealthCert.payload(), info.HealthCert.Signature); err != nil {
		return secret, ErrBadHealthCert
	}
	hostKey, err := info.HealthCert.HostKey()
	if err != nil {
		return secret, err
	}

	// Step 2: the enclave report is signed by the host signing key embedded
	// in the health certificate.
	if err := aecrypto.VerifySignature(hostKey, info.Report.Payload(), info.ReportSignature); err != nil {
		return secret, ErrBadReportSignature
	}

	// Step 3: the enclave is healthy — trusted author ID and version floors.
	trusted := false
	for _, id := range p.TrustedAuthorIDs {
		if id == info.Report.AuthorID {
			trusted = true
			break
		}
	}
	if !trusted {
		return secret, ErrUntrustedAuthor
	}
	if info.Report.EnclaveVersion < p.MinEnclaveVersion || info.Report.HostVersion < p.MinHostVersion {
		return secret, ErrStaleVersion
	}

	// Step 4: the returned enclave public key matches the hash embedded in
	// the report, and the enclave DH public key is signed by it.
	if Measure(info.EnclaveKeyDER) != info.Report.EnclaveKeyHash {
		return secret, ErrKeyHashMismatch
	}
	pub, err := x509.ParsePKIXPublicKey(info.EnclaveKeyDER)
	if err != nil {
		return secret, fmt.Errorf("attestation: decoding enclave key: %w", err)
	}
	enclaveKey, ok := pub.(*rsa.PublicKey)
	if !ok {
		return secret, errors.New("attestation: enclave key is not RSA")
	}
	if err := aecrypto.VerifySignature(enclaveKey, info.Report.EnclaveDHPub, info.DHSignature); err != nil {
		return secret, ErrBadDHSignature
	}

	// Derive the shared secret; the enclave already holds it (§4.2).
	peer, err := ecdh.P256().NewPublicKey(info.Report.EnclaveDHPub)
	if err != nil {
		return secret, fmt.Errorf("attestation: decoding enclave DH key: %w", err)
	}
	shared, err := clientDH.ECDH(peer)
	if err != nil {
		return secret, fmt.Errorf("attestation: ECDH: %w", err)
	}
	secret = DeriveSecret(shared)
	aecrypto.Zeroize(shared)
	return secret, nil
}

// DeriveSecret hashes raw ECDH output into the 32-byte session secret used
// for the driver↔enclave secure channel.
func DeriveSecret(shared []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("AE-SESSION-SECRET\x00"))
	h.Write(shared)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// NewClientDH generates the client's ephemeral DH keypair sent along with
// the sp_describe_parameter_encryption call.
func NewClientDH() (*ecdh.PrivateKey, error) {
	key, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attestation: generating client DH key: %w", err)
	}
	return key, nil
}

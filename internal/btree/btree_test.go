package btree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

func intKey(vals ...int64) [][]byte {
	out := make([][]byte, len(vals))
	for i, v := range vals {
		out[i] = sqltypes.Int(v).Encode()
	}
	return out
}

func plainTree(cols int, unique bool) *Tree {
	orders := make([]ColumnOrder, cols)
	for i := range orders {
		orders[i] = BinaryOrder{}
	}
	return New(&KeyComparator{Cols: orders}, unique)
}

func TestInsertSeekExact(t *testing.T) {
	tr := plainTree(1, false)
	for i := int64(0); i < 1000; i++ {
		if err := tr.Insert(intKey(i), storage.RowID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
	for _, v := range []int64{0, 1, 499, 999} {
		es, err := tr.SeekExact(intKey(v), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != 1 || es[0].Row != storage.RowID(v+1) {
			t.Fatalf("seek %d: %v", v, es)
		}
	}
	if es, _ := tr.SeekExact(intKey(5000), 0); len(es) != 0 {
		t.Fatalf("phantom entries: %v", es)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateKeysNonUnique(t *testing.T) {
	tr := plainTree(1, false)
	for r := 1; r <= 100; r++ {
		if err := tr.Insert(intKey(7), storage.RowID(r)); err != nil {
			t.Fatal(err)
		}
	}
	es, err := tr.SeekExact(intKey(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 100 {
		t.Fatalf("dup entries = %d", len(es))
	}
	// Limit honored.
	es, _ = tr.SeekExact(intKey(7), 10)
	if len(es) != 10 {
		t.Fatalf("limited = %d", len(es))
	}
}

func TestUniqueRejectsDuplicates(t *testing.T) {
	tr := plainTree(1, true)
	if err := tr.Insert(intKey(1), 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(intKey(1), 20); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	// Same key same row is idempotent.
	if err := tr.Insert(intKey(1), 10); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := plainTree(1, false)
	for i := int64(0); i < 500; i++ {
		tr.Insert(intKey(i%50), storage.RowID(i+1))
	}
	// Delete a specific (key,row) pair.
	ok, err := tr.Delete(intKey(7), storage.RowID(8))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	ok, err = tr.Delete(intKey(7), storage.RowID(8))
	if err != nil || ok {
		t.Fatalf("double delete: %v %v", ok, err)
	}
	es, _ := tr.SeekExact(intKey(7), 0)
	for _, e := range es {
		if e.Row == 8 {
			t.Fatal("deleted entry still visible")
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	tr := plainTree(1, false)
	for i := int64(0); i < 100; i++ {
		tr.Insert(intKey(i), storage.RowID(i+1))
	}
	es, err := tr.ScanRange(intKey(10), intKey(20), true, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 11 {
		t.Fatalf("[10,20] = %d entries", len(es))
	}
	es, _ = tr.ScanRange(intKey(10), intKey(20), false, false, 0)
	if len(es) != 9 {
		t.Fatalf("(10,20) = %d entries", len(es))
	}
	es, _ = tr.ScanRange(nil, intKey(5), true, true, 0)
	if len(es) != 6 {
		t.Fatalf("<=5 = %d entries", len(es))
	}
	es, _ = tr.ScanRange(intKey(95), nil, true, true, 0)
	if len(es) != 5 {
		t.Fatalf(">=95 = %d entries", len(es))
	}
}

// TestCompositePrefixSeek models CUSTOMER_NC1: (w_id, d_id, last) prefix
// seek over a 3+-component index.
func TestCompositePrefixSeek(t *testing.T) {
	tr := plainTree(3, false)
	row := storage.RowID(1)
	for w := int64(1); w <= 3; w++ {
		for d := int64(1); d <= 4; d++ {
			for c := int64(0); c < 10; c++ {
				if err := tr.Insert(intKey(w, d, c), row); err != nil {
					t.Fatal(err)
				}
				row++
			}
		}
	}
	// Prefix (2, 3): all 10 third components.
	es, err := tr.SeekExact(intKey(2, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 10 {
		t.Fatalf("prefix seek = %d entries", len(es))
	}
	for _, e := range es {
		w, _ := sqltypes.Decode(e.Key[0])
		d, _ := sqltypes.Decode(e.Key[1])
		if w.I != 2 || d.I != 3 {
			t.Fatalf("wrong partition: %v %v", w, d)
		}
	}
	// Full key seek.
	es, _ = tr.SeekExact(intKey(2, 3, 5), 0)
	if len(es) != 1 {
		t.Fatalf("full seek = %d", len(es))
	}
}

// fakeEnclave decrypts with a key it holds — standing in for the real
// enclave in ordering tests.
type fakeEnclave struct {
	key      *aecrypto.CellKey
	compares int
	missing  bool
}

func (f *fakeEnclave) Compare(cek string, a, b []byte) (int, error) {
	if f.missing {
		return 0, errors.New("enclave: required CEK not installed")
	}
	f.compares++
	pa, err := f.key.Decrypt(a)
	if err != nil {
		return 0, err
	}
	pb, err := f.key.Decrypt(b)
	if err != nil {
		return 0, err
	}
	va, _ := sqltypes.Decode(pa)
	vb, _ := sqltypes.Decode(pb)
	return sqltypes.Compare(va, vb)
}

// TestFigure4RangeIndex reproduces Figure 4: a range index over RND
// ciphertext is ordered by plaintext, maintained via enclave comparisons.
func TestFigure4RangeIndex(t *testing.T) {
	root, _ := aecrypto.GenerateKey()
	key := aecrypto.MustCellKey(root)
	encl := &fakeEnclave{key: key}
	tr := New(&KeyComparator{Cols: []ColumnOrder{EnclaveOrder{CEK: "K", Enclave: encl}}}, false)

	enc := func(v int64) [][]byte {
		ct, err := key.Encrypt(sqltypes.Int(v).Encode(), aecrypto.Randomized)
		if err != nil {
			t.Fatal(err)
		}
		return [][]byte{ct}
	}
	// Insert Figure 4's keys out of order, then key 7 (the figure's insert).
	for i, v := range []int64{6, 2, 8, 4, 1, 9, 3, 5} {
		if err := tr.Insert(enc(v), storage.RowID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := encl.compares
	if err := tr.Insert(enc(7), storage.RowID(100)); err != nil {
		t.Fatal(err)
	}
	if encl.compares == before {
		t.Fatal("insert routed no comparisons to the enclave")
	}
	// Range scan [3,7] by plaintext order over ciphertext bounds.
	es, err := tr.ScanRange(enc(3), enc(7), true, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, e := range es {
		pt, _ := key.Decrypt(e.Key[0])
		v, _ := sqltypes.Decode(pt)
		got = append(got, v.I)
	}
	want := []int64{3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

// TestMissingKeyPropagates: without enclave keys, index navigation fails —
// the condition that forces deferred transactions in recovery (§4.5).
func TestMissingKeyPropagates(t *testing.T) {
	root, _ := aecrypto.GenerateKey()
	key := aecrypto.MustCellKey(root)
	encl := &fakeEnclave{key: key}
	tr := New(&KeyComparator{Cols: []ColumnOrder{EnclaveOrder{CEK: "K", Enclave: encl}}}, false)
	enc := func(v int64) [][]byte {
		ct, _ := key.Encrypt(sqltypes.Int(v).Encode(), aecrypto.Randomized)
		return [][]byte{ct}
	}
	for i := int64(0); i < 10; i++ {
		tr.Insert(enc(i), storage.RowID(i+1))
	}
	encl.missing = true
	if _, err := tr.Delete(enc(5), 6); err == nil {
		t.Fatal("delete succeeded without enclave keys")
	}
	encl.missing = false
	if ok, err := tr.Delete(enc(5), 6); err != nil || !ok {
		t.Fatalf("delete after keys restored: %v %v", ok, err)
	}
}

func TestInvalidate(t *testing.T) {
	tr := plainTree(1, false)
	tr.Insert(intKey(1), 1)
	tr.Invalidate()
	if !tr.Invalidated() {
		t.Fatal("not invalidated")
	}
	if err := tr.Insert(intKey(2), 2); !errors.Is(err, ErrInvalidated) {
		t.Fatalf("insert: %v", err)
	}
	if _, err := tr.SeekExact(intKey(1), 0); !errors.Is(err, ErrInvalidated) {
		t.Fatalf("seek: %v", err)
	}
	if _, err := tr.Delete(intKey(1), 1); !errors.Is(err, ErrInvalidated) {
		t.Fatalf("delete: %v", err)
	}
	if err := tr.Ascend(func(Entry) bool { return true }); !errors.Is(err, ErrInvalidated) {
		t.Fatalf("ascend: %v", err)
	}
}

func TestNullComponentsSortFirst(t *testing.T) {
	tr := plainTree(1, false)
	tr.Insert([][]byte{nil}, 1) // NULL
	tr.Insert(intKey(5), 2)
	tr.Insert(intKey(-5), 3)
	var rows []storage.RowID
	tr.Ascend(func(e Entry) bool {
		rows = append(rows, e.Row)
		return true
	})
	if len(rows) != 3 || rows[0] != 1 {
		t.Fatalf("order = %v (NULL must sort first)", rows)
	}
}

// Property: random insert/delete sequences keep the tree consistent with a
// shadow model and preserve ordering invariants.
func TestQuickTreeAgainstShadow(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := plainTree(1, false)
		type pair struct {
			k int64
			r storage.RowID
		}
		var shadow []pair
		nextRow := storage.RowID(1)
		for op := 0; op < 400; op++ {
			if rng.Intn(3) < 2 || len(shadow) == 0 {
				k := int64(rng.Intn(60))
				if err := tr.Insert(intKey(k), nextRow); err != nil {
					return false
				}
				shadow = append(shadow, pair{k, nextRow})
				nextRow++
			} else {
				i := rng.Intn(len(shadow))
				p := shadow[i]
				ok, err := tr.Delete(intKey(p.k), p.r)
				if err != nil || !ok {
					return false
				}
				shadow = append(shadow[:i], shadow[i+1:]...)
			}
		}
		if tr.Len() != len(shadow) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		// Every shadow pair findable; counts per key match.
		counts := make(map[int64]int)
		for _, p := range shadow {
			counts[p.k]++
		}
		for k, want := range counts {
			es, err := tr.SeekExact(intKey(k), 0)
			if err != nil || len(es) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ScanRange over random data returns exactly the shadow-filtered,
// sorted result.
func TestQuickScanRangeMatchesShadow(t *testing.T) {
	prop := func(seed int64, loRaw, hiRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := plainTree(1, false)
		var keys []int64
		for i := 0; i < 200; i++ {
			k := int64(rng.Intn(100))
			keys = append(keys, k)
			if err := tr.Insert(intKey(k), storage.RowID(i+1)); err != nil {
				return false
			}
		}
		lo, hi := int64(loRaw%100), int64(hiRaw%100)
		if lo > hi {
			lo, hi = hi, lo
		}
		es, err := tr.ScanRange(intKey(lo), intKey(hi), true, true, 0)
		if err != nil {
			return false
		}
		var want []int64
		for _, k := range keys {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(es) != len(want) {
			return false
		}
		for i, e := range es {
			v, _ := sqltypes.Decode(e.Key[0])
			if v.I != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeTreeDepth(t *testing.T) {
	tr := plainTree(1, false)
	const n = 50000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for i, v := range perm {
		if err := tr.Insert(intKey(int64(v)), storage.RowID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	es, err := tr.ScanRange(intKey(1000), intKey(1009), true, true, 0)
	if err != nil || len(es) != 10 {
		t.Fatalf("range: %d %v", len(es), err)
	}
}

func BenchmarkInsertPlainKey(b *testing.B) {
	tr := plainTree(1, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(intKey(int64(i)), storage.RowID(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeekExact(b *testing.B) {
	tr := plainTree(1, false)
	for i := int64(0); i < 100000; i++ {
		tr.Insert(intKey(i), storage.RowID(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.SeekExact(intKey(int64(i%100000)), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertEnclaveOrdered(b *testing.B) {
	root, _ := aecrypto.GenerateKey()
	key := aecrypto.MustCellKey(root)
	encl := &fakeEnclave{key: key}
	tr := New(&KeyComparator{Cols: []ColumnOrder{EnclaveOrder{CEK: "K", Enclave: encl}}}, false)
	cts := make([][][]byte, 4096)
	for i := range cts {
		ct, _ := key.Encrypt(sqltypes.Int(int64(i)).Encode(), aecrypto.Randomized)
		cts[i] = [][]byte{ct}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(cts[i%len(cts)], storage.RowID(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleTree() {
	tr := New(&KeyComparator{Cols: []ColumnOrder{BinaryOrder{}}}, false)
	for _, v := range []int64{6, 8, 2, 4} {
		tr.Insert([][]byte{sqltypes.Int(v).Encode()}, storage.RowID(v))
	}
	tr.Insert([][]byte{sqltypes.Int(7).Encode()}, 7) // Figure 4's insert
	tr.Ascend(func(e Entry) bool {
		v, _ := sqltypes.Decode(e.Key[0])
		fmt.Print(v.I, " ")
		return true
	})
	// Output: 2 4 6 7 8
}

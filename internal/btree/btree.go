// Package btree implements the B+-tree used for both index flavors of §3.1:
//
//   - Equality indexes on DET columns order keys by ciphertext bytes
//     (BinaryOrder), supporting equality lookups but not ranges.
//   - Range indexes on enclave-enabled RND columns store ciphertext but
//     order it by plaintext value, routing every comparison to the enclave
//     (EnclaveOrder), exactly as Figure 4 illustrates for inserting key 7.
//
// Keys are composite ([][]byte components) so mixed indexes like TPC-C's
// CUSTOMER_NC1(C_W_ID, C_D_ID, C_LAST, C_FIRST, C_ID) — with only C_LAST
// encrypted — compare each component under its own order. The vast majority
// of index machinery (node search, splits, iteration) is oblivious to
// encryption; only the comparator differs, mirroring §3.1.2's note that
// latching, locking and page splits remain unaffected.
//
// Deletion is lazy (no rebalancing): removed entries leave leaves sparse,
// which keeps logical undo — the operation recovery performs — simple while
// preserving all ordering invariants.
package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"alwaysencrypted/internal/storage"
)

// ColumnOrder orders one key component given its two encodings.
type ColumnOrder interface {
	Compare(a, b []byte) (int, error)
}

// ColumnOrderFunc adapts a function to ColumnOrder.
type ColumnOrderFunc func(a, b []byte) (int, error)

// Compare implements ColumnOrder.
func (f ColumnOrderFunc) Compare(a, b []byte) (int, error) { return f(a, b) }

// BinaryOrder compares raw bytes: the order of plaintext canonical encodings
// (which are order-preserving) and of DET ciphertext (which preserves only
// equality — hence equality indexes support no range lookups, §3.1.1).
type BinaryOrder struct{}

// Compare implements ColumnOrder.
func (BinaryOrder) Compare(a, b []byte) (int, error) { return bytes.Compare(a, b), nil }

// EnclaveComparer is the slice of the enclave API the tree needs; satisfied
// by *enclave.Enclave.
type EnclaveComparer interface {
	Compare(cekName string, a, b []byte) (int, error)
}

// EnclaveOrder routes component comparisons to the enclave, which decrypts
// and returns the plaintext ordering in the clear (§3.1.2). The ordering
// disclosure is the designed leakage of Figure 5.
type EnclaveOrder struct {
	CEK     string
	Enclave EnclaveComparer
}

// Compare implements ColumnOrder.
func (o EnclaveOrder) Compare(a, b []byte) (int, error) {
	return o.Enclave.Compare(o.CEK, a, b)
}

// KeyComparator orders composite keys component-wise. A key with fewer
// components than the comparator acts as a prefix: comparison covers only
// the shared components, which gives Seek its prefix semantics.
type KeyComparator struct {
	Cols []ColumnOrder
}

// Compare orders two composite keys. NULL components (empty) sort first.
func (kc *KeyComparator) Compare(a, b [][]byte) (int, error) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n > len(kc.Cols) {
		return 0, fmt.Errorf("btree: key has %d components, comparator %d", n, len(kc.Cols))
	}
	for i := 0; i < n; i++ {
		switch {
		case len(a[i]) == 0 && len(b[i]) == 0:
			continue
		case len(a[i]) == 0:
			return -1, nil
		case len(b[i]) == 0:
			return 1, nil
		}
		c, err := kc.Cols[i].Compare(a[i], b[i])
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// Entry is one index record: a composite key plus the heap row it points to.
type Entry struct {
	Key [][]byte
	Row storage.RowID
}

// Errors returned by tree operations.
var (
	ErrDuplicate = errors.New("btree: duplicate key in unique index")
	// ErrInvalidated is returned by every operation after the index was
	// invalidated by forced deferred-transaction resolution (§4.5).
	ErrInvalidated = errors.New("btree: index invalidated; rebuild required")
)

const maxEntries = 64 // fan-out; splits at maxEntries+1

// Tree is the B+-tree. A coarse tree latch serializes structural changes;
// reads take the shared latch. (Fine-grained latching is orthogonal to the
// encryption design and elided.)
type Tree struct {
	mu     sync.RWMutex
	cmp    *KeyComparator
	root   *node
	unique bool
	size   int
	// comparisons counts comparator invocations (atomic: readers under the
	// shared latch also compare); the leakage harness uses it, and it shows
	// how much work routes through the enclave.
	comparisons atomic.Uint64
	invalidated bool
}

type node struct {
	leaf bool
	// entries holds the records of a leaf.
	entries []Entry
	// seps are full (key, row) separators of an inner node: seps[i] is the
	// first entry of children[i+1]. Carrying the row id keeps descent exact
	// for duplicate keys that straddle a split boundary.
	seps     []Entry
	children []*node // inner only
	next     *node   // leaf chain
}

// New creates a tree with the given component orders.
func New(cmp *KeyComparator, unique bool) *Tree {
	return &Tree{cmp: cmp, root: &node{leaf: true}, unique: unique}
}

// Len reports the number of entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Comparisons reports how many component comparisons have been performed.
func (t *Tree) Comparisons() uint64 {
	return t.comparisons.Load()
}

// Invalidate marks the index unusable (forced resolution of deferred
// transactions skips logical undo and invalidates the index instead, §4.5).
func (t *Tree) Invalidate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.invalidated = true
	t.root = &node{leaf: true}
	t.size = 0
}

// Invalidated reports whether the index has been invalidated.
func (t *Tree) Invalidated() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.invalidated
}

// SwapEnclave repoints every EnclaveOrder component at a new comparer. A
// restarted enclave holds no keys; the index structure survives (physical
// redo) but comparisons route to the new instance.
func (t *Tree) SwapEnclave(ec EnclaveComparer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, c := range t.cmp.Cols {
		if eo, ok := c.(EnclaveOrder); ok {
			eo.Enclave = ec
			t.cmp.Cols[i] = eo
		}
	}
}

// compareFull orders (key, row) pairs: ties on the key break on the row id,
// making every entry unique in non-unique indexes.
func (t *Tree) compareFull(aKey [][]byte, aRow storage.RowID, bKey [][]byte, bRow storage.RowID) (int, error) {
	t.comparisons.Add(1)
	c, err := t.cmp.Compare(aKey, bKey)
	if err != nil || c != 0 {
		return c, err
	}
	switch {
	case aRow < bRow:
		return -1, nil
	case aRow > bRow:
		return 1, nil
	default:
		return 0, nil
	}
}

// Insert adds an entry. For unique indexes a key collision (regardless of
// row) returns ErrDuplicate.
func (t *Tree) Insert(key [][]byte, row storage.RowID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.invalidated {
		return ErrInvalidated
	}
	if t.unique {
		ent, found, err := t.lookupLocked(key)
		if err != nil {
			return err
		}
		if found && ent.Row != row {
			return ErrDuplicate
		}
		if found && ent.Row == row {
			return nil
		}
	}
	newChild, newSep, err := t.insertNode(t.root, key, row)
	if err != nil {
		return err
	}
	if newChild != nil {
		t.root = &node{
			leaf:     false,
			seps:     []Entry{newSep},
			children: []*node{t.root, newChild},
		}
	}
	t.size++
	return nil
}

// insertNode descends, splitting full children on the way back up. Returns
// the new right sibling and its separator when this node split.
func (t *Tree) insertNode(n *node, key [][]byte, row storage.RowID) (*node, Entry, error) {
	if n.leaf {
		i, err := t.leafInsertPos(n, key, row)
		if err != nil {
			return nil, Entry{}, err
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = Entry{Key: key, Row: row}
		if len(n.entries) <= maxEntries {
			return nil, Entry{}, nil
		}
		// Split the leaf.
		mid := len(n.entries) / 2
		right := &node{leaf: true, entries: append([]Entry(nil), n.entries[mid:]...), next: n.next}
		n.entries = n.entries[:mid]
		n.next = right
		return right, right.entries[0], nil
	}

	ci, err := t.childIndex(n, key, row)
	if err != nil {
		return nil, Entry{}, err
	}
	newChild, newSep, err := t.insertNode(n.children[ci], key, row)
	if err != nil || newChild == nil {
		return nil, Entry{}, err
	}
	n.seps = append(n.seps, Entry{})
	copy(n.seps[ci+1:], n.seps[ci:])
	n.seps[ci] = newSep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.children) <= maxEntries {
		return nil, Entry{}, nil
	}
	// Split the inner node.
	midSep := len(n.seps) / 2
	promoted := n.seps[midSep]
	right := &node{
		leaf:     false,
		seps:     append([]Entry(nil), n.seps[midSep+1:]...),
		children: append([]*node(nil), n.children[midSep+1:]...),
	}
	n.seps = n.seps[:midSep]
	n.children = n.children[:midSep+1]
	return right, promoted, nil
}

// leafInsertPos finds the sorted position for (key,row) in a leaf.
func (t *Tree) leafInsertPos(n *node, key [][]byte, row storage.RowID) (int, error) {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		c, err := t.compareFull(n.entries[mid].Key, n.entries[mid].Row, key, row)
		if err != nil {
			return 0, err
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// childIndex picks the child to descend into for (key,row): the first child
// whose separator exceeds the full (key, row) pair.
func (t *Tree) childIndex(n *node, key [][]byte, row storage.RowID) (int, error) {
	i := 0
	for ; i < len(n.seps); i++ {
		c, err := t.compareFull(key, row, n.seps[i].Key, n.seps[i].Row)
		if err != nil {
			return 0, err
		}
		if c < 0 {
			break
		}
	}
	return i, nil
}

// lookupLocked finds any entry with exactly this key (unique index check).
func (t *Tree) lookupLocked(key [][]byte) (Entry, bool, error) {
	n := t.root
	for !n.leaf {
		i := 0
		for ; i < len(n.seps); i++ {
			t.comparisons.Add(1)
			c, err := t.cmp.Compare(key, n.seps[i].Key)
			if err != nil {
				return Entry{}, false, err
			}
			if c < 0 {
				break
			}
		}
		n = n.children[i]
	}
	// The first matching entry may be in this leaf or the next (separator
	// boundaries split equal keys by row id).
	for n != nil {
		for i := range n.entries {
			t.comparisons.Add(1)
			c, err := t.cmp.Compare(n.entries[i].Key, key)
			if err != nil {
				return Entry{}, false, err
			}
			if c == 0 {
				return n.entries[i], true, nil
			}
			if c > 0 {
				return Entry{}, false, nil
			}
		}
		n = n.next
	}
	return Entry{}, false, nil
}

// Delete removes the entry (key, row); it reports whether it was present.
// This is exactly the logical-undo operation of §4.5: navigating the tree
// requires comparisons, which for encrypted range indexes require enclave
// keys — when they are missing, the error propagates and the caller defers
// the transaction.
func (t *Tree) Delete(key [][]byte, row storage.RowID) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.invalidated {
		return false, ErrInvalidated
	}
	n := t.root
	for !n.leaf {
		ci, err := t.childIndex(n, key, row)
		if err != nil {
			return false, err
		}
		n = n.children[ci]
	}
	for leaf := n; leaf != nil; leaf = leaf.next {
		for i := range leaf.entries {
			c, err := t.compareFull(leaf.entries[i].Key, leaf.entries[i].Row, key, row)
			if err != nil {
				return false, err
			}
			if c == 0 {
				leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
				t.size--
				return true, nil
			}
			if c > 0 {
				return false, nil
			}
		}
	}
	return false, nil
}

// SeekGE returns up to limit entries with key >= the search key (prefix
// semantics), in order. limit <= 0 means no limit. filter is applied to
// entries before they count toward the limit.
func (t *Tree) SeekGE(key [][]byte, limit int) ([]Entry, error) {
	return t.scan(key, nil, true, false, limit)
}

// ScanRange returns entries in [lo, hi] with the given inclusivity. Either
// bound may be nil for open-ended scans. The bounds may be key prefixes.
func (t *Tree) ScanRange(lo, hi [][]byte, loInc, hiInc bool, limit int) ([]Entry, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.invalidated {
		return nil, ErrInvalidated
	}
	var out []Entry
	start := t.root
	var err error
	var leaf *node
	if lo != nil {
		leaf, err = t.descendToLeaf(lo)
		if err != nil {
			return nil, err
		}
	} else {
		leaf = leftmostLeaf(start)
	}
	for ; leaf != nil; leaf = leaf.next {
		for i := range leaf.entries {
			e := &leaf.entries[i]
			if lo != nil {
				t.comparisons.Add(1)
				c, err := t.cmp.Compare(e.Key, lo)
				if err != nil {
					return nil, err
				}
				if c < 0 || (c == 0 && !loInc) {
					continue
				}
			}
			if hi != nil {
				t.comparisons.Add(1)
				c, err := t.cmp.Compare(e.Key, hi)
				if err != nil {
					return nil, err
				}
				if c > 0 || (c == 0 && !hiInc) {
					return out, nil
				}
			}
			out = append(out, Entry{Key: e.Key, Row: e.Row})
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// scan is the shared implementation behind SeekGE.
func (t *Tree) scan(lo, hi [][]byte, loInc, hiInc bool, limit int) ([]Entry, error) {
	return t.ScanRange(lo, hi, loInc, hiInc, limit)
}

// SeekExact returns all entries whose key (or key prefix) equals the search
// key — the equality lookup path for both index flavors.
func (t *Tree) SeekExact(key [][]byte, limit int) ([]Entry, error) {
	return t.ScanRange(key, key, true, true, limit)
}

// descendToLeaf walks inner nodes toward the first leaf that may contain
// keys >= search key. Must be called with the tree latch held.
func (t *Tree) descendToLeaf(key [][]byte) (*node, error) {
	n := t.root
	for !n.leaf {
		i := 0
		for ; i < len(n.seps); i++ {
			t.comparisons.Add(1)
			c, err := t.cmp.Compare(key, n.seps[i].Key)
			if err != nil {
				return nil, err
			}
			if c <= 0 {
				// Equal prefixes may start in the left child.
				break
			}
		}
		n = n.children[i]
	}
	return n, nil
}

func leftmostLeaf(n *node) *node {
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// Ascend visits every entry in order until fn returns false.
func (t *Tree) Ascend(fn func(e Entry) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.invalidated {
		return ErrInvalidated
	}
	for leaf := leftmostLeaf(t.root); leaf != nil; leaf = leaf.next {
		for i := range leaf.entries {
			if !fn(leaf.entries[i]) {
				return nil
			}
		}
	}
	return nil
}

// CheckInvariants verifies ordering within and across leaves — used by
// property tests. It returns the first violation found.
func (t *Tree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var prev *Entry
	count := 0
	for leaf := leftmostLeaf(t.root); leaf != nil; leaf = leaf.next {
		for i := range leaf.entries {
			e := &leaf.entries[i]
			count++
			if prev != nil {
				c, err := t.compareFull(prev.Key, prev.Row, e.Key, e.Row)
				if err != nil {
					return err
				}
				if c >= 0 {
					return fmt.Errorf("btree: entries out of order: %v !< %v", prev.Row, e.Row)
				}
			}
			prev = e
		}
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d entries reachable", t.size, count)
	}
	return nil
}

package tpcc

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBatchExperiment runs a miniature sweep (two batch sizes, small scale)
// and checks the physics the full artifact relies on: the Stock-Level and
// combined phases cross the enclave, crossings per transaction strictly
// drop as the batch grows, and the written report round-trips validation.
func TestBatchExperiment(t *testing.T) {
	rep, err := RunBatchExperiment(BatchExperimentConfig{
		Scale:      smallScale(),
		BatchSizes: []int{1, 8},
		TxPerPhase: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rep.Runs[0], rep.Runs[1]
	for _, name := range []string{"stock_level", "combined"} {
		base, at := small.Phases[name].CrossingsPerTx, large.Phases[name].CrossingsPerTx
		if base == 0 {
			t.Fatalf("%s: no crossings at batch size 1", name)
		}
		if at >= base {
			t.Fatalf("%s: crossings/tx did not drop: %.1f at 1, %.1f at 8", name, base, at)
		}
		if red := rep.Reductions[name]; red <= 1 {
			t.Fatalf("%s: reduction = %.2f", name, red)
		}
	}
	// NewOrder touches STOCK only through plaintext PK predicates: no
	// enclave crossings regardless of batch size.
	if c := small.Phases["new_order"].Crossings; c != 0 {
		t.Fatalf("new_order crossed the enclave %d times at batch size 1", c)
	}

	path := filepath.Join(t.TempDir(), "BENCH_batch.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateBatchReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 2 || back.Runs[1].BatchSize != 8 {
		t.Fatalf("round-trip lost runs: %+v", back.Runs)
	}
}

func TestValidateBatchReportRejects(t *testing.T) {
	cases := map[string]string{
		"bad schema":  `{"schema":"nope","runs":[]}`,
		"no runs":     `{"schema":"alwaysencrypted/tpcc-batch/v1","runs":[]}`,
		"not json":    `{`,
		"one run":     `{"schema":"alwaysencrypted/tpcc-batch/v1","runs":[{"batch_size":1,"phases":{}}]}`,
		"bad sizes":   `{"schema":"alwaysencrypted/tpcc-batch/v1","runs":[{"batch_size":8,"phases":{}},{"batch_size":1,"phases":{}}]}`,
		"empty phase": `{"schema":"alwaysencrypted/tpcc-batch/v1","runs":[{"batch_size":1,"phases":{}},{"batch_size":8,"phases":{}}]}`,
	}
	for name, body := range cases {
		if _, err := ValidateBatchReport([]byte(body)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

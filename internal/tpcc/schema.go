// Package tpcc implements the TPC-C benchmark as configured in §5 of the
// paper: nine tables, five transaction types, and the paper's modifications
// (§5.3) — the six personally-identifiable Customer columns (C_FIRST,
// C_LAST, C_STREET_1, C_STREET_2, C_CITY, C_STATE) encrypted under a single
// CEK, no ORDER BY C_FIRST (the median customer is picked by a client-side
// sort), and a NONCLUSTERED non-unique index CUSTOMER_NC1 on
// (C_W_ID, C_D_ID, C_LAST, C_FIRST, C_ID).
//
// The workload driver (bench.go) is the Benchcraft analog: N client threads,
// each with its own connection, running the standard transaction mix.
package tpcc

import (
	"fmt"
	"strings"

	"alwaysencrypted/internal/sqltypes"
)

// Mode selects the encryption configuration of §5.2.
type Mode int

const (
	// ModePlaintext is SQL-PT: no encryption, non-AE connection string.
	ModePlaintext Mode = iota
	// ModePlaintextAEConn is SQL-PT-AEConn: no encryption, but the AE
	// connection string adds the describe round trip.
	ModePlaintextAEConn
	// ModeDET is SQL-AE-DET: PII columns deterministically encrypted with
	// enclave-disabled keys.
	ModeDET
	// ModeRND is SQL-AE-RND: PII columns randomized-encrypted with
	// enclave-enabled keys.
	ModeRND
	// ModeRNDStock is SQL-AE-RND plus STOCK.S_QUANTITY randomized-encrypted
	// under the same enclave-enabled CEK. It puts enclave expression work on
	// the NewOrder and Stock-Level hot paths (every s_quantity predicate
	// routes through the enclave) and is the configuration the batching
	// ablation (-experiment batch) measures crossings-per-transaction on.
	ModeRNDStock
)

func (m Mode) String() string {
	switch m {
	case ModePlaintext:
		return "SQL-PT"
	case ModePlaintextAEConn:
		return "SQL-PT-AEConn"
	case ModeDET:
		return "SQL-AE-DET"
	case ModeRND:
		return "SQL-AE-RND"
	case ModeRNDStock:
		return "SQL-AE-RND-STOCK"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Encrypted reports whether the mode stores ciphertext.
func (m Mode) Encrypted() bool { return m == ModeDET || m == ModeRND || m == ModeRNDStock }

// EnclaveEnabled reports whether the mode provisions enclave-enabled keys.
func (m Mode) EnclaveEnabled() bool { return m == ModeRND || m == ModeRNDStock }

// AEConnection reports whether the driver uses the AE connection string.
func (m Mode) AEConnection() bool { return m != ModePlaintext }

// piiColumns are the encrypted Customer columns of §5.3.
var piiColumns = []string{"c_first", "c_last", "c_street_1", "c_street_2", "c_city", "c_state"}

// encClause renders the ENCRYPTED WITH clause for a PII column under the
// mode, using the single CEK of §5.3 ("the simplest configuration of using
// the same CEK for all encrypted columns").
func encClause(m Mode, cek string) string {
	switch m {
	case ModeDET:
		return fmt.Sprintf(" ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = %s, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')", cek)
	case ModeRND, ModeRNDStock:
		return fmt.Sprintf(" ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = %s, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')", cek)
	default:
		return ""
	}
}

// SchemaDDL returns the CREATE TABLE / CREATE INDEX statements for the mode.
func SchemaDDL(m Mode, cek string) []string {
	e := func(col, typ string) string {
		for _, pii := range piiColumns {
			if col == pii {
				return col + " " + typ + encClause(m, cek)
			}
		}
		return col + " " + typ
	}
	// sq encrypts STOCK.S_QUANTITY only in the stock-encrypted ablation mode.
	sq := func(col, typ string) string {
		if m == ModeRNDStock {
			return col + " " + typ + encClause(m, cek)
		}
		return col + " " + typ
	}
	ddl := []string{
		`CREATE TABLE warehouse (w_id int PRIMARY KEY, w_name varchar(10),
			w_street_1 varchar(20), w_city varchar(20), w_state char(2), w_zip char(9),
			w_tax float, w_ytd float)`,
		`CREATE TABLE district (d_w_id int PRIMARY KEY, d_id int PRIMARY KEY,
			d_name varchar(10), d_street_1 varchar(20), d_city varchar(20),
			d_state char(2), d_zip char(9), d_tax float, d_ytd float, d_next_o_id int)`,
		fmt.Sprintf(`CREATE TABLE customer (c_w_id int PRIMARY KEY, c_d_id int PRIMARY KEY,
			c_id int PRIMARY KEY, %s, c_middle char(2), %s, %s, %s, %s, %s,
			c_zip char(9), c_phone char(16), c_since datetime, c_credit char(2),
			c_credit_lim float, c_discount float, c_balance float, c_ytd_payment float,
			c_payment_cnt int, c_delivery_cnt int, c_data varchar(250))`,
			e("c_first", "varchar(16)"), e("c_last", "varchar(16)"),
			e("c_street_1", "varchar(20)"), e("c_street_2", "varchar(20)"),
			e("c_city", "varchar(20)"), e("c_state", "char(2)")),
		`CREATE TABLE history (h_c_id int, h_c_d_id int, h_c_w_id int,
			h_d_id int, h_w_id int, h_date datetime, h_amount float, h_data varchar(24))`,
		`CREATE TABLE neworder (no_w_id int PRIMARY KEY, no_d_id int PRIMARY KEY,
			no_o_id int PRIMARY KEY)`,
		`CREATE TABLE orders (o_w_id int PRIMARY KEY, o_d_id int PRIMARY KEY,
			o_id int PRIMARY KEY, o_c_id int, o_entry_d datetime, o_carrier_id int,
			o_ol_cnt int, o_all_local int)`,
		`CREATE TABLE orderline (ol_w_id int PRIMARY KEY, ol_d_id int PRIMARY KEY,
			ol_o_id int PRIMARY KEY, ol_number int PRIMARY KEY, ol_i_id int,
			ol_supply_w_id int, ol_delivery_d datetime, ol_quantity int,
			ol_amount float, ol_dist_info char(24))`,
		`CREATE TABLE item (i_id int PRIMARY KEY, i_im_id int, i_name varchar(24),
			i_price float, i_data varchar(50))`,
		fmt.Sprintf(`CREATE TABLE stock (s_w_id int PRIMARY KEY, s_i_id int PRIMARY KEY,
			%s, s_ytd float, s_order_cnt int, s_remote_cnt int,
			s_data varchar(50))`, sq("s_quantity", "int")),
		// §5.3: NONCLUSTERED non-unique index (the spec would require a
		// unique constraint on these columns).
		`CREATE NONCLUSTERED INDEX customer_nc1 ON customer (c_w_id, c_d_id, c_last, c_first, c_id)`,
		// Secondary index used by Order-Status (latest order per customer).
		`CREATE INDEX orders_cust ON orders (o_w_id, o_d_id, o_c_id, o_id)`,
		// Secondary index used by Stock-Level's join probe.
		`CREATE INDEX stock_item ON stock (s_i_id)`,
	}
	for i := range ddl {
		ddl[i] = strings.Join(strings.Fields(ddl[i]), " ")
	}
	return ddl
}

// Scale configures the (scaled-down) database population. The paper ran
// W=800 on a 20-core VM (24M customer rows); this reproduction defaults to
// laptop scale while preserving the schema, access patterns and transaction
// mix. Districts stay at 10 per the transaction profiles.
type Scale struct {
	Warehouses               int
	DistrictsPerWarehouse    int
	CustomersPerDistrict     int
	Items                    int
	InitialOrdersPerDistrict int
}

// DefaultScale is the laptop-scale default.
func DefaultScale() Scale {
	return Scale{
		Warehouses:               2,
		DistrictsPerWarehouse:    10,
		CustomersPerDistrict:     30,
		Items:                    100,
		InitialOrdersPerDistrict: 10,
	}
}

// lastNameSyllables are the TPC-C §4.3.2.3 syllables.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds the spec's synthetic last name from a number.
func LastName(n int) string {
	return lastNameSyllables[(n/100)%10] + lastNameSyllables[(n/10)%10] + lastNameSyllables[n%10]
}

// nameSpace is the size of the last-name distribution at this scale,
// preserving the spec's ~3 customers per last name (3000 customers over
// 1000 names): a by-name customer selection touches several rows, each of
// which costs an expression evaluation — the §5.3 hot path.
func (s Scale) nameSpace() int {
	n := s.CustomersPerDistrict / 3
	if n < 1 {
		n = 1
	}
	if n > 1000 {
		n = 1000
	}
	return n
}

func iv(v int64) sqltypes.Value   { return sqltypes.Int(v) }
func fv(v float64) sqltypes.Value { return sqltypes.Float(v) }
func sv(v string) sqltypes.Value  { return sqltypes.Str(v) }

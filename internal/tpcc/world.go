package tpcc

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"time"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/engine"
	"alwaysencrypted/internal/keys"
	"alwaysencrypted/internal/obs"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/tds"
)

// World is a complete deployment: key infrastructure, enclave, engine, TDS
// server on a TCP listener, and the client-side provider registry + policy.
// It corresponds to the full Figure 3 architecture.
type World struct {
	Mode   Mode
	Scale  Scale
	Engine *engine.Engine
	Encl   *enclave.Enclave
	Server *tds.Server
	Addr   string

	// Obs is the shared registry every layer of the world reports into:
	// enclave queue and evaluator, engine statement pipeline, buffer pool,
	// and the per-transaction-type latency histograms below.
	Obs      *obs.Registry
	latHists [5]*obs.Histogram

	Registry *keys.ProviderRegistry
	Policy   attestation.Policy
	Vault    *keys.MemoryVault

	listener   net.Listener
	rowLoad    bool
	rowsLoaded int64
}

// RowsLoaded reports how many rows the last Load populated — the
// denominator of the write benchmark's load-rate arm.
func (w *World) RowsLoaded() int64 { return w.rowsLoaded }

// TxTypeNames names the five transaction types, indexed like ByType.
var TxTypeNames = [5]string{"new_order", "payment", "order_status", "delivery", "stock_level"}

// WorldOptions tune the deployment.
type WorldOptions struct {
	Mode           Mode
	Scale          Scale
	EnclaveThreads int  // §5.1 allocates four
	SyncEnclave    bool // ablation: disable the §4.6 queue
	CTR            bool
	// BatchSize is the engine's rows-per-batch for batched expression
	// evaluation; 0 uses engine.DefaultBatchSize. The batch ablation
	// (-experiment batch) sweeps it.
	BatchSize int
	// Trace enables per-statement tracing with the given policy; nil leaves
	// the world untraced. The trace experiment (-experiment trace) uses it
	// for both the overhead comparison and the attribution capture.
	Trace *trace.Policy
	// RowAtATimeLoad makes Load insert one row per statement instead of
	// batching through the driver's bulk path — the pre-bulk behaviour, kept
	// as the write benchmark's world-load baseline.
	RowAtATimeLoad bool
	// DisableGroupCommit makes every committer append its own WAL commit
	// record (the write benchmark's baseline arm).
	DisableGroupCommit bool
	// CommitWindow stretches the group-commit leader's collection window;
	// zero coalesces only what queues naturally.
	CommitWindow time.Duration
	// LogSyncDelay models the commit path's stable-media flush latency; the
	// write benchmark sets it so commit batching has a real cost to
	// amortize. Zero keeps the in-memory log free.
	LogSyncDelay time.Duration
}

// CEKName is the single CEK used for all encrypted columns (§5.3).
const CEKName = "TPCC_CEK"

// CMKName is its wrapping master key.
const CMKName = "TPCC_CMK"

// NewWorld stands the deployment up and creates the schema (no data).
func NewWorld(opt WorldOptions) (*World, error) {
	if opt.Scale.Warehouses == 0 {
		opt.Scale = DefaultScale()
	}
	if opt.EnclaveThreads == 0 {
		opt.EnclaveThreads = 4
	}
	w := &World{Mode: opt.Mode, Scale: opt.Scale, Obs: obs.New("tpcc"), rowLoad: opt.RowAtATimeLoad}
	for i, name := range TxTypeNames {
		w.latHists[i] = w.Obs.Histogram("tpcc.latency." + name)
	}

	authorKey, err := aecrypto.GenerateRSAKey()
	if err != nil {
		return nil, err
	}
	image, err := enclave.SignImage(authorKey, []byte("tpcc-es-enclave"), 2)
	if err != nil {
		return nil, err
	}
	w.Encl, err = enclave.Load(image, 10, enclave.Options{
		Threads:      opt.EnclaveThreads,
		Synchronous:  opt.SyncEnclave,
		SpinDuration: spinForHost(),
		CrossingCost: time.Microsecond,
		Obs:          w.Obs,
	})
	if err != nil {
		return nil, err
	}

	hgs, err := attestation.NewHGS()
	if err != nil {
		return nil, err
	}
	tcg := []byte("tpcc-host-boot")
	host, err := attestation.NewHost(tcg, 10)
	if err != nil {
		return nil, err
	}
	hgs.RegisterHost(tcg)
	w.Policy = attestation.Policy{
		HGSKey:            hgs.SigningKey(),
		TrustedAuthorIDs:  []attestation.Measurement{image.AuthorID()},
		MinEnclaveVersion: 2,
		MinHostVersion:    10,
	}

	var tracer *trace.Tracer
	if opt.Trace != nil {
		tracer = trace.NewTracer(*opt.Trace)
	}
	w.Engine = engine.New(engine.Config{Enclave: w.Encl, Host: host, HGS: hgs, CTR: opt.CTR, Obs: w.Obs,
		BatchSize: opt.BatchSize, Tracer: tracer,
		DisableGroupCommit: opt.DisableGroupCommit, CommitWindow: opt.CommitWindow,
		LogSyncDelay: opt.LogSyncDelay})
	w.Server = tds.NewServer(w.Engine)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w.listener = l
	w.Addr = l.Addr().String()
	go w.Server.Serve(l)

	w.Vault = keys.NewMemoryVault(keys.ProviderVault)
	w.Registry = keys.NewProviderRegistry()
	w.Registry.Register(w.Vault)

	if err := w.provisionKeys(); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.createSchema(); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// Close tears the deployment down.
func (w *World) Close() {
	if w.listener != nil {
		w.listener.Close()
	}
	if w.Server != nil {
		w.Server.Close()
	}
	if w.Encl != nil {
		w.Encl.Close()
	}
}

// DriverConfig builds the client configuration for the world's mode.
func (w *World) DriverConfig(describeCache bool) driver.Config {
	return driver.Config{
		AlwaysEncrypted: w.Mode.AEConnection(),
		Providers:       w.Registry,
		Policy:          &w.Policy,
		DescribeCache:   describeCache,
	}
}

// Connect opens a driver connection over TCP.
func (w *World) Connect(describeCache bool, cache *driver.Cache) (*driver.Conn, error) {
	return driver.Dial(w.Addr, w.DriverConfig(describeCache), cache)
}

// ConnectPipe opens an in-process connection (no TCP) — used by the loader.
func (w *World) ConnectPipe(describeCache bool, cache *driver.Cache) *driver.Conn {
	client, server := net.Pipe()
	go w.Server.ServeConn(server)
	return driver.Open(client, w.DriverConfig(describeCache), cache)
}

// provisionKeys installs the CMK in the vault and registers the metadata
// through DDL, in every mode (unused in plaintext modes but harmless —
// customers often provision keys before turning encryption on).
func (w *World) provisionKeys() error {
	path := "https://vault.tpcc/keys/" + CMKName
	if _, err := w.Vault.CreateKey(path); err != nil {
		return err
	}
	enclaveEnabled := w.Mode.EnclaveEnabled()
	cmk, err := keys.ProvisionCMK(w.Vault, CMKName, path, enclaveEnabled)
	if err != nil {
		return err
	}
	cek, _, err := keys.ProvisionCEK(w.Vault, cmk, CEKName)
	if err != nil {
		return err
	}
	conn := w.ConnectPipe(true, nil)
	defer conn.Close()
	enclClause := ""
	if enclaveEnabled {
		enclClause = fmt.Sprintf(", ENCLAVE_COMPUTATIONS (SIGNATURE = 0x%x)", cmk.Signature)
	}
	if _, err := conn.Exec(fmt.Sprintf(
		"CREATE COLUMN MASTER KEY %s WITH (KEY_STORE_PROVIDER_NAME = '%s', KEY_PATH = '%s'%s)",
		CMKName, keys.ProviderVault, path, enclClause), nil); err != nil {
		return err
	}
	val := cek.PrimaryValue()
	_, err = conn.Exec(fmt.Sprintf(
		"CREATE COLUMN ENCRYPTION KEY %s WITH VALUES (COLUMN_MASTER_KEY = %s, ALGORITHM = 'RSA_OAEP', ENCRYPTED_VALUE = 0x%x, SIGNATURE = 0x%x)",
		CEKName, CMKName, val.EncryptedValue, val.Signature), nil)
	return err
}

func (w *World) createSchema() error {
	conn := w.ConnectPipe(true, nil)
	defer conn.Close()
	for _, ddl := range SchemaDDL(w.Mode, CEKName) {
		if _, err := conn.Exec(ddl, nil); err != nil {
			return fmt.Errorf("tpcc: schema: %w (%s)", err, ddl)
		}
	}
	return nil
}

// spinForHost sizes the §4.6 idle-spin window to the machine: on multi-core
// hosts enclave workers can afford to poll before sleeping, but on a single
// core spinning workers would steal the CPU from the host workers feeding
// them.
func spinForHost() time.Duration {
	if runtime.NumCPU() > 1 {
		return 20 * time.Microsecond
	}
	return 2 * time.Microsecond
}

// nuRandC is the per-run constant of the NURand function (TPC-C §2.1.6).
var nuRandC = rand.New(rand.NewSource(99)).Intn(256)

// nuRand is the TPC-C non-uniform random function over [x, y].
func nuRand(rng *rand.Rand, a, x, y int) int {
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + nuRandC) % (y - x + 1)) + x
}

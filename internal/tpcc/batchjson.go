package tpcc

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// BatchSchema identifies the BENCH_batch.json layout. Bump only with a new
// suffix; downstream tooling keys on this string.
const BatchSchema = "alwaysencrypted/tpcc-batch/v1"

// BatchReport is the stable serialized form of the batching ablation: one
// run per engine batch size, each measuring the NewOrder/Stock-Level
// workload on a fresh SQL-AE-RND-STOCK world with a synchronous enclave.
type BatchReport struct {
	Schema      string `json:"schema"`
	Mode        string `json:"mode"`
	SyncEnclave bool   `json:"sync_enclave"`
	TxPerPhase  int    `json:"tx_per_phase"`

	Runs []BatchRun `json:"runs"`

	// Reductions maps each phase to crossings-per-transaction at the
	// smallest batch size divided by the same at the largest — the §4.6
	// amortization factor. Phases with no crossings at either endpoint
	// (NewOrder's plaintext-predicate point lookups) are omitted.
	Reductions map[string]float64 `json:"reductions"`
}

// BatchRun is one swept batch size.
type BatchRun struct {
	BatchSize int                   `json:"batch_size"`
	Phases    map[string]BatchPhase `json:"phases"`
}

// BatchPhase summarizes one workload phase at one batch size. Latencies are
// client-observed per-transaction wall time in microseconds.
type BatchPhase struct {
	Tx             int     `json:"tx"`
	Crossings      uint64  `json:"crossings"`
	EnclaveEvals   uint64  `json:"enclave_evals"`
	CrossingsPerTx float64 `json:"crossings_per_tx"`
	P50US          int64   `json:"p50_us"`
	P95US          int64   `json:"p95_us"`
}

// WriteFile serializes the report to path (the BENCH_batch.json artifact).
func (rep *BatchReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ValidateBatchReport checks the invariants downstream tooling relies on.
// It parses from bytes so tests can validate the written artifact verbatim.
func ValidateBatchReport(b []byte) (*BatchReport, error) {
	var rep BatchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("tpcc: batch report: %w", err)
	}
	if rep.Schema != BatchSchema {
		return nil, fmt.Errorf("tpcc: batch report schema %q, want %q", rep.Schema, BatchSchema)
	}
	if len(rep.Runs) < 2 {
		return nil, fmt.Errorf("tpcc: batch report needs >= 2 batch sizes, got %d", len(rep.Runs))
	}
	prev := 0
	for i, run := range rep.Runs {
		if run.BatchSize <= prev {
			return nil, fmt.Errorf("tpcc: run %d: batch sizes must ascend (%d after %d)", i, run.BatchSize, prev)
		}
		prev = run.BatchSize
		for _, name := range batchPhases {
			ph, ok := run.Phases[name]
			if !ok {
				return nil, fmt.Errorf("tpcc: run %d: missing phase %q", i, name)
			}
			if ph.Tx <= 0 {
				return nil, fmt.Errorf("tpcc: run %d %s: no transactions", i, name)
			}
			if ph.P50US > ph.P95US {
				return nil, fmt.Errorf("tpcc: run %d %s: p50 %d > p95 %d", i, name, ph.P50US, ph.P95US)
			}
			want := float64(ph.Crossings) / float64(ph.Tx)
			if math.Abs(ph.CrossingsPerTx-want) > 1e-6 {
				return nil, fmt.Errorf("tpcc: run %d %s: crossings_per_tx %g inconsistent with %d/%d",
					i, name, ph.CrossingsPerTx, ph.Crossings, ph.Tx)
			}
		}
	}
	if _, ok := rep.Reductions["combined"]; !ok {
		return nil, fmt.Errorf("tpcc: batch report missing combined reduction")
	}
	if _, ok := rep.Reductions["stock_level"]; !ok {
		return nil, fmt.Errorf("tpcc: batch report missing stock_level reduction")
	}
	return &rep, nil
}

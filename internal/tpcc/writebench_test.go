package tpcc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteBenchReportRoundTrip writes a report the way the write experiment
// does and validates the artifact bytes verbatim, as downstream tooling will.
func TestWriteBenchReportRoundTrip(t *testing.T) {
	rep := NewWriteBenchReport(
		[]WriteTpsPoint{
			{Threads: 1, Warehouses: 16, GroupCommit: true, SyncDelayUS: 2000, Committed: 400, Throughput: 200},
			{Threads: 8, Warehouses: 16, GroupCommit: false, SyncDelayUS: 2000, Committed: 480, Throughput: 240},
		},
		[]WriteLoadArm{
			{Path: "bulk", Warehouses: 64, SyncDelayUS: 200, Rows: 83154, DurationMs: 900, RowsPerSecond: 92000},
			{Path: "row_at_a_time", Warehouses: 64, SyncDelayUS: 200, Rows: 83154, DurationMs: 21000, RowsPerSecond: 3950},
		},
	)
	path := filepath.Join(t.TempDir(), "BENCH_write.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateWriteBenchReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Throughput) != 2 || len(got.Load) != 2 {
		t.Fatalf("round trip lost points: %+v", got)
	}
	if got.Load[0].SyncDelayUS != 200 || got.Throughput[0].Warehouses != 16 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

// TestWriteBenchReportRejects: the validator must refuse artifacts missing
// the invariants the acceptance tooling keys on.
func TestWriteBenchReportRejects(t *testing.T) {
	bulkOnly := NewWriteBenchReport(
		[]WriteTpsPoint{{Threads: 8, Throughput: 100}},
		[]WriteLoadArm{{Path: "bulk", Rows: 10, RowsPerSecond: 1}},
	)
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := bulkOnly.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateWriteBenchReport(b); err == nil || !strings.Contains(err.Error(), "row_at_a_time") {
		t.Fatalf("missing-arm report validated: %v", err)
	}
	if _, err := ValidateWriteBenchReport([]byte(`{"schema":"wrong"}`)); err == nil {
		t.Fatal("wrong-schema report validated")
	}
}

package tpcc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/obs"
)

// BenchConfig parameterizes one benchmark run (one bar of Figures 8/9).
type BenchConfig struct {
	Mode           Mode
	Scale          Scale
	Threads        int // TPC-C client driver threads (horizontal axis of Fig. 8)
	Duration       time.Duration
	EnclaveThreads int  // 1 vs 4 for SQL-AE-RND-1 vs SQL-AE-RND-4 (Fig. 9)
	SyncEnclave    bool // ablation: synchronous enclave calls (§4.6 off)
	DescribeCache  bool // ablation: the §5.4.1 "not fundamental" optimization
	Warmup         time.Duration
}

// Result summarizes a run. Everything beyond the throughput numbers is read
// from the world's obs registry, scoped to the measurement window by
// snapshot deltas (counters) and a post-warmup reset (histograms).
type Result struct {
	Config       BenchConfig
	Committed    int
	Aborted      int
	Duration     time.Duration
	Throughput   float64 // committed transactions per second
	ByType       [5]int
	EnclaveEvals uint64

	// Latencies holds committed-transaction latency per type, indexed like
	// ByType (see TxTypeNames).
	Latencies [5]obs.HistogramSnapshot
	// Boundary traffic (§4.6, Fig. 5): crossings paid and queue behaviour.
	Crossings     uint64
	QueueTasks    uint64
	QueueParks    uint64
	QueueSpinHits uint64
	QueueWait     obs.HistogramSnapshot // submit-to-start wait
	EvalCall      obs.HistogramSnapshot // host-observed EvalExpression latency
	// Buffer pool activity during the measurement window.
	PoolHits      uint64
	PoolMisses    uint64
	PoolEvictions uint64
}

// Run stands up a fresh world, loads it, runs the mix for the configured
// duration across Threads terminals, and reports throughput.
func Run(cfg BenchConfig) (*Result, error) {
	if cfg.Scale.Warehouses == 0 {
		cfg.Scale = DefaultScale()
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Second
	}
	world, err := NewWorld(WorldOptions{
		Mode: cfg.Mode, Scale: cfg.Scale,
		EnclaveThreads: cfg.EnclaveThreads, SyncEnclave: cfg.SyncEnclave, CTR: true,
	})
	if err != nil {
		return nil, err
	}
	defer world.Close()
	if err := world.Load(); err != nil {
		return nil, fmt.Errorf("tpcc: load: %w", err)
	}
	return RunOnWorld(world, cfg)
}

// RunOnWorld runs the workload against an already-loaded world.
func RunOnWorld(world *World, cfg BenchConfig) (*Result, error) {
	sharedCache := driver.NewCache() // process-wide caches (§4.1)
	terminals := make([]*Terminal, cfg.Threads)
	for i := range terminals {
		conn, err := world.Connect(cfg.DescribeCache, sharedCache)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		home := 1 + i%world.Scale.Warehouses
		terminals[i] = NewTerminal(world, conn, home, int64(1000+i))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	runPhase := func(d time.Duration) {
		stop.Store(false)
		timer := time.AfterFunc(d, func() { stop.Store(true) })
		defer timer.Stop()
		for _, term := range terminals {
			wg.Add(1)
			go func(t *Terminal) {
				defer wg.Done()
				for !stop.Load() {
					// Aborted transactions (lock timeouts, retries) are
					// counted but do not stop the terminal.
					_ = t.RunOne()
				}
			}(term)
		}
		wg.Wait()
	}

	if cfg.Warmup > 0 {
		runPhase(cfg.Warmup)
		for _, term := range terminals {
			term.Committed, term.Aborted, term.ByType = 0, 0, [5]int{}
		}
	}
	// Scope instruments to the measurement window: histograms restart empty,
	// counters are diffed against this snapshot. The terminals are quiescent
	// here, so the reset does not race recording.
	world.Obs.ResetHistograms()
	before := world.Obs.Snapshot()

	start := time.Now()
	runPhase(cfg.Duration)
	elapsed := time.Since(start)

	after := world.Obs.Snapshot()
	res := &Result{Config: cfg, Duration: elapsed}
	for _, term := range terminals {
		res.Committed += term.Committed
		res.Aborted += term.Aborted
		for i := range term.ByType {
			res.ByType[i] += term.ByType[i]
		}
	}
	res.Throughput = float64(res.Committed) / elapsed.Seconds()

	delta := func(name string) uint64 { return obs.CounterDelta(before, after, name) }
	res.EnclaveEvals = delta("enclave.evals")
	res.Crossings = delta("enclave.crossings")
	res.QueueTasks = delta("enclave.queue.tasks")
	res.QueueParks = delta("enclave.queue.parks")
	res.QueueSpinHits = delta("enclave.queue.spin_hits")
	res.PoolHits = delta("storage.pool.hits")
	res.PoolMisses = delta("storage.pool.misses")
	res.PoolEvictions = delta("storage.pool.evictions")
	for i, name := range TxTypeNames {
		res.Latencies[i] = after.Histograms["tpcc.latency."+name]
	}
	res.QueueWait = after.Histograms["enclave.queue.wait_ns"]
	res.EvalCall = after.Histograms["enclave.eval.call_ns"]
	return res, nil
}

package tpcc

import (
	"math"
	"testing"
	"time"

	"alwaysencrypted/internal/sqltypes"
)

// TestMoneyInvariantsAfterMix checks TPC-C consistency conditions after a
// concurrent run (the spec's consistency requirements 1–3, scaled):
//
//	C1: for each warehouse, W_YTD = sum(D_YTD) of its districts
//	    (Payment updates both by the same amount).
//	C2: for each district, D_NEXT_O_ID - 1 = max(O_ID) of its orders.
//	C3: order count per district equals the O_ID range (no gaps/dups).
func TestMoneyInvariantsAfterMix(t *testing.T) {
	for _, mode := range []Mode{ModePlaintext, ModeRND} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			w := loadWorld(t, mode)
			if _, err := RunOnWorld(w, BenchConfig{
				Mode: mode, Scale: w.Scale, Threads: 4, Duration: 700 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			conn := w.ConnectPipe(true, nil)
			defer conn.Close()

			for wid := 1; wid <= w.Scale.Warehouses; wid++ {
				rows, err := conn.Exec("SELECT w_ytd FROM warehouse WHERE w_id = @w",
					map[string]sqltypes.Value{"w": iv(int64(wid))})
				if err != nil {
					t.Fatal(err)
				}
				wYTD := rows.Values[0][0].F
				rows, err = conn.Exec("SELECT SUM(d_ytd) FROM district WHERE d_w_id = @w",
					map[string]sqltypes.Value{"w": iv(int64(wid))})
				if err != nil {
					t.Fatal(err)
				}
				dSum := rows.Values[0][0].F
				// Initial: w_ytd=300000, 10 districts × 30000 = 300000.
				if math.Abs(wYTD-dSum) > 0.01 {
					t.Fatalf("C1 violated for warehouse %d: w_ytd=%.2f sum(d_ytd)=%.2f", wid, wYTD, dSum)
				}

				for did := 1; did <= w.Scale.DistrictsPerWarehouse; did++ {
					rows, err = conn.Exec("SELECT d_next_o_id FROM district WHERE d_w_id = @w AND d_id = @d",
						map[string]sqltypes.Value{"w": iv(int64(wid)), "d": iv(int64(did))})
					if err != nil {
						t.Fatal(err)
					}
					next := rows.Values[0][0].I
					rows, err = conn.Exec("SELECT MAX(o_id), COUNT(*), MIN(o_id) FROM orders WHERE o_w_id = @w AND o_d_id = @d",
						map[string]sqltypes.Value{"w": iv(int64(wid)), "d": iv(int64(did))})
					if err != nil {
						t.Fatal(err)
					}
					maxO, count, minO := rows.Values[0][0].I, rows.Values[0][1].I, rows.Values[0][2].I
					if maxO != next-1 {
						t.Fatalf("C2 violated for district %d/%d: d_next_o_id=%d max(o_id)=%d", wid, did, next, maxO)
					}
					if count != maxO-minO+1 {
						t.Fatalf("C3 violated for district %d/%d: %d orders in id range [%d,%d]",
							wid, did, count, minO, maxO)
					}
				}
			}
		})
	}
}

// TestEncryptedPIIRoundTripsAfterMix: after concurrent load in RND mode,
// every customer's encrypted fields still decrypt to well-formed values (no
// corruption under concurrency).
func TestEncryptedPIIRoundTripsAfterMix(t *testing.T) {
	w := loadWorld(t, ModeRND)
	if _, err := RunOnWorld(w, BenchConfig{
		Mode: ModeRND, Scale: w.Scale, Threads: 4, Duration: 500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	conn := w.ConnectPipe(true, nil)
	defer conn.Close()
	rows, err := conn.Exec("SELECT c_last, c_first, c_city FROM customer WHERE c_w_id = @w AND c_d_id = @d",
		map[string]sqltypes.Value{"w": iv(1), "d": iv(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Values) != w.Scale.CustomersPerDistrict {
		t.Fatalf("customers = %d", len(rows.Values))
	}
	for i, r := range rows.Values {
		if r[0].Kind != sqltypes.KindString || r[0].S == "" {
			t.Fatalf("row %d: c_last = %v", i, r[0])
		}
		if r[2].S != "Portland" {
			t.Fatalf("row %d: c_city = %v", i, r[2])
		}
	}
}

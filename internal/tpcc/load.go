package tpcc

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/sqltypes"
)

// loader buffers generated rows for one table and flushes them through the
// driver's bulk-insert fast path. With the world's RowAtATimeLoad option it
// degrades to one INSERT statement per row — the pre-bulk behaviour, kept as
// the write benchmark's baseline arm. Both paths consume the generator's
// random draws in exactly the same order, so they load identical worlds.
type loader struct {
	conn   *driver.Conn
	bulk   bool
	table  string
	cols   []string
	query  string
	rows   [][]sqltypes.Value
	loaded *int64 // world-wide row count, for load-rate reporting
}

// loadFlushRows bounds how many rows a loader buffers before flushing, so a
// large world never materializes a whole table in memory.
const loadFlushRows = 4096

func newLoader(conn *driver.Conn, bulk bool, table string, cols ...string) *loader {
	ps := make([]string, len(cols))
	for i := range cols {
		ps[i] = fmt.Sprintf("@p%d", i+1)
	}
	return &loader{
		conn: conn, bulk: bulk, table: table, cols: cols,
		query: fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
			table, strings.Join(cols, ", "), strings.Join(ps, ", ")),
	}
}

func (l *loader) add(vals ...sqltypes.Value) error {
	if l.loaded != nil {
		*l.loaded++
	}
	if !l.bulk {
		params := make(map[string]sqltypes.Value, len(vals))
		for i, v := range vals {
			params[fmt.Sprintf("p%d", i+1)] = v
		}
		_, err := l.conn.Exec(l.query, params)
		return err
	}
	l.rows = append(l.rows, vals)
	if len(l.rows) >= loadFlushRows {
		return l.flush()
	}
	return nil
}

func (l *loader) flush() error {
	if len(l.rows) == 0 {
		return nil
	}
	n, err := l.conn.BulkInsert(l.table, l.cols, l.rows)
	if err != nil {
		return fmt.Errorf("tpcc: bulk loading %s: %w", l.table, err)
	}
	if n != len(l.rows) {
		return fmt.Errorf("tpcc: bulk loading %s: %d of %d rows acknowledged", l.table, n, len(l.rows))
	}
	l.rows = l.rows[:0]
	return nil
}

// loaders holds one loader per TPC-C table.
type loaders struct {
	item, warehouse, stock, district, customer, orders, neworder, orderline *loader
}

func (ld *loaders) all() []*loader {
	return []*loader{
		ld.item, ld.warehouse, ld.stock, ld.district,
		ld.customer, ld.orders, ld.neworder, ld.orderline,
	}
}

func (ld *loaders) flushAll() error {
	for _, l := range ld.all() {
		if err := l.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Load populates the world per the (scaled) TPC-C population rules. It runs
// through the driver over an in-process connection, so in encrypted modes
// every PII cell is encrypted client-side exactly as a real load would be.
func (w *World) Load() error {
	conn := w.ConnectPipe(true, nil)
	defer conn.Close()
	rng := rand.New(rand.NewSource(7))
	now := time.Now().UnixMicro()
	s := w.Scale
	bulk := !w.rowLoad
	ld := &loaders{
		item:      newLoader(conn, bulk, "item", "i_id", "i_im_id", "i_name", "i_price", "i_data"),
		warehouse: newLoader(conn, bulk, "warehouse", "w_id", "w_name", "w_street_1", "w_city", "w_state", "w_zip", "w_tax", "w_ytd"),
		stock:     newLoader(conn, bulk, "stock", "s_w_id", "s_i_id", "s_quantity", "s_ytd", "s_order_cnt", "s_remote_cnt", "s_data"),
		district:  newLoader(conn, bulk, "district", "d_w_id", "d_id", "d_name", "d_street_1", "d_city", "d_state", "d_zip", "d_tax", "d_ytd", "d_next_o_id"),
		customer: newLoader(conn, bulk, "customer", "c_w_id", "c_d_id", "c_id", "c_first", "c_middle", "c_last",
			"c_street_1", "c_street_2", "c_city", "c_state", "c_zip", "c_phone", "c_since", "c_credit",
			"c_credit_lim", "c_discount", "c_balance", "c_ytd_payment", "c_payment_cnt", "c_delivery_cnt", "c_data"),
		orders:    newLoader(conn, bulk, "orders", "o_w_id", "o_d_id", "o_id", "o_c_id", "o_entry_d", "o_carrier_id", "o_ol_cnt", "o_all_local"),
		neworder:  newLoader(conn, bulk, "neworder", "no_w_id", "no_d_id", "no_o_id"),
		orderline: newLoader(conn, bulk, "orderline", "ol_w_id", "ol_d_id", "ol_o_id", "ol_number", "ol_i_id",
			"ol_supply_w_id", "ol_delivery_d", "ol_quantity", "ol_amount", "ol_dist_info"),
	}
	w.rowsLoaded = 0
	for _, l := range ld.all() {
		l.loaded = &w.rowsLoaded
	}

	for i := 1; i <= s.Items; i++ {
		if err := ld.item.add(
			iv(int64(i)), iv(int64(rng.Intn(10000))),
			sv(fmt.Sprintf("item-%06d", i)),
			fv(1+rng.Float64()*99),
			sv(randData(rng, 26)),
		); err != nil {
			return fmt.Errorf("tpcc: loading item %d: %w", i, err)
		}
	}

	for wid := 1; wid <= s.Warehouses; wid++ {
		if err := ld.warehouse.add(
			iv(int64(wid)), sv(fmt.Sprintf("wh-%d", wid)),
			sv("1 Main St"), sv("Seattle"), sv("WA"),
			sv("981090000"), fv(rng.Float64()*0.2), fv(300000),
		); err != nil {
			return err
		}
		for i := 1; i <= s.Items; i++ {
			if err := ld.stock.add(
				iv(int64(wid)), iv(int64(i)),
				iv(int64(10+rng.Intn(91))), fv(0),
				iv(0), iv(0), sv(randData(rng, 26)),
			); err != nil {
				return err
			}
		}
		for did := 1; did <= s.DistrictsPerWarehouse; did++ {
			if err := w.loadDistrict(ld, rng, wid, did, now); err != nil {
				return err
			}
		}
	}
	return ld.flushAll()
}

func (w *World) loadDistrict(ld *loaders, rng *rand.Rand, wid, did int, now int64) error {
	s := w.Scale
	nextOID := s.InitialOrdersPerDistrict + 1
	if err := ld.district.add(
		iv(int64(wid)), iv(int64(did)),
		sv(fmt.Sprintf("d-%d-%d", wid, did)), sv("2 Side St"),
		sv("Zurich"), sv("ZH"), sv("800100000"),
		fv(rng.Float64()*0.2), fv(30000), iv(int64(nextOID)),
	); err != nil {
		return err
	}

	for cid := 1; cid <= s.CustomersPerDistrict; cid++ {
		last := LastName((cid - 1) % s.nameSpace())
		credit := "GC"
		if rng.Intn(10) == 0 {
			credit = "BC"
		}
		if err := ld.customer.add(
			iv(int64(wid)), iv(int64(did)), iv(int64(cid)),
			sv(fmt.Sprintf("First%04d", rng.Intn(10000))), sv("OE"),
			sv(last),
			sv(fmt.Sprintf("%d Cust St", cid)), sv("Apt 1"),
			sv("Portland"), sv("OR"), sv("970010000"),
			sv("555-0100"), sqltypes.Datetime(now), sv(credit),
			fv(50000), fv(rng.Float64()*0.5), fv(-10),
			fv(10), iv(1), iv(0), sv(randData(rng, 100)),
		); err != nil {
			return fmt.Errorf("tpcc: loading customer %d/%d/%d: %w", wid, did, cid, err)
		}
	}

	// Initial orders: one per customer id 1..InitialOrdersPerDistrict, the
	// last third undelivered (in neworder).
	for oid := 1; oid <= s.InitialOrdersPerDistrict; oid++ {
		cid := 1 + rng.Intn(s.CustomersPerDistrict)
		olCnt := 5 + rng.Intn(6)
		delivered := oid <= s.InitialOrdersPerDistrict*2/3
		carrier := int64(1 + rng.Intn(10))
		if !delivered {
			carrier = 0
		}
		if err := ld.orders.add(
			iv(int64(wid)), iv(int64(did)), iv(int64(oid)),
			iv(int64(cid)), sqltypes.Datetime(now),
			iv(carrier), iv(int64(olCnt)), iv(1),
		); err != nil {
			return err
		}
		if !delivered {
			if err := ld.neworder.add(iv(int64(wid)), iv(int64(did)), iv(int64(oid))); err != nil {
				return err
			}
		}
		for ol := 1; ol <= olCnt; ol++ {
			amount := 0.0
			deliveryD := now
			if !delivered {
				amount = 0.01 + rng.Float64()*9999
				deliveryD = 0
			}
			if err := ld.orderline.add(
				iv(int64(wid)), iv(int64(did)), iv(int64(oid)),
				iv(int64(ol)), iv(int64(1+rng.Intn(w.Scale.Items))),
				iv(int64(wid)), sqltypes.Datetime(deliveryD),
				iv(5), fv(amount), sv(randData(rng, 24)),
			); err != nil {
				return err
			}
		}
	}
	return nil
}

func randData(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n/2+rng.Intn(n/2+1))
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

package tpcc

import (
	"fmt"
	"math/rand"
	"time"

	"alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/sqltypes"
)

// Load populates the world per the (scaled) TPC-C population rules. It runs
// through the driver over an in-process connection, so in encrypted modes
// every PII cell is encrypted client-side exactly as a real load would be.
func (w *World) Load() error {
	conn := w.ConnectPipe(true, nil)
	defer conn.Close()
	rng := rand.New(rand.NewSource(7))
	now := time.Now().UnixMicro()
	s := w.Scale

	for i := 1; i <= s.Items; i++ {
		if _, err := conn.Exec(
			"INSERT INTO item (i_id, i_im_id, i_name, i_price, i_data) VALUES (@a, @b, @c, @d, @e)",
			map[string]sqltypes.Value{
				"a": iv(int64(i)), "b": iv(int64(rng.Intn(10000))),
				"c": sv(fmt.Sprintf("item-%06d", i)),
				"d": fv(1 + rng.Float64()*99),
				"e": sv(randData(rng, 26)),
			}); err != nil {
			return fmt.Errorf("tpcc: loading item %d: %w", i, err)
		}
	}

	for wid := 1; wid <= s.Warehouses; wid++ {
		if _, err := conn.Exec(
			"INSERT INTO warehouse (w_id, w_name, w_street_1, w_city, w_state, w_zip, w_tax, w_ytd) VALUES (@a, @b, @c, @d, @e, @f, @g, @h)",
			map[string]sqltypes.Value{
				"a": iv(int64(wid)), "b": sv(fmt.Sprintf("wh-%d", wid)),
				"c": sv("1 Main St"), "d": sv("Seattle"), "e": sv("WA"),
				"f": sv("981090000"), "g": fv(rng.Float64() * 0.2), "h": fv(300000),
			}); err != nil {
			return err
		}
		for i := 1; i <= s.Items; i++ {
			if _, err := conn.Exec(
				"INSERT INTO stock (s_w_id, s_i_id, s_quantity, s_ytd, s_order_cnt, s_remote_cnt, s_data) VALUES (@a, @b, @c, @d, @e, @f, @g)",
				map[string]sqltypes.Value{
					"a": iv(int64(wid)), "b": iv(int64(i)),
					"c": iv(int64(10 + rng.Intn(91))), "d": fv(0),
					"e": iv(0), "f": iv(0), "g": sv(randData(rng, 26)),
				}); err != nil {
				return err
			}
		}
		for did := 1; did <= s.DistrictsPerWarehouse; did++ {
			if err := w.loadDistrict(conn, rng, wid, did, now); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *World) loadDistrict(conn *driver.Conn, rng *rand.Rand, wid, did int, now int64) error {
	s := w.Scale
	nextOID := s.InitialOrdersPerDistrict + 1
	if _, err := conn.Exec(
		"INSERT INTO district (d_w_id, d_id, d_name, d_street_1, d_city, d_state, d_zip, d_tax, d_ytd, d_next_o_id) VALUES (@a, @b, @c, @d, @e, @f, @g, @h, @i, @j)",
		map[string]sqltypes.Value{
			"a": iv(int64(wid)), "b": iv(int64(did)),
			"c": sv(fmt.Sprintf("d-%d-%d", wid, did)), "d": sv("2 Side St"),
			"e": sv("Zurich"), "f": sv("ZH"), "g": sv("800100000"),
			"h": fv(rng.Float64() * 0.2), "i": fv(30000), "j": iv(int64(nextOID)),
		}); err != nil {
		return err
	}

	for cid := 1; cid <= s.CustomersPerDistrict; cid++ {
		last := LastName((cid - 1) % s.nameSpace())
		credit := "GC"
		if rng.Intn(10) == 0 {
			credit = "BC"
		}
		if _, err := conn.Exec(
			`INSERT INTO customer (c_w_id, c_d_id, c_id, c_first, c_middle, c_last, c_street_1, c_street_2, c_city, c_state, c_zip, c_phone, c_since, c_credit, c_credit_lim, c_discount, c_balance, c_ytd_payment, c_payment_cnt, c_delivery_cnt, c_data) VALUES (@a, @b, @c, @d, @e, @f, @g, @h, @i, @j, @k, @l, @m, @n, @o, @p, @q, @r, @s, @t, @u)`,
			map[string]sqltypes.Value{
				"a": iv(int64(wid)), "b": iv(int64(did)), "c": iv(int64(cid)),
				"d": sv(fmt.Sprintf("First%04d", rng.Intn(10000))), "e": sv("OE"),
				"f": sv(last),
				"g": sv(fmt.Sprintf("%d Cust St", cid)), "h": sv("Apt 1"),
				"i": sv("Portland"), "j": sv("OR"), "k": sv("970010000"),
				"l": sv("555-0100"), "m": sqltypes.Datetime(now), "n": sv(credit),
				"o": fv(50000), "p": fv(rng.Float64() * 0.5), "q": fv(-10),
				"r": fv(10), "s": iv(1), "t": iv(0), "u": sv(randData(rng, 100)),
			}); err != nil {
			return fmt.Errorf("tpcc: loading customer %d/%d/%d: %w", wid, did, cid, err)
		}
	}

	// Initial orders: one per customer id 1..InitialOrdersPerDistrict, the
	// last third undelivered (in neworder).
	for oid := 1; oid <= s.InitialOrdersPerDistrict; oid++ {
		cid := 1 + rng.Intn(s.CustomersPerDistrict)
		olCnt := 5 + rng.Intn(6)
		delivered := oid <= s.InitialOrdersPerDistrict*2/3
		carrier := int64(1 + rng.Intn(10))
		if !delivered {
			carrier = 0
		}
		if _, err := conn.Exec(
			"INSERT INTO orders (o_w_id, o_d_id, o_id, o_c_id, o_entry_d, o_carrier_id, o_ol_cnt, o_all_local) VALUES (@a, @b, @c, @d, @e, @f, @g, @h)",
			map[string]sqltypes.Value{
				"a": iv(int64(wid)), "b": iv(int64(did)), "c": iv(int64(oid)),
				"d": iv(int64(cid)), "e": sqltypes.Datetime(now),
				"f": iv(carrier), "g": iv(int64(olCnt)), "h": iv(1),
			}); err != nil {
			return err
		}
		if !delivered {
			if _, err := conn.Exec(
				"INSERT INTO neworder (no_w_id, no_d_id, no_o_id) VALUES (@a, @b, @c)",
				map[string]sqltypes.Value{"a": iv(int64(wid)), "b": iv(int64(did)), "c": iv(int64(oid))}); err != nil {
				return err
			}
		}
		for ol := 1; ol <= olCnt; ol++ {
			amount := 0.0
			deliveryD := now
			if !delivered {
				amount = 0.01 + rng.Float64()*9999
				deliveryD = 0
			}
			if _, err := conn.Exec(
				"INSERT INTO orderline (ol_w_id, ol_d_id, ol_o_id, ol_number, ol_i_id, ol_supply_w_id, ol_delivery_d, ol_quantity, ol_amount, ol_dist_info) VALUES (@a, @b, @c, @d, @e, @f, @g, @h, @i, @j)",
				map[string]sqltypes.Value{
					"a": iv(int64(wid)), "b": iv(int64(did)), "c": iv(int64(oid)),
					"d": iv(int64(ol)), "e": iv(int64(1 + rng.Intn(w.Scale.Items))),
					"f": iv(int64(wid)), "g": sqltypes.Datetime(deliveryD),
					"h": iv(5), "i": fv(amount), "j": sv(randData(rng, 24)),
				}); err != nil {
				return err
			}
		}
	}
	return nil
}

func randData(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n/2+rng.Intn(n/2+1))
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

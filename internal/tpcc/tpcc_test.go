package tpcc

import (
	"fmt"
	"testing"
	"time"

	"alwaysencrypted/internal/sqltypes"
)

func smallScale() Scale {
	return Scale{
		Warehouses:               1,
		DistrictsPerWarehouse:    10,
		CustomersPerDistrict:     10,
		Items:                    20,
		InitialOrdersPerDistrict: 5,
	}
}

func loadWorld(t *testing.T, mode Mode) *World {
	t.Helper()
	w, err := NewWorld(WorldOptions{Mode: mode, Scale: smallScale(), EnclaveThreads: 2, CTR: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %s", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %s", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %s", LastName(999))
	}
}

func TestSchemaDDLParsesInAllModes(t *testing.T) {
	for _, m := range []Mode{ModePlaintext, ModePlaintextAEConn, ModeDET, ModeRND, ModeRNDStock} {
		stmts := SchemaDDL(m, CEKName)
		if len(stmts) != 12 {
			t.Fatalf("%v: %d statements", m, len(stmts))
		}
	}
}

// checkConsistency verifies the load invariants per mode.
func checkConsistency(t *testing.T, w *World) {
	t.Helper()
	conn := w.ConnectPipe(true, nil)
	defer conn.Close()
	s := w.Scale

	count := func(q string) int64 {
		rows, err := conn.Exec(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return rows.Values[0][0].I
	}
	if got := count("SELECT COUNT(*) FROM warehouse"); got != int64(s.Warehouses) {
		t.Fatalf("warehouses = %d", got)
	}
	if got := count("SELECT COUNT(*) FROM district"); got != int64(s.Warehouses*s.DistrictsPerWarehouse) {
		t.Fatalf("districts = %d", got)
	}
	wantCust := int64(s.Warehouses * s.DistrictsPerWarehouse * s.CustomersPerDistrict)
	if got := count("SELECT COUNT(*) FROM customer"); got != wantCust {
		t.Fatalf("customers = %d want %d", got, wantCust)
	}
	if got := count("SELECT COUNT(*) FROM stock"); got != int64(s.Warehouses*s.Items) {
		t.Fatalf("stock = %d", got)
	}
	wantOrders := int64(s.Warehouses * s.DistrictsPerWarehouse * s.InitialOrdersPerDistrict)
	if got := count("SELECT COUNT(*) FROM orders"); got != wantOrders {
		t.Fatalf("orders = %d", got)
	}
}

func TestLoadPlaintext(t *testing.T) {
	w := loadWorld(t, ModePlaintext)
	checkConsistency(t, w)
}

func TestLoadRNDStoresCiphertext(t *testing.T) {
	w := loadWorld(t, ModeRND)
	checkConsistency(t, w)
	// A non-AE reader sees ciphertext in c_last.
	plain := w.ConnectPipe(false, nil)
	// Force plain connection by dialing without AE.
	cfg := w.DriverConfig(false)
	cfg.AlwaysEncrypted = false
	_ = cfg
	rows, err := plain.Exec("SELECT c_last FROM customer WHERE c_w_id = @w AND c_d_id = @d AND c_id = @c",
		map[string]sqltypes.Value{"w": iv(1), "d": iv(1), "c": iv(1)})
	if err != nil {
		t.Fatal(err)
	}
	// The AE pipe connection decrypts; verify plaintext round-trips, then
	// check the raw store via the engine directly.
	if rows.Values[0][0].S == "" {
		t.Fatal("c_last lost")
	}
	tbl, err := w.Engine.Catalog().Table("customer")
	if err != nil {
		t.Fatal(err)
	}
	col, _ := tbl.Col("c_last")
	if col.Enc.Scheme != sqltypes.SchemeRandomized || !col.Enc.EnclaveEnabled {
		t.Fatalf("c_last enc = %+v", col.Enc)
	}
	plain.Close()
}

// runAllTransactionTypes exercises each transaction explicitly.
func runAllTransactionTypes(t *testing.T, mode Mode) {
	w := loadWorld(t, mode)
	conn, err := w.Connect(false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	term := NewTerminal(w, conn, 1, 42)

	for i := 0; i < 5; i++ {
		if err := term.NewOrder(); err != nil {
			t.Fatalf("NewOrder %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := term.Payment(); err != nil {
			t.Fatalf("Payment %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := term.OrderStatus(); err != nil {
			t.Fatalf("OrderStatus %d: %v", i, err)
		}
	}
	if err := term.Delivery(); err != nil {
		t.Fatalf("Delivery: %v", err)
	}
	if err := term.StockLevel(); err != nil {
		t.Fatalf("StockLevel: %v", err)
	}
}

func TestTransactionsPlaintext(t *testing.T) { runAllTransactionTypes(t, ModePlaintext) }
func TestTransactionsDET(t *testing.T)       { runAllTransactionTypes(t, ModeDET) }
func TestTransactionsRND(t *testing.T)       { runAllTransactionTypes(t, ModeRND) }
func TestTransactionsRNDStock(t *testing.T)  { runAllTransactionTypes(t, ModeRNDStock) }

// TestRNDStockEnclaveOnHotPath: with s_quantity encrypted, NewOrder and
// Stock-Level perform enclave expression work (the batching ablation's hot
// path), and the column is stored randomized + enclave-enabled.
func TestRNDStockEnclaveOnHotPath(t *testing.T) {
	w := loadWorld(t, ModeRNDStock)
	tbl, err := w.Engine.Catalog().Table("stock")
	if err != nil {
		t.Fatal(err)
	}
	col, err := tbl.Col("s_quantity")
	if err != nil {
		t.Fatal(err)
	}
	if col.Enc.Scheme != sqltypes.SchemeRandomized || !col.Enc.EnclaveEnabled {
		t.Fatalf("s_quantity enc = %+v", col.Enc)
	}
	conn, err := w.Connect(false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	term := NewTerminal(w, conn, 1, 42)
	before := w.Encl.Dump().Evaluations
	for i := 0; i < 3; i++ {
		if err := term.NewOrder(); err != nil {
			t.Fatalf("NewOrder %d: %v", i, err)
		}
		if err := term.StockLevel(); err != nil {
			t.Fatalf("StockLevel %d: %v", i, err)
		}
	}
	if after := w.Encl.Dump().Evaluations; after == before {
		t.Fatal("RND-STOCK hot path performed no enclave evaluations")
	}
}

// TestRNDWorkloadUsesEnclave: in RND mode the C_LAST lookups route through
// the enclave; in DET/plaintext modes the enclave stays idle.
func TestRNDWorkloadUsesEnclave(t *testing.T) {
	w := loadWorld(t, ModeRND)
	conn, err := w.Connect(false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	term := NewTerminal(w, conn, 1, 42)
	before := w.Encl.Dump().Evaluations + w.Encl.Dump().QueueTasks
	for i := 0; i < 10; i++ {
		if err := term.Payment(); err != nil {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
	after := w.Encl.Dump().Evaluations + w.Encl.Dump().QueueTasks
	if after == before {
		t.Fatal("RND payments performed no enclave work")
	}

	wd := loadWorld(t, ModeDET)
	connD, err := wd.Connect(false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer connD.Close()
	termD := NewTerminal(wd, connD, 1, 42)
	for i := 0; i < 10; i++ {
		if err := termD.Payment(); err != nil {
			t.Fatalf("DET payment %d: %v", i, err)
		}
	}
	if evals := wd.Encl.Dump().Evaluations; evals != 0 {
		t.Fatalf("DET mode performed %d enclave evaluations", evals)
	}
}

// TestConcurrentMix runs the full mix with several terminals in every mode.
func TestConcurrentMix(t *testing.T) {
	for _, mode := range []Mode{ModePlaintext, ModePlaintextAEConn, ModeDET, ModeRND} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			w := loadWorld(t, mode)
			res, err := RunOnWorld(w, BenchConfig{
				Mode: mode, Scale: w.Scale, Threads: 4, Duration: 500 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed == 0 {
				t.Fatal("no transactions committed")
			}
			total := res.Committed + res.Aborted
			if res.Aborted*5 > total {
				t.Fatalf("abort rate too high: %d/%d", res.Aborted, total)
			}
			t.Logf("%s: %.0f tx/s (%d committed, %d aborted)", mode, res.Throughput, res.Committed, res.Aborted)
		})
	}
}

// TestOrderIDsRemainConsistent: concurrent NewOrders never produce duplicate
// order ids (the district-lock serialization works).
func TestOrderIDsRemainConsistent(t *testing.T) {
	w := loadWorld(t, ModePlaintext)
	res, err := RunOnWorld(w, BenchConfig{
		Mode: ModePlaintext, Scale: w.Scale, Threads: 6, Duration: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	conn := w.ConnectPipe(true, nil)
	defer conn.Close()
	for d := 1; d <= w.Scale.DistrictsPerWarehouse; d++ {
		rows, err := conn.Exec(
			"SELECT COUNT(*), MAX(o_id), MIN(o_id) FROM orders WHERE o_w_id = @w AND o_d_id = @d",
			map[string]sqltypes.Value{"w": iv(1), "d": iv(int64(d))})
		if err != nil {
			t.Fatal(err)
		}
		count, maxO, minO := rows.Values[0][0].I, rows.Values[0][1].I, rows.Values[0][2].I
		if count != maxO-minO+1 {
			t.Fatalf("district %d: %d orders but id range [%d,%d] (duplicates or gaps)",
				d, count, minO, maxO)
		}
	}
}

func TestNuRandInRange(t *testing.T) {
	w := loadWorld(t, ModePlaintext)
	conn, _ := w.Connect(false, nil)
	defer conn.Close()
	term := NewTerminal(w, conn, 1, 1)
	for i := 0; i < 1000; i++ {
		if c := term.randCustomerID(); c < 1 || c > w.Scale.CustomersPerDistrict {
			t.Fatalf("customer id %d out of range", c)
		}
		if it := term.randItem(); it < 1 || it > w.Scale.Items {
			t.Fatalf("item %d out of range", it)
		}
		name := term.randLastName()
		if name == "" {
			t.Fatal("empty last name")
		}
	}
}

func ExampleLastName() {
	fmt.Println(LastName(0), LastName(123), LastName(999))
	// Output: BARBARBAR OUGHTABLEPRI EINGEINGEING
}

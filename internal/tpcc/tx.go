package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
)

// Terminal is one emulated client terminal: a connection, a home warehouse
// and an RNG, executing the five TPC-C transactions.
type Terminal struct {
	world *World
	conn  *driver.Conn
	rng   *rand.Rand
	wID   int

	// Counters
	Committed int
	Aborted   int
	ByType    [5]int

	// CollectTraces turns on per-statement trace-ID collection: every
	// committed transaction's statement IDs are appended to Traces under
	// its type, joining client-side transactions to server-side traces
	// (the trace experiment's attribution capture).
	CollectTraces bool
	Traces        [5][]trace.ID
}

// Transaction type indexes for ByType.
const (
	TxNewOrder = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
)

// NewTerminal binds a terminal to a connection and home warehouse.
func NewTerminal(w *World, conn *driver.Conn, homeWarehouse int, seed int64) *Terminal {
	return &Terminal{world: w, conn: conn, rng: rand.New(rand.NewSource(seed)), wID: homeWarehouse}
}

// errIntentionalRollback marks the spec's 1% NewOrder rollback.
var errIntentionalRollback = errors.New("tpcc: intentional rollback (invalid item)")

// RunOne executes one transaction drawn from the standard mix
// (NewOrder 45, Payment 43, OrderStatus 4, Delivery 4, StockLevel 4).
// Committed transactions record their end-to-end latency into the world's
// per-type histogram.
func (t *Terminal) RunOne() error {
	roll := t.rng.Intn(100)
	if t.CollectTraces {
		t.conn.CollectTraceIDs(true)
	}
	start := t.world.Obs.Now()
	var err error
	var typ int
	switch {
	case roll < 45:
		typ, err = TxNewOrder, t.NewOrder()
	case roll < 88:
		typ, err = TxPayment, t.Payment()
	case roll < 92:
		typ, err = TxOrderStatus, t.OrderStatus()
	case roll < 96:
		typ, err = TxDelivery, t.Delivery()
	default:
		typ, err = TxStockLevel, t.StockLevel()
	}
	if err == nil || errors.Is(err, errIntentionalRollback) {
		t.world.latHists[typ].ObserveSince(start)
		t.Committed++
		t.ByType[typ]++
		if t.CollectTraces {
			t.Traces[typ] = append(t.Traces[typ], t.conn.CollectedTraceIDs()...)
		}
		return nil
	}
	t.Aborted++
	return err
}

// abortOn rolls back and returns err (helper for mid-transaction failures).
func (t *Terminal) abortOn(err error) error {
	t.conn.Rollback()
	return err
}

func (t *Terminal) randDistrict() int {
	return 1 + t.rng.Intn(t.world.Scale.DistrictsPerWarehouse)
}

func (t *Terminal) randCustomerID() int {
	return nuRand(t.rng, 1023, 1, t.world.Scale.CustomersPerDistrict)
}

func (t *Terminal) randItem() int {
	return nuRand(t.rng, 8191, 1, t.world.Scale.Items)
}

func (t *Terminal) randLastName() string {
	ns := t.world.Scale.nameSpace()
	return LastName(nuRand(t.rng, 255, 0, ns-1) % ns)
}

// NewOrder is TPC-C §2.4. Around 40% of expression work in the benchmark
// mix happens here, all over plaintext columns.
func (t *Terminal) NewOrder() error {
	s := t.world.Scale
	d := t.randDistrict()
	c := t.randCustomerID()
	olCnt := 5 + t.rng.Intn(11)
	invalid := t.rng.Intn(100) == 0 // spec: 1% contain an invalid item

	// Draw the order's items up front and process them in sorted order:
	// stock rows are then always locked in a consistent order, avoiding
	// deadlocks between concurrent NewOrders (the standard TPC-C trick).
	items := make([]int, olCnt)
	for i := range items {
		items[i] = t.randItem()
	}
	sort.Ints(items)
	if invalid {
		items[olCnt-1] = s.Items + 100000 // unused item id → rollback below
	}

	if err := t.conn.Begin(); err != nil {
		return err
	}
	// Increment-then-read keeps the district row locked for the o_id
	// allocation, serializing order numbers per district.
	if _, err := t.conn.Exec(
		"UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = @w AND d_id = @d",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d))}); err != nil {
		return t.abortOn(err)
	}
	rows, err := t.conn.Exec(
		"SELECT d_next_o_id, d_tax FROM district WHERE d_w_id = @w AND d_id = @d",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d))})
	if err != nil {
		return t.abortOn(err)
	}
	oID := rows.Values[0][0].I - 1

	if _, err := t.conn.Exec("SELECT w_tax FROM warehouse WHERE w_id = @w",
		map[string]sqltypes.Value{"w": iv(int64(t.wID))}); err != nil {
		return t.abortOn(err)
	}
	if _, err := t.conn.Exec(
		"SELECT c_discount, c_credit FROM customer WHERE c_w_id = @w AND c_d_id = @d AND c_id = @c",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d)), "c": iv(int64(c))}); err != nil {
		return t.abortOn(err)
	}

	now := time.Now().UnixMicro()
	if _, err := t.conn.Exec(
		"INSERT INTO orders (o_w_id, o_d_id, o_id, o_c_id, o_entry_d, o_carrier_id, o_ol_cnt, o_all_local) VALUES (@a, @b, @c, @d, @e, @f, @g, @h)",
		map[string]sqltypes.Value{
			"a": iv(int64(t.wID)), "b": iv(int64(d)), "c": iv(oID), "d": iv(int64(c)),
			"e": sqltypes.Datetime(now), "f": iv(0), "g": iv(int64(olCnt)), "h": iv(1),
		}); err != nil {
		return t.abortOn(err)
	}
	if _, err := t.conn.Exec(
		"INSERT INTO neworder (no_w_id, no_d_id, no_o_id) VALUES (@a, @b, @c)",
		map[string]sqltypes.Value{"a": iv(int64(t.wID)), "b": iv(int64(d)), "c": iv(oID)}); err != nil {
		return t.abortOn(err)
	}

	for ol := 1; ol <= olCnt; ol++ {
		item := items[ol-1]
		rows, err := t.conn.Exec("SELECT i_price FROM item WHERE i_id = @i",
			map[string]sqltypes.Value{"i": iv(int64(item))})
		if err != nil {
			return t.abortOn(err)
		}
		if len(rows.Values) == 0 {
			t.conn.Rollback()
			return errIntentionalRollback
		}
		price := rows.Values[0][0].F
		qty := 1 + t.rng.Intn(10)

		rows, err = t.conn.Exec(
			"SELECT s_quantity FROM stock WHERE s_w_id = @w AND s_i_id = @i",
			map[string]sqltypes.Value{"w": iv(int64(t.wID)), "i": iv(int64(item))})
		if err != nil {
			return t.abortOn(err)
		}
		sQty := rows.Values[0][0].I
		newQty := sQty - int64(qty)
		if newQty < 10 {
			newQty += 91
		}
		if _, err := t.conn.Exec(
			"UPDATE stock SET s_quantity = @q, s_ytd = s_ytd + @y, s_order_cnt = s_order_cnt + 1 WHERE s_w_id = @w AND s_i_id = @i",
			map[string]sqltypes.Value{
				"q": iv(newQty), "y": fv(float64(qty)),
				"w": iv(int64(t.wID)), "i": iv(int64(item)),
			}); err != nil {
			return t.abortOn(err)
		}
		if _, err := t.conn.Exec(
			"INSERT INTO orderline (ol_w_id, ol_d_id, ol_o_id, ol_number, ol_i_id, ol_supply_w_id, ol_delivery_d, ol_quantity, ol_amount, ol_dist_info) VALUES (@a, @b, @c, @d, @e, @f, @g, @h, @i, @j)",
			map[string]sqltypes.Value{
				"a": iv(int64(t.wID)), "b": iv(int64(d)), "c": iv(oID), "d": iv(int64(ol)),
				"e": iv(int64(item)), "f": iv(int64(t.wID)), "g": sqltypes.Datetime(0),
				"h": iv(int64(qty)), "i": fv(price * float64(qty)), "j": sv("dist-info-123456789012"),
			}); err != nil {
			return t.abortOn(err)
		}
	}
	return t.conn.Commit()
}

// selectCustomer implements the §5.3 customer selection: 60% by C_LAST
// (the encrypted predicate), 40% by C_ID. For by-name selection the ORDER BY
// C_FIRST was removed from the statement; the driver-side code sorts the
// decrypted rows by first name and picks the median, per the paper.
func (t *Terminal) selectCustomer(wID, d int) (cID int64, balance float64, err error) {
	if t.rng.Intn(100) < 60 {
		last := t.randLastName()
		rows, err := t.conn.Exec(
			"SELECT c_id, c_first, c_balance FROM customer WHERE c_w_id = @w AND c_d_id = @d AND c_last = @l",
			map[string]sqltypes.Value{"w": iv(int64(wID)), "d": iv(int64(d)), "l": sv(last)})
		if err != nil {
			return 0, 0, err
		}
		if len(rows.Values) == 0 {
			return 0, 0, fmt.Errorf("tpcc: no customer with last name %s", last)
		}
		// Client-side ORDER BY c_first, pick the median (§5.3).
		sort.Slice(rows.Values, func(i, j int) bool {
			return strings.Compare(rows.Values[i][1].S, rows.Values[j][1].S) < 0
		})
		mid := rows.Values[len(rows.Values)/2]
		return mid[0].I, mid[2].F, nil
	}
	c := t.randCustomerID()
	rows, err := t.conn.Exec(
		"SELECT c_id, c_balance FROM customer WHERE c_w_id = @w AND c_d_id = @d AND c_id = @c",
		map[string]sqltypes.Value{"w": iv(int64(wID)), "d": iv(int64(d)), "c": iv(int64(c))})
	if err != nil {
		return 0, 0, err
	}
	if len(rows.Values) == 0 {
		return 0, 0, fmt.Errorf("tpcc: customer %d missing", c)
	}
	return rows.Values[0][0].I, rows.Values[0][1].F, nil
}

// Payment is TPC-C §2.5 with the §5.3 modifications.
func (t *Terminal) Payment() error {
	d := t.randDistrict()
	amount := 1 + t.rng.Float64()*4999
	// 85% home district customer, 15% remote.
	cw, cd := t.wID, d
	if t.rng.Intn(100) < 15 && t.world.Scale.Warehouses > 1 {
		for {
			cw = 1 + t.rng.Intn(t.world.Scale.Warehouses)
			if cw != t.wID || t.world.Scale.Warehouses == 1 {
				break
			}
		}
		cd = t.randDistrict()
	}

	if err := t.conn.Begin(); err != nil {
		return err
	}
	if _, err := t.conn.Exec(
		"UPDATE warehouse SET w_ytd = w_ytd + @h WHERE w_id = @w",
		map[string]sqltypes.Value{"h": fv(amount), "w": iv(int64(t.wID))}); err != nil {
		return t.abortOn(err)
	}
	if _, err := t.conn.Exec(
		"UPDATE district SET d_ytd = d_ytd + @h WHERE d_w_id = @w AND d_id = @d",
		map[string]sqltypes.Value{"h": fv(amount), "w": iv(int64(t.wID)), "d": iv(int64(d))}); err != nil {
		return t.abortOn(err)
	}
	cID, _, err := t.selectCustomer(cw, cd)
	if err != nil {
		return t.abortOn(err)
	}
	if _, err := t.conn.Exec(
		"UPDATE customer SET c_balance = c_balance - @h, c_ytd_payment = c_ytd_payment + @h, c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = @w AND c_d_id = @d AND c_id = @c",
		map[string]sqltypes.Value{
			"h": fv(amount), "w": iv(int64(cw)), "d": iv(int64(cd)), "c": iv(cID),
		}); err != nil {
		return t.abortOn(err)
	}
	if _, err := t.conn.Exec(
		"INSERT INTO history (h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, h_date, h_amount, h_data) VALUES (@a, @b, @c, @d, @e, @f, @g, @h)",
		map[string]sqltypes.Value{
			"a": iv(cID), "b": iv(int64(cd)), "c": iv(int64(cw)),
			"d": iv(int64(d)), "e": iv(int64(t.wID)),
			"f": sqltypes.Datetime(time.Now().UnixMicro()), "g": fv(amount), "h": sv("payment"),
		}); err != nil {
		return t.abortOn(err)
	}
	return t.conn.Commit()
}

// OrderStatus is TPC-C §2.6 (read-only) with §5.3's customer selection.
func (t *Terminal) OrderStatus() error {
	d := t.randDistrict()
	cID, _, err := t.selectCustomer(t.wID, d)
	if err != nil {
		return err
	}
	rows, err := t.conn.Exec(
		"SELECT MAX(o_id) FROM orders WHERE o_w_id = @w AND o_d_id = @d AND o_c_id = @c",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d)), "c": iv(cID)})
	if err != nil {
		return err
	}
	if len(rows.Values) == 0 || rows.Values[0][0].IsNull() {
		return nil // customer has no orders
	}
	oID := rows.Values[0][0].I
	_, err = t.conn.Exec(
		"SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d FROM orderline WHERE ol_w_id = @w AND ol_d_id = @d AND ol_o_id = @o",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d)), "o": iv(oID)})
	return err
}

// Delivery is TPC-C §2.7: deliver the oldest undelivered order per district.
func (t *Terminal) Delivery() error {
	carrier := int64(1 + t.rng.Intn(10))
	now := time.Now().UnixMicro()
	for d := 1; d <= t.world.Scale.DistrictsPerWarehouse; d++ {
		if err := t.deliverDistrict(d, carrier, now); err != nil {
			return err
		}
	}
	return nil
}

func (t *Terminal) deliverDistrict(d int, carrier, now int64) error {
	if err := t.conn.Begin(); err != nil {
		return err
	}
	rows, err := t.conn.Exec(
		"SELECT MIN(no_o_id) FROM neworder WHERE no_w_id = @w AND no_d_id = @d",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d))})
	if err != nil {
		return t.abortOn(err)
	}
	if len(rows.Values) == 0 || rows.Values[0][0].IsNull() {
		return t.conn.Commit() // nothing to deliver
	}
	oID := rows.Values[0][0].I
	res, err := t.conn.Exec(
		"DELETE FROM neworder WHERE no_w_id = @w AND no_d_id = @d AND no_o_id = @o",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d)), "o": iv(oID)})
	if err != nil {
		return t.abortOn(err)
	}
	if res.Affected == 0 {
		return t.conn.Commit() // raced with a concurrent delivery
	}
	rows, err = t.conn.Exec(
		"SELECT o_c_id FROM orders WHERE o_w_id = @w AND o_d_id = @d AND o_id = @o",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d)), "o": iv(oID)})
	if err != nil || len(rows.Values) == 0 {
		return t.abortOn(fmt.Errorf("tpcc: order %d missing: %v", oID, err))
	}
	cID := rows.Values[0][0].I
	if _, err := t.conn.Exec(
		"UPDATE orders SET o_carrier_id = @c WHERE o_w_id = @w AND o_d_id = @d AND o_id = @o",
		map[string]sqltypes.Value{"c": iv(carrier), "w": iv(int64(t.wID)), "d": iv(int64(d)), "o": iv(oID)}); err != nil {
		return t.abortOn(err)
	}
	if _, err := t.conn.Exec(
		"UPDATE orderline SET ol_delivery_d = @n WHERE ol_w_id = @w AND ol_d_id = @d AND ol_o_id = @o",
		map[string]sqltypes.Value{"n": sqltypes.Datetime(now), "w": iv(int64(t.wID)), "d": iv(int64(d)), "o": iv(oID)}); err != nil {
		return t.abortOn(err)
	}
	rows, err = t.conn.Exec(
		"SELECT SUM(ol_amount) FROM orderline WHERE ol_w_id = @w AND ol_d_id = @d AND ol_o_id = @o",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d)), "o": iv(oID)})
	if err != nil {
		return t.abortOn(err)
	}
	total := 0.0
	if len(rows.Values) > 0 && !rows.Values[0][0].IsNull() {
		total = rows.Values[0][0].F
	}
	if _, err := t.conn.Exec(
		"UPDATE customer SET c_balance = c_balance + @t, c_delivery_cnt = c_delivery_cnt + 1 WHERE c_w_id = @w AND c_d_id = @d AND c_id = @c",
		map[string]sqltypes.Value{"t": fv(total), "w": iv(int64(t.wID)), "d": iv(int64(d)), "c": iv(cID)}); err != nil {
		return t.abortOn(err)
	}
	return t.conn.Commit()
}

// StockLevel is TPC-C §2.8: count distinct recently-ordered items below the
// stock threshold, via an equi-join between orderline and stock.
func (t *Terminal) StockLevel() error {
	d := t.randDistrict()
	threshold := int64(10 + t.rng.Intn(11))
	rows, err := t.conn.Exec(
		"SELECT d_next_o_id FROM district WHERE d_w_id = @w AND d_id = @d",
		map[string]sqltypes.Value{"w": iv(int64(t.wID)), "d": iv(int64(d))})
	if err != nil {
		return err
	}
	next := rows.Values[0][0].I
	lo := next - 20
	if lo < 1 {
		lo = 1
	}
	_, err = t.conn.Exec(
		"SELECT COUNT(DISTINCT ol_i_id) FROM orderline JOIN stock ON ol_i_id = s_i_id WHERE ol_w_id = @w AND ol_d_id = @d AND ol_o_id >= @lo AND s_w_id = @w2 AND s_quantity < @t",
		map[string]sqltypes.Value{
			"w": iv(int64(t.wID)), "d": iv(int64(d)), "lo": iv(lo),
			"w2": iv(int64(t.wID)), "t": iv(threshold),
		})
	return err
}

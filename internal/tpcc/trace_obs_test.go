package tpcc

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestTraceReportSchema runs a short trace experiment the way `make bench`
// does, writes the artifact, validates it byte-for-byte, and checks the
// acceptance anchor: a Stock-Level trace on SQL-AE-RND-STOCK must attribute
// at least 95% of its wall time to named spans — the tracing subsystem's
// "no dark time" guarantee on the enclave-heavy read.
func TestTraceReportSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("trace experiment stands up three worlds")
	}
	rep, err := RunTraceExperiment(TraceExperimentConfig{
		Threads: 2, Duration: 400 * time.Millisecond, Warmup: 100 * time.Millisecond,
		Reps: 1, EnclaveThreads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "BENCH_trace.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ValidateTraceReport(b)
	if err != nil {
		t.Fatal(err)
	}

	if parsed.Mode != "SQL-AE-RND-STOCK" {
		t.Fatalf("mode = %q", parsed.Mode)
	}
	stock := parsed.TxTypes["stock_level"]
	if stock.Traces == 0 {
		t.Fatal("no stock_level traces captured despite the explicit runs")
	}
	t.Logf("stock_level: %d traces, attributed share p50=%.3f p95=%.3f, phases=%v",
		stock.Traces, stock.AttributedShareP50, stock.AttributedShareP95, stock.PhaseShares)
	if stock.AttributedShareP50 < 0.95 {
		t.Fatalf("stock_level median attributed share %.3f below the 0.95 acceptance floor",
			stock.AttributedShareP50)
	}
	// The enclave-routed predicate must show up in the breakdown: Stock-Level
	// statements cross the boundary, and the crossing span carries that time.
	if stock.PhaseShares["enclave.crossing"] <= 0 {
		t.Fatalf("stock_level phase shares missing enclave.crossing: %v", stock.PhaseShares)
	}
}

package tpcc

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestBenchReportSchema runs a short RND benchmark, writes the report the
// way `make bench` does, and validates the written artifact byte-for-byte.
func TestBenchReportSchema(t *testing.T) {
	w := loadWorld(t, ModeRND)
	res, err := RunOnWorld(w, BenchConfig{
		Mode: ModeRND, Scale: w.Scale, Threads: 4, Duration: 400 * time.Millisecond,
		EnclaveThreads: 2, Warmup: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "BENCH_tpcc.json")
	if err := NewBenchReport(res).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateBenchReport(b)
	if err != nil {
		t.Fatal(err)
	}

	run := rep.Runs[0]
	if run.Mode != "SQL-AE-RND" || run.Committed == 0 || run.Throughput <= 0 {
		t.Fatalf("bad run summary: %+v", run)
	}
	// RND mode drives encrypted expression work through the enclave: the
	// boundary section must show traffic (Fig. 5).
	if run.Enclave.Evals == 0 || run.Enclave.Crossings == 0 {
		t.Fatalf("no enclave traffic recorded: %+v", run.Enclave)
	}
	// Committed counts and latency-sample counts must agree: every committed
	// transaction records exactly one latency sample.
	total := 0
	for name, st := range run.TxStats {
		if st.Count > 0 && st.P50US == 0 && st.MaxUS == 0 {
			t.Errorf("%s: %d commits but empty latency profile", name, st.Count)
		}
		total += st.Count
	}
	if total != run.Committed {
		t.Fatalf("tx counts sum to %d, committed = %d", total, run.Committed)
	}
	for i, name := range TxTypeNames {
		if got := int(res.Latencies[i].Count); got != res.ByType[i] {
			t.Fatalf("%s: %d latency samples for %d commits", name, got, res.ByType[i])
		}
	}
}

// TestObsOverheadBudget guards the ≤2% observability budget on the TPC-C
// smoke run. It compares interleaved short runs with timing instruments on
// vs off (counters stay on in both — they are load-bearing for Stats/Dump).
// The comparison is throughput-based and noisy on shared CI machines, so it
// gates on a noise floor and skips rather than flakes.
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead comparison needs steady timing")
	}
	w := loadWorld(t, ModePlaintext)
	cfg := BenchConfig{Mode: ModePlaintext, Scale: w.Scale, Threads: 4,
		Duration: 300 * time.Millisecond, Warmup: 100 * time.Millisecond}

	run := func(timingOff bool) float64 {
		w.Obs.SetTimingDisabled(timingOff)
		defer w.Obs.SetTimingDisabled(false)
		res, err := RunOnWorld(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}

	// Interleave A/B pairs so drift (page cache, turbo states) hits both arms.
	const pairs = 3
	var on, off float64
	var onMin, onMax float64
	for i := 0; i < pairs; i++ {
		a := run(false)
		b := run(true)
		on += a
		off += b
		if i == 0 || a < onMin {
			onMin = a
		}
		if i == 0 || a > onMax {
			onMax = a
		}
	}
	on /= pairs
	off /= pairs

	// Noise gate: if the instrumented arm alone swings more than 10%, the
	// machine is too noisy for a 2% assertion to mean anything.
	if onMin <= 0 || (onMax-onMin)/onMin > 0.10 {
		t.Skipf("machine too noisy: instrumented throughput swung %.0f..%.0f tps", onMin, onMax)
	}
	if off <= 0 {
		t.Fatal("zero throughput with timing disabled")
	}
	overhead := (off - on) / off
	t.Logf("throughput on=%.0f off=%.0f tps, timing overhead %.2f%%", on, off, overhead*100)
	if overhead > 0.02 {
		t.Fatalf("observability timing overhead %.2f%% exceeds the 2%% budget", overhead*100)
	}
}

package tpcc

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchSchema identifies the BENCH_tpcc.json layout. Bump only with a new
// suffix; downstream tooling keys on this string.
const BenchSchema = "alwaysencrypted/tpcc-bench/v1"

// BenchReport is the stable serialized form of a set of benchmark runs.
type BenchReport struct {
	Schema string     `json:"schema"`
	Runs   []BenchRun `json:"runs"`
}

// BenchRun flattens one Result for the report. Latencies are reported in
// microseconds: the histograms record nanoseconds at ~3% relative error, so
// microseconds lose nothing while staying readable.
type BenchRun struct {
	Mode           string  `json:"mode"`
	Threads        int     `json:"threads"`
	EnclaveThreads int     `json:"enclave_threads"`
	SyncEnclave    bool    `json:"sync_enclave"`
	DurationMS     int64   `json:"duration_ms"`
	Committed      int     `json:"committed"`
	Aborted        int     `json:"aborted"`
	Throughput     float64 `json:"throughput_tps"`

	TxStats map[string]TxStat `json:"tx"`

	Enclave EnclaveStat `json:"enclave"`
	Pool    PoolStat    `json:"pool"`
}

// TxStat is one transaction type's committed count and latency profile.
type TxStat struct {
	Count  int   `json:"count"`
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	MeanUS int64 `json:"mean_us"`
	MaxUS  int64 `json:"max_us"`
}

// EnclaveStat is the boundary-traffic section (§4.6, Fig. 5).
type EnclaveStat struct {
	Evals         uint64 `json:"evals"`
	Crossings     uint64 `json:"crossings"`
	QueueTasks    uint64 `json:"queue_tasks"`
	QueueParks    uint64 `json:"queue_parks"`
	QueueSpinHits uint64 `json:"queue_spin_hits"`
	QueueWaitP50US int64 `json:"queue_wait_p50_us"`
	QueueWaitP99US int64 `json:"queue_wait_p99_us"`
	EvalCallP50US  int64 `json:"eval_call_p50_us"`
	EvalCallP99US  int64 `json:"eval_call_p99_us"`
}

// PoolStat is the buffer pool section.
type PoolStat struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func usec(ns int64) int64 { return ns / 1000 }

// ToBenchRun converts a Result into its report form.
func (r *Result) ToBenchRun() BenchRun {
	run := BenchRun{
		Mode:           r.Config.Mode.String(),
		Threads:        r.Config.Threads,
		EnclaveThreads: r.Config.EnclaveThreads,
		SyncEnclave:    r.Config.SyncEnclave,
		DurationMS:     r.Duration.Milliseconds(),
		Committed:      r.Committed,
		Aborted:        r.Aborted,
		Throughput:     r.Throughput,
		TxStats:        make(map[string]TxStat, len(TxTypeNames)),
		Enclave: EnclaveStat{
			Evals:          r.EnclaveEvals,
			Crossings:      r.Crossings,
			QueueTasks:     r.QueueTasks,
			QueueParks:     r.QueueParks,
			QueueSpinHits:  r.QueueSpinHits,
			QueueWaitP50US: usec(r.QueueWait.P50),
			QueueWaitP99US: usec(r.QueueWait.P99),
			EvalCallP50US:  usec(r.EvalCall.P50),
			EvalCallP99US:  usec(r.EvalCall.P99),
		},
		Pool: PoolStat{Hits: r.PoolHits, Misses: r.PoolMisses, Evictions: r.PoolEvictions},
	}
	for i, name := range TxTypeNames {
		lat := r.Latencies[i]
		run.TxStats[name] = TxStat{
			Count:  r.ByType[i],
			P50US:  usec(lat.P50),
			P95US:  usec(lat.P95),
			P99US:  usec(lat.P99),
			MeanUS: usec(lat.Mean),
			MaxUS:  usec(lat.Max),
		}
	}
	return run
}

// NewBenchReport wraps results in the versioned envelope.
func NewBenchReport(results ...*Result) *BenchReport {
	rep := &BenchReport{Schema: BenchSchema}
	for _, r := range results {
		rep.Runs = append(rep.Runs, r.ToBenchRun())
	}
	return rep
}

// WriteFile serializes the report to path (the BENCH_tpcc.json artifact).
func (rep *BenchReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ValidateBenchReport checks the invariants downstream tooling relies on.
// It parses from bytes so tests can validate the written artifact verbatim.
func ValidateBenchReport(b []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("tpcc: bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("tpcc: bench report schema %q, want %q", rep.Schema, BenchSchema)
	}
	if len(rep.Runs) == 0 {
		return nil, fmt.Errorf("tpcc: bench report has no runs")
	}
	for i, run := range rep.Runs {
		if run.Mode == "" {
			return nil, fmt.Errorf("tpcc: run %d: empty mode", i)
		}
		for _, name := range TxTypeNames {
			st, ok := run.TxStats[name]
			if !ok {
				return nil, fmt.Errorf("tpcc: run %d: missing tx section %q", i, name)
			}
			if st.Count > 0 && (st.P50US > st.P95US || st.P95US > st.P99US || st.P99US > st.MaxUS) {
				return nil, fmt.Errorf("tpcc: run %d %s: non-monotone percentiles %+v", i, name, st)
			}
		}
	}
	return &rep, nil
}

package tpcc

import "testing"

func benchLoad(b *testing.B, rowAtATime bool) {
	scale := DefaultScale()
	scale.Warehouses = 4
	b.ReportAllocs()
	var rows int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err := NewWorld(WorldOptions{
			Mode: ModePlaintext, Scale: scale, EnclaveThreads: 1, CTR: true,
			RowAtATimeLoad: rowAtATime,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := w.Load(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rows = w.RowsLoaded()
		w.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkWorldLoadBulk measures the bulk-insert load path end to end
// (driver encode → TDS multi-row message → one WAL record per structure).
func BenchmarkWorldLoadBulk(b *testing.B) { benchLoad(b, false) }

// BenchmarkWorldLoadRow is the row-at-a-time baseline arm.
func BenchmarkWorldLoadRow(b *testing.B) { benchLoad(b, true) }

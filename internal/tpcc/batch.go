package tpcc

import (
	"fmt"
	"sort"
	"time"

	"alwaysencrypted/internal/obs"
)

// BatchExperimentConfig parameterizes the §4.6 batching ablation: how much
// does batched expression evaluation cut enclave boundary traffic on the
// TPC-C transactions that touch the encrypted STOCK column?
type BatchExperimentConfig struct {
	Scale          Scale
	BatchSizes     []int // engine batch sizes to sweep, ascending
	TxPerPhase     int   // transactions measured per phase per batch size
	EnclaveThreads int
}

// batchPhases are the measured workload phases. NewOrder reads and updates
// STOCK by primary key (plaintext predicates — the enclave stays out of the
// way at every batch size, which the report shows rather than hides);
// Stock-Level joins orderline against STOCK under the encrypted
// s_quantity < @t predicate, the row-at-a-time crossing storm the batch
// pipeline amortizes. "combined" is the headline §4.6 number: enclave
// crossings per NewOrder/Stock-Level transaction.
var batchPhases = [3]string{"new_order", "stock_level", "combined"}

// RunBatchExperiment sweeps the engine batch size over fresh SQL-AE-RND-STOCK
// worlds and measures enclave crossings per transaction and client-observed
// latency for a NewOrder/Stock-Level workload. The enclave runs synchronously
// so each call costs exactly two deterministic crossings (enter + exit) and
// the crossings counter isolates the batching effect from queue scheduling.
func RunBatchExperiment(cfg BatchExperimentConfig) (*BatchReport, error) {
	if cfg.Scale.Warehouses == 0 {
		cfg.Scale = DefaultScale()
	}
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{1, 16, 64, 256}
	}
	if cfg.TxPerPhase <= 0 {
		cfg.TxPerPhase = 100
	}
	if cfg.EnclaveThreads == 0 {
		cfg.EnclaveThreads = 2
	}
	rep := &BatchReport{
		Schema:      BatchSchema,
		Mode:        ModeRNDStock.String(),
		SyncEnclave: true,
		TxPerPhase:  cfg.TxPerPhase,
	}
	for _, size := range cfg.BatchSizes {
		run, err := runBatchPoint(cfg, size)
		if err != nil {
			return nil, fmt.Errorf("tpcc: batch %d: %w", size, err)
		}
		rep.Runs = append(rep.Runs, run)
	}
	rep.Reductions = make(map[string]float64, len(batchPhases))
	first, last := rep.Runs[0], rep.Runs[len(rep.Runs)-1]
	for _, name := range batchPhases {
		base := first.Phases[name].CrossingsPerTx
		at := last.Phases[name].CrossingsPerTx
		if base > 0 && at > 0 {
			rep.Reductions[name] = base / at
		}
	}
	return rep, nil
}

// runBatchPoint measures one batch size on a fresh world. Every point uses
// the same terminal seed so the rng-driven workload (districts, item picks,
// thresholds) is identical across batch sizes and the crossing counts are
// directly comparable.
func runBatchPoint(cfg BatchExperimentConfig, size int) (BatchRun, error) {
	w, err := NewWorld(WorldOptions{
		Mode: ModeRNDStock, Scale: cfg.Scale,
		EnclaveThreads: cfg.EnclaveThreads, SyncEnclave: true, CTR: true,
		BatchSize: size,
	})
	if err != nil {
		return BatchRun{}, err
	}
	defer w.Close()
	if err := w.Load(); err != nil {
		return BatchRun{}, err
	}
	conn, err := w.Connect(true, nil)
	if err != nil {
		return BatchRun{}, err
	}
	defer conn.Close()
	term := NewTerminal(w, conn, 1, 7)

	// Warm the describe cache, plan cache and program registrations so the
	// measured window is steady-state invoke-by-handle traffic (§3).
	for i := 0; i < 3; i++ {
		if err := term.NewOrder(); err != nil {
			return BatchRun{}, err
		}
		if err := term.StockLevel(); err != nil {
			return BatchRun{}, err
		}
	}

	run := BatchRun{BatchSize: size, Phases: make(map[string]BatchPhase, len(batchPhases))}
	var allLats []int64
	var totTx int
	var totCross, totEvals uint64
	measure := func(fn func() error) (BatchPhase, []int64, error) {
		before := w.Obs.Snapshot()
		lats := make([]int64, 0, cfg.TxPerPhase)
		for i := 0; i < cfg.TxPerPhase; i++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				// Intentional rollbacks (the 1% bad-item NewOrder) and lock
				// aborts are part of the workload; they just don't count.
				continue
			}
			lats = append(lats, time.Since(t0).Nanoseconds())
		}
		if len(lats) == 0 {
			return BatchPhase{}, nil, fmt.Errorf("no transaction committed")
		}
		after := w.Obs.Snapshot()
		ph := batchPhase(len(lats), lats,
			obs.CounterDelta(before, after, "enclave.crossings"),
			obs.CounterDelta(before, after, "enclave.evals"))
		return ph, lats, nil
	}
	for name, fn := range map[string]func() error{
		"new_order":   term.NewOrder,
		"stock_level": term.StockLevel,
	} {
		ph, lats, err := measure(fn)
		if err != nil {
			return BatchRun{}, fmt.Errorf("%s: %w", name, err)
		}
		run.Phases[name] = ph
		allLats = append(allLats, lats...)
		totTx += ph.Tx
		totCross += ph.Crossings
		totEvals += ph.EnclaveEvals
	}
	run.Phases["combined"] = batchPhase(totTx, allLats, totCross, totEvals)
	return run, nil
}

func batchPhase(tx int, lats []int64, crossings, evals uint64) BatchPhase {
	return BatchPhase{
		Tx:             tx,
		Crossings:      crossings,
		EnclaveEvals:   evals,
		CrossingsPerTx: float64(crossings) / float64(tx),
		P50US:          pctlNS(lats, 50) / 1000,
		P95US:          pctlNS(lats, 95) / 1000,
	}
}

// pctlNS is the nearest-rank percentile over raw latency samples.
func pctlNS(samples []int64, pct int) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (pct*len(s)+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

package tpcc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"alwaysencrypted/internal/obs/trace"
)

// TraceExperimentConfig parameterizes the tracing experiment: the overhead
// of per-statement tracing at the production sampling rate, and the
// per-transaction-type attribution profile captured at full sampling.
type TraceExperimentConfig struct {
	Scale          Scale
	Threads        int
	Duration       time.Duration // measurement window per overhead arm
	Warmup         time.Duration
	SampleRate     float64 // overhead arm's head-sampling rate (default 0.01)
	Reps           int     // interleaved baseline/traced pairs (default 3)
	EnclaveThreads int
}

// RunTraceExperiment produces the BENCH_trace.json report on the
// SQL-AE-RND-STOCK configuration — the mode whose Stock-Level transaction
// routes its predicate through the enclave, so the captured traces show
// the crossing spans the tracing subsystem exists to expose.
//
// The overhead arms interleave measurement windows on two identically
// loaded worlds (tracing off vs on at SampleRate) so machine drift hits
// both; the attribution arm runs the standard mix plus explicit Stock-Level
// transactions on a third world sampling every statement.
func RunTraceExperiment(cfg TraceExperimentConfig) (*TraceReport, error) {
	if cfg.Scale.Warehouses == 0 {
		cfg.Scale = DefaultScale()
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Duration == 0 {
		cfg.Duration = time.Second
	}
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 0.01
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.EnclaveThreads == 0 {
		cfg.EnclaveThreads = 4
	}

	rep := &TraceReport{Schema: TraceSchema, Mode: ModeRNDStock.String()}

	baseline, err := newTraceWorld(cfg, nil)
	if err != nil {
		return nil, err
	}
	defer baseline.Close()
	traced, err := newTraceWorld(cfg, &trace.Policy{SampleRate: cfg.SampleRate})
	if err != nil {
		return nil, err
	}
	defer traced.Close()

	var baseTPS, tracedTPS float64
	for i := 0; i < cfg.Reps; i++ {
		b, err := RunOnWorld(baseline, BenchConfig{
			Mode: ModeRNDStock, Scale: cfg.Scale, Threads: cfg.Threads,
			Duration: cfg.Duration, Warmup: cfg.Warmup})
		if err != nil {
			return nil, fmt.Errorf("tpcc: trace baseline: %w", err)
		}
		tr, err := RunOnWorld(traced, BenchConfig{
			Mode: ModeRNDStock, Scale: cfg.Scale, Threads: cfg.Threads,
			Duration: cfg.Duration, Warmup: cfg.Warmup})
		if err != nil {
			return nil, fmt.Errorf("tpcc: trace traced: %w", err)
		}
		baseTPS += b.Throughput
		tracedTPS += tr.Throughput
	}
	baseTPS /= float64(cfg.Reps)
	tracedTPS /= float64(cfg.Reps)
	rep.Overhead = TraceOverhead{
		SampleRate:  cfg.SampleRate,
		BaselineTPS: baseTPS,
		TracedTPS:   tracedTPS,
		OverheadPct: 100 * (baseTPS - tracedTPS) / baseTPS,
	}

	tx, err := captureAttribution(cfg)
	if err != nil {
		return nil, err
	}
	rep.TxTypes = tx
	return rep, nil
}

func newTraceWorld(cfg TraceExperimentConfig, policy *trace.Policy) (*World, error) {
	w, err := NewWorld(WorldOptions{
		Mode: ModeRNDStock, Scale: cfg.Scale,
		EnclaveThreads: cfg.EnclaveThreads, CTR: true, Trace: policy,
	})
	if err != nil {
		return nil, err
	}
	if err := w.Load(); err != nil {
		w.Close()
		return nil, fmt.Errorf("tpcc: load: %w", err)
	}
	return w, nil
}

// captureAttribution runs the workload with every statement traced and
// per-terminal trace-ID collection on, then joins the client-side
// transaction log to the server-side trace ring.
func captureAttribution(cfg TraceExperimentConfig) (map[string]TraceTxStat, error) {
	// Capacity must outlast the run: every statement (BEGIN and COMMIT
	// included) is one kept trace at sample rate 1, and the ring drops
	// oldest on overflow.
	w, err := newTraceWorld(cfg, &trace.Policy{SampleRate: 1, Capacity: 1 << 16})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	terminals := make([]*Terminal, cfg.Threads)
	for i := range terminals {
		conn, err := w.Connect(true, nil)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		terminals[i] = NewTerminal(w, conn, 1+i%w.Scale.Warehouses, int64(2000+i))
		terminals[i].CollectTraces = true
	}

	var stop atomic.Bool
	timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
	defer timer.Stop()
	var wg sync.WaitGroup
	for _, term := range terminals {
		wg.Add(1)
		go func(t *Terminal) {
			defer wg.Done()
			for !stop.Load() {
				_ = t.RunOne()
			}
		}(term)
	}
	wg.Wait()

	// The mix visits Stock-Level only 4% of the time; run it explicitly so
	// the acceptance anchor always has samples.
	anchor := terminals[0]
	for i := 0; i < 10; i++ {
		anchor.conn.CollectTraceIDs(true)
		if err := anchor.StockLevel(); err == nil {
			anchor.Traces[TxStockLevel] = append(anchor.Traces[TxStockLevel],
				anchor.conn.CollectedTraceIDs()...)
		}
	}

	byID := make(map[string]*trace.ExportTrace)
	doc := trace.Export(w.Engine.Tracer().Store().Drain())
	for i := range doc.Traces {
		byID[doc.Traces[i].ID] = &doc.Traces[i]
	}

	out := make(map[string]TraceTxStat, len(TxTypeNames))
	for typ, name := range TxTypeNames {
		var shares []float64
		phaseNS := make(map[string]int64)
		var wallNS int64
		for _, term := range terminals {
			for _, id := range term.Traces[typ] {
				et, ok := byID[id.String()]
				if !ok {
					continue // dropped from the ring (overflow) — skip, don't fail
				}
				a := trace.Attribute(et)
				shares = append(shares, a.Share())
				for nm, st := range a.ByName {
					phaseNS[nm] += st.ExclusiveNS
				}
				wallNS += a.WallNS
			}
		}
		st := TraceTxStat{Traces: len(shares)}
		if len(shares) > 0 {
			sort.Float64s(shares)
			st.AttributedShareP50 = shares[len(shares)/2]
			st.AttributedShareP95 = shares[len(shares)*5/100]
			st.PhaseShares = make(map[string]float64, len(phaseNS))
			if wallNS > 0 {
				for nm, ns := range phaseNS {
					st.PhaseShares[nm] = float64(ns) / float64(wallNS)
				}
			}
		}
		out[name] = st
	}
	return out, nil
}

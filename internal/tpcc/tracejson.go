package tpcc

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// TraceSchema identifies the BENCH_trace.json layout. Bump only with a new
// suffix; downstream tooling keys on this string.
const TraceSchema = "alwaysencrypted/tpcc-trace/v1"

// TraceReport is the stable serialized form of the tracing experiment: what
// per-statement tracing costs at the production sampling rate, and where
// each TPC-C transaction type's wall time goes according to the traces —
// the per-statement analog of the paper's Fig. 8 overhead breakdown.
type TraceReport struct {
	Schema string `json:"schema"`
	Mode   string `json:"mode"`

	Overhead TraceOverhead `json:"overhead"`

	// TxTypes maps each transaction type to the attribution profile of its
	// statements' server-side traces (captured at sample rate 1).
	TxTypes map[string]TraceTxStat `json:"tx"`
}

// TraceOverhead compares throughput with tracing off against tracing at the
// production sampling rate on identically-configured worlds.
type TraceOverhead struct {
	SampleRate  float64 `json:"sample_rate"`
	BaselineTPS float64 `json:"baseline_tps"`
	TracedTPS   float64 `json:"traced_tps"`
	// OverheadPct is (baseline-traced)/baseline*100; negative values mean
	// the difference drowned in run-to-run noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// TraceTxStat profiles one transaction type over its captured traces.
type TraceTxStat struct {
	// Traces is how many server-side statement traces the type's committed
	// transactions produced (every statement of a transaction is one trace).
	Traces int `json:"traces"`
	// AttributedShareP50/P95 are percentiles over per-trace attributed
	// share — the fraction of each statement's wall time covered by named
	// spans. P95 is the 5th percentile from the bottom: the share 95% of
	// traces meet or beat.
	AttributedShareP50 float64 `json:"attributed_share_p50"`
	AttributedShareP95 float64 `json:"attributed_share_p95"`
	// PhaseShares is each span name's exclusive time as a fraction of the
	// type's total traced wall time.
	PhaseShares map[string]float64 `json:"phase_shares"`
}

// WriteFile serializes the report to path (the BENCH_trace.json artifact).
func (rep *TraceReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ValidateTraceReport checks the invariants downstream tooling relies on.
// It parses from bytes so tests can validate the written artifact verbatim.
func ValidateTraceReport(b []byte) (*TraceReport, error) {
	var rep TraceReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("tpcc: trace report: %w", err)
	}
	if rep.Schema != TraceSchema {
		return nil, fmt.Errorf("tpcc: trace report schema %q, want %q", rep.Schema, TraceSchema)
	}
	ov := rep.Overhead
	if ov.SampleRate <= 0 || ov.SampleRate > 1 {
		return nil, fmt.Errorf("tpcc: trace report sample rate %g out of (0,1]", ov.SampleRate)
	}
	if ov.BaselineTPS <= 0 || ov.TracedTPS <= 0 {
		return nil, fmt.Errorf("tpcc: trace report throughput missing: %+v", ov)
	}
	want := 100 * (ov.BaselineTPS - ov.TracedTPS) / ov.BaselineTPS
	if math.Abs(ov.OverheadPct-want) > 1e-6 {
		return nil, fmt.Errorf("tpcc: trace report overhead %g inconsistent with %g/%g tps",
			ov.OverheadPct, ov.BaselineTPS, ov.TracedTPS)
	}
	captured := 0
	for _, name := range TxTypeNames {
		st, ok := rep.TxTypes[name]
		if !ok {
			return nil, fmt.Errorf("tpcc: trace report missing tx section %q", name)
		}
		if st.Traces == 0 {
			continue
		}
		captured++
		for _, s := range []float64{st.AttributedShareP50, st.AttributedShareP95} {
			if s < 0 || s > 1 {
				return nil, fmt.Errorf("tpcc: %s: attribution share %g out of [0,1]", name, s)
			}
		}
		if st.AttributedShareP95 > st.AttributedShareP50 {
			return nil, fmt.Errorf("tpcc: %s: p95 share %g above p50 %g (p95 is the low tail)",
				name, st.AttributedShareP95, st.AttributedShareP50)
		}
		if len(st.PhaseShares) == 0 {
			return nil, fmt.Errorf("tpcc: %s: captured %d traces but no phase shares", name, st.Traces)
		}
		var sum float64
		for phase, share := range st.PhaseShares {
			if share < 0 || share > 1 {
				return nil, fmt.Errorf("tpcc: %s: phase %q share %g out of [0,1]", name, phase, share)
			}
			sum += share
		}
		if sum > 1+1e-6 {
			return nil, fmt.Errorf("tpcc: %s: phase shares sum to %g > 1", name, sum)
		}
	}
	// Stock-Level is the acceptance anchor (the enclave-heavy read), and the
	// experiment runs it explicitly, so it must always be captured.
	if st, ok := rep.TxTypes[TxTypeNames[TxStockLevel]]; !ok || st.Traces == 0 {
		return nil, fmt.Errorf("tpcc: trace report captured no stock_level traces")
	}
	if captured == 0 {
		return nil, fmt.Errorf("tpcc: trace report captured no traces at all")
	}
	return &rep, nil
}

package tpcc

import (
	"encoding/json"
	"fmt"
	"os"
)

// WriteBenchSchema identifies the BENCH_write.json layout. Bump only with a
// new suffix; downstream tooling keys on this string.
const WriteBenchSchema = "alwaysencrypted/write-bench/v1"

// WriteBenchReport is the write-path experiment artifact: committed TPC-C
// throughput across thread counts with group commit on and off, and the
// world-load rate on the bulk fast path vs row-at-a-time.
type WriteBenchReport struct {
	Schema     string          `json:"schema"`
	Throughput []WriteTpsPoint `json:"throughput"`
	Load       []WriteLoadArm  `json:"load"`
}

// WriteTpsPoint is one (threads, group-commit configuration) measurement.
type WriteTpsPoint struct {
	Threads        int     `json:"threads"`
	Warehouses     int     `json:"warehouses"`
	GroupCommit    bool    `json:"group_commit"`
	CommitWindowUS int64   `json:"commit_window_us"`
	SyncDelayUS    int64   `json:"sync_delay_us"`
	Committed      int     `json:"committed"`
	Throughput     float64 `json:"throughput_tps"`
}

// WriteLoadArm is one world-load measurement.
type WriteLoadArm struct {
	Path          string  `json:"path"` // "bulk" or "row_at_a_time"
	Warehouses    int     `json:"warehouses"`
	SyncDelayUS   int64   `json:"sync_delay_us"`
	Rows          int64   `json:"rows"`
	DurationMs    float64 `json:"duration_ms"`
	RowsPerSecond float64 `json:"rows_per_second"`
}

// NewWriteBenchReport wraps the measurements in the versioned envelope.
func NewWriteBenchReport(tps []WriteTpsPoint, load []WriteLoadArm) *WriteBenchReport {
	return &WriteBenchReport{Schema: WriteBenchSchema, Throughput: tps, Load: load}
}

// WriteFile serializes the report to path (the BENCH_write.json artifact).
func (rep *WriteBenchReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ValidateWriteBenchReport checks the invariants downstream tooling relies
// on. It parses from bytes so tests can validate the written artifact
// verbatim.
func ValidateWriteBenchReport(b []byte) (*WriteBenchReport, error) {
	var rep WriteBenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("tpcc: write-bench report: %w", err)
	}
	if rep.Schema != WriteBenchSchema {
		return nil, fmt.Errorf("tpcc: write-bench report schema %q, want %q", rep.Schema, WriteBenchSchema)
	}
	if len(rep.Throughput) == 0 {
		return nil, fmt.Errorf("tpcc: write-bench report has no throughput points")
	}
	for i, p := range rep.Throughput {
		if p.Threads <= 0 || p.Throughput < 0 {
			return nil, fmt.Errorf("tpcc: write-bench point %d: %+v", i, p)
		}
	}
	paths := make(map[string]bool, len(rep.Load))
	for i, arm := range rep.Load {
		if arm.Rows <= 0 || arm.RowsPerSecond <= 0 {
			return nil, fmt.Errorf("tpcc: write-bench load arm %d: %+v", i, arm)
		}
		paths[arm.Path] = true
	}
	if !paths["bulk"] || !paths["row_at_a_time"] {
		return nil, fmt.Errorf("tpcc: write-bench report needs bulk and row_at_a_time load arms")
	}
	return &rep, nil
}

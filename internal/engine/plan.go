package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"alwaysencrypted/internal/exprsvc"
	"alwaysencrypted/internal/keys"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
)

// ParamInfo is the per-parameter output of sp_describe_parameter_encryption
// (§4.1): how the driver must encode and encrypt the parameter.
type ParamInfo struct {
	Name string
	Kind sqltypes.Kind
	Enc  sqltypes.EncType
}

// DescribeResult is the full output of sp_describe_parameter_encryption:
// parameter encryption types, the CEKs the enclave needs, and the key
// metadata (encrypted CEK values and CMK references) the driver uses to
// obtain plaintext CEKs. Attestation info is attached by Session.Describe
// when the query needs the enclave and the client supplied a DH key.
type DescribeResult struct {
	Query        string
	Params       []ParamInfo
	NeedsEnclave bool
	EnclaveCEKs  []string
	CEKs         map[string]keys.CEKMetadata
	CMKs         map[string]keys.CMKMetadata
}

// Plan is a compiled, cached statement (the plan-cache entry of §4.3: the
// results of encryption type deduction are cached with the plan).
type Plan struct {
	query string
	stmt  Stmt
	desc  DescribeResult

	table *Table
	// Combined slot space: [0,numOuterCols) outer columns,
	// [numOuterCols, numColSlots) inner (join) columns,
	// [numColSlots, ...) parameters in paramOrder.
	numOuterCols int
	numColSlots  int
	paramSlot    map[string]int
	paramOrder   []string

	access   accessPath
	filter   *exprsvc.Program
	join     *joinPlan
	items    []projItem
	sets     []compiledSet
	insertTo []insertBinding

	// Host-side evaluators are built with a nil KeyRing — ciphertext-only
	// expression shells whose enclave sub-programs run remotely — so their
	// cellKeys cache is never populated.
	//aelint:ignore secretretain reason=host-side evaluators have nil KeyRing; cellKeys never holds key material
	evalPool sync.Pool
}

// accessPath is the chosen access method for the outer table.
type accessPath struct {
	index   *Index
	eqVals  []ValueExpr // one per leading index component
	rangeOn int         // component index of the range bound, -1 if none
	rangeOp PredOp
	rangeLo ValueExpr
	rangeHi ValueExpr
}

// joinPlan describes the inner side of a nested-loop equi-join.
type joinPlan struct {
	table      *Table
	outerCol   int // slot of the outer join column
	innerCol   int // column position within the inner table
	innerIndex *Index
}

// projItem is a resolved projection item.
type projItem struct {
	agg  AggFunc
	slot int // -1 for COUNT(*)
	name string
	kind sqltypes.Kind
	enc  sqltypes.EncType
}

// compiledSet is one UPDATE assignment.
type compiledSet struct {
	colPos int
	expr   ValueExpr
}

// insertBinding maps an INSERT value to a column position.
type insertBinding struct {
	colPos int
	expr   ValueExpr
}

// Planning errors.
var (
	ErrUnknownParam = errors.New("engine: parameter not supplied")
	ErrAmbiguous    = errors.New("engine: ambiguous column reference")
)

// getPlan parses, binds and caches the statement for the query text. Each
// lifecycle phase (lex, parse, bind, plan overall) records its latency; on a
// plan-cache hit only the plan span fires, so the histograms expose the
// cache's effect directly.
func (e *Engine) getPlan(query string, act *trace.Active) (*Plan, error) {
	hsp := e.spanPlan.StartSpan()
	defer hsp.End()

	e.planMu.Lock()
	if p, ok := e.plans[query]; ok {
		e.planMu.Unlock()
		return p, nil
	}
	e.planMu.Unlock()

	lexStart := e.obs.Now()
	lexSp := act.StartSpan("lex")
	toks, err := lexTokens(query)
	lexSp.End()
	if err != nil {
		return nil, err
	}
	e.spanLex.ObserveSince(lexStart)

	parseStart := e.obs.Now()
	parseSp := act.StartSpan("parse")
	stmt, err := parseTokens(query, toks)
	parseSp.End()
	if err != nil {
		return nil, err
	}
	e.spanParse.ObserveSince(parseStart)

	bindStart := e.obs.Now()
	bindSp := act.StartSpan("bind")
	p, err := e.bind(query, stmt)
	bindSp.End()
	if err != nil {
		return nil, err
	}
	e.spanBind.ObserveSince(bindStart)
	// DDL and transaction-control statements are parsed but not cached:
	// re-executing CREATE must re-run, and they carry no deduction state.
	switch stmt.(type) {
	case SelectStmt, InsertStmt, UpdateStmt, DeleteStmt:
		e.planMu.Lock()
		e.plans[query] = p
		e.planMu.Unlock()
	}
	return p, nil
}

// InvalidatePlans drops the plan cache (DDL changing schemas calls this).
func (e *Engine) InvalidatePlans() {
	e.planMu.Lock()
	e.plans = make(map[string]*Plan)
	e.planMu.Unlock()
}

// binder carries the per-statement deduction state.
type binder struct {
	engine *Engine
	plan   *Plan
	ded    *sqltypes.Deduction
	// operand handles
	colOp   map[int]int    // slot -> deduction operand
	paramOp map[string]int // param -> deduction operand
	// param kind inference
	paramKind map[string]sqltypes.Kind
}

func (e *Engine) bind(query string, stmt Stmt) (*Plan, error) {
	p := &Plan{
		query:     query,
		stmt:      stmt,
		paramSlot: make(map[string]int),
		desc: DescribeResult{
			Query: query,
			CEKs:  make(map[string]keys.CEKMetadata),
			CMKs:  make(map[string]keys.CMKMetadata),
		},
	}
	b := &binder{
		engine:    e,
		plan:      p,
		ded:       sqltypes.NewDeduction(),
		colOp:     make(map[int]int),
		paramOp:   make(map[string]int),
		paramKind: make(map[string]sqltypes.Kind),
	}
	var err error
	switch st := stmt.(type) {
	case SelectStmt:
		err = b.bindSelect(st)
	case InsertStmt:
		err = b.bindInsert(st)
	case UpdateStmt:
		err = b.bindUpdate(st)
	case DeleteStmt:
		err = b.bindDelete(st)
	case AlterColumnStmt:
		// Initial encryption / key rotation through the enclave: describe
		// reports the CEKs the enclave needs so the driver attests, installs
		// keys and authorizes the statement before execution (§2.4.2, §3.2).
		addEnclaveCEK := func(spec *EncSpec) error {
			if spec == nil {
				return nil
			}
			enabled, err := e.catalog.EnclaveEnabled(spec.CEK)
			if err != nil {
				return err
			}
			if enabled {
				p.desc.EnclaveCEKs = append(p.desc.EnclaveCEKs, spec.CEK)
				p.desc.NeedsEnclave = true
			}
			return nil
		}
		if err := addEnclaveCEK(st.Enc); err != nil {
			return nil, err
		}
		if tbl, err := e.catalog.Table(st.Table); err == nil {
			if col, err := tbl.Col(st.Column); err == nil && !col.Enc.IsPlaintext() && col.Enc.EnclaveEnabled {
				p.desc.EnclaveCEKs = append(p.desc.EnclaveCEKs, col.Enc.CEKName)
				p.desc.NeedsEnclave = true
			}
		}
		// Attach key metadata so the driver can ship the CEKs.
		for _, name := range p.desc.EnclaveCEKs {
			if err := e.collectKeyMetadata(&p.desc, name); err != nil {
				return nil, err
			}
		}
		return p, nil
	case BeginStmt, CommitStmt, RollbackStmt,
		CreateTableStmt, CreateIndexStmt, CreateCMKStmt, CreateCEKStmt:
		// No binding needed; DDL executes directly.
		return p, nil
	default:
		return nil, fmt.Errorf("engine: cannot bind %T", stmt)
	}
	if err != nil {
		return nil, err
	}
	if err := b.finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// resolveColumn maps a (possibly qualified) column name to a slot in the
// combined slot space.
func (b *binder) resolveColumn(name string) (int, *Column, error) {
	p := b.plan
	table, col := "", name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		table, col = name[:i], name[i+1:]
	}
	tryTable := func(t *Table, base int) (int, *Column) {
		if t == nil {
			return -1, nil
		}
		if table != "" && !strings.EqualFold(table, t.Name) {
			return -1, nil
		}
		c, err := t.Col(col)
		if err != nil {
			return -1, nil
		}
		return base + c.Pos, c
	}
	var inner *Table
	if p.join != nil {
		inner = p.join.table
	}
	oSlot, oCol := tryTable(p.table, 0)
	iSlot, iCol := tryTable(inner, p.numOuterCols)
	switch {
	case oCol != nil && iCol != nil:
		return 0, nil, fmt.Errorf("%w: %s", ErrAmbiguous, name)
	case oCol != nil:
		return oSlot, oCol, nil
	case iCol != nil:
		return iSlot, iCol, nil
	default:
		return 0, nil, fmt.Errorf("engine: unknown column %q", name)
	}
}

// colOperand returns (creating if needed) the deduction operand of a slot.
func (b *binder) colOperand(slot int, col *Column) int {
	if op, ok := b.colOp[slot]; ok {
		return op
	}
	op := b.ded.AddKnown(col.Name, col.Enc)
	b.colOp[slot] = op
	return op
}

// paramOperand returns (creating if needed) the deduction operand and slot
// of a named parameter.
func (b *binder) paramOperand(name string) int {
	if op, ok := b.paramOp[name]; ok {
		return op
	}
	op := b.ded.AddOperand("@" + name)
	b.paramOp[name] = op
	if _, ok := b.plan.paramSlot[name]; !ok {
		b.plan.paramSlot[name] = -1 // assigned in finalize
		b.plan.paramOrder = append(b.plan.paramOrder, name)
	}
	return op
}

// notePK notes the kind a parameter must be encoded as.
func (b *binder) noteParamKind(name string, kind sqltypes.Kind) {
	if _, ok := b.paramKind[name]; !ok {
		b.paramKind[name] = kind
	}
}

// bindPredicates applies deduction constraints for a WHERE clause.
func (b *binder) bindPredicates(preds []Predicate) error {
	for i := range preds {
		pr := &preds[i]
		slot, col, err := b.resolveColumn(pr.Col)
		if err != nil {
			return err
		}
		colOp := b.colOperand(slot, col)
		var opClass sqltypes.OpClass
		switch pr.Op {
		case PredEQ, PredNE:
			opClass = sqltypes.OpEquality
		case PredLT, PredLE, PredGT, PredGE, PredBetween:
			opClass = sqltypes.OpRange
		case PredLike:
			opClass = sqltypes.OpLike
		case PredIsNull, PredIsNotNull:
			continue // no encryption constraint: NULLs are unencrypted
		}
		if err := b.ded.RequireOp(colOp, opClass); err != nil {
			return err
		}
		for _, v := range []ValueExpr{pr.Val, pr.Val2} {
			if v == nil {
				continue
			}
			switch ve := v.(type) {
			case ParamExpr:
				pOp := b.paramOperand(ve.Name)
				if err := b.ded.RequireEqual(colOp, pOp); err != nil {
					return err
				}
				b.noteParamKind(ve.Name, col.Kind)
			case LiteralExpr:
				if !col.Enc.IsPlaintext() {
					return fmt.Errorf("%w (column %s)", exprsvc.ErrNotParameterized, col.Name)
				}
			default:
				return fmt.Errorf("engine: unsupported predicate operand %T", v)
			}
		}
	}
	return nil
}

func (b *binder) bindSelect(st SelectStmt) error {
	tbl, err := b.engine.catalog.Table(st.Table)
	if err != nil {
		return err
	}
	p := b.plan
	p.table = tbl
	p.numOuterCols = len(tbl.Cols)
	p.numColSlots = p.numOuterCols

	if st.Join != nil {
		inner, err := b.engine.catalog.Table(st.Join.Table)
		if err != nil {
			return err
		}
		p.join = &joinPlan{table: inner}
		p.numColSlots += len(inner.Cols)
		// Resolve join columns and equate their encryption types (equi-join
		// requires the same CEK and scheme, §2.4.3).
		lSlot, lCol, err := b.resolveColumn(st.Join.LeftCol)
		if err != nil {
			return err
		}
		rSlot, rCol, err := b.resolveColumn(st.Join.RightCol)
		if err != nil {
			return err
		}
		// Normalize: outerCol belongs to the outer table.
		outerSlot, innerSlot := lSlot, rSlot
		innerCol := rCol
		if lSlot >= p.numOuterCols {
			outerSlot, innerSlot = rSlot, lSlot
			innerCol = lCol
		}
		if outerSlot >= p.numOuterCols || innerSlot < p.numOuterCols {
			return errors.New("engine: join condition must relate the two FROM tables")
		}
		p.join.outerCol = outerSlot
		p.join.innerCol = innerSlot - p.numOuterCols
		lOp := b.colOperand(lSlot, lCol)
		rOp := b.colOperand(rSlot, rCol)
		if err := b.ded.RequireOp(lOp, sqltypes.OpEquality); err != nil {
			return err
		}
		if err := b.ded.RequireEqual(lOp, rOp); err != nil {
			return err
		}
		// Prefer an index on the inner join column for the probe.
		for _, idx := range p.join.table.Indexes {
			if idx.ColPos[0] == p.join.innerCol && !idx.Tree.Invalidated() {
				p.join.innerIndex = idx
				break
			}
		}
		_ = innerCol
	}

	if err := b.bindPredicates(st.Where); err != nil {
		return err
	}

	// Projection items.
	for _, item := range st.Items {
		if item.Star {
			for slot := 0; slot < p.numColSlots; slot++ {
				col := b.slotColumn(slot)
				p.items = append(p.items, projItem{
					agg: AggNone, slot: slot, name: col.Name, kind: col.Kind, enc: col.Enc})
			}
			continue
		}
		if item.Agg == AggCount && item.Col == "*" {
			p.items = append(p.items, projItem{agg: AggCount, slot: -1, name: "count", kind: sqltypes.KindInt})
			continue
		}
		slot, col, err := b.resolveColumn(item.Col)
		if err != nil {
			return err
		}
		pi := projItem{agg: item.Agg, slot: slot, name: col.Name, kind: col.Kind, enc: col.Enc}
		switch item.Agg {
		case AggNone:
		case AggCount:
			pi.kind, pi.enc, pi.name = sqltypes.KindInt, sqltypes.PlaintextType, "count"
		case AggCountDistinct:
			// DET admits distinctness via ciphertext equality; RND does not.
			if col.Enc.Scheme == sqltypes.SchemeRandomized {
				return fmt.Errorf("%w: COUNT(DISTINCT) over RANDOMIZED column %s",
					sqltypes.ErrTypeConflict, col.Name)
			}
			pi.kind, pi.enc, pi.name = sqltypes.KindInt, sqltypes.PlaintextType, "count"
		case AggMin, AggMax, AggSum:
			op := b.colOperand(slot, col)
			if err := b.ded.RequirePlaintext(op); err != nil {
				return err
			}
			if item.Agg == AggSum {
				pi.kind = sqltypes.KindFloat
			}
			pi.name = strings.ToLower(col.Name)
		}
		p.items = append(p.items, pi)
	}

	b.chooseAccess(st.Where)
	return b.compileFilter(st.Where)
}

// slotColumn returns the column metadata of a column slot.
func (b *binder) slotColumn(slot int) *Column {
	p := b.plan
	if slot < p.numOuterCols {
		return &p.table.Cols[slot]
	}
	return &p.join.table.Cols[slot-p.numOuterCols]
}

func (b *binder) bindInsert(st InsertStmt) error {
	tbl, err := b.engine.catalog.Table(st.Table)
	if err != nil {
		return err
	}
	p := b.plan
	p.table = tbl
	p.numOuterCols = len(tbl.Cols)
	p.numColSlots = p.numOuterCols
	for i, colName := range st.Cols {
		col, err := tbl.Col(colName)
		if err != nil {
			return err
		}
		p.insertTo = append(p.insertTo, insertBinding{colPos: col.Pos, expr: st.Vals[i]})
		switch v := st.Vals[i].(type) {
		case ParamExpr:
			colOp := b.colOperand(col.Pos, col)
			pOp := b.paramOperand(v.Name)
			if err := b.ded.RequireEqual(colOp, pOp); err != nil {
				return err
			}
			b.noteParamKind(v.Name, col.Kind)
		case LiteralExpr:
			if !col.Enc.IsPlaintext() && !v.Val.IsNull() {
				return fmt.Errorf("%w (column %s)", exprsvc.ErrNotParameterized, col.Name)
			}
		default:
			return errors.New("engine: INSERT values must be parameters or literals")
		}
	}
	return nil
}

func (b *binder) bindUpdate(st UpdateStmt) error {
	tbl, err := b.engine.catalog.Table(st.Table)
	if err != nil {
		return err
	}
	p := b.plan
	p.table = tbl
	p.numOuterCols = len(tbl.Cols)
	p.numColSlots = p.numOuterCols
	if err := b.bindPredicates(st.Where); err != nil {
		return err
	}
	for _, set := range st.Sets {
		col, err := tbl.Col(set.Col)
		if err != nil {
			return err
		}
		if err := b.bindSetExpr(col, set.Expr); err != nil {
			return err
		}
		p.sets = append(p.sets, compiledSet{colPos: col.Pos, expr: set.Expr})
	}
	b.chooseAccess(st.Where)
	return b.compileFilter(st.Where)
}

// bindSetExpr type-checks a SET right-hand side. A bare parameter can target
// any column (taking the column's encryption type); arithmetic and column
// references require plaintext throughout.
func (b *binder) bindSetExpr(col *Column, expr ValueExpr) error {
	switch v := expr.(type) {
	case ParamExpr:
		colOp := b.colOperand(col.Pos, col)
		pOp := b.paramOperand(v.Name)
		if err := b.ded.RequireEqual(colOp, pOp); err != nil {
			return err
		}
		b.noteParamKind(v.Name, col.Kind)
		return nil
	case LiteralExpr:
		if !col.Enc.IsPlaintext() && !v.Val.IsNull() {
			return fmt.Errorf("%w (column %s)", exprsvc.ErrNotParameterized, col.Name)
		}
		return nil
	case ColExpr, ArithExpr:
		colOp := b.colOperand(col.Pos, col)
		if err := b.ded.RequirePlaintext(colOp); err != nil {
			return fmt.Errorf("engine: arithmetic on encrypted column %s: %w", col.Name, err)
		}
		return b.requirePlaintextExpr(expr)
	default:
		return errors.New("engine: unsupported SET expression")
	}
}

func (b *binder) requirePlaintextExpr(expr ValueExpr) error {
	switch v := expr.(type) {
	case ParamExpr:
		return b.ded.RequirePlaintext(b.paramOperand(v.Name))
	case LiteralExpr:
		return nil
	case ColExpr:
		slot, col, err := b.resolveColumn(v.Name)
		if err != nil {
			return err
		}
		return b.ded.RequirePlaintext(b.colOperand(slot, col))
	case ArithExpr:
		if err := b.requirePlaintextExpr(v.L); err != nil {
			return err
		}
		return b.requirePlaintextExpr(v.R)
	default:
		return errors.New("engine: unsupported expression")
	}
}

func (b *binder) bindDelete(st DeleteStmt) error {
	tbl, err := b.engine.catalog.Table(st.Table)
	if err != nil {
		return err
	}
	p := b.plan
	p.table = tbl
	p.numOuterCols = len(tbl.Cols)
	p.numColSlots = p.numOuterCols
	if err := b.bindPredicates(st.Where); err != nil {
		return err
	}
	b.chooseAccess(st.Where)
	return b.compileFilter(st.Where)
}

// chooseAccess picks the best index for the outer table's predicates: the
// longest chain of leading-component equality predicates, optionally
// extended by one range predicate on the next component where the component
// order admits ranges (plaintext or enclave-ordered; never DET, §2.4.4).
func (b *binder) chooseAccess(preds []Predicate) {
	p := b.plan
	p.access.rangeOn = -1
	best := -1.0
	for _, idx := range p.table.Indexes {
		if idx.Tree.Invalidated() {
			continue
		}
		var eqVals []ValueExpr
		rangeOn := -1
		var rangeOp PredOp
		var rangeLo, rangeHi ValueExpr
		comp := 0
		for ; comp < len(idx.ColPos); comp++ {
			colName := idx.ColNames[comp]
			found := false
			for i := range preds {
				pr := &preds[i]
				if !colMatches(pr.Col, colName) || pr.Op != PredEQ {
					continue
				}
				eqVals = append(eqVals, pr.Val)
				found = true
				break
			}
			if !found {
				break
			}
		}
		// Optional range on the next component.
		if comp < len(idx.ColPos) && idx.RangeCapable[comp] {
			colName := idx.ColNames[comp]
			for i := range preds {
				pr := &preds[i]
				if !colMatches(pr.Col, colName) {
					continue
				}
				switch pr.Op {
				case PredLT, PredLE:
					rangeOn, rangeOp, rangeHi = comp, pr.Op, pr.Val
				case PredGT, PredGE:
					rangeOn, rangeOp, rangeLo = comp, pr.Op, pr.Val
				case PredBetween:
					rangeOn, rangeOp, rangeLo, rangeHi = comp, pr.Op, pr.Val, pr.Val2
				case PredLike:
					// Prefix-match LIKE with a literal pattern becomes a
					// range seek [prefix, prefix+0xFF] — the "LIKE predicate
					// using an index" path of Figure 5. The residual filter
					// re-verifies the exact pattern, so the (slightly
					// over-approximate) range is safe. Parameterized
					// patterns stay residual: the server cannot extract a
					// prefix from a value it cannot see.
					lit, ok := pr.Val.(LiteralExpr)
					if !ok || lit.Val.Kind != sqltypes.KindString {
						continue
					}
					prefix, isPrefix := sqltypes.HasPrefixPattern(lit.Val.S)
					if !isPrefix || prefix == "" {
						continue
					}
					rangeOn, rangeOp = comp, PredBetween
					rangeLo = LiteralExpr{Val: sqltypes.Str(prefix)}
					rangeHi = LiteralExpr{Val: sqltypes.Str(prefix + "\xff")}
				default:
					continue
				}
				if rangeOn >= 0 {
					break
				}
			}
		}
		score := float64(len(eqVals))
		if rangeOn >= 0 {
			score += 0.5
		}
		if idx.Unique && len(eqVals) == len(idx.ColPos) {
			score += 10 // full unique match: at most one row
		}
		if score > best && (len(eqVals) > 0 || rangeOn >= 0) {
			best = score
			p.access = accessPath{
				index: idx, eqVals: eqVals,
				rangeOn: rangeOn, rangeOp: rangeOp, rangeLo: rangeLo, rangeHi: rangeHi,
			}
		}
	}
}

func colMatches(predCol, indexCol string) bool {
	if i := strings.IndexByte(predCol, '.'); i >= 0 {
		predCol = predCol[i+1:]
	}
	return strings.EqualFold(predCol, indexCol)
}

// compileFilter builds the residual predicate program over the combined slot
// space. All predicates are included (index-covered ones are re-verified;
// cheap, and it keeps the filter the single source of truth for matching).
func (b *binder) compileFilter(preds []Predicate) error {
	p := b.plan
	// Assign parameter slots after the column slots.
	for i, name := range p.paramOrder {
		p.paramSlot[name] = p.numColSlots + i
	}
	if len(preds) == 0 && p.join == nil {
		return nil
	}

	infos := make([]exprsvc.EncInfo, p.numColSlots+len(p.paramOrder))
	for slot := 0; slot < p.numColSlots; slot++ {
		col := b.slotColumn(slot)
		infos[slot] = exprsvc.EncInfo{Kind: col.Kind, Enc: col.Enc}
	}
	for _, name := range p.paramOrder {
		enc := b.ded.Resolve(b.paramOp[name])
		kind := b.paramKind[name]
		infos[p.paramSlot[name]] = exprsvc.EncInfo{Kind: kind, Enc: enc}
	}

	var root exprsvc.Expr
	addConj := func(e exprsvc.Expr) {
		if root == nil {
			root = e
		} else {
			root = exprsvc.And{L: root, R: e}
		}
	}
	toOperand := func(v ValueExpr) (exprsvc.Expr, error) {
		switch ve := v.(type) {
		case ParamExpr:
			slot := p.paramSlot[ve.Name]
			return exprsvc.SlotRef{Slot: slot, Info: infos[slot], Name: "@" + ve.Name}, nil
		case LiteralExpr:
			return exprsvc.Const{Val: ve.Val}, nil
		default:
			return nil, errors.New("engine: unsupported operand")
		}
	}

	// Join condition as an equality between the two column slots.
	if p.join != nil {
		l := exprsvc.SlotRef{Slot: p.join.outerCol, Info: infos[p.join.outerCol], Name: "join.l"}
		rSlot := p.numOuterCols + p.join.innerCol
		r := exprsvc.SlotRef{Slot: rSlot, Info: infos[rSlot], Name: "join.r"}
		addConj(exprsvc.Cmp{Op: exprsvc.CmpEQ, L: l, R: r})
	}

	for i := range preds {
		pr := &preds[i]
		slot, col, err := b.resolveColumn(pr.Col)
		if err != nil {
			return err
		}
		colRef := exprsvc.SlotRef{Slot: slot, Info: infos[slot], Name: col.Name}
		switch pr.Op {
		case PredIsNull:
			addConj(exprsvc.IsNull{X: colRef})
			continue
		case PredIsNotNull:
			addConj(exprsvc.Not{X: exprsvc.IsNull{X: colRef}})
			continue
		case PredLike:
			pat, err := toOperand(pr.Val)
			if err != nil {
				return err
			}
			addConj(exprsvc.LikeExpr{Input: colRef, Pattern: pat})
			continue
		case PredBetween:
			lo, err := toOperand(pr.Val)
			if err != nil {
				return err
			}
			hi, err := toOperand(pr.Val2)
			if err != nil {
				return err
			}
			addConj(exprsvc.Cmp{Op: exprsvc.CmpGE, L: colRef, R: lo})
			addConj(exprsvc.Cmp{Op: exprsvc.CmpLE, L: colRef, R: hi})
			continue
		}
		operand, err := toOperand(pr.Val)
		if err != nil {
			return err
		}
		var op exprsvc.CompOp
		switch pr.Op {
		case PredEQ:
			op = exprsvc.CmpEQ
		case PredNE:
			op = exprsvc.CmpNE
		case PredLT:
			op = exprsvc.CmpLT
		case PredLE:
			op = exprsvc.CmpLE
		case PredGT:
			op = exprsvc.CmpGT
		case PredGE:
			op = exprsvc.CmpGE
		}
		addConj(exprsvc.Cmp{Op: op, L: colRef, R: operand})
	}

	if root == nil {
		return nil
	}
	prog, err := exprsvc.Compile(p.query, root, infos)
	if err != nil {
		return err
	}
	p.filter = prog
	return nil
}

// finalize resolves parameter types, collects key metadata and prepares the
// evaluator pool.
func (b *binder) finalize() error {
	p := b.plan
	e := b.engine
	// Assign parameter slots if compileFilter didn't (e.g. INSERT).
	for i, name := range p.paramOrder {
		if p.paramSlot[name] < 0 {
			p.paramSlot[name] = p.numColSlots + i
		}
	}
	for _, name := range p.paramOrder {
		enc := b.ded.Resolve(b.paramOp[name])
		p.desc.Params = append(p.desc.Params, ParamInfo{
			Name: name, Kind: b.paramKind[name], Enc: enc,
		})
	}
	p.desc.EnclaveCEKs = b.ded.EnclaveCEKs()
	p.desc.NeedsEnclave = b.ded.NeedsEnclave()
	addEnclaveCEK := func(cek string) {
		for _, c := range p.desc.EnclaveCEKs {
			if c == cek {
				return
			}
		}
		p.desc.EnclaveCEKs = append(p.desc.EnclaveCEKs, cek)
		p.desc.NeedsEnclave = true
	}
	// Index access over enclave-ordered components also needs those CEKs.
	if p.access.index != nil {
		for _, cek := range p.access.index.CEKs {
			addEnclaveCEK(cek)
		}
	}
	// DML maintains every index of the table: inserting into (or fixing up)
	// an enclave-ordered range index routes comparisons to the enclave, so
	// its CEKs must be installed before execution.
	switch p.stmt.(type) {
	case InsertStmt, UpdateStmt, DeleteStmt:
		for _, idx := range p.table.Indexes {
			for _, cek := range idx.CEKs {
				addEnclaveCEK(cek)
			}
		}
	}
	if p.desc.NeedsEnclave && e.cfg.Enclave == nil {
		return errors.New("engine: query requires enclave computations but no enclave is configured")
	}

	// Key metadata for the driver: every CEK referenced by parameters or the
	// enclave, plus its CMKs.
	addCEK := func(name string) error { return e.collectKeyMetadata(&p.desc, name) }
	for _, pi := range p.desc.Params {
		if err := addCEK(pi.Enc.CEKName); err != nil {
			return err
		}
	}
	for _, cek := range p.desc.EnclaveCEKs {
		if err := addCEK(cek); err != nil {
			return err
		}
	}
	// Projected encrypted columns: the driver needs their key metadata to
	// decrypt result cells.
	for _, item := range p.items {
		if err := addCEK(item.enc.CEKName); err != nil {
			return err
		}
	}

	if p.filter != nil {
		prog := p.filter
		var caller exprsvc.EnclaveCaller
		if e.cfg.Enclave != nil {
			caller = e.cfg.Enclave
		}
		p.evalPool.New = func() any {
			ev, err := exprsvc.NewEvaluator(prog, nil, caller)
			if err != nil {
				return err
			}
			return ev
		}
	}
	return nil
}

// collectKeyMetadata copies a CEK's metadata (and its CMKs') into a describe
// result for the driver.
func (e *Engine) collectKeyMetadata(desc *DescribeResult, name string) error {
	if name == "" {
		return nil
	}
	if _, ok := desc.CEKs[name]; ok {
		return nil
	}
	cek, err := e.catalog.CEK(name)
	if err != nil {
		return err
	}
	desc.CEKs[name] = *cek
	for _, val := range cek.Values {
		cmk, err := e.catalog.CMK(val.CMKName)
		if err != nil {
			return err
		}
		desc.CMKs[cmk.Name] = *cmk
	}
	return nil
}

// Describe runs encryption type deduction for a query and returns the
// sp_describe_parameter_encryption output (§4.1).
func (e *Engine) Describe(query string) (*DescribeResult, error) {
	p, err := e.getPlan(query, nil)
	if err != nil {
		return nil, err
	}
	desc := p.desc
	return &desc, nil
}

package engine

import (
	"errors"
	"fmt"
	"testing"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
)

// TestDETEquiJoinAcrossTables: §2.4.3 — equi-joins over deterministically
// encrypted columns, both under the same CEK, compare ciphertext to
// ciphertext on the host.
func TestDETEquiJoinAcrossTables(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", false)
	enc := " ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
	env.mustExec("CREATE TABLE patients (pid int PRIMARY KEY, ssn varchar(11)"+enc+")", nil)
	env.mustExec("CREATE TABLE claims (cid int PRIMARY KEY, claim_ssn varchar(11)"+enc+", amount float)", nil)

	ssn := func(i int64) []byte {
		return env.enc("CEK1", sqltypes.Str(fmt.Sprintf("%03d-00-0000", i)), aecrypto.Deterministic)
	}
	for i := int64(1); i <= 5; i++ {
		env.mustExec("INSERT INTO patients (pid, ssn) VALUES (@p, @s)",
			Params{"p": intParam(i), "s": ssn(i)})
	}
	for i := int64(1); i <= 10; i++ {
		env.mustExec("INSERT INTO claims (cid, claim_ssn, amount) VALUES (@c, @s, @a)",
			Params{"c": intParam(i), "s": ssn(i%5 + 1), "a": floatParam(float64(i) * 10)})
	}

	rs := env.mustExec(
		"SELECT patients.pid, claims.amount FROM patients JOIN claims ON patients.ssn = claims.claim_ssn WHERE patients.pid = @p",
		Params{"p": intParam(2)})
	if len(rs.Rows) != 2 {
		t.Fatalf("join rows = %d", len(rs.Rows))
	}
	if evals := env.encl.Dump().Evaluations; evals != 0 {
		t.Fatalf("DET equi-join used the enclave (%d evals)", evals)
	}
}

// TestCrossCEKJoinRejectedAtBind: joining DET columns under different CEKs
// must fail type deduction.
func TestCrossCEKJoinRejectedAtBind(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", false)
	env.provisionKeys("CMK2", "CEK2", false)
	env.mustExec("CREATE TABLE a (id int PRIMARY KEY, k varchar(10) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))", nil)
	env.mustExec("CREATE TABLE b (id int PRIMARY KEY, k varchar(10) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK2, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))", nil)
	_, err := env.session.Execute("SELECT a.id FROM a JOIN b ON a.k = b.k", nil)
	if !errors.Is(err, sqltypes.ErrTypeConflict) {
		t.Fatalf("cross-CEK join: %v", err)
	}
}

func TestSelectLimitAndNotNull(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	for i := int64(1); i <= 10; i++ {
		p := Params{"i": intParam(i), "v": intParam(i)}
		if i%3 == 0 {
			p["v"] = nil
		}
		env.mustExec("INSERT INTO t (id, v) VALUES (@i, @v)", p)
	}
	rs := env.mustExec("SELECT id FROM t WHERE v IS NOT NULL LIMIT 4", nil)
	if len(rs.Rows) != 4 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	rs = env.mustExec("SELECT COUNT(v) FROM t", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 7 {
		t.Fatalf("COUNT(v) = %v (NULLs must not count)", v)
	}
}

// TestPlanCacheReuse: the same query text binds once; deduction results are
// cached with the plan (§4.3).
func TestPlanCacheReuse(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	q := "SELECT v FROM t WHERE id = @i"
	p1, err := env.engine.getPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := env.engine.getPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("plan not cached")
	}
	// DDL invalidates the cache.
	env.mustExec("CREATE TABLE t2 (id int PRIMARY KEY)", nil)
	p3, err := env.engine.getPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("plan cache not invalidated by DDL")
	}
}

// TestMissingParameterErrors: executing with an unbound parameter fails
// cleanly rather than treating it as NULL.
func TestMissingParameterErrors(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	if _, err := env.session.Execute("INSERT INTO t (id, v) VALUES (@i, @v)",
		Params{"i": intParam(1)}); !errors.Is(err, ErrUnknownParam) {
		t.Fatalf("err = %v", err)
	}
}

// TestNotNullEnforced: NULL into a NOT NULL column aborts the statement.
func TestNotNullEnforced(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE t (id int PRIMARY KEY, v int NOT NULL)", nil)
	if _, err := env.session.Execute("INSERT INTO t (id, v) VALUES (@i, @v)",
		Params{"i": intParam(1), "v": nil}); !errors.Is(err, ErrNotNull) {
		t.Fatalf("err = %v", err)
	}
	rs := env.mustExec("SELECT COUNT(*) FROM t", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 0 {
		t.Fatal("partial insert survived")
	}
}

// TestUpdateMovesIndexEntries: updating an indexed column fixes up the index.
func TestUpdateMovesIndexEntries(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	env.mustExec("CREATE INDEX ix_v ON t (v)", nil)
	env.mustExec("INSERT INTO t (id, v) VALUES (@i, @v)", Params{"i": intParam(1), "v": intParam(10)})
	env.mustExec("UPDATE t SET v = @v WHERE id = @i", Params{"v": intParam(99), "i": intParam(1)})
	rs := env.mustExec("SELECT id FROM t WHERE v = @v", Params{"v": intParam(99)})
	if len(rs.Rows) != 1 {
		t.Fatal("new index entry missing")
	}
	rs = env.mustExec("SELECT id FROM t WHERE v = @v", Params{"v": intParam(10)})
	if len(rs.Rows) != 0 {
		t.Fatal("stale index entry visible")
	}
}

// TestGarbageCiphertextParameterFails: the enclave rejects ciphertext that
// fails HMAC validation (the §2.3 usability property — garbage can't be
// silently compared).
func TestGarbageCiphertextParameterFails(t *testing.T) {
	env := setupRNDTable(t, false)
	env.mustExec("INSERT INTO T (id, value) VALUES (@id, @v)", Params{
		"id": intParam(1), "v": env.enc("CEK1", sqltypes.Int(1), aecrypto.Randomized)})
	garbage := make([]byte, 65)
	garbage[0] = 0x01
	if _, err := env.session.Execute("SELECT id FROM T WHERE value = @v",
		Params{"v": garbage}); err == nil {
		t.Fatal("garbage ciphertext accepted")
	}
}

// TestSelectStarWithJoinProjectsBothTables.
func TestSelectStarWithJoinProjectsBothTables(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE l (id int PRIMARY KEY, x int)", nil)
	env.mustExec("CREATE TABLE r (rid int PRIMARY KEY, lid int, y int)", nil)
	env.mustExec("INSERT INTO l (id, x) VALUES (@a, @b)", Params{"a": intParam(1), "b": intParam(10)})
	env.mustExec("INSERT INTO r (rid, lid, y) VALUES (@a, @b, @c)",
		Params{"a": intParam(7), "b": intParam(1), "c": intParam(20)})
	rs := env.mustExec("SELECT * FROM l JOIN r ON l.id = r.lid", nil)
	if len(rs.Columns) != 5 {
		t.Fatalf("columns = %d", len(rs.Columns))
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
}

// TestAmbiguousColumnRejected.
func TestAmbiguousColumnRejected(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE l (id int PRIMARY KEY, v int)", nil)
	env.mustExec("CREATE TABLE r (rid int PRIMARY KEY, v int, lid int)", nil)
	if _, err := env.session.Execute("SELECT v FROM l JOIN r ON l.id = r.lid", nil); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v", err)
	}
}

// TestLikePrefixUsesIndex: a literal prefix LIKE pattern on an indexed
// plaintext column seeks the index instead of scanning (Figure 5's "LIKE
// predicate using an index").
func TestLikePrefixUsesIndex(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE n (id int PRIMARY KEY, name varchar(20))", nil)
	env.mustExec("CREATE INDEX ix_name ON n (name)", nil)
	names := []string{"SMITH", "SMYTHE", "SMALL", "JONES", "BROWN", "SMITHSON"}
	for i, name := range names {
		env.mustExec("INSERT INTO n (id, name) VALUES (@i, @n)",
			Params{"i": intParam(int64(i + 1)), "n": strParam(name)})
	}
	scansBefore, seeksBefore, _ := env.engine.Stats()
	rs := env.mustExec("SELECT id FROM n WHERE name LIKE 'SMI%'", nil)
	scansAfter, seeksAfter, _ := env.engine.Stats()
	if len(rs.Rows) != 2 { // SMITH, SMITHSON
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if seeksAfter == seeksBefore {
		t.Fatal("prefix LIKE did not seek the index")
	}
	if scansAfter != scansBefore {
		t.Fatal("prefix LIKE fell back to a scan")
	}
	// Non-prefix patterns still scan (and still answer correctly).
	rs = env.mustExec("SELECT id FROM n WHERE name LIKE '%THE'", nil)
	if len(rs.Rows) != 1 { // SMYTHE
		t.Fatalf("suffix rows = %d", len(rs.Rows))
	}
	// Case-insensitive collation applies on the index path too.
	rs = env.mustExec("SELECT id FROM n WHERE name LIKE 'smi%'", nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("folded rows = %d", len(rs.Rows))
	}
}

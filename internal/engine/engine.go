package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/btree"
	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/obs"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// Config wires the engine to its substrates.
type Config struct {
	// Enclave is the loaded enclave; nil runs the engine enclave-less (AEv1
	// semantics: DET equality only).
	Enclave *enclave.Enclave
	// Host and HGS supply attestation material when clients request it.
	Host *attestation.Host
	HGS  *attestation.HGS
	// CTR enables constant-time recovery semantics (§4.5).
	CTR bool
	// Store is the page store; nil defaults to an in-memory store.
	Store storage.PageStore
	// BufferPoolPages caps the buffer pool; 0 defaults to 4096 frames.
	BufferPoolPages int
	// Obs is the metrics registry the engine (and its buffer pool) report
	// into; nil creates a private one. Pass the same registry to
	// enclave.Options.Obs to get one snapshot across the trust boundary.
	Obs *obs.Registry
	// BatchSize is the executor's rows-per-batch for batched filter
	// evaluation and the ALTER…ENCRYPTED rewrite loop — the §4.6
	// crossing-amortization factor. <= 0 defaults to DefaultBatchSize.
	BatchSize int
	// Tracer records per-statement traces (lifecycle spans, enclave
	// crossings, WAL waits). nil disables tracing: every trace call site
	// degrades to a nil-receiver no-op.
	Tracer *trace.Tracer
	// DisableGroupCommit makes every committer append its own commit record
	// (the pre-group-commit behaviour, kept for the write benchmark's
	// baseline arm). Default off: commits coalesce through the WAL's
	// leader protocol.
	DisableGroupCommit bool
	// CommitWindow stretches the group-commit leader's collection window.
	// Zero (the default) coalesces only what queues naturally behind the
	// previous append round, adding no latency.
	CommitWindow time.Duration
	// LockTimeout overrides the lock manager's wait bound (tests drive
	// write-write conflicts with short timeouts); zero keeps the default.
	LockTimeout time.Duration
	// LogSyncDelay models the stable-media flush the commit path must wait
	// out (storage.WAL.SyncDelay). Zero — the default — keeps the in-memory
	// log free; the write benchmark sets it so the group-commit ablation
	// has a real per-round cost to amortize.
	LogSyncDelay time.Duration
}

// Engine is the database engine instance — the untrusted server process.
type Engine struct {
	cfg      Config
	catalog  *Catalog
	pool     *storage.BufferPool
	wal      *storage.WAL
	locks    *storage.LockManager
	versions *storage.VersionStore

	planMu sync.Mutex
	plans  map[string]*Plan

	txnMu    sync.Mutex
	nextTxn  uint64
	active   map[uint64]*Txn
	deferred map[uint64]*deferredTxn
	deferSeq uint64 // orders deferred registrations for in-order resolution

	nextSession atomic.Uint64

	// readOnly marks a replica engine: only SELECTs are admitted until the
	// replica is promoted (mutations would fork its log from the primary's).
	readOnly atomic.Bool

	// Registry-backed instruments; pointers cached at construction so the
	// per-row hot paths never touch the registry's lock.
	obs                 *obs.Registry
	scans, seeks, execs *obs.Counter
	spanLex             *obs.Histogram // statement lifecycle decomposition
	spanParse           *obs.Histogram
	spanBind            *obs.Histogram
	spanPlan            *obs.Histogram
	spanExec            *obs.Histogram

	// batch is the normalized Config.BatchSize.
	batch int

	// Group-commit settings (from Config).
	groupCommit  bool
	commitWindow time.Duration

	// tracer mints per-statement traces; nil when tracing is disabled.
	tracer *trace.Tracer
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Store == nil {
		cfg.Store = storage.NewMemStore()
	}
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 4096
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New("engine")
	}
	locks := storage.NewLockManager()
	if cfg.LockTimeout > 0 {
		locks.Timeout = cfg.LockTimeout
	}
	versions := storage.NewVersionStore()
	reg.GaugeFunc("storage.version.retained_bytes", versions.RetainedBytes)
	wal := storage.NewWAL()
	wal.SyncDelay = cfg.LogSyncDelay
	return &Engine{
		cfg:       cfg,
		catalog:   NewCatalog(),
		pool:      storage.NewBufferPoolObs(cfg.Store, cfg.BufferPoolPages, reg),
		wal:       wal,
		locks:     locks,
		versions:  versions,
		plans:     make(map[string]*Plan),
		nextTxn:   1,
		active:    make(map[uint64]*Txn),
		deferred:  make(map[uint64]*deferredTxn),
		obs:       reg,
		scans:     reg.Counter("engine.scans"),
		seeks:     reg.Counter("engine.seeks"),
		execs:     reg.Counter("engine.execs"),
		spanLex:   reg.Histogram("engine.stmt.lex_ns"),
		spanParse: reg.Histogram("engine.stmt.parse_ns"),
		spanBind:  reg.Histogram("engine.stmt.bind_ns"),
		spanPlan:  reg.Histogram("engine.stmt.plan_ns"),
		spanExec:  reg.Histogram("engine.stmt.exec_ns"),
		batch:        cfg.BatchSize,
		groupCommit:  !cfg.DisableGroupCommit,
		commitWindow: cfg.CommitWindow,
		tracer:       cfg.Tracer,
	}
}

// Obs returns the registry the engine reports into.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// Tracer returns the statement tracer, or nil when tracing is disabled.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Catalog exposes the catalog (tools, tests).
func (e *Engine) Catalog() *Catalog { return e.catalog }

// WAL exposes the log (recovery tests, truncation policies).
func (e *Engine) WAL() *storage.WAL { return e.wal }

// Enclave returns the configured enclave, or nil.
func (e *Engine) Enclave() *enclave.Enclave { return e.cfg.Enclave }

// SetReadOnly toggles replica mode: mutating statements are rejected with
// ErrReadOnly. Promotion clears it.
func (e *Engine) SetReadOnly(v bool) { e.readOnly.Store(v) }

// ReadOnly reports whether the engine is serving as a read replica.
func (e *Engine) ReadOnly() bool { return e.readOnly.Load() }

// Stats reports engine operation counters. It is a compatibility shim over
// the obs registry, which is the single source of truth.
func (e *Engine) Stats() (scans, seeks, execs uint64) {
	return e.scans.Value(), e.seeks.Value(), e.execs.Value()
}

// Session is a server-side connection context. Sessions are not safe for
// concurrent use (one session per client connection, as in TDS).
type Session struct {
	engine     *Engine
	id         uint64
	txn        *Txn // explicit transaction, if open
	EnclaveSID uint64

	// traceID is the client-supplied trace context for the NEXT statement
	// (set by the TDS layer before Execute, consumed by it).
	traceID trace.ID
	// act is the statement currently being traced on this session; nil
	// outside Execute or when tracing is disabled.
	act *trace.Active
}

// SetTraceID installs the client's trace context for the next statement.
// A zero ID is fine: the tracer mints a server-side one so statements from
// old clients still trace.
func (s *Session) SetTraceID(id trace.ID) { s.traceID = id }

// NewSession opens a server session.
func (e *Engine) NewSession() *Session {
	return &Session{engine: e, id: e.nextSession.Add(1)}
}

// Txn is an in-flight transaction: its undo log and lock set.
type Txn struct {
	id       uint64
	beginLSN uint64
	ops      []txnOp
	engine   *Engine

	// snap is the transaction's read snapshot, acquired lazily at its first
	// SELECT and held to commit/rollback — repeatable reads within the
	// transaction. Owned by the transaction lifecycle, never released on a
	// statement path.
	snap *storage.Snapshot

	// act is the active trace of the statement currently running in this
	// transaction (explicit transactions span statements, so it is reset
	// per statement). WAL records logged through the txn carry its trace
	// ID, and appends record wal.append spans against it. nil is fine.
	act *trace.Active
}

// snapshot returns the transaction's read snapshot, acquiring it on first
// use. Self-visibility is keyed by the txn id: the snapshot sees the
// transaction's own uncommitted writes (read-your-writes).
func (t *Txn) snapshot() *storage.Snapshot {
	if t.snap == nil {
		t.snap = t.engine.versions.Acquire(t.id)
	}
	return t.snap
}

// releaseSnapshot ends the transaction's snapshot, if one was acquired.
func (t *Txn) releaseSnapshot() {
	if t.snap != nil {
		t.snap.Release()
		t.snap = nil
	}
}

// txnOp is one logged operation, kept for rollback in reverse order.
type txnOp struct {
	typ    storage.RecType
	table  string // table or index name
	row    storage.RowID
	newRow storage.RowID
	key    [][]byte
	old    []byte
	new    []byte
}

// Transaction errors.
var (
	ErrNoTxn          = errors.New("engine: no transaction in progress")
	ErrTxnInProgress  = errors.New("engine: transaction already in progress")
	ErrRollbackFailed = errors.New("engine: rollback could not restore a row")
	ErrNotNull        = errors.New("engine: NULL value in NOT NULL column")
	ErrReadOnly       = errors.New("engine: read replica is read-only until promoted")
)

// Begin starts an explicit transaction on the session.
func (s *Session) Begin() error {
	if s.txn != nil {
		return ErrTxnInProgress
	}
	s.txn = s.engine.beginTxn(s.act)
	return nil
}

// Commit commits the session's transaction.
func (s *Session) Commit() error {
	if s.txn == nil {
		return ErrNoTxn
	}
	err := s.engine.commitTxn(s.txn)
	s.txn = nil
	return err
}

// Rollback aborts the session's transaction.
func (s *Session) Rollback() error {
	if s.txn == nil {
		return ErrNoTxn
	}
	err := s.engine.rollbackTxn(s.txn)
	s.txn = nil
	return err
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.txn != nil }

func (e *Engine) beginTxn(act *trace.Active) *Txn {
	e.txnMu.Lock()
	id := e.nextTxn
	e.nextTxn++
	e.txnMu.Unlock()
	txn := &Txn{id: id, engine: e, act: act}
	sp := act.StartSpan("wal.append")
	txn.beginLSN = e.wal.Append(storage.Record{Txn: id, Type: storage.RecBegin, Trace: act.ID()})
	sp.End()
	e.txnMu.Lock()
	e.active[id] = txn
	e.txnMu.Unlock()
	return txn
}

func (e *Engine) commitTxn(t *Txn) error {
	t.releaseSnapshot()
	sp := t.act.StartSpan("wal.commit")
	rec := storage.Record{Txn: t.id, Type: storage.RecCommit, Trace: t.act.ID()}
	if e.groupCommit {
		e.wal.AppendCommitGroup(rec, e.commitWindow)
	} else {
		// Ablation path: this committer alone pays the flush round.
		e.wal.AppendSync(rec)
	}
	sp.End()
	// Stamping the versions IS the commit point for snapshot readers: a
	// snapshot acquired before this sees the pre-images, one acquired after
	// sees the heap. Retention past this point is bounded by the oldest
	// active snapshot; with no readers the images evict immediately.
	e.versions.Commit(t.id)
	e.locks.ReleaseAll(t.id)
	e.txnMu.Lock()
	delete(e.active, t.id)
	e.txnMu.Unlock()
	return nil
}

// rollbackTxn undoes the transaction: index entries are removed or restored
// logically (B+-tree navigation — the enclave-dependent path), heap changes
// physically via before-images.
func (e *Engine) rollbackTxn(t *Txn) error {
	t.releaseSnapshot()
	err := e.undoOps(t.id, t.ops)
	e.wal.Append(storage.Record{Txn: t.id, Type: storage.RecAbort, Trace: t.act.ID()})
	e.versions.Drop(t.id)
	e.locks.ReleaseAll(t.id)
	e.txnMu.Lock()
	delete(e.active, t.id)
	e.txnMu.Unlock()
	return err
}

// undoOps reverses a slice of operations (newest first). Every undo action
// is logged as a compensation log record (CLR) attributed to txn, so a
// replica replaying the log applies undo physically — it never has to
// re-derive it, which for encrypted indexes it could not do without keys.
func (e *Engine) undoOps(txn uint64, ops []txnOp) error {
	for i := len(ops) - 1; i >= 0; i-- {
		if err := e.undoOne(txn, &ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// undoOne reverses a single operation and logs the CLR. Heap undo holds the
// table mutex across the heap change and the WAL append so the log order
// matches the page mutation order — the invariant physical replay relies on.
func (e *Engine) undoOne(txn uint64, op *txnOp) error {
	switch op.typ {
	case storage.RecHeapInsert:
		tbl, err := e.catalog.Table(op.table)
		if err != nil {
			return err
		}
		tbl.mu.Lock()
		defer tbl.mu.Unlock()
		if err := tbl.Heap.Delete(op.row); err != nil {
			return err
		}
		e.wal.Append(storage.Record{Txn: txn, Type: storage.RecHeapDelete,
			Table: op.table, Row: op.row, Old: op.new, CLR: true})
		return nil
	case storage.RecHeapDelete:
		tbl, err := e.catalog.Table(op.table)
		if err != nil {
			return err
		}
		tbl.mu.Lock()
		defer tbl.mu.Unlock()
		if err := tbl.Heap.RestoreAt(op.row, op.old); err != nil {
			return fmt.Errorf("%w: %v", ErrRollbackFailed, err)
		}
		e.wal.Append(storage.Record{Txn: txn, Type: storage.RecHeapInsert,
			Table: op.table, Row: op.row, New: op.old, CLR: true})
		return nil
	case storage.RecHeapUpdate:
		tbl, err := e.catalog.Table(op.table)
		if err != nil {
			return err
		}
		tbl.mu.Lock()
		defer tbl.mu.Unlock()
		if op.newRow != op.row && op.newRow != 0 {
			// The update relocated the row; undo the move. Logged as a CLR
			// delete + CLR insert pair so replay restores the exact slot.
			if err := tbl.Heap.Delete(op.newRow); err != nil {
				return fmt.Errorf("%w: %v", ErrRollbackFailed, err)
			}
			e.wal.Append(storage.Record{Txn: txn, Type: storage.RecHeapDelete,
				Table: op.table, Row: op.newRow, Old: op.new, CLR: true})
			if err := tbl.Heap.RestoreAt(op.row, op.old); err != nil {
				return fmt.Errorf("%w: %v", ErrRollbackFailed, err)
			}
			e.wal.Append(storage.Record{Txn: txn, Type: storage.RecHeapInsert,
				Table: op.table, Row: op.row, New: op.old, CLR: true})
			return nil
		}
		rid2, err := tbl.Heap.Update(op.row, op.old)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrRollbackFailed, err)
		}
		e.wal.Append(storage.Record{Txn: txn, Type: storage.RecHeapUpdate,
			Table: op.table, Row: op.row, NewRow: rid2, Old: op.new, New: op.old, CLR: true})
		return nil
	case storage.RecIndexInsert:
		idx, err := e.catalog.Index(op.table)
		if err != nil {
			return err
		}
		if _, err := idx.Tree.Delete(op.key, op.row); err != nil { // logical undo (§4.5)
			return err
		}
		e.wal.Append(storage.Record{Txn: txn, Type: storage.RecIndexDelete,
			Table: op.table, Row: op.row, Key: op.key, CLR: true})
		return nil
	case storage.RecIndexDelete:
		idx, err := e.catalog.Index(op.table)
		if err != nil {
			return err
		}
		if err := idx.Tree.Insert(op.key, op.row); err != nil {
			return err
		}
		e.wal.Append(storage.Record{Txn: txn, Type: storage.RecIndexInsert,
			Table: op.table, Row: op.row, Key: op.key, CLR: true})
		return nil
	default:
		return nil
	}
}

// log appends a WAL record and mirrors it into the transaction's undo list.
// Callers logging heap records must hold the table mutex so log order and
// page mutation order agree.
func (t *Txn) log(op txnOp) {
	sp := t.act.StartSpan("wal.append")
	t.engine.wal.Append(storage.Record{
		Txn: t.id, Type: op.typ, Table: op.table,
		Row: op.row, NewRow: op.newRow, Key: op.key, Old: op.old, New: op.new,
		Trace: t.act.ID(),
	})
	sp.End()
	t.ops = append(t.ops, op)
}

// insertRow inserts cells into a table under the transaction, maintaining
// all indexes. On a uniqueness violation the partial work is undone.
func (e *Engine) insertRow(t *Txn, tbl *Table, cells [][]byte) (storage.RowID, error) {
	for i := range tbl.Cols {
		if tbl.Cols[i].NotNull && (i >= len(cells) || len(cells[i]) == 0) {
			return 0, fmt.Errorf("%w: %s.%s", ErrNotNull, tbl.Name, tbl.Cols[i].Name)
		}
	}
	rec := encodeRow(cells)
	opStart := len(t.ops)
	tbl.mu.Lock()
	// Register the version chain under the page latch, before the row is
	// reachable by any scan: a nil pre-image marks "invisible before this
	// txn", so concurrent snapshots never see the uncommitted insert.
	rid, err := tbl.Heap.InsertObserved(rec, func(r storage.RowID) {
		e.versions.Record(t.id, tbl.Name, r, nil)
	})
	if err != nil {
		tbl.mu.Unlock()
		return 0, err
	}
	// Log under the table mutex: WAL order must match page mutation order
	// for physical replay on replicas.
	t.log(txnOp{typ: storage.RecHeapInsert, table: tbl.Name, row: rid, new: rec})
	tbl.mu.Unlock()
	if err := e.locks.Lock(t.id, tbl.Name, rid); err != nil {
		// Undo the insert through the normal path so a CLR is logged.
		e.undoOps(t.id, t.ops[opStart:])
		t.ops = t.ops[:opStart]
		return 0, err
	}
	for _, idx := range tbl.Indexes {
		key := copyKey(idx.indexKeyFor(cells))
		if err := idx.Tree.Insert(key, rid); err != nil {
			// Undo what this statement did so far (statement atomicity).
			e.undoOps(t.id, t.ops[opStart:])
			t.ops = t.ops[:opStart]
			return 0, err
		}
		t.log(txnOp{typ: storage.RecIndexInsert, table: idx.Name, row: rid, key: key})
	}
	return rid, nil
}

// updateRow rewrites a row under the transaction, fixing up index entries
// whose key columns changed.
func (e *Engine) updateRow(t *Txn, tbl *Table, rid storage.RowID, oldCells, newCells [][]byte) (storage.RowID, error) {
	for i := range tbl.Cols {
		if tbl.Cols[i].NotNull && (i >= len(newCells) || len(newCells[i]) == 0) {
			return 0, fmt.Errorf("%w: %s.%s", ErrNotNull, tbl.Name, tbl.Cols[i].Name)
		}
	}
	if err := e.locks.Lock(t.id, tbl.Name, rid); err != nil {
		return 0, err
	}
	oldRec := encodeRow(oldCells)
	newRec := encodeRow(newCells)
	e.versions.Record(t.id, tbl.Name, rid, oldRec)

	opStart := len(t.ops)
	tbl.mu.Lock()
	// If the update relocates the row, the new slot gets a nil pre-image
	// chain under the page latch (invisible to concurrent snapshots until
	// commit), matching the insert path.
	newRID, err := tbl.Heap.UpdateObserved(rid, newRec, func(r storage.RowID) {
		e.versions.Record(t.id, tbl.Name, r, nil)
	})
	if err != nil {
		tbl.mu.Unlock()
		return 0, err
	}
	t.log(txnOp{typ: storage.RecHeapUpdate, table: tbl.Name, row: rid, newRow: newRID, old: oldRec, new: newRec})
	tbl.mu.Unlock()

	for _, idx := range tbl.Indexes {
		oldKey := idx.indexKeyFor(oldCells)
		newKey := idx.indexKeyFor(newCells)
		moved := newRID != rid
		changed := moved || !keysEqualBytes(oldKey, newKey)
		if !changed {
			continue
		}
		ok := copyKey(oldKey)
		nk := copyKey(newKey)
		if _, err := idx.Tree.Delete(ok, rid); err != nil {
			e.undoOps(t.id, t.ops[opStart:])
			t.ops = t.ops[:opStart]
			return 0, err
		}
		t.log(txnOp{typ: storage.RecIndexDelete, table: idx.Name, row: rid, key: ok})
		if err := idx.Tree.Insert(nk, newRID); err != nil {
			e.undoOps(t.id, t.ops[opStart:])
			t.ops = t.ops[:opStart]
			return 0, err
		}
		t.log(txnOp{typ: storage.RecIndexInsert, table: idx.Name, row: newRID, key: nk})
	}
	return newRID, nil
}

// deleteRow removes a row under the transaction.
func (e *Engine) deleteRow(t *Txn, tbl *Table, rid storage.RowID, cells [][]byte) error {
	if err := e.locks.Lock(t.id, tbl.Name, rid); err != nil {
		return err
	}
	rec := encodeRow(cells)
	e.versions.Record(t.id, tbl.Name, rid, rec)
	opStart := len(t.ops)
	for _, idx := range tbl.Indexes {
		key := copyKey(idx.indexKeyFor(cells))
		if _, err := idx.Tree.Delete(key, rid); err != nil {
			e.undoOps(t.id, t.ops[opStart:])
			t.ops = t.ops[:opStart]
			return err
		}
		t.log(txnOp{typ: storage.RecIndexDelete, table: idx.Name, row: rid, key: key})
	}
	tbl.mu.Lock()
	err := tbl.Heap.Delete(rid)
	if err == nil {
		t.log(txnOp{typ: storage.RecHeapDelete, table: tbl.Name, row: rid, old: rec})
	}
	tbl.mu.Unlock()
	if err != nil {
		e.undoOps(t.id, t.ops[opStart:])
		t.ops = t.ops[:opStart]
		return err
	}
	return nil
}

// keysEqualBytes compares composite keys byte-wise (sufficient for change
// detection: unchanged cells have identical bytes).
func keysEqualBytes(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// buildIndexTree constructs the comparator for an index over the given
// columns and returns an empty tree. DET components order by ciphertext
// (equality only); enclave-enabled RND components order by plaintext via the
// enclave; plaintext components order by their canonical encoding.
func (e *Engine) buildIndexTree(tbl *Table, colPos []int, unique bool) (*btree.Tree, []bool, []string, error) {
	orders := make([]btree.ColumnOrder, len(colPos))
	rangeCapable := make([]bool, len(colPos))
	var ceks []string
	for i, pos := range colPos {
		col := &tbl.Cols[pos]
		switch col.Enc.Scheme {
		case sqltypes.SchemePlaintext:
			orders[i] = btree.BinaryOrder{}
			rangeCapable[i] = true
		case sqltypes.SchemeDeterministic:
			// Equality index: ciphertext order supports point lookups only
			// (§3.1.1).
			orders[i] = btree.BinaryOrder{}
			rangeCapable[i] = false
		case sqltypes.SchemeRandomized:
			if !col.Enc.EnclaveEnabled {
				return nil, nil, nil, fmt.Errorf(
					"engine: cannot index RANDOMIZED column %s.%s without an enclave-enabled key (§2.4.4)",
					tbl.Name, col.Name)
			}
			if e.cfg.Enclave == nil {
				return nil, nil, nil, errors.New("engine: range index on encrypted column requires an enclave")
			}
			orders[i] = btree.EnclaveOrder{CEK: col.Enc.CEKName, Enclave: e.cfg.Enclave}
			rangeCapable[i] = true
			ceks = append(ceks, col.Enc.CEKName)
		}
	}
	return btree.New(&btree.KeyComparator{Cols: orders}, unique), rangeCapable, ceks, nil
}

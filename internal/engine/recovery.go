package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/storage"
)

// This file implements the §4.5 recovery story. In SQL Server, redo recovery
// is physical and undo recovery of indexes is logical: aborted inserts are
// undone by navigating the B+-tree. Encrypted range indexes need enclave
// keys for that navigation, and clients only send keys when they run
// queries — so recovery may find itself unable to undo.
//
// Crash simulation: Crash() drops volatile state (sessions, the enclave's
// installed keys are dropped by the caller loading a fresh enclave) while
// the page store, trees and WAL survive — exactly the post-redo state a real
// restart reaches. Recover() then performs undo of in-flight transactions:
//
//   - Without CTR, a transaction whose index undo needs missing keys becomes
//     *deferred*: it keeps its locks (rows unavailable) and pins the log
//     (truncation blocked) until keys arrive or resolution is forced.
//   - With CTR (constant-time recovery), heap undo — physical, key-free —
//     runs immediately so clients see the last committed versions with all
//     locks released; only the index undos remain, retried by the version
//     cleaner until a client connects and supplies keys.
//   - ForceResolveDeferred implements the §4.5 escape hatch: skip recovery
//     of the index and mark it invalid in the metadata. It runs
//     automatically when no enclave is configured (e.g. restoring a backup
//     on an enclave-less machine).

// deferredTxn is a transaction recovery could not finish.
type deferredTxn struct {
	txn     *Txn
	pending []txnOp // operations still to undo (or, for redo, apply), oldest first
	// redo marks replication-redo deferral: the pending ops are *forward*
	// encrypted-index operations a replica could not apply for lack of keys.
	// Resolution applies them in order instead of undoing them.
	redo bool
	// seq orders deferred registrations; resolution runs in seq order so
	// cross-transaction operations on the same index replay as logged.
	seq uint64
}

// RecoveryReport summarizes a Recover run.
type RecoveryReport struct {
	UndoneTxns   []uint64
	DeferredTxns []uint64
	CTR          bool
	// LocksHeld counts locks still held by deferred transactions after
	// recovery (zero under CTR — the availability win of §4.5).
	LocksHeld int
}

// Crash simulates a process crash: open sessions and their transactions are
// abandoned in-flight. Call Recover next, optionally after replacing the
// enclave (a restarted enclave has no installed CEKs).
func (e *Engine) Crash() {
	// Nothing to do for storage: pages, trees and WAL survive (post-redo
	// state). Active transactions simply stop making progress.
	e.InvalidatePlans()
}

// ReplaceEnclave swaps in a freshly loaded enclave (post-restart). Index
// comparators are rebuilt to point at it.
func (e *Engine) ReplaceEnclave(encl *enclave.Enclave) {
	e.cfg.Enclave = encl
	e.catalog.mu.Lock()
	defer e.catalog.mu.Unlock()
	// Trees hold EnclaveOrder comparators referencing the old enclave;
	// repoint them at the new instance.
	for _, idx := range e.catalog.indexes {
		if len(idx.CEKs) > 0 {
			idx.Tree.SwapEnclave(encl)
		}
	}
}

// Recover performs the undo phase for all transactions that were in flight
// at the crash.
func (e *Engine) Recover() *RecoveryReport {
	e.txnMu.Lock()
	inflight := make([]*Txn, 0, len(e.active))
	for _, t := range e.active {
		inflight = append(inflight, t)
	}
	e.active = make(map[uint64]*Txn)
	e.txnMu.Unlock()

	rep := &RecoveryReport{CTR: e.cfg.CTR}
	for _, t := range inflight {
		// A crashed session never releases its read snapshot; drop it here so
		// it stops pinning the version-store watermark.
		t.releaseSnapshot()
		if e.undoTxnForRecovery(t, rep) {
			rep.UndoneTxns = append(rep.UndoneTxns, t.id)
		} else {
			rep.DeferredTxns = append(rep.DeferredTxns, t.id)
		}
	}
	e.txnMu.Lock()
	for _, d := range e.deferred {
		rep.LocksHeld += e.locks.HeldCount(d.txn.id)
	}
	e.txnMu.Unlock()
	return rep
}

// undoTxnForRecovery attempts full undo; on a key-missing failure the txn is
// deferred per the CTR setting. Returns true when fully undone.
func (e *Engine) undoTxnForRecovery(t *Txn, rep *RecoveryReport) bool {
	var pending []txnOp
	var err error
	if e.cfg.CTR {
		// Best-effort: all key-free undos (heap, plaintext indexes) complete
		// now so the database is immediately consistent and lock-free; only
		// encrypted-index undos remain.
		pending, err = e.tryUndo(t.id, t.ops)
	} else {
		// Strict reverse order, stopping at the first failure: the rows the
		// transaction touched stay as they were, protected only by its
		// locks — the §4.5 availability hazard.
		pending, err = e.undoStrict(t.id, t.ops)
	}
	if err == nil {
		e.wal.Append(storage.Record{Txn: t.id, Type: storage.RecAbort})
		e.versions.Drop(t.id)
		e.locks.ReleaseAll(t.id)
		return true
	}

	e.txnMu.Lock()
	e.deferSeq++
	d := &deferredTxn{txn: t, pending: pending, seq: e.deferSeq}
	e.txnMu.Unlock()
	e.wal.PinTxn(t.id, t.beginLSN)
	if e.cfg.CTR {
		// Under constant-time recovery the database comes up with all locks
		// released: heap undo is physical and already succeeded (tryUndo is
		// best-effort); only the logical index undos remain for the version
		// cleaner to retry.
		e.versions.MarkCommitted(t.id)
		e.versions.Drop(t.id)
		e.locks.ReleaseAll(t.id)
	}
	e.txnMu.Lock()
	e.deferred[t.id] = d
	e.txnMu.Unlock()
	return false
}

// tryUndo undoes ops in reverse, best-effort: operations whose undo fails
// (index navigation without enclave keys) are collected and returned oldest
// first, together with the first error. Key-free undos — all heap undos and
// plaintext index undos — always complete, so a deferred transaction's
// pending list shrinks to exactly the encrypted-index work.
func (e *Engine) tryUndo(txn uint64, ops []txnOp) ([]txnOp, error) {
	var failed []txnOp
	var firstErr error
	for i := len(ops) - 1; i >= 0; i-- {
		if err := e.undoOne(txn, &ops[i]); err != nil {
			failed = append(failed, ops[i])
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	for i, j := 0, len(failed)-1; i < j; i, j = i+1, j-1 {
		failed[i], failed[j] = failed[j], failed[i]
	}
	return failed, firstErr
}

// undoStrict undoes ops in strict reverse order, stopping at the first
// failure and returning everything not yet undone (oldest first).
func (e *Engine) undoStrict(txn uint64, ops []txnOp) ([]txnOp, error) {
	for i := len(ops) - 1; i >= 0; i-- {
		if err := e.undoOne(txn, &ops[i]); err != nil {
			return append([]txnOp(nil), ops[:i+1]...), err
		}
	}
	return nil, nil
}

// applyStrict applies forward operations in order, stopping at the first
// failure and returning everything not yet applied. It is the resolution
// path for replication-redo deferrals: once keys arrive, the queued
// encrypted-index work replays exactly as the primary logged it.
func (e *Engine) applyStrict(ops []txnOp) ([]txnOp, error) {
	for i := range ops {
		if err := e.applyOne(&ops[i]); err != nil {
			return append([]txnOp(nil), ops[i:]...), err
		}
	}
	return nil, nil
}

func (e *Engine) applyOne(op *txnOp) error {
	switch op.typ {
	case storage.RecIndexInsert:
		idx, err := e.catalog.Index(op.table)
		if err != nil {
			return err
		}
		return idx.Tree.Insert(op.key, op.row)
	case storage.RecIndexDelete:
		idx, err := e.catalog.Index(op.table)
		if err != nil {
			return err
		}
		_, err = idx.Tree.Delete(op.key, op.row)
		return err
	default:
		return nil
	}
}

// DeferredCount reports how many transactions await resolution.
func (e *Engine) DeferredCount() int {
	e.txnMu.Lock()
	defer e.txnMu.Unlock()
	return len(e.deferred)
}

// ResolveDeferred retries the pending undos of every deferred transaction —
// the path taken "when the client connects and sends keys to the enclave"
// (§4.5). It doubles as the CTR version cleaner's pass. Returns how many
// transactions were fully resolved.
func (e *Engine) ResolveDeferred() (resolved int, firstErr error) {
	e.txnMu.Lock()
	ids := make([]uint64, 0, len(e.deferred))
	for id := range e.deferred {
		ids = append(ids, id)
	}
	// Resolve in registration order: redo deferrals carry forward operations
	// whose cross-transaction order on a shared index must match the log.
	sort.Slice(ids, func(i, j int) bool {
		return e.deferred[ids[i]].seq < e.deferred[ids[j]].seq
	})
	e.txnMu.Unlock()

	for _, id := range ids {
		e.txnMu.Lock()
		d, ok := e.deferred[id]
		e.txnMu.Unlock()
		if !ok {
			continue
		}
		var pending []txnOp
		var err error
		if d.redo {
			pending, err = e.applyStrict(d.pending)
		} else {
			pending, err = e.undoStrict(d.txn.id, d.pending)
		}
		if err != nil {
			d.pending = pending
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.finishDeferred(d)
		resolved++
	}
	return resolved, firstErr
}

func (e *Engine) finishDeferred(d *deferredTxn) {
	if !d.redo {
		// Redo deferrals stem from the primary's log, which already carries
		// the transaction's commit/abort record; logging another would fork
		// the replica's copy of the log.
		e.wal.Append(storage.Record{Txn: d.txn.id, Type: storage.RecAbort})
	}
	e.wal.UnpinTxn(d.txn.id)
	e.versions.Drop(d.txn.id)
	e.locks.ReleaseAll(d.txn.id)
	e.txnMu.Lock()
	delete(e.deferred, d.txn.id)
	e.txnMu.Unlock()
}

// ForceResolveDeferred resolves deferred transactions without keys by
// skipping recovery of the affected index pages and marking those indexes
// invalid in the metadata (§4.5). Heap undo still runs (physical). Returns
// the invalidated index names. This is the policy escape hatch — triggered
// by timeouts or log-space consumption — and the automatic behaviour when
// no enclave is configured.
func (e *Engine) ForceResolveDeferred() []string {
	e.txnMu.Lock()
	ds := make([]*deferredTxn, 0, len(e.deferred))
	for _, d := range e.deferred {
		ds = append(ds, d)
	}
	e.txnMu.Unlock()

	invalidated := make(map[string]bool)
	for _, d := range ds {
		pending := d.pending
		if !d.redo {
			// Retry once more: undos that can complete without keys do.
			pending, _ = e.tryUndo(d.txn.id, d.pending)
		}
		// Redo deferrals hold *unapplied* forward index ops: never undo
		// those — the indexes they target are simply invalidated below.
		for i := range pending {
			op := &pending[i]
			if op.typ != storage.RecIndexInsert && op.typ != storage.RecIndexDelete {
				continue
			}
			if invalidated[op.table] {
				continue
			}
			if idx, err := e.catalog.Index(op.table); err == nil {
				idx.Tree.Invalidate()
				invalidated[op.table] = true
			}
		}
		e.finishDeferred(d)
	}
	e.InvalidatePlans()
	out := make([]string, 0, len(invalidated))
	for name := range invalidated {
		out = append(out, name)
	}
	return out
}

// StartCleaner launches the background version cleaner of §4.5: it retries
// deferred-transaction resolution on an interval until keys arrive ("the
// version cleaner ... could potentially not find keys in the enclave, in
// which case it keeps retrying"). The returned stop function halts it.
func (e *Engine) StartCleaner(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if e.DeferredCount() > 0 {
					e.ResolveDeferred()
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// RebuildIndex reconstructs an invalidated index from the heap (requires
// keys in the enclave for encrypted range indexes).
func (e *Engine) RebuildIndex(name string) error {
	idx, err := e.catalog.Index(name)
	if err != nil {
		return err
	}
	tbl, err := e.catalog.Table(idx.Table)
	if err != nil {
		return err
	}
	tree, rangeCapable, ceks, err := e.buildIndexTree(tbl, idx.ColPos, idx.Unique)
	if err != nil {
		return err
	}
	err = tbl.Heap.Scan(func(rid storage.RowID, rec []byte) (bool, error) {
		cells, err := decodeRow(rec)
		if err != nil {
			return false, err
		}
		return true, tree.Insert(copyKey(idx.indexKeyFor(cells)), rid)
	})
	if err != nil {
		return fmt.Errorf("engine: rebuilding %s: %w", name, err)
	}
	idx.Tree = tree
	idx.RangeCapable = rangeCapable
	idx.CEKs = ceks
	e.InvalidatePlans()
	return nil
}

// IsKeyMissing reports whether an error chain indicates absent enclave keys
// (the trigger for deferral).
func IsKeyMissing(err error) bool {
	return errors.Is(err, enclave.ErrKeyNotInEnclave)
}

package engine

import (
	"alwaysencrypted/internal/exprsvc"
	"alwaysencrypted/internal/storage"
)

// DefaultBatchSize is the executor's rows-per-batch when Config.BatchSize is
// unset: how many candidate rows are collected before the residual filter
// runs once over the whole batch, amortizing the enclave crossing (§4.6)
// across them. 256 keeps a batch of typical rows well under a megabyte of
// slot data while already pushing the per-row crossing cost below noise.
const DefaultBatchSize = 256

// arenaChunkSize is the allocation unit of cellArena.
const arenaChunkSize = 16 * 1024

// cellArena is a chunked bump allocator for row cells with batch lifetime.
// Heap scans hand out cells aliasing latched page memory; the executor
// copies them in here instead of one heap allocation per cell, and reclaims
// the whole batch's cells with one reset once no row in the batch can be
// referenced anymore. Chunks are never reallocated in place, so a handed-out
// cell stays valid until reset.
type cellArena struct {
	cur  []byte
	full [][]byte // exhausted chunks, kept until reset so cells stay reachable
}

// copyCell copies c into the arena and returns the stable copy. Empty cells
// (SQL NULL) pass through as nil.
func (a *cellArena) copyCell(c []byte) []byte {
	if len(c) == 0 {
		return nil
	}
	if len(a.cur)+len(c) > cap(a.cur) {
		size := arenaChunkSize
		if len(c) > size {
			size = len(c)
		}
		if a.cur != nil {
			a.full = append(a.full, a.cur)
		}
		a.cur = make([]byte, 0, size)
	}
	off := len(a.cur)
	a.cur = append(a.cur, c...)
	return a.cur[off : off+len(c) : off+len(c)]
}

// copyRow copies every cell of a row into the arena.
func (a *cellArena) copyRow(cells [][]byte) [][]byte {
	cp := make([][]byte, len(cells))
	for i, c := range cells {
		cp[i] = a.copyCell(c)
	}
	return cp
}

// reset reclaims all arena memory. The caller must guarantee no cell handed
// out since the last reset is still referenced.
func (a *cellArena) reset() {
	a.full = a.full[:0]
	a.cur = a.cur[:0]
}

// rowBatcher is the executor's batched filter pipeline: the access path adds
// candidate rows (outer rows, or joined outer+inner pairs) and every `size`
// rows the plan's residual filter is evaluated ONCE over the whole batch —
// one enclave crossing per TMEval instruction per batch instead of per row
// (§4.6) — before survivors are emitted to the consumer in row order.
type rowBatcher struct {
	plan *Plan
	ev   *exprsvc.Evaluator // nil when the plan has no residual filter
	fn   func(m *matchedRow) (bool, error)
	size int

	rids  []storage.RowID
	slots [][][]byte
	arena cellArena
	// pinned marks that a join's outer-row cells live in the arena and are
	// still being referenced by probes in flight; it blocks arena reset
	// across intermediate flushes.
	pinned bool
	// stopped records that the consumer asked to stop (LIMIT reached).
	// Pending rows after the stop point are discarded unevaluated, exactly
	// as row-at-a-time execution would never have reached them.
	stopped bool
}

// add queues one candidate row, flushing when the batch is full.
func (b *rowBatcher) add(rid storage.RowID, slots [][]byte) error {
	b.rids = append(b.rids, rid)
	b.slots = append(b.slots, slots)
	if len(b.rids) >= b.size {
		return b.flush()
	}
	return nil
}

// flush evaluates the residual filter over the pending batch and emits
// matching rows, in order, to the consumer. Per-row evaluation errors fail
// the statement — but only if the consumer has not already stopped before
// reaching that row, preserving row-at-a-time early-stop semantics when a
// batch straddles the stop point.
func (b *rowBatcher) flush() error {
	if len(b.rids) == 0 {
		b.maybeReset()
		return nil
	}
	var matches []bool
	var rowErrs []error
	if b.ev != nil && !b.stopped {
		var err error
		matches, rowErrs, err = b.ev.EvalBoolBatch(b.slots)
		if err != nil {
			return err
		}
	}
	for i := range b.rids {
		if b.stopped {
			break
		}
		if rowErrs != nil && rowErrs[i] != nil {
			return rowErrs[i]
		}
		if matches != nil && !matches[i] {
			continue
		}
		cont, err := b.fn(&matchedRow{rid: b.rids[i], slots: b.slots[i]})
		if err != nil {
			return err
		}
		if !cont {
			b.stopped = true
		}
	}
	b.rids = b.rids[:0]
	for i := range b.slots {
		b.slots[i] = nil
	}
	b.slots = b.slots[:0]
	b.maybeReset()
	return nil
}

// maybeReset reclaims the arena once nothing can reference its cells: no
// pending rows and no join outer row in flight.
func (b *rowBatcher) maybeReset() {
	if len(b.rids) == 0 && !b.pinned {
		b.arena.reset()
	}
}

package engine

import (
	"fmt"

	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/storage"
)

// Bulk insert: the server half of the bulkcopy fast path. A client sends N
// pre-encrypted rows in one request; the engine appends them to the heap
// under a single table-mutex/heap-mutex acquisition and logs ONE multi-row
// WAL record per structure (heap, each index) instead of N×(1+indexes)
// records. The transaction's undo list still mirrors per-row operations, so
// rollback, crash recovery and replica promotion are oblivious to batching.
//
// Trust boundary (§3): rows arrive as ciphertext envelopes for encrypted
// columns, exactly like single-row INSERT parameters — the server validates
// envelope well-formedness and never sees plaintext. Bulk loading widens
// throughput, not visibility.

// BulkInsert inserts rows into table under the session's transaction (or an
// autocommit one). cols names the target columns, in the order the row cell
// slices are laid out; omitted columns are NULL. The whole batch is one
// statement: any failure undoes every row of the batch.
func (s *Session) BulkInsert(table string, cols []string, rows [][][]byte) (int, error) {
	act := s.engine.tracer.Start(s.traceID, trace.KindInsert)
	s.traceID = trace.ID{}
	s.act = act
	if s.txn != nil {
		s.txn.act = act
	}
	rs, err := s.bulkInsert(act, table, cols, rows)
	if s.txn != nil {
		s.txn.act = nil
	}
	s.act = nil
	act.Finish(err)
	return rs, err
}

func (s *Session) bulkInsert(act *trace.Active, table string, cols []string, rows [][][]byte) (int, error) {
	e := s.engine
	if e.ReadOnly() {
		return 0, ErrReadOnly
	}
	if len(rows) == 0 {
		return 0, nil
	}
	tbl, err := e.catalog.Table(table)
	if err != nil {
		return 0, err
	}
	colPos := make([]int, len(cols))
	for i, name := range cols {
		col, err := tbl.Col(name)
		if err != nil {
			return 0, err
		}
		colPos[i] = col.Pos
	}

	// Materialize and validate every row up front: encode failures must not
	// leave a partially applied batch. One backing array serves every row's
	// cell slice — batches are tens of thousands of rows, and per-row
	// allocations here show up directly in load throughput.
	recs := make([][]byte, len(rows))
	cellRows := make([][][]byte, len(rows))
	backing := make([][]byte, len(rows)*len(tbl.Cols))
	for r, row := range rows {
		if len(row) != len(cols) {
			return 0, fmt.Errorf("engine: bulk row %d has %d cells, want %d", r, len(row), len(cols))
		}
		cells := backing[r*len(tbl.Cols) : (r+1)*len(tbl.Cols) : (r+1)*len(tbl.Cols)]
		for i, pos := range colPos {
			cells[pos] = row[i]
		}
		for i := range tbl.Cols {
			if tbl.Cols[i].NotNull && len(cells[i]) == 0 {
				return 0, fmt.Errorf("%w: %s.%s", ErrNotNull, tbl.Name, tbl.Cols[i].Name)
			}
		}
		if err := validateEncryptedCells(tbl, cells); err != nil {
			return 0, err
		}
		cellRows[r] = cells
		recs[r] = encodeRow(cells)
	}

	rs, err := s.withTxn(func(t *Txn) (*ResultSet, error) {
		n, err := e.bulkInsertTxn(t, tbl, cellRows, recs)
		return &ResultSet{Affected: n}, err
	})
	if err != nil {
		return 0, err
	}
	return rs.Affected, nil
}

// bulkInsertTxn applies the batch under an open transaction, with statement
// atomicity: a failure undoes everything the batch did so far through the
// normal CLR-logging undo path.
func (e *Engine) bulkInsertTxn(t *Txn, tbl *Table, cellRows [][][]byte, recs [][]byte) (int, error) {
	opStart := len(t.ops)
	fail := func(err error) (int, error) {
		e.undoOps(t.id, t.ops[opStart:])
		t.ops = t.ops[:opStart]
		return 0, err
	}
	// The undo list grows by one op per row per structure; growing it in one
	// step keeps the appends below from re-copying it O(log n) times.
	if need := len(recs) * (1 + len(tbl.Indexes)); cap(t.ops)-len(t.ops) < need {
		grown := make([]txnOp, len(t.ops), len(t.ops)+need)
		copy(grown, t.ops)
		t.ops = grown
	}

	tbl.mu.Lock()
	// Version chains register under the page write latch, before any row is
	// scannable: concurrent snapshots never see the uncommitted batch.
	rids, err := tbl.Heap.InsertBatch(recs, func(rid storage.RowID) {
		e.versions.Record(t.id, tbl.Name, rid, nil)
	})
	if err != nil {
		tbl.mu.Unlock()
		// InsertBatch rolled the heap back itself. The version chains the
		// observer registered for the briefly-existing rows stay: a nil image
		// marks the row invisible, which remains true, and they evict with
		// the transaction. (Dropping them here would be wrong — Drop is
		// txn-wide and would discard pre-images of earlier statements.)
		return 0, err
	}
	// One WAL record for the whole heap batch, appended under the table
	// mutex so log order matches page mutation order; the undo list mirrors
	// per-row inserts so undoOne needs no multi-row case.
	sp := t.act.StartSpan("wal.append")
	e.wal.Append(storage.Record{
		Txn: t.id, Type: storage.RecHeapInsertMulti, Table: tbl.Name,
		Row: rids[0], New: storage.EncodeHeapRows(rids, recs), Trace: t.act.ID(),
	})
	sp.End()
	for i, rid := range rids {
		t.ops = append(t.ops, txnOp{typ: storage.RecHeapInsert, table: tbl.Name, row: rid, new: recs[i]})
	}
	tbl.mu.Unlock()

	// The rids were just allocated under the table mutex: nobody else can
	// hold or wait on them, so the whole batch locks in one acquisition.
	if err := e.locks.LockNew(t.id, tbl.Name, rids); err != nil {
		return fail(err)
	}

	for _, idx := range tbl.Indexes {
		// The tree retains every key forever, so keys must not alias the
		// request payload (a small key pinning a whole batch buffer).
		// Instead of one copyKey allocation pair per row, copy all key bytes
		// into a single exactly-sized arena: append never reallocates, so the
		// subslices taken below stay valid.
		nc := len(idx.ColPos)
		var total int
		for i := range rids {
			for _, pos := range idx.ColPos {
				total += len(cellRows[i][pos])
			}
		}
		arena := make([]byte, 0, total)
		cellBacking := make([][]byte, len(rids)*nc)
		keys := make([][][]byte, len(rids))
		for i := range rids {
			key := cellBacking[i*nc : (i+1)*nc : (i+1)*nc]
			for j, pos := range idx.ColPos {
				cell := cellRows[i][pos]
				if len(cell) == 0 {
					continue // nil key cell, as copyKey would produce
				}
				start := len(arena)
				arena = append(arena, cell...)
				key[j] = arena[start:len(arena):len(arena)]
			}
			keys[i] = key
		}
		for i := range rids {
			if err := idx.Tree.Insert(keys[i], rids[i]); err != nil {
				// Mirror what the tree already holds before undoing, so the
				// undo path removes exactly the applied prefix.
				for j := 0; j < i; j++ {
					t.ops = append(t.ops, txnOp{typ: storage.RecIndexInsert, table: idx.Name, row: rids[j], key: keys[j]})
				}
				return fail(err)
			}
		}
		sp := t.act.StartSpan("wal.append")
		e.wal.Append(storage.Record{
			Txn: t.id, Type: storage.RecIndexInsertMulti, Table: idx.Name,
			Row: rids[0], New: storage.EncodeIndexEntries(keys, rids), Trace: t.act.ID(),
		})
		sp.End()
		for i := range rids {
			t.ops = append(t.ops, txnOp{typ: storage.RecIndexInsert, table: idx.Name, row: rids[i], key: keys[i]})
		}
	}
	return len(rids), nil
}

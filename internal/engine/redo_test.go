package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// newReplicaEngine builds a bare replica deployment: fresh enclave with no
// CEKs, its own trust anchors, an empty store. This is what a replica host
// looks like before any redo arrives.
func newReplicaEngine(t *testing.T) (*Engine, *storage.MemStore) {
	t.Helper()
	authorKey, err := aecrypto.GenerateRSAKey()
	if err != nil {
		t.Fatal(err)
	}
	image, err := enclave.SignImage(authorKey, []byte("replica-enclave"), 2)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := enclave.Load(image, 10, enclave.Options{
		Threads: 1, SpinDuration: time.Microsecond, CrossingCost: 50 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(encl.Close)
	hgs, err := attestation.NewHGS()
	if err != nil {
		t.Fatal(err)
	}
	host, err := attestation.NewHost([]byte("replica-host-boot"), 10)
	if err != nil {
		t.Fatal(err)
	}
	hgs.RegisterHost([]byte("replica-host-boot"))
	store := storage.NewMemStore()
	eng := New(Config{Enclave: encl, Host: host, HGS: hgs, CTR: true, Store: store})
	eng.SetReadOnly(true)
	return eng, store
}

// applyAll feeds records through a RedoApplier the way the replication loop
// does: mirror into the local WAL, then apply.
func applyAll(t *testing.T, eng *Engine, ra *RedoApplier, recs []storage.Record) {
	t.Helper()
	for i := range recs {
		rec := recs[i]
		eng.WAL().AppendAt(rec)
		if err := ra.Apply(&rec); err != nil {
			t.Fatalf("redo LSN %d: %v", rec.LSN, err)
		}
	}
}

// storePages flushes the engine's buffer pool and snapshots every page the
// store holds, keyed by page id.
func storePages(t *testing.T, eng *Engine, store *storage.MemStore) map[storage.PageID][]byte {
	t.Helper()
	if err := eng.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pages := make(map[storage.PageID][]byte)
	for id := storage.PageID(1); ; id++ {
		buf := make([]byte, storage.PageSize)
		if err := store.ReadPage(id, buf); err != nil {
			if errors.Is(err, storage.ErrNoSuchPage) {
				break
			}
			t.Fatal(err)
		}
		pages[id] = buf
	}
	return pages
}

// comparePages asserts replica pages are byte-identical to the primary's.
// Pages the primary allocated but never wrote may be absent on the replica
// (physical redo only materializes written pages); they must be all-zero.
func comparePages(t *testing.T, primary, replica map[storage.PageID][]byte, label string) {
	t.Helper()
	zero := make([]byte, storage.PageSize)
	for id, want := range primary {
		got, ok := replica[id]
		if !ok {
			if !bytes.Equal(want, zero) {
				t.Fatalf("%s: page %d missing on replica (non-zero on primary)", label, id)
			}
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: page %d differs between primary and replica", label, id)
		}
	}
	for id := range replica {
		if _, ok := primary[id]; !ok {
			t.Fatalf("%s: replica has page %d the primary never wrote", label, id)
		}
	}
}

// buildReplWorkload produces a primary with a representative WAL: DDL,
// encrypted and plaintext tables, an encrypted range index, inserts, updates
// (in-place and relocating), deletes, a rolled-back transaction (CLRs) and an
// enclave-side ALTER COLUMN rewrite.
func buildReplWorkload(t *testing.T) *testEnv {
	t.Helper()
	env := setupRNDTable(t, true)
	env.mustExec("CREATE INDEX ix_val ON T (value)", nil)
	for i := int64(1); i <= 20; i++ {
		env.mustExec("INSERT INTO T (id, value) VALUES (@i, @v)", Params{
			"i": intParam(i), "v": env.enc("CEK1", sqltypes.Int(i*10), aecrypto.Randomized)})
	}
	// Plaintext table with a plaintext index: the replica applies these
	// index records directly.
	env.mustExec("CREATE TABLE notes (id int PRIMARY KEY, body varchar(64))", nil)
	env.mustExec("CREATE INDEX ix_body ON notes (body)", nil)
	for i := int64(1); i <= 10; i++ {
		env.mustExec("INSERT INTO notes (id, body) VALUES (@i, @b)", Params{
			"i": intParam(i), "b": strParam(fmt.Sprintf("note-%d", i))})
	}
	// Updates: same-size (in place) and growing (relocating).
	env.mustExec("UPDATE notes SET body = @b WHERE id = @i",
		Params{"b": strParam("note-x"), "i": intParam(3)})
	env.mustExec("UPDATE notes SET body = @b WHERE id = @i",
		Params{"b": strParam("a considerably longer body that will not fit in the old slot"), "i": intParam(4)})
	env.mustExec("UPDATE T SET value = @v WHERE id = @i", Params{
		"v": env.enc("CEK1", sqltypes.Int(555), aecrypto.Randomized), "i": intParam(5)})
	// Deletes.
	env.mustExec("DELETE FROM notes WHERE id = @i", Params{"i": intParam(7)})
	env.mustExec("DELETE FROM T WHERE id = @i", Params{"i": intParam(6)})
	// A rolled-back transaction: its undo is logged as CLRs, so replicas
	// replay the abort physically.
	env.mustExec("BEGIN TRANSACTION", nil)
	env.mustExec("INSERT INTO notes (id, body) VALUES (@i, @b)",
		Params{"i": intParam(100), "b": strParam("doomed")})
	env.mustExec("UPDATE notes SET body = @b WHERE id = @i",
		Params{"b": strParam("rewritten then rolled back, far too long for the slot"), "i": intParam(5)})
	env.mustExec("DELETE FROM notes WHERE id = @i", Params{"i": intParam(6)})
	env.mustExec("ROLLBACK", nil)
	return env
}

// TestRedoPhysicalByteIdentical: replaying the primary's WAL leaves the
// replica's pages byte-identical to the primary's — ciphertext included,
// without the replica ever holding a key.
func TestRedoPhysicalByteIdentical(t *testing.T) {
	env := buildReplWorkload(t)
	recs := env.engine.WAL().Records()

	rep, repStore := newReplicaEngine(t)
	ra := NewRedoApplier(rep)
	applyAll(t, rep, ra, recs)
	if got, want := ra.AppliedLSN(), recs[len(recs)-1].LSN; got != want {
		t.Fatalf("applied LSN = %d, want %d", got, want)
	}

	comparePages(t, storePages(t, env.engine, env.store), storePages(t, rep, repStore), "full replay")

	// The replica is read-only: writes are refused at the front door.
	if _, err := rep.NewSession().Execute("INSERT INTO notes (id, body) VALUES (@i, @b)",
		Params{"i": intParam(999), "b": strParam("nope")}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on replica: %v", err)
	}
	// Reads work, and encrypted cells come back as ciphertext the local
	// (key-less) deployment cannot interpret.
	rs, err := rep.NewSession().Execute("SELECT value FROM T WHERE id = @i", Params{"i": intParam(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("replica read rows = %d", len(rs.Rows))
	}
	if v, err := sqltypes.Decode(rs.Rows[0][0]); err == nil && v.Kind == sqltypes.KindInt {
		t.Fatal("replica returned plaintext for an encrypted cell")
	}
	if got := env.dec("CEK1", rs.Rows[0][0]); got.I != 10 {
		t.Fatalf("replica ciphertext decrypts to %v, want 10", got)
	}
}

// TestRedoCrashMidApplyRestart kills the replica at several points mid-redo
// and restarts it: the restarted replica replays its local WAL from scratch,
// resumes the stream, and still converges to byte-identical pages.
func TestRedoCrashMidApplyRestart(t *testing.T) {
	env := buildReplWorkload(t)
	recs := env.engine.WAL().Records()
	primaryPages := storePages(t, env.engine, env.store)

	for _, frac := range []int{3, 2} {
		k := len(recs) / frac
		label := fmt.Sprintf("crash at %d/%d", k, len(recs))

		// First incarnation applies a prefix, then the process dies. Only its
		// WAL (the mirrored prefix) is durable.
		first, _ := newReplicaEngine(t)
		applyAll(t, first, NewRedoApplier(first), recs[:k])
		durable := first.WAL().Records()
		if len(durable) != k {
			t.Fatalf("%s: durable WAL has %d records, want %d", label, len(durable), k)
		}

		// Restart: a fresh engine replays the local log from scratch, then the
		// stream resumes from the next LSN.
		second, secondStore := newReplicaEngine(t)
		ra := NewRedoApplier(second)
		applyAll(t, second, ra, durable)
		applyAll(t, second, ra, recs[k:])

		comparePages(t, primaryPages, storePages(t, second, secondStore), label)
	}
}

// TestRedoDeferredEncryptedIndexWork: index operations on an encrypted range
// index cannot be applied without keys; they are parked as §4.5 deferred
// (redo) transactions, and in-flight ones are dropped at promotion so
// recovery's rollback is not corrupted.
func TestRedoDeferredEncryptedIndexWork(t *testing.T) {
	env := setupRNDTable(t, true)
	env.mustExec("CREATE INDEX ix_val ON T (value)", nil)
	for i := int64(1); i <= 5; i++ {
		env.mustExec("INSERT INTO T (id, value) VALUES (@i, @v)", Params{
			"i": intParam(i), "v": env.enc("CEK1", sqltypes.Int(i), aecrypto.Randomized)})
	}
	// One transaction left in flight on the primary.
	env.mustExec("BEGIN TRANSACTION", nil)
	env.mustExec("INSERT INTO T (id, value) VALUES (@i, @v)", Params{
		"i": intParam(100), "v": env.enc("CEK1", sqltypes.Int(100), aecrypto.Randomized)})

	rep, _ := newReplicaEngine(t)
	ra := NewRedoApplier(rep)
	applyAll(t, rep, ra, env.engine.WAL().Records())

	// The committed inserts deferred their encrypted-index work.
	if n := rep.DeferredCount(); n == 0 {
		t.Fatal("no deferred transactions on the replica")
	}
	// Promotion: drop never-applied pending work of in-flight transactions,
	// then run crash recovery, which rolls the in-flight transaction back.
	if n := ra.DropInflightPending(); n == 0 {
		t.Fatal("in-flight transaction had no pending index work to drop")
	}
	rep.Recover()
	rep.SetReadOnly(false)

	// The in-flight insert is gone from the heap after recovery.
	rs, err := rep.NewSession().Execute("SELECT id FROM T WHERE id = @i", Params{"i": intParam(100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatal("rolled-back insert survived promotion")
	}
}

package engine

// Batch poisoning × early stop: when a batch straddles the point where the
// consumer stops (LIMIT reached), rows past the stop point are discarded
// unevaluated — exactly as row-at-a-time execution would never have reached
// them — so a poisoned row BEYOND the limit must not fail the statement,
// while a poisoned row BEFORE it must (rowBatcher.flush in batch.go).

import (
	"testing"

	"alwaysencrypted/internal/exprsvc"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// ltEvaluator compiles `slot0 < slot1` over plaintext ints — a residual
// filter whose rows can be poisoned with undecodable cell bytes.
func ltEvaluator(t *testing.T) *exprsvc.Evaluator {
	t.Helper()
	inputs := []exprsvc.EncInfo{exprsvc.Plain(sqltypes.KindInt), exprsvc.Plain(sqltypes.KindInt)}
	expr := exprsvc.Cmp{Op: exprsvc.CmpLT,
		L: exprsvc.SlotRef{Slot: 0, Info: inputs[0]},
		R: exprsvc.SlotRef{Slot: 1, Info: inputs[1]}}
	prog, err := exprsvc.Compile("lt", expr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := exprsvc.NewEvaluator(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func intCell(v int64) []byte { return sqltypes.Int(v).Encode() }

// TestBatchPoisonBeyondLimitDiscarded: the consumer stops at the first
// emitted row (LIMIT 1); a poisoned row later in the same batch is past the
// stop point and must be discarded without failing the statement.
func TestBatchPoisonBeyondLimitDiscarded(t *testing.T) {
	emitted := 0
	b := &rowBatcher{ev: ltEvaluator(t), size: 3, fn: func(m *matchedRow) (bool, error) {
		emitted++
		return false, nil // LIMIT 1
	}}
	bound := intCell(100)
	rows := [][][]byte{
		{intCell(1), bound},           // matches; consumer stops here
		{[]byte("not an int"), bound}, // poisoned, beyond the stop point
		{intCell(2), bound},           // likewise unreached
	}
	for i, r := range rows {
		if err := b.add(storage.RowID(uint64(i)), r); err != nil {
			t.Fatalf("poisoned row beyond LIMIT failed the statement: %v", err)
		}
	}
	if err := b.flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if emitted != 1 {
		t.Fatalf("emitted %d rows, want 1", emitted)
	}
	if !b.stopped {
		t.Fatal("batcher did not record the stop")
	}
}

// TestBatchPoisonBeforeLimitFails: a poisoned row the consumer would have
// reached fails the statement, even though a later row would have satisfied
// the limit.
func TestBatchPoisonBeforeLimitFails(t *testing.T) {
	emitted := 0
	b := &rowBatcher{ev: ltEvaluator(t), size: 3, fn: func(m *matchedRow) (bool, error) {
		emitted++
		return false, nil
	}}
	bound := intCell(100)
	rows := [][][]byte{
		{[]byte("not an int"), bound}, // poisoned, before any emission
		{intCell(1), bound},
		{intCell(2), bound},
	}
	var flushErr error
	for i, r := range rows {
		if flushErr = b.add(storage.RowID(uint64(i)), r); flushErr != nil {
			break
		}
	}
	if flushErr == nil {
		flushErr = b.flush()
	}
	if flushErr == nil {
		t.Fatal("poisoned row before the stop point did not fail the statement")
	}
	if emitted != 0 {
		t.Fatalf("emitted %d rows from a failed batch, want 0", emitted)
	}
}

// TestBatchStoppedDiscardsPendingRows: once stopped, later adds and flushes
// evaluate nothing and emit nothing — pending rows drain straight to the
// floor, poisoned or not.
func TestBatchStoppedDiscardsPendingRows(t *testing.T) {
	emitted := 0
	b := &rowBatcher{ev: ltEvaluator(t), size: 2, fn: func(m *matchedRow) (bool, error) {
		emitted++
		return false, nil
	}}
	bound := intCell(100)
	if err := b.add(storage.RowID(1), [][]byte{intCell(1), bound}); err != nil {
		t.Fatal(err)
	}
	if err := b.add(storage.RowID(2), [][]byte{intCell(2), bound}); err != nil {
		t.Fatal(err) // full batch: flush, emit row 1, stop
	}
	if emitted != 1 || !b.stopped {
		t.Fatalf("emitted=%d stopped=%v after limit, want 1/true", emitted, b.stopped)
	}
	// Everything after the stop — including a poisoned row — is discarded.
	if err := b.add(storage.RowID(3), [][]byte{[]byte("junk"), bound}); err != nil {
		t.Fatal(err)
	}
	if err := b.flush(); err != nil {
		t.Fatal(err)
	}
	if emitted != 1 {
		t.Fatalf("stopped batcher emitted %d rows, want 1", emitted)
	}
}

package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// Isolation shadow suite: the anomalies snapshot reads must rule out, each
// checked at the SQL surface with two concurrent sessions, at the degenerate
// and production batch sizes. Run under -race these double as a data-race
// probe of the scan-vs-writer paths.

func forEachBatchSize(t *testing.T, fn func(t *testing.T, batch int)) {
	for _, size := range []int{1, 256} {
		t.Run(fmt.Sprintf("batch=%d", size), func(t *testing.T) {
			fn(t, size)
		})
	}
}

func selInt(t *testing.T, s *Session, query string, params Params) int64 {
	t.Helper()
	rs, err := s.Execute(query, params)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("%s: %d rows, want 1", query, len(rs.Rows))
	}
	v, err := sqltypes.Decode(rs.Rows[0][0])
	if err != nil {
		t.Fatal(err)
	}
	return v.I
}

// TestNoDirtyReads: another transaction's uncommitted update, insert and
// delete are all invisible, to autocommit readers and to readers inside a
// transaction alike.
func TestNoDirtyReads(t *testing.T) {
	forEachBatchSize(t, func(t *testing.T, batch int) {
		env := newTestEnv(t, false)
		env.engine.batch = batch
		env.mustExec("CREATE TABLE d (id int PRIMARY KEY, v int)", nil)
		env.mustExec("INSERT INTO d (id, v) VALUES (@i, @v)", Params{"i": intParam(1), "v": intParam(10)})
		env.mustExec("INSERT INTO d (id, v) VALUES (@i, @v)", Params{"i": intParam(2), "v": intParam(20)})

		writer := env.engine.NewSession()
		if _, err := writer.Execute("BEGIN TRANSACTION", nil); err != nil {
			t.Fatal(err)
		}
		mustWriter := func(q string, p Params) {
			t.Helper()
			if _, err := writer.Execute(q, p); err != nil {
				t.Fatalf("%s: %v", q, err)
			}
		}
		mustWriter("UPDATE d SET v = @v WHERE id = @i", Params{"v": intParam(99), "i": intParam(1)})
		mustWriter("DELETE FROM d WHERE id = @i", Params{"i": intParam(2)})
		mustWriter("INSERT INTO d (id, v) VALUES (@i, @v)", Params{"i": intParam(3), "v": intParam(30)})

		check := func(s *Session, label string) {
			if got := selInt(t, s, "SELECT v FROM d WHERE id = @i", Params{"i": intParam(1)}); got != 10 {
				t.Fatalf("%s: dirty update visible: v = %d", label, got)
			}
			if got := selInt(t, s, "SELECT v FROM d WHERE id = @i", Params{"i": intParam(2)}); got != 20 {
				t.Fatalf("%s: dirty delete visible: v = %d", label, got)
			}
			if got := selInt(t, s, "SELECT COUNT(*) FROM d", nil); got != 2 {
				t.Fatalf("%s: count = %d, want 2", label, got)
			}
		}
		check(env.session, "autocommit")

		txReader := env.engine.NewSession()
		if _, err := txReader.Execute("BEGIN TRANSACTION", nil); err != nil {
			t.Fatal(err)
		}
		check(txReader, "in-txn")
		if _, err := txReader.Execute("COMMIT", nil); err != nil {
			t.Fatal(err)
		}

		mustWriter("COMMIT", nil)
		if got := selInt(t, env.session, "SELECT v FROM d WHERE id = @i", Params{"i": intParam(1)}); got != 99 {
			t.Fatalf("committed update lost: v = %d", got)
		}
		if got := selInt(t, env.session, "SELECT COUNT(*) FROM d", nil); got != 2 {
			t.Fatalf("post-commit count = %d, want 2", got)
		}
	})
}

// TestRepeatableSnapshotReads: a transaction's reads are stable across a
// concurrent committed update, delete and insert — and catch up after its
// own commit.
func TestRepeatableSnapshotReads(t *testing.T) {
	forEachBatchSize(t, func(t *testing.T, batch int) {
		env := newTestEnv(t, false)
		env.engine.batch = batch
		env.mustExec("CREATE TABLE r (id int PRIMARY KEY, v int)", nil)
		env.mustExec("CREATE INDEX ix_rv ON r (v)", nil)
		env.mustExec("INSERT INTO r (id, v) VALUES (@i, @v)", Params{"i": intParam(1), "v": intParam(10)})
		env.mustExec("INSERT INTO r (id, v) VALUES (@i, @v)", Params{"i": intParam(2), "v": intParam(20)})

		reader := env.engine.NewSession()
		if _, err := reader.Execute("BEGIN TRANSACTION", nil); err != nil {
			t.Fatal(err)
		}
		// First read pins the transaction's snapshot.
		if got := selInt(t, reader, "SELECT v FROM r WHERE id = @i", Params{"i": intParam(1)}); got != 10 {
			t.Fatalf("initial read: v = %d", got)
		}

		env.mustExec("UPDATE r SET v = @v WHERE id = @i", Params{"v": intParam(11), "i": intParam(1)})
		env.mustExec("DELETE FROM r WHERE id = @i", Params{"i": intParam(2)})
		env.mustExec("INSERT INTO r (id, v) VALUES (@i, @v)", Params{"i": intParam(3), "v": intParam(30)})

		// Point read, deleted-row read (ghost path) and scan all repeat.
		if got := selInt(t, reader, "SELECT v FROM r WHERE id = @i", Params{"i": intParam(1)}); got != 10 {
			t.Fatalf("repeat read moved: v = %d", got)
		}
		if got := selInt(t, reader, "SELECT v FROM r WHERE id = @i", Params{"i": intParam(2)}); got != 20 {
			t.Fatalf("deleted row vanished from snapshot: v = %d", got)
		}
		if got := selInt(t, reader, "SELECT COUNT(*) FROM r", nil); got != 2 {
			t.Fatalf("snapshot count = %d, want 2", got)
		}
		// Index probe over v sees the snapshot too.
		if got := selInt(t, reader, "SELECT id FROM r WHERE v = @v", Params{"v": intParam(20)}); got != 2 {
			t.Fatalf("index probe lost deleted-but-visible row: id = %d", got)
		}
		if _, err := reader.Execute("COMMIT", nil); err != nil {
			t.Fatal(err)
		}

		// A fresh statement reads the new state.
		if got := selInt(t, reader, "SELECT v FROM r WHERE id = @i", Params{"i": intParam(1)}); got != 11 {
			t.Fatalf("post-commit read stale: v = %d", got)
		}
		if got := selInt(t, reader, "SELECT COUNT(*) FROM r", nil); got != 2 {
			t.Fatalf("post-commit count = %d, want 2 (delete+insert)", got)
		}
	})
}

// TestReadYourWrites: inside a transaction, its own insert, update and
// delete are visible to its reads even though no commit happened.
func TestReadYourWrites(t *testing.T) {
	forEachBatchSize(t, func(t *testing.T, batch int) {
		env := newTestEnv(t, false)
		env.engine.batch = batch
		env.mustExec("CREATE TABLE y (id int PRIMARY KEY, v int)", nil)
		env.mustExec("INSERT INTO y (id, v) VALUES (@i, @v)", Params{"i": intParam(1), "v": intParam(10)})
		env.mustExec("INSERT INTO y (id, v) VALUES (@i, @v)", Params{"i": intParam(2), "v": intParam(20)})

		env.mustExec("BEGIN TRANSACTION", nil)
		env.mustExec("UPDATE y SET v = @v WHERE id = @i", Params{"v": intParam(99), "i": intParam(1)})
		env.mustExec("DELETE FROM y WHERE id = @i", Params{"i": intParam(2)})
		env.mustExec("INSERT INTO y (id, v) VALUES (@i, @v)", Params{"i": intParam(3), "v": intParam(30)})

		if got := selInt(t, env.session, "SELECT v FROM y WHERE id = @i", Params{"i": intParam(1)}); got != 99 {
			t.Fatalf("own update invisible: v = %d", got)
		}
		if got := selInt(t, env.session, "SELECT COUNT(*) FROM y", nil); got != 2 {
			t.Fatalf("own delete/insert miscounted: %d, want 2", got)
		}
		if got := selInt(t, env.session, "SELECT v FROM y WHERE id = @i", Params{"i": intParam(3)}); got != 30 {
			t.Fatalf("own insert invisible: v = %d", got)
		}
		env.mustExec("ROLLBACK", nil)

		if got := selInt(t, env.session, "SELECT v FROM y WHERE id = @i", Params{"i": intParam(1)}); got != 10 {
			t.Fatalf("rollback lost: v = %d", got)
		}
		if got := selInt(t, env.session, "SELECT COUNT(*) FROM y", nil); got != 2 {
			t.Fatalf("rollback count = %d, want 2", got)
		}
	})
}

// TestWriteWriteConflict: two transactions updating the same row do NOT
// proceed concurrently — the second blocks on the row lock and times out
// with ErrLockTimeout. Snapshot reads must not have widened write-write
// behaviour.
func TestWriteWriteConflict(t *testing.T) {
	env := newTestEnv(t, false)
	env.engine.locks.Timeout = 100 * time.Millisecond
	env.mustExec("CREATE TABLE w (id int PRIMARY KEY, v int)", nil)
	env.mustExec("INSERT INTO w (id, v) VALUES (@i, @v)", Params{"i": intParam(1), "v": intParam(1)})

	env.mustExec("BEGIN TRANSACTION", nil)
	env.mustExec("UPDATE w SET v = @v WHERE id = @i", Params{"v": intParam(2), "i": intParam(1)})

	other := env.engine.NewSession()
	_, err := other.Execute("UPDATE w SET v = @v WHERE id = @i", Params{"v": intParam(3), "i": intParam(1)})
	if !errors.Is(err, storage.ErrLockTimeout) {
		t.Fatalf("conflicting update err = %v, want ErrLockTimeout", err)
	}

	env.mustExec("COMMIT", nil)
	// With the lock gone the other session's retry lands.
	if _, err := other.Execute("UPDATE w SET v = @v WHERE id = @i",
		Params{"v": intParam(3), "i": intParam(1)}); err != nil {
		t.Fatalf("post-commit update: %v", err)
	}
	if got := selInt(t, env.session, "SELECT v FROM w WHERE id = @i", Params{"i": intParam(1)}); got != 3 {
		t.Fatalf("v = %d, want 3", got)
	}
}

// TestSnapshotSumInvariant hammers concurrent transfer transactions against
// concurrent scans: every read — autocommit or transactional — must see a
// state where the total is exactly the invariant, never a half-applied
// transfer. Run under -race this also exercises scan-vs-writer memory
// safety.
func TestSnapshotSumInvariant(t *testing.T) {
	forEachBatchSize(t, func(t *testing.T, batch int) {
		env := newTestEnv(t, false)
		env.engine.batch = batch
		env.mustExec("CREATE TABLE acct (id int PRIMARY KEY, v int)", nil)
		const rows, per = 8, 100
		for i := int64(1); i <= rows; i++ {
			env.mustExec("INSERT INTO acct (id, v) VALUES (@i, @v)",
				Params{"i": intParam(i), "v": intParam(per)})
		}
		const invariant = rows * per

		stop := make(chan struct{})
		var writers, readers sync.WaitGroup
		errCh := make(chan error, 8)

		for g := 0; g < 3; g++ {
			writers.Add(1)
			go func(seed int64) {
				defer writers.Done()
				s := env.engine.NewSession()
				a, b := seed%rows+1, (seed+3)%rows+1
				if a == b {
					b = b%rows + 1
				}
				if a > b {
					a, b = b, a // lock in id order: no deadlocks, only waits
				}
				for i := 0; i < 40; i++ {
					if _, err := s.Execute("BEGIN TRANSACTION", nil); err != nil {
						errCh <- err
						return
					}
					_, err := s.Execute("UPDATE acct SET v = v - @d WHERE id = @i",
						Params{"d": intParam(1), "i": intParam(a)})
					if err == nil {
						_, err = s.Execute("UPDATE acct SET v = v + @d WHERE id = @i",
							Params{"d": intParam(1), "i": intParam(b)})
					}
					if err != nil {
						s.Execute("ROLLBACK", nil)
						errCh <- err
						return
					}
					if _, err := s.Execute("COMMIT", nil); err != nil {
						errCh <- err
						return
					}
				}
			}(int64(g))
		}

		for g := 0; g < 2; g++ {
			readers.Add(1)
			go func(txnReader bool) {
				defer readers.Done()
				s := env.engine.NewSession()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if txnReader {
						if _, err := s.Execute("BEGIN TRANSACTION", nil); err != nil {
							errCh <- err
							return
						}
					}
					rs, err := s.Execute("SELECT SUM(v) FROM acct", nil)
					if err != nil {
						errCh <- err
						return
					}
					sum, _ := sqltypes.Decode(rs.Rows[0][0])
					if sum.F != invariant && sum.I != invariant {
						errCh <- fmt.Errorf("sum = %v, want %d (torn read)", sum, invariant)
						return
					}
					if txnReader {
						// Re-read inside the txn: must repeat exactly.
						rs2, err := s.Execute("SELECT SUM(v) FROM acct", nil)
						if err != nil {
							errCh <- err
							return
						}
						sum2, _ := sqltypes.Decode(rs2.Rows[0][0])
						if sum2.I != sum.I || sum2.F != sum.F {
							errCh <- fmt.Errorf("re-read moved: %v then %v", sum, sum2)
							return
						}
						if _, err := s.Execute("COMMIT", nil); err != nil {
							errCh <- err
							return
						}
					}
				}
			}(g == 0)
		}

		// Writers finish on their own; readers loop until told to stop.
		writersDone := make(chan struct{})
		go func() {
			writers.Wait()
			close(writersDone)
		}()
		select {
		case err := <-errCh:
			close(stop)
			t.Fatal(err)
		case <-writersDone:
		case <-time.After(60 * time.Second):
			close(stop)
			t.Fatal("writers did not finish in time")
		}
		close(stop)
		readers.Wait()
		select {
		case err := <-errCh:
			t.Fatal(err)
		default:
		}
		rs := env.mustExec("SELECT SUM(v) FROM acct", nil)
		if got, _ := sqltypes.Decode(rs.Rows[0][0]); got.I != invariant && got.F != invariant {
			t.Fatalf("final sum = %v, want %d", got, invariant)
		}
	})
}

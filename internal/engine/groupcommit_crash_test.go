package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// countCommits tallies RecCommit records in a WAL slice.
func countCommits(recs []storage.Record) int {
	n := 0
	for _, rec := range recs {
		if rec.Type == storage.RecCommit {
			n++
		}
	}
	return n
}

// promoteFromWAL stands up a fresh replica, replays the given log prefix,
// runs crash recovery (rolling back whatever was in flight at the cut) and
// promotes it to read-write — the §5 failover path.
func promoteFromWAL(t *testing.T, recs []storage.Record) *Engine {
	t.Helper()
	rep, _ := newReplicaEngine(t)
	applyAll(t, rep, NewRedoApplier(rep), recs)
	rep.Recover()
	rep.SetReadOnly(false)
	return rep
}

// TestGroupCommitCrashDurability kills the primary mid group-commit window:
// concurrent committers run with a non-zero commit window, and at two cut
// points a consistent WAL prefix is captured while commit rounds are still
// in flight. Promoting a replica from each prefix must show every
// acknowledged transaction (ack happens strictly after the batched append)
// and none of the unacknowledged ones — group commit batches the log write,
// not the durability promise.
func TestGroupCommitCrashDurability(t *testing.T) {
	env := newTestEnv(t, true)
	env.engine.commitWindow = 2 * time.Millisecond
	env.mustExec("CREATE TABLE gc (id int PRIMARY KEY, v int)", nil)
	baseCommits := countCommits(env.engine.WAL().Records())

	const writers = 8
	var (
		mu    sync.Mutex
		acked []int64
		next  int64
		wg    sync.WaitGroup
		stop  = make(chan struct{})
	)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := env.engine.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				next++
				id := next
				mu.Unlock()
				if _, err := sess.Execute("BEGIN TRANSACTION", nil); err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.Execute("INSERT INTO gc (id, v) VALUES (@i, @v)",
					Params{"i": intParam(id), "v": intParam(id * 10)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.Execute("COMMIT", nil); err != nil {
					t.Error(err)
					return
				}
				// The commit is acknowledged: from here on it must survive
				// any crash whose WAL cut happens after this append.
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
		}()
	}

	type cut struct {
		acked []int64
		recs  []storage.Record
	}
	var cuts []cut
	for i := 0; i < 2; i++ {
		time.Sleep(15 * time.Millisecond)
		// Order matters: copy the acked list BEFORE snapshotting the log.
		// Ack-after-append then guarantees every copied ack's commit record
		// is inside the snapshot.
		mu.Lock()
		ackedCopy := append([]int64(nil), acked...)
		mu.Unlock()
		cuts = append(cuts, cut{acked: ackedCopy, recs: env.engine.WAL().Records()})
	}
	close(stop)
	wg.Wait()

	for i, c := range cuts {
		label := fmt.Sprintf("cut %d (%d acked, %d records)", i, len(c.acked), len(c.recs))
		if len(c.acked) == 0 {
			t.Fatalf("%s: no commits acknowledged before the cut", label)
		}
		rep := promoteFromWAL(t, c.recs)
		sess := rep.NewSession()

		// Every acknowledged commit survived.
		for _, id := range c.acked {
			rs, err := sess.Execute("SELECT v FROM gc WHERE id = @i", Params{"i": intParam(id)})
			if err != nil {
				t.Fatalf("%s: read acked row %d: %v", label, id, err)
			}
			if len(rs.Rows) != 1 {
				t.Fatalf("%s: acknowledged txn for row %d lost (rows=%d)", label, id, len(rs.Rows))
			}
			if v, err := sqltypes.Decode(rs.Rows[0][0]); err != nil || v.I != id*10 {
				t.Fatalf("%s: row %d = %v (err %v), want %d", label, id, v, err, id*10)
			}
		}

		// No unacknowledged transaction's changes were applied: each writer
		// txn inserts exactly one row, so the surviving row count must equal
		// the number of commit records inside the cut.
		committed := countCommits(c.recs) - baseCommits
		if committed < len(c.acked) {
			t.Fatalf("%s: %d commit records < %d acks", label, committed, len(c.acked))
		}
		rs, err := sess.Execute("SELECT COUNT(*) FROM gc", nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sqltypes.Decode(rs.Rows[0][0])
		if err != nil {
			t.Fatal(err)
		}
		if got.I != int64(committed) {
			t.Fatalf("%s: replica holds %d rows, want %d (uncommitted work leaked or commits lost)",
				label, got.I, committed)
		}
	}
}

// TestBulkRedoByteIdentical: a bulk-loaded primary, a row-at-a-time-loaded
// primary and a replica replaying the bulk primary's multi-row WAL records
// must all hold byte-identical pages — the fast path changes log shape and
// lock traffic, never bytes on disk.
func TestBulkRedoByteIdentical(t *testing.T) {
	const n = 300
	ddl := func(env *testEnv) {
		env.mustExec("CREATE TABLE load (id int PRIMARY KEY, name varchar(32))", nil)
		env.mustExec("CREATE INDEX ix_name ON load (name)", nil)
	}
	name := func(i int) string { return fmt.Sprintf("row-%04d", i) }

	bulkEnv := newTestEnv(t, true)
	ddl(bulkEnv)
	rows := make([][][]byte, n)
	for i := range rows {
		rows[i] = [][]byte{intParam(int64(i + 1)), strParam(name(i + 1))}
	}
	if got, err := bulkEnv.session.BulkInsert("load", []string{"id", "name"}, rows); err != nil || got != n {
		t.Fatalf("BulkInsert = %d, %v; want %d", got, err, n)
	}

	rowEnv := newTestEnv(t, true)
	ddl(rowEnv)
	for i := 1; i <= n; i++ {
		rowEnv.mustExec("INSERT INTO load (id, name) VALUES (@i, @n)",
			Params{"i": intParam(int64(i)), "n": strParam(name(i))})
	}

	// The two primaries took different WAL paths (one multi-row record per
	// structure vs n per-row records) but must agree on every page byte.
	comparePages(t, storePages(t, bulkEnv.engine, bulkEnv.store),
		storePages(t, rowEnv.engine, rowEnv.store), "bulk vs row-at-a-time")

	// A key-less replica replays the bulk primary's log — including the
	// RecHeapInsertMulti / RecIndexInsertMulti records — to identical pages.
	recs := bulkEnv.engine.WAL().Records()
	multi := 0
	for _, rec := range recs {
		if rec.Type == storage.RecHeapInsertMulti || rec.Type == storage.RecIndexInsertMulti {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("bulk load produced no multi-row WAL records")
	}
	rep, repStore := newReplicaEngine(t)
	applyAll(t, rep, NewRedoApplier(rep), recs)
	comparePages(t, storePages(t, bulkEnv.engine, bulkEnv.store),
		storePages(t, rep, repStore), "bulk primary vs replica redo")

	// The replica's logical view works through the replayed index too.
	sess := rep.NewSession()
	rs, err := sess.Execute("SELECT COUNT(*) FROM load", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sqltypes.Decode(rs.Rows[0][0]); err != nil || v.I != n {
		t.Fatalf("replica count = %v (err %v), want %d", v, err, n)
	}
	rs, err = sess.Execute("SELECT id FROM load WHERE name = @n", Params{"n": strParam(name(42))})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("replica index probe rows = %d, want 1", len(rs.Rows))
	}
	if v, err := sqltypes.Decode(rs.Rows[0][0]); err != nil || v.I != 42 {
		t.Fatalf("replica index probe = %v (err %v), want 42", v, err)
	}
}

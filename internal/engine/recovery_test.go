package engine

import (
	"errors"
	"testing"
	"time"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// TestOnlineInitialEncryption is the §2.4.2 flow: a populated plaintext
// column is encrypted in place through the enclave — no client round trip of
// the data — after the client authorizes the DDL statement (§3.2).
func TestOnlineInitialEncryption(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", true)
	env.mustExec("CREATE TABLE pii (id int PRIMARY KEY, ssn varchar(11))", nil)
	ssns := []string{"111-11-1111", "222-22-2222", "333-33-3333"}
	for i, s := range ssns {
		env.mustExec("INSERT INTO pii (id, ssn) VALUES (@i, @s)",
			Params{"i": intParam(int64(i + 1)), "s": strParam(s)})
	}

	ddl := "ALTER TABLE pii ALTER COLUMN ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
	// Describing the ALTER itself reports the enclave need and triggers
	// attestation — the driver flow for enclave-side initial encryption.
	env.attest(ddl)
	env.installCEKs("CEK1")
	env.authorizeDDL(ddl)
	env.mustExec(ddl, nil)

	// The column is now ciphertext server-side.
	rs := env.mustExec("SELECT ssn FROM pii WHERE id = @i", Params{"i": intParam(1)})
	if v, err := sqltypes.Decode(rs.Rows[0][0]); err == nil && v.Kind == sqltypes.KindString && v.S == ssns[0] {
		t.Fatal("ssn still stored in plaintext after initial encryption")
	}
	if got := env.dec("CEK1", rs.Rows[0][0]); got.S != ssns[0] {
		t.Fatalf("decrypted = %v", got)
	}
	// Queries now work through the enclave.
	rs = env.mustExec("SELECT id FROM pii WHERE ssn = @s",
		Params{"s": env.enc("CEK1", sqltypes.Str("222-22-2222"), aecrypto.Randomized)})
	if len(rs.Rows) != 1 {
		t.Fatalf("post-encryption query rows = %d", len(rs.Rows))
	}
	// Catalog reflects the new type.
	tbl, _ := env.engine.Catalog().Table("pii")
	col, _ := tbl.Col("ssn")
	if col.Enc.Scheme != sqltypes.SchemeRandomized || col.Enc.CEKName != "CEK1" {
		t.Fatalf("catalog enc = %+v", col.Enc)
	}
}

// TestInitialEncryptionRequiresAuthorization: without the client's sealed
// statement hash, the enclave refuses to act as an encryption oracle.
func TestInitialEncryptionRequiresAuthorization(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", true)
	env.mustExec("CREATE TABLE pii (id int PRIMARY KEY, ssn varchar(11))", nil)
	env.mustExec("INSERT INTO pii (id, ssn) VALUES (@i, @s)",
		Params{"i": intParam(1), "s": strParam("111-11-1111")})
	ddl := "ALTER TABLE pii ALTER COLUMN ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
	env.attest(ddl)
	env.installCEKs("CEK1")
	// No authorizeDDL call: the server tries anyway.
	if _, err := env.session.Execute(ddl, nil); !errors.Is(err, enclave.ErrNotAuthorized) {
		t.Fatalf("unauthorized initial encryption: %v", err)
	}
	// Data untouched.
	rs := env.mustExec("SELECT ssn FROM pii WHERE id = @i", Params{"i": intParam(1)})
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.S != "111-11-1111" {
		t.Fatal("data corrupted by failed DDL")
	}
}

// TestCEKRotationThroughEnclave rotates a column from CEK1 to CEK2 with an
// ALTER TABLE ALTER COLUMN (§2.4.2), then verifies old ciphertext is gone.
func TestCEKRotationThroughEnclave(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", true)
	env.provisionKeys("CMK2", "CEK2", true)
	env.mustExec(`CREATE TABLE t (id int PRIMARY KEY,
		v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	env.attest("SELECT id FROM t WHERE v = @v")
	env.installCEKs("CEK1", "CEK2")
	for i := int64(1); i <= 5; i++ {
		env.mustExec("INSERT INTO t (id, v) VALUES (@i, @v)", Params{
			"i": intParam(i), "v": env.enc("CEK1", sqltypes.Int(i*10), aecrypto.Randomized)})
	}
	ddl := "ALTER TABLE t ALTER COLUMN v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK2, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
	env.authorizeDDL(ddl)
	env.mustExec(ddl, nil)

	rs := env.mustExec("SELECT v FROM t WHERE id = @i", Params{"i": intParam(3)})
	if got := env.dec("CEK2", rs.Rows[0][0]); got.I != 30 {
		t.Fatalf("rotated value = %v", got)
	}
	if _, err := env.cellKeys["CEK1"].Decrypt(rs.Rows[0][0]); err == nil {
		t.Fatal("rotated ciphertext still opens under the old CEK")
	}
	// Queries with parameters under the new key work.
	rs = env.mustExec("SELECT id FROM t WHERE v = @v",
		Params{"v": env.enc("CEK2", sqltypes.Int(40), aecrypto.Randomized)})
	if len(rs.Rows) != 1 {
		t.Fatalf("post-rotation rows = %d", len(rs.Rows))
	}
}

// crashWithInflightEncryptedIndexTxn builds the §4.5 scenario: a transaction
// inserts rows into a table with an encrypted range index, the process
// crashes before commit, and the restarted enclave has no keys.
func crashWithInflightEncryptedIndexTxn(t *testing.T, ctr bool) *testEnv {
	t.Helper()
	env := setupRNDTable(t, ctr)
	env.mustExec("CREATE INDEX ix_val ON T (value)", nil)
	// Committed baseline.
	for i := int64(1); i <= 5; i++ {
		env.mustExec("INSERT INTO T (id, value) VALUES (@i, @v)", Params{
			"i": intParam(i), "v": env.enc("CEK1", sqltypes.Int(i), aecrypto.Randomized)})
	}
	// In-flight transaction (never committed): bulk-load style inserts.
	env.mustExec("BEGIN TRANSACTION", nil)
	// Also touch a committed row: snapshot discovery skips the uncommitted
	// inserts (invisible), so the writer-blocking demonstration below needs
	// the deferred transaction to hold a lock on a row readers can see.
	env.mustExec("UPDATE T SET id = id WHERE id = @i", Params{"i": intParam(3)})
	for i := int64(100); i < 110; i++ {
		env.mustExec("INSERT INTO T (id, value) VALUES (@i, @v)", Params{
			"i": intParam(i), "v": env.enc("CEK1", sqltypes.Int(i), aecrypto.Randomized)})
	}
	// Crash: replace the enclave with a freshly loaded one (no CEKs). The
	// binary and author key are unchanged — only volatile state is lost.
	env.engine.Crash()
	image, _ := enclave.SignImage(env.authorKey, []byte("es-enclave"), 2)
	fresh, err := enclave.Load(image, 10, enclave.Options{Threads: 1, SpinDuration: time.Microsecond, CrossingCost: 50 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fresh.Close)
	env.engine.ReplaceEnclave(fresh)
	env.encl = fresh
	env.session = env.engine.NewSession()
	return env
}

// TestRecoveryDefersWithoutKeys: non-CTR — the deferred transaction holds
// its locks, blocking writers, and pins the log.
func TestRecoveryDefersWithoutKeys(t *testing.T) {
	env := crashWithInflightEncryptedIndexTxn(t, false)
	rep := env.engine.Recover()
	if len(rep.DeferredTxns) != 1 || len(rep.UndoneTxns) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.LocksHeld == 0 {
		t.Fatal("deferred transaction holds no locks (should block access, §4.5)")
	}
	if env.engine.DeferredCount() != 1 {
		t.Fatalf("deferred = %d", env.engine.DeferredCount())
	}
	// Log truncation is blocked.
	last := env.engine.WAL().Records()[env.engine.WAL().Len()-1].LSN
	if err := env.engine.WAL().TruncateBefore(last); !errors.Is(err, storage.ErrTruncationBlocked) {
		t.Fatalf("truncation: %v", err)
	}
	// A writer touching a locked, visible row times out. (The uncommitted
	// inserts 100..109 are invisible to the writer's snapshot discovery, so
	// the target is the committed row the deferred transaction updated.)
	env.engine.locksTimeoutForTest(50 * time.Millisecond)
	s2 := env.engine.NewSession()
	_, err := s2.Execute("UPDATE T SET id = id WHERE id = @i", Params{"i": intParam(3)})
	if err == nil {
		t.Fatal("update of a row locked by a deferred txn succeeded")
	}

	// Client reconnects: attests against the fresh enclave, sends keys,
	// deferred transactions resolve.
	env.attest("SELECT id FROM T WHERE value = @v")
	env.installCEKs("CEK1")
	resolved, err := env.engine.ResolveDeferred()
	if err != nil || resolved != 1 {
		t.Fatalf("resolve: %d %v", resolved, err)
	}
	if env.engine.DeferredCount() != 0 {
		t.Fatal("still deferred")
	}
	// The uncommitted rows are gone; committed ones remain; index works.
	rs := env.mustExec("SELECT COUNT(*) FROM T", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 5 {
		t.Fatalf("count = %v", v)
	}
	rs = env.mustExec("SELECT id FROM T WHERE value BETWEEN @lo AND @hi", Params{
		"lo": env.enc("CEK1", sqltypes.Int(1), aecrypto.Randomized),
		"hi": env.enc("CEK1", sqltypes.Int(200), aecrypto.Randomized)})
	if len(rs.Rows) != 5 {
		t.Fatalf("index rows = %d (phantom uncommitted entries?)", len(rs.Rows))
	}
	// Truncation unblocked.
	last = env.engine.WAL().Records()[env.engine.WAL().Len()-1].LSN
	if err := env.engine.WAL().TruncateBefore(last); err != nil {
		t.Fatalf("truncation after resolve: %v", err)
	}
}

// TestCTRKeepsDatabaseAvailable: with constant-time recovery the database is
// fully available after the crash — no locks held, committed data readable —
// while the version cleaner retries index undo until keys arrive.
func TestCTRKeepsDatabaseAvailable(t *testing.T) {
	env := crashWithInflightEncryptedIndexTxn(t, true)
	rep := env.engine.Recover()
	if len(rep.DeferredTxns) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.LocksHeld != 0 {
		t.Fatalf("CTR recovery held %d locks (must be 0, §4.5)", rep.LocksHeld)
	}
	// Committed data is immediately readable and writable.
	rs := env.mustExec("SELECT COUNT(*) FROM T", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 5 {
		t.Fatalf("count = %v (uncommitted rows visible or committed missing)", v)
	}
	env.mustExec("UPDATE T SET id = id WHERE id = @i", Params{"i": intParam(1)})

	// Cleaner pass without keys keeps retrying.
	if resolved, err := env.engine.ResolveDeferred(); resolved != 0 || err == nil {
		t.Fatalf("cleaner without keys: resolved=%d err=%v", resolved, err)
	}
	// Keys arrive; cleaner completes.
	env.attest("SELECT id FROM T WHERE value = @v")
	env.installCEKs("CEK1")
	if resolved, err := env.engine.ResolveDeferred(); err != nil || resolved != 1 {
		t.Fatalf("cleaner with keys: %d %v", resolved, err)
	}
	rs = env.mustExec("SELECT id FROM T WHERE value BETWEEN @lo AND @hi", Params{
		"lo": env.enc("CEK1", sqltypes.Int(0), aecrypto.Randomized),
		"hi": env.enc("CEK1", sqltypes.Int(500), aecrypto.Randomized)})
	if len(rs.Rows) != 5 {
		t.Fatalf("index rows = %d", len(rs.Rows))
	}
}

// TestForcedResolutionInvalidatesIndex: if keys never arrive, forced
// resolution skips index undo and invalidates the index; queries fall back
// to scans; RebuildIndex restores it once keys exist (§4.5).
func TestForcedResolutionInvalidatesIndex(t *testing.T) {
	env := crashWithInflightEncryptedIndexTxn(t, false)
	env.engine.Recover()
	invalidated := env.engine.ForceResolveDeferred()
	if len(invalidated) != 1 || invalidated[0] != "ix_val" {
		t.Fatalf("invalidated = %v", invalidated)
	}
	if env.engine.DeferredCount() != 0 {
		t.Fatal("still deferred after force")
	}
	idx, _ := env.engine.Catalog().Index("ix_val")
	if !idx.Tree.Invalidated() {
		t.Fatal("index not invalidated")
	}
	// Data is consistent (heap undo ran); queries fall back to scans.
	rs := env.mustExec("SELECT COUNT(*) FROM T", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 5 {
		t.Fatalf("count = %v", v)
	}
	scansBefore, _, _ := env.engine.Stats()
	env.attest("SELECT id FROM T WHERE value = @v")
	env.installCEKs("CEK1")
	rs = env.mustExec("SELECT id FROM T WHERE value = @v",
		Params{"v": env.enc("CEK1", sqltypes.Int(3), aecrypto.Randomized)})
	scansAfter, _, _ := env.engine.Stats()
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if scansAfter == scansBefore {
		t.Fatal("query did not fall back to a scan with the index invalid")
	}
	// Rebuild restores index access.
	if err := env.engine.RebuildIndex("ix_val"); err != nil {
		t.Fatal(err)
	}
	_, seeksBefore, _ := env.engine.Stats()
	env.mustExec("SELECT id FROM T WHERE value BETWEEN @lo AND @hi", Params{
		"lo": env.enc("CEK1", sqltypes.Int(1), aecrypto.Randomized),
		"hi": env.enc("CEK1", sqltypes.Int(5), aecrypto.Randomized)})
	_, seeksAfter, _ := env.engine.Stats()
	if seeksAfter == seeksBefore {
		t.Fatal("rebuilt index unused")
	}
}

// TestRecoveryPlainTxnsUndoneImmediately: transactions touching only
// plaintext state never defer.
func TestRecoveryPlainTxnsUndoneImmediately(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE p (id int PRIMARY KEY, v int)", nil)
	env.mustExec("INSERT INTO p (id, v) VALUES (@i, @v)", Params{"i": intParam(1), "v": intParam(1)})
	env.mustExec("BEGIN TRANSACTION", nil)
	env.mustExec("UPDATE p SET v = @v WHERE id = @i", Params{"v": intParam(99), "i": intParam(1)})
	env.mustExec("INSERT INTO p (id, v) VALUES (@i, @v)", Params{"i": intParam(2), "v": intParam(2)})
	env.engine.Crash()
	rep := env.engine.Recover()
	if len(rep.UndoneTxns) != 1 || len(rep.DeferredTxns) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	env.session = env.engine.NewSession()
	rs := env.mustExec("SELECT v FROM p WHERE id = @i", Params{"i": intParam(1)})
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 1 {
		t.Fatalf("v = %v", v)
	}
	rs = env.mustExec("SELECT COUNT(*) FROM p", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 1 {
		t.Fatalf("count = %v", v)
	}
}

// locksTimeoutForTest shortens the lock wait timeout.
func (e *Engine) locksTimeoutForTest(d time.Duration) { e.locks.Timeout = d }

// TestBackgroundCleanerResolvesWhenKeysArrive: the §4.5 version cleaner
// retries on its own until a client supplies keys.
func TestBackgroundCleanerResolvesWhenKeysArrive(t *testing.T) {
	env := crashWithInflightEncryptedIndexTxn(t, true)
	env.engine.Recover()
	stop := env.engine.StartCleaner(10 * time.Millisecond)
	defer stop()

	// Give the cleaner a few fruitless passes.
	time.Sleep(40 * time.Millisecond)
	if env.engine.DeferredCount() != 1 {
		t.Fatal("cleaner resolved without keys")
	}
	// Keys arrive; the cleaner finishes within a few intervals.
	env.attest("SELECT id FROM T WHERE value = @v")
	env.installCEKs("CEK1")
	deadline := time.Now().Add(2 * time.Second)
	for env.engine.DeferredCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("cleaner did not resolve after keys arrived")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Package engine is the relational database engine of the reproduction: the
// untrusted "SQL Server" of Figure 3. It hosts the catalog (including the
// CMK/CEK key metadata system tables), the SQL parser, the binder with
// encryption type deduction (§4.3), a plan cache, the executor built around
// expression services (§4.4), transactional storage with WAL and row locks,
// online DDL for initial encryption and key rotation through the enclave
// (§2.4.2), recovery with deferred transactions and constant-time recovery
// (§4.5), and sp_describe_parameter_encryption (§4.1).
//
// The engine never holds keys: encrypted cells flow through it as opaque
// bytes, and every computation over them happens in expression services
// (DET ciphertext equality on the host) or inside the enclave.
package engine

import (
	"alwaysencrypted/internal/sqltypes"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmtNode() }

// EncSpec is the ENCRYPTED WITH clause of a column definition.
type EncSpec struct {
	CEK       string
	Scheme    sqltypes.EncScheme
	Algorithm string
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	TypeName   string
	Kind       sqltypes.Kind
	PrimaryKey bool
	NotNull    bool
	Enc        *EncSpec
}

// CreateTableStmt: CREATE TABLE name (cols...).
type CreateTableStmt struct {
	Name string
	Cols []ColumnDef
}

// CreateIndexStmt: CREATE [UNIQUE] INDEX name ON table (cols...).
type CreateIndexStmt struct {
	Name      string
	Table     string
	Cols      []string
	Unique    bool
	Clustered bool
}

// CreateCMKStmt: CREATE COLUMN MASTER KEY (Figure 1).
type CreateCMKStmt struct {
	Name                string
	ProviderName        string
	KeyPath             string
	EnclaveComputations bool
	Signature           []byte
}

// CreateCEKStmt: CREATE COLUMN ENCRYPTION KEY (Figure 1).
type CreateCEKStmt struct {
	Name           string
	CMK            string
	Algorithm      string
	EncryptedValue []byte
	Signature      []byte
}

// AlterColumnStmt: ALTER TABLE t ALTER COLUMN c type [ENCRYPTED WITH (...)];
// the online initial-encryption / key-rotation DDL (§2.4.2). A nil Enc means
// convert to plaintext.
type AlterColumnStmt struct {
	Table    string
	Column   string
	TypeName string
	Enc      *EncSpec
	// RawText is the statement text whose hash the client authorized; the
	// enclave validates it against the parse tree (§3.2).
	RawText string
}

// ValueExpr is a scalar source in predicates, INSERT values and SET clauses.
type ValueExpr interface{ valueNode() }

// ParamExpr references a named query parameter (@name).
type ParamExpr struct{ Name string }

// LiteralExpr is an inline literal.
type LiteralExpr struct{ Val sqltypes.Value }

// ColExpr references a column (only valid in SET right-hand sides and
// SELECT items).
type ColExpr struct{ Name string }

// ArithExpr is plaintext-only arithmetic in SET clauses: col + @p etc.
type ArithExpr struct {
	Op   byte // '+', '-', '*'
	L, R ValueExpr
}

func (ParamExpr) valueNode()   {}
func (LiteralExpr) valueNode() {}
func (ColExpr) valueNode()     {}
func (ArithExpr) valueNode()   {}

// PredOp enumerates predicate operators in WHERE clauses.
type PredOp int

const (
	PredEQ PredOp = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
	PredLike
	PredBetween
	PredIsNull
	PredIsNotNull
)

// Predicate is one conjunct of a WHERE clause: column OP value(s).
type Predicate struct {
	Col  string // possibly qualified t.col
	Op   PredOp
	Val  ValueExpr // nil for IS [NOT] NULL
	Val2 ValueExpr // BETWEEN upper bound
}

// AggFunc enumerates supported aggregates.
type AggFunc int

const (
	AggNone AggFunc = iota
	AggCount
	AggCountDistinct
	AggMin
	AggMax
	AggSum
)

// SelectItem is one projection item.
type SelectItem struct {
	Star bool
	Col  string // possibly qualified
	Agg  AggFunc
}

// JoinClause is an inner equi-join: FROM a JOIN b ON a.x = b.y.
type JoinClause struct {
	Table    string
	LeftCol  string // qualified
	RightCol string // qualified
}

// SelectStmt: SELECT items FROM table [JOIN ...] [WHERE ...] [LIMIT n].
type SelectStmt struct {
	Items []SelectItem
	Table string
	Join  *JoinClause
	Where []Predicate
	Limit int // 0 = no limit
}

// InsertStmt: INSERT INTO t (cols) VALUES (exprs).
type InsertStmt struct {
	Table string
	Cols  []string
	Vals  []ValueExpr
}

// SetClause is one assignment in UPDATE.
type SetClause struct {
	Col  string
	Expr ValueExpr
}

// UpdateStmt: UPDATE t SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where []Predicate
}

// DeleteStmt: DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where []Predicate
}

// Transaction control statements.
type BeginStmt struct{}
type CommitStmt struct{}
type RollbackStmt struct{}

func (CreateTableStmt) stmtNode() {}
func (CreateIndexStmt) stmtNode() {}
func (CreateCMKStmt) stmtNode()   {}
func (CreateCEKStmt) stmtNode()   {}
func (AlterColumnStmt) stmtNode() {}
func (SelectStmt) stmtNode()      {}
func (InsertStmt) stmtNode()      {}
func (UpdateStmt) stmtNode()      {}
func (DeleteStmt) stmtNode()      {}
func (BeginStmt) stmtNode()       {}
func (CommitStmt) stmtNode()      {}
func (RollbackStmt) stmtNode()    {}

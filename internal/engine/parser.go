package engine

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"alwaysencrypted/internal/sqltypes"
)

// ErrSyntax wraps all parse errors.
var ErrSyntax = errors.New("engine: syntax error")

// Parse turns one SQL statement into its AST. Only parameterized DML can
// reference encrypted columns (§2.5); that restriction is enforced by the
// binder, not the grammar.
func Parse(src string) (Stmt, error) {
	toks, err := lexTokens(src)
	if err != nil {
		return nil, err
	}
	return parseTokens(src, toks)
}

// lexTokens is the lex phase of the statement lifecycle, wrapping lexer
// errors in ErrSyntax.
func lexTokens(src string) ([]token, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	return toks, nil
}

// parseTokens is the parse phase: token stream to AST.
func parseTokens(src string, toks []token) (Stmt, error) {
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokOp && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s (near position %d in %q)", ErrSyntax,
		fmt.Sprintf(format, args...), p.peek().pos, truncate(p.src, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf("expected %s, got %q", kw, t.text)
	}
	p.next()
	return nil
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	t := p.peek()
	if t.kind != tokOp || t.text != op {
		return p.errf("expected %q, got %q", op, t.text)
	}
	p.next()
	return nil
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.next()
		return true
	}
	return false
}

// ident consumes an identifier (keywords usable as type names are allowed).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokKeyword {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

// qualifiedIdent parses ident[.ident].
func (p *parser) qualifiedIdent() (string, error) {
	first, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.acceptOp(".") {
		second, err := p.ident()
		if err != nil {
			return "", err
		}
		return first + "." + second, nil
	}
	return first, nil
}

func (p *parser) parseStatement() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "ALTER":
		return p.parseAlter()
	case "BEGIN":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return BeginStmt{}, nil
	case "COMMIT":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return RollbackStmt{}, nil
	default:
		return nil, p.errf("unsupported statement %q", t.text)
	}
}

func (p *parser) parseSelect() (Stmt, error) {
	p.next() // SELECT
	stmt := SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = table

	if p.acceptKeyword("INNER") || p.peek().kind == tokKeyword && p.peek().text == "JOIN" {
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		lc, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		rc, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		stmt.Join = &JoinClause{Table: jt, LeftCol: lc, RightCol: rc}
	}

	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	stmt.Where = where

	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected LIMIT count")
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if t.kind == tokKeyword {
		switch t.text {
		case "COUNT":
			p.next()
			if err := p.expectOp("("); err != nil {
				return SelectItem{}, err
			}
			if p.acceptOp("*") {
				if err := p.expectOp(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: AggCount, Col: "*"}, nil
			}
			distinct := p.acceptKeyword("DISTINCT")
			col, err := p.qualifiedIdent()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectOp(")"); err != nil {
				return SelectItem{}, err
			}
			agg := AggCount
			if distinct {
				agg = AggCountDistinct
			}
			return SelectItem{Agg: agg, Col: col}, nil
		case "MIN", "MAX", "SUM":
			p.next()
			if err := p.expectOp("("); err != nil {
				return SelectItem{}, err
			}
			col, err := p.qualifiedIdent()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectOp(")"); err != nil {
				return SelectItem{}, err
			}
			agg := AggMin
			switch t.text {
			case "MAX":
				agg = AggMax
			case "SUM":
				agg = AggSum
			}
			return SelectItem{Agg: agg, Col: col}, nil
		}
	}
	col, err := p.qualifiedIdent()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseWhere() ([]Predicate, error) {
	if !p.acceptKeyword("WHERE") {
		return nil, nil
	}
	var preds []Predicate
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if !p.acceptKeyword("AND") {
			break
		}
	}
	return preds, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	col, err := p.qualifiedIdent()
	if err != nil {
		return Predicate{}, err
	}
	t := p.peek()
	switch {
	case t.kind == tokKeyword && t.text == "IS":
		p.next()
		notNull := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return Predicate{}, err
		}
		op := PredIsNull
		if notNull {
			op = PredIsNotNull
		}
		return Predicate{Col: col, Op: op}, nil
	case t.kind == tokKeyword && t.text == "LIKE":
		p.next()
		v, err := p.parseValueExpr()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: PredLike, Val: v}, nil
	case t.kind == tokKeyword && t.text == "BETWEEN":
		p.next()
		lo, err := p.parseValueExpr()
		if err != nil {
			return Predicate{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return Predicate{}, err
		}
		hi, err := p.parseValueExpr()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: PredBetween, Val: lo, Val2: hi}, nil
	case t.kind == tokOp:
		var op PredOp
		switch t.text {
		case "=":
			op = PredEQ
		case "<>":
			op = PredNE
		case "<":
			op = PredLT
		case "<=":
			op = PredLE
		case ">":
			op = PredGT
		case ">=":
			op = PredGE
		default:
			return Predicate{}, p.errf("unexpected operator %q in predicate", t.text)
		}
		p.next()
		v, err := p.parseValueExpr()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: op, Val: v}, nil
	default:
		return Predicate{}, p.errf("expected predicate operator, got %q", t.text)
	}
}

// parseValueExpr parses a parameter or literal (predicates, VALUES).
func (p *parser) parseValueExpr() (ValueExpr, error) {
	t := p.peek()
	switch t.kind {
	case tokParam:
		p.next()
		return ParamExpr{Name: t.text}, nil
	case tokNumber:
		p.next()
		return numberLiteral(t.text)
	case tokString:
		p.next()
		return LiteralExpr{Val: sqltypes.Str(t.text)}, nil
	case tokHex:
		p.next()
		b, err := hex.DecodeString(evenHex(t.text))
		if err != nil {
			return nil, p.errf("bad hex literal")
		}
		return LiteralExpr{Val: sqltypes.Bytes(b)}, nil
	case tokKeyword:
		if t.text == "NULL" {
			p.next()
			return LiteralExpr{Val: sqltypes.Null()}, nil
		}
	}
	return nil, p.errf("expected parameter or literal, got %q", t.text)
}

// parseSetExpr parses the right-hand side of SET: term (('+'|'-'|'*') term)*
// where terms are columns, parameters or literals. Arithmetic is plaintext
// only; the binder enforces that.
func (p *parser) parseSetExpr() (ValueExpr, error) {
	left, err := p.parseSetTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-" && t.text != "*") {
			return left, nil
		}
		p.next()
		right, err := p.parseSetTerm()
		if err != nil {
			return nil, err
		}
		left = ArithExpr{Op: t.text[0], L: left, R: right}
	}
}

func (p *parser) parseSetTerm() (ValueExpr, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return ColExpr{Name: t.text}, nil
	}
	return p.parseValueExpr()
}

func numberLiteral(text string) (ValueExpr, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad number %q", ErrSyntax, text)
		}
		return LiteralExpr{Val: sqltypes.Float(f)}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad number %q", ErrSyntax, text)
	}
	return LiteralExpr{Val: sqltypes.Int(i)}, nil
}

func evenHex(s string) string {
	if len(s)%2 == 1 {
		return "0" + s
	}
	return s
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := InsertStmt{Table: table}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.parseValueExpr()
		if err != nil {
			return nil, err
		}
		stmt.Vals = append(stmt.Vals, v)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(stmt.Cols) != len(stmt.Vals) {
		return nil, p.errf("INSERT has %d columns but %d values", len(stmt.Cols), len(stmt.Vals))
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := UpdateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		expr, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Col: col, Expr: expr})
		if !p.acceptOp(",") {
			break
		}
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	stmt.Where = where
	return stmt, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return DeleteStmt{Table: table, Where: where}, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("UNIQUE"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true, false)
	case p.acceptKeyword("CLUSTERED"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(false, true)
	case p.acceptKeyword("NONCLUSTERED"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(false, false)
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(false, false)
	case p.acceptKeyword("COLUMN"):
		if p.acceptKeyword("MASTER") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			return p.parseCreateCMK()
		}
		if p.acceptKeyword("ENCRYPTION") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			return p.parseCreateCEK()
		}
		return nil, p.errf("expected MASTER KEY or ENCRYPTION KEY")
	default:
		return nil, p.errf("unsupported CREATE %q", p.peek().text)
	}
}

func (p *parser) parseCreateTable() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := CreateTableStmt{Name: name}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	typeName, err := p.parseTypeName()
	if err != nil {
		return ColumnDef{}, err
	}
	kind, err := sqltypes.KindFromTypeName(typeName)
	if err != nil {
		return ColumnDef{}, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	def := ColumnDef{Name: name, TypeName: typeName, Kind: kind}
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			def.PrimaryKey = true
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		case p.acceptKeyword("ENCRYPTED"):
			if err := p.expectKeyword("WITH"); err != nil {
				return ColumnDef{}, err
			}
			enc, err := p.parseEncSpec()
			if err != nil {
				return ColumnDef{}, err
			}
			def.Enc = enc
		default:
			return def, nil
		}
	}
}

// parseTypeName consumes "varchar(30)" style type names, discarding lengths.
func (p *parser) parseTypeName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.acceptOp("(") {
		for !p.acceptOp(")") {
			if p.peek().kind == tokEOF {
				return "", p.errf("unterminated type length")
			}
			p.next()
		}
	}
	return name, nil
}

// parseEncSpec parses (COLUMN_ENCRYPTION_KEY = k, ENCRYPTION_TYPE = t,
// ALGORITHM = 'a'), in any order (Figure 1).
func (p *parser) parseEncSpec() (*EncSpec, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	spec := &EncSpec{}
	for {
		t := p.next()
		if t.kind != tokKeyword {
			return nil, p.errf("expected encryption attribute, got %q", t.text)
		}
		switch t.text {
		case "COLUMN_ENCRYPTION_KEY":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			spec.CEK = name
		case "ENCRYPTION_TYPE":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			tt := p.next()
			switch strings.ToUpper(tt.text) {
			case "RANDOMIZED":
				spec.Scheme = sqltypes.SchemeRandomized
			case "DETERMINISTIC":
				spec.Scheme = sqltypes.SchemeDeterministic
			default:
				return nil, p.errf("unknown ENCRYPTION_TYPE %q", tt.text)
			}
		case "ALGORITHM":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			tt := p.next()
			if tt.kind != tokString {
				return nil, p.errf("ALGORITHM must be a string literal")
			}
			spec.Algorithm = tt.text
		default:
			return nil, p.errf("unknown encryption attribute %q", t.text)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if spec.CEK == "" {
		return nil, p.errf("ENCRYPTED WITH requires COLUMN_ENCRYPTION_KEY")
	}
	if spec.Scheme == sqltypes.SchemePlaintext {
		return nil, p.errf("ENCRYPTED WITH requires ENCRYPTION_TYPE")
	}
	return spec, nil
}

func (p *parser) parseCreateIndex(unique, clustered bool) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	stmt := CreateIndexStmt{Name: name, Table: table, Unique: unique, Clustered: clustered}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseCreateCMK() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := CreateCMKStmt{Name: name}
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokKeyword {
			return nil, p.errf("expected CMK attribute, got %q", t.text)
		}
		switch t.text {
		case "KEY_STORE_PROVIDER_NAME":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			tt := p.next()
			if tt.kind != tokString {
				return nil, p.errf("provider name must be a string")
			}
			stmt.ProviderName = tt.text
		case "KEY_PATH":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			tt := p.next()
			if tt.kind != tokString {
				return nil, p.errf("key path must be a string")
			}
			stmt.KeyPath = tt.text
		case "ENCLAVE_COMPUTATIONS":
			stmt.EnclaveComputations = true
			if p.acceptOp("(") {
				if err := p.expectKeyword("SIGNATURE"); err != nil {
					return nil, err
				}
				if err := p.expectOp("="); err != nil {
					return nil, err
				}
				tt := p.next()
				if tt.kind != tokHex {
					return nil, p.errf("SIGNATURE must be hex")
				}
				b, err := hex.DecodeString(evenHex(tt.text))
				if err != nil {
					return nil, p.errf("bad signature hex")
				}
				stmt.Signature = b
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
		default:
			return nil, p.errf("unknown CMK attribute %q", t.text)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseCreateCEK() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := CreateCEKStmt{Name: name}
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokKeyword {
			return nil, p.errf("expected CEK attribute, got %q", t.text)
		}
		switch t.text {
		case "COLUMN_MASTER_KEY":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			cmk, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.CMK = cmk
		case "ALGORITHM":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			tt := p.next()
			if tt.kind != tokString {
				return nil, p.errf("ALGORITHM must be a string")
			}
			stmt.Algorithm = tt.text
		case "ENCRYPTED_VALUE":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			tt := p.next()
			if tt.kind != tokHex {
				return nil, p.errf("ENCRYPTED_VALUE must be hex")
			}
			b, err := hex.DecodeString(evenHex(tt.text))
			if err != nil {
				return nil, p.errf("bad hex")
			}
			stmt.EncryptedValue = b
		case "SIGNATURE":
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			tt := p.next()
			if tt.kind != tokHex {
				return nil, p.errf("SIGNATURE must be hex")
			}
			b, err := hex.DecodeString(evenHex(tt.text))
			if err != nil {
				return nil, p.errf("bad hex")
			}
			stmt.Signature = b
		default:
			return nil, p.errf("unknown CEK attribute %q", t.text)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseAlter() (Stmt, error) {
	p.next() // ALTER
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("COLUMN"); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	typeName, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	stmt := AlterColumnStmt{Table: table, Column: col, TypeName: typeName, RawText: p.src}
	if p.acceptKeyword("ENCRYPTED") {
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		enc, err := p.parseEncSpec()
		if err != nil {
			return nil, err
		}
		stmt.Enc = enc
	}
	return stmt, nil
}

package engine

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokHex
	tokParam // @name
	tokOp    // operators and punctuation
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; idents original
	pos  int
}

// keywords recognized by the parser. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "UNIQUE": true, "ON": true,
	"PRIMARY": true, "KEY": true, "NOT": true, "NULL": true, "IS": true,
	"LIKE": true, "BETWEEN": true, "LIMIT": true, "JOIN": true, "INNER": true,
	"COLUMN": true, "MASTER": true, "ENCRYPTION": true, "WITH": true,
	"ENCRYPTED": true, "ALTER": true, "ALGORITHM": true, "ENCRYPTION_TYPE": true,
	"COLUMN_ENCRYPTION_KEY": true, "COLUMN_MASTER_KEY": true,
	"KEY_STORE_PROVIDER_NAME": true, "KEY_PATH": true, "ENCLAVE_COMPUTATIONS": true,
	"SIGNATURE": true, "ENCRYPTED_VALUE": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "TRANSACTION": true, "COUNT": true, "MIN": true,
	"MAX": true, "SUM": true, "DISTINCT": true, "RANDOMIZED": true,
	"DETERMINISTIC": true, "CLUSTERED": true, "NONCLUSTERED": true, "AS": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the statement.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '@':
			l.lexParam()
		case c == 'N' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'':
			l.pos++ // N'...' national string literal
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X'):
			l.lexHex()
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("engine: unterminated string literal at %d", start)
}

func (l *lexer) lexParam() {
	start := l.pos
	l.pos++ // @
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	l.emit(token{kind: tokParam, text: l.src[start+1 : l.pos], pos: start})
}

func (l *lexer) lexHex() {
	start := l.pos
	l.pos += 2
	for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
		l.pos++
	}
	l.emit(token{kind: tokHex, text: l.src[start+2 : l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.emit(token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.emit(token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexOp() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		l.emit(token{kind: tokOp, text: two, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '(', ')', ',', '*', '.', '+', '-', ';':
		l.pos++
		l.emit(token{kind: tokOp, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("engine: unexpected character %q at %d", c, start)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool   { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentChar(c byte) bool  { return isIdentStart(c) || isDigit(c) }

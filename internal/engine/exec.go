package engine

import (
	"errors"
	"fmt"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/exprsvc"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// ColumnMeta describes one result column, including the key metadata the
// driver needs to decrypt it (§3: results return encrypted, along with key
// metadata).
type ColumnMeta struct {
	Name string
	Kind sqltypes.Kind
	Enc  sqltypes.EncType
}

// ResultSet is a query result: encrypted columns contain ciphertext cells.
type ResultSet struct {
	Columns  []ColumnMeta
	Rows     [][][]byte
	Affected int
}

// Params maps parameter names to their wire encodings: canonical value
// encodings for plaintext parameters, ciphertext envelopes for encrypted
// ones. The server never sees plaintext for encrypted parameters.
type Params map[string][]byte

// Execute runs one statement on the session. It owns the statement's trace
// lifecycle: the trace starts here (under the client's trace context, if
// the TDS layer installed one), every lifecycle phase and crossing records
// spans against it, and Finish applies the sampling keep policy.
func (s *Session) Execute(query string, params Params) (*ResultSet, error) {
	act := s.engine.tracer.Start(s.traceID, trace.KindUnknown)
	s.traceID = trace.ID{}
	s.act = act
	if s.txn != nil {
		s.txn.act = act // explicit txn: records log under this statement's trace
	}
	rs, err := s.execute(act, query, params)
	if s.txn != nil {
		s.txn.act = nil
	}
	s.act = nil
	act.Finish(err)
	return rs, err
}

// stmtKind classifies a parsed statement for the trace's closed kind enum —
// the only statement description a trace export ever carries.
func stmtKind(st Stmt) trace.Kind {
	switch st.(type) {
	case SelectStmt:
		return trace.KindSelect
	case InsertStmt:
		return trace.KindInsert
	case UpdateStmt:
		return trace.KindUpdate
	case DeleteStmt:
		return trace.KindDelete
	case BeginStmt:
		return trace.KindBegin
	case CommitStmt:
		return trace.KindCommit
	case RollbackStmt:
		return trace.KindRollback
	default:
		return trace.KindDDL
	}
}

func (s *Session) execute(act *trace.Active, query string, params Params) (*ResultSet, error) {
	e := s.engine
	e.execs.Inc()
	planSp := act.StartSpan("plan")
	plan, err := e.getPlan(query, act)
	planSp.End()
	if err != nil {
		return nil, err
	}
	act.SetKind(stmtKind(plan.stmt))
	if e.ReadOnly() {
		// A replica admits reads only: any mutation (including BEGIN, whose
		// log record would fork the replica's mirrored log from the
		// primary's) is rejected until promotion.
		if _, ok := plan.stmt.(SelectStmt); !ok {
			return nil, ErrReadOnly
		}
	}
	hsp := e.spanExec.StartSpan()
	defer hsp.End()
	execSp := act.StartSpan("exec")
	stall0 := e.pool.MissStallNS()
	defer func() {
		// Buffer-pool miss stalls are attributed by cumulative delta: exact
		// for a single session, an upper bound when statements overlap (see
		// BufferPool.MissStallNS).
		if d := e.pool.MissStallNS() - stall0; d > 0 {
			execSp.Attr("bufpool.miss_stall_ns", d)
		}
		execSp.End()
	}()
	switch st := plan.stmt.(type) {
	case BeginStmt:
		return &ResultSet{}, s.Begin()
	case CommitStmt:
		return &ResultSet{}, s.Commit()
	case RollbackStmt:
		return &ResultSet{}, s.Rollback()
	case SelectStmt:
		return s.executeSelect(act, plan, st, params)
	case InsertStmt:
		return s.withTxn(func(t *Txn) (*ResultSet, error) {
			return e.executeInsert(t, plan, params)
		})
	case UpdateStmt:
		return s.withTxn(func(t *Txn) (*ResultSet, error) {
			return e.executeUpdate(t, plan, params)
		})
	case DeleteStmt:
		return s.withTxn(func(t *Txn) (*ResultSet, error) {
			return e.executeDelete(t, plan, params)
		})
	case CreateTableStmt:
		// DDL is logged by statement text; the first heap page id rides in
		// the Row field so a replica materializes the identical page. The
		// append runs inside the catalog's critical section, before the
		// object is visible: a concurrent session's records against the new
		// object can never sequence ahead of the record that creates it.
		_, err := e.createTable(st, storage.InvalidPageID, func(first storage.PageID) {
			e.wal.Append(storage.Record{Type: storage.RecDDL, DDL: query, Row: storage.NewRowID(first, 0)})
		})
		if err != nil {
			return nil, err
		}
		return &ResultSet{}, nil
	case CreateIndexStmt:
		logDDL := func() { e.wal.Append(storage.Record{Type: storage.RecDDL, DDL: query}) }
		if err := e.executeCreateIndex(st, logDDL); err != nil {
			return nil, err
		}
		return &ResultSet{}, nil
	case CreateCMKStmt:
		logDDL := func() { e.wal.Append(storage.Record{Type: storage.RecDDL, DDL: query}) }
		if err := e.executeCreateCMK(st, logDDL); err != nil {
			return nil, err
		}
		return &ResultSet{}, nil
	case CreateCEKStmt:
		logDDL := func() { e.wal.Append(storage.Record{Type: storage.RecDDL, DDL: query}) }
		if err := e.executeCreateCEK(st, logDDL); err != nil {
			return nil, err
		}
		return &ResultSet{}, nil
	case AlterColumnStmt:
		// executeAlterColumn logs its own records: physical rewrites per
		// cell, then a RecAlterEnc carrying the catalog change.
		return &ResultSet{}, s.executeAlterColumn(st)
	default:
		return nil, fmt.Errorf("engine: cannot execute %T", plan.stmt)
	}
}

// withTxn runs fn in the session's transaction, or an autocommit one.
func (s *Session) withTxn(fn func(t *Txn) (*ResultSet, error)) (*ResultSet, error) {
	if s.txn != nil {
		return fn(s.txn)
	}
	t := s.engine.beginTxn(s.act)
	rs, err := fn(t)
	if err != nil {
		if rbErr := s.engine.rollbackTxn(t); rbErr != nil {
			return nil, fmt.Errorf("%w (rollback also failed: %v)", err, rbErr)
		}
		return nil, err
	}
	if err := s.engine.commitTxn(t); err != nil {
		return nil, err
	}
	return rs, nil
}

// resolveValue materializes a ValueExpr into cell bytes under the given
// parameter assignment.
func resolveValue(v ValueExpr, params Params) ([]byte, error) {
	switch ve := v.(type) {
	case ParamExpr:
		b, ok := params[ve.Name]
		if !ok {
			return nil, fmt.Errorf("%w: @%s", ErrUnknownParam, ve.Name)
		}
		return b, nil
	case LiteralExpr:
		return ve.Val.Encode(), nil
	default:
		return nil, errors.New("engine: unresolvable value expression")
	}
}

// evaluator borrows a pooled evaluator for the plan's filter program.
func (p *Plan) evaluator() (*exprsvc.Evaluator, error) {
	if p.filter == nil {
		return nil, nil
	}
	got := p.evalPool.Get()
	if err, ok := got.(error); ok {
		return nil, err
	}
	return got.(*exprsvc.Evaluator), nil
}

// buildSlots assembles the evaluator input: outer cells, inner cells (join),
// then parameter values in plan order.
func (p *Plan) buildSlots(outer, inner [][]byte, params Params) ([][]byte, error) {
	slots := make([][]byte, p.numColSlots+len(p.paramOrder))
	copy(slots, outer)
	if p.join != nil {
		copy(slots[p.numOuterCols:], inner)
	}
	for _, name := range p.paramOrder {
		b, ok := params[name]
		if !ok {
			return nil, fmt.Errorf("%w: @%s", ErrUnknownParam, name)
		}
		slots[p.paramSlot[name]] = b
	}
	return slots, nil
}

// matchedRow is an outer-table row (or joined pair) that survived the
// residual filter. slots stay valid only for the duration of the consumer
// callback — copy anything that must outlive it.
type matchedRow struct {
	rid   storage.RowID
	slots [][]byte // combined slot row (join: outer+inner)
}

// visibleCells resolves a row's cells under a snapshot, given the outcome of
// the heap read. rec is the raw heap record, or nil when the heap did not
// surface the row (deleted). The snapshot chain is consulted strictly AFTER
// the heap bytes were read — writers record pre-images before mutating the
// page, so heap-then-chain reads can never observe an uncommitted mutation
// without also finding its pre-image. A nil snapshot reads the heap as-is.
//
// The second return reports visibility: false means the row does not exist
// in this snapshot (uncommitted insert, or deleted before the snapshot).
func visibleCells(snap *storage.Snapshot, table string, rid storage.RowID, rec []byte) ([][]byte, bool, error) {
	if snap != nil {
		if img, overridden := snap.RowImage(table, rid); overridden {
			if img == nil {
				return nil, false, nil
			}
			// Version images are stable copies owned by the version store;
			// no arena copy is needed.
			cells, err := decodeRow(img)
			if err != nil {
				return nil, false, err
			}
			return cells, true, nil
		}
	}
	if rec == nil {
		return nil, false, nil
	}
	cells, err := decodeRow(rec)
	if err != nil {
		return nil, false, err
	}
	return cells, true, nil
}

// iterateOuter streams outer-table rows through the access path and the
// batched residual filter: candidate rows accumulate in a rowBatcher and the
// filter program runs once per batch (one enclave crossing per batch for
// enclave predicates, §4.6). fn receives surviving rows — for joins, one
// call per joined pair — in the same order row-at-a-time execution would
// produce.
//
// snap, when non-nil, makes the iteration a snapshot read: every row image is
// resolved through the version store's visibility rules, and rows the access
// path no longer surfaces (deleted, or index keys moved by post-snapshot
// commits) are recovered from the snapshot's ghost pass. Ghost rows run
// through the same residual filter as live rows — the filter program carries
// every predicate plus the join equality conjunct, so a ghost that no longer
// matches is rejected exactly like a live non-match.
func (e *Engine) iterateOuter(act *trace.Active, plan *Plan, params Params, snap *storage.Snapshot, fn func(m *matchedRow) (bool, error)) error {
	ev, err := plan.evaluator()
	if err != nil {
		return err
	}
	if ev != nil {
		// The evaluator is pooled across sessions: attach the statement's
		// trace for the duration of this iteration and detach before Put.
		ev.SetTrace(act)
		defer func() {
			ev.SetTrace(nil)
			plan.evalPool.Put(ev)
		}()
	}
	b := &rowBatcher{plan: plan, ev: ev, fn: fn, size: e.batch}

	probe := func(rid storage.RowID, cells [][]byte) error {
		if plan.join == nil {
			slots, err := plan.buildSlots(cells, nil, params)
			if err != nil {
				return err
			}
			return b.add(rid, slots)
		}
		return e.probeJoin(plan, b, rid, cells, params, snap)
	}

	// seen tracks which row ids the access path already resolved, so the
	// ghost pass emits only rows the path missed. It is maintained whenever
	// a snapshot is active — version chains can appear mid-scan, so there is
	// no safe "table untouched" fast path for the scan as a whole.
	var seen map[storage.RowID]bool
	if snap != nil {
		seen = make(map[storage.RowID]bool)
	}
	seenFn := func(r storage.RowID) bool { return seen[r] }

	ghostPass := func() error {
		if snap == nil {
			return nil
		}
		for _, g := range snap.Ghosts(plan.table.Name, seenFn) {
			cells, err := decodeRow(g.Data)
			if err != nil {
				return err
			}
			if err := probe(g.Row, cells); err != nil {
				return err
			}
			if b.stopped {
				return nil
			}
		}
		return nil
	}

	if plan.access.index != nil {
		entries, err := e.indexEntries(plan, params)
		if err != nil {
			return err
		}
		e.seeks.Add(1)
		for _, ent := range entries {
			rec, err := plan.table.Heap.Get(ent.Row)
			if err != nil {
				// The index may briefly point at rows deleted by concurrent
				// transactions; the snapshot chain (consulted below) decides
				// whether a pre-image is still visible.
				rec = nil
			}
			if seen != nil {
				seen[ent.Row] = true
			}
			cells, vis, err := visibleCells(snap, plan.table.Name, ent.Row, rec)
			if err != nil {
				return err
			}
			if !vis {
				continue
			}
			if err := probe(ent.Row, cells); err != nil {
				return err
			}
			if b.stopped {
				return nil
			}
		}
		if err := ghostPass(); err != nil {
			return err
		}
		if b.stopped {
			return nil
		}
		return b.flush()
	}

	e.scans.Add(1)
	stop := errors.New("stop")
	err = plan.table.Heap.Scan(func(rid storage.RowID, rec []byte) (bool, error) {
		var cells [][]byte
		if snap != nil {
			seen[rid] = true
			// Single RowImage consult, after the heap bytes are in hand (the
			// scan callback runs under the page read latch).
			if img, overridden := snap.RowImage(plan.table.Name, rid); overridden {
				if img == nil {
					return true, nil // row not visible in this snapshot
				}
				c, err := decodeRow(img)
				if err != nil {
					return false, err
				}
				cells = c // version-store image: stable memory, no arena copy
			} else {
				c, err := decodeRow(rec)
				if err != nil {
					return false, err
				}
				cells = b.arena.copyRow(c)
			}
		} else {
			var err error
			cells, err = decodeRow(rec)
			if err != nil {
				return false, err
			}
			// Heap scan cells alias page memory: copy into the batch arena,
			// reclaimed wholesale once the batch drains instead of one heap
			// allocation per cell whether or not the row survives the filter.
			cells = b.arena.copyRow(cells)
		}
		if err := probe(rid, cells); err != nil {
			return false, err
		}
		if b.stopped {
			return false, stop
		}
		return true, nil
	})
	if err != nil && !errors.Is(err, stop) {
		return err
	}
	if !b.stopped {
		if err := ghostPass(); err != nil {
			return err
		}
	}
	if b.stopped {
		return nil
	}
	return b.flush()
}

// probeJoin probes the inner table for one outer row, feeding joined pairs
// into the shared batch. Pairs accumulate ACROSS outer rows — a per-outer
// batch would hold only the handful of pairs one outer row produces and
// amortize nothing.
//
// Under a snapshot, inner rows resolve through the same visibility rules as
// the outer side, and inner rows the probe missed (deleted, or index key
// moved by a post-snapshot commit) are recovered from the snapshot's ghost
// pass. Ghosts are not pre-filtered by join key bytes — for enclave-ordered
// encrypted columns byte equality is not value equality — so every unseen
// ghost goes through the filter program, which carries the join equality
// conjunct and evaluates it correctly for every scheme.
func (e *Engine) probeJoin(plan *Plan, b *rowBatcher, rid storage.RowID, outer [][]byte,
	params Params, snap *storage.Snapshot) error {
	j := plan.join
	// The outer row's cells (arena-backed on the heap-scan path) are shared
	// by every pair this probe adds; pin the arena so an intermediate flush
	// cannot reclaim them while more pairs are coming.
	b.pinned = true
	defer func() {
		b.pinned = false
		b.maybeReset()
	}()

	add := func(inner [][]byte) error {
		slots, err := plan.buildSlots(outer, inner, params)
		if err != nil {
			return err
		}
		return b.add(rid, slots)
	}

	var seen map[storage.RowID]bool
	if snap != nil {
		seen = make(map[storage.RowID]bool)
	}
	ghostPass := func() error {
		if snap == nil {
			return nil
		}
		for _, g := range snap.Ghosts(j.table.Name, func(r storage.RowID) bool { return seen[r] }) {
			cells, err := decodeRow(g.Data)
			if err != nil {
				return err
			}
			if err := add(cells); err != nil {
				return err
			}
			if b.stopped {
				return nil
			}
		}
		return nil
	}

	if j.innerIndex != nil {
		joinKey := [][]byte{nil}
		if j.outerCol < len(outer) {
			joinKey[0] = outer[j.outerCol]
		}
		if len(joinKey[0]) == 0 {
			return nil // NULL joins nothing
		}
		entries, err := j.innerIndex.Tree.SeekExact(joinKey, 0)
		if err != nil {
			return err
		}
		e.seeks.Add(1)
		for _, ent := range entries {
			rec, err := j.table.Heap.Get(ent.Row)
			if err != nil {
				rec = nil
			}
			if seen != nil {
				seen[ent.Row] = true
			}
			cells, vis, err := visibleCells(snap, j.table.Name, ent.Row, rec)
			if err != nil {
				return err
			}
			if !vis {
				continue
			}
			if err := add(cells); err != nil {
				return err
			}
			if b.stopped {
				return nil
			}
		}
		return ghostPass()
	}

	// Inner scan: the join equality is part of the filter program.
	e.scans.Add(1)
	stop := errors.New("stop")
	err := j.table.Heap.Scan(func(irid storage.RowID, rec []byte) (bool, error) {
		var cells [][]byte
		if snap != nil {
			seen[irid] = true
			if img, overridden := snap.RowImage(j.table.Name, irid); overridden {
				if img == nil {
					return true, nil
				}
				c, err := decodeRow(img)
				if err != nil {
					return false, err
				}
				cells = c // stable version-store memory
			} else {
				c, err := decodeRow(rec)
				if err != nil {
					return false, err
				}
				cells = b.arena.copyRow(c)
			}
		} else {
			c, err := decodeRow(rec)
			if err != nil {
				return false, err
			}
			cells = b.arena.copyRow(c)
		}
		if err := add(cells); err != nil {
			return false, err
		}
		if b.stopped {
			return false, stop
		}
		return true, nil
	})
	if err != nil && !errors.Is(err, stop) {
		return err
	}
	if b.stopped {
		return nil
	}
	return ghostPass()
}

// indexEntries executes the plan's index access path.
func (e *Engine) indexEntries(plan *Plan, params Params) ([]indexEntry, error) {
	a := &plan.access
	prefix := make([][]byte, 0, len(a.eqVals)+1)
	for _, v := range a.eqVals {
		b, err := resolveValue(v, params)
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			return nil, nil // comparison with NULL matches nothing
		}
		prefix = append(prefix, b)
	}

	lo, hi := prefix, prefix
	loInc, hiInc := true, true
	if a.rangeOn >= 0 {
		var loB, hiB []byte
		var err error
		if a.rangeLo != nil {
			if loB, err = resolveValue(a.rangeLo, params); err != nil {
				return nil, err
			}
			if len(loB) == 0 {
				return nil, nil
			}
		}
		if a.rangeHi != nil {
			if hiB, err = resolveValue(a.rangeHi, params); err != nil {
				return nil, err
			}
			if len(hiB) == 0 {
				return nil, nil
			}
		}
		if loB != nil {
			lo = append(append([][]byte{}, prefix...), loB)
			loInc = a.rangeOp != PredGT
		}
		if hiB != nil {
			hi = append(append([][]byte{}, prefix...), hiB)
			hiInc = a.rangeOp != PredLT
		}
	}
	if len(lo) == 0 {
		lo = nil
	}
	if len(hi) == 0 {
		hi = nil
	}
	entries, err := a.index.Tree.ScanRange(lo, hi, loInc, hiInc, 0)
	if err != nil {
		return nil, err
	}
	out := make([]indexEntry, len(entries))
	for i, ent := range entries {
		out[i] = indexEntry{Row: ent.Row}
	}
	return out, nil
}

type indexEntry struct {
	Row storage.RowID
}

// executeSelect runs a SELECT and materializes the result set.
//
// Snapshot policy: inside an explicit transaction the SELECT reads through
// the transaction's snapshot (acquired lazily at the first read and held to
// commit/rollback — repeatable reads, plus visibility of the transaction's
// own writes). An autocommit SELECT takes a statement-local snapshot with no
// self transaction and releases it when the statement finishes. Readers
// never touch the lock manager — write-write conflicts remain its only job.
func (s *Session) executeSelect(act *trace.Active, plan *Plan, st SelectStmt, params Params) (*ResultSet, error) {
	e := s.engine
	var snap *storage.Snapshot
	if s.txn != nil {
		snap = s.txn.snapshot()
	} else {
		snap = e.versions.Acquire(0)
		defer snap.Release()
	}
	rs := &ResultSet{}
	for _, item := range plan.items {
		rs.Columns = append(rs.Columns, ColumnMeta{Name: item.name, Kind: item.kind, Enc: item.enc})
	}

	hasAgg := false
	for _, item := range plan.items {
		if item.agg != AggNone {
			hasAgg = true
			break
		}
	}

	if !hasAgg {
		err := e.iterateOuter(act, plan, params, snap, func(m *matchedRow) (bool, error) {
			row := make([][]byte, len(plan.items))
			for i, item := range plan.items {
				if item.slot < len(m.slots) && len(m.slots[item.slot]) > 0 {
					row[i] = append([]byte(nil), m.slots[item.slot]...)
				}
			}
			rs.Rows = append(rs.Rows, row)
			return st.Limit == 0 || len(rs.Rows) < st.Limit, nil
		})
		if err != nil {
			return nil, err
		}
		return rs, nil
	}

	// Single-group aggregation.
	aggs := make([]*aggState, len(plan.items))
	for i := range plan.items {
		aggs[i] = &aggState{distinct: make(map[string]bool)}
	}
	err := e.iterateOuter(act, plan, params, snap, func(m *matchedRow) (bool, error) {
		for i, item := range plan.items {
			var cell []byte
			if item.slot >= 0 && item.slot < len(m.slots) {
				cell = m.slots[item.slot]
			}
			if err := aggs[i].accumulate(item.agg, cell, item.slot < 0); err != nil {
				return false, err
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	row := make([][]byte, len(plan.items))
	for i, item := range plan.items {
		row[i] = aggs[i].result(item.agg)
	}
	rs.Rows = append(rs.Rows, row)
	return rs, nil
}

// aggState accumulates one aggregate.
type aggState struct {
	count    int64
	distinct map[string]bool
	min, max sqltypes.Value
	sum      float64
	seen     bool
}

func (a *aggState) accumulate(fn AggFunc, cell []byte, star bool) error {
	switch fn {
	case AggNone:
		return nil
	case AggCount:
		// COUNT(*) counts rows; COUNT(col) skips NULLs.
		if star || len(cell) > 0 {
			a.count++
		}
		return nil
	case AggCountDistinct:
		if len(cell) == 0 {
			return nil
		}
		a.distinct[string(cell)] = true
		return nil
	case AggMin, AggMax, AggSum:
		if len(cell) == 0 {
			return nil
		}
		v, err := sqltypes.Decode(cell)
		if err != nil {
			return err
		}
		if fn == AggSum {
			switch v.Kind {
			case sqltypes.KindInt:
				a.sum += float64(v.I)
			case sqltypes.KindFloat:
				a.sum += v.F
			default:
				return fmt.Errorf("engine: SUM over %s", v.Kind)
			}
			a.seen = true
			return nil
		}
		if !a.seen {
			a.min, a.max, a.seen = v, v, true
			return nil
		}
		if c, err := sqltypes.Compare(v, a.min); err == nil && c < 0 {
			a.min = v
		}
		if c, err := sqltypes.Compare(v, a.max); err == nil && c > 0 {
			a.max = v
		}
		return nil
	default:
		return fmt.Errorf("engine: unknown aggregate %d", fn)
	}
}

func (a *aggState) result(fn AggFunc) []byte {
	switch fn {
	case AggCount:
		return sqltypes.Int(a.count).Encode()
	case AggCountDistinct:
		return sqltypes.Int(int64(len(a.distinct))).Encode()
	case AggMin:
		if !a.seen {
			return nil
		}
		return a.min.Encode()
	case AggMax:
		if !a.seen {
			return nil
		}
		return a.max.Encode()
	case AggSum:
		if !a.seen {
			return nil
		}
		return sqltypes.Float(a.sum).Encode()
	default:
		return nil
	}
}

// validateEncryptedCells rejects statement writes that contradict the column
// encryption metadata: a value bound to an encrypted column must be a
// well-formed ciphertext envelope. This is the server-side half of the §4.1
// describe protocol — a client whose sp_describe_parameter_encryption result
// went stale (the column was encrypted after the describe) sends plaintext,
// and the statement must fail rather than store plaintext in an encrypted
// column. Drivers treat the rejection as a cache-staleness signal: drop the
// cached describe entry and retry once with fresh metadata.
func validateEncryptedCells(tbl *Table, cells [][]byte) error {
	for i, cell := range cells {
		if cell == nil {
			continue
		}
		col := &tbl.Cols[i]
		if col.Enc.IsPlaintext() {
			continue
		}
		if !aecrypto.WellFormedCiphertext(cell) {
			return fmt.Errorf("engine: operand type clash: value for encrypted column %s.%s is not ciphertext (parameter encryption metadata may be stale)",
				tbl.Name, col.Name)
		}
	}
	return nil
}

// executeInsert inserts one row.
func (e *Engine) executeInsert(t *Txn, plan *Plan, params Params) (*ResultSet, error) {
	tbl := plan.table
	cells := make([][]byte, len(tbl.Cols))
	for _, bind := range plan.insertTo {
		b, err := resolveValue(bind.expr, params)
		if err != nil {
			return nil, err
		}
		cells[bind.colPos] = b
	}
	if err := validateEncryptedCells(tbl, cells); err != nil {
		return nil, err
	}
	if _, err := e.insertRow(t, tbl, cells); err != nil {
		return nil, err
	}
	return &ResultSet{Affected: 1}, nil
}

// executeUpdate applies SET clauses to every matching row. Targets are
// discovered without locks, then re-read and re-validated after the row
// lock is acquired — the read-modify-write of `SET n = n + @d` must see the
// latest committed value or updates are lost.
func (e *Engine) executeUpdate(t *Txn, plan *Plan, params Params) (*ResultSet, error) {
	tbl := plan.table
	rids, err := e.collectTargetRIDs(t, plan, params)
	if err != nil {
		return nil, err
	}
	affected := 0
	for _, rid := range rids {
		cells, ok, err := e.lockAndRevalidate(t, plan, params, rid)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		newCells := make([][]byte, len(tbl.Cols))
		copy(newCells, cells)
		for _, set := range plan.sets {
			b, err := e.evalSetExpr(tbl, set.expr, cells, params)
			if err != nil {
				return nil, err
			}
			newCells[set.colPos] = b
		}
		if err := validateEncryptedCells(tbl, newCells); err != nil {
			return nil, err
		}
		if _, err := e.updateRow(t, tbl, rid, cells, newCells); err != nil {
			return nil, err
		}
		affected++
	}
	return &ResultSet{Affected: affected}, nil
}

// collectTargetRIDs materializes the row ids matching the plan (mutating
// while scanning is unsound). Discovery runs under a fresh statement
// snapshot keyed to the transaction — it sees the latest committed state
// plus the transaction's own writes — and every candidate is re-read and
// re-validated under its row lock before mutation, so a stale discovery can
// only skip work, never corrupt it.
func (e *Engine) collectTargetRIDs(t *Txn, plan *Plan, params Params) ([]storage.RowID, error) {
	snap := t.engine.versions.Acquire(t.id)
	defer snap.Release()
	var rids []storage.RowID
	err := t.engine.iterateOuter(t.act, plan, params, snap, func(m *matchedRow) (bool, error) {
		rids = append(rids, m.rid)
		return true, nil
	})
	return rids, err
}

// lockAndRevalidate acquires the row lock, re-reads the current cells and
// re-checks the predicate: between discovery and locking another transaction
// may have changed or deleted the row.
func (e *Engine) lockAndRevalidate(t *Txn, plan *Plan, params Params, rid storage.RowID) ([][]byte, bool, error) {
	if err := e.locks.Lock(t.id, plan.table.Name, rid); err != nil {
		return nil, false, err
	}
	rec, err := plan.table.Heap.Get(rid)
	if err != nil {
		return nil, false, nil // row vanished; predicate no longer matches
	}
	cells, err := decodeRow(rec)
	if err != nil {
		return nil, false, err
	}
	if plan.filter != nil {
		ev, err := plan.evaluator()
		if err != nil {
			return nil, false, err
		}
		ev.SetTrace(t.act)
		defer func() {
			ev.SetTrace(nil)
			plan.evalPool.Put(ev)
		}()
		slots, err := plan.buildSlots(cells, nil, params)
		if err != nil {
			return nil, false, err
		}
		ok, err := ev.EvalBool(slots)
		if err != nil || !ok {
			return nil, false, err
		}
	}
	return cells, true, nil
}

// evalSetExpr computes a SET right-hand side. Parameters and literals pass
// through as bytes; arithmetic decodes plaintext operands and re-encodes.
func (e *Engine) evalSetExpr(tbl *Table, expr ValueExpr, cells [][]byte, params Params) ([]byte, error) {
	switch v := expr.(type) {
	case ParamExpr, LiteralExpr:
		return resolveValue(v, params)
	case ColExpr:
		col, err := tbl.Col(v.Name)
		if err != nil {
			return nil, err
		}
		if col.Pos < len(cells) {
			return cells[col.Pos], nil
		}
		return nil, nil
	case ArithExpr:
		val, err := e.evalArith(tbl, v, cells, params)
		if err != nil {
			return nil, err
		}
		if val.IsNull() {
			return nil, nil
		}
		return val.Encode(), nil
	default:
		return nil, errors.New("engine: unsupported SET expression")
	}
}

func (e *Engine) evalArith(tbl *Table, expr ValueExpr, cells [][]byte, params Params) (sqltypes.Value, error) {
	switch v := expr.(type) {
	case LiteralExpr:
		return v.Val, nil
	case ParamExpr:
		b, ok := params[v.Name]
		if !ok {
			return sqltypes.Value{}, fmt.Errorf("%w: @%s", ErrUnknownParam, v.Name)
		}
		return sqltypes.Decode(b)
	case ColExpr:
		col, err := tbl.Col(v.Name)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if col.Pos >= len(cells) || len(cells[col.Pos]) == 0 {
			return sqltypes.Null(), nil
		}
		return sqltypes.Decode(cells[col.Pos])
	case ArithExpr:
		l, err := e.evalArith(tbl, v.L, cells, params)
		if err != nil {
			return sqltypes.Value{}, err
		}
		r, err := e.evalArith(tbl, v.R, cells, params)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null(), nil
		}
		return arith(v.Op, l, r)
	default:
		return sqltypes.Value{}, errors.New("engine: unsupported arithmetic operand")
	}
}

func arith(op byte, l, r sqltypes.Value) (sqltypes.Value, error) {
	if l.Kind == sqltypes.KindInt && r.Kind == sqltypes.KindInt {
		switch op {
		case '+':
			return sqltypes.Int(l.I + r.I), nil
		case '-':
			return sqltypes.Int(l.I - r.I), nil
		case '*':
			return sqltypes.Int(l.I * r.I), nil
		}
	}
	lf, rf := toFloat(l), toFloat(r)
	switch op {
	case '+':
		return sqltypes.Float(lf + rf), nil
	case '-':
		return sqltypes.Float(lf - rf), nil
	case '*':
		return sqltypes.Float(lf * rf), nil
	}
	return sqltypes.Value{}, fmt.Errorf("engine: unsupported operator %c", op)
}

func toFloat(v sqltypes.Value) float64 {
	if v.Kind == sqltypes.KindInt {
		return float64(v.I)
	}
	return v.F
}

// executeDelete removes every matching row, re-validating under the lock.
func (e *Engine) executeDelete(t *Txn, plan *Plan, params Params) (*ResultSet, error) {
	tbl := plan.table
	rids, err := e.collectTargetRIDs(t, plan, params)
	if err != nil {
		return nil, err
	}
	affected := 0
	for _, rid := range rids {
		cells, ok, err := e.lockAndRevalidate(t, plan, params, rid)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := e.deleteRow(t, tbl, rid, cells); err != nil {
			return nil, err
		}
		affected++
	}
	return &ResultSet{Affected: affected}, nil
}

package engine

import (
	"bytes"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"testing"
	"time"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/exprsvc"
	"alwaysencrypted/internal/keys"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// testEnv is a full server-plus-trusted-client fixture: engine, enclave,
// HGS, vault, provisioned keys, and a client emulation that performs the
// driver's half of the protocols (attestation, CEK install, parameter
// encryption).
type testEnv struct {
	t         *testing.T
	engine    *Engine
	store     *storage.MemStore
	encl      *enclave.Enclave
	host      *attestation.Host
	hgs       *attestation.HGS
	vault     *keys.MemoryVault
	author    *attestation.Measurement
	authorKey *rsa.PrivateKey
	session   *Session

	// client-side secrets
	cekRoots map[string][]byte
	cellKeys map[string]*aecrypto.CellKey
	secret   [32]byte
	nonce    uint64
	policy   attestation.Policy
}

func newTestEnv(t *testing.T, ctr bool) *testEnv {
	t.Helper()
	env := &testEnv{t: t, cekRoots: map[string][]byte{}, cellKeys: map[string]*aecrypto.CellKey{}}

	authorKey, err := aecrypto.GenerateRSAKey()
	if err != nil {
		t.Fatal(err)
	}
	env.authorKey = authorKey
	image, err := enclave.SignImage(authorKey, []byte("es-enclave"), 2)
	if err != nil {
		t.Fatal(err)
	}
	env.encl, err = enclave.Load(image, 10, enclave.Options{
		Threads: 2, SpinDuration: 2 * time.Microsecond, CrossingCost: 50 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.encl.Close)

	env.hgs, err = attestation.NewHGS()
	if err != nil {
		t.Fatal(err)
	}
	tcg := []byte("test-host-boot")
	env.host, err = attestation.NewHost(tcg, 10)
	if err != nil {
		t.Fatal(err)
	}
	env.hgs.RegisterHost(tcg)
	id := image.AuthorID()
	env.author = &id
	env.policy = attestation.Policy{
		HGSKey:            env.hgs.SigningKey(),
		TrustedAuthorIDs:  []attestation.Measurement{id},
		MinEnclaveVersion: 2,
		MinHostVersion:    10,
	}

	env.store = storage.NewMemStore()
	env.engine = New(Config{Enclave: env.encl, Host: env.host, HGS: env.hgs, CTR: ctr, Store: env.store})
	env.session = env.engine.NewSession()

	env.vault = keys.NewMemoryVault(keys.ProviderVault)
	return env
}

// mustExec runs a statement expecting success.
func (env *testEnv) mustExec(query string, params Params) *ResultSet {
	env.t.Helper()
	rs, err := env.session.Execute(query, params)
	if err != nil {
		env.t.Fatalf("exec %q: %v", query, err)
	}
	return rs
}

// provisionKeys creates a CMK in the vault and registers CMK + CEK metadata
// through SQL DDL, as the client tooling of §2.4.1 would.
func (env *testEnv) provisionKeys(cmkName, cekName string, enclaveEnabled bool) {
	env.t.Helper()
	path := "https://vault.test/keys/" + cmkName
	if _, err := env.vault.CreateKey(path); err != nil {
		env.t.Fatal(err)
	}
	cmk, err := keys.ProvisionCMK(env.vault, cmkName, path, enclaveEnabled)
	if err != nil {
		env.t.Fatal(err)
	}
	cek, root, err := keys.ProvisionCEK(env.vault, cmk, cekName)
	if err != nil {
		env.t.Fatal(err)
	}
	env.cekRoots[cekName] = root
	env.cellKeys[cekName] = aecrypto.MustCellKey(root)

	enclClause := ""
	if enclaveEnabled {
		enclClause = fmt.Sprintf(", ENCLAVE_COMPUTATIONS (SIGNATURE = 0x%x)", cmk.Signature)
	}
	env.mustExec(fmt.Sprintf(
		"CREATE COLUMN MASTER KEY %s WITH (KEY_STORE_PROVIDER_NAME = '%s', KEY_PATH = '%s'%s)",
		cmkName, keys.ProviderVault, path, enclClause), nil)
	val := cek.PrimaryValue()
	env.mustExec(fmt.Sprintf(
		"CREATE COLUMN ENCRYPTION KEY %s WITH VALUES (COLUMN_MASTER_KEY = %s, ALGORITHM = 'RSA_OAEP', ENCRYPTED_VALUE = 0x%s, SIGNATURE = 0x%s)",
		cekName, cmkName, hex.EncodeToString(val.EncryptedValue), hex.EncodeToString(val.Signature)), nil)
}

// attest performs the client side of attestation for a query that needs the
// enclave, deriving the shared secret and verifying the §4.2 chain.
func (env *testEnv) attest(query string) *DescribeResult {
	env.t.Helper()
	dh, err := attestation.NewClientDH()
	if err != nil {
		env.t.Fatal(err)
	}
	desc, info, _, err := env.session.DescribeWithAttestation(query, dh.PublicKey().Bytes())
	if err != nil {
		env.t.Fatalf("describe %q: %v", query, err)
	}
	if info == nil {
		env.t.Fatalf("no attestation info for enclave query %q", query)
	}
	secret, err := env.policy.Verify(info, dh)
	if err != nil {
		env.t.Fatalf("attestation verify: %v", err)
	}
	env.secret = secret
	return desc
}

// installCEKs ships the named CEKs to the enclave over the secure channel.
func (env *testEnv) installCEKs(names ...string) {
	env.t.Helper()
	for _, name := range names {
		env.nonce++
		sealed, err := enclave.SealForSession(env.secret, env.nonce, "cek:"+name, env.cekRoots[name])
		if err != nil {
			env.t.Fatal(err)
		}
		if err := env.session.InstallCEK(name, env.nonce, sealed); err != nil {
			env.t.Fatalf("install CEK %s: %v", name, err)
		}
	}
}

// authorizeDDL seals the statement hash for the session (§3.2).
func (env *testEnv) authorizeDDL(stmtText string) {
	env.t.Helper()
	h := sha256.Sum256([]byte(stmtText))
	env.nonce++
	sealed, err := enclave.SealForSession(env.secret, env.nonce, "authorize-ddl", h[:])
	if err != nil {
		env.t.Fatal(err)
	}
	if err := env.session.AuthorizeStatement(env.nonce, sealed); err != nil {
		env.t.Fatal(err)
	}
}

// enc encrypts a value as the driver would for a parameter or stored cell.
func (env *testEnv) enc(cek string, v sqltypes.Value, typ aecrypto.EncryptionType) []byte {
	env.t.Helper()
	ct, err := env.cellKeys[cek].Encrypt(v.Encode(), typ)
	if err != nil {
		env.t.Fatal(err)
	}
	return ct
}

// dec decrypts a result cell.
func (env *testEnv) dec(cek string, ct []byte) sqltypes.Value {
	env.t.Helper()
	pt, err := env.cellKeys[cek].Decrypt(ct)
	if err != nil {
		env.t.Fatalf("decrypt: %v", err)
	}
	v, err := sqltypes.Decode(pt)
	if err != nil {
		env.t.Fatal(err)
	}
	return v
}

func intParam(v int64) []byte     { return sqltypes.Int(v).Encode() }
func strParam(s string) []byte    { return sqltypes.Str(s).Encode() }
func floatParam(f float64) []byte { return sqltypes.Float(f).Encode() }

// --- basic plaintext SQL ---

func TestPlaintextCRUD(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE accounts (id int PRIMARY KEY, balance float, owner varchar(30))", nil)
	for i := int64(1); i <= 10; i++ {
		env.mustExec("INSERT INTO accounts (id, balance, owner) VALUES (@id, @b, @o)", Params{
			"id": intParam(i), "b": floatParam(float64(i) * 100), "o": strParam(fmt.Sprintf("owner-%d", i)),
		})
	}
	rs := env.mustExec("SELECT id, balance FROM accounts WHERE id = @id", Params{"id": intParam(3)})
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	v, _ := sqltypes.Decode(rs.Rows[0][1])
	if v.F != 300 {
		t.Fatalf("balance = %v", v)
	}

	rs = env.mustExec("SELECT id FROM accounts WHERE balance > @b", Params{"b": floatParam(750)})
	if len(rs.Rows) != 3 {
		t.Fatalf("range rows = %d", len(rs.Rows))
	}

	rs = env.mustExec("UPDATE accounts SET balance = balance + @d WHERE id = @id",
		Params{"d": floatParam(50), "id": intParam(3)})
	if rs.Affected != 1 {
		t.Fatalf("affected = %d", rs.Affected)
	}
	rs = env.mustExec("SELECT balance FROM accounts WHERE id = @id", Params{"id": intParam(3)})
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.F != 350 {
		t.Fatalf("after update: %v", v)
	}

	rs = env.mustExec("DELETE FROM accounts WHERE id = @id", Params{"id": intParam(3)})
	if rs.Affected != 1 {
		t.Fatal("delete failed")
	}
	rs = env.mustExec("SELECT COUNT(*) FROM accounts", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 9 {
		t.Fatalf("count = %v", v)
	}
}

func TestPrimaryKeyUniqueViolation(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	env.mustExec("INSERT INTO t (id, v) VALUES (@id, @v)", Params{"id": intParam(1), "v": intParam(1)})
	_, err := env.session.Execute("INSERT INTO t (id, v) VALUES (@id, @v)",
		Params{"id": intParam(1), "v": intParam(2)})
	if err == nil {
		t.Fatal("duplicate PK accepted")
	}
	// The failed insert must not leave a partial row behind.
	rs := env.mustExec("SELECT COUNT(*) FROM t", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 1 {
		t.Fatalf("count = %v", v)
	}
}

func TestAggregates(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE m (id int PRIMARY KEY, grp int, val float)", nil)
	for i := int64(1); i <= 6; i++ {
		env.mustExec("INSERT INTO m (id, grp, val) VALUES (@i, @g, @v)", Params{
			"i": intParam(i), "g": intParam(i % 2), "v": floatParam(float64(i)),
		})
	}
	rs := env.mustExec("SELECT COUNT(*), MIN(val), MAX(val), SUM(val), COUNT(DISTINCT grp) FROM m", nil)
	vals := make([]sqltypes.Value, 5)
	for i := range vals {
		vals[i], _ = sqltypes.Decode(rs.Rows[0][i])
	}
	if vals[0].I != 6 || vals[1].F != 1 || vals[2].F != 6 || vals[3].F != 21 || vals[4].I != 2 {
		t.Fatalf("aggs = %v", vals)
	}
}

func TestJoinPlaintext(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE dept (id int PRIMARY KEY, dname varchar(20))", nil)
	env.mustExec("CREATE TABLE emp (eid int PRIMARY KEY, did int, ename varchar(20))", nil)
	for i := int64(1); i <= 3; i++ {
		env.mustExec("INSERT INTO dept (id, dname) VALUES (@i, @n)",
			Params{"i": intParam(i), "n": strParam(fmt.Sprintf("dept-%d", i))})
	}
	for i := int64(1); i <= 9; i++ {
		env.mustExec("INSERT INTO emp (eid, did, ename) VALUES (@e, @d, @n)",
			Params{"e": intParam(i), "d": intParam(i%3 + 1), "n": strParam(fmt.Sprintf("emp-%d", i))})
	}
	rs := env.mustExec("SELECT emp.ename, dept.dname FROM emp JOIN dept ON emp.did = dept.id WHERE dept.id = @d",
		Params{"d": intParam(2)})
	if len(rs.Rows) != 3 {
		t.Fatalf("join rows = %d", len(rs.Rows))
	}
	for _, row := range rs.Rows {
		d, _ := sqltypes.Decode(row[1])
		if d.S != "dept-2" {
			t.Fatalf("wrong dept: %v", d)
		}
	}
}

func TestTransactionsCommitRollback(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	env.mustExec("INSERT INTO t (id, v) VALUES (@i, @v)", Params{"i": intParam(1), "v": intParam(10)})

	env.mustExec("BEGIN TRANSACTION", nil)
	env.mustExec("UPDATE t SET v = @v WHERE id = @i", Params{"v": intParam(99), "i": intParam(1)})
	env.mustExec("INSERT INTO t (id, v) VALUES (@i, @v)", Params{"i": intParam(2), "v": intParam(20)})
	env.mustExec("ROLLBACK", nil)

	rs := env.mustExec("SELECT v FROM t WHERE id = @i", Params{"i": intParam(1)})
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 10 {
		t.Fatalf("rollback lost: v = %v", v)
	}
	rs = env.mustExec("SELECT COUNT(*) FROM t", nil)
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 1 {
		t.Fatalf("rolled-back insert visible: count = %v", v)
	}

	env.mustExec("BEGIN TRANSACTION", nil)
	env.mustExec("UPDATE t SET v = @v WHERE id = @i", Params{"v": intParam(42), "i": intParam(1)})
	env.mustExec("COMMIT", nil)
	rs = env.mustExec("SELECT v FROM t WHERE id = @i", Params{"i": intParam(1)})
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 42 {
		t.Fatalf("commit lost: v = %v", v)
	}
}

func TestWriteLocksPreventLostUpdates(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE c (id int PRIMARY KEY, n int)", nil)
	env.mustExec("INSERT INTO c (id, n) VALUES (@i, @n)", Params{"i": intParam(1), "n": intParam(0)})

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			s := env.engine.NewSession()
			for i := 0; i < 25; i++ {
				if _, err := s.Execute("UPDATE c SET n = n + @d WHERE id = @i",
					Params{"d": intParam(1), "i": intParam(1)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	rs := env.mustExec("SELECT n FROM c WHERE id = @i", Params{"i": intParam(1)})
	if v, _ := sqltypes.Decode(rs.Rows[0][0]); v.I != 200 {
		t.Fatalf("n = %v (lost updates)", v)
	}
}

// --- DET (AEv1) behaviour ---

func TestDETEqualityQueries(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", false) // enclave-disabled: pure AEv1
	env.mustExec(`CREATE TABLE customers (id int PRIMARY KEY,
		ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)

	// The driver-side: encrypt parameters deterministically.
	ssns := []string{"111-11-1111", "222-22-2222", "111-11-1111"}
	for i, ssn := range ssns {
		env.mustExec("INSERT INTO customers (id, ssn) VALUES (@id, @ssn)", Params{
			"id": intParam(int64(i + 1)), "ssn": env.enc("CEK1", sqltypes.Str(ssn), aecrypto.Deterministic),
		})
	}
	// Point lookup over ciphertext equality.
	rs := env.mustExec("SELECT id FROM customers WHERE ssn = @s",
		Params{"s": env.enc("CEK1", sqltypes.Str("111-11-1111"), aecrypto.Deterministic)})
	if len(rs.Rows) != 2 {
		t.Fatalf("DET equality rows = %d", len(rs.Rows))
	}
	// The server-side bytes must be ciphertext, not the plaintext encoding.
	rsAll := env.mustExec("SELECT ssn FROM customers WHERE id = @i", Params{"i": intParam(1)})
	stored := rsAll.Rows[0][0]
	if bytes.Equal(stored, sqltypes.Str("111-11-1111").Encode()) {
		t.Fatal("SSN stored in plaintext!")
	}
	if got := env.dec("CEK1", stored); got.S != "111-11-1111" {
		t.Fatalf("decrypted = %v", got)
	}
}

func TestDETRangeRejectedAndRNDWithoutEnclaveRejected(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", false)
	env.mustExec(`CREATE TABLE t (id int PRIMARY KEY,
		d varchar(10) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),
		r varchar(10) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)

	if _, err := env.session.Execute("SELECT id FROM t WHERE d < @v", Params{"v": []byte{1}}); !errors.Is(err, sqltypes.ErrTypeConflict) {
		t.Fatalf("range over DET: %v", err)
	}
	if _, err := env.session.Execute("SELECT id FROM t WHERE r = @v", Params{"v": []byte{1}}); !errors.Is(err, sqltypes.ErrTypeConflict) {
		t.Fatalf("equality over enclave-disabled RND: %v", err)
	}
	// Fetching an enclave-disabled RND column in the SELECT list is fine.
	if _, err := env.session.Execute("SELECT r FROM t WHERE id = @i", Params{"i": intParam(1)}); err != nil {
		t.Fatalf("projection of RND column: %v", err)
	}
}

func TestLiteralAgainstEncryptedRejected(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", false)
	env.mustExec(`CREATE TABLE t (id int PRIMARY KEY,
		d varchar(10) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	if _, err := env.session.Execute("SELECT id FROM t WHERE d = 'plain'", nil); !errors.Is(err, exprsvc.ErrNotParameterized) {
		t.Fatalf("literal vs encrypted: %v", err)
	}
}

func TestDescribeParameterEncryption(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", true)
	env.mustExec(`CREATE TABLE T (id int PRIMARY KEY,
		value int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)

	// Example 4.1: the describe output says @v is RND under CEK1 and CEK1
	// must go to the enclave.
	desc, err := env.engine.Describe("SELECT * FROM T WHERE value = @v")
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.Params) != 1 || desc.Params[0].Name != "v" {
		t.Fatalf("params = %+v", desc.Params)
	}
	enc := desc.Params[0].Enc
	if enc.Scheme != sqltypes.SchemeRandomized || enc.CEKName != "CEK1" || !enc.EnclaveEnabled {
		t.Fatalf("param enc = %+v", enc)
	}
	if !desc.NeedsEnclave || len(desc.EnclaveCEKs) != 1 || desc.EnclaveCEKs[0] != "CEK1" {
		t.Fatalf("enclave: %v %v", desc.NeedsEnclave, desc.EnclaveCEKs)
	}
	if _, ok := desc.CEKs["CEK1"]; !ok {
		t.Fatal("CEK metadata missing")
	}
	if _, ok := desc.CMKs["CMK1"]; !ok {
		t.Fatal("CMK metadata missing")
	}
	// Plaintext parameter on a plaintext column: no enclave, no encryption.
	desc, err = env.engine.Describe("SELECT * FROM T WHERE id = @i")
	if err != nil {
		t.Fatal(err)
	}
	if desc.NeedsEnclave || !desc.Params[0].Enc.IsPlaintext() {
		t.Fatalf("plaintext describe = %+v", desc)
	}
}

// --- enclave-backed (AEv2) behaviour ---

// setupRNDTable provisions an enclave-enabled RND column, attests and
// installs keys, returning the env.
func setupRNDTable(t *testing.T, ctr bool) *testEnv {
	env := newTestEnv(t, ctr)
	env.provisionKeys("CMK1", "CEK1", true)
	env.mustExec(`CREATE TABLE T (id int PRIMARY KEY,
		value int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	env.attest("SELECT * FROM T WHERE value = @v")
	env.installCEKs("CEK1")
	return env
}

func TestEnclaveEqualityOverRND(t *testing.T) {
	env := setupRNDTable(t, false)
	for i := int64(1); i <= 20; i++ {
		env.mustExec("INSERT INTO T (id, value) VALUES (@id, @v)", Params{
			"id": intParam(i), "v": env.enc("CEK1", sqltypes.Int(i%5), aecrypto.Randomized),
		})
	}
	rs := env.mustExec("SELECT id FROM T WHERE value = @v",
		Params{"v": env.enc("CEK1", sqltypes.Int(3), aecrypto.Randomized)})
	if len(rs.Rows) != 4 {
		t.Fatalf("RND equality rows = %d", len(rs.Rows))
	}
	evals := env.encl.Dump().Evaluations
	if evals == 0 {
		t.Fatal("no enclave evaluations recorded")
	}
}

func TestEnclaveRangeAndBetween(t *testing.T) {
	env := setupRNDTable(t, false)
	for i := int64(1); i <= 20; i++ {
		env.mustExec("INSERT INTO T (id, value) VALUES (@id, @v)", Params{
			"id": intParam(i), "v": env.enc("CEK1", sqltypes.Int(i), aecrypto.Randomized),
		})
	}
	rs := env.mustExec("SELECT id FROM T WHERE value > @lo",
		Params{"lo": env.enc("CEK1", sqltypes.Int(15), aecrypto.Randomized)})
	if len(rs.Rows) != 5 {
		t.Fatalf("> rows = %d", len(rs.Rows))
	}
	rs = env.mustExec("SELECT id FROM T WHERE value BETWEEN @lo AND @hi", Params{
		"lo": env.enc("CEK1", sqltypes.Int(5), aecrypto.Randomized),
		"hi": env.enc("CEK1", sqltypes.Int(8), aecrypto.Randomized),
	})
	if len(rs.Rows) != 4 {
		t.Fatalf("between rows = %d", len(rs.Rows))
	}
}

func TestEnclaveLikeOverRND(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", true)
	env.mustExec(`CREATE TABLE people (id int PRIMARY KEY,
		name varchar(30) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	env.attest("SELECT id FROM people WHERE name LIKE @p")
	env.installCEKs("CEK1")
	for i, name := range []string{"SMITH", "SMYTHE", "JONES", "SMALL"} {
		env.mustExec("INSERT INTO people (id, name) VALUES (@id, @n)", Params{
			"id": intParam(int64(i + 1)), "n": env.enc("CEK1", sqltypes.Str(name), aecrypto.Randomized),
		})
	}
	rs := env.mustExec("SELECT id FROM people WHERE name LIKE @p",
		Params{"p": env.enc("CEK1", sqltypes.Str("SM%"), aecrypto.Randomized)})
	if len(rs.Rows) != 3 {
		t.Fatalf("LIKE rows = %d", len(rs.Rows))
	}
}

func TestRangeIndexOnRNDColumn(t *testing.T) {
	env := setupRNDTable(t, false)
	env.mustExec("CREATE INDEX ix_value ON T (value)", nil) // enclave-ordered build
	for i := int64(1); i <= 50; i++ {
		env.mustExec("INSERT INTO T (id, value) VALUES (@id, @v)", Params{
			"id": intParam(i), "v": env.enc("CEK1", sqltypes.Int(100-i), aecrypto.Randomized),
		})
	}
	scansBefore, seeksBefore, _ := env.engine.Stats()
	rs := env.mustExec("SELECT id FROM T WHERE value BETWEEN @lo AND @hi", Params{
		"lo": env.enc("CEK1", sqltypes.Int(60), aecrypto.Randomized),
		"hi": env.enc("CEK1", sqltypes.Int(70), aecrypto.Randomized),
	})
	scansAfter, seeksAfter, _ := env.engine.Stats()
	if len(rs.Rows) != 11 {
		t.Fatalf("indexed range rows = %d", len(rs.Rows))
	}
	if seeksAfter == seeksBefore {
		t.Fatal("range query did not use the index")
	}
	if scansAfter != scansBefore {
		t.Fatal("range query fell back to a scan")
	}
}

func TestEqualityIndexOnDETColumn(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", false)
	env.mustExec(`CREATE TABLE t (id int PRIMARY KEY,
		d varchar(10) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	env.mustExec("CREATE INDEX ix_d ON t (d)", nil)
	for i := int64(1); i <= 30; i++ {
		env.mustExec("INSERT INTO t (id, d) VALUES (@id, @d)", Params{
			"id": intParam(i), "d": env.enc("CEK1", sqltypes.Str(fmt.Sprintf("v%d", i%3)), aecrypto.Deterministic),
		})
	}
	_, seeksBefore, _ := env.engine.Stats()
	rs := env.mustExec("SELECT id FROM t WHERE d = @d",
		Params{"d": env.enc("CEK1", sqltypes.Str("v1"), aecrypto.Deterministic)})
	_, seeksAfter, _ := env.engine.Stats()
	if len(rs.Rows) != 10 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if seeksAfter == seeksBefore {
		t.Fatal("DET equality did not use the equality index")
	}
}

func TestClusteredIndexOnEncryptedRejected(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", true)
	env.mustExec(`CREATE TABLE t (id int PRIMARY KEY,
		r int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	if _, err := env.session.Execute("CREATE CLUSTERED INDEX cx ON t (r)", nil); err == nil {
		t.Fatal("clustered index on encrypted column accepted (§4.5 forbids)")
	}
}

// TestMixedCompositeIndex models CUSTOMER_NC1: plaintext + encrypted
// components in one index, seeks using the plaintext prefix plus
// enclave-compared encrypted component.
func TestMixedCompositeIndex(t *testing.T) {
	env := newTestEnv(t, false)
	env.provisionKeys("CMK1", "CEK1", true)
	env.mustExec(`CREATE TABLE customer (c_w_id int, c_d_id int, c_id int PRIMARY KEY,
		c_last varchar(16) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	env.attest("SELECT c_id FROM customer WHERE c_last = @l")
	env.installCEKs("CEK1")
	env.mustExec("CREATE NONCLUSTERED INDEX customer_nc1 ON customer (c_w_id, c_d_id, c_last)", nil)

	lasts := []string{"BARBARBAR", "BARBAROUGHT", "BARBARABLE", "BARBARBAR"}
	id := int64(1)
	for w := int64(1); w <= 2; w++ {
		for _, last := range lasts {
			env.mustExec("INSERT INTO customer (c_w_id, c_d_id, c_id, c_last) VALUES (@w, @d, @id, @l)", Params{
				"w": intParam(w), "d": intParam(1), "id": intParam(id),
				"l": env.enc("CEK1", sqltypes.Str(last), aecrypto.Randomized),
			})
			id++
		}
	}
	_, seeksBefore, _ := env.engine.Stats()
	rs := env.mustExec("SELECT c_id FROM customer WHERE c_w_id = @w AND c_d_id = @d AND c_last = @l", Params{
		"w": intParam(1), "d": intParam(1),
		"l": env.enc("CEK1", sqltypes.Str("BARBARBAR"), aecrypto.Randomized),
	})
	_, seeksAfter, _ := env.engine.Stats()
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if seeksAfter == seeksBefore {
		t.Fatal("composite seek not used")
	}
}

package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
)

// TestShadowModelPlaintext runs a random INSERT/UPDATE/DELETE/SELECT workload
// through the SQL surface and checks every result against an in-memory
// shadow map — end-to-end correctness of parser, binder, planner, executor,
// indexes and transactions under one roof.
func TestShadowModelPlaintext(t *testing.T) {
	runShadowModel(t, false)
}

// TestShadowModelEncrypted runs the same workload with the value column
// RND-encrypted under an enclave-enabled key: every predicate evaluation and
// index comparison routes through the enclave, and results must still match
// the shadow exactly.
func TestShadowModelEncrypted(t *testing.T) {
	runShadowModel(t, true)
}

func runShadowModel(t *testing.T, encrypted bool) {
	env := newTestEnv(t, false)
	valType := "int"
	if encrypted {
		env.provisionKeys("CMK1", "CEK1", true)
		valType = "int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
	}
	env.mustExec(fmt.Sprintf("CREATE TABLE s (id int PRIMARY KEY, v %s)", valType), nil)
	env.mustExec("CREATE INDEX ix_sv ON s (v)", nil)
	if encrypted {
		env.attest("SELECT id FROM s WHERE v = @v")
		env.installCEKs("CEK1")
	}

	encVal := func(v int64) []byte {
		if encrypted {
			return env.enc("CEK1", sqltypes.Int(v), aecrypto.Randomized)
		}
		return intParam(v)
	}

	shadow := map[int64]int64{} // id -> v
	rng := rand.New(rand.NewSource(31))
	nextID := int64(1)

	const ops = 400
	for op := 0; op < ops; op++ {
		switch rng.Intn(5) {
		case 0, 1: // insert
			id := nextID
			nextID++
			v := int64(rng.Intn(50))
			env.mustExec("INSERT INTO s (id, v) VALUES (@i, @v)",
				Params{"i": intParam(id), "v": encVal(v)})
			shadow[id] = v
		case 2: // update by id
			if len(shadow) == 0 {
				continue
			}
			id := anyKey(rng, shadow)
			v := int64(rng.Intn(50))
			rs := env.mustExec("UPDATE s SET v = @v WHERE id = @i",
				Params{"v": encVal(v), "i": intParam(id)})
			if rs.Affected != 1 {
				t.Fatalf("op %d: update affected %d", op, rs.Affected)
			}
			shadow[id] = v
		case 3: // delete by id
			if len(shadow) == 0 {
				continue
			}
			id := anyKey(rng, shadow)
			rs := env.mustExec("DELETE FROM s WHERE id = @i", Params{"i": intParam(id)})
			if rs.Affected != 1 {
				t.Fatalf("op %d: delete affected %d", op, rs.Affected)
			}
			delete(shadow, id)
		case 4: // point query by v (equality over possibly-encrypted column)
			v := int64(rng.Intn(50))
			rs := env.mustExec("SELECT id FROM s WHERE v = @v", Params{"v": encVal(v)})
			want := 0
			for _, sv := range shadow {
				if sv == v {
					want++
				}
			}
			if len(rs.Rows) != want {
				t.Fatalf("op %d: v=%d rows=%d want %d", op, v, len(rs.Rows), want)
			}
		}

		// Periodic full-consistency checks.
		if op%50 == 49 {
			rs := env.mustExec("SELECT COUNT(*) FROM s", nil)
			if c, _ := sqltypes.Decode(rs.Rows[0][0]); c.I != int64(len(shadow)) {
				t.Fatalf("op %d: count=%d shadow=%d", op, c.I, len(shadow))
			}
			// Range over v via the index (enclave comparisons when encrypted).
			lo, hi := int64(10), int64(30)
			rs = env.mustExec("SELECT id FROM s WHERE v BETWEEN @lo AND @hi",
				Params{"lo": encVal(lo), "hi": encVal(hi)})
			want := 0
			for _, sv := range shadow {
				if sv >= lo && sv <= hi {
					want++
				}
			}
			if len(rs.Rows) != want {
				t.Fatalf("op %d: range rows=%d want %d", op, len(rs.Rows), want)
			}
		}
	}

	// Final: every shadow row readable with the right value.
	for id, v := range shadow {
		rs := env.mustExec("SELECT v FROM s WHERE id = @i", Params{"i": intParam(id)})
		if len(rs.Rows) != 1 {
			t.Fatalf("id %d missing", id)
		}
		var got sqltypes.Value
		if encrypted {
			got = env.dec("CEK1", rs.Rows[0][0])
		} else {
			got, _ = sqltypes.Decode(rs.Rows[0][0])
		}
		if got.I != v {
			t.Fatalf("id %d: v=%v want %d", id, got, v)
		}
	}
}

func anyKey(rng *rand.Rand, m map[int64]int64) int64 {
	n := rng.Intn(len(m))
	for k := range m {
		if n == 0 {
			return k
		}
		n--
	}
	return 0
}

// TestShadowModelWithRollbacks interleaves explicit transactions that
// randomly commit or roll back; the shadow only applies committed work.
func TestShadowModelWithRollbacks(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE s (id int PRIMARY KEY, v int)", nil)
	shadow := map[int64]int64{}
	rng := rand.New(rand.NewSource(17))
	nextID := int64(1)

	for round := 0; round < 60; round++ {
		env.mustExec("BEGIN TRANSACTION", nil)
		staged := map[int64]*int64{} // nil = delete
		for i := 0; i < 1+rng.Intn(5); i++ {
			switch rng.Intn(3) {
			case 0:
				id := nextID
				nextID++
				v := int64(rng.Intn(100))
				env.mustExec("INSERT INTO s (id, v) VALUES (@i, @v)",
					Params{"i": intParam(id), "v": intParam(v)})
				staged[id] = &v
			case 1:
				if len(shadow) == 0 {
					continue
				}
				id := anyKey(rng, shadow)
				if _, touched := staged[id]; touched {
					continue
				}
				v := int64(rng.Intn(100))
				env.mustExec("UPDATE s SET v = @v WHERE id = @i",
					Params{"v": intParam(v), "i": intParam(id)})
				staged[id] = &v
			case 2:
				if len(shadow) == 0 {
					continue
				}
				id := anyKey(rng, shadow)
				if _, touched := staged[id]; touched {
					continue
				}
				env.mustExec("DELETE FROM s WHERE id = @i", Params{"i": intParam(id)})
				staged[id] = nil
			}
		}
		if rng.Intn(2) == 0 {
			env.mustExec("COMMIT", nil)
			for id, v := range staged {
				if v == nil {
					delete(shadow, id)
				} else {
					shadow[id] = *v
				}
			}
		} else {
			env.mustExec("ROLLBACK", nil)
		}

		rs := env.mustExec("SELECT COUNT(*) FROM s", nil)
		if c, _ := sqltypes.Decode(rs.Rows[0][0]); c.I != int64(len(shadow)) {
			t.Fatalf("round %d: count=%d shadow=%d", round, c.I, len(shadow))
		}
	}
	for id, v := range shadow {
		rs := env.mustExec("SELECT v FROM s WHERE id = @i", Params{"i": intParam(id)})
		if len(rs.Rows) != 1 {
			t.Fatalf("id %d missing", id)
		}
		if got, _ := sqltypes.Decode(rs.Rows[0][0]); got.I != v {
			t.Fatalf("id %d: v=%v want %d", id, got, v)
		}
	}
}

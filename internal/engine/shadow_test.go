package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
)

// TestShadowModelPlaintext runs a random INSERT/UPDATE/DELETE/SELECT workload
// through the SQL surface and checks every result against an in-memory
// shadow map — end-to-end correctness of parser, binder, planner, executor,
// indexes and transactions under one roof.
func TestShadowModelPlaintext(t *testing.T) {
	runShadowModel(t, false, 0)
}

// TestShadowModelEncrypted runs the same workload with the value column
// RND-encrypted under an enclave-enabled key: every predicate evaluation and
// index comparison routes through the enclave, and results must still match
// the shadow exactly.
func TestShadowModelEncrypted(t *testing.T) {
	runShadowModel(t, true, 0)
}

// TestShadowModelEncryptedBatchSizes reruns the encrypted workload at the
// degenerate (1), awkward (3, never divides the row counts evenly) and
// production (256) batch sizes: the batched pipeline must be observationally
// identical to row-at-a-time execution at every batch size.
func TestShadowModelEncryptedBatchSizes(t *testing.T) {
	for _, size := range []int{1, 3, 256} {
		t.Run(fmt.Sprintf("batch=%d", size), func(t *testing.T) {
			runShadowModel(t, true, size)
		})
	}
}

func runShadowModel(t *testing.T, encrypted bool, batchSize int) {
	env := newTestEnv(t, false)
	if batchSize > 0 {
		env.engine.batch = batchSize
	}
	valType := "int"
	if encrypted {
		env.provisionKeys("CMK1", "CEK1", true)
		valType = "int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
	}
	env.mustExec(fmt.Sprintf("CREATE TABLE s (id int PRIMARY KEY, v %s)", valType), nil)
	env.mustExec("CREATE INDEX ix_sv ON s (v)", nil)
	if encrypted {
		env.attest("SELECT id FROM s WHERE v = @v")
		env.installCEKs("CEK1")
	}

	encVal := func(v int64) []byte {
		if encrypted {
			return env.enc("CEK1", sqltypes.Int(v), aecrypto.Randomized)
		}
		return intParam(v)
	}

	shadow := map[int64]int64{} // id -> v
	rng := rand.New(rand.NewSource(31))
	nextID := int64(1)

	const ops = 400
	for op := 0; op < ops; op++ {
		switch rng.Intn(5) {
		case 0, 1: // insert
			id := nextID
			nextID++
			v := int64(rng.Intn(50))
			env.mustExec("INSERT INTO s (id, v) VALUES (@i, @v)",
				Params{"i": intParam(id), "v": encVal(v)})
			shadow[id] = v
		case 2: // update by id
			if len(shadow) == 0 {
				continue
			}
			id := anyKey(rng, shadow)
			v := int64(rng.Intn(50))
			rs := env.mustExec("UPDATE s SET v = @v WHERE id = @i",
				Params{"v": encVal(v), "i": intParam(id)})
			if rs.Affected != 1 {
				t.Fatalf("op %d: update affected %d", op, rs.Affected)
			}
			shadow[id] = v
		case 3: // delete by id
			if len(shadow) == 0 {
				continue
			}
			id := anyKey(rng, shadow)
			rs := env.mustExec("DELETE FROM s WHERE id = @i", Params{"i": intParam(id)})
			if rs.Affected != 1 {
				t.Fatalf("op %d: delete affected %d", op, rs.Affected)
			}
			delete(shadow, id)
		case 4: // point query by v (equality over possibly-encrypted column)
			v := int64(rng.Intn(50))
			rs := env.mustExec("SELECT id FROM s WHERE v = @v", Params{"v": encVal(v)})
			want := 0
			for _, sv := range shadow {
				if sv == v {
					want++
				}
			}
			if len(rs.Rows) != want {
				t.Fatalf("op %d: v=%d rows=%d want %d", op, v, len(rs.Rows), want)
			}
		}

		// Periodic full-consistency checks.
		if op%50 == 49 {
			rs := env.mustExec("SELECT COUNT(*) FROM s", nil)
			if c, _ := sqltypes.Decode(rs.Rows[0][0]); c.I != int64(len(shadow)) {
				t.Fatalf("op %d: count=%d shadow=%d", op, c.I, len(shadow))
			}
			// Range over v via the index (enclave comparisons when encrypted).
			lo, hi := int64(10), int64(30)
			rs = env.mustExec("SELECT id FROM s WHERE v BETWEEN @lo AND @hi",
				Params{"lo": encVal(lo), "hi": encVal(hi)})
			want := 0
			for _, sv := range shadow {
				if sv >= lo && sv <= hi {
					want++
				}
			}
			if len(rs.Rows) != want {
				t.Fatalf("op %d: range rows=%d want %d", op, len(rs.Rows), want)
			}
		}
	}

	// Final: every shadow row readable with the right value.
	for id, v := range shadow {
		rs := env.mustExec("SELECT v FROM s WHERE id = @i", Params{"i": intParam(id)})
		if len(rs.Rows) != 1 {
			t.Fatalf("id %d missing", id)
		}
		var got sqltypes.Value
		if encrypted {
			got = env.dec("CEK1", rs.Rows[0][0])
		} else {
			got, _ = sqltypes.Decode(rs.Rows[0][0])
		}
		if got.I != v {
			t.Fatalf("id %d: v=%v want %d", id, got, v)
		}
	}
}

// newStraddleEnv builds a table with an RND-encrypted, enclave-enabled value
// column and no index on it, so predicates on v run through the batched
// heap-scan filter pipeline.
func newStraddleEnv(t *testing.T, batchSize int) *testEnv {
	env := newTestEnv(t, false)
	env.engine.batch = batchSize
	env.provisionKeys("CMK1", "CEK1", true)
	env.mustExec("CREATE TABLE s (id int PRIMARY KEY, v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))", nil)
	env.attest("SELECT id FROM s WHERE v = @v")
	env.installCEKs("CEK1")
	return env
}

// TestBatchedLimitStraddle: LIMIT must stop exactly where row-at-a-time
// execution would, in heap order, even when the stop point falls in the
// middle of a batch. 25 alternating rows with LIMIT 4 straddle every batch
// size under test (1 divides it, 3 doesn't, 256 holds the whole scan).
func TestBatchedLimitStraddle(t *testing.T) {
	for _, size := range []int{1, 3, 256} {
		t.Run(fmt.Sprintf("batch=%d", size), func(t *testing.T) {
			env := newStraddleEnv(t, size)
			var wantIDs []int64
			for id := int64(1); id <= 25; id++ {
				v := int64(1)
				if id%2 == 1 {
					v = 7
					wantIDs = append(wantIDs, id)
				}
				env.mustExec("INSERT INTO s (id, v) VALUES (@i, @v)",
					Params{"i": intParam(id), "v": env.enc("CEK1", sqltypes.Int(v), aecrypto.Randomized)})
			}
			rs := env.mustExec("SELECT id FROM s WHERE v = @v LIMIT 4",
				Params{"v": env.enc("CEK1", sqltypes.Int(7), aecrypto.Randomized)})
			if len(rs.Rows) != 4 {
				t.Fatalf("LIMIT 4 returned %d rows", len(rs.Rows))
			}
			for i, row := range rs.Rows {
				got, err := sqltypes.Decode(row[0])
				if err != nil {
					t.Fatal(err)
				}
				if got.I != wantIDs[i] {
					t.Fatalf("row %d: id=%d, want %d (heap order)", i, got.I, wantIDs[i])
				}
			}
		})
	}
}

// TestBatchedStopShadowsLaterError: a row AFTER the LIMIT stop point whose
// ciphertext is garbage must never surface an error — row-at-a-time
// execution would have stopped before evaluating it, and a straddling batch
// must preserve that even though the batched evaluation already saw the
// poisoned row. Without the LIMIT the same scan must fail.
func TestBatchedStopShadowsLaterError(t *testing.T) {
	for _, size := range []int{1, 3, 256} {
		t.Run(fmt.Sprintf("batch=%d", size), func(t *testing.T) {
			env := newStraddleEnv(t, size)
			match := env.enc("CEK1", sqltypes.Int(7), aecrypto.Randomized)
			for id := int64(1); id <= 3; id++ {
				env.mustExec("INSERT INTO s (id, v) VALUES (@i, @v)",
					Params{"i": intParam(id), "v": env.enc("CEK1", sqltypes.Int(7), aecrypto.Randomized)})
			}
			// Poisoned row in heap position 4: a structurally well-formed
			// envelope (it passes the server's write-time shape check — the
			// server cannot authenticate ciphertext) whose HMAC is garbage,
			// so enclave evaluation fails on it.
			poisoned := make([]byte, 65)
			poisoned[0] = 0x01
			env.mustExec("INSERT INTO s (id, v) VALUES (@i, @v)",
				Params{"i": intParam(4), "v": poisoned})
			env.mustExec("INSERT INTO s (id, v) VALUES (@i, @v)",
				Params{"i": intParam(5), "v": env.enc("CEK1", sqltypes.Int(7), aecrypto.Randomized)})

			rs := env.mustExec("SELECT id FROM s WHERE v = @v LIMIT 3", Params{"v": match})
			if len(rs.Rows) != 3 {
				t.Fatalf("LIMIT 3 returned %d rows", len(rs.Rows))
			}
			if _, err := env.session.Execute("SELECT id FROM s WHERE v = @v", Params{"v": match}); err == nil {
				t.Fatal("unlimited scan over the poisoned row must fail")
			}
		})
	}
}

// TestBatchedJoinEquivalence: the nested-loop join feeds joined pairs into
// one batch shared ACROSS outer rows, with an enclave residual on the inner
// side. Results (content and order) must be identical at every batch size,
// including outer rows whose NULL join key joins nothing.
func TestBatchedJoinEquivalence(t *testing.T) {
	run := func(t *testing.T, size int) [][2]int64 {
		env := newTestEnv(t, false)
		env.engine.batch = size
		env.provisionKeys("CMK1", "CEK1", true)
		env.mustExec("CREATE TABLE st (sid int PRIMARY KEY, q int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))", nil)
		env.mustExec("CREATE TABLE o (oid int PRIMARY KEY, item int)", nil)
		env.attest("SELECT o.oid, st.sid FROM o JOIN st ON o.item = st.sid WHERE st.q < @t")
		env.installCEKs("CEK1")
		for sid := int64(1); sid <= 10; sid++ {
			env.mustExec("INSERT INTO st (sid, q) VALUES (@s, @q)", Params{
				"s": intParam(sid),
				"q": env.enc("CEK1", sqltypes.Int(sid*5), aecrypto.Randomized)})
		}
		for oid := int64(1); oid <= 30; oid++ {
			item := intParam(oid%10 + 1)
			if oid%11 == 0 {
				item = nil // NULL join key: joins nothing
			}
			env.mustExec("INSERT INTO o (oid, item) VALUES (@o, @i)",
				Params{"o": intParam(oid), "i": item})
		}
		rs := env.mustExec("SELECT o.oid, st.sid FROM o JOIN st ON o.item = st.sid WHERE st.q < @t",
			Params{"t": env.enc("CEK1", sqltypes.Int(27), aecrypto.Randomized)})
		var out [][2]int64
		for _, row := range rs.Rows {
			a, _ := sqltypes.Decode(row[0])
			b, _ := sqltypes.Decode(row[1])
			out = append(out, [2]int64{a.I, b.I})
		}
		return out
	}
	ref := run(t, 1)
	if len(ref) == 0 {
		t.Fatal("reference join produced no rows")
	}
	for _, size := range []int{3, 256} {
		got := run(t, size)
		if len(got) != len(ref) {
			t.Fatalf("batch=%d: %d rows, want %d", size, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("batch=%d row %d: %v, want %v", size, i, got[i], ref[i])
			}
		}
	}
}

func anyKey(rng *rand.Rand, m map[int64]int64) int64 {
	n := rng.Intn(len(m))
	for k := range m {
		if n == 0 {
			return k
		}
		n--
	}
	return 0
}

// TestShadowModelWithRollbacks interleaves explicit transactions that
// randomly commit or roll back; the shadow only applies committed work.
func TestShadowModelWithRollbacks(t *testing.T) {
	env := newTestEnv(t, false)
	env.mustExec("CREATE TABLE s (id int PRIMARY KEY, v int)", nil)
	shadow := map[int64]int64{}
	rng := rand.New(rand.NewSource(17))
	nextID := int64(1)

	for round := 0; round < 60; round++ {
		env.mustExec("BEGIN TRANSACTION", nil)
		staged := map[int64]*int64{} // nil = delete
		for i := 0; i < 1+rng.Intn(5); i++ {
			switch rng.Intn(3) {
			case 0:
				id := nextID
				nextID++
				v := int64(rng.Intn(100))
				env.mustExec("INSERT INTO s (id, v) VALUES (@i, @v)",
					Params{"i": intParam(id), "v": intParam(v)})
				staged[id] = &v
			case 1:
				if len(shadow) == 0 {
					continue
				}
				id := anyKey(rng, shadow)
				if _, touched := staged[id]; touched {
					continue
				}
				v := int64(rng.Intn(100))
				env.mustExec("UPDATE s SET v = @v WHERE id = @i",
					Params{"v": intParam(v), "i": intParam(id)})
				staged[id] = &v
			case 2:
				if len(shadow) == 0 {
					continue
				}
				id := anyKey(rng, shadow)
				if _, touched := staged[id]; touched {
					continue
				}
				env.mustExec("DELETE FROM s WHERE id = @i", Params{"i": intParam(id)})
				staged[id] = nil
			}
		}
		if rng.Intn(2) == 0 {
			env.mustExec("COMMIT", nil)
			for id, v := range staged {
				if v == nil {
					delete(shadow, id)
				} else {
					shadow[id] = *v
				}
			}
		} else {
			env.mustExec("ROLLBACK", nil)
		}

		rs := env.mustExec("SELECT COUNT(*) FROM s", nil)
		if c, _ := sqltypes.Decode(rs.Rows[0][0]); c.I != int64(len(shadow)) {
			t.Fatalf("round %d: count=%d shadow=%d", round, c.I, len(shadow))
		}
	}
	for id, v := range shadow {
		rs := env.mustExec("SELECT v FROM s WHERE id = @i", Params{"i": intParam(id)})
		if len(rs.Rows) != 1 {
			t.Fatalf("id %d missing", id)
		}
		if got, _ := sqltypes.Decode(rs.Rows[0][0]); got.I != v {
			t.Fatalf("id %d: v=%v want %d", id, got, v)
		}
	}
}

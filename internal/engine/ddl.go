package engine

import (
	"errors"
	"fmt"

	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/keys"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// createTable is the shared CREATE TABLE body: firstPage == InvalidPageID
// allocates fresh (primary); otherwise the heap's first page is materialized
// at that id (replica redo). logDDL, when non-nil, receives the first heap
// page id and must append the creating RecDDL; it runs inside the catalog's
// critical section, before the table becomes visible, so no concurrent
// session can log operations against the table ahead of the record that
// creates it. Replica redo passes nil — the replica mirrors the primary's
// log verbatim and never appends its own records.
func (e *Engine) createTable(st CreateTableStmt, firstPage storage.PageID, logDDL func(storage.PageID)) (storage.PageID, error) {
	cols := make([]Column, len(st.Cols))
	var pkCols []int
	for i, def := range st.Cols {
		enc, err := e.catalog.EncTypeFor(def.Enc)
		if err != nil {
			return storage.InvalidPageID, err
		}
		cols[i] = Column{
			Name: def.Name, Kind: def.Kind,
			PrimaryKey: def.PrimaryKey, NotNull: def.NotNull || def.PrimaryKey,
			Enc: enc,
		}
		if def.PrimaryKey {
			pkCols = append(pkCols, i)
		}
	}
	var heap *storage.Heap
	var err error
	if firstPage == storage.InvalidPageID {
		heap, err = storage.NewHeap(e.pool)
	} else {
		heap, err = storage.NewHeapAt(e.pool, firstPage)
	}
	if err != nil {
		return storage.InvalidPageID, err
	}
	tbl := &Table{Name: st.Name, Cols: cols, Heap: heap}
	var log func()
	if logDDL != nil {
		first := heap.FirstPage()
		log = func() { logDDL(first) }
	}
	if err := e.catalog.AddTableLogged(tbl, log); err != nil {
		return storage.InvalidPageID, err
	}
	if len(pkCols) > 0 {
		names := make([]string, len(pkCols))
		for i, pos := range pkCols {
			names[i] = cols[pos].Name
		}
		// The table's RecDDL covers the implicit PK index; no separate record.
		if err := e.addIndex(tbl, "pk_"+st.Name, pkCols, names, true, true, false, nil); err != nil {
			return storage.InvalidPageID, err
		}
	}
	e.InvalidatePlans()
	return heap.FirstPage(), nil
}

// executeCreateIndex builds an index, populating it from existing rows.
// Clustered indexes on encrypted columns are refused: invalidating one would
// lose data (§4.5). logDDL (nil on replicas) appends the creating RecDDL
// before the index becomes visible in the catalog.
func (e *Engine) executeCreateIndex(st CreateIndexStmt, logDDL func()) error {
	tbl, err := e.catalog.Table(st.Table)
	if err != nil {
		return err
	}
	pos := make([]int, len(st.Cols))
	names := make([]string, len(st.Cols))
	anyEncrypted := false
	for i, name := range st.Cols {
		col, err := tbl.Col(name)
		if err != nil {
			return err
		}
		pos[i] = col.Pos
		names[i] = col.Name
		if !col.Enc.IsPlaintext() {
			anyEncrypted = true
		}
	}
	if st.Clustered && anyEncrypted {
		return errors.New("engine: clustered indexes on encrypted columns are not supported (§4.5)")
	}
	if err := e.addIndex(tbl, st.Name, pos, names, st.Unique, false, st.Clustered, logDDL); err != nil {
		return err
	}
	e.InvalidatePlans()
	return nil
}

// addIndex creates, registers and backfills an index. Building an index on
// an encrypted range column sorts the data via enclave comparisons — the
// index-build ordering leakage of Figure 5.
func (e *Engine) addIndex(tbl *Table, name string, pos []int, names []string, unique, primary, clustered bool, logDDL func()) error {
	tree, rangeCapable, ceks, err := e.buildIndexTree(tbl, pos, unique)
	if err != nil {
		return err
	}
	idx := &Index{
		Name: name, Table: tbl.Name, ColPos: pos, ColNames: names,
		Unique: unique, IsPrimary: primary, Tree: tree,
		RangeCapable: rangeCapable, CEKs: ceks,
	}
	// Backfill from the heap.
	err = tbl.Heap.Scan(func(rid storage.RowID, rec []byte) (bool, error) {
		cells, err := decodeRow(rec)
		if err != nil {
			return false, err
		}
		if err := tree.Insert(copyKey(idx.indexKeyFor(cells)), rid); err != nil {
			return false, err
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	return e.catalog.AddIndexLogged(idx, logDDL)
}

// executeCreateCMK stores column master key metadata. The signature is
// validated client-side (the server cannot: it has no key material); the
// engine stores it verbatim so clients can verify it later (§2.2). logDDL
// (nil on replicas) appends the creating RecDDL before visibility.
func (e *Engine) executeCreateCMK(st CreateCMKStmt, logDDL func()) error {
	return e.catalog.AddCMKLogged(&keys.CMKMetadata{
		Name:           st.Name,
		ProviderName:   st.ProviderName,
		KeyPath:        st.KeyPath,
		EnclaveEnabled: st.EnclaveComputations,
		Signature:      st.Signature,
	}, logDDL)
}

// executeCreateCEK stores column encryption key metadata: the RSA-OAEP
// wrapped value and its signature, bound to a CMK.
func (e *Engine) executeCreateCEK(st CreateCEKStmt, logDDL func()) error {
	if _, err := e.catalog.CMK(st.CMK); err != nil {
		return err
	}
	return e.catalog.AddCEKLogged(&keys.CEKMetadata{
		Name: st.Name,
		Values: []keys.CEKValue{{
			CMKName:        st.CMK,
			Algorithm:      st.Algorithm,
			EncryptedValue: st.EncryptedValue,
			Signature:      st.Signature,
		}},
	}, logDDL)
}

// executeAlterColumn performs online initial encryption, key rotation or
// decryption of a column through the enclave (§2.4.2): every cell is
// converted by enclave.ConvertCells under a client authorization proof
// (§3.2), indexes over the column are rebuilt, and the catalog is updated.
// No client round trip of data occurs.
func (s *Session) executeAlterColumn(st AlterColumnStmt) error {
	e := s.engine
	if e.cfg.Enclave == nil {
		return errors.New("engine: ALTER COLUMN encryption requires an enclave (use client-side tools otherwise)")
	}
	if s.EnclaveSID == 0 {
		return errors.New("engine: no enclave session; run sp_describe_parameter_encryption with attestation first")
	}
	tbl, err := e.catalog.Table(st.Table)
	if err != nil {
		return err
	}
	col, err := tbl.Col(st.Column)
	if err != nil {
		return err
	}
	from := col.Enc
	to, err := e.catalog.EncTypeFor(st.Enc)
	if err != nil {
		return err
	}
	if !from.IsPlaintext() && !from.EnclaveEnabled {
		return errors.New("engine: source CEK is not enclave-enabled; use client-side tools (§2.4.2)")
	}
	if !to.IsPlaintext() && !to.EnclaveEnabled {
		return errors.New("engine: target CEK is not enclave-enabled; use client-side tools (§2.4.2)")
	}

	proof := &enclave.ConversionProof{
		QueryText: st.RawText,
		Parse: enclave.ConversionParse{
			Table:    st.Table,
			Column:   st.Column,
			ToCEK:    to.CEKName,
			ToScheme: to.Scheme,
		},
	}

	// Serialize with other structural changes on the table; clients keep
	// reading throughout (reads only take page latches).
	tbl.mu.Lock()
	defer tbl.mu.Unlock()

	// Collect cells, convert in enclave batches, rewrite rows.
	type rowRef struct {
		rid   storage.RowID
		cells [][]byte
	}
	var rows []rowRef
	err = tbl.Heap.Scan(func(rid storage.RowID, rec []byte) (bool, error) {
		cells, err := decodeRow(rec)
		if err != nil {
			return false, err
		}
		cp := make([][]byte, len(cells))
		for i, c := range cells {
			if c != nil {
				cp[i] = append([]byte(nil), c...)
			}
		}
		rows = append(rows, rowRef{rid: rid, cells: cp})
		return true, nil
	})
	if err != nil {
		return err
	}

	// One enclave crossing converts a whole batch of cells; the batch size
	// is the same knob the executor's filter pipeline amortizes over.
	for lo := 0; lo < len(rows); lo += e.batch {
		hi := lo + e.batch
		if hi > len(rows) {
			hi = len(rows)
		}
		in := make([][]byte, 0, hi-lo)
		for _, r := range rows[lo:hi] {
			var cell []byte
			if col.Pos < len(r.cells) {
				cell = r.cells[col.Pos]
			}
			in = append(in, cell)
		}
		out, err := e.cfg.Enclave.ConvertCells(s.EnclaveSID, proof, from, to, in)
		if err != nil {
			return fmt.Errorf("engine: enclave conversion: %w", err)
		}
		for i := range out {
			r := &rows[lo+i]
			for len(r.cells) <= col.Pos {
				r.cells = append(r.cells, nil)
			}
			r.cells[col.Pos] = out[i]
			rec := encodeRow(r.cells)
			rid2, err := tbl.Heap.Update(r.rid, rec)
			if err != nil {
				return err
			}
			// Redo-only rewrite (Txn 0): replicas re-encrypt nothing — they
			// apply the ciphertext rewrite physically.
			e.wal.Append(storage.Record{
				Type: storage.RecHeapUpdate, Table: tbl.Name,
				Row: r.rid, NewRow: rid2, New: rec,
			})
		}
	}

	// Update the catalog type and rebuild indexes containing the column.
	col.Enc = to
	e.wal.Append(storage.Record{
		Type: storage.RecAlterEnc, Table: tbl.Name, DDL: encodeAlterEnc(col.Name, to),
	})
	for _, idx := range tbl.Indexes {
		contains := false
		for _, pos := range idx.ColPos {
			if pos == col.Pos {
				contains = true
				break
			}
		}
		if !contains {
			continue
		}
		tree, rangeCapable, ceks, err := e.buildIndexTree(tbl, idx.ColPos, idx.Unique)
		if err != nil {
			return err
		}
		err = tbl.Heap.Scan(func(rid storage.RowID, rec []byte) (bool, error) {
			cells, err := decodeRow(rec)
			if err != nil {
				return false, err
			}
			if err := tree.Insert(copyKey(idx.indexKeyFor(cells)), rid); err != nil {
				return false, err
			}
			return true, nil
		})
		if err != nil {
			return err
		}
		idx.Tree = tree
		idx.RangeCapable = rangeCapable
		idx.CEKs = ceks
	}
	e.InvalidatePlans()
	return nil
}

// AlterColumnClientSide is the server-side half of the client-side initial
// encryption / key rotation tools of §2.4.2: when a CEK is enclave-disabled
// (AEv1), turning encryption on requires a round trip of the data to a
// client that holds the keys. The convert callback IS that round trip —
// every cell passes through client code (in the real product, via bcp
// out/in through the AE-aware driver). The server itself never sees keys.
func (e *Engine) AlterColumnClientSide(table, column string, to sqltypes.EncType,
	convert func(old []byte) ([]byte, error)) error {
	tbl, err := e.catalog.Table(table)
	if err != nil {
		return err
	}
	col, err := tbl.Col(column)
	if err != nil {
		return err
	}

	tbl.mu.Lock()
	defer tbl.mu.Unlock()

	type rowRef struct {
		rid   storage.RowID
		cells [][]byte
	}
	var rows []rowRef
	err = tbl.Heap.Scan(func(rid storage.RowID, rec []byte) (bool, error) {
		cells, err := decodeRow(rec)
		if err != nil {
			return false, err
		}
		cp := make([][]byte, len(cells))
		for i, c := range cells {
			if c != nil {
				cp[i] = append([]byte(nil), c...)
			}
		}
		rows = append(rows, rowRef{rid: rid, cells: cp})
		return true, nil
	})
	if err != nil {
		return err
	}
	for i := range rows {
		r := &rows[i]
		var cell []byte
		if col.Pos < len(r.cells) {
			cell = r.cells[col.Pos]
		}
		if len(cell) == 0 {
			continue // NULLs stay unencrypted
		}
		out, err := convert(cell)
		if err != nil {
			return fmt.Errorf("engine: client-side conversion: %w", err)
		}
		for len(r.cells) <= col.Pos {
			r.cells = append(r.cells, nil)
		}
		r.cells[col.Pos] = out
		rec := encodeRow(r.cells)
		rid2, err := tbl.Heap.Update(r.rid, rec)
		if err != nil {
			return err
		}
		e.wal.Append(storage.Record{
			Type: storage.RecHeapUpdate, Table: tbl.Name,
			Row: r.rid, NewRow: rid2, New: rec,
		})
	}

	col.Enc = to
	e.wal.Append(storage.Record{
		Type: storage.RecAlterEnc, Table: tbl.Name, DDL: encodeAlterEnc(col.Name, to),
	})
	for _, idx := range tbl.Indexes {
		contains := false
		for _, pos := range idx.ColPos {
			if pos == col.Pos {
				contains = true
				break
			}
		}
		if !contains {
			continue
		}
		tree, rangeCapable, ceks, err := e.buildIndexTree(tbl, idx.ColPos, idx.Unique)
		if err != nil {
			return err
		}
		err = tbl.Heap.Scan(func(rid storage.RowID, rec []byte) (bool, error) {
			cells, err := decodeRow(rec)
			if err != nil {
				return false, err
			}
			return true, tree.Insert(copyKey(idx.indexKeyFor(cells)), rid)
		})
		if err != nil {
			return err
		}
		idx.Tree = tree
		idx.RangeCapable = rangeCapable
		idx.CEKs = ceks
	}
	e.InvalidatePlans()
	return nil
}

// DescribeWithAttestation is the full sp_describe_parameter_encryption call
// (§4.1): encryption type deduction output plus, when the query needs the
// enclave and the client supplied a DH public key, a fresh enclave session
// with the attestation chain of §4.2. The enclave session id is returned so
// the driver can target CEK installation.
func (s *Session) DescribeWithAttestation(query string, clientDHPub []byte) (*DescribeResult, *attestation.Info, uint64, error) {
	e := s.engine
	desc, err := e.Describe(query)
	if err != nil {
		return nil, nil, 0, err
	}
	if !desc.NeedsEnclave || clientDHPub == nil {
		return desc, nil, 0, nil
	}
	if e.cfg.Enclave == nil || e.cfg.Host == nil || e.cfg.HGS == nil {
		return nil, nil, 0, errors.New("engine: attestation requested but enclave/host/HGS not configured")
	}
	sid, report, dhSig, err := e.cfg.Enclave.NewSession(clientDHPub)
	if err != nil {
		return nil, nil, 0, err
	}
	cert, err := e.cfg.HGS.AttestHost(e.cfg.Host.TCGLog(), e.cfg.Host.SigningKey())
	if err != nil {
		return nil, nil, 0, err
	}
	reportSig, err := e.cfg.Host.SignReport(&report)
	if err != nil {
		return nil, nil, 0, err
	}
	info := &attestation.Info{
		HealthCert:      *cert,
		Report:          report,
		ReportSignature: reportSig,
		EnclaveKeyDER:   e.cfg.Enclave.IdentityKeyDER(),
		DHSignature:     dhSig,
	}
	s.EnclaveSID = sid
	return desc, info, sid, nil
}

// InstallCEK forwards a sealed CEK envelope from the driver to the enclave
// under this session's enclave session.
func (s *Session) InstallCEK(name string, nonce uint64, sealed []byte) error {
	if s.engine.cfg.Enclave == nil {
		return errors.New("engine: no enclave configured")
	}
	return s.engine.cfg.Enclave.InstallCEK(s.EnclaveSID, name, nonce, sealed)
}

// AuthorizeStatement forwards a sealed statement-hash authorization.
func (s *Session) AuthorizeStatement(nonce uint64, sealed []byte) error {
	if s.engine.cfg.Enclave == nil {
		return errors.New("engine: no enclave configured")
	}
	return s.engine.cfg.Enclave.AuthorizeStatement(s.EnclaveSID, nonce, sealed)
}

package engine

import (
	"testing"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
)

// withTracer arms per-statement tracing on a test env (keep everything).
func withTracer(env *testEnv) *trace.Tracer {
	tr := trace.NewTracer(trace.Policy{SampleRate: 1, Capacity: 1024})
	env.engine.tracer = tr
	return tr
}

func findTrace(traces []*trace.Trace, kind trace.Kind) *trace.Trace {
	for i := range traces {
		if traces[i].Kind == kind {
			return traces[i]
		}
	}
	return nil
}

func spanNames(tr *trace.Trace) map[string]int {
	m := make(map[string]int)
	for _, sp := range tr.Spans {
		m[sp.Name]++
	}
	return m
}

// A plain INSERT + SELECT pair must produce traces with the full lifecycle
// span set: plan (with lex/parse/bind on a cache miss), exec, and for the
// write the WAL append/commit spans.
func TestTraceLifecycleSpans(t *testing.T) {
	env := newTestEnv(t, false)
	tr := withTracer(env)
	env.mustExec("CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	env.mustExec("INSERT INTO t (id, v) VALUES (@i, @v)", Params{"i": intParam(1), "v": intParam(10)})
	env.mustExec("SELECT v FROM t WHERE id = @i", Params{"i": intParam(1)})

	traces := tr.Store().Drain()
	ins := findTrace(traces, trace.KindInsert)
	if ins == nil {
		t.Fatalf("no insert trace in %d traces", len(traces))
	}
	names := spanNames(ins)
	for _, want := range []string{"plan", "lex", "parse", "bind", "exec", "wal.append", "wal.commit"} {
		if names[want] == 0 {
			t.Fatalf("insert trace missing span %q (have %v)", want, names)
		}
	}
	sel := findTrace(traces, trace.KindSelect)
	if sel == nil {
		t.Fatal("no select trace")
	}
	selNames := spanNames(sel)
	if selNames["plan"] == 0 || selNames["exec"] == 0 {
		t.Fatalf("select trace spans = %v", selNames)
	}
	if selNames["wal.append"] != 0 {
		t.Fatal("read-only statement recorded a WAL span")
	}

	// Every trace ID is distinct and non-zero.
	seen := make(map[trace.ID]bool)
	for _, x := range traces {
		if x.ID.IsZero() || seen[x.ID] {
			t.Fatalf("duplicate or zero trace ID %s", x.ID)
		}
		seen[x.ID] = true
	}
}

// A wire-supplied trace ID must be consumed by exactly one statement: the
// next statement on the session gets a fresh server-minted ID.
func TestTraceIDConsumedPerStatement(t *testing.T) {
	env := newTestEnv(t, false)
	tr := withTracer(env)
	env.mustExec("CREATE TABLE c (id int PRIMARY KEY)", nil)
	id := trace.NewID()
	env.session.SetTraceID(id)
	env.mustExec("INSERT INTO c (id) VALUES (@i)", Params{"i": intParam(1)})
	env.mustExec("INSERT INTO c (id) VALUES (@i)", Params{"i": intParam(2)})
	var withID, without int
	for _, x := range tr.Store().Drain() {
		if x.Kind != trace.KindInsert {
			continue
		}
		if x.ID == id {
			withID++
		} else {
			without++
		}
	}
	if withID != 1 || without != 1 {
		t.Fatalf("client ID used %d times, fresh %d times", withID, without)
	}
}

// An enclave-backed RND predicate must surface its boundary crossings as
// enclave.crossing spans carrying the rows-per-crossing count and the
// sub-program's opcode tallies.
func TestEnclaveCrossingSpans(t *testing.T) {
	env := setupRNDTable(t, false)
	tr := withTracer(env)
	for i := int64(1); i <= 20; i++ {
		env.mustExec("INSERT INTO T (id, value) VALUES (@id, @v)", Params{
			"id": intParam(i), "v": env.enc("CEK1", sqltypes.Int(i%5), aecrypto.Randomized),
		})
	}
	env.mustExec("SELECT id FROM T WHERE value = @v",
		Params{"v": env.enc("CEK1", sqltypes.Int(3), aecrypto.Randomized)})

	sel := findTrace(tr.Store().Drain(), trace.KindSelect)
	if sel == nil {
		t.Fatal("no select trace")
	}
	var crossings int
	var rows int64
	var sawOps bool
	for _, sp := range sel.Spans {
		if sp.Name != "enclave.crossing" {
			continue
		}
		crossings++
		for _, a := range sp.Attrs {
			if a.Key == "rows" {
				rows += a.Value
			}
			if len(a.Key) > 3 && a.Key[:3] == "op." {
				sawOps = true
			}
		}
	}
	if crossings == 0 {
		t.Fatalf("no enclave.crossing spans in %v", spanNames(sel))
	}
	if rows < 20 {
		t.Fatalf("crossing rows = %d, want >= 20 (batched crossing must report batch size)", rows)
	}
	if !sawOps {
		t.Fatal("crossing span carries no opcode tallies")
	}
}

// Errored statements are always kept, even at sample rate 0.
func TestErrorTraceAlwaysKept(t *testing.T) {
	env := newTestEnv(t, false)
	tr := trace.NewTracer(trace.Policy{SampleRate: 0})
	env.engine.tracer = tr
	if _, err := env.session.Execute("SELECT nonsense FROM nowhere", nil); err == nil {
		t.Fatal("expected an error")
	}
	traces := tr.Store().Drain()
	if len(traces) != 1 || !traces[0].Err {
		t.Fatalf("error trace not kept: %+v", traces)
	}
}

// benchEnv builds a minimal engine + table for overhead benchmarks.
func benchExecEnv(b *testing.B, tracer *trace.Tracer) *Session {
	b.Helper()
	eng := New(Config{Tracer: tracer})
	sess := eng.NewSession()
	if _, err := sess.Execute("CREATE TABLE bench (id int PRIMARY KEY, v int)", nil); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Execute("INSERT INTO bench (id, v) VALUES (@i, @v)",
		Params{"i": intParam(1), "v": intParam(1)}); err != nil {
		b.Fatal(err)
	}
	return sess
}

func benchSelect(b *testing.B, sess *Session) {
	p := Params{"i": intParam(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Execute("SELECT v FROM bench WHERE id = @i", p); err != nil {
			b.Fatal(err)
		}
	}
}

// The satellite-1 overhead pair: tracing disabled vs enabled-but-unsampled.
// The budget is <=2%; compare ns/op of these two benchmarks.
func BenchmarkExecTracingOff(b *testing.B) {
	benchSelect(b, benchExecEnv(b, nil))
}

func BenchmarkExecTracingUnsampled(b *testing.B) {
	benchSelect(b, benchExecEnv(b, trace.NewTracer(trace.Policy{SampleRate: 0})))
}

package engine

import (
	"strings"
	"testing"

	"alwaysencrypted/internal/obs"
)

// TestStatementLifecycleSpans runs statements through an engine with an
// explicit registry and checks the lex→parse→bind→plan→exec decomposition
// plus the Stats() shim.
func TestStatementLifecycleSpans(t *testing.T) {
	reg := obs.New("t")
	e := New(Config{Obs: reg})
	s := e.NewSession()

	mustExec := func(q string) {
		t.Helper()
		if _, err := s.Execute(q, nil); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE t (id int PRIMARY KEY, v int)")
	mustExec("INSERT INTO t (id, v) VALUES (1, 10)")
	mustExec("SELECT v FROM t WHERE id = 1")
	mustExec("SELECT v FROM t WHERE id = 1") // plan-cache hit

	snap := reg.Snapshot()
	// Four statements executed; the cached SELECT skips lex/parse/bind but
	// still pays plan (cache lookup) and exec.
	for phase, want := range map[string]uint64{
		"engine.stmt.lex_ns":   3,
		"engine.stmt.parse_ns": 3,
		"engine.stmt.bind_ns":  3,
		"engine.stmt.plan_ns":  4,
		"engine.stmt.exec_ns":  4,
	} {
		if got := snap.Histograms[phase].Count; got != want {
			t.Errorf("%s count = %d, want %d", phase, got, want)
		}
	}

	scans, seeks, execs := e.Stats()
	if snap.Counters["engine.scans"] != scans ||
		snap.Counters["engine.seeks"] != seeks ||
		snap.Counters["engine.execs"] != execs {
		t.Fatalf("Stats() disagrees with registry: %v vs %+v",
			[]uint64{scans, seeks, execs}, snap.Counters)
	}
	if execs != 4 {
		t.Fatalf("execs = %d, want 4", execs)
	}
	if seeks == 0 {
		t.Fatal("point SELECT on the primary key recorded no seeks")
	}

	// The buffer pool reports into the same registry.
	found := false
	for name := range snap.Counters {
		if strings.HasPrefix(name, "storage.pool.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("buffer pool counters missing from the engine registry")
	}
}

package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// The WAL invariant replication depends on: the RecDDL that creates an
// object sequences before every record that touches it. A session racing
// CREATE TABLE (inserting the instant the table becomes visible) must never
// get its heap/index records ahead of the DDL record — a replica replaying
// such a log would hit table-not-found and halt the redo stream.
func TestDDLLoggedBeforeDependentRecords(t *testing.T) {
	e := New(Config{})
	const tables = 25
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("race%d", i)
		done := make(chan error, 1)
		go func() {
			s := e.NewSession()
			deadline := time.Now().Add(10 * time.Second)
			for {
				_, err := s.Execute("INSERT INTO "+name+" (id) VALUES (@i)",
					Params{"i": sqltypes.Int(1).Encode()})
				if err == nil {
					done <- nil
					return
				}
				if time.Now().After(deadline) {
					done <- fmt.Errorf("insert into %s never succeeded: %w", name, err)
					return
				}
			}
		}()
		if _, err := e.NewSession().Execute(
			"CREATE TABLE "+name+" (id int PRIMARY KEY)", nil); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// Replay the log in LSN order: every heap/index record must name an
	// object whose creating RecDDL already passed.
	created := map[string]bool{}
	for _, rec := range e.WAL().Records() {
		switch rec.Type {
		case storage.RecDDL:
			// "CREATE TABLE raceN (..." — the implicit pk_raceN index rides
			// on the same record.
			f := strings.Fields(rec.DDL)
			if len(f) >= 3 && strings.EqualFold(f[0], "CREATE") && strings.EqualFold(f[1], "TABLE") {
				created[strings.ToLower(f[2])] = true
				created["pk_"+strings.ToLower(f[2])] = true
			}
		case storage.RecHeapInsert, storage.RecHeapUpdate, storage.RecHeapDelete,
			storage.RecIndexInsert, storage.RecIndexDelete:
			if !created[strings.ToLower(rec.Table)] {
				t.Fatalf("LSN %d: %s record for %q precedes its creating DDL",
					rec.LSN, rec.Type, rec.Table)
			}
		}
	}
	if len(created) != 2*tables {
		t.Fatalf("saw %d created objects in the log, want %d", len(created), 2*tables)
	}
}

package engine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// RedoApplier replays a primary's WAL onto a replica engine, in LSN order.
//
// Heap records are applied physically — the replica's pages end up
// byte-identical to the primary's, ciphertext included; the replica never
// decrypts anything. Index records are logical: plaintext and DET indexes
// apply immediately, but encrypted range indexes need enclave comparisons and
// the replica's enclave holds no CEKs (clients only release keys to an
// attested enclave they talk to directly). Those operations are queued and,
// at transaction commit, registered as §4.5 deferred transactions with
// redo=true — the same machinery that parks un-undoable transactions after a
// crash parks un-applyable index work on a replica, and the same resolution
// path (keys arrive after promotion, ResolveDeferred) drains it.
//
// In-flight transactions are mirrored into the engine's active-transaction
// table with their applied operations, so promotion is exactly crash
// recovery: Recover() undoes whatever the primary had not committed.
//
// The applier is not safe for concurrent use; the replication loop owns it.
type RedoApplier struct {
	e    *Engine
	txns map[uint64]*redoTxn
	// blockedIdx is the per-index "sticky" defer set: once one operation on
	// an index is deferred, every later operation on that index defers too,
	// preserving log order within the index.
	blockedIdx map[string]bool
	// invalidIdx marks indexes registered in invalidated state (a CREATE
	// INDEX over existing encrypted data cannot be built without keys).
	// Operations on them are dropped: RebuildIndex after promotion
	// reconstructs from the heap, which already contains every change.
	invalidIdx map[string]bool
	applied    atomic.Uint64 // highest LSN applied
}

// redoTxn tracks one in-flight primary transaction on the replica.
type redoTxn struct {
	txn *Txn
	// pending holds forward operations that could not be applied (encrypted
	// index work), in log order.
	pending []txnOp
}

// ErrRedoDiverged mirrors storage.ErrRedoDiverged for non-heap divergence.
var ErrRedoDiverged = errors.New("engine: redo diverged from primary log")

// NewRedoApplier builds an applier over a replica engine.
func NewRedoApplier(e *Engine) *RedoApplier {
	return &RedoApplier{
		e:          e,
		txns:       make(map[uint64]*redoTxn),
		blockedIdx: make(map[string]bool),
		invalidIdx: make(map[string]bool),
	}
}

// AppliedLSN returns the highest LSN applied so far (0 before the first).
func (ra *RedoApplier) AppliedLSN() uint64 { return ra.applied.Load() }

// Apply replays one log record. Records must arrive in LSN order.
func (ra *RedoApplier) Apply(rec *storage.Record) error {
	if err := ra.applyRecord(rec); err != nil {
		return fmt.Errorf("redo LSN %d (%s): %w", rec.LSN, rec.Type, err)
	}
	ra.applied.Store(rec.LSN)
	return nil
}

func (ra *RedoApplier) applyRecord(rec *storage.Record) error {
	e := ra.e
	switch rec.Type {
	case storage.RecBegin:
		t := &Txn{id: rec.Txn, beginLSN: rec.LSN, engine: e}
		ra.txns[rec.Txn] = &redoTxn{txn: t}
		e.txnMu.Lock()
		e.active[rec.Txn] = t
		if e.nextTxn <= rec.Txn {
			e.nextTxn = rec.Txn + 1
		}
		e.txnMu.Unlock()
		return nil

	case storage.RecCommit, storage.RecAbort:
		rt := ra.txns[rec.Txn]
		if rt == nil {
			return nil // txn began before our copy of the log starts
		}
		delete(ra.txns, rec.Txn)
		e.txnMu.Lock()
		delete(e.active, rec.Txn)
		e.txnMu.Unlock()
		if len(rt.pending) == 0 {
			return nil
		}
		// Encrypted-index work the replica could not perform: park it as a
		// redo deferral (§4.5). For aborts the pending list holds forward
		// op + CLR pairs that net to zero, but applying them in order is
		// still the faithful replay once keys arrive.
		e.txnMu.Lock()
		e.deferSeq++
		e.deferred[rec.Txn] = &deferredTxn{txn: rt.txn, pending: rt.pending, redo: true, seq: e.deferSeq}
		e.txnMu.Unlock()
		e.wal.PinTxn(rec.Txn, rt.txn.beginLSN)
		return nil

	case storage.RecHeapInsert, storage.RecHeapDelete, storage.RecHeapUpdate:
		return ra.applyHeap(rec)

	case storage.RecHeapInsertMulti:
		return ra.applyHeapMulti(rec)

	case storage.RecIndexInsert, storage.RecIndexDelete:
		return ra.applyIndex(rec)

	case storage.RecIndexInsertMulti:
		return ra.applyIndexMulti(rec)

	case storage.RecDDL:
		return ra.applyDDL(rec)

	case storage.RecAlterEnc:
		return ra.applyAlterEnc(rec)

	case storage.RecCheckpoint:
		return nil
	default:
		return nil
	}
}

// applyHeap performs physical redo of one heap record and mirrors it into the
// owning transaction's undo list (Txn 0 records — ALTER COLUMN rewrites — have
// no transaction and are redo-only).
func (ra *RedoApplier) applyHeap(rec *storage.Record) error {
	e := ra.e
	tbl, err := e.catalog.Table(rec.Table)
	if err != nil {
		return err
	}
	tbl.mu.Lock()
	switch rec.Type {
	case storage.RecHeapInsert:
		if rec.CLR {
			// A CLR insert compensates a delete: the row goes back into its
			// exact original slot, not the heap tail.
			err = tbl.Heap.RestoreAt(rec.Row, rec.New)
		} else {
			err = tbl.Heap.ApplyInsert(rec.Row, rec.New)
		}
	case storage.RecHeapDelete:
		err = tbl.Heap.Delete(rec.Row)
	case storage.RecHeapUpdate:
		err = tbl.Heap.ApplyUpdate(rec.Row, rec.NewRow, rec.New)
	}
	tbl.mu.Unlock()
	if err != nil {
		return err
	}
	if rt := ra.txns[rec.Txn]; rt != nil {
		rt.txn.ops = append(rt.txn.ops, txnOp{
			typ: rec.Type, table: rec.Table,
			row: rec.Row, newRow: rec.NewRow, old: rec.Old, new: rec.New,
		})
	}
	return nil
}

// applyHeapMulti performs physical redo of a multi-row bulk insert: every row
// lands at the exact slot the primary allocated, and the owning transaction's
// undo list mirrors per-row inserts — rollback and promotion never need to
// know the rows arrived in one record.
func (ra *RedoApplier) applyHeapMulti(rec *storage.Record) error {
	e := ra.e
	tbl, err := e.catalog.Table(rec.Table)
	if err != nil {
		return err
	}
	rids, rows, err := storage.DecodeHeapRows(rec.New)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRedoDiverged, err)
	}
	tbl.mu.Lock()
	for i, rid := range rids {
		if err := tbl.Heap.ApplyInsert(rid, rows[i]); err != nil {
			tbl.mu.Unlock()
			return err
		}
	}
	tbl.mu.Unlock()
	if rt := ra.txns[rec.Txn]; rt != nil {
		for i, rid := range rids {
			rt.txn.ops = append(rt.txn.ops, txnOp{
				typ: storage.RecHeapInsert, table: rec.Table, row: rid, new: rows[i],
			})
		}
	}
	return nil
}

// applyIndex performs logical redo of one index record, deferring encrypted
// work the replica's key-less enclave cannot do.
func (ra *RedoApplier) applyIndex(rec *storage.Record) error {
	op := txnOp{typ: rec.Type, table: rec.Table, row: rec.Row, key: rec.Key}
	return ra.applyIndexOp(rec.Txn, op)
}

// applyIndexMulti unpacks a bulk-insert index record and replays each entry
// through the same path as a single-row record, so per-index deferral and
// invalidation behave identically however the primary batched.
func (ra *RedoApplier) applyIndexMulti(rec *storage.Record) error {
	keys, rids, err := storage.DecodeIndexEntries(rec.New)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRedoDiverged, err)
	}
	for i := range rids {
		op := txnOp{typ: storage.RecIndexInsert, table: rec.Table, row: rids[i], key: keys[i]}
		if err := ra.applyIndexOp(rec.Txn, op); err != nil {
			return err
		}
	}
	return nil
}

func (ra *RedoApplier) applyIndexOp(txn uint64, op txnOp) error {
	e := ra.e
	if ra.invalidIdx[op.table] {
		return nil // index will be rebuilt from the heap after promotion
	}
	rt := ra.txns[txn]
	if !ra.blockedIdx[op.table] {
		err := e.applyOne(&op)
		if err == nil {
			if rt != nil {
				rt.txn.ops = append(rt.txn.ops, op)
			}
			return nil
		}
		if !IsKeyMissing(err) {
			return err
		}
		ra.blockedIdx[op.table] = true
	}
	if rt == nil {
		// Keyed work outside any mirrored transaction: nothing to attach the
		// deferral to (should not happen — index records are transactional).
		return fmt.Errorf("%w: keyless index op outside a transaction", ErrRedoDiverged)
	}
	rt.pending = append(rt.pending, op)
	return nil
}

// applyDDL re-executes a DDL statement from its logged text. CREATE TABLE
// materializes the heap's first page at the page id the primary allocated, so
// subsequent physical redo targets identical pages.
func (ra *RedoApplier) applyDDL(rec *storage.Record) error {
	e := ra.e
	stmt, err := Parse(rec.DDL)
	if err != nil {
		return fmt.Errorf("%w: reparsing DDL %q: %v", ErrRedoDiverged, rec.DDL, err)
	}
	switch st := stmt.(type) {
	case CreateTableStmt:
		// nil logDDL throughout: the replica mirrors the primary's records
		// via AppendAt and never appends its own.
		_, err := e.createTable(st, rec.Row.Page(), nil)
		return err
	case CreateIndexStmt:
		return ra.applyCreateIndex(st)
	case CreateCMKStmt:
		return e.executeCreateCMK(st, nil)
	case CreateCEKStmt:
		return e.executeCreateCEK(st, nil)
	default:
		return fmt.Errorf("%w: unexpected DDL record %q", ErrRedoDiverged, rec.DDL)
	}
}

// applyCreateIndex replays CREATE INDEX. Backfilling an encrypted range index
// requires enclave comparisons the replica cannot make; such an index is
// registered invalidated — promotion plus RebuildIndex restores it from the
// heap, which physical redo keeps complete.
func (ra *RedoApplier) applyCreateIndex(st CreateIndexStmt) error {
	e := ra.e
	err := e.executeCreateIndex(st, nil)
	if err == nil {
		return nil
	}
	if !IsKeyMissing(err) {
		return err
	}
	tbl, terr := e.catalog.Table(st.Table)
	if terr != nil {
		return terr
	}
	pos := make([]int, len(st.Cols))
	names := make([]string, len(st.Cols))
	for i, name := range st.Cols {
		col, cerr := tbl.Col(name)
		if cerr != nil {
			return cerr
		}
		pos[i] = col.Pos
		names[i] = col.Name
	}
	tree, rangeCapable, ceks, berr := e.buildIndexTree(tbl, pos, st.Unique)
	if berr != nil {
		return berr
	}
	tree.Invalidate()
	ra.invalidIdx[st.Name] = true
	idx := &Index{
		Name: st.Name, Table: st.Table, ColPos: pos, ColNames: names,
		Unique: st.Unique, Tree: tree, RangeCapable: rangeCapable, CEKs: ceks,
	}
	if aerr := e.catalog.AddIndex(idx); aerr != nil {
		return aerr
	}
	e.InvalidatePlans()
	return nil
}

// applyAlterEnc replays the catalog half of ALTER COLUMN encryption: the
// per-cell rewrites arrived as physical Txn-0 heap updates; this record flips
// the column's encryption type and rebuilds affected indexes. Rebuilds that
// need enclave keys leave the index invalidated for post-promotion rebuild.
func (ra *RedoApplier) applyAlterEnc(rec *storage.Record) error {
	e := ra.e
	colName, to, err := decodeAlterEnc(rec.DDL)
	if err != nil {
		return err
	}
	tbl, err := e.catalog.Table(rec.Table)
	if err != nil {
		return err
	}
	col, err := tbl.Col(colName)
	if err != nil {
		return err
	}
	tbl.mu.Lock()
	defer tbl.mu.Unlock()
	col.Enc = to
	for _, idx := range tbl.Indexes {
		contains := false
		for _, pos := range idx.ColPos {
			if pos == col.Pos {
				contains = true
				break
			}
		}
		if !contains {
			continue
		}
		tree, rangeCapable, ceks, berr := e.buildIndexTree(tbl, idx.ColPos, idx.Unique)
		if berr != nil {
			return berr
		}
		scanErr := tbl.Heap.Scan(func(rid storage.RowID, r []byte) (bool, error) {
			cells, derr := decodeRow(r)
			if derr != nil {
				return false, derr
			}
			return true, tree.Insert(copyKey(idx.indexKeyFor(cells)), rid)
		})
		if scanErr != nil {
			if !IsKeyMissing(scanErr) {
				return scanErr
			}
			tree.Invalidate()
			ra.invalidIdx[idx.Name] = true
		} else {
			delete(ra.invalidIdx, idx.Name)
		}
		idx.Tree = tree
		idx.RangeCapable = rangeCapable
		idx.CEKs = ceks
	}
	e.InvalidatePlans()
	return nil
}

// DropInflightPending discards the queued (never-applied) encrypted-index
// work of transactions still in flight, returning how many operations were
// dropped. Promotion calls this before Recover(): an in-flight transaction is
// about to be rolled back, and operations that were never applied need no
// undo — keeping them would corrupt the indexes when resolution "applied"
// them after the rollback.
func (ra *RedoApplier) DropInflightPending() int {
	n := 0
	for _, rt := range ra.txns {
		n += len(rt.pending)
		rt.pending = nil
	}
	return n
}

// encodeAlterEnc packs a column's new encryption type for a RecAlterEnc
// record: column, scheme, CEK name and enclave flag, NUL-separated. No parser
// round trip — the replica reconstructs the EncType directly.
func encodeAlterEnc(column string, to sqltypes.EncType) string {
	enclave := "0"
	if to.EnclaveEnabled {
		enclave = "1"
	}
	return column + "\x00" + strconv.Itoa(int(to.Scheme)) + "\x00" + to.CEKName + "\x00" + enclave
}

func decodeAlterEnc(s string) (string, sqltypes.EncType, error) {
	parts := strings.Split(s, "\x00")
	if len(parts) != 4 {
		return "", sqltypes.EncType{}, fmt.Errorf("%w: bad ALTER-ENC payload", ErrRedoDiverged)
	}
	scheme, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", sqltypes.EncType{}, fmt.Errorf("%w: bad ALTER-ENC scheme", ErrRedoDiverged)
	}
	return parts[0], sqltypes.EncType{
		Scheme:         sqltypes.EncScheme(scheme),
		CEKName:        parts[2],
		EnclaveEnabled: parts[3] == "1",
	}, nil
}

package engine

import (
	"errors"
	"testing"

	"alwaysencrypted/internal/sqltypes"
)

func TestParseSelect(t *testing.T) {
	stmt, err := Parse("SELECT a, b FROM t WHERE a = @x AND b < 10 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(SelectStmt)
	if len(sel.Items) != 2 || sel.Table != "t" || sel.Limit != 5 {
		t.Fatalf("%+v", sel)
	}
	if len(sel.Where) != 2 {
		t.Fatalf("where = %+v", sel.Where)
	}
	if sel.Where[0].Op != PredEQ || sel.Where[0].Col != "a" {
		t.Fatalf("pred0 = %+v", sel.Where[0])
	}
	if _, ok := sel.Where[0].Val.(ParamExpr); !ok {
		t.Fatal("expected param")
	}
	if sel.Where[1].Op != PredLT {
		t.Fatalf("pred1 = %+v", sel.Where[1])
	}
}

func TestParseSelectStarAndAggregates(t *testing.T) {
	stmt, err := Parse("SELECT *, COUNT(*), COUNT(DISTINCT c), MIN(a), MAX(b), SUM(d) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(SelectStmt)
	if !sel.Items[0].Star {
		t.Fatal("star missing")
	}
	wantAggs := []AggFunc{AggCount, AggCountDistinct, AggMin, AggMax, AggSum}
	for i, want := range wantAggs {
		if sel.Items[i+1].Agg != want {
			t.Fatalf("item %d agg = %v", i+1, sel.Items[i+1].Agg)
		}
	}
}

func TestParseJoin(t *testing.T) {
	stmt, err := Parse("SELECT a.x, b.y FROM a JOIN b ON a.id = b.aid WHERE a.x > @v")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(SelectStmt)
	if sel.Join == nil || sel.Join.Table != "b" || sel.Join.LeftCol != "a.id" || sel.Join.RightCol != "b.aid" {
		t.Fatalf("join = %+v", sel.Join)
	}
}

func TestParsePredicateVariants(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE a BETWEEN @lo AND @hi AND b LIKE @p AND c IS NULL AND d IS NOT NULL AND e <> 3")
	if err != nil {
		t.Fatal(err)
	}
	w := stmt.(SelectStmt).Where
	if w[0].Op != PredBetween || w[1].Op != PredLike || w[2].Op != PredIsNull ||
		w[3].Op != PredIsNotNull || w[4].Op != PredNE {
		t.Fatalf("%+v", w)
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a, b, c) VALUES (@a, 'text', 3.5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(InsertStmt)
	if len(ins.Cols) != 3 || len(ins.Vals) != 3 {
		t.Fatalf("%+v", ins)
	}
	if lit, ok := ins.Vals[2].(LiteralExpr); !ok || lit.Val.Kind != sqltypes.KindFloat {
		t.Fatalf("val2 = %+v", ins.Vals[2])
	}

	stmt, err = Parse("UPDATE t SET a = a + @d, b = @b WHERE id = @id")
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(UpdateStmt)
	if len(upd.Sets) != 2 {
		t.Fatalf("%+v", upd)
	}
	if _, ok := upd.Sets[0].Expr.(ArithExpr); !ok {
		t.Fatalf("set0 = %T", upd.Sets[0].Expr)
	}

	stmt, err = Parse("DELETE FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(DeleteStmt).Table != "t" {
		t.Fatal("bad delete")
	}
}

func TestParseCreateTableWithEncryption(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE T(id int PRIMARY KEY,
		value int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK,
		ENCRYPTION_TYPE = Randomized,
		ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),
		name varchar(30) NOT NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(CreateTableStmt)
	if len(ct.Cols) != 3 || !ct.Cols[0].PrimaryKey || !ct.Cols[2].NotNull {
		t.Fatalf("%+v", ct)
	}
	enc := ct.Cols[1].Enc
	if enc == nil || enc.CEK != "MyCEK" || enc.Scheme != sqltypes.SchemeRandomized ||
		enc.Algorithm != "AEAD_AES_256_CBC_HMAC_SHA_256" {
		t.Fatalf("enc = %+v", enc)
	}
}

func TestParseFigure1DDL(t *testing.T) {
	stmt, err := Parse(`CREATE COLUMN MASTER KEY MyCMK WITH (
		KEY_STORE_PROVIDER_NAME = N'AZURE_KEY_VAULT_PROVIDER',
		KEY_PATH = N'https://vault.azure.net/keys/k1',
		ENCLAVE_COMPUTATIONS (SIGNATURE = 0x6FCF01))`)
	if err != nil {
		t.Fatal(err)
	}
	cmk := stmt.(CreateCMKStmt)
	if cmk.Name != "MyCMK" || cmk.ProviderName != "AZURE_KEY_VAULT_PROVIDER" ||
		!cmk.EnclaveComputations || len(cmk.Signature) != 3 {
		t.Fatalf("%+v", cmk)
	}

	stmt, err = Parse(`CREATE COLUMN ENCRYPTION KEY MyCEK
		WITH VALUES (COLUMN_MASTER_KEY = MyCMK,
		ALGORITHM = 'RSA_OAEP', ENCRYPTED_VALUE = 0x0170AB)`)
	if err != nil {
		t.Fatal(err)
	}
	cek := stmt.(CreateCEKStmt)
	if cek.Name != "MyCEK" || cek.CMK != "MyCMK" || cek.Algorithm != "RSA_OAEP" || len(cek.EncryptedValue) != 3 {
		t.Fatalf("%+v", cek)
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt, err := Parse("CREATE NONCLUSTERED INDEX CUSTOMER_NC1 ON CUSTOMER (C_W_ID, C_D_ID, C_LAST, C_FIRST, C_ID)")
	if err != nil {
		t.Fatal(err)
	}
	idx := stmt.(CreateIndexStmt)
	if idx.Name != "CUSTOMER_NC1" || len(idx.Cols) != 5 || idx.Unique || idx.Clustered {
		t.Fatalf("%+v", idx)
	}
	stmt, err = Parse("CREATE UNIQUE INDEX u1 ON t (a)")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(CreateIndexStmt).Unique {
		t.Fatal("unique lost")
	}
}

func TestParseAlterColumn(t *testing.T) {
	src := "ALTER TABLE Customer ALTER COLUMN c_last varchar(16) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
	stmt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	alt := stmt.(AlterColumnStmt)
	if alt.Table != "Customer" || alt.Column != "c_last" || alt.Enc == nil || alt.Enc.CEK != "CEK1" {
		t.Fatalf("%+v", alt)
	}
	if alt.RawText != src {
		t.Fatal("raw text not preserved (needed for the §3.2 authorization hash)")
	}
	// Decrypting form (no ENCRYPTED WITH).
	stmt, err = Parse("ALTER TABLE t ALTER COLUMN c int")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(AlterColumnStmt).Enc != nil {
		t.Fatal("expected plaintext target")
	}
}

func TestParseTransactionControl(t *testing.T) {
	for src, want := range map[string]Stmt{
		"BEGIN TRANSACTION": BeginStmt{},
		"COMMIT":            CommitStmt{},
		"ROLLBACK":          RollbackStmt{},
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if stmt != want {
			t.Fatalf("%s parsed to %T", src, stmt)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ==",
		"INSERT INTO t (a, b) VALUES (@a)", // arity mismatch
		"UPDATE t SET",
		"CREATE TABLE t (a geography)",
		"SELECT a FROM t ORDER BY a", // ORDER BY unsupported (§5.3)
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT a FROM t WHERE a = 'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("accepted %q", src)
		} else if !errors.Is(err, ErrSyntax) {
			t.Fatalf("%q: err = %v, want ErrSyntax", src, err)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select a from t where a = @x"); err != nil {
		t.Fatal(err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE b = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	lit := stmt.(SelectStmt).Where[0].Val.(LiteralExpr)
	if lit.Val.S != "it's" {
		t.Fatalf("escape: %q", lit.Val.S)
	}
}

package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"

	"alwaysencrypted/internal/btree"
	"alwaysencrypted/internal/keys"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// Column is one column's catalog entry. Encryption is an attribute of the
// type (§4.3): Enc carries the scheme, the CEK binding and the
// enclave-enabled bit derived from the wrapping CMK.
type Column struct {
	Name       string
	Kind       sqltypes.Kind
	PrimaryKey bool
	NotNull    bool
	Enc        sqltypes.EncType
	Pos        int
}

// Table is a catalog table: schema plus its heap and indexes. A table-level
// mutex serializes structural mutations; row-level isolation is the lock
// manager's job.
type Table struct {
	Name    string
	Cols    []Column
	colIdx  map[string]int
	Heap    *storage.Heap
	Indexes []*Index
	mu      sync.Mutex
}

// Col resolves a column by (case-insensitive) name.
func (t *Table) Col(name string) (*Column, error) {
	i, ok := t.colIdx[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown column %s.%s", t.Name, name)
	}
	return &t.Cols[i], nil
}

// PrimaryKeyIndex returns the implicit PK index if the table has one.
func (t *Table) PrimaryKeyIndex() *Index {
	for _, idx := range t.Indexes {
		if idx.IsPrimary {
			return idx
		}
	}
	return nil
}

// Index is a catalog index over one table.
type Index struct {
	Name      string
	Table     string
	ColPos    []int
	ColNames  []string
	Unique    bool
	IsPrimary bool
	Tree      *btree.Tree
	// RangeCapable reports, per component, whether range predicates can use
	// it (plaintext or enclave-ordered; DET components support equality
	// only, §3.1.1).
	RangeCapable []bool
	// CEKs lists enclave keys the index needs for comparisons.
	CEKs []string
}

// Catalog holds schema and key metadata — the system tables. Key metadata
// lives here so "the database is the single source of truth" and metadata is
// backed up with the data (§2.2); only the CMK key material stays in the
// client's provider.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	indexes map[string]*Index
	cmks    map[string]*keys.CMKMetadata
	ceks    map[string]*keys.CEKMetadata
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
		cmks:    make(map[string]*keys.CMKMetadata),
		ceks:    make(map[string]*keys.CEKMetadata),
	}
}

// Errors from catalog lookups.
var (
	ErrNoTable   = errors.New("engine: unknown table")
	ErrNoKeyMeta = errors.New("engine: unknown key metadata")
	ErrExists    = errors.New("engine: object already exists")
)

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error { return c.AddTableLogged(t, nil) }

// AddTableLogged registers a table, running log (when non-nil) inside the
// catalog's critical section after the uniqueness check and before the table
// becomes visible. Primaries log the creating RecDDL there: a concurrent
// session can only reach the table after the catalog lock is released, so its
// WAL records are guaranteed to sequence after the record that creates the
// table — otherwise replica redo would hit table-not-found and halt.
func (c *Catalog) AddTableLogged(t *Table, log func()) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("%w: table %s", ErrExists, t.Name)
	}
	t.colIdx = make(map[string]int, len(t.Cols))
	for i := range t.Cols {
		t.Cols[i].Pos = i
		t.colIdx[strings.ToLower(t.Cols[i].Name)] = i
	}
	if log != nil {
		log()
	}
	c.tables[key] = t
	return nil
}

// AddIndex registers an index and attaches it to its table.
func (c *Catalog) AddIndex(idx *Index) error { return c.AddIndexLogged(idx, nil) }

// AddIndexLogged registers an index, running log (when non-nil) before the
// index becomes visible — same ordering guarantee as AddTableLogged.
func (c *Catalog) AddIndexLogged(idx *Index, log func()) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(idx.Name)
	if _, ok := c.indexes[key]; ok {
		return fmt.Errorf("%w: index %s", ErrExists, idx.Name)
	}
	t, ok := c.tables[strings.ToLower(idx.Table)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, idx.Table)
	}
	if log != nil {
		log()
	}
	c.indexes[key] = idx
	t.Indexes = append(t.Indexes, idx)
	return nil
}

// Index resolves an index by name.
func (c *Catalog) Index(name string) (*Index, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idx, ok := c.indexes[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown index %s", name)
	}
	return idx, nil
}

// Tables lists table names (diagnostics).
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	return out
}

// AddCMK stores column master key metadata.
func (c *Catalog) AddCMK(m *keys.CMKMetadata) error { return c.AddCMKLogged(m, nil) }

// AddCMKLogged stores CMK metadata, logging before visibility (a CREATE CEK
// referencing this CMK must sequence after the record that creates it).
func (c *Catalog) AddCMKLogged(m *keys.CMKMetadata, log func()) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(m.Name)
	if _, ok := c.cmks[key]; ok {
		return fmt.Errorf("%w: CMK %s", ErrExists, m.Name)
	}
	if log != nil {
		log()
	}
	c.cmks[key] = m
	return nil
}

// AddCEK stores column encryption key metadata.
func (c *Catalog) AddCEK(m *keys.CEKMetadata) error { return c.AddCEKLogged(m, nil) }

// AddCEKLogged stores CEK metadata, logging before visibility — DDL that
// references the CEK (CREATE TABLE) must sequence after its creating record.
func (c *Catalog) AddCEKLogged(m *keys.CEKMetadata, log func()) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(m.Name)
	if _, ok := c.ceks[key]; ok {
		return fmt.Errorf("%w: CEK %s", ErrExists, m.Name)
	}
	if log != nil {
		log()
	}
	c.ceks[key] = m
	return nil
}

// ReplaceCEK overwrites CEK metadata (rotation).
func (c *Catalog) ReplaceCEK(m *keys.CEKMetadata) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ceks[strings.ToLower(m.Name)] = m
}

// CMK resolves CMK metadata.
func (c *Catalog) CMK(name string) (*keys.CMKMetadata, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.cmks[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: CMK %s", ErrNoKeyMeta, name)
	}
	return m, nil
}

// CEK resolves CEK metadata.
func (c *Catalog) CEK(name string) (*keys.CEKMetadata, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.ceks[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: CEK %s", ErrNoKeyMeta, name)
	}
	return m, nil
}

// EnclaveEnabled reports whether a CEK is enclave-enabled, i.e. whether its
// (primary) wrapping CMK was provisioned with ENCLAVE_COMPUTATIONS (§2.2).
func (c *Catalog) EnclaveEnabled(cekName string) (bool, error) {
	cek, err := c.CEK(cekName)
	if err != nil {
		return false, err
	}
	val := cek.PrimaryValue()
	if val == nil {
		return false, fmt.Errorf("engine: CEK %s has no values", cekName)
	}
	cmk, err := c.CMK(val.CMKName)
	if err != nil {
		return false, err
	}
	return cmk.EnclaveEnabled, nil
}

// EncTypeFor builds the full encryption type of a column from its spec.
func (c *Catalog) EncTypeFor(spec *EncSpec) (sqltypes.EncType, error) {
	if spec == nil {
		return sqltypes.PlaintextType, nil
	}
	enclave, err := c.EnclaveEnabled(spec.CEK)
	if err != nil {
		return sqltypes.EncType{}, err
	}
	// Resolve the canonical CEK name casing from the catalog.
	cek, err := c.CEK(spec.CEK)
	if err != nil {
		return sqltypes.EncType{}, err
	}
	return sqltypes.EncType{
		Scheme:         spec.Scheme,
		CEKName:        cek.Name,
		EnclaveEnabled: enclave,
	}, nil
}

// --- row codec ---
//
// Rows are stored as a cell vector: u16 cell count, then per cell a u32
// length (0 = SQL NULL) followed by the bytes. Encrypted cells hold the
// ciphertext envelope; plaintext cells hold the canonical value encoding.

// encodeRow serializes cells into a heap record.
func encodeRow(cells [][]byte) []byte {
	size := 2
	for _, c := range cells {
		size += 4 + len(c)
	}
	out := make([]byte, size)
	binary.LittleEndian.PutUint16(out, uint16(len(cells)))
	w := 2
	for _, c := range cells {
		binary.LittleEndian.PutUint32(out[w:], uint32(len(c)))
		w += 4
		copy(out[w:], c)
		w += len(c)
	}
	return out
}

// decodeRow parses a heap record into cells. The cells alias rec.
func decodeRow(rec []byte) ([][]byte, error) {
	if len(rec) < 2 {
		return nil, errors.New("engine: short row record")
	}
	n := int(binary.LittleEndian.Uint16(rec))
	cells := make([][]byte, n)
	r := 2
	for i := 0; i < n; i++ {
		if r+4 > len(rec) {
			return nil, errors.New("engine: truncated row record")
		}
		l := int(binary.LittleEndian.Uint32(rec[r:]))
		r += 4
		if r+l > len(rec) {
			return nil, errors.New("engine: truncated row cell")
		}
		if l > 0 {
			cells[i] = rec[r : r+l]
		}
		r += l
	}
	return cells, nil
}

// indexKeyFor extracts an index's composite key from a row's cells.
func (idx *Index) indexKeyFor(cells [][]byte) [][]byte {
	key := make([][]byte, len(idx.ColPos))
	for i, pos := range idx.ColPos {
		if pos < len(cells) {
			key[i] = cells[pos]
		}
	}
	return key
}

// rowIDKey is the composite key wrapper used when logging index operations.
func copyKey(key [][]byte) [][]byte {
	out := make([][]byte, len(key))
	for i, k := range key {
		if k != nil {
			out[i] = append([]byte(nil), k...)
		}
	}
	return out
}

var _ = storage.RowID(0) // storage is used throughout the package

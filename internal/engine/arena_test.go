package engine

// Regression tests for the cellArena batch-lifetime contract (batch.go): the
// heap-scan path copies row cells into the arena, the arena is reclaimed
// wholesale once a batch drains, and therefore NOTHING emitted from a batch
// may retain arena-backed cells past the consumer callback. executeSelect's
// per-cell copy is the load-bearing half of that contract; these tests make
// the aliasing hazard observable so removing the copy (or resetting the
// arena while a join pin is outstanding) fails deterministically instead of
// corrupting results only under the right batch geometry.

import (
	"bytes"
	"fmt"
	"testing"

	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/storage"
)

// TestArenaMultiBatchScanIntegrity runs a full-scan SELECT at BatchSize 2 so
// the nine matching rows drain through five flush/reset cycles, each reusing
// the same arena chunk bytes. If any emitted row still aliased the arena, a
// later batch would overwrite its distinctive cells and the per-row check
// would see another row's values.
func TestArenaMultiBatchScanIntegrity(t *testing.T) {
	env := newTestEnv(t, false)
	env.engine.batch = 2
	env.mustExec("CREATE TABLE notes (id int PRIMARY KEY, tag int, body varchar(30))", nil)
	for i := int64(1); i <= 9; i++ {
		env.mustExec("INSERT INTO notes (id, tag, body) VALUES (@i, @t, @b)", Params{
			"i": intParam(i), "t": intParam(1), "b": strParam(fmt.Sprintf("body-%03d", i)),
		})
	}
	// WHERE on the non-indexed tag column forces the heap-scan (arena) path.
	rs := env.mustExec("SELECT id, body FROM notes WHERE tag = @t", Params{"t": intParam(1)})
	if len(rs.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rs.Rows))
	}
	seen := map[int64]bool{}
	for _, row := range rs.Rows {
		id, _ := sqltypes.Decode(row[0])
		body, _ := sqltypes.Decode(row[1])
		if want := fmt.Sprintf("body-%03d", id.I); body.S != want {
			t.Fatalf("row %d carries %q, want %q: emitted cell aliased arena memory reused by a later batch", id.I, body.S, want)
		}
		if seen[id.I] {
			t.Fatalf("row %d emitted twice", id.I)
		}
		seen[id.I] = true
	}
}

// TestArenaJoinPinIntegrity drives the probeJoin pin/release path: the
// outer row's arena-backed cells are shared by every joined pair the probe
// adds, and intermediate flushes (forced here by BatchSize 2 against three
// pairs per outer row) must not reclaim them mid-probe. Wrong pin handling
// shows up as pairs carrying another outer row's cells.
func TestArenaJoinPinIntegrity(t *testing.T) {
	env := newTestEnv(t, false)
	env.engine.batch = 2
	env.mustExec("CREATE TABLE side (id int PRIMARY KEY, label varchar(20))", nil)
	env.mustExec("CREATE TABLE fact (fid int PRIMARY KEY, sid int, fname varchar(20), grp int)", nil)
	for i := int64(1); i <= 3; i++ {
		env.mustExec("INSERT INTO side (id, label) VALUES (@i, @l)",
			Params{"i": intParam(i), "l": strParam(fmt.Sprintf("label-%d", i))})
	}
	for i := int64(1); i <= 9; i++ {
		env.mustExec("INSERT INTO fact (fid, sid, fname, grp) VALUES (@f, @s, @n, @g)", Params{
			"f": intParam(i), "s": intParam(i%3 + 1),
			"n": strParam(fmt.Sprintf("fact-%d", i)), "g": intParam(1),
		})
	}
	// grp is not indexed, so fact is scanned (arena path) as the outer table.
	rs := env.mustExec(
		"SELECT fact.fid, fact.fname, side.label FROM fact JOIN side ON fact.sid = side.id WHERE fact.grp = @g",
		Params{"g": intParam(1)})
	if len(rs.Rows) != 9 {
		t.Fatalf("join rows = %d, want 9", len(rs.Rows))
	}
	for _, row := range rs.Rows {
		fid, _ := sqltypes.Decode(row[0])
		fname, _ := sqltypes.Decode(row[1])
		label, _ := sqltypes.Decode(row[2])
		if want := fmt.Sprintf("fact-%d", fid.I); fname.S != want {
			t.Fatalf("pair for fid %d carries %q, want %q", fid.I, fname.S, want)
		}
		if want := fmt.Sprintf("label-%d", fid.I%3+1); label.S != want {
			t.Fatalf("pair for fid %d joined %q, want %q: outer cells reclaimed mid-probe", fid.I, label.S, want)
		}
	}
}

// arenaCell builds a cell of distinctive bytes sized to land many cells in
// one chunk, so offset reuse after reset is byte-for-byte observable.
func arenaCell(ch byte) [][]byte { return [][]byte{bytes.Repeat([]byte{ch}, 64)} }

// TestRowBatcherArenaReuseAfterFlush pins down the copy contract at the
// rowBatcher level: a consumer that retains emitted slots past its callback
// observes the next batch's bytes, because flush resets the arena and the
// bump allocator restarts at offset zero. This is the hazard executeSelect's
// per-cell copy exists to absorb — if this test ever stops seeing reuse, the
// arena has silently started leaking per-batch allocations instead.
func TestRowBatcherArenaReuseAfterFlush(t *testing.T) {
	var retained [][]byte // deliberately violates the contract to observe it
	b := &rowBatcher{size: 2, fn: func(m *matchedRow) (bool, error) {
		retained = append(retained, m.slots...)
		return true, nil
	}}
	if err := b.add(storage.RowID(1), b.arena.copyRow(arenaCell('A'))); err != nil {
		t.Fatal(err)
	}
	// Second add fills the batch and flushes; the arena resets behind it.
	if err := b.add(storage.RowID(2), b.arena.copyRow(arenaCell('B'))); err != nil {
		t.Fatal(err)
	}
	if len(retained) != 2 || retained[0][0] != 'A' || retained[1][0] != 'B' {
		t.Fatalf("sanity: callback saw %q/%q", retained[0][:1], retained[1][:1])
	}
	// The next batch's first copy lands at offset zero of the same chunk,
	// directly over the retained 'A' cell.
	_ = b.arena.copyRow(arenaCell('C'))
	if retained[0][0] != 'C' {
		t.Fatalf("retained cell reads %q after reset; arena no longer reuses chunks, batch lifetime contract changed", retained[0][:1])
	}
}

// TestRowBatcherPinBlocksResetUntilRelease proves the join pin actually
// holds arena memory across an intermediate flush, and that release really
// does return it to the allocator.
func TestRowBatcherPinBlocksResetUntilRelease(t *testing.T) {
	b := &rowBatcher{size: 2, fn: func(m *matchedRow) (bool, error) { return true, nil }}
	outer := b.arena.copyRow(arenaCell('O'))

	// A probe in flight: pairs sharing the outer cells keep arriving while
	// the batch flushes in between.
	b.pinned = true
	for i := 0; i < 3; i++ { // three pairs at size 2 → one intermediate flush
		pair := [][]byte{outer[0], b.arena.copyCell(bytes.Repeat([]byte{'p'}, 64))}
		if err := b.add(storage.RowID(uint64(i)), pair); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outer[0], bytes.Repeat([]byte{'O'}, 64)) {
		t.Fatal("pinned outer cells were reclaimed by an intermediate flush")
	}

	// Probe done: release the pin, drain, and confirm the chunk is reused.
	b.pinned = false
	if err := b.flush(); err != nil {
		t.Fatal(err)
	}
	b.maybeReset()
	_ = b.arena.copyRow(arenaCell('X'))
	if outer[0][0] != 'X' {
		t.Fatal("arena not reclaimed after pin release")
	}
}

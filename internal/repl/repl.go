// Package repl implements WAL-shipping replication: a primary streams its
// write-ahead log to read replicas over a framed gob protocol (the same
// framing discipline as the TDS front door, internal/tds), replicas apply
// physical redo into their own buffer pools, and a replica can be promoted
// to primary after the original dies.
//
// The trust story mirrors the paper's: the replication stream is served by
// the untrusted server and carries exactly what the log carries — for
// encrypted columns, ciphertext. A replica never receives CEKs with the
// stream (its enclave is empty), so a compromised replica host learns
// nothing beyond what the primary's host already exposes. The Primary
// carries a Tap, like the TDS server, so the leakage harness can observe
// every shipped byte and assert that invariant.
//
// Flow control is LSN-based: each replica acknowledges the highest LSN it
// has durably applied, the primary records that progress in the WAL's
// stream table, and log truncation is gated on the slowest replica — the
// replication analogue of §4.5's "deferred transactions pin the log".
package repl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"alwaysencrypted/internal/obs"
	"alwaysencrypted/internal/storage"
	"alwaysencrypted/internal/tds"
)

// Hello is the replica's stream subscription: who it is and the first LSN it
// still needs. Everything before FromLSN is implicitly acknowledged.
type Hello struct {
	ReplicaID string
	FromLSN   uint64
}

// Batch is one shipment of log records. An empty Records slice is a
// heartbeat: it carries the primary's current NextLSN so an idle replica can
// still measure lag, and keeps the connection's liveness observable.
type Batch struct {
	Records []storage.Record
	// NextLSN is the primary's next-to-be-assigned LSN at send time.
	NextLSN uint64
	// SentAtUnixNano timestamps the shipment for lag-seconds measurement.
	SentAtUnixNano int64
	// Err is a terminal stream error (e.g. the requested LSN was truncated);
	// the replica must re-seed from a fresh copy.
	Err string
}

// Ack is the replica's progress report: every record up to and including
// AckLSN has been applied to its local WAL and storage.
type Ack struct {
	AckLSN uint64
}

// Primary serves the replication endpoint over a listener: one goroutine per
// replica, streaming from the shared WAL.
type Primary struct {
	WAL *storage.WAL
	// Tap observes stream traffic ("p→r" batches, "r→p" acks) — the leakage
	// harness hook, as on the TDS server.
	Tap tds.Tap

	// IdleTimeout bounds the wait for a replica's next ack; WriteTimeout
	// bounds one batch write. Zero means the tds package defaults.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	// BatchMax caps records per batch (default 256, keeping batches well
	// under the frame limit).
	BatchMax int
	// Heartbeat is the idle-stream heartbeat interval (default 200ms).
	Heartbeat time.Duration

	batches  *obs.Counter
	records  *obs.Counter
	replicas *obs.Gauge

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// NewPrimary wraps a WAL as a replication source, reporting into reg (nil for
// none).
func NewPrimary(wal *storage.WAL, reg *obs.Registry) *Primary {
	p := &Primary{
		WAL:      wal,
		conns:    make(map[net.Conn]struct{}),
		batches:  reg.Counter("repl.batches_sent"),
		records:  reg.Counter("repl.records_shipped"),
		replicas: reg.Gauge("repl.replicas_connected"),
	}
	if reg != nil {
		reg.GaugeFunc("repl.min_acked_lsn", func() int64 {
			ack, ok := wal.MinStreamAck()
			if !ok {
				return 0
			}
			return int64(ack)
		})
	}
	return p
}

// Serve accepts replica connections until the listener closes.
func (p *Primary) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			conn.Close()
			return nil
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		go p.handle(conn)
	}
}

// ServeConn streams to a single established connection (e.g. one side of
// net.Pipe); it blocks until the stream ends.
func (p *Primary) ServeConn(conn net.Conn) { p.handle(conn) }

// Close tears down all replica streams.
func (p *Primary) Close() {
	p.mu.Lock()
	p.done = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = map[net.Conn]struct{}{}
	p.mu.Unlock()
}

func (p *Primary) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
	}()
	idle, write := p.IdleTimeout, p.WriteTimeout
	if idle == 0 {
		idle = tds.DefaultIdleTimeout
	}
	if write == 0 {
		write = tds.DefaultWriteTimeout
	}
	batchMax := p.BatchMax
	if batchMax <= 0 {
		batchMax = 256
	}
	heartbeat := p.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 200 * time.Millisecond
	}

	fr := tds.NewFrameReader(conn, idle)
	fw := tds.NewFrameWriter(conn, write)
	// Hello/acks from the replica stay capped at MaxFrameSize; outbound
	// batches (page images can be big) stream across frames.
	fw.SetStreaming(true)
	dec := gob.NewDecoder(fr)
	enc := gob.NewEncoder(fw)

	var hello Hello
	if err := fr.BeginMessage(); err != nil {
		return
	}
	if err := dec.Decode(&hello); err != nil {
		return
	}
	if p.Tap != nil {
		p.Tap("r→p", &hello)
	}
	id := hello.ReplicaID
	if id == "" {
		id = conn.RemoteAddr().String()
	}
	// LSNs start at 1; FromLSN == 0 (never sent by our replicas) would
	// underflow the ack below to 2^64-1 and disable log retention for this
	// stream. Clamp it to "from the beginning".
	if hello.FromLSN == 0 {
		hello.FromLSN = 1
	}
	// Register stream progress: everything before FromLSN is already applied
	// on the replica side, so truncation may pass it but nothing newer.
	p.WAL.PinStream(id, hello.FromLSN-1)
	defer p.WAL.UnpinStream(id)
	p.replicas.Add(1)
	defer p.replicas.Add(-1)

	// Acks arrive asynchronously on the same connection; a dead replica is
	// detected here and stops the Follow loop.
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for {
			var ack Ack
			if err := fr.BeginMessage(); err != nil {
				return
			}
			if err := dec.Decode(&ack); err != nil {
				return
			}
			if p.Tap != nil {
				p.Tap("r→p", &ack)
			}
			p.WAL.PinStream(id, ack.AckLSN)
		}
	}()

	from := hello.FromLSN
	for {
		recs, next, err := p.WAL.Follow(from, batchMax, stop, heartbeat)
		if errors.Is(err, storage.ErrFollowStopped) {
			return
		}
		batch := Batch{Records: recs, NextLSN: next, SentAtUnixNano: time.Now().UnixNano()}
		if err != nil {
			batch.Err = err.Error()
		}
		if p.Tap != nil {
			p.Tap("p→r", &batch)
		}
		if err := enc.Encode(&batch); err != nil {
			return
		}
		if err := fw.Flush(); err != nil {
			return
		}
		p.batches.Inc()
		p.records.Add(uint64(len(recs)))
		if batch.Err != "" {
			return
		}
		if n := len(recs); n > 0 {
			from = recs[n-1].LSN + 1
		}
	}
}

// MinAckedLSN reports the slowest connected replica's progress.
func (p *Primary) MinAckedLSN() (uint64, bool) { return p.WAL.MinStreamAck() }

// ErrStream is the terminal-error wrapper replicas see for Batch.Err.
var ErrStream = errors.New("repl: stream error from primary")

func streamErr(msg string) error { return fmt.Errorf("%w: %s", ErrStream, msg) }

package repl

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchSchema identifies the BENCH_repl.json layout. Bump only with a new
// suffix; downstream tooling keys on this string.
const BenchSchema = "alwaysencrypted/repl-bench/v1"

// BenchReport is the stable serialized form of a replication benchmark run:
// steady-state lag under load, redo throughput, and (when exercised) the
// failover timeline.
type BenchReport struct {
	Schema string   `json:"schema"`
	Run    BenchRun `json:"run"`
}

// BenchRun holds one measurement.
type BenchRun struct {
	Workload   string  `json:"workload"`
	DurationMs float64 `json:"duration_ms"`

	// Primary-side volume.
	RecordsShipped uint64 `json:"records_shipped"`
	BatchesSent    uint64 `json:"batches_sent"`

	// Replica-side redo.
	RedoRecords          uint64  `json:"redo_records"`
	RedoRecordsPerSecond float64 `json:"redo_records_per_second"`

	// Steady-state lag samples (records behind primary, and shipment age in
	// milliseconds), summarized as percentiles.
	LagRecordsP50 int64 `json:"lag_records_p50"`
	LagRecordsP95 int64 `json:"lag_records_p95"`
	LagRecordsMax int64 `json:"lag_records_max"`
	LagMsP50      int64 `json:"lag_ms_p50"`
	LagMsP95      int64 `json:"lag_ms_p95"`
	LagMsMax      int64 `json:"lag_ms_max"`
	LagSamples    int   `json:"lag_samples"`

	// Failover, when the run exercised it.
	FailoverMs       float64 `json:"failover_ms,omitempty"`
	ReattestCount    uint64  `json:"reattest_count,omitempty"`
	PostFailoverRows int     `json:"post_failover_rows,omitempty"`
}

// NewBenchReport wraps a run in the versioned envelope.
func NewBenchReport(run BenchRun) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Run: run}
}

// WriteFile serializes the report to path (the BENCH_repl.json artifact).
func (rep *BenchReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ValidateBenchReport checks the invariants downstream tooling relies on.
func ValidateBenchReport(b []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("repl: bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("repl: bench report schema %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.Run.DurationMs <= 0 {
		return nil, fmt.Errorf("repl: bench report has no duration")
	}
	if rep.Run.LagSamples == 0 {
		return nil, fmt.Errorf("repl: bench report has no lag samples")
	}
	return &rep, nil
}

package repl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"alwaysencrypted/internal/engine"
	"alwaysencrypted/internal/obs"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/tds"
)

// ReplicaConfig wires a redo loop to a primary.
type ReplicaConfig struct {
	// PrimaryAddr is the primary's replication endpoint (TCP).
	PrimaryAddr string
	// Conn is an already-established transport (e.g. net.Pipe); when set,
	// PrimaryAddr is ignored.
	Conn net.Conn
	// ReplicaID names this replica in the primary's stream table.
	ReplicaID string
	// Engine is the replica's (read-only) engine; its WAL mirrors the
	// primary's and its storage receives physical redo.
	Engine *engine.Engine
	// Obs receives lag and throughput instruments (nil for none).
	Obs *obs.Registry
	// WriteTimeout bounds ack writes (default: tds package default).
	WriteTimeout time.Duration
}

// Replica is a running redo loop: it subscribes to the primary's WAL from
// its local high-water mark, mirrors every record into its own WAL
// (AppendAt), and applies it through the RedoApplier. It stops on stream
// loss (primary death, truncation) or Stop().
type Replica struct {
	cfg     ReplicaConfig
	applier *engine.RedoApplier
	conn    net.Conn

	lagRecords *obs.Gauge
	lagMs      *obs.Gauge
	redoRecs   *obs.Counter
	redoBatch  *obs.Counter

	stopOnce sync.Once
	done     chan struct{}
	err      atomic.Value // error

	// applyMu serializes Apply with promotion: Promote must not race a batch
	// that is mid-application.
	applyMu sync.Mutex
	stopped atomic.Bool
}

// StartReplica connects to the primary and launches the redo loop. The
// engine is switched to read-only; Promote (via the applier's owner)
// switches it back.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Engine == nil {
		return nil, errors.New("repl: replica needs an engine")
	}
	conn := cfg.Conn
	if conn == nil {
		var err error
		conn, err = net.Dial("tcp", cfg.PrimaryAddr)
		if err != nil {
			return nil, fmt.Errorf("repl: dial primary: %w", err)
		}
	}
	cfg.Engine.SetReadOnly(true)
	r := &Replica{
		cfg:        cfg,
		applier:    engine.NewRedoApplier(cfg.Engine),
		conn:       conn,
		lagRecords: cfg.Obs.Gauge("repl.lag_records"),
		lagMs:      cfg.Obs.Gauge("repl.lag_ms"),
		redoRecs:   cfg.Obs.Counter("repl.redo_records"),
		redoBatch:  cfg.Obs.Counter("repl.redo_batches"),
		done:       make(chan struct{}),
	}
	if cfg.Obs != nil {
		cfg.Obs.GaugeFunc("repl.applied_lsn", func() int64 {
			return int64(r.applier.AppliedLSN())
		})
	}
	go r.run()
	return r, nil
}

// Applier exposes the redo applier (promotion needs it).
func (r *Replica) Applier() *engine.RedoApplier { return r.applier }

// AppliedLSN is the highest LSN applied so far.
func (r *Replica) AppliedLSN() uint64 { return r.applier.AppliedLSN() }

// Done closes when the redo loop exits.
func (r *Replica) Done() <-chan struct{} { return r.done }

// Err reports why the loop exited (nil after a clean Stop).
func (r *Replica) Err() error {
	if e, ok := r.err.Load().(error); ok {
		return e
	}
	return nil
}

// Stop halts the redo loop and waits for it to exit.
func (r *Replica) Stop() {
	r.stopped.Store(true)
	r.stopOnce.Do(func() { r.conn.Close() })
	<-r.done
}

// WaitForLSN blocks until the replica has applied every record below lsn, the
// loop dies, or the timeout expires.
func (r *Replica) WaitForLSN(lsn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if r.applier.AppliedLSN()+1 >= lsn {
			return nil
		}
		select {
		case <-r.done:
			if err := r.Err(); err != nil {
				return err
			}
			return errors.New("repl: replica stopped before reaching LSN")
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: timed out at LSN %d waiting for %d", r.applier.AppliedLSN(), lsn)
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *Replica) fail(err error) {
	if err != nil && !r.stopped.Load() {
		r.err.Store(err)
	}
}

func (r *Replica) run() {
	defer close(r.done)
	defer r.conn.Close()

	write := r.cfg.WriteTimeout
	if write == 0 {
		write = tds.DefaultWriteTimeout
	}
	// No idle timeout on the batch reader: the primary heartbeats, and a dead
	// primary closes the socket (or is detected by the operator promoting us).
	// No per-message cap either — batches stream across frames.
	fr := tds.NewFrameReader(r.conn, 0)
	fr.SetMessageLimit(0)
	fw := tds.NewFrameWriter(r.conn, write)
	dec := gob.NewDecoder(fr)
	enc := gob.NewEncoder(fw)

	wal := r.cfg.Engine.WAL()
	hello := Hello{ReplicaID: r.cfg.ReplicaID, FromLSN: wal.NextLSN()}
	if err := enc.Encode(&hello); err != nil {
		r.fail(err)
		return
	}
	if err := fw.Flush(); err != nil {
		r.fail(err)
		return
	}

	for {
		var batch Batch
		if err := fr.BeginMessage(); err != nil {
			r.fail(err)
			return
		}
		if err := dec.Decode(&batch); err != nil {
			r.fail(err)
			return
		}
		if batch.Err != "" {
			r.fail(streamErr(batch.Err))
			return
		}
		r.applyMu.Lock()
		if r.stopped.Load() {
			r.applyMu.Unlock()
			return
		}
		// Redo tracing: WAL records carry the originating statement's trace
		// ID, so each contiguous run of same-origin records becomes one
		// replica-side trace whose Link points back at the primary trace —
		// a cross-node statement→redo join with no extra wire traffic.
		tracer := r.cfg.Engine.Tracer()
		var redoAct *trace.Active
		var redoSpan trace.SpanRef
		var redoOrigin trace.ID
		var redoRecs int64
		finishRedo := func() {
			if redoAct != nil {
				redoSpan.Attr("records", redoRecs)
				redoSpan.End()
				redoAct.Finish(nil)
				redoAct, redoRecs = nil, 0
			}
		}
		for i := range batch.Records {
			rec := &batch.Records[i]
			if tracer != nil && rec.Trace != redoOrigin {
				finishRedo()
				redoOrigin = rec.Trace
				if !redoOrigin.IsZero() {
					redoAct = tracer.Start(trace.ID{}, trace.KindRedo)
					redoAct.SetLink(redoOrigin)
					redoSpan = redoAct.StartSpan("redo.apply")
					redoRecs = 0
				}
			}
			// Mirror into the local log first: on restart the replica replays
			// its own WAL from scratch, so the log is the source of truth.
			wal.AppendAt(*rec)
			if err := r.applier.Apply(rec); err != nil {
				if redoAct != nil {
					redoSpan.End()
					redoAct.Finish(err)
				}
				r.applyMu.Unlock()
				r.fail(err)
				return
			}
			redoRecs++
		}
		finishRedo()
		redoOrigin = trace.ID{}
		applied := r.applier.AppliedLSN()
		r.applyMu.Unlock()
		r.redoBatch.Inc()
		r.redoRecs.Add(uint64(len(batch.Records)))

		// Lag: records the primary has that we have not applied, and the age
		// of this shipment when we finished applying it.
		if batch.NextLSN > 0 {
			lag := int64(batch.NextLSN) - 1 - int64(applied)
			if lag < 0 {
				lag = 0
			}
			r.lagRecords.Set(lag)
			if lag == 0 {
				r.lagMs.Set(0)
			} else if batch.SentAtUnixNano > 0 {
				r.lagMs.Set((time.Now().UnixNano() - batch.SentAtUnixNano) / int64(time.Millisecond))
			}
		}

		ack := Ack{AckLSN: applied}
		if err := enc.Encode(&ack); err != nil {
			r.fail(err)
			return
		}
		if err := fw.Flush(); err != nil {
			r.fail(err)
			return
		}
	}
}

// PauseApply runs fn with the apply loop excluded — promotion uses it to
// drain in-flight application before rewiring the engine.
func (r *Replica) PauseApply(fn func()) {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	fn()
}

package repl

import (
	"encoding/gob"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"alwaysencrypted/internal/storage"
	"alwaysencrypted/internal/tds"
)

// fakeReplica speaks the replica half of the protocol by hand, so the
// Primary can be tested without an engine.
type fakeReplica struct {
	conn net.Conn
	fr   *tds.FrameReader
	fw   *tds.FrameWriter
	dec  *gob.Decoder
	enc  *gob.Encoder
}

func dialFake(t *testing.T, p *Primary, id string, from uint64) *fakeReplica {
	t.Helper()
	c, s := net.Pipe()
	t.Cleanup(func() { c.Close(); s.Close() })
	go p.ServeConn(s)
	f := &fakeReplica{conn: c, fr: tds.NewFrameReader(c, 0), fw: tds.NewFrameWriter(c, time.Second)}
	f.dec = gob.NewDecoder(f.fr)
	f.enc = gob.NewEncoder(f.fw)
	if err := f.enc.Encode(&Hello{ReplicaID: id, FromLSN: from}); err != nil {
		t.Fatal(err)
	}
	if err := f.fw.Flush(); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fakeReplica) recv(t *testing.T) Batch {
	t.Helper()
	var b Batch
	if err := f.fr.BeginMessage(); err != nil {
		t.Fatal(err)
	}
	if err := f.dec.Decode(&b); err != nil {
		t.Fatal(err)
	}
	return b
}

func (f *fakeReplica) ack(t *testing.T, lsn uint64) {
	t.Helper()
	if err := f.enc.Encode(&Ack{AckLSN: lsn}); err != nil {
		t.Fatal(err)
	}
	if err := f.fw.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestPrimaryStreamsAndTracksAcks(t *testing.T) {
	wal := storage.NewWAL()
	for i := 0; i < 5; i++ {
		wal.Append(storage.Record{Type: storage.RecCheckpoint})
	}
	p := NewPrimary(wal, nil)
	defer p.Close()

	f := dialFake(t, p, "fake-1", 1)
	var got []storage.Record
	for len(got) < 5 {
		b := f.recv(t)
		if b.Err != "" {
			t.Fatalf("stream error: %s", b.Err)
		}
		got = append(got, b.Records...)
	}
	if got[0].LSN != 1 || got[4].LSN != 5 {
		t.Fatalf("records %d..%d", got[0].LSN, got[4].LSN)
	}

	// Until an ack arrives, truncation is held at the subscription point.
	if err := wal.TruncateBefore(4); err == nil {
		t.Fatal("truncation passed an unacked replica")
	}
	f.ack(t, 5)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ack, ok := p.MinAckedLSN(); ok && ack == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ack never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if err := wal.TruncateBefore(6); err != nil {
		t.Fatal(err)
	}

	// New appends keep flowing on the live stream.
	wal.Append(storage.Record{Type: storage.RecCheckpoint})
	b := f.recv(t)
	if len(b.Records) != 1 || b.Records[0].LSN != 6 {
		t.Fatalf("live batch = %+v", b)
	}
}

func TestPrimaryHeartbeatOnIdleStream(t *testing.T) {
	wal := storage.NewWAL()
	wal.Append(storage.Record{Type: storage.RecCheckpoint})
	p := NewPrimary(wal, nil)
	p.Heartbeat = 10 * time.Millisecond
	defer p.Close()

	f := dialFake(t, p, "fake-hb", 1)
	b := f.recv(t) // the backlog
	if len(b.Records) != 1 {
		t.Fatalf("backlog = %d records", len(b.Records))
	}
	f.ack(t, 1)
	b = f.recv(t) // caught up: next shipment is a heartbeat
	if len(b.Records) != 0 || b.Err != "" {
		t.Fatalf("heartbeat = %+v", b)
	}
	if b.NextLSN != 2 {
		t.Fatalf("heartbeat NextLSN = %d, want 2", b.NextLSN)
	}
	if b.SentAtUnixNano == 0 {
		t.Fatal("heartbeat not timestamped")
	}
}

// A Hello with FromLSN == 0 (LSNs start at 1) must not underflow the stream
// pin to 2^64-1 — that would wreck log retention for the replica.
func TestPrimaryClampsZeroFromLSN(t *testing.T) {
	wal := storage.NewWAL()
	wal.Append(storage.Record{Type: storage.RecCheckpoint})
	p := NewPrimary(wal, nil)
	defer p.Close()

	f := dialFake(t, p, "fake-zero", 0)
	b := f.recv(t)
	if b.Err != "" || len(b.Records) != 1 || b.Records[0].LSN != 1 {
		t.Fatalf("zero-FromLSN batch = %+v", b)
	}
	// The stream registered with ack 0, not an underflowed huge value.
	if ack, ok := p.MinAckedLSN(); !ok || ack != 0 {
		t.Fatalf("min acked = %d, %v", ack, ok)
	}
	// Retention still holds for the un-acked record.
	if err := wal.TruncateBefore(2); err == nil {
		t.Fatal("truncation ignored the zero-FromLSN stream")
	}
}

func TestPrimaryRejectsTruncatedSubscription(t *testing.T) {
	wal := storage.NewWAL()
	for i := 0; i < 10; i++ {
		wal.Append(storage.Record{Type: storage.RecCheckpoint})
	}
	if err := wal.TruncateBefore(6); err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(wal, nil)
	defer p.Close()

	f := dialFake(t, p, "fake-stale", 3)
	b := f.recv(t)
	if b.Err == "" || !strings.Contains(b.Err, "truncated") {
		t.Fatalf("stale subscription batch = %+v", b)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := NewBenchReport(BenchRun{
		Workload:   "tpcc",
		DurationMs: 1500,
		LagSamples: 10,
	})
	path := t.TempDir() + "/BENCH_repl.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateBenchReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Run.Workload != "tpcc" {
		t.Fatalf("round trip = %+v", got.Run)
	}
	// A schema mismatch is a hard error.
	if _, err := ValidateBenchReport([]byte(`{"schema":"other/v9","run":{"duration_ms":1,"lag_samples":1}}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

package driver

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/engine"
	"alwaysencrypted/internal/keys"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/tds"
)

// serverEnv stands up a complete server: engine + enclave + HGS + TDS over
// a TCP loopback listener, plus the client-side provider/vault and policy.
type serverEnv struct {
	t       testing.TB
	addr    string
	server  *tds.Server
	engine  *engine.Engine
	encl    *enclave.Enclave
	vault   *keys.MemoryVault
	reg     *keys.ProviderRegistry
	policy  attestation.Policy
	cmkPath map[string]string
}

func newServerEnv(t testing.TB) *serverEnv {
	t.Helper()
	env := &serverEnv{t: t, cmkPath: map[string]string{}}

	authorKey, err := aecrypto.GenerateRSAKey()
	if err != nil {
		t.Fatal(err)
	}
	image, err := enclave.SignImage(authorKey, []byte("es-enclave"), 2)
	if err != nil {
		t.Fatal(err)
	}
	env.encl, err = enclave.Load(image, 10, enclave.Options{
		Threads: 2, SpinDuration: 2 * time.Microsecond, CrossingCost: 50 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.encl.Close)

	hgs, err := attestation.NewHGS()
	if err != nil {
		t.Fatal(err)
	}
	tcg := []byte("driver-test-host")
	host, err := attestation.NewHost(tcg, 10)
	if err != nil {
		t.Fatal(err)
	}
	hgs.RegisterHost(tcg)
	env.policy = attestation.Policy{
		HGSKey:            hgs.SigningKey(),
		TrustedAuthorIDs:  []attestation.Measurement{image.AuthorID()},
		MinEnclaveVersion: 2,
		MinHostVersion:    10,
	}

	env.engine = engine.New(engine.Config{Enclave: env.encl, Host: host, HGS: hgs, CTR: true})
	env.server = tds.NewServer(env.engine)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	env.addr = l.Addr().String()
	go env.server.Serve(l)
	t.Cleanup(func() { l.Close(); env.server.Close() })

	env.vault = keys.NewMemoryVault(keys.ProviderVault)
	env.reg = keys.NewProviderRegistry()
	env.reg.Register(env.vault)
	return env
}

// provision creates keys + registers metadata via an admin connection.
func (env *serverEnv) provision(cmkName, cekName string, enclaveEnabled bool) {
	env.t.Helper()
	path := "https://vault.test/keys/" + cmkName
	env.cmkPath[cmkName] = path
	if _, err := env.vault.CreateKey(path); err != nil {
		env.t.Fatal(err)
	}
	cmk, err := keys.ProvisionCMK(env.vault, cmkName, path, enclaveEnabled)
	if err != nil {
		env.t.Fatal(err)
	}
	cek, _, err := keys.ProvisionCEK(env.vault, cmk, cekName)
	if err != nil {
		env.t.Fatal(err)
	}
	c := env.dial(Config{}) // plain admin connection for DDL
	defer c.Close()
	enclClause := ""
	if enclaveEnabled {
		enclClause = fmt.Sprintf(", ENCLAVE_COMPUTATIONS (SIGNATURE = 0x%x)", cmk.Signature)
	}
	if _, err := c.Exec(fmt.Sprintf(
		"CREATE COLUMN MASTER KEY %s WITH (KEY_STORE_PROVIDER_NAME = '%s', KEY_PATH = '%s'%s)",
		cmkName, keys.ProviderVault, path, enclClause), nil); err != nil {
		env.t.Fatal(err)
	}
	val := cek.PrimaryValue()
	if _, err := c.Exec(fmt.Sprintf(
		"CREATE COLUMN ENCRYPTION KEY %s WITH VALUES (COLUMN_MASTER_KEY = %s, ALGORITHM = 'RSA_OAEP', ENCRYPTED_VALUE = 0x%x, SIGNATURE = 0x%x)",
		cekName, cmkName, val.EncryptedValue, val.Signature), nil); err != nil {
		env.t.Fatal(err)
	}
}

// dial opens a driver connection with the given config, defaulting the
// providers and policy.
func (env *serverEnv) dial(cfg Config) *Conn {
	env.t.Helper()
	if cfg.Providers == nil {
		cfg.Providers = env.reg
	}
	if cfg.Policy == nil {
		cfg.Policy = &env.policy
	}
	c, err := Dial(env.addr, cfg, nil)
	if err != nil {
		env.t.Fatal(err)
	}
	env.t.Cleanup(func() { c.Close() })
	return c
}

func mustExec(t *testing.T, c *Conn, q string, args map[string]sqltypes.Value) *Rows {
	t.Helper()
	rows, err := c.Exec(q, args)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return rows
}

// TestTransparencyEndToEnd is the paper's whole promise: the application
// issues plaintext queries against encrypted columns and receives plaintext
// results, with ciphertext everywhere in between.
func TestTransparencyEndToEnd(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	admin := env.dial(Config{})
	mustExec(t, admin, `CREATE TABLE customers (id int PRIMARY KEY,
		name varchar(30) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'),
		city varchar(30) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)

	c := env.dial(Config{AlwaysEncrypted: true})
	people := []struct {
		id   int64
		name string
		city string
	}{
		{1, "Ada Lovelace", "Seattle"},
		{2, "Alan Turing", "Zurich"},
		{3, "Grace Hopper", "Seattle"},
	}
	for _, p := range people {
		mustExec(t, c, "INSERT INTO customers (id, name, city) VALUES (@id, @name, @city)",
			map[string]sqltypes.Value{
				"id": sqltypes.Int(p.id), "name": sqltypes.Str(p.name), "city": sqltypes.Str(p.city)})
	}

	// Equality on the RND column (enclave) — plaintext in, plaintext out.
	rows := mustExec(t, c, "SELECT id, name FROM customers WHERE name = @n",
		map[string]sqltypes.Value{"n": sqltypes.Str("Alan Turing")})
	if len(rows.Values) != 1 || rows.Values[0][1].S != "Alan Turing" {
		t.Fatalf("rows = %+v", rows.Values)
	}
	// Equality on the DET column — no enclave involved.
	rows = mustExec(t, c, "SELECT id FROM customers WHERE city = @c",
		map[string]sqltypes.Value{"c": sqltypes.Str("Seattle")})
	if len(rows.Values) != 2 {
		t.Fatalf("DET rows = %d", len(rows.Values))
	}
	// LIKE over the RND column through the enclave.
	rows = mustExec(t, c, "SELECT name FROM customers WHERE name LIKE @p",
		map[string]sqltypes.Value{"p": sqltypes.Str("A%")})
	if len(rows.Values) != 2 {
		t.Fatalf("LIKE rows = %d", len(rows.Values))
	}

	// The strong adversary check: a plain (non-AE) connection reading the
	// table sees only ciphertext for the encrypted columns.
	plain := env.dial(Config{})
	raw := mustExec(t, plain, "SELECT id, name, city FROM customers WHERE id = @i",
		map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	if raw.Values[0][1].Kind != sqltypes.KindBytes {
		t.Fatalf("server-side name column is not ciphertext: %v", raw.Values[0][1])
	}
	if strings.Contains(string(raw.Values[0][1].B), "Ada") {
		t.Fatal("plaintext leaked into stored ciphertext")
	}
}

// TestDescribeRoundTripCounting: AE connections pay one describe round trip
// per execution; plain connections pay none; the describe cache removes the
// repeat cost (the §5.4.1 "not fundamental" optimization).
func TestDescribeRoundTripCounting(t *testing.T) {
	env := newServerEnv(t)
	admin := env.dial(Config{})
	mustExec(t, admin, "CREATE TABLE t (id int PRIMARY KEY, v int)", nil)

	plain := env.dial(Config{})
	for i := int64(0); i < 5; i++ {
		mustExec(t, plain, "INSERT INTO t (id, v) VALUES (@i, @v)",
			map[string]sqltypes.Value{"i": sqltypes.Int(i), "v": sqltypes.Int(i)})
	}
	if plain.DescribeCalls != 0 {
		t.Fatalf("plain connection made %d describe calls", plain.DescribeCalls)
	}

	ae := env.dial(Config{AlwaysEncrypted: true})
	for i := 0; i < 5; i++ {
		mustExec(t, ae, "SELECT v FROM t WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	}
	if ae.DescribeCalls != 5 {
		t.Fatalf("AE connection made %d describe calls, want 5 (one per exec)", ae.DescribeCalls)
	}

	cached := env.dial(Config{AlwaysEncrypted: true, DescribeCache: true})
	for i := 0; i < 5; i++ {
		mustExec(t, cached, "SELECT v FROM t WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	}
	if cached.DescribeCalls != 1 {
		t.Fatalf("cached AE connection made %d describe calls, want 1", cached.DescribeCalls)
	}
}

// TestCEKCacheAvoidsVaultRoundTrips: §4.1 — the driver caches decrypted
// CEKs; the vault sees a bounded number of calls regardless of query count.
func TestCEKCacheAvoidsVaultRoundTrips(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	admin := env.dial(Config{})
	mustExec(t, admin, `CREATE TABLE t (id int PRIMARY KEY,
		v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)

	c := env.dial(Config{AlwaysEncrypted: true})
	before := env.vault.Calls()
	for i := int64(0); i < 20; i++ {
		mustExec(t, c, "INSERT INTO t (id, v) VALUES (@i, @v)",
			map[string]sqltypes.Value{"i": sqltypes.Int(i), "v": sqltypes.Int(i)})
	}
	calls := env.vault.Calls() - before
	if calls > 4 {
		t.Fatalf("vault called %d times for 20 executions; CEK cache broken", calls)
	}

	// Expiry forces a refresh.
	now := time.Now()
	c2 := env.dial(Config{AlwaysEncrypted: true, CEKCacheTTL: time.Minute,
		Now: func() time.Time { now = now.Add(2 * time.Minute); return now }})
	mustExec(t, c2, "SELECT v FROM t WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	before = env.vault.Calls()
	mustExec(t, c2, "SELECT v FROM t WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	if env.vault.Calls() == before {
		t.Fatal("expired CEK cache entry was not refreshed")
	}
}

// TestTrustedKeyPaths: the server substituting metadata pointing at an
// attacker-controlled key path is refused (§4.1).
func TestTrustedKeyPaths(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	admin := env.dial(Config{})
	mustExec(t, admin, `CREATE TABLE t (id int PRIMARY KEY,
		v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)

	good := env.dial(Config{AlwaysEncrypted: true,
		TrustedKeyPaths: []string{env.cmkPath["CMK1"]}})
	mustExec(t, good, "INSERT INTO t (id, v) VALUES (@i, @v)",
		map[string]sqltypes.Value{"i": sqltypes.Int(1), "v": sqltypes.Int(1)})

	bad := env.dial(Config{AlwaysEncrypted: true,
		TrustedKeyPaths: []string{"https://vault.test/keys/OtherKey"}})
	_, err := bad.Exec("INSERT INTO t (id, v) VALUES (@i, @v)",
		map[string]sqltypes.Value{"i": sqltypes.Int(2), "v": sqltypes.Int(2)})
	if !errors.Is(err, ErrUntrustedKeyPath) {
		t.Fatalf("untrusted path: %v", err)
	}
}

// TestForceEncryption: if the server lies that a force-encrypted parameter
// is plaintext, the driver refuses to send it (§4.1).
func TestForceEncryption(t *testing.T) {
	env := newServerEnv(t)
	admin := env.dial(Config{})
	mustExec(t, admin, "CREATE TABLE t (id int PRIMARY KEY, v int)", nil) // v is NOT encrypted
	c := env.dial(Config{AlwaysEncrypted: true, ForceEncrypted: []string{"v"}})
	_, err := c.Exec("INSERT INTO t (id, v) VALUES (@i, @v)",
		map[string]sqltypes.Value{"i": sqltypes.Int(1), "v": sqltypes.Int(42)})
	if !errors.Is(err, ErrForcedEncryption) {
		t.Fatalf("forced encryption: %v", err)
	}
}

// TestAttestationFailureWithholdsKeys: a client whose policy distrusts the
// enclave author never releases keys.
func TestAttestationFailureWithholdsKeys(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	admin := env.dial(Config{})
	mustExec(t, admin, `CREATE TABLE t (id int PRIMARY KEY,
		v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)

	badPolicy := env.policy
	badPolicy.TrustedAuthorIDs = []attestation.Measurement{attestation.Measure([]byte("someone else"))}
	c := env.dial(Config{AlwaysEncrypted: true, Policy: &badPolicy})
	_, err := c.Exec("SELECT id FROM t WHERE v = @v", map[string]sqltypes.Value{"v": sqltypes.Int(1)})
	if err == nil || !strings.Contains(err.Error(), "attestation") {
		t.Fatalf("attestation failure: %v", err)
	}
	if env.encl.Dump().InstalledCEKs != 0 {
		t.Fatal("keys reached the enclave despite failed attestation")
	}
}

// TestOnlineInitialEncryptionViaDriver drives the §2.4.2 DDL fully through
// the driver: the authorization sealing is transparent.
func TestOnlineInitialEncryptionViaDriver(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	admin := env.dial(Config{})
	mustExec(t, admin, "CREATE TABLE pii (id int PRIMARY KEY, ssn varchar(11))", nil)
	c := env.dial(Config{AlwaysEncrypted: true})
	for i := int64(1); i <= 3; i++ {
		mustExec(t, c, "INSERT INTO pii (id, ssn) VALUES (@i, @s)",
			map[string]sqltypes.Value{"i": sqltypes.Int(i), "s": sqltypes.Str(fmt.Sprintf("00%d-00-000%d", i, i))})
	}
	mustExec(t, c, "ALTER TABLE pii ALTER COLUMN ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')", nil)

	// Server-side: ciphertext.
	plain := env.dial(Config{})
	raw := mustExec(t, plain, "SELECT ssn FROM pii WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	if raw.Values[0][0].Kind != sqltypes.KindBytes {
		t.Fatal("ssn not encrypted after DDL")
	}
	// Driver-side: transparent decryption and enclave queries.
	rows := mustExec(t, c, "SELECT ssn FROM pii WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	if rows.Values[0][0].S != "001-00-0001" {
		t.Fatalf("decrypted = %v", rows.Values[0][0])
	}
	rows = mustExec(t, c, "SELECT id FROM pii WHERE ssn = @s",
		map[string]sqltypes.Value{"s": sqltypes.Str("002-00-0002")})
	if len(rows.Values) != 1 || rows.Values[0][0].I != 2 {
		t.Fatalf("post-encryption query = %+v", rows.Values)
	}
}

// TestTransactionsOverWire exercises BEGIN/COMMIT/ROLLBACK through the
// driver, including rollback on connection drop.
func TestTransactionsOverWire(t *testing.T) {
	env := newServerEnv(t)
	admin := env.dial(Config{})
	mustExec(t, admin, "CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	mustExec(t, admin, "INSERT INTO t (id, v) VALUES (@i, @v)",
		map[string]sqltypes.Value{"i": sqltypes.Int(1), "v": sqltypes.Int(10)})

	c := env.dial(Config{})
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, "UPDATE t SET v = @v WHERE id = @i",
		map[string]sqltypes.Value{"v": sqltypes.Int(99), "i": sqltypes.Int(1)})
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	rows := mustExec(t, admin, "SELECT v FROM t WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	if rows.Values[0][0].I != 10 {
		t.Fatalf("v = %v", rows.Values[0][0])
	}

	// Dropped connection mid-transaction rolls back server-side.
	c2 := env.dial(Config{})
	c2.Begin()
	mustExec(t, c2, "UPDATE t SET v = @v WHERE id = @i",
		map[string]sqltypes.Value{"v": sqltypes.Int(77), "i": sqltypes.Int(1)})
	c2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		rows = mustExec(t, admin, "SELECT v FROM t WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
		if rows.Values[0][0].I == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("v = %v after connection drop", rows.Values[0][0])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNullHandling: NULLs for encrypted columns travel unencrypted (absent).
func TestNullHandling(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	admin := env.dial(Config{})
	mustExec(t, admin, `CREATE TABLE t (id int PRIMARY KEY,
		v varchar(10) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	c := env.dial(Config{AlwaysEncrypted: true})
	mustExec(t, c, "INSERT INTO t (id, v) VALUES (@i, @v)",
		map[string]sqltypes.Value{"i": sqltypes.Int(1), "v": sqltypes.Null()})
	rows := mustExec(t, c, "SELECT v FROM t WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	if !rows.Values[0][0].IsNull() {
		t.Fatalf("v = %v", rows.Values[0][0])
	}
	rows = mustExec(t, c, "SELECT id FROM t WHERE v IS NULL", nil)
	if len(rows.Values) != 1 {
		t.Fatalf("IS NULL rows = %d", len(rows.Values))
	}
}

// TestSharedCacheAcrossConns: the process-wide caches of §4.1 are shared.
func TestSharedCacheAcrossConns(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	admin := env.dial(Config{})
	mustExec(t, admin, `CREATE TABLE t (id int PRIMARY KEY,
		v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Deterministic, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)

	shared := NewCache()
	cfg := Config{AlwaysEncrypted: true, Providers: env.reg, Policy: &env.policy}
	c1, err := Dial(env.addr, cfg, shared)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	mustExec(t, c1, "INSERT INTO t (id, v) VALUES (@i, @v)",
		map[string]sqltypes.Value{"i": sqltypes.Int(1), "v": sqltypes.Int(1)})
	before := env.vault.Calls()
	c2, err := Dial(env.addr, cfg, shared)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	mustExec(t, c2, "SELECT v FROM t WHERE id = @i", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	if env.vault.Calls() != before {
		t.Fatal("second connection hit the vault despite the shared CEK cache")
	}
}

package driver

import (
	"crypto/ecdh"

	"alwaysencrypted/internal/attestation"
)

// dhState holds the client's ephemeral DH keypair for one attestation.
type dhState struct {
	priv     *ecdh.PrivateKey
	pubBytes []byte
}

func newDH() (*dhState, error) {
	priv, err := attestation.NewClientDH()
	if err != nil {
		return nil, err
	}
	return &dhState{priv: priv, pubBytes: priv.PublicKey().Bytes()}, nil
}

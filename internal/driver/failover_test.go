package driver

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"

	"alwaysencrypted/internal/sqltypes"
)

// startHalfDeadServer accepts connections, reads exactly one request frame
// and then closes the connection without responding — the transport failure
// where the statement may or may not have executed on the dying primary.
func startHalfDeadServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var hdr [4]byte
				if _, err := io.ReadFull(c, hdr[:]); err != nil {
					return
				}
				io.CopyN(io.Discard, c, int64(binary.BigEndian.Uint32(hdr[:])))
			}(conn)
		}
	}()
	return l.Addr().String()
}

// startDeadOnArrivalServer accepts and immediately closes: every round trip
// fails before the request can have been processed.
func startDeadOnArrivalServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return l.Addr().String()
}

// A SELECT that dies mid-flight is transparently retried on the next address:
// re-reading cannot duplicate effects.
func TestFailoverRetriesReads(t *testing.T) {
	env := newServerEnv(t)
	admin := env.dial(Config{})
	if _, err := admin.Exec("CREATE TABLE t (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec("INSERT INTO t (id) VALUES (@i)",
		map[string]sqltypes.Value{"i": sqltypes.Int(1)}); err != nil {
		t.Fatal(err)
	}

	c, err := DialMulti([]string{startHalfDeadServer(t), env.addr}, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Exec("SELECT id FROM t", nil)
	if err != nil {
		t.Fatalf("read retry after failover: %v", err)
	}
	if len(rows.Values) != 1 || rows.Values[0][0].I != 1 {
		t.Fatalf("rows = %+v", rows.Values)
	}
	if c.Failovers != 1 {
		t.Fatalf("failovers = %d", c.Failovers)
	}
}

// A DML statement that may have executed before the connection died is NOT
// silently re-executed — the promoted replica may already have replayed it,
// and a retry would double-apply. The driver fails over (the connection stays
// usable) but surfaces ErrIndeterminate for the application to resolve.
func TestFailoverDMLIsIndeterminate(t *testing.T) {
	env := newServerEnv(t)
	admin := env.dial(Config{})
	if _, err := admin.Exec("CREATE TABLE t (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}

	c, err := DialMulti([]string{startHalfDeadServer(t), env.addr}, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("INSERT INTO t (id) VALUES (@i)", map[string]sqltypes.Value{"i": sqltypes.Int(1)})
	if !errors.Is(err, ErrIndeterminate) {
		t.Fatalf("in-flight DML err = %v, want ErrIndeterminate", err)
	}
	if c.Failovers != 1 {
		t.Fatalf("failovers = %d", c.Failovers)
	}
	// The row was never applied anywhere; the application's retry (its
	// decision, not the driver's) succeeds exactly once on the new server.
	if _, err := c.Exec("INSERT INTO t (id) VALUES (@i)",
		map[string]sqltypes.Value{"i": sqltypes.Int(1)}); err != nil {
		t.Fatalf("post-failover retry: %v", err)
	}
	rows, err := c.Exec("SELECT id FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Values) != 1 {
		t.Fatalf("rows after app retry = %d, want 1", len(rows.Values))
	}
}

// DML whose failure happened before the execute request could reach the wire
// (here: the describe round trip dies) IS retried transparently — the
// statement cannot have taken effect anywhere.
func TestFailoverRetriesUnsentDML(t *testing.T) {
	env := newServerEnv(t)
	admin := env.dial(Config{})
	if _, err := admin.Exec("CREATE TABLE t (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}

	c, err := DialMulti([]string{startDeadOnArrivalServer(t), env.addr},
		Config{AlwaysEncrypted: true, Providers: env.reg, Policy: &env.policy}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// AE mode fails in describe, before the statement is sent: safe to retry.
	if _, err := c.Exec("INSERT INTO t (id) VALUES (@i)",
		map[string]sqltypes.Value{"i": sqltypes.Int(7)}); err != nil {
		t.Fatalf("unsent DML retry: %v", err)
	}
	if c.Failovers != 1 {
		t.Fatalf("failovers = %d", c.Failovers)
	}
	rows, err := c.Exec("SELECT id FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Values) != 1 || rows.Values[0][0].I != 7 {
		t.Fatalf("rows = %+v", rows.Values)
	}
}

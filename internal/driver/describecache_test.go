package driver

import (
	"testing"

	"alwaysencrypted/internal/sqltypes"
)

// A schema-changing statement through a caching connection invalidates its
// own describe cache: the cached metadata describes the old schema.
func TestDescribeCacheInvalidatedBySchemaChange(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	c := env.dial(Config{AlwaysEncrypted: true, DescribeCache: true})

	mustExec(t, c, "CREATE TABLE pii (id int PRIMARY KEY, ssn varchar(11))", nil)
	ins := "INSERT INTO pii (id, ssn) VALUES (@id, @ssn)"
	mustExec(t, c, ins, map[string]sqltypes.Value{"id": sqltypes.Int(1), "ssn": sqltypes.Str("a")})
	mustExec(t, c, ins, map[string]sqltypes.Value{"id": sqltypes.Int(2), "ssn": sqltypes.Str("b")})
	// CREATE (1) + first INSERT (2); the second INSERT hit the cache.
	if c.DescribeCalls != 2 {
		t.Fatalf("describe calls before ALTER = %d, want 2", c.DescribeCalls)
	}

	mustExec(t, c, "ALTER TABLE pii ALTER COLUMN ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')", nil)
	after := c.DescribeCalls // ALTER described itself and emptied the cache

	// The same statement text now needs a fresh describe — and encrypts.
	mustExec(t, c, ins, map[string]sqltypes.Value{"id": sqltypes.Int(3), "ssn": sqltypes.Str("c")})
	if c.DescribeCalls != after+1 {
		t.Fatalf("describe calls after ALTER = %d, want %d (cache invalidated)", c.DescribeCalls, after+1)
	}
	rows := mustExec(t, c, "SELECT ssn FROM pii WHERE id = @id", map[string]sqltypes.Value{"id": sqltypes.Int(3)})
	if rows.Values[0][0].S != "c" {
		t.Fatalf("post-ALTER insert round trip = %+v", rows.Values)
	}
}

// Stale-describe retry (§4.1's safety argument for caching): when another
// session changes the schema underneath a cached describe, the server rejects
// the mis-encrypted statement, and the driver drops just that cache entry and
// retries once with fresh metadata — transparently to the caller.
func TestStaleDescribeRetriesWithFreshMetadata(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)
	admin := env.dial(Config{AlwaysEncrypted: true})
	mustExec(t, admin, "CREATE TABLE pii (id int PRIMARY KEY, ssn varchar(11))", nil)

	cached := env.dial(Config{AlwaysEncrypted: true, DescribeCache: true})
	ins := "INSERT INTO pii (id, ssn) VALUES (@id, @ssn)"
	mustExec(t, cached, ins, map[string]sqltypes.Value{"id": sqltypes.Int(1), "ssn": sqltypes.Str("plain")})
	if cached.DescribeCalls != 1 {
		t.Fatalf("describe calls = %d, want 1", cached.DescribeCalls)
	}

	// Another session encrypts the column: cached's describe entry now says
	// "send plaintext" for a column that demands ciphertext.
	mustExec(t, admin, "ALTER TABLE pii ALTER COLUMN ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')", nil)

	// The stale execution is rejected by the server, re-described, retried —
	// the caller sees one successful insert.
	if _, err := cached.Exec(ins, map[string]sqltypes.Value{"id": sqltypes.Int(2), "ssn": sqltypes.Str("secret")}); err != nil {
		t.Fatalf("stale-describe exec: %v", err)
	}
	if cached.DescribeCalls != 2 {
		t.Fatalf("describe calls = %d, want 2 (cache hit, rejection, one fresh describe)", cached.DescribeCalls)
	}
	rows := mustExec(t, cached, "SELECT ssn FROM pii WHERE id = @id", map[string]sqltypes.Value{"id": sqltypes.Int(2)})
	if rows.Values[0][0].S != "secret" {
		t.Fatalf("retried insert = %+v, want decrypted 'secret'", rows.Values)
	}
}

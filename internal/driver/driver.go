// Package driver is the AE-enabled client driver of §4.1 — the counterpart
// of the enhanced ADO.NET/ODBC/JDBC drivers. Given a parameterized query
// with plaintext arguments it:
//
//  1. invokes sp_describe_parameter_encryption (a real extra round trip —
//     the overhead measured by the SQL-PT-AEConn configuration of §5);
//  2. verifies attestation (§4.2) the first time the enclave is needed,
//     deriving the shared session secret;
//  3. resolves CEKs through client-side key providers — checking the CMK
//     metadata signature and the trusted key path list, so a lying server
//     cannot substitute keys (§4.1) — and caches the plaintext CEKs;
//  4. encrypts parameters per the describe output, ships enclave CEKs over
//     the secure channel with fresh nonces, and transparently authorizes
//     enclave DDL by sealing the statement hash (§3.2);
//  5. decrypts result cells before handing rows to the application.
//
// With Config.AlwaysEncrypted unset the driver behaves like a plain client
// (the SQL-PT baseline): no describe call, no encryption.
package driver

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/enclave"
	"alwaysencrypted/internal/engine"
	"alwaysencrypted/internal/keys"
	"alwaysencrypted/internal/obs"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/tds"
)

// Config is the connection configuration ("connection string").
type Config struct {
	// AlwaysEncrypted corresponds to the AE connection-string property: when
	// false the driver never calls sp_describe_parameter_encryption (§4.1).
	AlwaysEncrypted bool
	// Providers resolves CMK key paths to key material.
	Providers *keys.ProviderRegistry
	// TrustedKeyPaths, when non-empty, restricts acceptable CMK key paths —
	// the §4.1 defence against the server returning malicious key metadata.
	TrustedKeyPaths []string
	// Policy validates attestation; required for enclave queries.
	Policy *attestation.Policy
	// DescribeCache caches describe results per query text. Off by default
	// on a bare Conn — the paper's measured configuration pays the round
	// trip every time, and §5.4.1 notes caching as the obvious future
	// optimization — but internal/pool turns it on by default for pooled
	// connections, which is where Fig. 8's extra round trip actually
	// amortizes. The cache is safe to serve stale: an out-of-date describe
	// makes the driver encrypt against metadata the server will reject (a
	// ServerError, never silent corruption), and the driver then drops the
	// entry and retries once against a fresh describe (see Exec). Schema-
	// changing statements issued through this connection invalidate the
	// cache eagerly.
	DescribeCache bool
	// CEKCacheTTL bounds the plaintext CEK cache (§4.1: "caches the
	// decrypted CEKs for a duration that can be controlled by clients").
	CEKCacheTTL time.Duration
	// ForceEncrypted lists parameters the application requires to be
	// encrypted; if the server claims they are plaintext, the driver refuses
	// (§4.1's defence against a lying sp_describe output).
	ForceEncrypted []string
	// Now is a clock hook for cache-expiry tests.
	Now func() time.Time
	// Obs receives driver instruments (driver.failovers,
	// driver.attestations, driver.reattestations); nil disables them.
	Obs *obs.Registry
}

// Errors surfaced by the driver.
var (
	ErrUntrustedKeyPath  = errors.New("driver: CMK key path not in the trusted list")
	ErrForcedEncryption  = errors.New("driver: server claims a force-encrypted parameter is plaintext")
	ErrNoPolicy          = errors.New("driver: enclave query requires an attestation policy")
	ErrCMKNotEnclaveable = errors.New("driver: CMK does not authorize enclave computations for this CEK")
	// ErrIndeterminate reports a DML statement whose outcome is unknown: the
	// connection died after the statement was sent, so the old primary may
	// have applied (and replicated) it before dying. The driver fails over but
	// does NOT re-execute — transparent retry would give at-least-once
	// semantics (duplicate rows, double-applied updates). The application must
	// verify state before retrying.
	ErrIndeterminate = errors.New("driver: statement outcome indeterminate after connection loss")
)

// Conn is an AE-aware client connection. Not safe for concurrent use; open
// one Conn per worker (the process-wide caches of §4.1 are modelled by
// sharing a Cache across Conns).
type Conn struct {
	cfg    Config
	tds    *tds.Conn
	caches *Cache

	// addrs holds the failover address list (primary first, replicas after);
	// current indexes the address the live connection was dialed to. Empty
	// addrs means a single-endpoint connection with no failover.
	addrs   []string
	current int

	secret    [32]byte
	hasSecret bool
	sid       uint64
	nonce     uint64
	// dh is the connection's ephemeral DH keypair, generated once and sent
	// with describe calls until a shared secret is established (§4.2 folds
	// the key exchange into attestation to save round trips).
	dh *dhState

	// installedCEKs tracks CEKs already shipped to the enclave under this
	// session's secret.
	installedCEKs map[string]bool

	// inTxn tracks an open explicit transaction: failover retry is unsafe
	// mid-transaction (the server rolled it back with the dead session).
	inTxn bool
	// failedOver marks that at least one failover occurred on this Conn; the
	// next successful attestation counts as a re-attestation.
	failedOver bool

	// lastDescribeCached marks that the most recent describe for the current
	// statement was served from the shared cache — the precondition for the
	// stale-describe retry in Exec.
	lastDescribeCached bool

	// Stats
	DescribeCalls int
	ExecCalls     int
	Failovers     int

	// lastTrace is the trace ID minted for the most recent statement; see
	// LastTraceID. Benchmarks use it to join client-side latency samples
	// with server-side traces.
	lastTrace trace.ID
	// traceLog accumulates every minted trace ID while collectTraces is on
	// (CollectTraceIDs), so a caller can join all statements of a multi-
	// statement transaction to their server-side traces.
	collectTraces bool
	traceLog      []trace.ID

	failovers *obs.Counter
	attests   *obs.Counter
	reattests *obs.Counter
	describes *obs.Counter
}

// Cache holds the process-wide driver caches of §4.1: decrypted CEKs and
// describe results, shared across the entire client process.
type Cache struct {
	mu        sync.Mutex
	ceks      map[string]cekEntry
	describes map[string]*tds.DescribeResp
}

type cekEntry struct {
	root    []byte
	cell    *aecrypto.CellKey
	expires time.Time
}

// NewCache creates an empty shared cache.
func NewCache() *Cache {
	return &Cache{ceks: make(map[string]cekEntry), describes: make(map[string]*tds.DescribeResp)}
}

// invalidateDescribes drops cached describe results. They embed the enclave
// session id of the server that produced them; after failover that session
// is gone.
func (c *Cache) invalidateDescribes() {
	c.mu.Lock()
	c.describes = make(map[string]*tds.DescribeResp)
	c.mu.Unlock()
}

// dropDescribe evicts one query's cached describe — the stale-describe
// recovery path: the server rejected a statement whose encryption metadata
// came from the cache, so that metadata no longer matches the schema.
func (c *Cache) dropDescribe(query string) {
	c.mu.Lock()
	delete(c.describes, query)
	c.mu.Unlock()
}

// Zeroize wipes every cached plaintext CEK root and derived cell key and
// empties the cache. Call it at process teardown, after all connections
// sharing the cache are closed: entries may be referenced by in-flight
// queries, so wiping a live cache corrupts them.
func (c *Cache) Zeroize() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.ceks {
		aecrypto.Zeroize(e.root)
		e.cell.Zeroize()
	}
	c.ceks = make(map[string]cekEntry)
}

// Open wraps an established transport with driver logic. cache may be nil
// for a private per-connection cache.
func Open(nc net.Conn, cfg Config, cache *Cache) *Conn {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.CEKCacheTTL == 0 {
		cfg.CEKCacheTTL = 2 * time.Hour
	}
	if cache == nil {
		cache = NewCache()
	}
	return &Conn{
		cfg: cfg, tds: tds.NewConn(nc), caches: cache,
		installedCEKs: make(map[string]bool),
		failovers:     cfg.Obs.Counter("driver.failovers"),
		attests:       cfg.Obs.Counter("driver.attestations"),
		reattests:     cfg.Obs.Counter("driver.reattestations"),
		describes:     cfg.Obs.Counter("driver.describe_calls"),
	}
}

// Dial connects over TCP.
func Dial(addr string, cfg Config, cache *Cache) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("driver: dial: %w", err)
	}
	return Open(nc, cfg, cache), nil
}

// DialMulti connects to the first reachable address and arms automatic
// failover across the rest: when the live server dies mid-statement, the
// driver reconnects to the next address (a promoted replica), drops every
// piece of per-session security state — the enclave session secret, the
// session id, the nonce counter, the record of installed CEKs, cached
// describe results — re-runs the full attestation protocol against the new
// enclave, re-installs sealed CEKs, and retries the statement once when the
// retry cannot duplicate effects (see Exec for the exactly-once rules).
// Plaintext CEK caches survive (they are client-side property, §4.1);
// everything bound to the dead enclave session does not.
func DialMulti(addrs []string, cfg Config, cache *Cache) (*Conn, error) {
	if len(addrs) == 0 {
		return nil, errors.New("driver: no addresses")
	}
	var lastErr error
	for i, addr := range addrs {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			lastErr = err
			continue
		}
		c := Open(nc, cfg, cache)
		c.addrs = addrs
		c.current = i
		return c, nil
	}
	return nil, fmt.Errorf("driver: dial: no address reachable: %w", lastErr)
}

// failover reconnects to the next reachable address and resets all state
// bound to the previous server's enclave session. Returns false when no
// other endpoint accepts the connection.
func (c *Conn) failover() bool {
	if len(c.addrs) < 2 {
		return false
	}
	c.tds.Close()
	for off := 1; off <= len(c.addrs); off++ {
		i := (c.current + off) % len(c.addrs)
		nc, err := net.Dial("tcp", c.addrs[i])
		if err != nil {
			continue
		}
		c.tds = tds.NewConn(nc)
		c.current = i
		// Security state bound to the dead enclave session: gone. The new
		// server's enclave (fresh after promotion) never saw our secret, our
		// nonces or our CEK installations.
		c.hasSecret = false
		c.secret = [32]byte{}
		c.sid = 0
		c.nonce = 0
		c.dh = nil
		c.installedCEKs = make(map[string]bool)
		// Cached describes embed the dead enclave session id; drop them.
		c.caches.invalidateDescribes()
		c.failedOver = true
		c.Failovers++
		c.failovers.Inc()
		return true
	}
	return false
}

// retryable reports whether an error warrants failover: transport-level
// failures only. A *tds.ServerError means the server processed the request
// and said no — retrying elsewhere would duplicate effects or mask bugs.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var se *tds.ServerError
	return !errors.As(err, &se)
}

// retrySafe reports whether re-executing the statement after failover cannot
// duplicate effects even if the dead primary already applied it: reads, and
// BEGIN (the old server's transaction died with its session).
func retrySafe(query string) bool {
	q := strings.ToUpper(strings.TrimSpace(query))
	return strings.HasPrefix(q, "SELECT") || strings.HasPrefix(q, "BEGIN")
}

// Close closes the connection.
func (c *Conn) Close() error { return c.tds.Close() }

// Ping round-trips a no-op request and returns the server's current log
// watermark — on a primary the highest assigned LSN, on a read replica the
// highest applied LSN. The pool's health checker uses it both as a liveness
// probe and as the replica-freshness signal for read routing.
func (c *Conn) Ping() (uint64, error) { return c.tds.Ping() }

// LastLSN returns the log watermark piggybacked on the most recent server
// response (zero before any round trip). After a successful write on a
// primary this is the write's assigned LSN — the client's read-your-writes
// watermark.
func (c *Conn) LastLSN() uint64 { return c.tds.LastLSN() }

// Rows is a decrypted result set.
type Rows struct {
	Columns  []string
	Values   [][]sqltypes.Value
	Affected int
}

// Row returns row i (for tests and examples).
func (r *Rows) Row(i int) []sqltypes.Value { return r.Values[i] }

// Exec runs a parameterized statement with plaintext arguments, applying the
// full transparency pipeline. With a DialMulti connection, a transport
// failure fails over to the next address and retries once — but only when the
// retry cannot duplicate effects: the statement never reached the wire (the
// failure hit the describe/attestation/CEK phase), or it is read-only. A DML
// statement that may have executed before the connection died gets
// ErrIndeterminate instead: the old primary could have applied and shipped
// the write before crashing, so silently re-running it on the promoted
// replica would double-apply. No retry happens inside an explicit transaction
// either (its state died with the server; the application must restart it).
func (c *Conn) Exec(query string, args map[string]sqltypes.Value) (*Rows, error) {
	rows, sent, err := c.execOnce(query, args)
	if err == nil {
		c.afterExec(query)
		return rows, nil
	}
	if !retryable(err) {
		// The server processed the statement and rejected it — nothing was
		// applied. If its encryption metadata was served from the describe
		// cache, the rejection may be staleness (another client ran
		// ALTER ... ENCRYPTED or changed the schema): drop the entry and
		// retry once against a fresh describe. A rejection for any other
		// reason just fails again, identically.
		if c.lastDescribeCached {
			c.caches.dropDescribe(query)
			rows, _, err = c.execOnce(query, args)
			if err == nil {
				c.afterExec(query)
			}
		}
		return rows, err
	}
	if c.inTxn {
		return rows, err
	}
	if !sent || retrySafe(query) {
		if c.failover() {
			rows, _, err = c.execOnce(query, args)
			if err == nil {
				c.afterExec(query)
			}
		}
		return rows, err
	}
	// DML with unknown outcome: fail over so the connection stays usable for
	// the application's own recovery, but surface the indeterminacy.
	c.failover()
	return nil, fmt.Errorf("%w: %v", ErrIndeterminate, err)
}

// afterExec runs post-success bookkeeping: a schema-changing statement
// invalidates every cached describe — the metadata it returned may no longer
// match any statement touching the altered objects.
func (c *Conn) afterExec(query string) {
	if c.cfg.DescribeCache && isSchemaChange(query) {
		c.caches.invalidateDescribes()
	}
}

// isSchemaChange reports statements that can invalidate cached describe
// output: DDL, including ALTER ... ENCRYPTED rewrites.
func isSchemaChange(query string) bool {
	q := strings.ToUpper(strings.TrimSpace(query))
	return strings.HasPrefix(q, "CREATE ") || strings.HasPrefix(q, "DROP ") ||
		strings.HasPrefix(q, "ALTER ")
}

// execOnce runs the statement once. sent reports whether the execute request
// itself may have reached the server — the point past which a transport
// failure leaves the statement's outcome unknown.
func (c *Conn) execOnce(query string, args map[string]sqltypes.Value) (rows *Rows, sent bool, err error) {
	c.ExecCalls++
	c.lastDescribeCached = false
	// Mint the statement's trace context client-side: the server trace for
	// this statement carries our ID, so a client latency sample can be
	// joined to its server-side span breakdown.
	c.lastTrace = trace.NewID()
	if c.collectTraces {
		c.traceLog = append(c.traceLog, c.lastTrace)
	}
	if !c.cfg.AlwaysEncrypted {
		// Plain connection: parameters travel as canonical encodings.
		wire := make(map[string][]byte, len(args))
		for name, v := range args {
			wire[name] = v.Encode()
		}
		rs, err := c.tds.ExecTrace(query, wire, c.lastTrace)
		if err != nil {
			return nil, true, err
		}
		rows, err = c.decodeResult(rs, nil)
		return rows, true, err
	}

	desc, err := c.describe(query)
	if err != nil {
		return nil, false, err
	}

	// Enclave preparation: install CEKs and, for DDL, authorization.
	if desc.Desc.NeedsEnclave {
		if err := c.prepareEnclave(query, desc); err != nil {
			return nil, false, err
		}
	}

	wire, err := c.encryptParams(&desc.Desc, args)
	if err != nil {
		return nil, false, err
	}
	rs, err := c.tds.ExecTrace(query, wire, c.lastTrace)
	if err != nil {
		return nil, true, err
	}
	rows, err = c.decodeResult(rs, desc)
	return rows, true, err
}

// LastTraceID returns the trace ID minted for the most recent Exec (zero
// before the first statement). On a failover retry it is the retry's ID —
// the ID the server that actually executed the statement traced it under.
func (c *Conn) LastTraceID() trace.ID { return c.lastTrace }

// CollectTraceIDs resets the trace-ID log and turns collection on or off.
// While on, every Exec's minted ID is appended; CollectedTraceIDs returns
// the batch. Off by default — the log costs one append per statement.
func (c *Conn) CollectTraceIDs(on bool) {
	c.collectTraces = on
	c.traceLog = c.traceLog[:0]
}

// CollectedTraceIDs returns the trace IDs minted since the last
// CollectTraceIDs call. The slice is reused; copy it to keep it.
func (c *Conn) CollectedTraceIDs() []trace.ID { return c.traceLog }

// Begin, Commit and Rollback issue transaction-control statements. The
// driver tracks the open-transaction state so failover never silently
// retries half a transaction on a new server.
func (c *Conn) Begin() error {
	_, err := c.Exec("BEGIN TRANSACTION", nil)
	if err == nil {
		c.inTxn = true
	}
	return err
}

func (c *Conn) Commit() error {
	_, err := c.Exec("COMMIT", nil)
	c.inTxn = false
	return err
}

func (c *Conn) Rollback() error {
	_, err := c.Exec("ROLLBACK", nil)
	c.inTxn = false
	return err
}

// describe performs (or serves from cache) the describe round trip,
// including attestation on first enclave use.
func (c *Conn) describe(query string) (*tds.DescribeResp, error) {
	if c.cfg.DescribeCache {
		c.caches.mu.Lock()
		if d, ok := c.caches.describes[query]; ok {
			c.caches.mu.Unlock()
			c.lastDescribeCached = true
			return d, nil
		}
		c.caches.mu.Unlock()
	}

	var clientDHPub []byte
	if !c.hasSecret {
		if c.dh == nil {
			dh, err := newDH()
			if err != nil {
				return nil, err
			}
			c.dh = dh
		}
		clientDHPub = c.dh.pubBytes
	}
	c.DescribeCalls++
	c.describes.Inc()
	resp, err := c.tds.Describe(query, clientDHPub)
	if err != nil {
		return nil, err
	}
	if resp.Attestation != nil && c.dh != nil {
		if c.cfg.Policy == nil {
			return nil, ErrNoPolicy
		}
		secret, err := c.cfg.Policy.Verify(resp.Attestation, c.dh.priv)
		if err != nil {
			return nil, fmt.Errorf("driver: attestation failed, refusing to release keys: %w", err)
		}
		c.secret = secret
		c.hasSecret = true
		c.sid = resp.EnclaveSID
		c.dh = nil
		c.attests.Inc()
		if c.failedOver {
			c.reattests.Inc()
		}
		// The shared secret is cached for the connection; later describes
		// skip the attestation protocol (§4.1).
	}
	if resp.Desc.NeedsEnclave && !c.hasSecret {
		return nil, errors.New("driver: enclave required but no attestation was performed")
	}
	if c.cfg.DescribeCache {
		c.caches.mu.Lock()
		c.caches.describes[query] = resp
		c.caches.mu.Unlock()
	}
	return resp, nil
}

// prepareEnclave ships required CEKs (once per session) and authorizes
// enclave DDL by sealing the statement hash with the session secret.
func (c *Conn) prepareEnclave(query string, desc *tds.DescribeResp) error {
	for _, name := range desc.Desc.EnclaveCEKs {
		if c.installedCEKs[name] {
			continue
		}
		root, _, err := c.resolveCEK(name, &desc.Desc, true)
		if err != nil {
			return err
		}
		c.nonce++
		sealed, err := enclave.SealForSession(c.secret, c.nonce, "cek:"+name, root)
		if err != nil {
			return err
		}
		if err := c.tds.InstallCEK(name, c.nonce, sealed); err != nil {
			return err
		}
		c.installedCEKs[name] = true
	}
	// Transparent DDL authorization: the application issued this statement
	// through the driver, which constitutes client intent; the driver signs
	// its hash so the enclave can demand proof from the server (§3.2).
	if isAlterEncryption(query) {
		h := sha256.Sum256([]byte(query))
		c.nonce++
		sealed, err := enclave.SealForSession(c.secret, c.nonce, "authorize-ddl", h[:])
		if err != nil {
			return err
		}
		if err := c.tds.Authorize(c.nonce, sealed); err != nil {
			return err
		}
	}
	return nil
}

func isAlterEncryption(query string) bool {
	q := strings.ToUpper(strings.TrimSpace(query))
	return strings.HasPrefix(q, "ALTER TABLE") && strings.Contains(q, "ALTER COLUMN")
}

// resolveCEK returns the plaintext CEK root and derived cell key, via the
// cache or the key provider. forEnclave additionally checks that the CMK
// authorizes enclave computations before the key is ever sent there.
func (c *Conn) resolveCEK(name string, desc *engine.DescribeResult, forEnclave bool) ([]byte, *aecrypto.CellKey, error) {
	now := c.cfg.Now()
	c.caches.mu.Lock()
	if e, ok := c.caches.ceks[name]; ok && now.Before(e.expires) {
		c.caches.mu.Unlock()
		if forEnclave {
			if err := c.checkEnclaveAuthorized(name, desc); err != nil {
				return nil, nil, err
			}
		}
		return e.root, e.cell, nil
	}
	c.caches.mu.Unlock()

	cekMeta, ok := desc.CEKs[name]
	if !ok {
		return nil, nil, fmt.Errorf("driver: server returned no metadata for CEK %s", name)
	}
	var lastErr error
	for _, val := range cekMeta.Values {
		cmk, ok := desc.CMKs[val.CMKName]
		if !ok {
			lastErr = fmt.Errorf("driver: missing CMK metadata %s", val.CMKName)
			continue
		}
		root, err := c.unwrapViaCMK(&cmk, &val)
		if err != nil {
			lastErr = err
			continue
		}
		if forEnclave && !cmk.EnclaveEnabled {
			return nil, nil, fmt.Errorf("%w: CEK %s via CMK %s", ErrCMKNotEnclaveable, name, cmk.Name)
		}
		cell, err := aecrypto.NewCellKey(root)
		if err != nil {
			return nil, nil, err
		}
		c.caches.mu.Lock()
		c.caches.ceks[name] = cekEntry{root: root, cell: cell, expires: now.Add(c.cfg.CEKCacheTTL)}
		c.caches.mu.Unlock()
		return root, cell, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("driver: CEK %s has no usable values", name)
	}
	return nil, nil, lastErr
}

// checkEnclaveAuthorized re-validates (on the cached path) that the CEK's
// CMK permits enclave use.
func (c *Conn) checkEnclaveAuthorized(name string, desc *engine.DescribeResult) error {
	cekMeta, ok := desc.CEKs[name]
	if !ok {
		return fmt.Errorf("driver: no metadata for CEK %s", name)
	}
	for _, val := range cekMeta.Values {
		if cmk, ok := desc.CMKs[val.CMKName]; ok && cmk.EnclaveEnabled {
			// Verify the enclave flag is genuine before trusting it.
			if err := c.verifyCMK(&cmk); err == nil {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: CEK %s", ErrCMKNotEnclaveable, name)
}

// unwrapViaCMK validates the CMK metadata (trusted path + signature) and
// unwraps the CEK value through the provider.
func (c *Conn) unwrapViaCMK(cmk *keys.CMKMetadata, val *keys.CEKValue) ([]byte, error) {
	if err := c.verifyCMK(cmk); err != nil {
		return nil, err
	}
	provider, err := c.cfg.Providers.Lookup(cmk.ProviderName)
	if err != nil {
		return nil, err
	}
	root, err := provider.Unwrap(cmk.KeyPath, val.EncryptedValue)
	if err != nil {
		return nil, err
	}
	return root, nil
}

// verifyCMK enforces the trusted key path list and the metadata signature.
func (c *Conn) verifyCMK(cmk *keys.CMKMetadata) error {
	if len(c.cfg.TrustedKeyPaths) > 0 {
		trusted := false
		for _, p := range c.cfg.TrustedKeyPaths {
			if p == cmk.KeyPath {
				trusted = true
				break
			}
		}
		if !trusted {
			return fmt.Errorf("%w: %s", ErrUntrustedKeyPath, cmk.KeyPath)
		}
	}
	// The metadata signature exists to bind the ENCLAVE_COMPUTATIONS setting
	// to the key (§2.2). A CMK claiming enclave rights must carry a valid
	// signature; an unsigned non-enclave CMK is acceptable (tampering it to
	// "disabled" can only deny service, never leak keys).
	if !cmk.EnclaveEnabled && len(cmk.Signature) == 0 {
		return nil
	}
	provider, err := c.cfg.Providers.Lookup(cmk.ProviderName)
	if err != nil {
		return err
	}
	pub, err := provider.PublicKey(cmk.KeyPath)
	if err != nil {
		return err
	}
	return cmk.Verify(pub)
}

// encryptParams encodes and (where required) encrypts argument values per
// the describe output.
func (c *Conn) encryptParams(desc *engine.DescribeResult, args map[string]sqltypes.Value) (map[string][]byte, error) {
	wire := make(map[string][]byte, len(args))
	described := make(map[string]engine.ParamInfo, len(desc.Params))
	for _, pi := range desc.Params {
		described[pi.Name] = pi
	}
	for name, v := range args {
		pi, ok := described[name]
		if !ok {
			// Parameter unused by the statement; send plaintext encoding.
			wire[name] = v.Encode()
			continue
		}
		if pi.Enc.IsPlaintext() {
			for _, forced := range c.cfg.ForceEncrypted {
				if forced == name {
					return nil, fmt.Errorf("%w: @%s", ErrForcedEncryption, name)
				}
			}
			wire[name] = v.Encode()
			continue
		}
		if v.IsNull() {
			wire[name] = nil
			continue
		}
		_, cell, err := c.resolveCEK(pi.Enc.CEKName, desc, false)
		if err != nil {
			return nil, err
		}
		typ := aecrypto.Randomized
		if pi.Enc.Scheme == sqltypes.SchemeDeterministic {
			typ = aecrypto.Deterministic
		}
		ct, err := cell.Encrypt(v.Encode(), typ)
		if err != nil {
			return nil, err
		}
		wire[name] = ct
	}
	return wire, nil
}

// decodeResult decrypts and decodes a result set. desc supplies key
// metadata; nil means no decryption is possible (plain connections return
// ciphertext as VARBINARY, like a non-AE client would).
func (c *Conn) decodeResult(rs *engine.ResultSet, desc *tds.DescribeResp) (*Rows, error) {
	out := &Rows{Affected: rs.Affected}
	for _, col := range rs.Columns {
		out.Columns = append(out.Columns, col.Name)
	}
	for _, row := range rs.Rows {
		vals := make([]sqltypes.Value, len(row))
		for i, cell := range row {
			meta := rs.Columns[i]
			switch {
			case len(cell) == 0:
				vals[i] = sqltypes.Null()
			case meta.Enc.IsPlaintext():
				v, err := sqltypes.Decode(cell)
				if err != nil {
					return nil, fmt.Errorf("driver: decoding column %s: %w", meta.Name, err)
				}
				vals[i] = v
			case desc == nil:
				vals[i] = sqltypes.Bytes(cell) // no keys: raw ciphertext
			default:
				_, cellKey, err := c.resolveCEK(meta.Enc.CEKName, &desc.Desc, false)
				if err != nil {
					return nil, err
				}
				pt, err := cellKey.Decrypt(cell)
				if err != nil {
					return nil, fmt.Errorf("driver: decrypting column %s: %w", meta.Name, err)
				}
				v, err := sqltypes.Decode(pt)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
		}
		out.Values = append(out.Values, vals)
	}
	return out, nil
}

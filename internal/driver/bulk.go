package driver

import (
	"errors"
	"fmt"
	"strings"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
)

// Bulk load: the client half of the bulkcopy fast path. The driver describes
// a synthetic single-row INSERT over the target columns — reusing the normal
// sp_describe_parameter_encryption pipeline, its cache, and attestation —
// resolves each encrypted column's CEK once, encrypts every cell
// client-side, and ships the rows in multi-row TDS requests. The server sees
// exactly what it sees for single-row inserts: ciphertext envelopes.

// bulkChunkRows bounds rows per wire request, keeping each request inside
// the server's frame budget and bounding the blast radius of a mid-load
// connection loss.
const bulkChunkRows = 256

// BulkInsert loads rows into table. cols names the target columns in cell
// order. Outside an explicit transaction each chunk of bulkChunkRows commits
// on its own (standard bulkcopy batch semantics); inside one, the whole load
// rides the transaction. Returns the number of rows the server acknowledged.
//
// Failure semantics mirror Exec: a transport failure before any rows reached
// the wire fails over and retries once; after rows were sent the outcome of
// the in-flight chunk is unknown and the load stops with ErrIndeterminate
// (already-acknowledged chunks are committed and counted in the return).
func (c *Conn) BulkInsert(table string, cols []string, rows [][]sqltypes.Value) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	if len(cols) == 0 {
		return 0, errors.New("driver: bulk insert needs at least one column")
	}
	n, sent, err := c.bulkInsertOnce(table, cols, rows)
	if err == nil {
		return n, nil
	}
	if !retryable(err) || c.inTxn {
		return n, err
	}
	if !sent {
		if c.failover() {
			n, _, err = c.bulkInsertOnce(table, cols, rows)
		}
		return n, err
	}
	// Rows were on the wire when the connection died: the in-flight chunk may
	// or may not have committed. Fail over so the connection stays usable,
	// but surface the indeterminacy.
	c.failover()
	return n, fmt.Errorf("%w: %v", ErrIndeterminate, err)
}

// bulkDescribeQuery builds the synthetic statement whose describe output
// carries the per-column encryption metadata: parameter @p<i+1> stands for
// cols[i].
func bulkDescribeQuery(table string, cols []string) string {
	ps := make([]string, len(cols))
	for i := range cols {
		ps[i] = fmt.Sprintf("@p%d", i+1)
	}
	return fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
		table, strings.Join(cols, ", "), strings.Join(ps, ", "))
}

func (c *Conn) bulkInsertOnce(table string, cols []string, rows [][]sqltypes.Value) (n int, sent bool, err error) {
	// Per-column encryption plan: nil key means plaintext encoding.
	colKeys := make([]*aecrypto.CellKey, len(cols))
	colTypes := make([]aecrypto.EncryptionType, len(cols))

	if c.cfg.AlwaysEncrypted {
		query := bulkDescribeQuery(table, cols)
		desc, err := c.describe(query)
		if err != nil {
			return 0, false, err
		}
		if desc.Desc.NeedsEnclave {
			if err := c.prepareEnclave(query, desc); err != nil {
				return 0, false, err
			}
		}
		byName := make(map[string]int, len(desc.Desc.Params))
		for i, pi := range desc.Desc.Params {
			byName[pi.Name] = i
		}
		for i := range cols {
			pi, ok := byName[fmt.Sprintf("p%d", i+1)]
			if !ok {
				continue // column not described: plaintext
			}
			enc := desc.Desc.Params[pi].Enc
			if enc.IsPlaintext() {
				continue
			}
			_, cell, err := c.resolveCEK(enc.CEKName, &desc.Desc, false)
			if err != nil {
				return 0, false, err
			}
			colKeys[i] = cell
			colTypes[i] = aecrypto.Randomized
			if enc.Scheme == sqltypes.SchemeDeterministic {
				colTypes[i] = aecrypto.Deterministic
			}
		}
	}

	for off := 0; off < len(rows); off += bulkChunkRows {
		end := off + bulkChunkRows
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[off:end]
		wire := make([][][]byte, len(chunk))
		for r, row := range chunk {
			if len(row) != len(cols) {
				return n, sent, fmt.Errorf("driver: bulk row %d has %d values, want %d", off+r, len(row), len(cols))
			}
			cells := make([][]byte, len(cols))
			for i, v := range row {
				if v.IsNull() {
					continue
				}
				if colKeys[i] == nil {
					cells[i] = v.Encode()
					continue
				}
				ct, err := colKeys[i].Encrypt(v.Encode(), colTypes[i])
				if err != nil {
					return n, sent, err
				}
				cells[i] = ct
			}
			wire[r] = cells
		}
		c.lastTrace = trace.NewID()
		if c.collectTraces {
			c.traceLog = append(c.traceLog, c.lastTrace)
		}
		sent = true
		got, err := c.tds.BulkInsert(table, cols, wire, c.lastTrace)
		if err != nil {
			return n, sent, err
		}
		n += got
	}
	return n, sent, nil
}

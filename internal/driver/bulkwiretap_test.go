package driver

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/tds"
)

// TestBulkAndSnapshotWireCarryOnlyCiphertext extends the §2.6 wire-adversary
// check to the two new read/write paths: the multi-row bulk-insert message
// and snapshot (version-chain) reads. The bulk fast path must ship the same
// ciphertext envelopes single-row inserts ship, and a snapshot read served
// from a retained pre-image must return that pre-image's ciphertext — the
// version store retains heap bytes, never plaintext.
func TestBulkAndSnapshotWireCarryOnlyCiphertext(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)

	var mu sync.Mutex
	var observed [][]byte // every byte slice an adversary could grab
	var bulkRows int
	env.server.Tap = func(dir string, msg any) {
		mu.Lock()
		defer mu.Unlock()
		switch m := msg.(type) {
		case *tds.Request:
			if m.Exec != nil {
				for _, v := range m.Exec.Params {
					observed = append(observed, append([]byte(nil), v...))
				}
			}
			if m.BulkInsert != nil {
				// The whole flat batch payload is adversary-visible bytes.
				observed = append(observed, append([]byte(nil), m.BulkInsert.Rows...))
				if rows, err := tds.DecodeCellRows(m.BulkInsert.Rows); err == nil {
					bulkRows += len(rows)
				}
			}
		case *tds.Response:
			if m.Result != nil {
				for _, row := range m.Result.Rows {
					for _, cell := range row {
						observed = append(observed, append([]byte(nil), cell...))
					}
				}
			}
		}
	}

	admin := env.dial(Config{})
	mustExec(t, admin, `CREATE TABLE wb (id int PRIMARY KEY,
		secret varchar(64) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	c := env.dial(Config{AlwaysEncrypted: true})

	// Bulk-load plaintext values; the driver must encrypt every cell before
	// they hit the wire.
	const n = 64
	secret := func(i int) string { return fmt.Sprintf("BULK-CONFIDENTIAL-%02d", i) }
	rows := make([][]sqltypes.Value, n)
	for i := range rows {
		rows[i] = []sqltypes.Value{sqltypes.Int(int64(i + 1)), sqltypes.Str(secret(i + 1))}
	}
	if got, err := c.BulkInsert("wb", []string{"id", "secret"}, rows); err != nil || got != n {
		t.Fatalf("BulkInsert = %d, %v; want %d", got, err, n)
	}

	// Snapshot read across a concurrent rewrite: the reader pins its
	// snapshot, a writer replaces the row, and the re-read is served from
	// the version chain's retained pre-image — as ciphertext.
	const rewritten = "REWRITTEN-CONFIDENTIAL-PAYLOAD"
	reader := env.dial(Config{AlwaysEncrypted: true})
	writer := env.dial(Config{AlwaysEncrypted: true})
	mustExec(t, reader, "BEGIN TRANSACTION", nil)
	got := mustExec(t, reader, "SELECT secret FROM wb WHERE id = @i",
		map[string]sqltypes.Value{"i": sqltypes.Int(7)})
	if got.Values[0][0].S != secret(7) {
		t.Fatalf("first read = %v, want %q", got.Values[0][0], secret(7))
	}
	mustExec(t, writer, "UPDATE wb SET secret = @s WHERE id = @i",
		map[string]sqltypes.Value{"s": sqltypes.Str(rewritten), "i": sqltypes.Int(7)})
	got = mustExec(t, reader, "SELECT secret FROM wb WHERE id = @i",
		map[string]sqltypes.Value{"i": sqltypes.Int(7)})
	if got.Values[0][0].S != secret(7) {
		t.Fatalf("snapshot re-read = %v, want retained %q", got.Values[0][0], secret(7))
	}
	mustExec(t, reader, "COMMIT", nil)
	got = mustExec(t, reader, "SELECT secret FROM wb WHERE id = @i",
		map[string]sqltypes.Value{"i": sqltypes.Int(7)})
	if got.Values[0][0].S != rewritten {
		t.Fatalf("post-commit read = %v, want %q", got.Values[0][0], rewritten)
	}

	mu.Lock()
	defer mu.Unlock()
	if bulkRows != n {
		t.Fatalf("tap saw %d bulk rows on the wire, want %d", bulkRows, n)
	}
	if len(observed) == 0 {
		t.Fatal("tap observed nothing")
	}
	needles := [][]byte{[]byte(rewritten), []byte("BULK-CONFIDENTIAL")}
	for i := 1; i <= n; i++ {
		needles = append(needles, []byte(secret(i)))
	}
	for i, b := range observed {
		for _, needle := range needles {
			if bytes.Contains(b, needle) {
				t.Fatalf("plaintext %q visible on the wire in message %d", needle, i)
			}
		}
	}
}

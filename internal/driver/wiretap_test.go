package driver

import (
	"bytes"
	"sync"
	"testing"

	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/tds"
)

// TestWireCarriesOnlyCiphertext puts the §2.6 strong adversary on the wire:
// a tap records every TDS message, and neither encrypted parameter values
// nor encrypted result cells may contain the plaintext. This is the
// end-to-end "encrypted in transit" guarantee of §1.1.
func TestWireCarriesOnlyCiphertext(t *testing.T) {
	env := newServerEnv(t)
	env.provision("CMK1", "CEK1", true)

	var mu sync.Mutex
	var observed [][]byte // every byte slice an adversary could grab
	env.server.Tap = func(dir string, msg any) {
		mu.Lock()
		defer mu.Unlock()
		switch m := msg.(type) {
		case *tds.Request:
			if m.Exec != nil {
				for _, v := range m.Exec.Params {
					observed = append(observed, append([]byte(nil), v...))
				}
			}
		case *tds.Response:
			if m.Result != nil {
				for _, row := range m.Result.Rows {
					for _, cell := range row {
						observed = append(observed, append([]byte(nil), cell...))
					}
				}
			}
		}
	}

	admin := env.dial(Config{})
	mustExec(t, admin, `CREATE TABLE w (id int PRIMARY KEY,
		secret varchar(40) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))`, nil)
	c := env.dial(Config{AlwaysEncrypted: true})

	const secret = "EXTREMELY-SENSITIVE-PLAINTEXT"
	mustExec(t, c, "INSERT INTO w (id, secret) VALUES (@i, @s)",
		map[string]sqltypes.Value{"i": sqltypes.Int(1), "s": sqltypes.Str(secret)})
	rows := mustExec(t, c, "SELECT secret FROM w WHERE secret = @s",
		map[string]sqltypes.Value{"s": sqltypes.Str(secret)})
	if rows.Values[0][0].S != secret {
		t.Fatalf("application view broken: %v", rows.Values[0][0])
	}

	mu.Lock()
	defer mu.Unlock()
	if len(observed) == 0 {
		t.Fatal("tap observed nothing")
	}
	needle := []byte(secret)
	for i, b := range observed {
		if bytes.Contains(b, needle) {
			t.Fatalf("plaintext secret visible on the wire in message %d", i)
		}
	}
}

// benchEnv builds a loaded single-table world for driver benchmarks.
func benchEnv(b *testing.B, encrypted bool) (*serverEnv, *Conn) {
	b.Helper()
	env := newServerEnv(b)
	admin := env.dial(Config{})
	col := "v int"
	if encrypted {
		env.provision("CMK1", "CEK1", true)
		col = "v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
	}
	if _, err := admin.Exec("CREATE TABLE b (id int PRIMARY KEY, "+col+")", nil); err != nil {
		b.Fatal(err)
	}
	c := env.dial(Config{AlwaysEncrypted: encrypted, Providers: env.reg, Policy: &env.policy})
	for i := int64(0); i < 100; i++ {
		if _, err := c.Exec("INSERT INTO b (id, v) VALUES (@i, @v)",
			map[string]sqltypes.Value{"i": sqltypes.Int(i), "v": sqltypes.Int(i % 10)}); err != nil {
			b.Fatal(err)
		}
	}
	return env, c
}

// BenchmarkDriverExecPlain: one point lookup per op over a plain connection.
func BenchmarkDriverExecPlain(b *testing.B) {
	_, c := benchEnv(b, false)
	args := map[string]sqltypes.Value{"i": sqltypes.Int(7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("SELECT v FROM b WHERE id = @i", args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriverExecAEEncrypted: the same lookup with an encrypted
// predicate — describe round trip + parameter encryption + enclave filter.
func BenchmarkDriverExecAEEncrypted(b *testing.B) {
	_, c := benchEnv(b, true)
	args := map[string]sqltypes.Value{"v": sqltypes.Int(7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("SELECT id FROM b WHERE v = @v", args); err != nil {
			b.Fatal(err)
		}
	}
}

package pool

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchSchema identifies the BENCH_pool.json layout. Bump only with a new
// suffix; downstream tooling keys on this string.
const BenchSchema = "alwaysencrypted/tpcc-pool/v1"

// BenchReport is the stable serialized form of a pool benchmark run: the
// connection-churn arm (per-statement setup cost pooled vs fresh-connection-
// per-statement) and the read-scaling arm (committed tps as replicas are
// added, with routing shares).
type BenchReport struct {
	Schema string   `json:"schema"`
	Run    BenchRun `json:"run"`
}

// BenchRun holds one measurement.
type BenchRun struct {
	Workload string `json:"workload"`

	Churn   ChurnArm     `json:"churn"`
	Scaling []ScalingArm `json:"scaling"`
}

// ChurnArm quantifies Fig. 8's per-connection setup cost and how pooling
// amortizes it: describe round trips and attestation handshakes per
// statement, fresh-connection-per-statement vs pooled.
type ChurnArm struct {
	Statements int `json:"statements"`

	// Setup round trips per statement (describe calls + attestations).
	UnpooledSetupPerStmt float64 `json:"unpooled_setup_per_stmt"`
	PooledSetupPerStmt   float64 `json:"pooled_setup_per_stmt"`
	// AmortizationFactor = unpooled / pooled (the acceptance bar is ≥ 10).
	AmortizationFactor float64 `json:"amortization_factor"`

	// Wall-clock per statement, for context.
	UnpooledNsPerStmt int64 `json:"unpooled_ns_per_stmt"`
	PooledNsPerStmt   int64 `json:"pooled_ns_per_stmt"`
}

// ScalingArm is one read-scaling measurement at a fixed replica count.
type ScalingArm struct {
	Replicas     int     `json:"replicas"`
	Workers      int     `json:"workers"`
	DurationMs   float64 `json:"duration_ms"`
	Committed    uint64  `json:"committed"`
	CommittedTPS float64 `json:"committed_tps"`

	// Routing shares over the arm's reads.
	Reads                 uint64  `json:"reads"`
	ReplicaReadShare      float64 `json:"replica_read_share"`
	StalenessFallbacks    uint64  `json:"staleness_fallbacks"`
	StalenessFallbackRate float64 `json:"staleness_fallback_rate"`
}

// NewBenchReport wraps a run in the versioned envelope.
func NewBenchReport(run BenchRun) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Run: run}
}

// WriteFile serializes the report to path (the BENCH_pool.json artifact).
func (rep *BenchReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ValidateBenchReport checks the invariants downstream tooling relies on.
func ValidateBenchReport(b []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("pool: bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("pool: bench report schema %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.Run.Churn.Statements == 0 {
		return nil, fmt.Errorf("pool: bench report has no churn arm")
	}
	if rep.Run.Churn.PooledSetupPerStmt > 0 &&
		rep.Run.Churn.AmortizationFactor < 1 {
		return nil, fmt.Errorf("pool: bench report amortization factor %.2f < 1",
			rep.Run.Churn.AmortizationFactor)
	}
	if len(rep.Run.Scaling) == 0 {
		return nil, fmt.Errorf("pool: bench report has no scaling arms")
	}
	for _, arm := range rep.Run.Scaling {
		if arm.DurationMs <= 0 {
			return nil, fmt.Errorf("pool: scaling arm (replicas=%d) has no duration", arm.Replicas)
		}
	}
	return &rep, nil
}

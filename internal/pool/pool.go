// Package pool is the production client path over internal/driver: a
// connection pool that amortizes the per-connection setup the paper measures
// in §4.1/Fig. 8 — the sp_describe_parameter_encryption round trip, the
// attestation handshake and the CEK resolution — by sharing one describe +
// CEK cache across every pooled connection, and that scales side-effect-free
// reads across the ciphertext-only replicas of internal/repl.
//
// Read routing is LSN-bounded: the pool tracks each replica's highest
// *applied* LSN (refreshed by a health-ping loop and piggybacked on every
// response) and hands a read to a replica only when that watermark has
// reached the caller's read-your-writes bound. The known watermark is a
// monotone lower bound on the replica's true position, so routing on it can
// cause a spurious primary fallback but never a stale read. Writes, explicit
// transactions and insufficiently fresh reads always go to the primary.
//
// Failover rides on PR 4's driver semantics: primary connections are dialed
// with the full address list, so a mid-statement primary death fails over to
// a promoted replica, surfaces ErrIndeterminate for in-flight DML, retries
// unsent statements, and re-attests transparently. The pool's job on top is
// only hygiene — a connection that saw a transport error is health-checked
// with a Ping before it is allowed back into the idle set.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/obs"
	"alwaysencrypted/internal/sqltypes"
	"alwaysencrypted/internal/tds"
)

// Config configures a pool.
type Config struct {
	// Primary is the primary server's TDS address.
	Primary string
	// Replicas lists read-replica TDS addresses, in routing preference order.
	Replicas []string
	// Driver is the per-connection driver configuration (AE flag, providers,
	// trust anchors). The pool overrides its DescribeCache and Obs fields:
	// every pooled connection shares the pool's describe + CEK cache.
	Driver driver.Config
	// MaxConns caps concurrently checked-out connections per endpoint
	// (default 8). Acquire blocks (or honours its context) when the cap is
	// reached.
	MaxConns int
	// MaxIdle caps idle connections kept per endpoint (default MaxConns).
	MaxIdle int
	// HealthInterval is the replica health-ping cadence (default 50ms).
	// Negative disables the loop (tests drive PingReplicas directly).
	HealthInterval time.Duration
	// DisableDescribeCache opts out of the pool's shared describe cache.
	// The cache is ON by default for pooled connections: that is where
	// Fig. 8's extra round trip actually amortizes, and staleness is safe
	// (see driver.Config.DescribeCache).
	DisableDescribeCache bool
	// Obs receives pool instruments (pool.conns_open, pool.conns_idle,
	// pool.acquire_wait_ns, pool.replica_reads, pool.primary_reads,
	// pool.staleness_fallbacks, pool.dials, pool.reuses); nil disables them.
	Obs *obs.Registry
}

// ErrClosed reports an operation on a closed pool.
var ErrClosed = errors.New("pool: closed")

// ErrReleased reports use of a connection after it was released.
var ErrReleased = errors.New("pool: connection used after release")

// endpoint is one server address with its checkout semaphore, idle list and
// freshness watermark.
type endpoint struct {
	addr    string
	replica bool
	sem     chan struct{} // checkout slots (capacity MaxConns)

	mu   sync.Mutex
	idle []*PooledConn

	// lsn is the endpoint's last known log watermark — on a replica the
	// highest applied LSN the pool has observed. Monotone: a piggybacked or
	// pinged value only ever raises it.
	lsn  atomic.Uint64
	down atomic.Bool

	// health is the endpoint's dedicated health-ping connection, outside the
	// checkout accounting.
	healthMu sync.Mutex
	health   *driver.Conn
}

func (ep *endpoint) observeLSN(lsn uint64) {
	for {
		cur := ep.lsn.Load()
		if lsn <= cur || ep.lsn.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// Pool is a failover-aware connection pool with LSN-bounded replica read
// routing. Safe for concurrent use.
type Pool struct {
	cfg      Config
	dcfg     driver.Config
	cache    *driver.Cache
	primary  *endpoint
	replicas []*endpoint

	// addrs is the failover list primary connections are dialed with.
	addrs []string

	// lastWrite is the pool-global write watermark: the highest LSN observed
	// on any primary connection. The "global" consistency mode reads it; the
	// default "session" mode tracks watermarks per client session instead.
	lastWrite atomic.Uint64

	// rr round-robins replica selection across AcquireRead calls.
	rr atomic.Uint64

	numOpen atomic.Int64

	mu     sync.Mutex
	closed bool
	stop   chan struct{}
	done   chan struct{}

	dials       *obs.Counter
	reuses      *obs.Counter
	replicaRd   *obs.Counter
	primaryRd   *obs.Counter
	staleFB     *obs.Counter
	readSpills  *obs.Counter
	acquireWait *obs.Histogram
}

// New creates a pool. No connections are dialed until first use.
func New(cfg Config) (*Pool, error) {
	if cfg.Primary == "" {
		return nil, errors.New("pool: no primary address")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 8
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = cfg.MaxConns
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	dcfg := cfg.Driver
	dcfg.DescribeCache = !cfg.DisableDescribeCache
	dcfg.Obs = cfg.Obs

	p := &Pool{
		cfg:   cfg,
		dcfg:  dcfg,
		cache: driver.NewCache(),
		addrs: append([]string{cfg.Primary}, cfg.Replicas...),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),

		dials:       cfg.Obs.Counter("pool.dials"),
		reuses:      cfg.Obs.Counter("pool.reuses"),
		replicaRd:   cfg.Obs.Counter("pool.replica_reads"),
		primaryRd:   cfg.Obs.Counter("pool.primary_reads"),
		staleFB:     cfg.Obs.Counter("pool.staleness_fallbacks"),
		readSpills:  cfg.Obs.Counter("pool.read_spills"),
		acquireWait: cfg.Obs.Histogram("pool.acquire_wait_ns"),
	}
	p.primary = newEndpoint(cfg.Primary, false, cfg.MaxConns)
	for _, addr := range cfg.Replicas {
		p.replicas = append(p.replicas, newEndpoint(addr, true, cfg.MaxConns))
	}
	if cfg.Obs != nil {
		cfg.Obs.GaugeFunc("pool.conns_open", p.numOpen.Load)
		cfg.Obs.GaugeFunc("pool.conns_idle", func() int64 { return int64(p.idleCount()) })
	}
	if cfg.HealthInterval > 0 && len(p.replicas) > 0 {
		go p.healthLoop()
	} else {
		close(p.done)
	}
	return p, nil
}

func newEndpoint(addr string, replica bool, maxConns int) *endpoint {
	return &endpoint{addr: addr, replica: replica, sem: make(chan struct{}, maxConns)}
}

// Cache exposes the pool's shared describe + CEK cache (zeroize at process
// teardown, after Close).
func (p *Pool) Cache() *driver.Cache { return p.cache }

// LastWrite is the pool-global write watermark: the highest primary LSN any
// pooled connection has observed. The "global" read-consistency mode uses it
// as the freshness bound for every read.
func (p *Pool) LastWrite() uint64 { return p.lastWrite.Load() }

func (p *Pool) observeWrite(lsn uint64) {
	for {
		cur := p.lastWrite.Load()
		if lsn <= cur || p.lastWrite.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// Acquire checks out a primary connection, dialing one if no idle connection
// exists and the per-endpoint cap allows it; otherwise it blocks until a slot
// frees or ctx is done. The connection carries the full failover address
// list, so primary death mid-statement follows PR 4's exactly-once rules.
func (p *Pool) Acquire(ctx context.Context) (*PooledConn, error) {
	return p.acquire(ctx, p.primary)
}

// AcquireRead checks out a connection for a side-effect-free read whose
// session requires all writes up to minLSN to be visible. It routes to a
// replica only when the pool's known applied LSN for that replica has
// reached minLSN (read-your-writes); otherwise — replicas lagging, down,
// absent, or all at their checkout cap — it falls back to the primary, which
// is always fresh. A fallback caused purely by lag is counted in
// pool.staleness_fallbacks; one caused purely by saturation (every fresh
// replica at capacity, so the read spills to the primary rather than queue)
// in pool.read_spills.
func (p *Pool) AcquireRead(ctx context.Context, minLSN uint64) (*PooledConn, error) {
	n := len(p.replicas)
	if n > 0 {
		start := int(p.rr.Add(1))
		stale, busy := false, false
		for off := 0; off < n; off++ {
			ep := p.replicas[(start+off)%n]
			if ep.down.Load() {
				continue
			}
			if ep.lsn.Load() < minLSN {
				stale = true
				continue
			}
			pc, ok, err := p.tryAcquire(ep)
			if err == nil && ok {
				p.replicaRd.Inc()
				return pc, nil
			}
			if err == nil {
				// Fresh but no free checkout slot right now.
				busy = true
				continue
			}
			if errors.Is(err, ErrClosed) || ctx.Err() != nil {
				return nil, err
			}
			// Dial failure: the health loop will confirm; route around it.
			ep.down.Store(true)
		}
		if stale {
			p.staleFB.Inc()
		} else if busy {
			p.readSpills.Inc()
		}
	}
	p.primaryRd.Inc()
	return p.acquire(ctx, p.primary)
}

func (p *Pool) acquire(ctx context.Context, ep *endpoint) (*PooledConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.mu.Unlock()

	start := time.Now()
	select {
	case ep.sem <- struct{}{}:
	default:
		select {
		case ep.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	p.acquireWait.Observe(time.Since(start).Nanoseconds())
	return p.checkout(ep)
}

// tryAcquire is acquire without the blocking wait: it takes a checkout slot
// only if one is free right now. ok reports whether a slot was taken; a
// false ok with a nil error means the endpoint is saturated.
func (p *Pool) tryAcquire(ep *endpoint) (pc *PooledConn, ok bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, ErrClosed
	}
	p.mu.Unlock()

	select {
	case ep.sem <- struct{}{}:
	default:
		return nil, false, nil
	}
	pc, err = p.checkout(ep)
	return pc, true, err
}

// checkout hands out a connection for an already-reserved slot: an idle one
// if available, else a fresh dial. On dial failure the slot is returned.
func (p *Pool) checkout(ep *endpoint) (*PooledConn, error) {
	ep.mu.Lock()
	if n := len(ep.idle); n > 0 {
		pc := ep.idle[n-1]
		ep.idle = ep.idle[:n-1]
		ep.mu.Unlock()
		pc.released = false
		pc.sawError = false
		p.reuses.Inc()
		return pc, nil
	}
	ep.mu.Unlock()

	conn, err := p.dial(ep)
	if err != nil {
		<-ep.sem
		return nil, err
	}
	p.dials.Inc()
	p.numOpen.Add(1)
	return &PooledConn{pool: p, ep: ep, conn: conn}, nil
}

// dial opens a driver connection for the endpoint: primaries get the full
// failover list, replicas a single endpoint (their failure mode is routing
// around, not failing over).
func (p *Pool) dial(ep *endpoint) (*driver.Conn, error) {
	if ep.replica {
		return driver.Dial(ep.addr, p.dcfg, p.cache)
	}
	return driver.DialMulti(p.addrs, p.dcfg, p.cache)
}

// PingReplicas health-pings every replica endpoint once, synchronously:
// refreshes applied-LSN watermarks and down flags. The health loop calls it
// on a timer; tests call it directly for determinism.
func (p *Pool) PingReplicas() {
	for _, ep := range p.replicas {
		p.pingEndpoint(ep)
	}
}

func (p *Pool) pingEndpoint(ep *endpoint) {
	ep.healthMu.Lock()
	defer ep.healthMu.Unlock()
	if ep.health == nil {
		conn, err := driver.Dial(ep.addr, p.dcfg, p.cache)
		if err != nil {
			ep.down.Store(true)
			return
		}
		ep.health = conn
	}
	lsn, err := ep.health.Ping()
	if err != nil {
		ep.health.Close()
		ep.health = nil
		ep.down.Store(true)
		return
	}
	ep.down.Store(false)
	ep.observeLSN(lsn)
}

func (p *Pool) healthLoop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.PingReplicas()
		}
	}
}

func (p *Pool) idleCount() int {
	n := 0
	for _, ep := range append([]*endpoint{p.primary}, p.replicas...) {
		ep.mu.Lock()
		n += len(ep.idle)
		ep.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time pool snapshot.
type Stats struct {
	Open               int64
	Idle               int
	Dials              uint64
	Reuses             uint64
	ReplicaReads       uint64
	PrimaryReads       uint64
	StalenessFallbacks uint64
	ReadSpills         uint64
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Open:               p.numOpen.Load(),
		Idle:               p.idleCount(),
		Dials:              p.dials.Value(),
		Reuses:             p.reuses.Value(),
		ReplicaReads:       p.replicaRd.Value(),
		PrimaryReads:       p.primaryRd.Value(),
		StalenessFallbacks: p.staleFB.Value(),
		ReadSpills:         p.readSpills.Value(),
	}
}

// ReplicaLSN returns the pool's known applied LSN for replica i (tests).
func (p *Pool) ReplicaLSN(i int) uint64 { return p.replicas[i].lsn.Load() }

// Close stops the health loop and closes every idle and health connection.
// Checked-out connections are closed when released.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	<-p.done
	for _, ep := range append([]*endpoint{p.primary}, p.replicas...) {
		ep.mu.Lock()
		idle := ep.idle
		ep.idle = nil
		ep.mu.Unlock()
		for _, pc := range idle {
			pc.conn.Close()
			p.numOpen.Add(-1)
		}
		ep.healthMu.Lock()
		if ep.health != nil {
			ep.health.Close()
			ep.health = nil
		}
		ep.healthMu.Unlock()
	}
}

// PooledConn is a checked-out connection. Not safe for concurrent use —
// like driver.Conn, one PooledConn serves one worker at a time. Every
// Acquire/AcquireRead must be paired with exactly one Release on every path
// (the poolconn lint spec enforces this statically).
type PooledConn struct {
	pool *Pool
	ep   *endpoint
	conn *driver.Conn

	// sawError marks a transport-level failure: the connection must pass a
	// Ping health check before rejoining the idle set.
	sawError bool
	released bool
}

// Replica reports whether the connection is routed to a read replica.
func (pc *PooledConn) Replica() bool { return pc.ep.replica }

// Exec runs one statement through the underlying driver connection,
// piggybacking the response LSN into the pool's watermarks. Error semantics
// are the driver's: a *tds.ServerError means the server processed and
// rejected the statement; driver.ErrIndeterminate means in-flight DML died
// with the primary and MUST be checked by the caller (the poolconn lint spec
// flags Exec results that are discarded).
func (pc *PooledConn) Exec(query string, args map[string]sqltypes.Value) (*driver.Rows, error) {
	if pc.released {
		return nil, ErrReleased
	}
	rows, err := pc.conn.Exec(query, args)
	pc.noteResult(err)
	return rows, err
}

// Begin/Commit/Rollback control an explicit transaction. Transactions are
// only meaningful on primary connections (replicas reject writes); aesql
// pins them there.
func (pc *PooledConn) Begin() error {
	if pc.released {
		return ErrReleased
	}
	err := pc.conn.Begin()
	pc.noteResult(err)
	return err
}

func (pc *PooledConn) Commit() error {
	if pc.released {
		return ErrReleased
	}
	err := pc.conn.Commit()
	pc.noteResult(err)
	return err
}

func (pc *PooledConn) Rollback() error {
	if pc.released {
		return ErrReleased
	}
	err := pc.conn.Rollback()
	pc.noteResult(err)
	return err
}

// noteResult folds one statement outcome into pool state: the response LSN
// raises the endpoint (and, on a primary, the pool-global write) watermark;
// a transport-level error quarantines the connection until a health check.
func (pc *PooledConn) noteResult(err error) {
	if lsn := pc.conn.LastLSN(); lsn > 0 {
		pc.ep.observeLSN(lsn)
		if !pc.ep.replica {
			pc.pool.observeWrite(lsn)
		}
	}
	if err != nil {
		var se *tds.ServerError
		if !errors.As(err, &se) {
			pc.sawError = true
		}
	}
}

// LastLSN is the log watermark from the connection's most recent response —
// after a write, the session's read-your-writes bound.
func (pc *PooledConn) LastLSN() uint64 { return pc.conn.LastLSN() }

// Conn exposes the underlying driver connection (stats, trace IDs).
func (pc *PooledConn) Conn() *driver.Conn { return pc.conn }

// Release returns the connection to the pool. A connection that saw a
// transport error must pass a Ping before rejoining the idle set; one that
// fails the check (or exceeds MaxIdle, or belongs to a closed pool) is
// closed. Release is idempotent at runtime, but the poolconn lint spec flags
// double-release paths statically.
func (pc *PooledConn) Release() {
	if pc.released {
		return
	}
	pc.released = true
	p, ep := pc.pool, pc.ep

	healthy := !pc.sawError
	if pc.sawError {
		// The driver may have failed the connection over already (in which
		// case it is live against a promoted replica) or the transport may be
		// dead. One round trip settles it.
		if _, err := pc.conn.Ping(); err == nil {
			healthy = true
			pc.sawError = false
		}
	}

	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()

	if healthy && !closed {
		ep.mu.Lock()
		if len(ep.idle) < p.cfg.MaxIdle {
			ep.idle = append(ep.idle, pc)
			ep.mu.Unlock()
			<-ep.sem
			return
		}
		ep.mu.Unlock()
	}
	pc.conn.Close()
	p.numOpen.Add(-1)
	<-ep.sem
}

// String implements fmt.Stringer for debug logs without leaking row data.
func (pc *PooledConn) String() string {
	kind := "primary"
	if pc.ep.replica {
		kind = "replica"
	}
	return fmt.Sprintf("poolconn(%s %s)", kind, pc.ep.addr)
}

package pool_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"alwaysencrypted/internal/core"
	"alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/obs"
	"alwaysencrypted/internal/pool"
	"alwaysencrypted/internal/sqltypes"
)

// startPrimary boots a full AE deployment with provisioned keys and an AE
// table, returning the server and the driver config pooled clients use.
func startPrimary(t *testing.T, replListen string) (*core.Server, driver.Config) {
	t.Helper()
	srv, err := core.StartServer(core.ServerConfig{EnclaveThreads: 2, ReplListen: replListen})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	admin := core.NewKeyAdmin(srv)
	if err := admin.CreateMasterKey("CMK1", true); err != nil {
		t.Fatal(err)
	}
	if err := admin.CreateColumnKey("CEK1", "CMK1"); err != nil {
		t.Fatal(err)
	}
	pol := srv.Policy()
	return srv, driver.Config{
		AlwaysEncrypted: true,
		Providers:       admin.Registry(),
		Policy:          &pol,
	}
}

func mustExec(t *testing.T, pc *pool.PooledConn, q string, args map[string]sqltypes.Value) *driver.Rows {
	t.Helper()
	rows, err := pc.Exec(q, args)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return rows
}

// One pool, many statements: the describe round trip and the attestation
// handshake are paid once per physical connection, not once per statement —
// the Fig. 8 amortization the pool exists for.
func TestPoolReuseAmortizesSetup(t *testing.T) {
	srv, dcfg := startPrimary(t, "")
	reg := obs.New("test")
	p, err := pool.New(pool.Config{
		Primary:        srv.Addr(),
		Driver:         dcfg,
		HealthInterval: -1,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx := context.Background()
	pc, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, pc, "CREATE TABLE pii (id int PRIMARY KEY, ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))", nil)
	pc.Release()

	const n = 20
	for i := 0; i < n; i++ {
		pc, err := p.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, pc, "INSERT INTO pii (id, ssn) VALUES (@id, @ssn)", map[string]sqltypes.Value{
			"id": sqltypes.Int(int64(i)), "ssn": sqltypes.Str(fmt.Sprintf("%09d", i)),
		})
		pc.Release()
	}

	st := p.Stats()
	if st.Dials != 1 {
		t.Errorf("dials = %d, want 1 (every statement reuses the first connection)", st.Dials)
	}
	if st.Reuses != n {
		t.Errorf("reuses = %d, want %d", st.Reuses, n)
	}
	// The shared describe cache means one describe round trip per distinct
	// query text, not one per execution.
	if got := reg.Counter("driver.describe_calls").Value(); got != 2 {
		t.Errorf("describe_calls = %d, want 2 (CREATE + INSERT, each described once)", got)
	}
	// Randomized equality needs the enclave: the first such predicate
	// triggers attestation, and every later one on the pool's single
	// physical connection rides the same attested session.
	for i := 0; i < 5; i++ {
		pc, err := p.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rows := mustExec(t, pc, "SELECT id FROM pii WHERE ssn = @ssn",
			map[string]sqltypes.Value{"ssn": sqltypes.Str("000000007")})
		pc.Release()
		if len(rows.Values) != 1 || rows.Values[0][0].I != 7 {
			t.Fatalf("decrypted predicate read = %+v", rows.Values)
		}
	}
	if got := reg.Counter("driver.attestations").Value(); got != 1 {
		t.Errorf("attestations = %d, want 1 (one per physical connection, amortized by the pool)", got)
	}
}

// Read-your-writes through the pool: a read bounded by the session's last
// write LSN falls back to the primary while the replica lags (a counted
// staleness fallback, never a stale row) and routes to the replica once its
// applied watermark catches up.
func TestPoolReadYourWrites(t *testing.T) {
	srv, dcfg := startPrimary(t, "127.0.0.1:0")
	trust := srv.Trust()
	rs, err := core.StartReplicaServer(core.ReplicaConfig{
		Primary: srv.ReplAddr(), EnclaveThreads: 2, Trust: &trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	p, err := pool.New(pool.Config{
		Primary:        srv.Addr(),
		Replicas:       []string{rs.Addr()},
		Driver:         dcfg,
		HealthInterval: -1, // tests drive PingReplicas for determinism
		Obs:            obs.New("test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx := context.Background()
	pc, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, pc, "CREATE TABLE t (id int PRIMARY KEY, v int)", nil)
	mustExec(t, pc, "INSERT INTO t (id, v) VALUES (@id, @v)", map[string]sqltypes.Value{
		"id": sqltypes.Int(1), "v": sqltypes.Int(42),
	})
	bound := pc.LastLSN()
	pc.Release()
	if bound == 0 {
		t.Fatal("primary response carried no LSN")
	}

	// The pool has never observed the replica's watermark: the freshness
	// bound cannot be met, so the read must fall back to the primary.
	rd, err := p.AcquireRead(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Replica() {
		t.Fatal("read routed to a replica whose applied LSN is unknown")
	}
	rows := mustExec(t, rd, "SELECT v FROM t WHERE id = @id", map[string]sqltypes.Value{"id": sqltypes.Int(1)})
	rd.Release()
	if len(rows.Values) != 1 || rows.Values[0][0].I != 42 {
		t.Fatalf("fallback read = %+v, want the session's own write", rows.Values)
	}
	if st := p.Stats(); st.StalenessFallbacks == 0 || st.PrimaryReads == 0 {
		t.Errorf("stats = %+v, want a counted staleness fallback and primary read", st)
	}

	// Let the replica apply everything, refresh the watermark, and the same
	// bounded read now rides the replica — and still sees the write.
	if err := rs.Replication.WaitForLSN(srv.Engine.WAL().NextLSN(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	p.PingReplicas()
	if got := p.ReplicaLSN(0); got < bound {
		t.Fatalf("pinged replica LSN = %d, want >= %d", got, bound)
	}
	rd, err = p.AcquireRead(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Replica() {
		t.Fatal("caught-up replica not chosen for bounded read")
	}
	rows = mustExec(t, rd, "SELECT v FROM t WHERE id = @id", map[string]sqltypes.Value{"id": sqltypes.Int(1)})
	rd.Release()
	if len(rows.Values) != 1 || rows.Values[0][0].I != 42 {
		t.Fatalf("replica read = %+v, want the session's write", rows.Values)
	}
	if st := p.Stats(); st.ReplicaReads != 1 {
		t.Errorf("replica reads = %d, want 1", st.ReplicaReads)
	}
}

// A replica that is down (or stale) is routed around, not failed on: reads
// fall back to the primary and the pool keeps working.
func TestPoolRoutesAroundDownReplica(t *testing.T) {
	srv, dcfg := startPrimary(t, "")
	// A listener that never speaks TDS stands in for a dead replica.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	p, err := pool.New(pool.Config{
		Primary:        srv.Addr(),
		Replicas:       []string{deadAddr},
		Driver:         dcfg,
		HealthInterval: -1,
		Obs:            obs.New("test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.PingReplicas() // marks the dead replica down

	ctx := context.Background()
	pc, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, pc, "CREATE TABLE t (id int PRIMARY KEY)", nil)
	pc.Release()

	rd, err := p.AcquireRead(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Replica() {
		t.Fatal("read routed to a down replica")
	}
	mustExec(t, rd, "SELECT id FROM t", nil)
	rd.Release()
}

// A fresh replica whose checkout slots are all busy does not queue reads:
// they spill to the primary (counted in ReadSpills), so the whole
// deployment's capacity serves the read load.
func TestPoolReadSpillsWhenReplicaSaturated(t *testing.T) {
	srv, dcfg := startPrimary(t, "127.0.0.1:0")
	trust := srv.Trust()
	rs, err := core.StartReplicaServer(core.ReplicaConfig{
		Primary: srv.ReplAddr(), EnclaveThreads: 2, Trust: &trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	p, err := pool.New(pool.Config{
		Primary:        srv.Addr(),
		Replicas:       []string{rs.Addr()},
		Driver:         dcfg,
		MaxConns:       1, // one checkout slot per endpoint
		HealthInterval: -1,
		Obs:            obs.New("test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	pc, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, pc, "CREATE TABLE t (id int PRIMARY KEY)", nil)
	pc.Release()
	if err := rs.Replication.WaitForLSN(srv.Engine.WAL().NextLSN(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	p.PingReplicas()

	// First read takes the replica's only slot and holds it.
	held, err := p.AcquireRead(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !held.Replica() {
		t.Fatal("first read should land on the fresh replica")
	}

	// Second read finds the replica saturated and spills to the primary.
	rd, err := p.AcquireRead(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Replica() {
		t.Fatal("read should have spilled to the primary, not queued on the replica")
	}
	mustExec(t, rd, "SELECT id FROM t", nil)
	rd.Release()
	held.Release()

	st := p.Stats()
	if st.ReadSpills != 1 {
		t.Fatalf("ReadSpills = %d, want 1", st.ReadSpills)
	}
	if st.ReplicaReads != 1 || st.PrimaryReads != 1 {
		t.Fatalf("ReplicaReads = %d, PrimaryReads = %d, want 1 and 1", st.ReplicaReads, st.PrimaryReads)
	}
	if st.StalenessFallbacks != 0 {
		t.Fatalf("StalenessFallbacks = %d, want 0 (saturation is not staleness)", st.StalenessFallbacks)
	}
}

// startHalfDeadServer accepts, reads one request frame and closes without
// responding — the transport failure where the statement may or may not have
// executed (same shape as the driver's own failover tests).
func startHalfDeadServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var hdr [4]byte
				if _, err := io.ReadFull(c, hdr[:]); err != nil {
					return
				}
				io.CopyN(io.Discard, c, int64(binary.BigEndian.Uint32(hdr[:])))
			}(conn)
		}
	}()
	return l.Addr().String()
}

// Failover through the pool keeps PR 4's exactly-once semantics: in-flight
// DML on a dying primary surfaces ErrIndeterminate, and the failed-over
// connection passes its Release health check and is reused — against the
// surviving server — without a redial.
func TestPoolFailoverIndeterminateAndQuarantine(t *testing.T) {
	srv, err := core.StartServer(core.ServerConfig{EnclaveThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	admin, err := srv.Connect(core.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if _, err := admin.Exec("CREATE TABLE t (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}

	// The pool's primary is half-dead; the failover list continues to the
	// live server.
	p, err := pool.New(pool.Config{
		Primary:        startHalfDeadServer(t),
		Replicas:       []string{srv.Addr()},
		Driver:         driver.Config{},
		HealthInterval: -1,
		Obs:            obs.New("test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx := context.Background()
	pc, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = pc.Exec("INSERT INTO t (id) VALUES (@id)", map[string]sqltypes.Value{"id": sqltypes.Int(1)})
	if !errors.Is(err, driver.ErrIndeterminate) {
		t.Fatalf("in-flight DML through pool: err = %v, want ErrIndeterminate", err)
	}
	pc.Release() // quarantined: must pass a Ping before rejoining the idle set

	pc, err = p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The application's retry (its decision, not the pool's) lands exactly
	// once on the survivor.
	mustExec(t, pc, "INSERT INTO t (id) VALUES (@id)", map[string]sqltypes.Value{"id": sqltypes.Int(1)})
	rows := mustExec(t, pc, "SELECT id FROM t", nil)
	pc.Release()
	if len(rows.Values) != 1 {
		t.Fatalf("rows after app retry = %d, want 1", len(rows.Values))
	}
	if st := p.Stats(); st.Dials != 1 || st.Reuses != 1 {
		t.Errorf("stats = %+v, want the failed-over connection reused, not redialed", st)
	}
}

// Checkout accounting: MaxConns bounds concurrent checkouts, a released
// connection is dead to its holder, and a closed pool refuses acquires.
func TestPoolLimitsAndLifecycle(t *testing.T) {
	srv, err := core.StartServer(core.ServerConfig{EnclaveThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := pool.New(pool.Config{
		Primary:        srv.Addr(),
		Driver:         driver.Config{},
		MaxConns:       1,
		HealthInterval: -1,
		Obs:            obs.New("test"),
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	pc, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	if _, err := p.Acquire(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-cap acquire err = %v, want deadline exceeded", err)
	}
	cancel()

	pc.Release()
	if _, err := pc.Exec("SELECT 1", nil); !errors.Is(err, pool.ErrReleased) {
		t.Fatalf("use-after-release err = %v, want ErrReleased", err)
	}

	pc, err = p.Acquire(ctx)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	pc.Release()

	p.Close()
	if _, err := p.Acquire(ctx); !errors.Is(err, pool.ErrClosed) {
		t.Fatalf("acquire on closed pool err = %v, want ErrClosed", err)
	}
	if st := p.Stats(); st.Open != 0 || st.Idle != 0 {
		t.Errorf("stats after close = %+v, want everything closed", st)
	}
}

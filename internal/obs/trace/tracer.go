package trace

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Policy configures trace sampling.
//
// A trace is *recorded* whenever the tracer is enabled (so slow and failed
// statements can always be kept), but it is only *stored* if one of three
// keep rules fires at finish time:
//
//   - head sampling: kept with probability SampleRate, decided at start;
//   - always-sample-slow: wall time ≥ SlowThreshold (if > 0);
//   - always-sample-error: the statement returned an error.
type Policy struct {
	SampleRate    float64       // head-sampling probability in [0,1]
	SlowThreshold time.Duration // 0 disables the slow rule
	Capacity      int           // ring-buffer capacity (default 256)
}

// DefaultCapacity is the ring size used when Policy.Capacity is zero.
const DefaultCapacity = 256

// Tracer owns the sampling policy and the completed-trace ring. A nil
// *Tracer is valid and disabled: Start returns nil, and every method on a
// nil *Active is a no-op, so call sites never branch on tracing state.
type Tracer struct {
	headKeep uint64 // keep head-sampled if rng draw < headKeep
	slow     time.Duration
	store    *Store
	rng      atomic.Uint64
	pool     sync.Pool
}

// NewTracer builds an enabled tracer with the given policy.
func NewTracer(p Policy) *Tracer {
	cap := p.Capacity
	if cap <= 0 {
		cap = DefaultCapacity
	}
	t := &Tracer{slow: p.SlowThreshold, store: NewStore(cap)}
	switch {
	case p.SampleRate <= 0:
		t.headKeep = 0
	case p.SampleRate >= 1:
		t.headKeep = math.MaxUint64
	default:
		t.headKeep = uint64(p.SampleRate * float64(math.MaxUint64))
	}
	var seed [8]byte
	id := NewID()
	copy(seed[:], id[:8])
	t.rng.Store(binary.LittleEndian.Uint64(seed[:]) | 1)
	t.pool.New = func() any { return &Active{} }
	return t
}

// Store exposes the completed-trace ring (export endpoint, tests).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// draw advances a splitmix64-style PRNG shared by all sessions. Trace
// sampling needs speed and rough uniformity, not unpredictability.
func (t *Tracer) draw() uint64 {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Start begins recording a trace. id is the wire trace ID (a fresh one is
// minted when zero, so statements from old clients still trace). Returns
// nil when the tracer is nil/disabled; the nil *Active no-ops everywhere.
func (t *Tracer) Start(id ID, kind Kind) *Active {
	if t == nil {
		return nil
	}
	if id.IsZero() {
		id = NewID()
	}
	a := t.pool.Get().(*Active)
	a.tr = t
	a.headKeep = t.headKeep > 0 && t.draw() < t.headKeep
	a.start = time.Now()
	a.t.ID = id
	a.t.Link = ID{}
	a.t.Kind = kind
	a.t.Err = false
	a.t.Start = a.start
	a.t.Wall = 0
	a.t.Spans = a.t.Spans[:0]
	return a
}

// Active is an in-flight trace being built on one session goroutine. It is
// not safe for concurrent use; the statement lifecycle is single-threaded
// per session, which is exactly the scope of one Active.
type Active struct {
	tr       *Tracer
	headKeep bool
	start    time.Time
	t        Trace
}

// ID returns the trace ID (zero on a nil Active).
func (a *Active) ID() ID {
	if a == nil {
		return ID{}
	}
	return a.t.ID
}

// SetKind classifies the statement (closed enum; set once known).
func (a *Active) SetKind(k Kind) {
	if a != nil {
		a.t.Kind = k
	}
}

// SetLink marks the originating trace this one derives from (replica redo).
func (a *Active) SetLink(id ID) {
	if a != nil {
		a.t.Link = id
	}
}

// StartSpan opens a span. End it via the returned SpanRef; spans left
// unended are discarded at Finish.
func (a *Active) StartSpan(name string) SpanRef {
	if a == nil {
		return SpanRef{}
	}
	a.t.Spans = append(a.t.Spans, Span{Name: name, Start: time.Since(a.start), Dur: -1})
	return SpanRef{a: a, i: len(a.t.Spans) - 1}
}

// SpanRef is a handle to an open span on an Active. The zero SpanRef (from
// a nil Active) is a no-op.
type SpanRef struct {
	a *Active
	i int
}

// End closes the span.
func (s SpanRef) End() {
	if s.a == nil {
		return
	}
	sp := &s.a.t.Spans[s.i]
	sp.Dur = time.Since(s.a.start) - sp.Start
}

// Attr attaches a typed attribute to the span. int64 values only — the
// API has no string-valued variant by design (leakage contract).
func (s SpanRef) Attr(key string, v int64) {
	if s.a == nil {
		return
	}
	sp := &s.a.t.Spans[s.i]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: v})
}

// Finish completes the trace and applies the keep policy: head-sampled,
// slow (wall ≥ threshold) or errored traces go to the ring; everything
// else is recycled. Safe on nil.
func (a *Active) Finish(err error) {
	if a == nil {
		return
	}
	tr := a.tr
	a.t.Wall = time.Since(a.start)
	if err != nil {
		a.t.Err = true
	}
	// Drop spans never ended (panic paths): a span with Dur -1 would
	// export as nonsense.
	kept := a.t.Spans[:0]
	for _, sp := range a.t.Spans {
		if sp.Dur >= 0 {
			kept = append(kept, sp)
		}
	}
	a.t.Spans = kept

	keep := a.headKeep || a.t.Err || (tr.slow > 0 && a.t.Wall >= tr.slow)
	if keep {
		// The stored Trace owns the span array; the Active cannot be
		// recycled or its next statement would scribble over it.
		t := a.t
		tr.store.Add(&t)
		return
	}
	a.tr = nil
	tr.pool.Put(a)
}

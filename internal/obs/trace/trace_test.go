package trace

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewID()
	if id.IsZero() {
		t.Fatal("NewID returned zero ID")
	}
	got, err := ParseID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseID(%q) = %v, %v", id.String(), got, err)
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatal("ParseID accepted junk")
	}
	if _, err := IDFromBytes(nil); err != nil {
		t.Fatalf("empty wire ID must be valid (old clients): %v", err)
	}
	if _, err := IDFromBytes(make([]byte, 17)); !errors.Is(err, ErrBadID) {
		t.Fatal("oversized wire ID accepted")
	}
}

func TestKindEnumClosed(t *testing.T) {
	for k := KindUnknown; k <= KindRedo; k++ {
		name := k.String()
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("kind %d round trip via %q failed", k, name)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must render as unknown")
	}
	if _, ok := KindFromString("SELECT c FROM t"); ok {
		t.Fatal("free-form string accepted as kind")
	}
}

func TestStoreOverflowDropsOldest(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		s.Add(&Trace{ID: NewID()})
	}
	got := s.Drain()
	if len(got) != 4 {
		t.Fatalf("resident traces = %d, want 4", len(got))
	}
	// Oldest six were overwritten; the survivors are 7..10 in order.
	for i, tr := range got {
		if tr.Seq != uint64(7+i) {
			t.Fatalf("survivor %d has seq %d, want %d", i, tr.Seq, 7+i)
		}
	}
	if s.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", s.Dropped())
	}
	if s.Len() != 0 {
		t.Fatal("drain left residents behind")
	}
}

// Concurrent writers with a reader draining mid-write: every added trace is
// observed exactly once across drains, or accounted as dropped.
func TestStoreConcurrentDrain(t *testing.T) {
	s := NewStore(8)
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Add(&Trace{ID: NewID()})
			}
		}()
	}
	seen := make(map[uint64]bool)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	collect := func() {
		for _, tr := range s.Drain() {
			if seen[tr.Seq] {
				t.Errorf("seq %d drained twice", tr.Seq)
			}
			seen[tr.Seq] = true
		}
	}
	for {
		select {
		case <-done:
			collect()
			total := uint64(len(seen)) + s.Dropped()
			if total != writers*perWriter {
				t.Fatalf("seen %d + dropped %d != %d added", len(seen), s.Dropped(), writers*perWriter)
			}
			return
		default:
			collect()
		}
	}
}

func TestSamplingZeroRateKeepsSlowAndError(t *testing.T) {
	tr := NewTracer(Policy{SampleRate: 0, SlowThreshold: time.Millisecond, Capacity: 16})

	// Fast, successful statement at rate 0: dropped.
	a := tr.Start(ID{}, KindSelect)
	a.Finish(nil)
	if n := tr.Store().Len(); n != 0 {
		t.Fatalf("fast clean trace kept at rate 0 (%d resident)", n)
	}

	// Errored statement: always kept.
	a = tr.Start(ID{}, KindInsert)
	a.Finish(errors.New("boom"))
	if n := tr.Store().Len(); n != 1 {
		t.Fatalf("errored trace not kept (%d resident)", n)
	}

	// Slow statement: always kept.
	a = tr.Start(ID{}, KindSelect)
	time.Sleep(2 * time.Millisecond)
	a.Finish(nil)
	got := tr.Store().Drain()
	if len(got) != 2 {
		t.Fatalf("slow trace not kept (%d resident)", len(got))
	}
	if !got[0].Err || got[0].Kind != KindInsert {
		t.Fatalf("first kept trace = %+v, want errored insert", got[0])
	}
	if got[1].Err || got[1].Wall < time.Millisecond {
		t.Fatalf("second kept trace = %+v, want slow clean select", got[1])
	}
}

func TestSamplingRateOneKeepsAll(t *testing.T) {
	tr := NewTracer(Policy{SampleRate: 1, Capacity: 64})
	for i := 0; i < 50; i++ {
		tr.Start(ID{}, KindSelect).Finish(nil)
	}
	if n := tr.Store().Len(); n != 50 {
		t.Fatalf("kept %d of 50 at rate 1", n)
	}
}

func TestSamplingRateIsApproximate(t *testing.T) {
	tr := NewTracer(Policy{SampleRate: 0.5, Capacity: 4096})
	const n = 4000
	for i := 0; i < n; i++ {
		tr.Start(ID{}, KindSelect).Finish(nil)
	}
	kept := tr.Store().Len()
	if kept < n/4 || kept > 3*n/4 {
		t.Fatalf("rate 0.5 kept %d of %d", kept, n)
	}
}

func TestNilTracerAndActiveAreNoOps(t *testing.T) {
	var tr *Tracer
	a := tr.Start(NewID(), KindSelect)
	if a != nil {
		t.Fatal("nil tracer started a trace")
	}
	// Every method must be callable on the nil Active.
	sp := a.StartSpan("exec")
	sp.Attr("rows", 3)
	sp.End()
	a.SetKind(KindDelete)
	a.SetLink(NewID())
	if !a.ID().IsZero() {
		t.Fatal("nil Active has an ID")
	}
	a.Finish(nil)
	if tr.Store() != nil {
		t.Fatal("nil tracer has a store")
	}
}

func TestSpansRecordOffsetsAndAttrs(t *testing.T) {
	tr := NewTracer(Policy{SampleRate: 1, Capacity: 4})
	a := tr.Start(ID{}, KindSelect)
	sp := a.StartSpan("enclave.crossing")
	sp.Attr("rows", 42)
	sp.Attr("ops.cmp", 84)
	sp.End()
	open := a.StartSpan("never.ended")
	_ = open
	a.Finish(nil)

	got := tr.Store().Drain()
	if len(got) != 1 {
		t.Fatalf("kept %d traces, want 1", len(got))
	}
	spans := got[0].Spans
	if len(spans) != 1 {
		t.Fatalf("unended span survived Finish: %+v", spans)
	}
	s := spans[0]
	if s.Name != "enclave.crossing" || s.Dur < 0 || s.Start < 0 {
		t.Fatalf("bad span %+v", s)
	}
	if len(s.Attrs) != 2 || s.Attrs[0] != (Attr{"rows", 42}) || s.Attrs[1] != (Attr{"ops.cmp", 84}) {
		t.Fatalf("bad attrs %+v", s.Attrs)
	}
	if got[0].Wall < s.Start+s.Dur {
		t.Fatalf("span extends past wall: wall=%v span end=%v", got[0].Wall, s.Start+s.Dur)
	}
}

func TestActiveRecycleDoesNotCorruptKeptTrace(t *testing.T) {
	tr := NewTracer(Policy{SampleRate: 1, Capacity: 8})
	a := tr.Start(ID{}, KindSelect)
	a.StartSpan("exec").End()
	a.Finish(nil)
	// A second statement on the same tracer must not scribble over the
	// stored first trace even if the Active was recycled.
	b := tr.Start(ID{}, KindUpdate)
	b.StartSpan("plan").End()
	b.StartSpan("exec").End()
	b.Finish(nil)
	got := tr.Store().Drain()
	if len(got) != 2 {
		t.Fatalf("kept %d, want 2", len(got))
	}
	if got[0].Kind != KindSelect || len(got[0].Spans) != 1 || got[0].Spans[0].Name != "exec" {
		t.Fatalf("first trace corrupted: %+v", got[0])
	}
}

func TestExportRoundTripAndValidation(t *testing.T) {
	tr := NewTracer(Policy{SampleRate: 1, Capacity: 8})
	a := tr.Start(NewID(), KindSelect)
	sp := a.StartSpan("exec")
	sp.Attr("rows", 7)
	sp.End()
	a.Finish(nil)
	link := NewID()
	b := tr.Start(NewID(), KindRedo)
	b.SetLink(link)
	b.StartSpan("redo.apply").End()
	b.Finish(errors.New("apply failed"))

	doc := Export(tr.Store().Drain())
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(back.Traces) != 2 {
		t.Fatalf("traces = %d", len(back.Traces))
	}
	if back.Traces[0].Kind != "select" || back.Traces[1].Kind != "redo" {
		t.Fatalf("kinds = %q, %q", back.Traces[0].Kind, back.Traces[1].Kind)
	}
	if back.Traces[1].Link != link.String() || !back.Traces[1].Err {
		t.Fatalf("redo trace lost link/err: %+v", back.Traces[1])
	}
	if back.Traces[0].Spans[0].Attrs["rows"] != 7 {
		t.Fatalf("attr lost: %+v", back.Traces[0].Spans[0])
	}

	// Structural rejections.
	for _, bad := range []string{
		`{"schema":"nope","traces":[]}`,
		`{"schema":"` + Schema + `","traces":[{"id":"xyz","kind":"select","wall_ns":1,"spans":[]}]}`,
		`{"schema":"` + Schema + `","traces":[{"id":"` + NewID().String() + `","kind":"SELECT * FROM t","wall_ns":1,"spans":[]}]}`,
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Fatalf("accepted invalid doc %s", bad)
		}
	}
	// String-valued attributes must fail to even unmarshal.
	strAttr := `{"schema":"` + Schema + `","traces":[{"id":"` + NewID().String() +
		`","kind":"select","wall_ns":1,"spans":[{"name":"exec","start_ns":0,"dur_ns":1,"attrs":{"q":"secret"}}]}]}`
	if _, err := Decode([]byte(strAttr)); err == nil || !strings.Contains(err.Error(), "decode export") {
		t.Fatalf("string attr survived decode: %v", err)
	}
}

// The enabled-but-unsampled hot path: one statement trace with a handful
// of spans that is then dropped. This is the per-statement cost the ≤2%
// TPC-C overhead budget rides on.
func BenchmarkUnsampledStatementTrace(b *testing.B) {
	tr := NewTracer(Policy{SampleRate: 0, Capacity: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := tr.Start(ID{}, KindSelect)
		p := a.StartSpan("plan")
		p.End()
		e := a.StartSpan("exec")
		c := a.StartSpan("enclave.crossing")
		c.Attr("rows", 256)
		c.End()
		e.End()
		a.Finish(nil)
	}
}

// Package trace implements per-statement distributed tracing for the
// Always Encrypted reproduction: each client statement carries a 16-byte
// trace ID from the driver over TDS into the engine, and every lifecycle
// phase, enclave crossing and storage wait records a span against it.
//
// The leakage contract (§2.6 strong adversary) extends to traces: span
// attributes are typed — string keys name the attribute, values are int64
// only (timings, counts, tallies). There is deliberately no string-valued
// attribute type, so parameter or cell plaintext cannot be smuggled into a
// trace; statement *kinds* are a closed enum. The obsleak analyzer enforces
// the same property statically on the recording call sites.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"time"
)

// ID is a per-statement trace identifier. It is minted from crypto/rand in
// the driver and rides the TDS request frame; a zero ID means "untraced".
type ID [16]byte

// NewID mints a random trace ID.
func NewID() ID {
	var id ID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID only
		// means the statement goes untraced, so degrade instead of panic.
		return ID{}
	}
	return id
}

// IsZero reports whether the ID is the zero (untraced) ID.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ErrBadID is returned for trace IDs that are not exactly 16 bytes /
// 32 hex digits. The TDS server rejects oversized trace-context fields
// with this error before they can bloat a frame.
var ErrBadID = errors.New("trace: malformed trace ID")

// ParseID parses a 32-hex-digit trace ID.
func ParseID(s string) (ID, error) {
	var id ID
	if len(s) != 2*len(id) {
		return ID{}, ErrBadID
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return ID{}, ErrBadID
	}
	return id, nil
}

// IDFromBytes validates a wire-format trace ID. Empty input is a valid
// "no trace context" (old clients never send the field); any other length
// except 16 is malformed.
func IDFromBytes(b []byte) (ID, error) {
	var id ID
	switch len(b) {
	case 0:
		return ID{}, nil
	case len(id):
		copy(id[:], b)
		return id, nil
	default:
		return ID{}, ErrBadID
	}
}

// Kind is the statement kind of a trace — the only classification a trace
// export carries about what the statement was. It is a closed enum so the
// export surface stays free of query text.
type Kind uint8

// Statement kinds.
const (
	KindUnknown Kind = iota
	KindSelect
	KindInsert
	KindUpdate
	KindDelete
	KindBegin
	KindCommit
	KindRollback
	KindDDL
	KindRedo // replica redo apply, linked to the originating statement
)

var kindNames = [...]string{
	KindUnknown:  "unknown",
	KindSelect:   "select",
	KindInsert:   "insert",
	KindUpdate:   "update",
	KindDelete:   "delete",
	KindBegin:    "begin",
	KindCommit:   "commit",
	KindRollback: "rollback",
	KindDDL:      "ddl",
	KindRedo:     "redo",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString is the inverse of Kind.String (export validation).
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return KindUnknown, false
}

// Attr is one typed span attribute. Values are int64 only — counts,
// byte sizes, tallies, nanosecond durations — never free-form strings.
type Attr struct {
	Key   string
	Value int64
}

// Span is one completed phase of a trace: a name, offsets relative to the
// trace start, and typed attributes.
type Span struct {
	Name  string
	Start time.Duration // offset from trace start
	Dur   time.Duration
	Attrs []Attr
}

// Trace is one completed statement trace.
type Trace struct {
	ID    ID
	Link  ID // originating trace for replica redo traces; zero otherwise
	Seq   uint64
	Kind  Kind
	Err   bool
	Start time.Time
	Wall  time.Duration
	Spans []Span
}

package trace

import "sort"

// Attribution answers "where did this statement's wall time go" for one
// exported trace: exclusive (self) time per span name, plus how much of the
// trace's wall clock the top-level spans cover at all. Both aetrace and the
// tpcc trace benchmark build their breakdown tables from it.
type Attribution struct {
	// ByName aggregates exclusive time per span name.
	ByName map[string]*SpanStat
	// AttributedNS is the wall time covered by top-level spans — the part
	// of the statement the trace explains.
	AttributedNS int64
	// WallNS is the trace's total wall time.
	WallNS int64
}

// SpanStat is one span name's aggregate.
type SpanStat struct {
	Name        string
	Count       int
	ExclusiveNS int64
}

// spanNode is a span plus its nested children, built by interval
// containment: a span contains another when the second lies entirely
// within the first's [start, start+dur) window.
type spanNode struct {
	span     *ExportSpan
	children []*spanNode
}

// buildForest nests a trace's spans into containment trees. Spans are
// recorded in start order by construction, but sorting is cheap insurance
// (and ties break longest-first so the outer span becomes the parent).
func buildForest(spans []ExportSpan) []*spanNode {
	nodes := make([]*spanNode, len(spans))
	for i := range spans {
		nodes[i] = &spanNode{span: &spans[i]}
	}
	sort.SliceStable(nodes, func(a, b int) bool {
		sa, sb := nodes[a].span, nodes[b].span
		if sa.StartNS != sb.StartNS {
			return sa.StartNS < sb.StartNS
		}
		return sa.DurNS > sb.DurNS
	})
	var roots []*spanNode
	var stack []*spanNode
	for _, n := range nodes {
		end := n.span.StartNS + n.span.DurNS
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if n.span.StartNS >= top.span.StartNS && end <= top.span.StartNS+top.span.DurNS {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			roots = append(roots, n)
		} else {
			top := stack[len(stack)-1]
			top.children = append(top.children, n)
		}
		stack = append(stack, n)
	}
	return roots
}

// exclusiveNS returns a span's self time: its duration minus the time
// covered by its direct children (so nested spans never double-count).
func exclusiveNS(n *spanNode) int64 {
	ex := n.span.DurNS
	for _, c := range n.children {
		ex -= c.span.DurNS
	}
	if ex < 0 {
		ex = 0
	}
	return ex
}

// Attribute computes the exclusive-time breakdown of one exported trace.
func Attribute(t *ExportTrace) *Attribution {
	a := &Attribution{ByName: make(map[string]*SpanStat), WallNS: t.WallNS}
	roots := buildForest(t.Spans)
	var walk func(n *spanNode)
	walk = func(n *spanNode) {
		st := a.ByName[n.span.Name]
		if st == nil {
			st = &SpanStat{Name: n.span.Name}
			a.ByName[n.span.Name] = st
		}
		st.Count++
		st.ExclusiveNS += exclusiveNS(n)
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range roots {
		a.AttributedNS += r.span.DurNS
		walk(r)
	}
	if a.AttributedNS > a.WallNS && a.WallNS > 0 {
		a.AttributedNS = a.WallNS
	}
	return a
}

// Sorted returns the per-name stats, largest exclusive time first.
func (a *Attribution) Sorted() []*SpanStat {
	out := make([]*SpanStat, 0, len(a.ByName))
	for _, st := range a.ByName {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ExclusiveNS != out[j].ExclusiveNS {
			return out[i].ExclusiveNS > out[j].ExclusiveNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Share is attributed wall time as a fraction in [0,1].
func (a *Attribution) Share() float64 {
	if a.WallNS <= 0 {
		return 0
	}
	return float64(a.AttributedNS) / float64(a.WallNS)
}

package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// Schema identifies the trace export JSON format.
const Schema = "alwaysencrypted/trace/v1"

// ExportDoc is the wire/file form of a batch of traces. Everything in it
// is timings (ns), counts, or closed-enum statement kinds; there is no
// field that could carry query text, parameters or cell plaintext.
type ExportDoc struct {
	Schema string        `json:"schema"`
	Traces []ExportTrace `json:"traces"`
}

// ExportTrace is one exported trace.
type ExportTrace struct {
	ID      string       `json:"id"`
	Link    string       `json:"link,omitempty"`
	Kind    string       `json:"kind"`
	Err     bool         `json:"err,omitempty"`
	StartNS int64        `json:"start_unix_ns"`
	WallNS  int64        `json:"wall_ns"`
	Spans   []ExportSpan `json:"spans"`
}

// ExportSpan is one exported span. Attrs is int64-valued by construction;
// encoding/json emits its keys sorted, keeping exports deterministic.
type ExportSpan struct {
	Name    string           `json:"name"`
	StartNS int64            `json:"start_ns"`
	DurNS   int64            `json:"dur_ns"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// Export converts completed traces (oldest first) to the v1 document.
func Export(traces []*Trace) ExportDoc {
	doc := ExportDoc{Schema: Schema, Traces: make([]ExportTrace, 0, len(traces))}
	for _, t := range traces {
		et := ExportTrace{
			ID:      t.ID.String(),
			Kind:    t.Kind.String(),
			Err:     t.Err,
			StartNS: t.Start.UnixNano(),
			WallNS:  t.Wall.Nanoseconds(),
			Spans:   make([]ExportSpan, 0, len(t.Spans)),
		}
		if !t.Link.IsZero() {
			et.Link = t.Link.String()
		}
		for _, sp := range t.Spans {
			es := ExportSpan{Name: sp.Name, StartNS: sp.Start.Nanoseconds(), DurNS: sp.Dur.Nanoseconds()}
			if len(sp.Attrs) > 0 {
				es.Attrs = make(map[string]int64, len(sp.Attrs))
				for _, at := range sp.Attrs {
					es.Attrs[at.Key] += at.Value
				}
			}
			et.Spans = append(et.Spans, es)
		}
		doc.Traces = append(doc.Traces, et)
	}
	return doc
}

// Decode parses and validates a v1 export document.
func Decode(b []byte) (*ExportDoc, error) {
	var doc ExportDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("trace: decode export: %w", err)
	}
	if err := ValidateExport(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// ValidateExport checks the structural contract of a v1 document: schema
// string, well-formed IDs, closed-enum kinds, named spans within the
// trace's wall time, and typed (int64) attributes — the last is enforced
// by the ExportSpan type itself, so a document with string attribute
// values fails to unmarshal before reaching this check.
func ValidateExport(doc *ExportDoc) error {
	if doc.Schema != Schema {
		return fmt.Errorf("trace: schema %q, want %q", doc.Schema, Schema)
	}
	for i := range doc.Traces {
		t := &doc.Traces[i]
		if _, err := ParseID(t.ID); err != nil {
			return fmt.Errorf("trace %d: bad id %q", i, t.ID)
		}
		if t.Link != "" {
			if _, err := ParseID(t.Link); err != nil {
				return fmt.Errorf("trace %d: bad link %q", i, t.Link)
			}
		}
		if _, ok := KindFromString(t.Kind); !ok {
			return fmt.Errorf("trace %d: unknown kind %q", i, t.Kind)
		}
		if t.WallNS < 0 {
			return fmt.Errorf("trace %d: negative wall", i)
		}
		for j := range t.Spans {
			sp := &t.Spans[j]
			if sp.Name == "" {
				return fmt.Errorf("trace %d span %d: empty name", i, j)
			}
			if sp.StartNS < 0 || sp.DurNS < 0 {
				return fmt.Errorf("trace %d span %q: negative offset", i, sp.Name)
			}
			if sp.StartNS > t.WallNS {
				return fmt.Errorf("trace %d span %q: starts after trace end", i, sp.Name)
			}
		}
	}
	return nil
}

// Handler serves the store's resident traces as a v1 document. Reads are
// non-destructive (Snapshot), so repeated fetches and a live waterfall
// viewer see consistent data; the ring's drop-oldest policy bounds memory.
func Handler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		traces := s.Snapshot()
		sort.Slice(traces, func(a, b int) bool { return traces[a].Seq < traces[b].Seq })
		doc := Export(traces)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

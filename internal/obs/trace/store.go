package trace

import (
	"sort"
	"sync/atomic"
)

// Store is a bounded lock-free ring buffer of completed traces. Add never
// blocks the request path: on overflow it overwrites (drops) the oldest
// trace and counts the drop. Readers drain concurrently with writers.
type Store struct {
	slots   []atomic.Pointer[Trace]
	head    atomic.Uint64
	seq     atomic.Uint64
	dropped atomic.Uint64
}

// NewStore builds a ring with the given capacity (minimum 1).
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Add publishes a completed trace, assigning its sequence number. On
// overflow the oldest resident trace is dropped; Add never blocks.
func (s *Store) Add(t *Trace) {
	t.Seq = s.seq.Add(1)
	i := (s.head.Add(1) - 1) % uint64(len(s.slots))
	if old := s.slots[i].Swap(t); old != nil {
		s.dropped.Add(1)
	}
}

// Drain removes and returns all resident traces, oldest first. It is safe
// to call concurrently with Add; a trace is returned by exactly one of
// the ring (later Drain/Snapshot) or this call.
func (s *Store) Drain() []*Trace {
	out := make([]*Trace, 0, len(s.slots))
	for i := range s.slots {
		if t := s.slots[i].Swap(nil); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Snapshot returns the resident traces, oldest first, without removing
// them.
func (s *Store) Snapshot() []*Trace {
	out := make([]*Trace, 0, len(s.slots))
	for i := range s.slots {
		if t := s.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Len reports the number of resident traces.
func (s *Store) Len() int {
	n := 0
	for i := range s.slots {
		if s.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Dropped reports how many traces were overwritten before being read.
func (s *Store) Dropped() uint64 { return s.dropped.Load() }

// Capacity reports the ring size.
func (s *Store) Capacity() int { return len(s.slots) }

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear, the HDR-histogram trick. Values in
// [0, 32) land in their own bucket; above that, each power-of-two octave is
// split into 32 linear sub-buckets, so relative error is bounded by ~3% at
// every scale — good enough to quote p50/p95/p99 latencies from nanosecond
// spin-waits up to multi-second transactions without per-sample allocation.
const (
	subBuckets     = 32 // linear buckets per octave (and the [0,32) range)
	subBucketBits  = 5
	histNumBuckets = (64-subBucketBits)*subBuckets + subBuckets // value range up to 2^63
)

// Histogram is a fixed-bucket latency/size histogram. Recording is a bounded
// handful of atomic adds — no locks, no allocation — so concurrent enclave
// workers can record without serializing and without losing samples.
//
// Values are int64 (nanoseconds for durations, plain magnitudes for sizes);
// negatives clamp to zero.
type Histogram struct {
	reg     *Registry // timing switch for ObserveSince/Start
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histNumBuckets]atomic.Uint64
}

func newHistogram(reg *Registry) *Histogram { return &Histogram{reg: reg} }

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	// Shift so the value fits in [32, 64): the top subBucketBits+1 bits are
	// the mantissa, the shift count is the octave.
	exp := bits.Len64(v) - (subBucketBits + 1)
	mant := v >> uint(exp) // in [32, 64)
	return (exp+1)*subBuckets + int(mant-subBuckets)
}

// bucketMid returns a representative (midpoint) value for a bucket.
func bucketMid(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets - 1
	mant := uint64(subBuckets + idx%subBuckets)
	lo := mant << uint(exp)
	hi := (mant+1)<<uint(exp) - 1
	return int64(lo + (hi-lo)/2)
}

// bucketHi returns the inclusive upper bound of a bucket.
func bucketHi(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets - 1
	mant := uint64(subBuckets + idx%subBuckets)
	return int64((mant+1)<<uint(exp) - 1)
}

// Observe records one value. Safe for concurrent use; a nil *Histogram is a
// no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.buckets[bucketIndex(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		old := h.max.Load()
		if u <= old || h.max.CompareAndSwap(old, u) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start in nanoseconds. A zero
// start (from a timing-disabled Registry.Now) is ignored.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Start returns the start time for a later ObserveSince, honouring the
// owning registry's timing switch.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return h.reg.Now()
}

// StartSpan opens a span on a pre-resolved histogram: no registry map
// lookup, just a clock read (skipped entirely when timing is disabled).
// This is the hot-path form of Registry.StartSpan; engine and enclave
// call sites cache the *Histogram at construction and span through it.
func (h *Histogram) StartSpan() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: h.reg.Now()}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Reset zeroes the histogram. Concurrent Observes may be partially lost
// across the reset; callers use it only at measurement-window boundaries.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Quantile estimates the q-th quantile (q in [0,1]) from the buckets.
// Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample (1-based, ceil).
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		if seen >= rank {
			// The bucket midpoint can overshoot the exact tracked maximum by
			// the bucket's width; clamp so quantiles never exceed Max.
			if m := int64(h.max.Load()); bucketMid(i) > m {
				return m
			}
			return bucketMid(i)
		}
	}
	return int64(h.max.Load())
}

// snapshot captures the summary statistics.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = int64(h.sum.Load())
	s.Max = int64(h.max.Load())
	if s.Count > 0 {
		s.Mean = s.Sum / int64(s.Count)
	}
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: bucketHi(i), Count: n})
		}
	}
	return s
}

// Snapshot returns the histogram's summary statistics.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

// HistogramSnapshot is the exported summary of a histogram: counts plus
// estimated percentiles and the occupied buckets. Values carry the unit
// the histogram was fed (nanoseconds for spans).
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Mean  int64  `json:"mean"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
	// Buckets lists the occupied buckets in ascending bound order — an
	// array, not a map, so the JSON encoding is deterministic and CI
	// artifact diffs stay stable.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one occupied histogram bucket: the inclusive upper bound
// (in the histogram's unit) and the sample count at or below it within
// the bucket's range.
type BucketCount struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// Package obs is the repo's observability layer: atomic counters and gauges,
// lock-cheap latency histograms, and lightweight spans behind a named
// registry. It exists because the paper's central performance claims (§4.6,
// Figures 8–9) are about where time goes — enclave boundary crossings, the
// submit-queue spin/sleep tradeoff, per-transaction TPC-C latency — and
// those can only be argued from measurements taken inside the system.
//
// Design constraints:
//
//   - stdlib only, race free: every record path is a handful of atomic
//     operations; no instrument ever takes a lock after construction. The
//     registry's own mutex guards only instrument creation and snapshots.
//   - trust-boundary safe: instruments carry counts, durations and sizes —
//     never key material or plaintext. The obsleak aelint analyzer enforces
//     this statically for the enclave-side packages.
//   - cheap when quiet: time-based instruments (histogram observation via
//     spans) can be disabled per registry; counters and gauges always count,
//     because compatibility shims (BufferPool.Stats, Enclave.Dump) read
//     through them.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named set of instruments. Instrument getters create on first
// use and return the same instance for the same name thereafter, so
// concurrent components share one series per name.
type Registry struct {
	name string

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram

	// timingOff disables time-based instruments (spans / Now): counters and
	// gauges still count. Used by the overhead benchmark to measure the cost
	// of timing itself.
	timingOff atomic.Bool
}

// New creates an empty registry.
func New(name string) *Registry {
	return &Registry{
		name:       name,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Default is the process-wide registry used by components that were not
// handed an explicit one.
var Default = New("default")

// Name returns the registry name.
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// SetTimingDisabled turns time-based instruments off (true) or on (false).
func (r *Registry) SetTimingDisabled(off bool) {
	if r != nil {
		r.timingOff.Store(off)
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time. It suits values
// that already have an authoritative live source (map sizes under a lock):
// the registry stays the single reporting path without duplicating state.
// The callback must be safe to invoke from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// GaugeValue evaluates the named gauge: a GaugeFunc if registered, otherwise
// the plain gauge value (0 if absent).
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	fn := r.gaugeFuncs[name]
	g := r.gauges[name]
	r.mu.RUnlock()
	if fn != nil {
		return fn()
	}
	if g != nil {
		return g.Value()
	}
	return 0
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(r)
		r.hists[name] = h
	}
	return h
}

// Now returns the current time, or the zero time when timing is disabled (or
// the registry is nil). Pair with Histogram.ObserveSince, which ignores zero
// starts, so a disabled registry pays neither the clock read nor the record.
func (r *Registry) Now() time.Time {
	if r == nil || r.timingOff.Load() {
		return time.Time{}
	}
	return time.Now()
}

// StartSpan opens a span recording into the named histogram on End. This
// form does a registry map lookup per call; hot paths cache the
// *Histogram at construction and use Histogram.StartSpan (or Registry.Now
// + Histogram.ObserveSince where recording is conditional).
func (r *Registry) StartSpan(name string) Span {
	if r == nil || r.timingOff.Load() {
		return Span{}
	}
	return Span{h: r.Histogram(name), start: time.Now()}
}

// ResetHistograms zeroes every histogram in the registry (counters and
// gauges keep counting). The TPC-C harness calls it at the start of a
// measurement window so reported percentiles cover exactly that window.
// Samples recorded concurrently with the reset may be partially lost; that
// is acceptable at a window boundary.
func (r *Registry) ResetHistograms() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, h := range r.hists {
		h.Reset()
	}
}

// Span measures one region of code into a histogram.
type Span struct {
	h     *Histogram
	start time.Time
}

// End records the elapsed time. A zero Span, or one opened while timing
// was disabled (zero start time), is a no-op.
func (s Span) End() {
	if s.h != nil && !s.start.IsZero() {
		s.h.Observe(time.Since(s.start).Nanoseconds())
	}
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op (disabled instrument).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"net/http"
	"sort"
)

// Snapshot is a point-in-time, JSON-stable view of every instrument in a
// registry. Maps are keyed by instrument name; histogram entries are summary
// statistics, never raw samples.
type Snapshot struct {
	Registry   string                       `json:"registry"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument. Counters and gauges are read
// atomically (each individually consistent; the set is not a global atomic
// cut, which monitoring does not need).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.Registry = r.name
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	// Evaluate outside the registry lock: gauge funcs may take other locks
	// (the enclave's session table read lock), and snapshots must never hold
	// the registry lock across foreign code.
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range gaugeFuncs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// CounterDelta returns after's counter minus before's (missing names count
// as zero) — the standard way to scope cumulative counters to a
// measurement window.
func CounterDelta(before, after Snapshot, name string) uint64 {
	return after.Counters[name] - before.Counters[name]
}

// ServeHTTP serves the snapshot as JSON — the expvar-style endpoint.
// Mount it wherever convenient: mux.Handle("/metrics", registry).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// PublishExpvar exposes the registry under the given name on the stdlib
// expvar page (/debug/vars), for processes that already serve it. Panics on
// duplicate names, as expvar.Publish does.
func PublishExpvar(name string, r *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// MarshalJSON renders the snapshot deterministically: instrument names are
// emitted in explicit sorted order (not left to map-iteration luck) and
// histogram buckets are ordered arrays, so byte-identical registries yield
// byte-identical JSON and CI artifact diffs stay stable.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	buf.WriteString(`"registry":`)
	if err := appendJSON(&buf, s.Registry); err != nil {
		return nil, err
	}
	sections := []struct {
		label string
		keys  []string
		value func(k string) any
	}{
		{"counters", sortedKeys(s.Counters), func(k string) any { return s.Counters[k] }},
		{"gauges", sortedKeys(s.Gauges), func(k string) any { return s.Gauges[k] }},
		{"histograms", sortedKeys(s.Histograms), func(k string) any { return s.Histograms[k] }},
	}
	for _, sec := range sections {
		buf.WriteString(`,"` + sec.label + `":{`)
		for i, k := range sec.keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := appendJSON(&buf, k); err != nil {
				return nil, err
			}
			buf.WriteByte(':')
			if err := appendJSON(&buf, sec.value(k)); err != nil {
				return nil, err
			}
		}
		buf.WriteByte('}')
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

func appendJSON(buf *bytes.Buffer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf.Write(b)
	return nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

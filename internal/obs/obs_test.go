package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New("t")
	c := r.Counter("c")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return same counter")
	}
	g := r.Gauge("g")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	r.GaugeFunc("gf", func() int64 { return 42 })
	if got := r.GaugeValue("gf"); got != 42 {
		t.Fatalf("gauge func = %d, want 42", got)
	}
	if got := r.GaugeValue("g"); got != 3 {
		t.Fatalf("gauge value = %d, want 3", got)
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Histogram("x").ObserveSince(time.Now())
	r.StartSpan("x").End()
	r.ResetHistograms()
	r.SetTimingDisabled(true)
	if !r.Now().IsZero() {
		t.Fatal("nil registry Now must be zero")
	}
	if v := r.GaugeValue("x"); v != 0 {
		t.Fatalf("nil registry gauge = %d", v)
	}
	_ = r.Snapshot()
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<62 + 12345} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx >= histNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		prev = idx
	}
	// Representative values stay within the bucket's relative error bound.
	for _, v := range []uint64{100, 10_000, 1_000_000, 123_456_789} {
		mid := bucketMid(bucketIndex(v))
		if relErr := math.Abs(float64(mid)-float64(v)) / float64(v); relErr > 0.04 {
			t.Fatalf("bucketMid(%d) = %d, rel err %.3f > 4%%", v, mid, relErr)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New("t")
	h := r.Histogram("lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 1000) // 1µs .. 1ms in µs steps
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want float64
	}{{0.50, 500_000}, {0.95, 950_000}, {0.99, 990_000}}
	for _, c := range checks {
		got := float64(h.Quantile(c.q))
		if math.Abs(got-c.want)/c.want > 0.05 {
			t.Errorf("q%.2f = %.0f, want within 5%% of %.0f", c.q, got, c.want)
		}
	}
	if h.Quantile(1.0) < h.Quantile(0.5) {
		t.Error("quantiles must be monotone")
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Sum() != 0 {
		t.Error("reset did not zero the histogram")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := New("t").Histogram("h")
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation: count=%d sum=%d", h.Count(), h.Sum())
	}
}

// TestHistogramConcurrentNoLoss drives many goroutines into one histogram
// and asserts no sample is lost — the property the enclave worker pool
// depends on. Run under -race via `go test -race ./internal/obs`.
func TestHistogramConcurrentNoLoss(t *testing.T) {
	r := New("t")
	h := r.Histogram("h")
	const workers = 16
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(seed + int64(i)%100)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("lost samples: count = %d, want %d", got, workers*perWorker)
	}
	var bucketTotal uint64
	for i := range h.buckets {
		bucketTotal += h.buckets[i].Load()
	}
	if bucketTotal != workers*perWorker {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*perWorker)
	}
}

func TestTimingDisabled(t *testing.T) {
	r := New("t")
	r.SetTimingDisabled(true)
	if !r.Now().IsZero() {
		t.Fatal("disabled registry must return zero Now")
	}
	h := r.Histogram("h")
	h.ObserveSince(r.Now())
	r.StartSpan("h").End()
	if h.Count() != 0 {
		t.Fatalf("disabled timing recorded %d samples", h.Count())
	}
	// Counters keep counting: shims (BufferPool.Stats, Enclave.Dump) rely on
	// them being correct regardless of the timing switch.
	r.Counter("c").Inc()
	if r.Counter("c").Value() != 1 {
		t.Fatal("counters must count while timing is disabled")
	}
	r.SetTimingDisabled(false)
	h.ObserveSince(r.Now())
	if h.Count() != 1 {
		t.Fatal("re-enabled timing must record")
	}
}

func TestSpan(t *testing.T) {
	r := New("t")
	sp := r.StartSpan("region")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	snap := r.Histogram("region").Snapshot()
	if snap.Count != 1 {
		t.Fatalf("span count = %d", snap.Count)
	}
	if snap.Max < int64(1*time.Millisecond) {
		t.Fatalf("span max = %dns, want >= 1ms", snap.Max)
	}
}

func TestSnapshotAndHTTP(t *testing.T) {
	r := New("snap")
	r.Counter("a.b").Add(7)
	r.Gauge("g").Set(-1)
	r.GaugeFunc("live", func() int64 { return 11 })
	r.Histogram("h").Observe(100)

	s := r.Snapshot()
	if s.Registry != "snap" || s.Counters["a.b"] != 7 || s.Gauges["g"] != -1 ||
		s.Gauges["live"] != 11 || s.Histograms["h"].Count != 1 {
		t.Fatalf("bad snapshot: %+v", s)
	}

	// Delta scoping.
	before := s
	r.Counter("a.b").Add(3)
	if d := CounterDelta(before, r.Snapshot(), "a.b"); d != 3 {
		t.Fatalf("delta = %d, want 3", d)
	}

	// JSON endpoint round-trips to the same values.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	var decoded Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("endpoint JSON: %v", err)
	}
	if decoded.Counters["a.b"] != 10 || decoded.Histograms["h"].P50 == 0 {
		t.Fatalf("endpoint snapshot: %+v", decoded)
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := New("t")
	var wg sync.WaitGroup
	counters := make([]*Counter, 32)
	for i := range counters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("same")
			c.Inc()
			counters[i] = c
		}(i)
	}
	wg.Wait()
	for _, c := range counters {
		if c != counters[0] {
			t.Fatal("concurrent get-or-create returned different instruments")
		}
	}
	if counters[0].Value() != 32 {
		t.Fatalf("count = %d", counters[0].Value())
	}
}

// BenchmarkObserve documents the per-sample record cost — the number that
// keeps total obs overhead within the ≤2% TPC-C budget.
func BenchmarkObserve(b *testing.B) {
	h := New("b").Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkObserveSince includes the two clock reads a span pays.
func BenchmarkObserveSince(b *testing.B) {
	r := New("b")
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(r.Now())
	}
}

package obs

import (
	"encoding/json"
	"testing"
)

// Golden test: a registry with fixed contents must marshal to exactly
// these bytes, every time. Names are emitted sorted and histogram buckets
// are ordered arrays, so CI artifact diffs only change when the data does.
func TestSnapshotJSONGolden(t *testing.T) {
	r := New("golden")
	// Insert in deliberately unsorted order.
	r.Counter("zeta").Add(3)
	r.Counter("alpha").Inc()
	r.Gauge("mid").Set(-7)
	r.Gauge("aaa").Set(12)
	h := r.Histogram("lat_ns")
	h.Observe(5)
	h.Observe(5)
	h.Observe(100)

	const want = `{"registry":"golden",` +
		`"counters":{"alpha":1,"zeta":3},` +
		`"gauges":{"aaa":12,"mid":-7},` +
		`"histograms":{"lat_ns":{"count":3,"sum":110,"mean":36,"max":100,` +
		`"p50":5,"p95":100,"p99":100,` +
		`"buckets":[{"le":5,"count":2},{"le":101,"count":1}]}}}`

	for i := 0; i < 20; i++ {
		got, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("iteration %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

// The snapshot must survive a JSON round trip (the bench harness and
// aetrace both consume it decoded).
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New("rt")
	r.Counter("c").Add(9)
	r.Histogram("h").Observe(42)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Registry != "rt" || back.Counters["c"] != 9 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	hs := back.Histograms["h"]
	if hs.Count != 1 || len(hs.Buckets) != 1 {
		t.Fatalf("histogram lost buckets: %+v", hs)
	}
}

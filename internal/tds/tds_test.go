package tds

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"alwaysencrypted/internal/engine"
	"alwaysencrypted/internal/sqltypes"
)

// startServer serves a plain engine on a loopback listener.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	eng := engine.New(engine.Config{})
	srv := NewServer(eng)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close(); srv.Close() })
	return srv, l.Addr().String()
}

func TestExecRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id int PRIMARY KEY, v varchar(10))", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t (id, v) VALUES (@i, @v)", map[string][]byte{
		"i": sqltypes.Int(1).Encode(), "v": sqltypes.Str("hello").Encode(),
	}); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Exec("SELECT v FROM t WHERE id = @i", map[string][]byte{"i": sqltypes.Int(1).Encode()})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sqltypes.Decode(rs.Rows[0][0])
	if v.S != "hello" {
		t.Fatalf("v = %v", v)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT broken syntax", nil)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v", err, err)
	}
	if !strings.Contains(se.Msg, "syntax") {
		t.Fatalf("msg = %q", se.Msg)
	}
	// The connection survives an error response.
	if _, err := c.Exec("CREATE TABLE ok (id int PRIMARY KEY)", nil); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestDescribeOverWire(t *testing.T) {
	srv, addr := startServer(t)
	sess := srv.Engine.NewSession()
	if _, err := sess.Execute("CREATE TABLE d (id int PRIMARY KEY, v int)", nil); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Describe("SELECT v FROM d WHERE id = @i", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Desc.Params) != 1 || resp.Desc.Params[0].Name != "i" {
		t.Fatalf("params = %+v", resp.Desc.Params)
	}
	if resp.Attestation != nil {
		t.Fatal("attestation returned for a plaintext query")
	}
}

func TestConcurrentConnections(t *testing.T) {
	srv, addr := startServer(t)
	sess := srv.Engine.NewSession()
	if _, err := sess.Execute("CREATE TABLE c (id int PRIMARY KEY, n int)", nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				id := int64(g*100 + i)
				if _, err := c.Exec("INSERT INTO c (id, n) VALUES (@i, @n)", map[string][]byte{
					"i": sqltypes.Int(id).Encode(), "n": sqltypes.Int(id).Encode(),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rs, err := sess.Execute("SELECT COUNT(*) FROM c", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sqltypes.Decode(rs.Rows[0][0])
	if v.I != 160 {
		t.Fatalf("count = %v", v)
	}
}

// TestTapObservesTraffic: the strong adversary's wire view.
func TestTapObservesTraffic(t *testing.T) {
	srv, addr := startServer(t)
	var mu sync.Mutex
	var seen []string
	srv.Tap = func(dir string, msg any) {
		mu.Lock()
		seen = append(seen, dir)
		mu.Unlock()
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Exec("CREATE TABLE tapped (id int PRIMARY KEY)", nil)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 || seen[0] != "c→s" || seen[1] != "s→c" {
		t.Fatalf("tap saw %v", seen)
	}
}

func TestPipeTransport(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := NewServer(eng)
	client, server := net.Pipe()
	go srv.ServeConn(server)
	c := NewConn(client)
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE p (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO p (id) VALUES (@i)", map[string][]byte{"i": sqltypes.Int(1).Encode()}); err != nil {
		t.Fatal(err)
	}
}

// Every response carries the server's log watermark when one is wired, and
// Ping fetches it in a bare round trip — the primitives LSN-bounded read
// routing is built on.
func TestLSNStampAndPing(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := NewServer(eng)
	var watermark atomic.Uint64
	watermark.Store(7)
	srv.LSN = watermark.Load // before Serve: handlers read it unsynchronized
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close(); srv.Close() })

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.LastLSN(); got != 0 {
		t.Fatalf("LastLSN before any round trip = %d, want 0", got)
	}
	if _, err := c.Exec("CREATE TABLE w (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}
	if got := c.LastLSN(); got != 7 {
		t.Fatalf("LastLSN after exec = %d, want the stamped watermark 7", got)
	}
	// Even an error response is stamped: the watermark tracks the server,
	// not statement success.
	watermark.Store(8)
	if _, err := c.Exec("SELECT broken syntax", nil); err == nil {
		t.Fatal("want server error")
	}
	if got := c.LastLSN(); got != 8 {
		t.Fatalf("LastLSN after error response = %d, want 8", got)
	}
	watermark.Store(9)
	lsn, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 9 || c.LastLSN() != 9 {
		t.Fatalf("Ping = %d (LastLSN %d), want 9", lsn, c.LastLSN())
	}
}

// A server with no LSN source (the pre-routing deployment shape) answers
// pings with a zero watermark and stamps nothing — wire-compatible in both
// directions.
func TestPingWithoutLSNSource(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lsn, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 0 || c.LastLSN() != 0 {
		t.Fatalf("Ping on LSN-less server = %d (LastLSN %d), want 0", lsn, c.LastLSN())
	}
}

// A result set bigger than MaxFrameSize must reach the client: the server
// streams the response across several frames instead of dropping the
// connection (the pre-framing behavior for big scans).
func TestLargeResultSetStreams(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE big (id int PRIMARY KEY, v varchar(8000))", nil); err != nil {
		t.Fatal(err)
	}
	val := strings.Repeat("v", 4000)
	rows := (MaxFrameSize / len(val)) + 64 // comfortably past one frame
	for i := 1; i <= rows; i++ {
		if _, err := c.Exec("INSERT INTO big (id, v) VALUES (@i, @v)", map[string][]byte{
			"i": sqltypes.Int(int64(i)).Encode(), "v": sqltypes.Str(val).Encode(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := c.Exec("SELECT id, v FROM big", nil)
	if err != nil {
		t.Fatalf("large SELECT: %v", err)
	}
	if len(rs.Rows) != rows {
		t.Fatalf("rows = %d, want %d", len(rs.Rows), rows)
	}
	v, _ := sqltypes.Decode(rs.Rows[0][1])
	if v.S != val {
		t.Fatal("large result payload corrupted")
	}
	// The connection stays healthy for the next round trip.
	if _, err := c.Exec("SELECT id FROM big WHERE id = @i",
		map[string][]byte{"i": sqltypes.Int(1).Encode()}); err != nil {
		t.Fatal(err)
	}
}

package tds

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Flat framing for bulk-insert row batches. gob handles the outer request,
// but a batch is tens of thousands of small byte slices, and reflecting
// over each one dominates the wire cost of bulk loading. EncodeCellRows
// packs the whole batch into one []byte that gob moves as a single slice:
//
//	u32 rowCount, then per row:
//	  u16 cellCount, then per cell:
//	    u32 length+1 (0 = absent/NULL cell), then the cell bytes.
//
// The +1 shift distinguishes an absent cell (nil, stored as 0) from an
// empty one (length 1 on the wire). Framing only — the cell bytes are the
// same wire encodings (ciphertext envelopes for encrypted columns) the
// nested form carried.

// ErrBadCellRows reports a malformed or truncated cell-rows payload.
var ErrBadCellRows = errors.New("tds: malformed bulk row payload")

// EncodeCellRows flattens a batch of rows into the wire framing above.
func EncodeCellRows(rows [][][]byte) []byte {
	size := 4
	for _, row := range rows {
		size += 2
		for _, cell := range row {
			size += 4 + len(cell)
		}
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rows)))
	for _, row := range rows {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(row)))
		for _, cell := range row {
			if cell == nil {
				buf = binary.BigEndian.AppendUint32(buf, 0)
				continue
			}
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(cell))+1)
			buf = append(buf, cell...)
		}
	}
	return buf
}

// DecodeCellRows parses the flat framing back into per-row cell slices.
// Cell byte slices alias the payload — callers must not retain the payload
// mutably. The payload must be exactly consumed; trailing bytes are an
// error.
func DecodeCellRows(payload []byte) ([][][]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: %d-byte payload", ErrBadCellRows, len(payload))
	}
	n := binary.BigEndian.Uint32(payload)
	off := 4
	rows := make([][][]byte, 0, n)
	for r := uint32(0); r < n; r++ {
		if off+2 > len(payload) {
			return nil, fmt.Errorf("%w: truncated at row %d header", ErrBadCellRows, r)
		}
		cells := int(binary.BigEndian.Uint16(payload[off:]))
		off += 2
		row := make([][]byte, cells)
		for c := 0; c < cells; c++ {
			if off+4 > len(payload) {
				return nil, fmt.Errorf("%w: truncated at row %d cell %d", ErrBadCellRows, r, c)
			}
			l := binary.BigEndian.Uint32(payload[off:])
			off += 4
			if l == 0 {
				continue // absent cell
			}
			end := off + int(l) - 1
			if end < off || end > len(payload) {
				return nil, fmt.Errorf("%w: row %d cell %d overruns payload", ErrBadCellRows, r, c)
			}
			row[c] = payload[off:end:end]
			off = end
		}
		rows = append(rows, row)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCellRows, len(payload)-off)
	}
	return rows, nil
}

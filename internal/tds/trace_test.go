package tds

import (
	"encoding/gob"
	"net"
	"strings"
	"testing"

	"alwaysencrypted/internal/engine"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
)

// legacyExecReq / legacyRequest mirror the pre-trace wire structs: gob
// matches struct fields by name (type names are irrelevant), so encoding
// these is exactly what an old client puts on the wire, and decoding into
// them is exactly what an old server does with a new client's frames.
type legacyExecReq struct {
	Query  string
	Params map[string][]byte
}

type legacyRequest struct {
	Describe   *DescribeReq
	Exec       *legacyExecReq
	InstallCEK *InstallCEKReq
	Authorize  *AuthorizeReq
}

// A traced statement must land in the server's ring under the ID the
// client minted.
func TestExecTraceCarriesClientID(t *testing.T) {
	tracer := trace.NewTracer(trace.Policy{SampleRate: 1})
	eng := engine.New(engine.Config{Tracer: tracer})
	srv := NewServer(eng)
	client, server := net.Pipe()
	go srv.ServeConn(server)
	c := NewConn(client)
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE tr (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}
	id := trace.NewID()
	if _, err := c.ExecTrace("INSERT INTO tr (id) VALUES (@i)",
		map[string][]byte{"i": sqltypes.Int(1).Encode()}, id); err != nil {
		t.Fatal(err)
	}
	for _, tr := range tracer.Store().Drain() {
		if tr.ID == id {
			if tr.Kind != trace.KindInsert {
				t.Fatalf("kind = %v, want insert", tr.Kind)
			}
			return
		}
	}
	t.Fatalf("no trace with client ID %s in the ring", id)
}

// Old client → new server: a request without the Trace field executes
// normally (the server mints an ID server-side).
func TestOldClientNewServer(t *testing.T) {
	tracer := trace.NewTracer(trace.Policy{SampleRate: 1})
	eng := engine.New(engine.Config{Tracer: tracer})
	srv := NewServer(eng)
	client, server := net.Pipe()
	go srv.ServeConn(server)
	defer client.Close()

	fr := NewFrameReader(client, 0)
	fr.SetMessageLimit(0)
	fw := NewFrameWriter(client, 0)
	enc := gob.NewEncoder(fw)
	dec := gob.NewDecoder(fr)
	send := func(req *legacyRequest) *Response {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := fr.BeginMessage(); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return &resp
	}

	if resp := send(&legacyRequest{Exec: &legacyExecReq{Query: "CREATE TABLE old (id int PRIMARY KEY)"}}); resp.Err != "" {
		t.Fatalf("legacy exec: %s", resp.Err)
	}
	resp := send(&legacyRequest{Exec: &legacyExecReq{
		Query:  "INSERT INTO old (id) VALUES (@i)",
		Params: map[string][]byte{"i": sqltypes.Int(7).Encode()},
	}})
	if resp.Err != "" {
		t.Fatalf("legacy insert: %s", resp.Err)
	}
	// The server still traced the statement, under a server-minted ID.
	var found bool
	for _, tr := range tracer.Store().Drain() {
		if tr.Kind == trace.KindInsert && !tr.ID.IsZero() {
			found = true
		}
	}
	if !found {
		t.Fatal("server did not mint a trace for the legacy client's statement")
	}
}

// New client → old server: a request carrying Trace decodes cleanly into
// the pre-trace struct, query and params intact — gob drops fields the
// receiver does not declare.
func TestNewClientOldServer(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	// "Old server" loop: decode into the legacy struct, echo a Response.
	go func() {
		fr := NewFrameReader(server, 0)
		fw := NewFrameWriter(server, 0)
		dec := gob.NewDecoder(fr)
		enc := gob.NewEncoder(fw)
		for {
			var req legacyRequest
			if err := fr.BeginMessage(); err != nil {
				return
			}
			if err := dec.Decode(&req); err != nil {
				enc.Encode(&Response{Err: "decode: " + err.Error()})
				fw.Flush()
				return
			}
			if req.Exec == nil || req.Exec.Query == "" || len(req.Exec.Params) != 1 {
				enc.Encode(&Response{Err: "legacy server saw a mangled request"})
				fw.Flush()
				continue
			}
			enc.Encode(&Response{Result: &engine.ResultSet{Affected: 1}})
			fw.Flush()
		}
	}()

	c := NewConn(client)
	rs, err := c.ExecTrace("INSERT INTO x (id) VALUES (@i)",
		map[string][]byte{"i": sqltypes.Int(1).Encode()}, trace.NewID())
	if err != nil {
		t.Fatalf("old server choked on traced request: %v", err)
	}
	if rs.Affected != 1 {
		t.Fatalf("affected = %d", rs.Affected)
	}
}

// An adversarial trace field is rejected without killing the session, and a
// frame-budget-busting one never reaches the wire at all.
func TestOversizedTraceRejected(t *testing.T) {
	eng := engine.New(engine.Config{Tracer: trace.NewTracer(trace.Policy{SampleRate: 1})})
	srv := NewServer(eng)
	client, server := net.Pipe()
	go srv.ServeConn(server)
	c := NewConn(client)
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE adv (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}

	// Wrong-length trace ID: the server answers with an error Response.
	resp, err := c.roundTrip(&Request{Exec: &ExecReq{
		Query: "INSERT INTO adv (id) VALUES (@i)",
		Params: map[string][]byte{
			"i": sqltypes.Int(1).Encode(),
		},
		Trace: make([]byte, 64),
	}})
	if err == nil || resp == nil || !strings.Contains(resp.Err, "bad trace context") {
		t.Fatalf("64-byte trace: resp=%+v err=%v", resp, err)
	}

	// The connection survives to run a clean statement.
	if _, err := c.Exec("INSERT INTO adv (id) VALUES (@i)",
		map[string][]byte{"i": sqltypes.Int(2).Encode()}); err != nil {
		t.Fatalf("connection dead after rejected trace: %v", err)
	}

	// A trace blob larger than the 4 MiB message budget fails locally at the
	// frame writer — it must not take down the server or hang the client.
	_, err = c.roundTrip(&Request{Exec: &ExecReq{
		Query: "INSERT INTO adv (id) VALUES (@i)",
		Params: map[string][]byte{
			"i": sqltypes.Int(3).Encode(),
		},
		Trace: make([]byte, MaxFrameSize+1024),
	}})
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
}

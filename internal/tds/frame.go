package tds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Frame layer: every gob message travels inside length-prefixed frames
// (u32 big-endian length, then payload). The length prefix is what lets an
// untrusted peer be bounded — a decoder fed straight from the socket would
// happily allocate whatever an attacker's stream announces, and a stalled
// peer would pin the handler goroutine forever. The same limits are reused
// by the replication protocol (internal/repl).
//
// The limits are asymmetric by direction. Requests (client→server,
// replica→primary) are capped at MaxFrameSize per message: the server never
// buffers more than that for an untrusted peer. Responses (server→client,
// primary→replica) may legitimately be large — a big SELECT, a batch of WAL
// records — so response writers stream one message across several
// MaxFrameSize frames and response readers disable the per-message budget
// while keeping the per-frame cap.
const (
	// MaxFrameSize bounds a single frame, and — for request directions — a
	// single protocol message.
	MaxFrameSize = 4 << 20

	// DefaultIdleTimeout is how long a server-side read waits for the next
	// frame before the connection is considered abandoned.
	DefaultIdleTimeout = 5 * time.Minute

	// DefaultWriteTimeout bounds writing one response to a peer that has
	// stopped draining its socket.
	DefaultWriteTimeout = 30 * time.Second
)

// ErrFrameTooLarge reports a frame (or message) exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("tds: frame exceeds maximum size")

// FrameReader adapts a connection into an io.Reader that transparently
// spans frame boundaries, enforcing MaxFrameSize per frame and an optional
// per-message byte budget. gob decoders are stateful across messages, so the
// decoder reads from one persistent FrameReader; call BeginMessage before
// each Decode to arm the budget and the idle deadline.
type FrameReader struct {
	conn      net.Conn
	br        *bufio.Reader
	remaining int // bytes left in the current frame
	budget    int // bytes left for the current message; <0 disables
	limit     int // per-message budget armed by BeginMessage; <=0 disables
	idle      time.Duration
}

// NewFrameReader wraps conn. idle == 0 disables read deadlines (client side,
// where a query may legitimately run long). The per-message budget defaults
// to MaxFrameSize; see SetMessageLimit.
func NewFrameReader(conn net.Conn, idle time.Duration) *FrameReader {
	return &FrameReader{conn: conn, br: bufio.NewReader(conn), budget: -1, limit: MaxFrameSize, idle: idle}
}

// SetMessageLimit changes the per-message byte budget armed by BeginMessage.
// n <= 0 removes the budget entirely (per-frame caps still apply): the mode
// used when reading responses from one's own upstream — a client reading
// result sets, a replica reading WAL batches — which may span many frames.
func (fr *FrameReader) SetMessageLimit(n int) { fr.limit = n }

// BeginMessage arms the byte budget for the next Decode and, when an idle
// timeout is configured, requires the whole message to arrive within it.
func (fr *FrameReader) BeginMessage() error {
	if fr.limit > 0 {
		fr.budget = fr.limit
	} else {
		fr.budget = -1
	}
	if fr.idle > 0 {
		return fr.conn.SetReadDeadline(time.Now().Add(fr.idle))
	}
	return nil
}

func (fr *FrameReader) Read(p []byte) (int, error) {
	if fr.remaining == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > MaxFrameSize {
			return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
		}
		fr.remaining = int(n)
	}
	// A message spread over several frames may not exceed the budget either.
	if fr.budget == 0 {
		return 0, fmt.Errorf("%w: message exceeds %d bytes", ErrFrameTooLarge, fr.limit)
	}
	if fr.budget > 0 && len(p) > fr.budget {
		p = p[:fr.budget]
	}
	if len(p) > fr.remaining {
		p = p[:fr.remaining]
	}
	n, err := fr.br.Read(p)
	fr.remaining -= n
	if fr.budget > 0 {
		fr.budget -= n
	}
	return n, err
}

// FrameWriter buffers one message and emits it as frames. In the default
// (request) mode a message must fit one frame: exceeding MaxFrameSize fails
// the write, discards the partial message and poisons the writer so later
// writes fail fast instead of flushing a half-encoded gob message that would
// desync the peer's stream. In streaming (response) mode — SetStreaming —
// an oversized message is emitted as several full frames plus a final
// partial one, so large result sets and WAL batches are not size-capped.
type FrameWriter struct {
	conn    net.Conn
	buf     []byte
	timeout time.Duration
	stream  bool
	err     error // sticky: set on overflow or transport failure
}

// NewFrameWriter wraps conn. timeout == 0 disables write deadlines.
func NewFrameWriter(conn net.Conn, timeout time.Duration) *FrameWriter {
	return &FrameWriter{conn: conn, timeout: timeout}
}

// SetStreaming switches the writer into multi-frame message mode (used for
// the response direction, whose reader runs without a message budget).
func (fw *FrameWriter) SetStreaming(on bool) { fw.stream = on }

func (fw *FrameWriter) Write(p []byte) (int, error) {
	if fw.err != nil {
		return 0, fw.err
	}
	if !fw.stream {
		if len(fw.buf)+len(p) > MaxFrameSize {
			// Drop the partial message: a later Flush must never send half a
			// gob message. The encoder's state is unknowable from here, so the
			// writer is poisoned rather than left looking usable.
			fw.buf = fw.buf[:0]
			fw.err = ErrFrameTooLarge
			return 0, fw.err
		}
		fw.buf = append(fw.buf, p...)
		return len(p), nil
	}
	total := len(p)
	for len(fw.buf)+len(p) > MaxFrameSize {
		n := MaxFrameSize - len(fw.buf)
		fw.buf = append(fw.buf, p[:n]...)
		if err := fw.emit(); err != nil {
			return 0, err
		}
		p = p[n:]
	}
	fw.buf = append(fw.buf, p...)
	return total, nil
}

// emit sends the buffered bytes as one frame.
func (fw *FrameWriter) emit() error {
	if fw.timeout > 0 {
		if err := fw.conn.SetWriteDeadline(time.Now().Add(fw.timeout)); err != nil {
			fw.buf = fw.buf[:0]
			fw.err = err
			return err
		}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(fw.buf)))
	if _, err := fw.conn.Write(hdr[:]); err != nil {
		fw.buf = fw.buf[:0]
		fw.err = err
		return err
	}
	_, err := fw.conn.Write(fw.buf)
	fw.buf = fw.buf[:0]
	if err != nil {
		fw.err = err
	}
	return err
}

// Flush frames and sends the rest of the buffered message.
func (fw *FrameWriter) Flush() error {
	if fw.err != nil {
		return fw.err
	}
	if len(fw.buf) == 0 {
		return nil
	}
	return fw.emit()
}

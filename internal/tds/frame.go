package tds

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Frame layer: every gob message travels inside one length-prefixed frame
// (u32 big-endian length, then payload). The length prefix is what lets an
// untrusted peer be bounded — a decoder fed straight from the socket would
// happily allocate whatever an attacker's stream announces, and a stalled
// peer would pin the handler goroutine forever. The same limits are reused
// by the replication protocol (internal/repl).
const (
	// MaxFrameSize bounds a single frame and, because writers emit one frame
	// per message, a single protocol message.
	MaxFrameSize = 4 << 20

	// DefaultIdleTimeout is how long a server-side read waits for the next
	// frame before the connection is considered abandoned.
	DefaultIdleTimeout = 5 * time.Minute

	// DefaultWriteTimeout bounds writing one response to a peer that has
	// stopped draining its socket.
	DefaultWriteTimeout = 30 * time.Second
)

// ErrFrameTooLarge reports a frame (or message) exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("tds: frame exceeds maximum size")

// FrameReader adapts a connection into an io.Reader that transparently
// spans frame boundaries, enforcing MaxFrameSize per frame and an optional
// per-message byte budget. gob decoders are stateful across messages, so the
// decoder reads from one persistent FrameReader; call BeginMessage before
// each Decode to arm the budget and the idle deadline.
type FrameReader struct {
	conn      net.Conn
	br        *bufio.Reader
	remaining int // bytes left in the current frame
	budget    int // bytes left for the current message; <0 disables
	idle      time.Duration
}

// NewFrameReader wraps conn. idle == 0 disables read deadlines (client side,
// where a query may legitimately run long).
func NewFrameReader(conn net.Conn, idle time.Duration) *FrameReader {
	return &FrameReader{conn: conn, br: bufio.NewReader(conn), budget: -1, idle: idle}
}

// BeginMessage arms the byte budget for the next Decode and, when an idle
// timeout is configured, requires the whole message to arrive within it.
func (fr *FrameReader) BeginMessage() error {
	fr.budget = MaxFrameSize
	if fr.idle > 0 {
		return fr.conn.SetReadDeadline(time.Now().Add(fr.idle))
	}
	return nil
}

func (fr *FrameReader) Read(p []byte) (int, error) {
	if fr.remaining == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > MaxFrameSize {
			return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
		}
		fr.remaining = int(n)
	}
	// A message spread over several frames may not exceed the budget either.
	if fr.budget == 0 {
		return 0, fmt.Errorf("%w: message exceeds %d bytes", ErrFrameTooLarge, MaxFrameSize)
	}
	if fr.budget > 0 && len(p) > fr.budget {
		p = p[:fr.budget]
	}
	if len(p) > fr.remaining {
		p = p[:fr.remaining]
	}
	n, err := fr.br.Read(p)
	fr.remaining -= n
	if fr.budget > 0 {
		fr.budget -= n
	}
	return n, err
}

// FrameWriter buffers one message and emits it as a single frame on Flush.
type FrameWriter struct {
	conn    net.Conn
	buf     []byte
	timeout time.Duration
}

// NewFrameWriter wraps conn. timeout == 0 disables write deadlines.
func NewFrameWriter(conn net.Conn, timeout time.Duration) *FrameWriter {
	return &FrameWriter{conn: conn, timeout: timeout}
}

func (fw *FrameWriter) Write(p []byte) (int, error) {
	if len(fw.buf)+len(p) > MaxFrameSize {
		return 0, ErrFrameTooLarge
	}
	fw.buf = append(fw.buf, p...)
	return len(p), nil
}

// Flush frames and sends the buffered message.
func (fw *FrameWriter) Flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	if fw.timeout > 0 {
		if err := fw.conn.SetWriteDeadline(time.Now().Add(fw.timeout)); err != nil {
			return err
		}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(fw.buf)))
	if _, err := fw.conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := fw.conn.Write(fw.buf)
	fw.buf = fw.buf[:0]
	return err
}

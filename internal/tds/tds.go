// Package tds implements the client↔server wire protocol of the
// reproduction — the stand-in for the TDS stream of Figure 3. It is a
// length-framed, gob-encoded request/response protocol carrying:
//
//   - sp_describe_parameter_encryption calls, optionally with the client's
//     DH public key (which triggers attestation, §4.2);
//   - sealed CEK envelopes and DDL authorizations bound for the enclave,
//     relayed by the untrusted server ("man in the middle", §3);
//   - parameterized statement executions with encrypted parameters, and
//     result sets with the key metadata needed for client-side decryption.
//
// The server exposes a Tap so a strong adversary (or the leakage harness)
// can observe everything on the wire — which is exactly the paper's threat
// model: the adversary sees all external and internal communication.
package tds

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/engine"
	"alwaysencrypted/internal/obs/trace"
)

// Request is the union of client→server messages; exactly one field is set.
type Request struct {
	Describe   *DescribeReq
	Exec       *ExecReq
	BulkInsert *BulkInsertReq
	InstallCEK *InstallCEKReq
	Authorize  *AuthorizeReq
	Ping       *PingReq
}

// PingReq is a liveness/progress probe: the response carries nothing but the
// server's LSN watermark (Response.LSN). Connection pools use it both as a
// health check on idle connections and as the replica-staleness heartbeat
// that read routing decides on. Old servers decode it as an empty request
// and answer with an error, which a pool treats as "unhealthy" — safe in
// both directions.
type PingReq struct{}

// DescribeReq asks for sp_describe_parameter_encryption output. ClientDHPub
// is set when the client wants attestation folded in (it has no cached
// shared secret yet).
type DescribeReq struct {
	Query       string
	ClientDHPub []byte
}

// ExecReq executes a parameterized statement. Parameter values are wire
// encodings: ciphertext for encrypted parameters. Trace is an optional
// 16-byte client-minted trace ID: old clients omit it (gob drops absent
// fields, the server mints an ID server-side), and old servers ignore it —
// the field is wire-compatible in both directions.
type ExecReq struct {
	Query  string
	Params map[string][]byte
	Trace  []byte
}

// BulkInsertReq carries a multi-row insert batch — the bulkcopy fast path.
// Rows is the EncodeCellRows flat framing of the batch: wire encodings cell
// by cell in Cols order — ciphertext envelopes for encrypted columns (the
// client encrypted them before sending, exactly like Exec parameters),
// canonical value encodings for plaintext ones. A flat payload instead of
// nested slices keeps gob from reflecting over every cell, which at bulk
// rates is the dominant wire cost. The server never sees plaintext for
// encrypted cells; the batch only changes how many rows share one round
// trip and one set of log records. Old servers reject the unknown request
// as empty; old clients never send it.
type BulkInsertReq struct {
	Table string
	Cols  []string
	Rows  []byte
	Trace []byte
}

// InstallCEKReq relays a sealed CEK envelope to the enclave.
type InstallCEKReq struct {
	Name   string
	Nonce  uint64
	Sealed []byte
}

// AuthorizeReq relays a sealed DDL-authorization hash to the enclave.
type AuthorizeReq struct {
	Nonce  uint64
	Sealed []byte
}

// Response is the union of server→client messages.
type Response struct {
	Err      string
	Describe *DescribeResp
	Result   *engine.ResultSet
	// LSN is the server's log watermark at response time: on a primary the
	// highest assigned LSN, on a read replica the highest *applied* LSN (a
	// mirrored-but-unapplied record is not yet visible to reads, so the
	// replica must not advertise it). Zero means the server does not report
	// one — old servers omit the field entirely (gob drops zero fields), so
	// the protocol stays wire-compatible in both directions. Clients use it
	// for LSN-bounded replica read routing: a write's response LSN is the
	// client's read-your-writes watermark, and a replica is eligible for a
	// read only once its advertised LSN has caught up to that watermark.
	LSN uint64
}

// DescribeResp carries the describe output plus attestation when requested.
type DescribeResp struct {
	Desc        engine.DescribeResult
	Attestation *attestation.Info
	EnclaveSID  uint64
}

// Tap observes protocol traffic. dir is "c→s" or "s→c".
type Tap func(dir string, msg any)

// Server serves engine sessions over a listener: one goroutine and one
// engine session per connection, as in TDS.
type Server struct {
	Engine *engine.Engine
	Tap    Tap

	// LSN, when non-nil, reports the server's log watermark; every response
	// (including ping responses) carries its value. Set it before Serve:
	// handler goroutines read it concurrently. A primary reports the highest
	// assigned LSN; a replica reports the highest applied LSN.
	LSN func() uint64

	// IdleTimeout bounds the wait for the next request frame; WriteTimeout
	// bounds writing one response. Zero means the package defaults — a
	// stalled or oversized peer can no longer pin a handler goroutine.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// NewServer wraps an engine.
func NewServer(e *engine.Engine) *Server {
	return &Server{Engine: e, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close tears down all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.mu.Unlock()
}

// ServeConn handles a single already-established connection (e.g. one side
// of net.Pipe); it blocks until the connection closes.
func (s *Server) ServeConn(conn net.Conn) { s.handle(conn) }

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sess := s.Engine.NewSession()
	idle, write := s.IdleTimeout, s.WriteTimeout
	if idle == 0 {
		idle = DefaultIdleTimeout
	}
	if write == 0 {
		write = DefaultWriteTimeout
	}
	fr := NewFrameReader(conn, idle)
	fw := NewFrameWriter(conn, write)
	// Requests from the untrusted client stay capped at MaxFrameSize;
	// responses (result sets can be big) stream across frames.
	fw.SetStreaming(true)
	dec := gob.NewDecoder(fr)
	enc := gob.NewEncoder(fw)
	for {
		var req Request
		if err := fr.BeginMessage(); err != nil {
			return
		}
		if err := dec.Decode(&req); err != nil {
			if sess.InTxn() {
				// Connection dropped mid-transaction: roll back, as a real
				// server would on session death.
				sess.Rollback()
			}
			return
		}
		if s.Tap != nil {
			s.Tap("c→s", &req)
		}
		resp := s.dispatch(sess, &req)
		if s.LSN != nil {
			resp.LSN = s.LSN()
		}
		if s.Tap != nil {
			s.Tap("s→c", resp)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := fw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(sess *engine.Session, req *Request) *Response {
	switch {
	case req.Describe != nil:
		desc, info, sid, err := sess.DescribeWithAttestation(req.Describe.Query, req.Describe.ClientDHPub)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Describe: &DescribeResp{Desc: *desc, Attestation: info, EnclaveSID: sid}}
	case req.Exec != nil:
		id, err := trace.IDFromBytes(req.Exec.Trace)
		if err != nil {
			return &Response{Err: fmt.Sprintf("tds: bad trace context: %v", err)}
		}
		sess.SetTraceID(id)
		rs, err := sess.Execute(req.Exec.Query, engine.Params(req.Exec.Params))
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Result: rs}
	case req.BulkInsert != nil:
		id, err := trace.IDFromBytes(req.BulkInsert.Trace)
		if err != nil {
			return &Response{Err: fmt.Sprintf("tds: bad trace context: %v", err)}
		}
		sess.SetTraceID(id)
		rows, err := DecodeCellRows(req.BulkInsert.Rows)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		n, err := sess.BulkInsert(req.BulkInsert.Table, req.BulkInsert.Cols, rows)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Result: &engine.ResultSet{Affected: n}}
	case req.InstallCEK != nil:
		if err := sess.InstallCEK(req.InstallCEK.Name, req.InstallCEK.Nonce, req.InstallCEK.Sealed); err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{}
	case req.Authorize != nil:
		if err := sess.AuthorizeStatement(req.Authorize.Nonce, req.Authorize.Sealed); err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{}
	case req.Ping != nil:
		// Nothing to do: handle stamps the LSN watermark on the way out.
		return &Response{}
	default:
		return &Response{Err: "tds: empty request"}
	}
}

// Conn is the client end of the protocol: a thin RPC layer with no AE
// logic (that lives in the driver package). Not safe for concurrent use.
type Conn struct {
	conn net.Conn
	fr   *FrameReader
	fw   *FrameWriter
	dec  *gob.Decoder
	enc  *gob.Encoder
	// lastLSN is the watermark from the most recent response (0 until the
	// server reports one). Error responses update it too: the server stamps
	// its watermark on every answer it produces.
	lastLSN uint64
}

// Dial connects to a server address.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tds: dial: %w", err)
	}
	return NewConn(c), nil
}

// NewConn wraps an established transport (TCP or net.Pipe). The client
// enforces per-frame limits but no deadlines (a query may legitimately run
// long) and no per-message cap on responses (a large result set arrives as
// several frames). Requests it sends must fit the server's MaxFrameSize
// message budget; an oversized one fails locally without touching the wire.
func NewConn(c net.Conn) *Conn {
	fr := NewFrameReader(c, 0)
	fr.SetMessageLimit(0)
	fw := NewFrameWriter(c, 0)
	return &Conn{conn: c, fr: fr, fw: fw, dec: gob.NewDecoder(fr), enc: gob.NewEncoder(fw)}
}

// Close shuts the connection down.
func (c *Conn) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Conn) roundTrip(req *Request) (*Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("tds: send: %w", err)
	}
	if err := c.fw.Flush(); err != nil {
		return nil, fmt.Errorf("tds: flush: %w", err)
	}
	var resp Response
	if err := c.fr.BeginMessage(); err != nil {
		return nil, fmt.Errorf("tds: recv: %w", err)
	}
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("tds: connection closed")
		}
		return nil, fmt.Errorf("tds: recv: %w", err)
	}
	if resp.LSN > 0 {
		c.lastLSN = resp.LSN
	}
	if resp.Err != "" {
		return &resp, &ServerError{Msg: resp.Err}
	}
	return &resp, nil
}

// LastLSN returns the server's log watermark from the most recent response
// on this connection (0 if the server never reported one). After an Exec
// that committed a write, this is the write's read-your-writes watermark.
func (c *Conn) LastLSN() uint64 { return c.lastLSN }

// Ping round-trips a liveness probe and returns the server's current LSN
// watermark. Pools use it to health-check idle connections and to refresh
// replica staleness knowledge.
func (c *Conn) Ping() (uint64, error) {
	resp, err := c.roundTrip(&Request{Ping: &PingReq{}})
	if err != nil {
		return 0, err
	}
	return resp.LSN, nil
}

// ServerError is an error reported by the server.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return e.Msg }

// Describe invokes sp_describe_parameter_encryption.
func (c *Conn) Describe(query string, clientDHPub []byte) (*DescribeResp, error) {
	resp, err := c.roundTrip(&Request{Describe: &DescribeReq{Query: query, ClientDHPub: clientDHPub}})
	if err != nil {
		return nil, err
	}
	return resp.Describe, nil
}

// Exec executes a parameterized statement.
func (c *Conn) Exec(query string, params map[string][]byte) (*engine.ResultSet, error) {
	return c.ExecTrace(query, params, trace.ID{})
}

// ExecTrace is Exec with an explicit trace context. A zero ID sends no
// trace field (old-server compatible); a non-zero ID rides the request so
// the server's trace of this statement carries the client-minted ID.
func (c *Conn) ExecTrace(query string, params map[string][]byte, id trace.ID) (*engine.ResultSet, error) {
	req := &ExecReq{Query: query, Params: params}
	if !id.IsZero() {
		req.Trace = id[:]
	}
	resp, err := c.roundTrip(&Request{Exec: req})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// BulkInsert sends one multi-row insert batch. Cells must already be wire
// encodings (ciphertext for encrypted columns). Returns rows inserted.
func (c *Conn) BulkInsert(table string, cols []string, rows [][][]byte, id trace.ID) (int, error) {
	req := &BulkInsertReq{Table: table, Cols: cols, Rows: EncodeCellRows(rows)}
	if !id.IsZero() {
		req.Trace = id[:]
	}
	resp, err := c.roundTrip(&Request{BulkInsert: req})
	if err != nil {
		return 0, err
	}
	return resp.Result.Affected, nil
}

// InstallCEK ships a sealed CEK to the enclave via the server.
func (c *Conn) InstallCEK(name string, nonce uint64, sealed []byte) error {
	_, err := c.roundTrip(&Request{InstallCEK: &InstallCEKReq{Name: name, Nonce: nonce, Sealed: sealed}})
	return err
}

// Authorize ships a sealed DDL authorization to the enclave via the server.
func (c *Conn) Authorize(nonce uint64, sealed []byte) error {
	_, err := c.roundTrip(&Request{Authorize: &AuthorizeReq{Nonce: nonce, Sealed: sealed}})
	return err
}

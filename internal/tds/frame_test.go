package tds

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func framePair(t *testing.T, idle time.Duration) (client net.Conn, fr *FrameReader) {
	t.Helper()
	c, s := net.Pipe()
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, NewFrameReader(s, idle)
}

func TestFrameRoundTrip(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	fw := NewFrameWriter(c, 0)
	fr := NewFrameReader(s, 0)

	msg := bytes.Repeat([]byte("payload."), 100)
	go func() {
		fw.Write(msg)
		fw.Flush()
	}()
	if err := fr.BeginMessage(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(fr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted in framing")
	}
}

func TestFrameRejectsOversizedHeader(t *testing.T) {
	client, fr := framePair(t, 0)
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
		client.Write(hdr[:])
	}()
	fr.BeginMessage()
	if _, err := fr.Read(make([]byte, 16)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame header err = %v", err)
	}
}

func TestFrameRejectsZeroLengthHeader(t *testing.T) {
	client, fr := framePair(t, 0)
	go client.Write([]byte{0, 0, 0, 0})
	fr.BeginMessage()
	if _, err := fr.Read(make([]byte, 16)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("zero-length frame err = %v", err)
	}
}

// A message split across many small frames must still respect the per-message
// budget: an attacker cannot dodge MaxFrameSize by chunking.
func TestFrameBudgetSpansFrames(t *testing.T) {
	client, fr := framePair(t, 0)
	go func() {
		chunk := make([]byte, 1<<20) // 1 MiB per frame, 4 MiB limit
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(chunk)))
		for i := 0; i < 6; i++ {
			if _, err := client.Write(hdr[:]); err != nil {
				return
			}
			if _, err := client.Write(chunk); err != nil {
				return
			}
		}
	}()
	fr.BeginMessage()
	n, err := io.Copy(io.Discard, io.LimitReader(fr, 8<<20))
	_ = n
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("budget overflow err = %v (after %d bytes)", err, n)
	}
}

func TestFrameWriterRefusesOversizedMessage(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	fw := NewFrameWriter(c, 0)
	if _, err := fw.Write(make([]byte, MaxFrameSize)); err != nil {
		t.Fatalf("max-size write: %v", err)
	}
	if _, err := fw.Write([]byte{1}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("overflow write err = %v", err)
	}
}

// An overflow discards the partial message and poisons the writer: nothing of
// the half-encoded gob message may ever reach the wire (it would desync the
// peer's decoder), and later writes fail fast instead of looking usable.
func TestFrameWriterPoisonedAfterOverflow(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	fw := NewFrameWriter(c, 0)
	if _, err := fw.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(make([]byte, MaxFrameSize)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("overflow not reported")
	}
	if _, err := fw.Write([]byte{1}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("write after overflow did not fail fast")
	}
	if err := fw.Flush(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("flush after overflow did not fail fast")
	}
	// The buffered 64-byte prefix must not have been flushed.
	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if n, err := s.Read(make([]byte, 1)); err == nil {
		t.Fatalf("poisoned writer leaked %d bytes to the wire", n)
	}
}

// Streaming mode (the response direction) carries one message across several
// frames; a reader with the message budget disabled reassembles it intact.
func TestFrameStreamingSpansFrames(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	fw := NewFrameWriter(c, 0)
	fw.SetStreaming(true)
	fr := NewFrameReader(s, 0)
	fr.SetMessageLimit(0)

	msg := make([]byte, (2*MaxFrameSize)+12345) // 3 frames
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	errCh := make(chan error, 1)
	go func() {
		if _, err := fw.Write(msg); err != nil {
			errCh <- err
			return
		}
		errCh <- fw.Flush()
	}()
	if err := fr.BeginMessage(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(fr, got); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("multi-frame message corrupted")
	}
}

func TestFrameIdleTimeout(t *testing.T) {
	_, fr := framePair(t, 30*time.Millisecond)
	if err := fr.BeginMessage(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := fr.Read(make([]byte, 16))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("idle read err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("idle timeout took far too long")
	}
}

func TestFrameWriteTimeout(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	fw := NewFrameWriter(c, 30*time.Millisecond)
	// Nobody reads from s: the pipe write must give up at the deadline.
	fw.Write(make([]byte, 64))
	err := fw.Flush()
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("stalled flush err = %v", err)
	}
}

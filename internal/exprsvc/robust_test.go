package exprsvc

import (
	"math/rand"
	"testing"

	"alwaysencrypted/internal/sqltypes"
)

// TestDeserializeNeverPanics throws random byte strings and random
// mutations of valid programs at the deserializer: a malicious host must
// not be able to crash the enclave with a crafted serialized expression.
func TestDeserializeNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Deserialize panicked: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(11))
	// Pure garbage.
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		_, _ = Deserialize(b)
	}
	// Mutations of a valid serialized program.
	info := Plain(sqltypes.KindInt)
	prog, err := Compile("fuzz", Cmp{Op: CmpLT,
		L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}},
		[]EncInfo{info, info})
	if err != nil {
		t.Fatal(err)
	}
	ser := prog.Serialize()
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), ser...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		p, err := Deserialize(mut)
		if err != nil || p == nil {
			continue
		}
		// If it deserialized, evaluating it must not panic either (the
		// enclave additionally wraps evaluation in a fault handler, but the
		// stack machine itself should fail cleanly).
		func() {
			defer func() { recover() }()
			ev := NewEnclaveEvaluator(p, nil, false)
			_, _ = ev.Eval([][]byte{sqltypes.Int(1).Encode(), sqltypes.Int(2).Encode()})
		}()
	}
}

// TestEvalRejectsWrongInputCount: slot-count mismatches error cleanly.
func TestEvalRejectsWrongInputCount(t *testing.T) {
	info := Plain(sqltypes.KindInt)
	prog, _ := Compile("n", Cmp{Op: CmpEQ,
		L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}},
		[]EncInfo{info, info})
	ev, _ := NewEvaluator(prog, nil, nil)
	if _, err := ev.Eval([][]byte{sqltypes.Int(1).Encode()}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := ev.Eval(nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

// BenchmarkExprRegistration measures the §3 registration path (serialize +
// deserialize + handle) that the plan cache amortizes away: registering on
// every call would add this to each expression evaluation.
func BenchmarkExprRegistration(b *testing.B) {
	cek := "K"
	info := EncInfo{Kind: sqltypes.KindInt, Enc: sqltypes.EncType{
		Scheme: sqltypes.SchemeRandomized, CEKName: cek, EnclaveEnabled: true}}
	prog, err := Compile("bench", Cmp{Op: CmpEQ,
		L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}},
		[]EncInfo{info, info})
	if err != nil {
		b.Fatal(err)
	}
	sub := prog.Subs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Deserialize(sub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgramSerialize measures the compile-time serialization cost.
func BenchmarkProgramSerialize(b *testing.B) {
	info := Plain(sqltypes.KindString)
	prog, _ := Compile("s", And{
		L: Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}},
		R: LikeExpr{Input: SlotRef{Slot: 0, Info: info}, Pattern: Const{Val: sqltypes.Str("A%")}},
	}, []EncInfo{info, info})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prog.Serialize()
	}
}

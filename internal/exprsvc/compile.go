package exprsvc

import (
	"errors"
	"fmt"

	"alwaysencrypted/internal/sqltypes"
)

// Compilation errors. These surface binder bugs or unsupported operations —
// by the time expressions reach the compiler, encryption type deduction has
// already validated the query, so most of these are defense in depth.
var (
	ErrNotParameterized = errors.New("exprsvc: literals cannot be compared with encrypted columns; use parameters (§2.5)")
	ErrUnsupportedOp    = errors.New("exprsvc: operation not supported on this encryption type")
)

// Compile translates an expression tree into a host stack program with a
// boolean output slot. Comparisons and LIKE predicates over enclave-enabled
// randomized slots are split into enclave sub-programs referenced by TMEval
// instructions (Figure 7); DET equality compiles to raw VARBINARY equality
// on the host (§4.4); plaintext expressions evaluate entirely on the host.
func Compile(name string, e Expr, inputs []EncInfo) (*Program, error) {
	c := &compiler{prog: &Program{
		Name:    name,
		Inputs:  inputs,
		Outputs: []EncInfo{Plain(sqltypes.KindBool)},
	}}
	if err := c.emit(e); err != nil {
		return nil, err
	}
	c.prog.Code = append(c.prog.Code, Instr{Op: OpSetData, Arg: 0})
	return c.prog, nil
}

type compiler struct {
	prog *Program
}

func (c *compiler) add(in Instr) { c.prog.Code = append(c.prog.Code, in) }

func (c *compiler) emit(e Expr) error {
	switch n := e.(type) {
	case SlotRef:
		if !n.Info.Enc.IsPlaintext() {
			return fmt.Errorf("exprsvc: encrypted slot %s used outside a comparison", n.Name)
		}
		c.add(Instr{Op: OpGetData, Arg: n.Slot})
		return nil
	case Const:
		c.add(Instr{Op: OpConst, Val: n.Val})
		return nil
	case And:
		if err := c.emit(n.L); err != nil {
			return err
		}
		if err := c.emit(n.R); err != nil {
			return err
		}
		c.add(Instr{Op: OpAnd})
		return nil
	case Or:
		if err := c.emit(n.L); err != nil {
			return err
		}
		if err := c.emit(n.R); err != nil {
			return err
		}
		c.add(Instr{Op: OpOr})
		return nil
	case Not:
		if err := c.emit(n.X); err != nil {
			return err
		}
		c.add(Instr{Op: OpNot})
		return nil
	case IsNull:
		ref, ok := n.X.(SlotRef)
		if !ok {
			return errors.New("exprsvc: IS NULL requires a column or parameter")
		}
		// NULLs are stored unencrypted (as absent values), so the host can
		// test them on the raw slot without keys.
		c.add(Instr{Op: OpGetRaw, Arg: ref.Slot})
		c.add(Instr{Op: OpIsNull})
		return nil
	case Cmp:
		return c.emitComparison(n.Op, n.L, n.R, false)
	case LikeExpr:
		return c.emitComparison(CmpEQ, n.Input, n.Pattern, true)
	default:
		return fmt.Errorf("exprsvc: unknown expression node %T", e)
	}
}

// operandInfo extracts the slot/constant shape of a comparison operand.
func operandInfo(e Expr) (ref SlotRef, isRef bool, cv sqltypes.Value, err error) {
	switch n := e.(type) {
	case SlotRef:
		return n, true, sqltypes.Value{}, nil
	case Const:
		return SlotRef{}, false, n.Val, nil
	default:
		return SlotRef{}, false, sqltypes.Value{},
			errors.New("exprsvc: comparison operands must be columns, parameters or literals")
	}
}

func (c *compiler) emitComparison(op CompOp, l, r Expr, isLike bool) error {
	lr, lIsRef, lc, err := operandInfo(l)
	if err != nil {
		return err
	}
	rr, rIsRef, rc, err := operandInfo(r)
	if err != nil {
		return err
	}

	lEnc, rEnc := sqltypes.PlaintextType, sqltypes.PlaintextType
	if lIsRef {
		lEnc = lr.Info.Enc
	}
	if rIsRef {
		rEnc = rr.Info.Enc
	}

	// Fully plaintext: evaluate on the host.
	if lEnc.IsPlaintext() && rEnc.IsPlaintext() {
		c.emitOperand(lr, lIsRef, lc, OpGetData)
		c.emitOperand(rr, rIsRef, rc, OpGetData)
		if isLike {
			c.add(Instr{Op: OpLike})
		} else {
			c.add(Instr{Op: OpComp, Arg: int(op)})
		}
		return nil
	}

	// Literals can never meet encrypted operands: the driver encrypts
	// parameters, not the query text (§2.5 transparency requires
	// parameterized queries).
	if !lIsRef || !rIsRef {
		return ErrNotParameterized
	}
	if lEnc != rEnc {
		return fmt.Errorf("%w: %s vs %s", sqltypes.ErrTypeConflict, lEnc, rEnc)
	}

	switch lEnc.Scheme {
	case sqltypes.SchemeDeterministic:
		// Equality over DET ciphertext is plain VARBINARY equality on the
		// host — no TMEval, no enclave (§4.4).
		if isLike || (op != CmpEQ && op != CmpNE) {
			return fmt.Errorf("%w: %s over DETERMINISTIC", ErrUnsupportedOp, op)
		}
		c.add(Instr{Op: OpGetRaw, Arg: lr.Slot})
		c.add(Instr{Op: OpGetRaw, Arg: rr.Slot})
		c.add(Instr{Op: OpComp, Arg: int(op)})
		return nil
	case sqltypes.SchemeRandomized:
		if !lEnc.EnclaveEnabled {
			return fmt.Errorf("%w: scalar operations on RANDOMIZED require an enclave-enabled key", ErrUnsupportedOp)
		}
		return c.emitEnclaveComparison(op, lr, rr, isLike)
	default:
		return fmt.Errorf("%w: scheme %v", ErrUnsupportedOp, lEnc.Scheme)
	}
}

func (c *compiler) emitOperand(ref SlotRef, isRef bool, cv sqltypes.Value, op Opcode) {
	if isRef {
		c.add(Instr{Op: op, Arg: ref.Slot})
	} else {
		c.add(Instr{Op: OpConst, Val: cv})
	}
}

// emitEnclaveComparison builds the enclave sub-program of Figure 7: GetData
// for both operands (decrypting at ingress), the comparison, and SetData of
// the boolean result at egress — serialized and stored inline in the host
// program, with a TMEval stub on the host side.
func (c *compiler) emitEnclaveComparison(op CompOp, l, r SlotRef, isLike bool) error {
	sub := &Program{
		Name:    c.prog.Name + "/enclave",
		Inputs:  []EncInfo{l.Info, r.Info},
		Outputs: []EncInfo{Plain(sqltypes.KindBool)},
	}
	sub.Code = append(sub.Code, Instr{Op: OpGetData, Arg: 0}, Instr{Op: OpGetData, Arg: 1})
	if isLike {
		sub.Code = append(sub.Code, Instr{Op: OpLike})
	} else {
		sub.Code = append(sub.Code, Instr{Op: OpComp, Arg: int(op)})
	}
	sub.Code = append(sub.Code, Instr{Op: OpSetData, Arg: 0})

	idx := len(c.prog.Subs)
	c.prog.Subs = append(c.prog.Subs, sub.Serialize())
	c.add(Instr{Op: OpTMEval, Arg: idx, InSlots: []int{l.Slot, r.Slot}})
	return nil
}

// Package exprsvc is the expression services (ES) module of §4.4: the single
// place in the engine where computations on column-granularity data values
// happen. Expressions are compiled from tree form into stack programs (the
// CEsComp analog); a comparison that touches an enclave-enabled randomized
// column is split out into a serialized sub-program shipped to the enclave
// behind a TMEval instruction, exactly as Figure 7 illustrates. All
// decryption and encryption happens at the GetData/SetData ingress and
// egress instructions, leaving the stack evaluation oblivious to encryption.
package exprsvc

import (
	"fmt"

	"alwaysencrypted/internal/sqltypes"
)

// EncInfo annotates an input or output slot with its plaintext kind and
// encryption type. It is the per-slot "type of data" annotation of §4.4.1.
type EncInfo struct {
	Kind sqltypes.Kind
	Enc  sqltypes.EncType
}

// Plain builds the EncInfo of an unencrypted slot.
func Plain(kind sqltypes.Kind) EncInfo {
	return EncInfo{Kind: kind, Enc: sqltypes.PlaintextType}
}

// CompOp enumerates comparison operators.
type CompOp uint8

const (
	CmpEQ CompOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CompOp) String() string {
	switch o {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	default:
		return fmt.Sprintf("CompOp(%d)", uint8(o))
	}
}

// OpClass maps a comparison operator to its lattice operation class.
func (o CompOp) OpClass() sqltypes.OpClass {
	if o == CmpEQ || o == CmpNE {
		return sqltypes.OpEquality
	}
	return sqltypes.OpRange
}

// apply evaluates the operator over a three-way comparison result.
func (o CompOp) apply(c int) bool {
	switch o {
	case CmpEQ:
		return c == 0
	case CmpNE:
		return c != 0
	case CmpLT:
		return c < 0
	case CmpLE:
		return c <= 0
	case CmpGT:
		return c > 0
	default:
		return c >= 0
	}
}

// Expr is a scalar expression tree node (the CScaOp tree of Figure 7).
type Expr interface{ exprNode() }

// SlotRef reads input slot Slot — a column value or an already-encrypted
// query parameter. Info describes how the slot bytes are encoded.
type SlotRef struct {
	Slot int
	Info EncInfo
	Name string // for error messages
}

// Const is a plaintext literal embedded in the query text.
type Const struct{ Val sqltypes.Value }

// Cmp is a binary comparison.
type Cmp struct {
	Op   CompOp
	L, R Expr
}

// LikeExpr matches Input against Pattern (both string-typed).
type LikeExpr struct {
	Input   Expr
	Pattern Expr
}

// And, Or, Not are boolean connectives; IsNull tests slot NULLness.
type And struct{ L, R Expr }
type Or struct{ L, R Expr }
type Not struct{ X Expr }
type IsNull struct{ X Expr }

func (SlotRef) exprNode()  {}
func (Const) exprNode()    {}
func (Cmp) exprNode()      {}
func (LikeExpr) exprNode() {}
func (And) exprNode()      {}
func (Or) exprNode()       {}
func (Not) exprNode()      {}
func (IsNull) exprNode()   {}

package exprsvc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"alwaysencrypted/internal/sqltypes"
)

// Opcode enumerates stack machine instructions. GetData/SetData move data on
// and off the stack and are the only points where decryption and encryption
// happen (§4.4.1); TMEval invokes an enclave computation and exists only in
// host programs (§4.4).
type Opcode uint8

const (
	OpGetData Opcode = iota // push input slot Arg, decrypting per its EncInfo
	OpGetRaw                // push input slot Arg as raw VARBINARY (DET equality path)
	OpConst                 // push the constant Val
	OpComp                  // pop b, a; push a OP b (Cmp operator in Arg)
	OpLike                  // pop pattern, s; push s LIKE pattern
	OpAnd                   // pop b, a; push a AND b
	OpOr                    // pop b, a; push a OR b
	OpNot                   // pop a; push NOT a
	OpIsNull                // pop a; push a IS NULL
	OpSetData               // pop a; write to output slot Arg, encrypting per its EncInfo
	OpTMEval                // host only: evaluate enclave sub-program Arg on slots InSlots
)

// opcodeNames indexes Opcode; String feeds per-opcode instrument names.
var opcodeNames = [...]string{
	OpGetData: "get_data", OpGetRaw: "get_raw", OpConst: "const",
	OpComp: "comp", OpLike: "like", OpAnd: "and", OpOr: "or", OpNot: "not",
	OpIsNull: "is_null", OpSetData: "set_data", OpTMEval: "tm_eval",
}

// String returns the opcode's stable lower-case name.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return "unknown"
}

// Instr is one stack machine instruction.
type Instr struct {
	Op      Opcode
	Arg     int            // slot index, comparison op, or sub-program index
	Val     sqltypes.Value // for OpConst
	InSlots []int          // for OpTMEval: host slots forwarded to the enclave
}

// Program is the compiled stack program — the analog of CEsComp. Inputs and
// Outputs describe the slot encodings; Subs holds serialized enclave
// sub-programs stored inline as byte streams, implementing the deep-copy
// semantics of §4.4: the enclave reconstructs its own copy so the host
// cannot tamper with a shared object during evaluation.
type Program struct {
	Name    string
	Inputs  []EncInfo
	Outputs []EncInfo
	Code    []Instr
	Subs    [][]byte
}

// Errors from program (de)serialization and validation.
var (
	ErrBadProgram = errors.New("exprsvc: malformed serialized program")
)

const programMagic = 0xE5C0

// Serialize encodes the program into a self-contained byte stream.
func (p *Program) Serialize() []byte {
	var buf bytes.Buffer
	w16 := func(v int) { binary.Write(&buf, binary.BigEndian, uint16(v)) }
	w32 := func(v int) { binary.Write(&buf, binary.BigEndian, uint32(v)) }
	wBytes := func(b []byte) { w32(len(b)); buf.Write(b) }
	wEnc := func(e EncInfo) {
		buf.WriteByte(byte(e.Kind))
		buf.WriteByte(byte(e.Enc.Scheme))
		flag := byte(0)
		if e.Enc.EnclaveEnabled {
			flag = 1
		}
		buf.WriteByte(flag)
		wBytes([]byte(e.Enc.CEKName))
	}

	w16(programMagic)
	wBytes([]byte(p.Name))
	w16(len(p.Inputs))
	for _, e := range p.Inputs {
		wEnc(e)
	}
	w16(len(p.Outputs))
	for _, e := range p.Outputs {
		wEnc(e)
	}
	w16(len(p.Code))
	for _, in := range p.Code {
		buf.WriteByte(byte(in.Op))
		w32(in.Arg)
		wBytes(in.Val.Encode())
		w16(len(in.InSlots))
		for _, s := range in.InSlots {
			w32(s)
		}
	}
	w16(len(p.Subs))
	for _, s := range p.Subs {
		wBytes(s)
	}
	return buf.Bytes()
}

// Deserialize reconstructs a Program from a byte stream produced by
// Serialize. The enclave uses this to rebuild its own private copy of the
// expression object.
func Deserialize(b []byte) (*Program, error) {
	r := &reader{b: b}
	if r.u16() != programMagic {
		return nil, ErrBadProgram
	}
	p := &Program{Name: string(r.bytes())}
	p.Inputs = r.encInfos()
	p.Outputs = r.encInfos()
	n := r.u16()
	if r.err != nil || n > 1<<14 {
		return nil, ErrBadProgram
	}
	p.Code = make([]Instr, n)
	for i := range p.Code {
		in := &p.Code[i]
		in.Op = Opcode(r.u8())
		in.Arg = int(r.u32())
		vb := r.bytes()
		if len(vb) > 0 {
			v, err := sqltypes.Decode(vb)
			if err != nil {
				return nil, fmt.Errorf("%w: const: %v", ErrBadProgram, err)
			}
			in.Val = v
		}
		m := r.u16()
		if r.err != nil || m > 1<<10 {
			return nil, ErrBadProgram
		}
		if m > 0 {
			in.InSlots = make([]int, m)
			for j := range in.InSlots {
				in.InSlots[j] = int(r.u32())
			}
		}
	}
	ns := r.u16()
	if r.err != nil || ns > 1<<10 {
		return nil, ErrBadProgram
	}
	for i := 0; i < int(ns); i++ {
		s := r.bytes()
		cp := make([]byte, len(s))
		copy(cp, s)
		p.Subs = append(p.Subs, cp)
	}
	if r.err != nil || len(r.b) != 0 {
		return nil, ErrBadProgram
	}
	return p, nil
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = ErrBadProgram
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || uint32(len(r.b)) < n {
		r.err = ErrBadProgram
		return nil
	}
	return r.take(int(n))
}

func (r *reader) encInfos() []EncInfo {
	n := r.u16()
	if r.err != nil || n > 1<<12 {
		r.err = ErrBadProgram
		return nil
	}
	out := make([]EncInfo, n)
	for i := range out {
		out[i].Kind = sqltypes.Kind(r.u8())
		out[i].Enc.Scheme = sqltypes.EncScheme(r.u8())
		out[i].Enc.EnclaveEnabled = r.u8() != 0
		out[i].Enc.CEKName = string(r.bytes())
	}
	return out
}

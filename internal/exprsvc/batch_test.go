package exprsvc

import (
	"errors"
	"fmt"
	"testing"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
)

// cmpProg compiles `slot0 <op> slot1` over an enclave-enabled RND column.
func cmpProg(t *testing.T, op CompOp, info EncInfo) *Program {
	t.Helper()
	expr := Cmp{Op: op, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
	prog, err := Compile("batch", expr, []EncInfo{info, info})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestEvalBoolBatchMatchesSingle: the batched path must return exactly the
// per-row results of row-at-a-time evaluation, while crossing the enclave
// boundary once per TMEval instruction instead of once per row.
func TestEvalBoolBatchMatchesSingle(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	prog := cmpProg(t, CmpGT, info)

	encl := &fakeEnclave{keys: ring}
	ev, err := NewEvaluator(prog, nil, encl)
	if err != nil {
		t.Fatal(err)
	}

	threshold := encryptVal(t, key, sqltypes.Int(50), aecrypto.Randomized)
	var rows [][][]byte
	var want []bool
	for i := int64(0); i < 20; i++ {
		v := i * 10
		rows = append(rows, [][]byte{encryptVal(t, key, sqltypes.Int(v), aecrypto.Randomized), threshold})
		want = append(want, v > 50)
	}
	// A NULL column cell: comparisons against NULL are false (§4.4.1 NULL
	// semantics), never an error.
	rows = append(rows, [][]byte{nil, threshold})
	want = append(want, false)

	// Reference: row-at-a-time on a fresh evaluator.
	refEv, err := NewEvaluator(prog, nil, &fakeEnclave{keys: ring})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		got, err := refEv.EvalBool(row)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("reference row %d = %v, want %v", i, got, want[i])
		}
	}

	encl.calls = 0
	matches, rowErrs, err := ev.EvalBoolBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if encl.calls != 1 {
		t.Fatalf("batch of %d rows made %d enclave calls, want 1", len(rows), encl.calls)
	}
	for i := range rows {
		if rowErrs[i] != nil {
			t.Fatalf("row %d: unexpected error %v", i, rowErrs[i])
		}
		if matches[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, matches[i], want[i])
		}
	}
}

// TestEvalBatchPerRowErrors: a corrupt ciphertext fails only its own row;
// neighbors in the same batch still evaluate, and so do rows in a later
// batch through the same evaluator.
func TestEvalBatchPerRowErrors(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	prog := cmpProg(t, CmpEQ, info)

	encl := &fakeEnclave{keys: ring}
	ev, err := NewEvaluator(prog, nil, encl)
	if err != nil {
		t.Fatal(err)
	}
	param := encryptVal(t, key, sqltypes.Int(7), aecrypto.Randomized)
	good := encryptVal(t, key, sqltypes.Int(7), aecrypto.Randomized)
	bad := []byte("not a ciphertext envelope at all")

	matches, rowErrs, err := ev.EvalBoolBatch([][][]byte{
		{good, param},
		{bad, param},
		{good, param},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rowErrs[0] != nil || rowErrs[2] != nil {
		t.Fatalf("good rows errored: %v / %v", rowErrs[0], rowErrs[2])
	}
	if rowErrs[1] == nil {
		t.Fatal("corrupt row did not error")
	}
	if !matches[0] || !matches[2] {
		t.Fatalf("good rows = %v/%v, want true/true", matches[0], matches[2])
	}
	if matches[1] {
		t.Fatal("errored row must not match")
	}

	// The evaluator stays usable after a batch with row errors.
	got, err := ev.EvalBool([][]byte{good, param})
	if err != nil || !got {
		t.Fatalf("follow-up single eval = %v, err %v", got, err)
	}
}

// TestEvalBatchWidthMismatch: a row with the wrong slot count fails that row
// with ErrStack, exactly as Eval would, without sinking the batch.
func TestEvalBatchWidthMismatch(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	prog := cmpProg(t, CmpEQ, info)

	ev, err := NewEvaluator(prog, nil, &fakeEnclave{keys: ring})
	if err != nil {
		t.Fatal(err)
	}
	a := encryptVal(t, key, sqltypes.Int(1), aecrypto.Randomized)
	matches, rowErrs, err := ev.EvalBoolBatch([][][]byte{
		{a, a},
		{a}, // too narrow
	})
	if err != nil {
		t.Fatal(err)
	}
	if rowErrs[0] != nil {
		t.Fatalf("well-formed row errored: %v", rowErrs[0])
	}
	if !errors.Is(rowErrs[1], ErrStack) {
		t.Fatalf("narrow row error = %v, want ErrStack", rowErrs[1])
	}
	if !matches[0] {
		t.Fatal("well-formed row should match")
	}
}

// TestEvalBatchPlaintextProgramNoEnclave: fully host-side programs batch
// without any enclave caller at all.
func TestEvalBatchPlaintextProgramNoEnclave(t *testing.T) {
	inputs := []EncInfo{Plain(sqltypes.KindInt), Plain(sqltypes.KindInt)}
	expr := Cmp{Op: CmpLT, L: SlotRef{Slot: 0, Info: inputs[0]}, R: SlotRef{Slot: 1, Info: inputs[1]}}
	prog, err := Compile("lt", expr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	matches, rowErrs, err := ev.EvalBoolBatch([][][]byte{
		{sqltypes.Int(1).Encode(), sqltypes.Int(2).Encode()},
		{sqltypes.Int(3).Encode(), sqltypes.Int(2).Encode()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range rowErrs {
		if e != nil {
			t.Fatalf("row %d: %v", i, e)
		}
	}
	if !matches[0] || matches[1] {
		t.Fatalf("matches = %v, want [true false]", matches)
	}
}

// TestQuickEvalBatchAgreesWithSingle: property check — for random operator /
// operand mixes the batch result equals the single-row result, including
// NULLs, across every comparison operator.
func TestQuickEvalBatchAgreesWithSingle(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	for op := 0; op < 6; op++ {
		prog := cmpProg(t, CompOp(op), info)
		batchEv, err := NewEvaluator(prog, nil, &fakeEnclave{keys: ring})
		if err != nil {
			t.Fatal(err)
		}
		singleEv, err := NewEvaluator(prog, nil, &fakeEnclave{keys: ring})
		if err != nil {
			t.Fatal(err)
		}
		var rows [][][]byte
		for a := int64(-2); a <= 2; a++ {
			for b := int64(-2); b <= 2; b++ {
				rows = append(rows, [][]byte{
					encryptVal(t, key, sqltypes.Int(a), aecrypto.Randomized),
					encryptVal(t, key, sqltypes.Int(b), aecrypto.Randomized),
				})
			}
			rows = append(rows, [][]byte{encryptVal(t, key, sqltypes.Int(a), aecrypto.Randomized), nil})
		}
		matches, rowErrs, err := batchEv.EvalBoolBatch(rows)
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			single, serr := singleEv.EvalBool(row)
			if (serr == nil) != (rowErrs[i] == nil) {
				t.Fatalf("op %d row %d: single err %v, batch err %v", op, i, serr, rowErrs[i])
			}
			if serr == nil && single != matches[i] {
				t.Fatalf("op %d row %d: single %v, batch %v", op, i, single, matches[i])
			}
		}
	}
}

// failingBatchEnclave returns a call-level error from EvalExpressionBatch —
// the whole batch must fail, not individual rows.
type failingBatchEnclave struct{ fakeEnclave }

func (f *failingBatchEnclave) EvalExpressionBatch(uint64, [][][]byte) ([][][]byte, []error, error) {
	return nil, nil, fmt.Errorf("enclave gone")
}

func TestEvalBatchCallLevelError(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	prog := cmpProg(t, CmpEQ, info)
	encl := &failingBatchEnclave{fakeEnclave{keys: ring}}
	ev, err := NewEvaluator(prog, nil, encl)
	if err != nil {
		t.Fatal(err)
	}
	a := encryptVal(t, key, sqltypes.Int(1), aecrypto.Randomized)
	_, _, err = ev.EvalBoolBatch([][][]byte{{a, a}})
	if err == nil {
		t.Fatal("call-level enclave failure must fail the batch")
	}
}

package exprsvc

import (
	"errors"
	"fmt"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
)

// KeyRing resolves CEK names to derived cell keys. Only trusted components
// (the enclave, the client driver) implement a KeyRing over real key
// material; host-side evaluation runs with a nil KeyRing and therefore can
// never decrypt.
type KeyRing interface {
	CellKey(name string) (*aecrypto.CellKey, error)
}

// EnclaveCaller abstracts the host→enclave invocation used by TMEval. The
// expression is registered once and subsequently invoked by handle,
// matching the registration pattern of §3.
type EnclaveCaller interface {
	RegisterExpression(serialized []byte) (uint64, error)
	EvalExpression(handle uint64, inputs [][]byte) ([][]byte, error)
}

// Evaluation errors.
var (
	ErrNoKeys            = errors.New("exprsvc: evaluation requires keys that are not available in this security boundary")
	ErrSecurityViolation = errors.New("exprsvc: security check failed: operands with different encryption provenance cannot be compared")
	ErrEncryptDenied     = errors.New("exprsvc: program attempted encryption without authorization")
	ErrStack             = errors.New("exprsvc: stack machine error")
)

// entry is a stack cell: the value plus its encryption provenance label. The
// label travels with decrypted values so the enclave can enforce that, for
// instance, a value decrypted under one CEK is never compared against a
// plaintext constant or a value under another CEK (§4.4.1 security checks).
type entry struct {
	v     sqltypes.Value
	label sqltypes.EncType
}

// Evaluator is the executable form of a Program — the CEsExec analog. It is
// not safe for concurrent use; query operators own one evaluator each.
type Evaluator struct {
	prog    *Program
	keys    KeyRing
	encl    EnclaveCaller
	handles []uint64
	// allowEncrypt gates SetData into encrypted outputs; only the enclave's
	// authorized type-conversion path enables it (§3.2 encryption oracle).
	allowEncrypt bool
	stack        []entry
	outs         [][]byte
	// cellKeys caches resolved keys per CEK name for the evaluator lifetime.
	cellKeys map[string]*aecrypto.CellKey
}

// NewEvaluator prepares a program for execution. If the program contains
// enclave sub-programs they are registered with the caller now, so the hot
// Eval path only passes handles.
func NewEvaluator(prog *Program, keys KeyRing, encl EnclaveCaller) (*Evaluator, error) {
	ev := &Evaluator{prog: prog, keys: keys, encl: encl}
	if len(prog.Subs) > 0 {
		if encl == nil {
			return nil, errors.New("exprsvc: program requires an enclave but no caller provided")
		}
		ev.handles = make([]uint64, len(prog.Subs))
		for i, sub := range prog.Subs {
			h, err := encl.RegisterExpression(sub)
			if err != nil {
				return nil, fmt.Errorf("exprsvc: registering enclave expression: %w", err)
			}
			ev.handles[i] = h
		}
	}
	return ev, nil
}

// NewEnclaveEvaluator prepares a deserialized sub-program for execution
// inside the enclave, with access to session keys and (when authorized)
// encryption of outputs.
func NewEnclaveEvaluator(prog *Program, keys KeyRing, allowEncrypt bool) *Evaluator {
	return &Evaluator{prog: prog, keys: keys, allowEncrypt: allowEncrypt}
}

// Program returns the underlying compiled program.
func (ev *Evaluator) Program() *Program { return ev.prog }

func (ev *Evaluator) cellKey(name string) (*aecrypto.CellKey, error) {
	if ev.keys == nil {
		return nil, ErrNoKeys
	}
	if k, ok := ev.cellKeys[name]; ok {
		return k, nil
	}
	k, err := ev.keys.CellKey(name)
	if err != nil {
		return nil, err
	}
	if ev.cellKeys == nil {
		ev.cellKeys = make(map[string]*aecrypto.CellKey)
	}
	ev.cellKeys[name] = k
	return k, nil
}

func (ev *Evaluator) push(e entry) { ev.stack = append(ev.stack, e) }

func (ev *Evaluator) pop() (entry, error) {
	if len(ev.stack) == 0 {
		return entry{}, ErrStack
	}
	e := ev.stack[len(ev.stack)-1]
	ev.stack = ev.stack[:len(ev.stack)-1]
	return e, nil
}

// Eval runs the program over the input slots and returns the output slots.
// Input slot bytes are ciphertext envelopes for encrypted slots and canonical
// value encodings for plaintext slots; an empty slot is SQL NULL. The
// returned slices are valid until the next Eval call.
func (ev *Evaluator) Eval(inputs [][]byte) ([][]byte, error) {
	if len(inputs) != len(ev.prog.Inputs) {
		return nil, fmt.Errorf("%w: %d inputs for %d slots", ErrStack, len(inputs), len(ev.prog.Inputs))
	}
	ev.stack = ev.stack[:0]
	if cap(ev.outs) < len(ev.prog.Outputs) {
		ev.outs = make([][]byte, len(ev.prog.Outputs))
	}
	ev.outs = ev.outs[:len(ev.prog.Outputs)]
	for i := range ev.outs {
		ev.outs[i] = nil
	}

	for pc := range ev.prog.Code {
		in := &ev.prog.Code[pc]
		switch in.Op {
		case OpGetData:
			if err := ev.getData(in.Arg, inputs); err != nil {
				return nil, err
			}
		case OpGetRaw:
			if err := ev.getRaw(in.Arg, inputs); err != nil {
				return nil, err
			}
		case OpConst:
			ev.push(entry{v: in.Val, label: sqltypes.PlaintextType})
		case OpComp:
			if err := ev.compare(CompOp(in.Arg)); err != nil {
				return nil, err
			}
		case OpLike:
			if err := ev.like(); err != nil {
				return nil, err
			}
		case OpAnd, OpOr:
			b, err := ev.pop()
			if err != nil {
				return nil, err
			}
			a, err := ev.pop()
			if err != nil {
				return nil, err
			}
			x, y := truthy(a.v), truthy(b.v)
			var r bool
			if in.Op == OpAnd {
				r = x && y
			} else {
				r = x || y
			}
			ev.push(entry{v: sqltypes.Bool(r), label: sqltypes.PlaintextType})
		case OpNot:
			a, err := ev.pop()
			if err != nil {
				return nil, err
			}
			ev.push(entry{v: sqltypes.Bool(!truthy(a.v)), label: sqltypes.PlaintextType})
		case OpIsNull:
			a, err := ev.pop()
			if err != nil {
				return nil, err
			}
			ev.push(entry{v: sqltypes.Bool(a.v.IsNull()), label: sqltypes.PlaintextType})
		case OpSetData:
			if err := ev.setData(in.Arg); err != nil {
				return nil, err
			}
		case OpTMEval:
			if err := ev.tmEval(in, inputs); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: opcode %d", ErrStack, in.Op)
		}
	}
	return ev.outs, nil
}

// EvalBool runs the program and decodes output slot 0 as a boolean — the
// common filter-predicate shape.
func (ev *Evaluator) EvalBool(inputs [][]byte) (bool, error) {
	outs, err := ev.Eval(inputs)
	if err != nil {
		return false, err
	}
	if len(outs) == 0 || len(outs[0]) == 0 {
		return false, nil
	}
	v, err := sqltypes.Decode(outs[0])
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

func truthy(v sqltypes.Value) bool {
	return v.Kind == sqltypes.KindBool && v.Bool_
}

// getData pushes input slot i, decrypting at ingress when the slot's type
// annotation says it is encrypted (§4.4.1).
func (ev *Evaluator) getData(i int, inputs [][]byte) error {
	if i < 0 || i >= len(inputs) {
		return fmt.Errorf("%w: GetData slot %d", ErrStack, i)
	}
	info := ev.prog.Inputs[i]
	raw := inputs[i]
	if len(raw) == 0 {
		ev.push(entry{v: sqltypes.Null(), label: info.Enc})
		return nil
	}
	if info.Enc.IsPlaintext() {
		v, err := sqltypes.Decode(raw)
		if err != nil {
			return err
		}
		ev.push(entry{v: v, label: sqltypes.PlaintextType})
		return nil
	}
	key, err := ev.cellKey(info.Enc.CEKName)
	if err != nil {
		return err
	}
	pt, err := key.Decrypt(raw)
	if err != nil {
		return err
	}
	v, err := sqltypes.Decode(pt)
	if err != nil {
		return err
	}
	ev.push(entry{v: v, label: info.Enc})
	return nil
}

// getRaw pushes the slot bytes untouched as VARBINARY, preserving the slot's
// encryption label so DET-vs-DET raw equality passes the security check
// while DET-vs-plaintext does not.
func (ev *Evaluator) getRaw(i int, inputs [][]byte) error {
	if i < 0 || i >= len(inputs) {
		return fmt.Errorf("%w: GetRaw slot %d", ErrStack, i)
	}
	raw := inputs[i]
	if len(raw) == 0 {
		ev.push(entry{v: sqltypes.Null(), label: ev.prog.Inputs[i].Enc})
		return nil
	}
	ev.push(entry{v: sqltypes.Bytes(raw), label: ev.prog.Inputs[i].Enc})
	return nil
}

func (ev *Evaluator) compare(op CompOp) error {
	b, err := ev.pop()
	if err != nil {
		return err
	}
	a, err := ev.pop()
	if err != nil {
		return err
	}
	if a.label != b.label {
		return ErrSecurityViolation
	}
	if a.v.IsNull() || b.v.IsNull() {
		ev.push(entry{v: sqltypes.Bool(false), label: sqltypes.PlaintextType})
		return nil
	}
	c, err := sqltypes.Compare(a.v, b.v)
	if err != nil {
		return err
	}
	ev.push(entry{v: sqltypes.Bool(op.apply(c)), label: sqltypes.PlaintextType})
	return nil
}

func (ev *Evaluator) like() error {
	pat, err := ev.pop()
	if err != nil {
		return err
	}
	s, err := ev.pop()
	if err != nil {
		return err
	}
	if s.label != pat.label {
		return ErrSecurityViolation
	}
	if s.v.IsNull() || pat.v.IsNull() {
		ev.push(entry{v: sqltypes.Bool(false), label: sqltypes.PlaintextType})
		return nil
	}
	if s.v.Kind != sqltypes.KindString || pat.v.Kind != sqltypes.KindString {
		return fmt.Errorf("%w: LIKE requires strings", sqltypes.ErrTypeMismatch)
	}
	ev.push(entry{v: sqltypes.Bool(sqltypes.Like(s.v.S, pat.v.S)), label: sqltypes.PlaintextType})
	return nil
}

// setData pops the stack into output slot i, encrypting at egress when the
// output annotation requires it — permitted only for authorized programs.
func (ev *Evaluator) setData(i int) error {
	if i < 0 || i >= len(ev.outs) {
		return fmt.Errorf("%w: SetData slot %d", ErrStack, i)
	}
	e, err := ev.pop()
	if err != nil {
		return err
	}
	info := ev.prog.Outputs[i]
	if e.v.IsNull() {
		ev.outs[i] = nil
		return nil
	}
	encoded := e.v.Encode()
	if info.Enc.IsPlaintext() {
		ev.outs[i] = encoded
		return nil
	}
	if !ev.allowEncrypt {
		return ErrEncryptDenied
	}
	key, err := ev.cellKey(info.Enc.CEKName)
	if err != nil {
		return err
	}
	typ := aecrypto.Randomized
	if info.Enc.Scheme == sqltypes.SchemeDeterministic {
		typ = aecrypto.Deterministic
	}
	ct, err := key.Encrypt(encoded, typ)
	if err != nil {
		return err
	}
	ev.outs[i] = ct
	return nil
}

func (ev *Evaluator) tmEval(in *Instr, inputs [][]byte) error {
	if ev.encl == nil || in.Arg >= len(ev.handles) {
		return errors.New("exprsvc: TMEval without a registered enclave expression")
	}
	args := make([][]byte, len(in.InSlots))
	for j, s := range in.InSlots {
		if s < 0 || s >= len(inputs) {
			return fmt.Errorf("%w: TMEval slot %d", ErrStack, s)
		}
		args[j] = inputs[s]
	}
	outs, err := ev.encl.EvalExpression(ev.handles[in.Arg], args)
	if err != nil {
		return err
	}
	if len(outs) == 0 {
		return errors.New("exprsvc: enclave returned no outputs")
	}
	if len(outs[0]) == 0 {
		ev.push(entry{v: sqltypes.Null(), label: sqltypes.PlaintextType})
		return nil
	}
	v, err := sqltypes.Decode(outs[0])
	if err != nil {
		return err
	}
	ev.push(entry{v: v, label: sqltypes.PlaintextType})
	return nil
}

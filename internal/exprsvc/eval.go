package exprsvc

import (
	"errors"
	"fmt"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/obs/trace"
	"alwaysencrypted/internal/sqltypes"
)

// KeyRing resolves CEK names to derived cell keys. Only trusted components
// (the enclave, the client driver) implement a KeyRing over real key
// material; host-side evaluation runs with a nil KeyRing and therefore can
// never decrypt.
type KeyRing interface {
	CellKey(name string) (*aecrypto.CellKey, error)
}

// EnclaveCaller abstracts the host→enclave invocation used by TMEval. The
// expression is registered once and subsequently invoked by handle,
// matching the registration pattern of §3. EvalExpressionBatch runs the
// same registered expression over many rows in one boundary crossing
// (§4.6 amortization): per-row outputs and errors line up with the input
// rows, while the second error reports call-level failures that sink the
// whole batch.
type EnclaveCaller interface {
	RegisterExpression(serialized []byte) (uint64, error)
	EvalExpression(handle uint64, inputs [][]byte) ([][]byte, error)
	EvalExpressionBatch(handle uint64, rows [][][]byte) ([][][]byte, []error, error)
}

// Evaluation errors.
var (
	ErrNoKeys            = errors.New("exprsvc: evaluation requires keys that are not available in this security boundary")
	ErrSecurityViolation = errors.New("exprsvc: security check failed: operands with different encryption provenance cannot be compared")
	ErrEncryptDenied     = errors.New("exprsvc: program attempted encryption without authorization")
	ErrStack             = errors.New("exprsvc: stack machine error")
)

// entry is a stack cell: the value plus its encryption provenance label. The
// label travels with decrypted values so the enclave can enforce that, for
// instance, a value decrypted under one CEK is never compared against a
// plaintext constant or a value under another CEK (§4.4.1 security checks).
type entry struct {
	v     sqltypes.Value
	label sqltypes.EncType
}

// Evaluator is the executable form of a Program — the CEsExec analog. It is
// not safe for concurrent use; query operators own one evaluator each.
type Evaluator struct {
	prog    *Program
	keys    KeyRing
	encl    EnclaveCaller
	handles []uint64
	// allowEncrypt gates SetData into encrypted outputs; only the enclave's
	// authorized type-conversion path enables it (§3.2 encryption oracle).
	allowEncrypt bool
	stack        []entry
	outs         [][]byte
	// cellKeys caches resolved keys per CEK name for the evaluator lifetime.
	// The entries are borrowed aliases: KeyRing.CellKey returns pointers into
	// the ring's own cache, and the ring's owner (enclave CEK table, driver
	// cache) zeroizes them on eviction/teardown. Zeroizing here would wipe
	// keys still live in the owner.
	//aelint:ignore secretretain reason=aliases owned by the KeyRing; its owner zeroizes them on evict/teardown
	cellKeys map[string]*aecrypto.CellKey
	// act, when non-nil, receives one "enclave.crossing" span per
	// host→enclave boundary crossing. Installed by the engine around each
	// statement (SetTrace) and cleared before the evaluator returns to its
	// pool, so trace state never leaks across statements.
	act *trace.Active
	// subOps caches per-sub-program opcode tallies for crossing-span
	// attributes, decoded lazily (only when tracing) and reused for the
	// evaluator's lifetime — the sub-programs are immutable.
	subOps [][]trace.Attr
}

// SetTrace installs (act non-nil) or clears (nil) the statement trace that
// enclave boundary crossings report into. The engine owns the call pairing;
// the evaluator itself never retains a trace past a statement.
func (ev *Evaluator) SetTrace(act *trace.Active) { ev.act = act }

// crossingSpan opens an "enclave.crossing" span for one boundary crossing of
// sub-program sub over rows rows, attaching the row count and the enclave
// program's per-opcode instruction tallies. Attributes are counts only —
// never operand bytes or values — per the trace leakage contract.
func (ev *Evaluator) crossingSpan(sub, rows int) trace.SpanRef {
	if ev.act == nil {
		return trace.SpanRef{}
	}
	sp := ev.act.StartSpan("enclave.crossing")
	sp.Attr("rows", int64(rows))
	for _, a := range ev.opTallies(sub) {
		sp.Attr(a.Key, a.Value)
	}
	return sp
}

// opTallies returns (computing once) the opcode histogram of enclave
// sub-program sub as span attributes named "op.<opcode>".
func (ev *Evaluator) opTallies(sub int) []trace.Attr {
	if ev.subOps == nil {
		ev.subOps = make([][]trace.Attr, len(ev.prog.Subs))
	}
	if sub < 0 || sub >= len(ev.subOps) {
		return nil
	}
	if ev.subOps[sub] == nil {
		var counts [len(opcodeNames)]int64
		if p, err := Deserialize(ev.prog.Subs[sub]); err == nil {
			for i := range p.Code {
				if op := p.Code[i].Op; int(op) < len(counts) {
					counts[op]++
				}
			}
		}
		attrs := make([]trace.Attr, 0, 4)
		for op, c := range counts {
			if c > 0 {
				attrs = append(attrs, trace.Attr{Key: "op." + Opcode(op).String(), Value: c})
			}
		}
		ev.subOps[sub] = attrs
	}
	return ev.subOps[sub]
}

// NewEvaluator prepares a program for execution. If the program contains
// enclave sub-programs they are registered with the caller now, so the hot
// Eval path only passes handles.
func NewEvaluator(prog *Program, keys KeyRing, encl EnclaveCaller) (*Evaluator, error) {
	ev := &Evaluator{prog: prog, keys: keys, encl: encl}
	if len(prog.Subs) > 0 {
		if encl == nil {
			return nil, errors.New("exprsvc: program requires an enclave but no caller provided")
		}
		ev.handles = make([]uint64, len(prog.Subs))
		for i, sub := range prog.Subs {
			h, err := encl.RegisterExpression(sub)
			if err != nil {
				return nil, fmt.Errorf("exprsvc: registering enclave expression: %w", err)
			}
			ev.handles[i] = h
		}
	}
	return ev, nil
}

// NewEnclaveEvaluator prepares a deserialized sub-program for execution
// inside the enclave, with access to session keys and (when authorized)
// encryption of outputs.
func NewEnclaveEvaluator(prog *Program, keys KeyRing, allowEncrypt bool) *Evaluator {
	return &Evaluator{prog: prog, keys: keys, allowEncrypt: allowEncrypt}
}

// Program returns the underlying compiled program.
func (ev *Evaluator) Program() *Program { return ev.prog }

func (ev *Evaluator) cellKey(name string) (*aecrypto.CellKey, error) {
	if ev.keys == nil {
		return nil, ErrNoKeys
	}
	if k, ok := ev.cellKeys[name]; ok {
		return k, nil
	}
	k, err := ev.keys.CellKey(name)
	if err != nil {
		return nil, err
	}
	if ev.cellKeys == nil {
		ev.cellKeys = make(map[string]*aecrypto.CellKey)
	}
	ev.cellKeys[name] = k
	return k, nil
}

func (ev *Evaluator) push(e entry) { ev.stack = append(ev.stack, e) }

func (ev *Evaluator) pop() (entry, error) {
	if len(ev.stack) == 0 {
		return entry{}, ErrStack
	}
	e := ev.stack[len(ev.stack)-1]
	ev.stack = ev.stack[:len(ev.stack)-1]
	return e, nil
}

// Eval runs the program over the input slots and returns the output slots.
// Input slot bytes are ciphertext envelopes for encrypted slots and canonical
// value encodings for plaintext slots; an empty slot is SQL NULL. The
// returned slices are valid until the next Eval call.
func (ev *Evaluator) Eval(inputs [][]byte) ([][]byte, error) {
	return ev.evalRow(inputs, nil)
}

// evalRow interprets the program over one row. tm, when non-nil, resolves
// the result of the TMEval instruction at a given pc instead of a live
// enclave call — EvalBatch pre-computes those results one batch at a time.
// The program is straight-line (no branches), so every TMEval executes
// exactly once per row and hoisting is semantics-preserving.
func (ev *Evaluator) evalRow(inputs [][]byte, tm func(pc int) ([][]byte, error)) ([][]byte, error) {
	if len(inputs) != len(ev.prog.Inputs) {
		return nil, fmt.Errorf("%w: %d inputs for %d slots", ErrStack, len(inputs), len(ev.prog.Inputs))
	}
	ev.stack = ev.stack[:0]
	if cap(ev.outs) < len(ev.prog.Outputs) {
		ev.outs = make([][]byte, len(ev.prog.Outputs))
	}
	ev.outs = ev.outs[:len(ev.prog.Outputs)]
	for i := range ev.outs {
		ev.outs[i] = nil
	}

	for pc := range ev.prog.Code {
		in := &ev.prog.Code[pc]
		switch in.Op {
		case OpGetData:
			if err := ev.getData(in.Arg, inputs); err != nil {
				return nil, err
			}
		case OpGetRaw:
			if err := ev.getRaw(in.Arg, inputs); err != nil {
				return nil, err
			}
		case OpConst:
			ev.push(entry{v: in.Val, label: sqltypes.PlaintextType})
		case OpComp:
			if err := ev.compare(CompOp(in.Arg)); err != nil {
				return nil, err
			}
		case OpLike:
			if err := ev.like(); err != nil {
				return nil, err
			}
		case OpAnd, OpOr:
			b, err := ev.pop()
			if err != nil {
				return nil, err
			}
			a, err := ev.pop()
			if err != nil {
				return nil, err
			}
			x, y := truthy(a.v), truthy(b.v)
			var r bool
			if in.Op == OpAnd {
				r = x && y
			} else {
				r = x || y
			}
			ev.push(entry{v: sqltypes.Bool(r), label: sqltypes.PlaintextType})
		case OpNot:
			a, err := ev.pop()
			if err != nil {
				return nil, err
			}
			ev.push(entry{v: sqltypes.Bool(!truthy(a.v)), label: sqltypes.PlaintextType})
		case OpIsNull:
			a, err := ev.pop()
			if err != nil {
				return nil, err
			}
			ev.push(entry{v: sqltypes.Bool(a.v.IsNull()), label: sqltypes.PlaintextType})
		case OpSetData:
			if err := ev.setData(in.Arg); err != nil {
				return nil, err
			}
		case OpTMEval:
			if tm != nil {
				outs, err := tm(pc)
				if err != nil {
					return nil, err
				}
				if err := ev.tmPush(outs); err != nil {
					return nil, err
				}
			} else if err := ev.tmEval(in, inputs); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: opcode %d", ErrStack, in.Op)
		}
	}
	return ev.outs, nil
}

// EvalBool runs the program and decodes output slot 0 as a boolean — the
// common filter-predicate shape.
func (ev *Evaluator) EvalBool(inputs [][]byte) (bool, error) {
	outs, err := ev.Eval(inputs)
	if err != nil {
		return false, err
	}
	if len(outs) == 0 || len(outs[0]) == 0 {
		return false, nil
	}
	v, err := sqltypes.Decode(outs[0])
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

func truthy(v sqltypes.Value) bool {
	return v.Kind == sqltypes.KindBool && v.Bool_
}

// getData pushes input slot i, decrypting at ingress when the slot's type
// annotation says it is encrypted (§4.4.1).
func (ev *Evaluator) getData(i int, inputs [][]byte) error {
	if i < 0 || i >= len(inputs) {
		return fmt.Errorf("%w: GetData slot %d", ErrStack, i)
	}
	info := ev.prog.Inputs[i]
	raw := inputs[i]
	if len(raw) == 0 {
		ev.push(entry{v: sqltypes.Null(), label: info.Enc})
		return nil
	}
	if info.Enc.IsPlaintext() {
		v, err := sqltypes.Decode(raw)
		if err != nil {
			return err
		}
		ev.push(entry{v: v, label: sqltypes.PlaintextType})
		return nil
	}
	key, err := ev.cellKey(info.Enc.CEKName)
	if err != nil {
		return err
	}
	pt, err := key.Decrypt(raw)
	if err != nil {
		return err
	}
	v, err := sqltypes.Decode(pt)
	if err != nil {
		return err
	}
	ev.push(entry{v: v, label: info.Enc})
	return nil
}

// getRaw pushes the slot bytes untouched as VARBINARY, preserving the slot's
// encryption label so DET-vs-DET raw equality passes the security check
// while DET-vs-plaintext does not.
func (ev *Evaluator) getRaw(i int, inputs [][]byte) error {
	if i < 0 || i >= len(inputs) {
		return fmt.Errorf("%w: GetRaw slot %d", ErrStack, i)
	}
	raw := inputs[i]
	if len(raw) == 0 {
		ev.push(entry{v: sqltypes.Null(), label: ev.prog.Inputs[i].Enc})
		return nil
	}
	ev.push(entry{v: sqltypes.Bytes(raw), label: ev.prog.Inputs[i].Enc})
	return nil
}

func (ev *Evaluator) compare(op CompOp) error {
	b, err := ev.pop()
	if err != nil {
		return err
	}
	a, err := ev.pop()
	if err != nil {
		return err
	}
	if a.label != b.label {
		return ErrSecurityViolation
	}
	if a.v.IsNull() || b.v.IsNull() {
		ev.push(entry{v: sqltypes.Bool(false), label: sqltypes.PlaintextType})
		return nil
	}
	c, err := sqltypes.Compare(a.v, b.v)
	if err != nil {
		return err
	}
	ev.push(entry{v: sqltypes.Bool(op.apply(c)), label: sqltypes.PlaintextType})
	return nil
}

func (ev *Evaluator) like() error {
	pat, err := ev.pop()
	if err != nil {
		return err
	}
	s, err := ev.pop()
	if err != nil {
		return err
	}
	if s.label != pat.label {
		return ErrSecurityViolation
	}
	if s.v.IsNull() || pat.v.IsNull() {
		ev.push(entry{v: sqltypes.Bool(false), label: sqltypes.PlaintextType})
		return nil
	}
	if s.v.Kind != sqltypes.KindString || pat.v.Kind != sqltypes.KindString {
		return fmt.Errorf("%w: LIKE requires strings", sqltypes.ErrTypeMismatch)
	}
	ev.push(entry{v: sqltypes.Bool(sqltypes.Like(s.v.S, pat.v.S)), label: sqltypes.PlaintextType})
	return nil
}

// setData pops the stack into output slot i, encrypting at egress when the
// output annotation requires it — permitted only for authorized programs.
func (ev *Evaluator) setData(i int) error {
	if i < 0 || i >= len(ev.outs) {
		return fmt.Errorf("%w: SetData slot %d", ErrStack, i)
	}
	e, err := ev.pop()
	if err != nil {
		return err
	}
	info := ev.prog.Outputs[i]
	if e.v.IsNull() {
		ev.outs[i] = nil
		return nil
	}
	encoded := e.v.Encode()
	if info.Enc.IsPlaintext() {
		ev.outs[i] = encoded
		return nil
	}
	if !ev.allowEncrypt {
		return ErrEncryptDenied
	}
	key, err := ev.cellKey(info.Enc.CEKName)
	if err != nil {
		return err
	}
	typ := aecrypto.Randomized
	if info.Enc.Scheme == sqltypes.SchemeDeterministic {
		typ = aecrypto.Deterministic
	}
	ct, err := key.Encrypt(encoded, typ)
	if err != nil {
		return err
	}
	ev.outs[i] = ct
	return nil
}

func (ev *Evaluator) tmEval(in *Instr, inputs [][]byte) error {
	if ev.encl == nil || in.Arg >= len(ev.handles) {
		return errors.New("exprsvc: TMEval without a registered enclave expression")
	}
	args, err := ev.tmArgs(in, inputs)
	if err != nil {
		return err
	}
	sp := ev.crossingSpan(in.Arg, 1)
	outs, err := ev.encl.EvalExpression(ev.handles[in.Arg], args)
	sp.End()
	if err != nil {
		return err
	}
	return ev.tmPush(outs)
}

// tmArgs gathers a TMEval instruction's enclave arguments. They come purely
// from the input slots, never from the host stack — that is what makes
// batch-hoisting the enclave calls sound.
func (ev *Evaluator) tmArgs(in *Instr, inputs [][]byte) ([][]byte, error) {
	args := make([][]byte, len(in.InSlots))
	for j, s := range in.InSlots {
		if s < 0 || s >= len(inputs) {
			return nil, fmt.Errorf("%w: TMEval slot %d", ErrStack, s)
		}
		args[j] = inputs[s]
	}
	return args, nil
}

// tmPush pushes an enclave sub-program's result onto the host stack.
func (ev *Evaluator) tmPush(outs [][]byte) error {
	if len(outs) == 0 {
		return errors.New("exprsvc: enclave returned no outputs")
	}
	if len(outs[0]) == 0 {
		ev.push(entry{v: sqltypes.Null(), label: sqltypes.PlaintextType})
		return nil
	}
	v, err := sqltypes.Decode(outs[0])
	if err != nil {
		return err
	}
	ev.push(entry{v: v, label: sqltypes.PlaintextType})
	return nil
}

// EvalBatch runs the program over N rows of input slots, making one
// EvalExpressionBatch call per TMEval instruction instead of one
// EvalExpression call per row per instruction (§4.6). Per-row results and
// errors line up with rows; rows that fail do not disturb their neighbors.
// The call-level error is non-nil only when the whole batch is lost (e.g.
// the enclave is closed). Returned output slices are owned by the caller.
func (ev *Evaluator) EvalBatch(rows [][][]byte) ([][][]byte, []error, error) {
	results := make([][][]byte, len(rows))
	rowErrs := make([]error, len(rows))
	for i, row := range rows {
		if len(row) != len(ev.prog.Inputs) {
			rowErrs[i] = fmt.Errorf("%w: %d inputs for %d slots", ErrStack, len(row), len(ev.prog.Inputs))
		}
	}

	// Hoist enclave work: for each TMEval pc, gather the still-live rows'
	// arguments and cross the boundary once for all of them.
	var resolved [][][][]byte // [pc][row] → enclave outputs
	for pc := range ev.prog.Code {
		in := &ev.prog.Code[pc]
		if in.Op != OpTMEval {
			continue
		}
		if resolved == nil {
			resolved = make([][][][]byte, len(ev.prog.Code))
		}
		resolved[pc] = make([][][]byte, len(rows))
		if ev.encl == nil || in.Arg >= len(ev.handles) {
			err := errors.New("exprsvc: TMEval without a registered enclave expression")
			for i := range rows {
				if rowErrs[i] == nil {
					rowErrs[i] = err
				}
			}
			continue
		}
		batch := make([][][]byte, 0, len(rows))
		live := make([]int, 0, len(rows))
		for i, row := range rows {
			if rowErrs[i] != nil {
				continue
			}
			args, err := ev.tmArgs(in, row)
			if err != nil {
				rowErrs[i] = err
				continue
			}
			batch = append(batch, args)
			live = append(live, i)
		}
		if len(batch) == 0 {
			continue
		}
		sp := ev.crossingSpan(in.Arg, len(batch))
		outs, errs, err := ev.encl.EvalExpressionBatch(ev.handles[in.Arg], batch)
		sp.End()
		if err != nil {
			return nil, nil, err
		}
		if len(outs) != len(batch) || len(errs) != len(batch) {
			return nil, nil, fmt.Errorf("%w: enclave batch returned %d/%d results for %d rows", ErrStack, len(outs), len(errs), len(batch))
		}
		for j, i := range live {
			if errs[j] != nil {
				rowErrs[i] = errs[j]
				continue
			}
			resolved[pc][i] = outs[j]
		}
	}

	for i, row := range rows {
		if rowErrs[i] != nil {
			continue
		}
		outs, err := ev.evalRow(row, func(pc int) ([][]byte, error) {
			return resolved[pc][i], nil
		})
		if err != nil {
			rowErrs[i] = err
			continue
		}
		// ev.outs is reused across rows; the buffers inside are fresh per
		// row, so a shallow copy of the header slice is enough.
		results[i] = append([][]byte(nil), outs...)
	}
	return results, rowErrs, nil
}

// EvalBoolBatch is the batched form of EvalBool: one shared boundary
// crossing per TMEval instruction, output slot 0 decoded per row as the
// filter-predicate truth value.
func (ev *Evaluator) EvalBoolBatch(rows [][][]byte) ([]bool, []error, error) {
	outs, rowErrs, err := ev.EvalBatch(rows)
	if err != nil {
		return nil, nil, err
	}
	matches := make([]bool, len(rows))
	for i := range rows {
		if rowErrs[i] != nil {
			continue
		}
		o := outs[i]
		if len(o) == 0 || len(o[0]) == 0 {
			continue
		}
		v, err := sqltypes.Decode(o[0])
		if err != nil {
			rowErrs[i] = err
			continue
		}
		matches[i] = truthy(v)
	}
	return matches, rowErrs, nil
}

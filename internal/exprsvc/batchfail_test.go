package exprsvc

// Call-level failure paths of EvalBatch: what happens when the enclave
// itself — not an individual row — fails between or during batch flushes.
// The contract under test (eval.go): a call-level error returns
// (nil, nil, err) with no partial per-row results, the evaluator carries no
// poisoned state into the next flush, and recovery is a matter of the
// enclave coming back (same handle) or re-registering (restart).

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
)

var errTornDown = errors.New("enclave: torn down")

// scriptedEnclave is a fakeEnclave whose EvalExpressionBatch fails at
// scripted call numbers or while closed, modelling an enclave lost between
// flushes. All calls are serialized under one mutex so concurrent
// evaluators can share it under -race.
type scriptedEnclave struct {
	fakeEnclave
	mu         sync.Mutex
	batchCalls int
	failOn     map[int]error
	closed     atomic.Bool
}

func (s *scriptedEnclave) EvalExpressionBatch(h uint64, rows [][][]byte) ([][][]byte, []error, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, nil, errTornDown
	}
	s.batchCalls++
	if err := s.failOn[s.batchCalls]; err != nil {
		return nil, nil, err
	}
	return s.fakeEnclave.EvalExpressionBatch(h, rows)
}

// evalRows builds N (value, threshold) ciphertext rows with the expected
// GT-against-50 truth per row.
func evalRows(t *testing.T, key *aecrypto.CellKey, n int) ([][][]byte, []bool) {
	t.Helper()
	threshold := encryptVal(t, key, sqltypes.Int(50), aecrypto.Randomized)
	rows := make([][][]byte, n)
	want := make([]bool, n)
	for i := range rows {
		v := int64(i * 20)
		rows[i] = [][]byte{encryptVal(t, key, sqltypes.Int(v), aecrypto.Randomized), threshold}
		want[i] = v > 50
	}
	return rows, want
}

func checkBatch(t *testing.T, ev *Evaluator, rows [][][]byte, want []bool) {
	t.Helper()
	matches, rowErrs, err := ev.EvalBoolBatch(rows)
	if err != nil {
		t.Fatalf("flush failed: %v", err)
	}
	for i := range rows {
		if rowErrs[i] != nil {
			t.Fatalf("row %d: %v", i, rowErrs[i])
		}
		if matches[i] != want[i] {
			t.Fatalf("row %d = %v, want %v", i, matches[i], want[i])
		}
	}
}

// TestEvalBatchEnclaveLostOnSecondFlush: the first flush succeeds, the
// enclave dies for exactly the second flush, and the third works again
// (transient fault — the handle is still registered). The failed flush must
// return (nil, nil, err) with no partial results, and must not poison the
// evaluator for the flush after it.
func TestEvalBatchEnclaveLostOnSecondFlush(t *testing.T) {
	cek, key, ring := newCEK(t)
	prog := cmpProg(t, CmpGT, rndEnclaveInfo(sqltypes.KindInt, cek))
	encl := &scriptedEnclave{fakeEnclave: fakeEnclave{keys: ring}, failOn: map[int]error{2: errTornDown}}
	ev, err := NewEvaluator(prog, nil, encl)
	if err != nil {
		t.Fatal(err)
	}
	rows, want := evalRows(t, key, 6)

	checkBatch(t, ev, rows, want) // flush 1

	matches, rowErrs, err := ev.EvalBoolBatch(rows) // flush 2: enclave gone
	if !errors.Is(err, errTornDown) {
		t.Fatalf("flush 2 error = %v, want errTornDown", err)
	}
	if matches != nil || rowErrs != nil {
		t.Fatalf("call-level failure leaked partial results: matches=%v rowErrs=%v", matches, rowErrs)
	}

	checkBatch(t, ev, rows, want) // flush 3: recovered, same handle
}

// TestEvalBatchClosedThenRestart: the enclave closes for good between
// flushes. The old evaluator fails every subsequent flush — its handle died
// with the enclave — and recovery requires what a driver restart does:
// re-registering the program against the restarted enclave with a fresh
// evaluator.
func TestEvalBatchClosedThenRestart(t *testing.T) {
	cek, key, ring := newCEK(t)
	prog := cmpProg(t, CmpGT, rndEnclaveInfo(sqltypes.KindInt, cek))
	encl := &scriptedEnclave{fakeEnclave: fakeEnclave{keys: ring}}
	ev, err := NewEvaluator(prog, nil, encl)
	if err != nil {
		t.Fatal(err)
	}
	rows, want := evalRows(t, key, 4)
	checkBatch(t, ev, rows, want)

	encl.closed.Store(true)
	for flush := 0; flush < 2; flush++ {
		if _, _, err := ev.EvalBoolBatch(rows); !errors.Is(err, errTornDown) {
			t.Fatalf("flush %d after close: err = %v, want errTornDown", flush, err)
		}
	}

	// Restart: a fresh enclave instance; the statement must be re-prepared.
	restarted := &scriptedEnclave{fakeEnclave: fakeEnclave{keys: ring}}
	ev2, err := NewEvaluator(prog, nil, restarted)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, ev2, rows, want)

	// The old evaluator still points at the dead enclave.
	if _, _, err := ev.EvalBoolBatch(rows); !errors.Is(err, errTornDown) {
		t.Fatalf("old evaluator after restart: err = %v, want errTornDown", err)
	}
}

// TestEvalBatchConcurrentTeardown: several evaluators flush batches against
// one shared enclave while it is torn down mid-flight. Every flush must
// either fully succeed or fail with the teardown error — never mixed or
// partial results. Run under -race this also proves the failure path itself
// is data-race free.
func TestEvalBatchConcurrentTeardown(t *testing.T) {
	cek, key, ring := newCEK(t)
	prog := cmpProg(t, CmpGT, rndEnclaveInfo(sqltypes.KindInt, cek))
	encl := &scriptedEnclave{fakeEnclave: fakeEnclave{keys: ring}}

	const workers = 4
	evs := make([]*Evaluator, workers)
	for i := range evs {
		ev, err := NewEvaluator(prog, nil, encl)
		if err != nil {
			t.Fatal(err)
		}
		evs[i] = ev
	}
	rows, want := evalRows(t, key, 5)

	var sawTeardown atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ev *Evaluator) {
			defer wg.Done()
			for {
				matches, rowErrs, err := ev.EvalBoolBatch(rows)
				if err != nil {
					if !errors.Is(err, errTornDown) {
						t.Errorf("unexpected flush error: %v", err)
					}
					if matches != nil || rowErrs != nil {
						t.Error("failed flush returned partial results")
					}
					sawTeardown.Add(1)
					return
				}
				for i := range rows {
					if rowErrs[i] != nil || matches[i] != want[i] {
						t.Errorf("row %d = %v (err %v), want %v", i, matches[i], rowErrs[i], want[i])
						return
					}
				}
			}
		}(evs[w])
	}
	encl.closed.Store(true)
	wg.Wait()
	if got := sawTeardown.Load(); got != workers {
		t.Fatalf("%d workers saw teardown, want %d", got, workers)
	}
}

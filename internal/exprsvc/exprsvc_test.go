package exprsvc

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
)

// mapKeyRing is a trivial KeyRing over in-memory cell keys.
type mapKeyRing map[string]*aecrypto.CellKey

func (m mapKeyRing) CellKey(name string) (*aecrypto.CellKey, error) {
	k, ok := m[name]
	if !ok {
		return nil, errors.New("no such key")
	}
	return k, nil
}

// fakeEnclave implements EnclaveCaller the same way the real enclave does:
// deserialize on registration, evaluate with session keys.
type fakeEnclave struct {
	keys  mapKeyRing
	progs []*Evaluator
	calls int
}

func (f *fakeEnclave) RegisterExpression(serialized []byte) (uint64, error) {
	p, err := Deserialize(serialized)
	if err != nil {
		return 0, err
	}
	f.progs = append(f.progs, NewEnclaveEvaluator(p, f.keys, false))
	return uint64(len(f.progs) - 1), nil
}

func (f *fakeEnclave) EvalExpression(handle uint64, inputs [][]byte) ([][]byte, error) {
	f.calls++
	return f.progs[handle].Eval(inputs)
}

func (f *fakeEnclave) EvalExpressionBatch(handle uint64, rows [][][]byte) ([][][]byte, []error, error) {
	f.calls++
	outs := make([][][]byte, len(rows))
	errs := make([]error, len(rows))
	for i, row := range rows {
		res, err := f.progs[handle].Eval(row)
		if err != nil {
			errs[i] = err
			continue
		}
		// Eval reuses its output header slice across calls; copy it.
		outs[i] = append([][]byte(nil), res...)
	}
	return outs, errs, nil
}

func newCEK(t testing.TB) (string, *aecrypto.CellKey, mapKeyRing) {
	t.Helper()
	root, err := aecrypto.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	k := aecrypto.MustCellKey(root)
	return "MyCEK", k, mapKeyRing{"MyCEK": k}
}

func rndEnclaveInfo(kind sqltypes.Kind, cek string) EncInfo {
	return EncInfo{Kind: kind, Enc: sqltypes.EncType{
		Scheme: sqltypes.SchemeRandomized, CEKName: cek, EnclaveEnabled: true}}
}

func detInfo(kind sqltypes.Kind, cek string) EncInfo {
	return EncInfo{Kind: kind, Enc: sqltypes.EncType{
		Scheme: sqltypes.SchemeDeterministic, CEKName: cek}}
}

// encryptVal seals a value's canonical encoding under a cell key.
func encryptVal(t testing.TB, k *aecrypto.CellKey, v sqltypes.Value, typ aecrypto.EncryptionType) []byte {
	t.Helper()
	ct, err := k.Encrypt(v.Encode(), typ)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// TestPlaintextComparison: fully plaintext predicates run entirely host-side.
func TestPlaintextComparison(t *testing.T) {
	inputs := []EncInfo{Plain(sqltypes.KindInt), Plain(sqltypes.KindInt)}
	expr := Cmp{Op: CmpLT, L: SlotRef{Slot: 0, Info: inputs[0]}, R: SlotRef{Slot: 1, Info: inputs[1]}}
	prog, err := Compile("lt", expr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Subs) != 0 {
		t.Fatal("plaintext comparison must not create enclave sub-programs")
	}
	ev, err := NewEvaluator(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		a, b int64
		want bool
	}{{1, 2, true}, {2, 2, false}, {3, 2, false}} {
		got, err := ev.EvalBool([][]byte{sqltypes.Int(c.a).Encode(), sqltypes.Int(c.b).Encode()})
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("%d < %d = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestFigure7EnclaveComparison reproduces the Figure 7 split: `value = @v`
// over an enclave-enabled randomized column compiles to a host TMEval stub
// plus a serialized enclave sub-program, and evaluates via the enclave.
func TestFigure7EnclaveComparison(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	inputs := []EncInfo{info, info}
	expr := Cmp{Op: CmpEQ,
		L: SlotRef{Slot: 0, Info: info, Name: "T.value"},
		R: SlotRef{Slot: 1, Info: info, Name: "@v"}}
	prog, err := Compile("fig7", expr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Subs) != 1 {
		t.Fatalf("expected 1 enclave sub-program, got %d", len(prog.Subs))
	}
	// The host program must contain a TMEval stub and no GetData on the
	// encrypted slots.
	sawTMEval := false
	for _, in := range prog.Code {
		if in.Op == OpTMEval {
			sawTMEval = true
		}
		if in.Op == OpGetData {
			t.Fatal("host program decrypts an encrypted slot")
		}
	}
	if !sawTMEval {
		t.Fatal("no TMEval in host program")
	}

	encl := &fakeEnclave{keys: ring}
	ev, err := NewEvaluator(prog, nil, encl)
	if err != nil {
		t.Fatal(err)
	}
	colCT := encryptVal(t, key, sqltypes.Int(42), aecrypto.Randomized)
	paramEq := encryptVal(t, key, sqltypes.Int(42), aecrypto.Randomized)
	paramNe := encryptVal(t, key, sqltypes.Int(7), aecrypto.Randomized)

	got, err := ev.EvalBool([][]byte{colCT, paramEq})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("42 = 42 over RND ciphertext evaluated false")
	}
	got, err = ev.EvalBool([][]byte{colCT, paramNe})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("42 = 7 over RND ciphertext evaluated true")
	}
	if encl.calls != 2 {
		t.Fatalf("enclave invoked %d times, want 2", encl.calls)
	}
}

// TestRangeOverRNDViaEnclave: range comparison on randomized ciphertext.
func TestRangeOverRNDViaEnclave(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	expr := Cmp{Op: CmpGT, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
	prog, err := Compile("gt", expr, []EncInfo{info, info})
	if err != nil {
		t.Fatal(err)
	}
	encl := &fakeEnclave{keys: ring}
	ev, _ := NewEvaluator(prog, nil, encl)
	a := encryptVal(t, key, sqltypes.Int(10), aecrypto.Randomized)
	b := encryptVal(t, key, sqltypes.Int(5), aecrypto.Randomized)
	got, err := ev.EvalBool([][]byte{a, b})
	if err != nil || !got {
		t.Fatalf("10 > 5 = %v, err %v", got, err)
	}
}

// TestLikeViaEnclave: LIKE over encrypted strings.
func TestLikeViaEnclave(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindString, cek)
	expr := LikeExpr{Input: SlotRef{Slot: 0, Info: info}, Pattern: SlotRef{Slot: 1, Info: info}}
	prog, err := Compile("like", expr, []EncInfo{info, info})
	if err != nil {
		t.Fatal(err)
	}
	encl := &fakeEnclave{keys: ring}
	ev, _ := NewEvaluator(prog, nil, encl)
	s := encryptVal(t, key, sqltypes.Str("BARBARBAR"), aecrypto.Randomized)
	pat := encryptVal(t, key, sqltypes.Str("BAR%"), aecrypto.Randomized)
	got, err := ev.EvalBool([][]byte{s, pat})
	if err != nil || !got {
		t.Fatalf("LIKE = %v, err %v", got, err)
	}
}

// TestDETEqualityOnHost: DET equality is VARBINARY equality with no enclave.
func TestDETEqualityOnHost(t *testing.T) {
	cek, key, _ := newCEK(t)
	info := detInfo(sqltypes.KindString, cek)
	expr := Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
	prog, err := Compile("det-eq", expr, []EncInfo{info, info})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Subs) != 0 {
		t.Fatal("DET equality must not use the enclave")
	}
	ev, err := NewEvaluator(prog, nil, nil) // host: no keys, no enclave
	if err != nil {
		t.Fatal(err)
	}
	a := encryptVal(t, key, sqltypes.Str("Seattle"), aecrypto.Deterministic)
	b := encryptVal(t, key, sqltypes.Str("Seattle"), aecrypto.Deterministic)
	c := encryptVal(t, key, sqltypes.Str("Zurich"), aecrypto.Deterministic)
	if got, _ := ev.EvalBool([][]byte{a, b}); !got {
		t.Fatal("equal DET ciphertexts compared unequal")
	}
	if got, _ := ev.EvalBool([][]byte{a, c}); got {
		t.Fatal("distinct DET ciphertexts compared equal")
	}
}

// TestDETRangeRejected: range over DET must fail compilation (§2.4.4).
func TestDETRangeRejected(t *testing.T) {
	info := detInfo(sqltypes.KindInt, "K")
	expr := Cmp{Op: CmpLT, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
	if _, err := Compile("det-lt", expr, []EncInfo{info, info}); !errors.Is(err, ErrUnsupportedOp) {
		t.Fatalf("err = %v, want ErrUnsupportedOp", err)
	}
}

// TestRNDWithoutEnclaveRejected: no scalar operations on enclave-disabled RND.
func TestRNDWithoutEnclaveRejected(t *testing.T) {
	info := EncInfo{Kind: sqltypes.KindInt, Enc: sqltypes.EncType{
		Scheme: sqltypes.SchemeRandomized, CEKName: "K"}}
	expr := Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
	if _, err := Compile("rnd", expr, []EncInfo{info, info}); !errors.Is(err, ErrUnsupportedOp) {
		t.Fatalf("err = %v, want ErrUnsupportedOp", err)
	}
}

// TestLiteralVsEncryptedRejected: literals can't meet encrypted columns.
func TestLiteralVsEncryptedRejected(t *testing.T) {
	info := detInfo(sqltypes.KindInt, "K")
	expr := Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: info}, R: Const{Val: sqltypes.Int(5)}}
	if _, err := Compile("lit", expr, []EncInfo{info}); !errors.Is(err, ErrNotParameterized) {
		t.Fatalf("err = %v, want ErrNotParameterized", err)
	}
}

// TestCrossCEKComparisonRejected at compile time.
func TestCrossCEKComparisonRejected(t *testing.T) {
	a := detInfo(sqltypes.KindInt, "K1")
	b := detInfo(sqltypes.KindInt, "K2")
	expr := Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: a}, R: SlotRef{Slot: 1, Info: b}}
	if _, err := Compile("cross", expr, []EncInfo{a, b}); !errors.Is(err, sqltypes.ErrTypeConflict) {
		t.Fatalf("err = %v, want type conflict", err)
	}
}

// TestEnclaveSecurityCheck: the enclave rejects comparing values with
// mismatched provenance even if a malicious host crafts such a program
// (§4.4.1 "enforces security checks that ensure encrypted and plaintext
// values cannot be compared").
func TestEnclaveSecurityCheck(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	// Hand-craft a malicious sub-program comparing an encrypted slot with a
	// plaintext constant — a decryption oracle if permitted.
	evil := &Program{
		Name:    "evil",
		Inputs:  []EncInfo{info},
		Outputs: []EncInfo{Plain(sqltypes.KindBool)},
		Code: []Instr{
			{Op: OpGetData, Arg: 0},
			{Op: OpConst, Val: sqltypes.Int(42)},
			{Op: OpComp, Arg: int(CmpEQ)},
			{Op: OpSetData, Arg: 0},
		},
	}
	ev := NewEnclaveEvaluator(evil, ring, false)
	ct := encryptVal(t, key, sqltypes.Int(42), aecrypto.Randomized)
	if _, err := ev.Eval([][]byte{ct}); !errors.Is(err, ErrSecurityViolation) {
		t.Fatalf("err = %v, want ErrSecurityViolation", err)
	}
}

// TestEncryptionDeniedWithoutAuthorization: SetData into an encrypted output
// is refused unless the evaluator was created on the authorized conversion
// path (§3.2 encryption oracle restriction).
func TestEncryptionDeniedWithoutAuthorization(t *testing.T) {
	cek, key, ring := newCEK(t)
	out := rndEnclaveInfo(sqltypes.KindInt, cek)
	conv := &Program{
		Name:    "convert",
		Inputs:  []EncInfo{Plain(sqltypes.KindInt)},
		Outputs: []EncInfo{out},
		Code: []Instr{
			{Op: OpGetData, Arg: 0},
			{Op: OpSetData, Arg: 0},
		},
	}
	ev := NewEnclaveEvaluator(conv, ring, false)
	if _, err := ev.Eval([][]byte{sqltypes.Int(7).Encode()}); !errors.Is(err, ErrEncryptDenied) {
		t.Fatalf("err = %v, want ErrEncryptDenied", err)
	}
	// With authorization the conversion succeeds and round-trips.
	evAuth := NewEnclaveEvaluator(conv, ring, true)
	outs, err := evAuth.Eval([][]byte{sqltypes.Int(7).Encode()})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := key.Decrypt(outs[0])
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sqltypes.Decode(pt)
	if v.I != 7 {
		t.Fatalf("converted value = %v", v)
	}
}

// TestHostCannotDecrypt: a host evaluator given a program with GetData on an
// encrypted slot fails with ErrNoKeys — the host security boundary holds.
func TestHostCannotDecrypt(t *testing.T) {
	cek, key, _ := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	leaky := &Program{
		Name:    "leak",
		Inputs:  []EncInfo{info},
		Outputs: []EncInfo{Plain(sqltypes.KindInt)},
		Code:    []Instr{{Op: OpGetData, Arg: 0}, {Op: OpSetData, Arg: 0}},
	}
	ev := NewEnclaveEvaluator(leaky, nil, false) // nil keyring = host boundary
	ct := encryptVal(t, key, sqltypes.Int(1), aecrypto.Randomized)
	if _, err := ev.Eval([][]byte{ct}); !errors.Is(err, ErrNoKeys) {
		t.Fatalf("err = %v, want ErrNoKeys", err)
	}
}

// TestNullSemantics: comparisons with NULL are false; IS NULL works on both
// plaintext and encrypted slots.
func TestNullSemantics(t *testing.T) {
	inputs := []EncInfo{Plain(sqltypes.KindInt), Plain(sqltypes.KindInt)}
	expr := Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: inputs[0]}, R: SlotRef{Slot: 1, Info: inputs[1]}}
	prog, _ := Compile("eq", expr, inputs)
	ev, _ := NewEvaluator(prog, nil, nil)
	got, err := ev.EvalBool([][]byte{nil, sqltypes.Int(1).Encode()})
	if err != nil || got {
		t.Fatalf("NULL = 1 must be false, got %v err %v", got, err)
	}

	isnull := IsNull{X: SlotRef{Slot: 0, Info: inputs[0]}}
	prog2, err := Compile("isnull", isnull, inputs)
	if err != nil {
		t.Fatal(err)
	}
	ev2, _ := NewEvaluator(prog2, nil, nil)
	if got, _ := ev2.EvalBool([][]byte{nil, nil}); !got {
		t.Fatal("IS NULL on empty slot must be true")
	}
	if got, _ := ev2.EvalBool([][]byte{sqltypes.Int(1).Encode(), nil}); got {
		t.Fatal("IS NULL on present slot must be false")
	}
}

// TestBooleanConnectives compiles AND/OR/NOT combinations.
func TestBooleanConnectives(t *testing.T) {
	infos := []EncInfo{Plain(sqltypes.KindInt), Plain(sqltypes.KindInt)}
	a := Cmp{Op: CmpGT, L: SlotRef{Slot: 0, Info: infos[0]}, R: Const{Val: sqltypes.Int(0)}}
	b := Cmp{Op: CmpLT, L: SlotRef{Slot: 1, Info: infos[1]}, R: Const{Val: sqltypes.Int(10)}}
	expr := And{L: a, R: Not{X: Or{L: b, R: b}}}
	prog, err := Compile("bool", expr, infos)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := NewEvaluator(prog, nil, nil)
	// slot0 > 0 AND NOT(slot1 < 10 OR slot1 < 10)
	got, err := ev.EvalBool([][]byte{sqltypes.Int(5).Encode(), sqltypes.Int(20).Encode()})
	if err != nil || !got {
		t.Fatalf("got %v err %v", got, err)
	}
	got, _ = ev.EvalBool([][]byte{sqltypes.Int(5).Encode(), sqltypes.Int(5).Encode()})
	if got {
		t.Fatal("expected false")
	}
}

// TestSerializeRoundTrip: programs survive serialization — the deep-copy
// mechanism that ships sub-programs into the enclave.
func TestSerializeRoundTrip(t *testing.T) {
	cek := "K"
	info := rndEnclaveInfo(sqltypes.KindString, cek)
	expr := And{
		L: Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}},
		R: Cmp{Op: CmpGT, L: SlotRef{Slot: 2, Info: Plain(sqltypes.KindInt)}, R: Const{Val: sqltypes.Int(3)}},
	}
	prog, err := Compile("mix", expr, []EncInfo{info, info, Plain(sqltypes.KindInt)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Deserialize(prog.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(prog), normalize(got)) {
		t.Fatalf("roundtrip mismatch:\n%+v\nvs\n%+v", prog, got)
	}
}

// normalize nils out empty-vs-nil slice differences for DeepEqual.
func normalize(p *Program) *Program {
	q := *p
	if len(q.Subs) == 0 {
		q.Subs = nil
	}
	return &q
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	cases := [][]byte{nil, {1}, {0xE5, 0xC0}, bytes.Repeat([]byte{0xff}, 64)}
	for i, c := range cases {
		if _, err := Deserialize(c); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
	// Truncations of a valid program must all be rejected.
	info := Plain(sqltypes.KindInt)
	prog, _ := Compile("x", Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: info}, R: Const{Val: sqltypes.Int(1)}}, []EncInfo{info})
	ser := prog.Serialize()
	for n := 0; n < len(ser); n++ {
		if _, err := Deserialize(ser[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

// Property: serialize∘deserialize is the identity on compiled programs over
// random comparison shapes.
func TestQuickSerializeRoundTrip(t *testing.T) {
	prop := func(opRaw uint8, det bool, slotKind uint8) bool {
		op := CompOp(opRaw % 6)
		kind := sqltypes.KindInt
		if slotKind%2 == 1 {
			kind = sqltypes.KindString
		}
		var info EncInfo
		if det {
			if op != CmpEQ && op != CmpNE {
				return true // DET admits only equality; skip
			}
			info = detInfo(kind, "K")
		} else {
			info = rndEnclaveInfo(kind, "K")
		}
		expr := Cmp{Op: op, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
		prog, err := Compile("q", expr, []EncInfo{info, info})
		if err != nil {
			return false
		}
		got, err := Deserialize(prog.Serialize())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(prog), normalize(got))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random int pairs, enclave evaluation over RND ciphertext
// agrees with plaintext comparison for every operator.
func TestQuickEnclaveComparisonAgreesWithPlaintext(t *testing.T) {
	cek, key, ring := newCEK(t)
	info := rndEnclaveInfo(sqltypes.KindInt, cek)
	evs := make([]*Evaluator, 6)
	encl := &fakeEnclave{keys: ring}
	for op := 0; op < 6; op++ {
		expr := Cmp{Op: CompOp(op), L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
		prog, err := Compile("q", expr, []EncInfo{info, info})
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(prog, nil, encl)
		if err != nil {
			t.Fatal(err)
		}
		evs[op] = ev
	}
	prop := func(a, b int64, opRaw uint8) bool {
		op := CompOp(opRaw % 6)
		ctA := encryptVal(t, key, sqltypes.Int(a), aecrypto.Randomized)
		ctB := encryptVal(t, key, sqltypes.Int(b), aecrypto.Randomized)
		got, err := evs[op].EvalBool([][]byte{ctA, ctB})
		if err != nil {
			return false
		}
		c, _ := sqltypes.Compare(sqltypes.Int(a), sqltypes.Int(b))
		return got == op.apply(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHostDETEquality(b *testing.B) {
	cek, key, _ := newCEK(b)
	info := detInfo(sqltypes.KindString, cek)
	expr := Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
	prog, _ := Compile("det", expr, []EncInfo{info, info})
	ev, _ := NewEvaluator(prog, nil, nil)
	x := encryptVal(b, key, sqltypes.Str("SMITH"), aecrypto.Deterministic)
	y := encryptVal(b, key, sqltypes.Str("SMITH"), aecrypto.Deterministic)
	in := [][]byte{x, y}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalBool(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnclaveRNDEquality(b *testing.B) {
	cek, key, ring := newCEK(b)
	info := rndEnclaveInfo(sqltypes.KindString, cek)
	expr := Cmp{Op: CmpEQ, L: SlotRef{Slot: 0, Info: info}, R: SlotRef{Slot: 1, Info: info}}
	prog, _ := Compile("rnd", expr, []EncInfo{info, info})
	encl := &fakeEnclave{keys: ring}
	ev, _ := NewEvaluator(prog, nil, encl)
	x := encryptVal(b, key, sqltypes.Str("SMITH"), aecrypto.Randomized)
	y := encryptVal(b, key, sqltypes.Str("SMITH"), aecrypto.Randomized)
	in := [][]byte{x, y}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalBool(in); err != nil {
			b.Fatal(err)
		}
	}
}

// Package aecrypto implements the cell-level cryptography used by Always
// Encrypted: the AEAD_AES_256_CBC_HMAC_SHA_256 authenticated encryption
// algorithm in both its randomized and deterministic variants, the
// HMAC-SHA256 derivation of the encryption/MAC/IV keys from the 32-byte
// column encryption key (CEK) root, and the RSA-OAEP wrapping and RSA-PSS
// signing used for the key hierarchy.
//
// The ciphertext layout matches the shipped SQL Server algorithm:
//
//	version(1) || authentication tag(32) || IV(16) || AES-256-CBC ciphertext
//
// where the authentication tag is HMAC-SHA256 over
// version || IV || ciphertext || versionByteLength.
package aecrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
)

// EncryptionType selects between the two cell encryption schemes of §2.3.
type EncryptionType int

const (
	// Randomized encryption uses AES-CBC with a random IV; it is IND-CPA
	// secure and supports no server-side operations without an enclave.
	Randomized EncryptionType = 1
	// Deterministic encryption derives the IV from the plaintext so equal
	// plaintexts map to equal ciphertexts, enabling equality over ciphertext
	// at the cost of leaking the frequency distribution of the column.
	Deterministic EncryptionType = 2
)

func (t EncryptionType) String() string {
	switch t {
	case Randomized:
		return "RANDOMIZED"
	case Deterministic:
		return "DETERMINISTIC"
	default:
		return fmt.Sprintf("EncryptionType(%d)", int(t))
	}
}

// AlgorithmName is the only cell encryption algorithm supported today; the
// DDL requires it to be spelled out so the scheme remains extensible (§2.2).
const AlgorithmName = "AEAD_AES_256_CBC_HMAC_SHA_256"

const (
	// KeySize is the size in bytes of a column encryption key root.
	KeySize = 32
	// versionByte is the format version of the ciphertext envelope.
	versionByte = 0x01
	blockSize   = aes.BlockSize // 16
	tagSize     = sha256.Size   // 32
	// MinCiphertextSize is the smallest well-formed envelope: a version
	// byte, a tag, an IV and one AES block.
	MinCiphertextSize = 1 + tagSize + blockSize + blockSize
)

// Errors returned by Decrypt and the envelope parsers.
var (
	ErrInvalidCiphertext = errors.New("aecrypto: malformed ciphertext envelope")
	ErrAuthFailed        = errors.New("aecrypto: HMAC validation failed (ciphertext corrupt or wrong key)")
	ErrInvalidKeySize    = errors.New("aecrypto: column encryption key must be 32 bytes")
)

// keyDerivationSalt mirrors the SQL Server derivation strings; the root CEK
// never encrypts data directly, three purpose-bound keys are derived from it.
func keyDerivationSalt(purpose string) []byte {
	s := "Microsoft SQL Server cell " + purpose +
		" key with encryption algorithm:" + AlgorithmName + " and key length:256"
	// SQL Server hashes the UTF-16LE encoding of the derivation string.
	out := make([]byte, 0, len(s)*2)
	for _, r := range s {
		out = append(out, byte(r), byte(r>>8))
	}
	return out
}

func deriveKey(root []byte, purpose string) []byte {
	m := hmac.New(sha256.New, root)
	m.Write(keyDerivationSalt(purpose))
	return m.Sum(nil)
}

// CellKey holds the three derived keys for one CEK root. Deriving once and
// reusing the CellKey amortizes the three HMAC invocations across cells.
type CellKey struct {
	encKey []byte // AES-256 key
	macKey []byte // HMAC-SHA256 key for the authentication tag
	ivKey  []byte // HMAC-SHA256 key for deterministic IVs
}

// NewCellKey derives the encryption, MAC and IV keys from a 32-byte CEK root.
func NewCellKey(root []byte) (*CellKey, error) {
	if len(root) != KeySize {
		return nil, ErrInvalidKeySize
	}
	return &CellKey{
		encKey: deriveKey(root, "encryption"),
		macKey: deriveKey(root, "MAC"),
		ivKey:  deriveKey(root, "IV"),
	}, nil
}

// MustCellKey is NewCellKey for keys known to be well-formed (tests, fixtures).
func MustCellKey(root []byte) *CellKey {
	k, err := NewCellKey(root)
	if err != nil {
		panic(err)
	}
	return k
}

// GenerateKey returns a fresh random 32-byte CEK root.
func GenerateKey() ([]byte, error) {
	k := make([]byte, KeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("aecrypto: generating CEK: %w", err)
	}
	return k, nil
}

// Encrypt seals plaintext under the cell key. For Deterministic the IV is
// HMAC(ivKey, plaintext) truncated to the block size, so equal plaintexts
// yield identical envelopes; for Randomized the IV is drawn from crypto/rand.
// IV generation and consumption live in this one function so the IV's
// provenance is locally provable (enforced by the ivsanity analyzer).
func (k *CellKey) Encrypt(plaintext []byte, typ EncryptionType) ([]byte, error) {
	iv := make([]byte, blockSize)
	switch typ {
	case Deterministic:
		m := hmac.New(sha256.New, k.ivKey)
		m.Write(plaintext)
		copy(iv, m.Sum(nil))
	case Randomized:
		if _, err := rand.Read(iv); err != nil {
			return nil, fmt.Errorf("aecrypto: generating IV: %w", err)
		}
	default:
		return nil, fmt.Errorf("aecrypto: unknown encryption type %d", typ)
	}
	block, err := aes.NewCipher(k.encKey)
	if err != nil {
		return nil, err
	}
	padded := pkcs7Pad(plaintext, blockSize)
	ct := make([]byte, len(padded))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(ct, padded)

	out := make([]byte, 0, 1+tagSize+blockSize+len(ct))
	out = append(out, versionByte)
	out = append(out, make([]byte, tagSize)...) // tag placeholder
	out = append(out, iv...)
	out = append(out, ct...)
	copy(out[1:1+tagSize], k.tag(iv, ct))
	return out, nil
}

// tag computes the authentication tag over version || IV || ciphertext ||
// versionByteLength, exactly as the shipped algorithm does.
func (k *CellKey) tag(iv, ct []byte) []byte {
	m := hmac.New(sha256.New, k.macKey)
	m.Write([]byte{versionByte})
	m.Write(iv)
	m.Write(ct)
	m.Write([]byte{0x01}) // length of the version byte field
	return m.Sum(nil)
}

// Decrypt authenticates and opens an envelope produced by Encrypt. The HMAC
// is verified in constant time before any decryption happens; per §2.3 the
// HMAC is a usability feature that lets clients tell legitimate ciphertext
// from garbage.
func (k *CellKey) Decrypt(envelope []byte) ([]byte, error) {
	if len(envelope) < MinCiphertextSize || envelope[0] != versionByte {
		return nil, ErrInvalidCiphertext
	}
	tag := envelope[1 : 1+tagSize]
	iv := envelope[1+tagSize : 1+tagSize+blockSize]
	ct := envelope[1+tagSize+blockSize:]
	if len(ct)%blockSize != 0 || len(ct) == 0 {
		return nil, ErrInvalidCiphertext
	}
	if subtle.ConstantTimeCompare(tag, k.tag(iv, ct)) != 1 {
		return nil, ErrAuthFailed
	}
	block, err := aes.NewCipher(k.encKey)
	if err != nil {
		return nil, err
	}
	padded := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(padded, ct)
	return pkcs7Unpad(padded, blockSize)
}

// Verify reports whether the envelope is well formed and authenticates under
// the cell key without decrypting it.
func (k *CellKey) Verify(envelope []byte) bool {
	if len(envelope) < MinCiphertextSize || envelope[0] != versionByte {
		return false
	}
	tag := envelope[1 : 1+tagSize]
	iv := envelope[1+tagSize : 1+tagSize+blockSize]
	ct := envelope[1+tagSize+blockSize:]
	if len(ct)%blockSize != 0 || len(ct) == 0 {
		return false
	}
	return subtle.ConstantTimeCompare(tag, k.tag(iv, ct)) == 1
}

// WellFormedCiphertext reports whether the bytes have the structure of a
// ciphertext envelope — version byte, tag, IV, non-empty block-aligned
// ciphertext — without authenticating it (no key needed). The engine uses it
// at write time to reject statements whose parameter encryption metadata went
// stale: a plaintext value bound to an encrypted column is never a
// well-formed envelope, so storing it would corrupt the column.
func WellFormedCiphertext(envelope []byte) bool {
	if len(envelope) < MinCiphertextSize || envelope[0] != versionByte {
		return false
	}
	ct := envelope[1+tagSize+blockSize:]
	return len(ct) > 0 && len(ct)%blockSize == 0
}

// CiphertextLen reports the envelope size produced for a plaintext of n bytes.
func CiphertextLen(n int) int {
	padded := (n/blockSize + 1) * blockSize
	return 1 + tagSize + blockSize + padded
}

func pkcs7Pad(b []byte, size int) []byte {
	n := size - len(b)%size
	out := make([]byte, len(b)+n)
	copy(out, b)
	for i := len(b); i < len(out); i++ {
		out[i] = byte(n)
	}
	return out
}

// pkcs7Unpad validates and strips PKCS#7 padding in constant time with
// respect to the padding CONTENT: the pad length byte, the range check and
// the filler bytes are all folded into a single mask via crypto/subtle, and
// every malformed padding exits through the same single check with the same
// error. Only the (public) total length influences timing. The HMAC check
// in Decrypt runs first, so this is defense in depth against padding-oracle
// shapes rather than a reachable oracle — but the discipline costs nothing
// and the ctcompare analyzer enforces it uniformly.
func pkcs7Unpad(b []byte, size int) ([]byte, error) {
	if len(b) == 0 || len(b)%size != 0 {
		return nil, ErrInvalidCiphertext
	}
	n := int(b[len(b)-1])
	// good stays 1 only if 1 <= n <= size.
	good := subtle.ConstantTimeLessOrEq(1, n) & subtle.ConstantTimeLessOrEq(n, size)
	// Examine the final block unconditionally (len(b) >= size here). The
	// byte at distance i from the end must equal n exactly when i < n; the
	// select ignores bytes outside the claimed pad without branching on n.
	for i := 0; i < size; i++ {
		inPad := subtle.ConstantTimeLessOrEq(i+1, n)
		matches := subtle.ConstantTimeByteEq(b[len(b)-1-i], byte(n))
		good &= subtle.ConstantTimeSelect(inPad, matches, 1)
	}
	if good != 1 {
		return nil, ErrInvalidCiphertext
	}
	return b[:len(b)-n], nil
}

package aecrypto

import (
	"bytes"
	"testing"
)

func TestZeroizeWipes(t *testing.T) {
	b := []byte{1, 2, 3, 4, 5}
	Zeroize(b)
	if !bytes.Equal(b, make([]byte, 5)) {
		t.Fatalf("Zeroize left residue: %v", b)
	}
	Zeroize(nil) // must not panic
}

func TestCellKeyZeroize(t *testing.T) {
	root := bytes.Repeat([]byte{7}, KeySize)
	k, err := NewCellKey(root)
	if err != nil {
		t.Fatal(err)
	}
	env, err := k.Encrypt([]byte("hello"), Randomized)
	if err != nil {
		t.Fatal(err)
	}
	k.Zeroize()
	for _, key := range [][]byte{k.encKey, k.macKey, k.ivKey} {
		if !bytes.Equal(key, make([]byte, len(key))) {
			t.Fatal("derived key not wiped")
		}
	}
	// A wiped key must no longer authenticate envelopes it produced.
	if _, err := k.Decrypt(env); err == nil {
		t.Fatal("Decrypt succeeded after Zeroize")
	}
}

package aecrypto

// Zeroize overwrites b with zeros. It is the repo-wide key-material hygiene
// primitive: every local that receives raw key bytes from GenerateKey,
// deriveKey, UnwrapKey or a provider Unwrap must either transfer ownership
// or pass through Zeroize on every return path (enforced by the keyzero
// analyzer). The loop is recognized by the compiler and lowered to an
// efficient clear; the write is not elided because callers retain the slice.
func Zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Zeroize wipes the three derived keys. After the call the CellKey can no
// longer encrypt or decrypt; use it only when retiring a key (cache
// eviction, enclave teardown).
func (k *CellKey) Zeroize() {
	Zeroize(k.encKey)
	Zeroize(k.macKey)
	Zeroize(k.ivKey)
}

package aecrypto

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
)

// CEKWrapAlgorithm is the only CEK wrapping algorithm supported; the DDL
// requires it to be named explicitly so the scheme stays extensible (§2.2).
const CEKWrapAlgorithm = "RSA_OAEP"

// RSAKeyBits is the modulus size used for column master keys and for the
// signing keys of the attestation chain. 2048 keeps tests fast while
// remaining a realistic deployment size.
const RSAKeyBits = 2048

// GenerateRSAKey creates a fresh RSA private key for CMKs, enclave identity
// keys, and attestation signing keys.
func GenerateRSAKey() (*rsa.PrivateKey, error) {
	key, err := rsa.GenerateKey(rand.Reader, RSAKeyBits)
	if err != nil {
		return nil, fmt.Errorf("aecrypto: generating RSA key: %w", err)
	}
	return key, nil
}

// WrapKey encrypts a CEK root under a column master key with RSA-OAEP
// (SHA-256). The result is the ENCRYPTED_VALUE stored in the CEK metadata.
func WrapKey(cmk *rsa.PublicKey, cek []byte) ([]byte, error) {
	out, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, cmk, cek, nil)
	if err != nil {
		return nil, fmt.Errorf("aecrypto: wrapping CEK: %w", err)
	}
	return out, nil
}

// UnwrapKey decrypts an RSA-OAEP wrapped CEK with the CMK private key. Only
// trusted components (client driver, enclave) ever hold the arguments.
func UnwrapKey(cmk *rsa.PrivateKey, wrapped []byte) ([]byte, error) {
	out, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, cmk, wrapped, nil)
	if err != nil {
		return nil, fmt.Errorf("aecrypto: unwrapping CEK: %w", err)
	}
	return out, nil
}

// Sign produces an RSA-PSS (SHA-256) signature. It is used to sign CMK
// metadata with the CMK itself (so the untrusted server cannot tamper with
// the enclave-computations flag, §2.2), to sign wrapped CEK values, and by
// the attestation chain (§4.2).
func Sign(key *rsa.PrivateKey, message []byte) ([]byte, error) {
	digest := sha256.Sum256(message)
	sig, err := rsa.SignPSS(rand.Reader, key, crypto.SHA256, digest[:], nil)
	if err != nil {
		return nil, fmt.Errorf("aecrypto: signing: %w", err)
	}
	return sig, nil
}

// VerifySignature checks an RSA-PSS (SHA-256) signature.
func VerifySignature(key *rsa.PublicKey, message, sig []byte) error {
	digest := sha256.Sum256(message)
	if err := rsa.VerifyPSS(key, crypto.SHA256, digest[:], sig, nil); err != nil {
		return fmt.Errorf("aecrypto: signature verification failed: %w", err)
	}
	return nil
}

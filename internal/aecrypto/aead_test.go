package aecrypto

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func testKey(t *testing.T) *CellKey {
	t.Helper()
	root, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewCellKey(root)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRoundTripRandomized(t *testing.T) {
	k := testKey(t)
	for _, pt := range [][]byte{nil, {}, []byte("x"), []byte("hello always encrypted"), bytes.Repeat([]byte{0xab}, 4096)} {
		ct, err := k.Encrypt(pt, Randomized)
		if err != nil {
			t.Fatalf("encrypt: %v", err)
		}
		got, err := k.Decrypt(ct)
		if err != nil {
			t.Fatalf("decrypt: %v", err)
		}
		if !bytes.Equal(got, pt) && !(len(got) == 0 && len(pt) == 0) {
			t.Fatalf("roundtrip mismatch: got %q want %q", got, pt)
		}
	}
}

func TestRoundTripDeterministic(t *testing.T) {
	k := testKey(t)
	pt := []byte("social-security-number-123-45-6789")
	ct, err := k.Encrypt(pt, Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("roundtrip mismatch")
	}
}

// TestDeterministicEquality is the Figure 2 property: DET preserves equality
// of whole values, so equal plaintexts produce identical envelopes.
func TestDeterministicEquality(t *testing.T) {
	k := testKey(t)
	a1, _ := k.Encrypt([]byte("Seattle"), Deterministic)
	a2, _ := k.Encrypt([]byte("Seattle"), Deterministic)
	b, _ := k.Encrypt([]byte("Zurich"), Deterministic)
	if !bytes.Equal(a1, a2) {
		t.Fatal("DET: equal plaintexts must produce equal ciphertexts")
	}
	if bytes.Equal(a1, b) {
		t.Fatal("DET: distinct plaintexts must produce distinct ciphertexts")
	}
}

// TestDeterministicWholeValue verifies the §2.3 claim that our DET is more
// secure than AES-ECB: repeating a 16-byte block inside one value must not
// yield repeating ciphertext blocks.
func TestDeterministicWholeValue(t *testing.T) {
	k := testKey(t)
	block := bytes.Repeat([]byte{0x42}, 16)
	pt := append(append([]byte{}, block...), block...) // two identical blocks
	ct, err := k.Encrypt(pt, Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	body := ct[1+tagSize+blockSize:]
	if bytes.Equal(body[:16], body[16:32]) {
		t.Fatal("identical plaintext blocks leaked as identical ciphertext blocks (ECB-like)")
	}
}

func TestRandomizedNondeterminism(t *testing.T) {
	k := testKey(t)
	a, _ := k.Encrypt([]byte("Seattle"), Randomized)
	b, _ := k.Encrypt([]byte("Seattle"), Randomized)
	if bytes.Equal(a, b) {
		t.Fatal("RND: two encryptions of the same plaintext must differ")
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	k := testKey(t)
	ct, _ := k.Encrypt([]byte("payload"), Randomized)
	for _, idx := range []int{0, 1, 1 + tagSize, 1 + tagSize + blockSize, len(ct) - 1} {
		tampered := append([]byte{}, ct...)
		tampered[idx] ^= 0x01
		if _, err := k.Decrypt(tampered); err == nil {
			t.Fatalf("tampering at byte %d was not detected", idx)
		}
	}
}

func TestDecryptRejectsWrongKey(t *testing.T) {
	k1, k2 := testKey(t), testKey(t)
	ct, _ := k1.Encrypt([]byte("payload"), Randomized)
	if _, err := k2.Decrypt(ct); err == nil {
		t.Fatal("decryption under the wrong key must fail authentication")
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	k := testKey(t)
	if _, err := k.Decrypt(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := k.Decrypt([]byte{versionByte}); err == nil {
		t.Fatal("short input accepted")
	}
	garbage := make([]byte, MinCiphertextSize)
	garbage[0] = versionByte
	if _, err := k.Decrypt(garbage); err == nil {
		t.Fatal("unauthenticated garbage accepted (the HMAC usability feature of §2.3)")
	}
}

func TestVerify(t *testing.T) {
	k := testKey(t)
	ct, _ := k.Encrypt([]byte("v"), Deterministic)
	if !k.Verify(ct) {
		t.Fatal("Verify rejected a valid envelope")
	}
	ct[len(ct)-1] ^= 1
	if k.Verify(ct) {
		t.Fatal("Verify accepted a tampered envelope")
	}
}

func TestCiphertextLen(t *testing.T) {
	k := testKey(t)
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 100} {
		pt := make([]byte, n)
		ct, err := k.Encrypt(pt, Randomized)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(ct), CiphertextLen(n); got != want {
			t.Fatalf("CiphertextLen(%d) = %d, actual envelope %d", n, want, got)
		}
	}
}

func TestNewCellKeyRejectsBadSize(t *testing.T) {
	if _, err := NewCellKey(make([]byte, 16)); err == nil {
		t.Fatal("16-byte root accepted")
	}
	if _, err := NewCellKey(nil); err == nil {
		t.Fatal("nil root accepted")
	}
}

func TestDerivedKeysDistinct(t *testing.T) {
	root, _ := GenerateKey()
	k := MustCellKey(root)
	if bytes.Equal(k.encKey, k.macKey) || bytes.Equal(k.encKey, k.ivKey) || bytes.Equal(k.macKey, k.ivKey) {
		t.Fatal("derived keys must be pairwise distinct")
	}
	if bytes.Equal(k.encKey, root) {
		t.Fatal("encryption key must not equal the root CEK")
	}
}

// Property: encrypt/decrypt round-trips for arbitrary byte strings under both
// schemes, and DET is a deterministic function of the plaintext.
func TestQuickRoundTrip(t *testing.T) {
	root, _ := GenerateKey()
	k := MustCellKey(root)
	prop := func(pt []byte, det bool) bool {
		typ := Randomized
		if det {
			typ = Deterministic
		}
		ct, err := k.Encrypt(pt, typ)
		if err != nil {
			return false
		}
		got, err := k.Decrypt(ct)
		if err != nil {
			return false
		}
		if !bytes.Equal(got, pt) && !(len(got) == 0 && len(pt) == 0) {
			return false
		}
		if det {
			ct2, err := k.Encrypt(pt, typ)
			if err != nil || !bytes.Equal(ct, ct2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: PKCS7 pad/unpad is an identity on arbitrary inputs.
func TestQuickPKCS7(t *testing.T) {
	prop := func(b []byte) bool {
		padded := pkcs7Pad(b, blockSize)
		if len(padded)%blockSize != 0 || len(padded) <= len(b) {
			return false
		}
		out, err := pkcs7Unpad(padded, blockSize)
		if err != nil {
			return false
		}
		return bytes.Equal(out, b) || (len(out) == 0 && len(b) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPKCS7UnpadRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 15),
		append(make([]byte, 15), 0x00), // pad length 0
		append(make([]byte, 15), 0x11), // pad length 17 > block
		append(bytes.Repeat([]byte{9}, 15), 0x02),        // inconsistent fill
		{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 2}, // wrong run
	}
	for i, c := range cases {
		if _, err := pkcs7Unpad(c, blockSize); err == nil {
			t.Fatalf("case %d: malformed padding accepted", i)
		}
	}
}

func TestWrapUnwrapCEK(t *testing.T) {
	cmk, err := GenerateRSAKey()
	if err != nil {
		t.Fatal(err)
	}
	cek, _ := GenerateKey()
	wrapped, err := WrapKey(&cmk.PublicKey, cek)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnwrapKey(cmk, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cek) {
		t.Fatal("CEK wrap/unwrap mismatch")
	}
	other, _ := GenerateRSAKey()
	if _, err := UnwrapKey(other, wrapped); err == nil {
		t.Fatal("unwrap under wrong CMK succeeded")
	}
}

func TestSignVerify(t *testing.T) {
	key, err := GenerateRSAKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("CMK metadata: provider=VAULT path=https://vault/keys/k1 enclave=true")
	sig, err := Sign(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySignature(&key.PublicKey, msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := VerifySignature(&key.PublicKey, append(msg, '!'), sig); err == nil {
		t.Fatal("signature verified over altered message")
	}
}

func BenchmarkEncryptRandomized(b *testing.B) {
	root, _ := GenerateKey()
	k := MustCellKey(root)
	pt := make([]byte, 64)
	rand.Read(pt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Encrypt(pt, Randomized); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptDeterministic(b *testing.B) {
	root, _ := GenerateKey()
	k := MustCellKey(root)
	pt := make([]byte, 64)
	rand.Read(pt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Encrypt(pt, Deterministic); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	root, _ := GenerateKey()
	k := MustCellKey(root)
	pt := make([]byte, 64)
	rand.Read(pt)
	ct, _ := k.Encrypt(pt, Randomized)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

package aecrypto

import (
	"bytes"
	"testing"
)

// TestPKCS7UnpadValid checks the round trip through pkcs7Pad for every
// plaintext length spanning several blocks.
func TestPKCS7UnpadValid(t *testing.T) {
	for n := 0; n <= 3*blockSize; n++ {
		pt := bytes.Repeat([]byte{0xAB}, n)
		padded := pkcs7Pad(pt, blockSize)
		if len(padded)%blockSize != 0 {
			t.Fatalf("len %d: pad produced %d bytes", n, len(padded))
		}
		out, err := pkcs7Unpad(padded, blockSize)
		if err != nil {
			t.Fatalf("len %d: unpad: %v", n, err)
		}
		if !bytes.Equal(out, pt) {
			t.Fatalf("len %d: round trip mismatch", n)
		}
	}
}

// TestPKCS7UnpadUniformError asserts the padding-oracle hardening contract:
// every malformed padding — zero length byte, oversized length byte,
// inconsistent filler in any position — fails with the IDENTICAL error
// value, indistinguishable from a bad length, so the error channel carries
// no information about where or how the padding broke.
func TestPKCS7UnpadUniformError(t *testing.T) {
	malformed := [][]byte{
		{},                                      // empty
		bytes.Repeat([]byte{1}, 7),              // not a multiple of the block size
		bytes.Repeat([]byte{0}, 16),             // pad length byte 0
		append(bytes.Repeat([]byte{0}, 15), 17), // pad length > block size
		append(bytes.Repeat([]byte{0}, 15), 255),
	}
	// Every single-position corruption of every valid padding.
	for padLen := 1; padLen <= blockSize; padLen++ {
		valid := pkcs7Pad(bytes.Repeat([]byte{0xCD}, 2*blockSize-padLen), blockSize)
		for i := len(valid) - padLen; i < len(valid)-1; i++ {
			bad := append([]byte(nil), valid...)
			bad[i] ^= 0x01
			malformed = append(malformed, bad)
		}
	}
	for i, b := range malformed {
		out, err := pkcs7Unpad(b, blockSize)
		if err == nil {
			t.Fatalf("case %d (%v): unpad accepted malformed padding (out len %d)", i, b, len(out))
		}
		if err != ErrInvalidCiphertext {
			t.Fatalf("case %d: error %v is distinguishable from ErrInvalidCiphertext", i, err)
		}
	}
}

package aecrypto

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// Golden vectors freeze the on-disk ciphertext format: the key derivation
// strings, the envelope layout and the deterministic IV construction. If
// any of these change, previously written databases stop decrypting — these
// tests make such a change impossible to miss.

// fixedRoot is an arbitrary but fixed 32-byte CEK root.
var fixedRoot = []byte{
	0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
	0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
	0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17,
	0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d, 0x1e, 0x1f,
}

func TestGoldenDerivedKeys(t *testing.T) {
	k := MustCellKey(fixedRoot)
	got := map[string]string{
		"enc": hex.EncodeToString(k.encKey),
		"mac": hex.EncodeToString(k.macKey),
		"iv":  hex.EncodeToString(k.ivKey),
	}
	want := map[string]string{
		"enc": "0d7aeb84974861561020af0fb6b289453f018180ed186d7ad55d5f663c54ec66",
		"mac": "0028dccc3f776469afc2e5864a5fd4824731309f2f7644513e763e7aafe7002d",
		"iv":  "97eb9e1b899591d583de5fcdb5ab6d45a393533ccbecec43fd4d995d8b08d644",
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("derived %s key changed:\n got  %s\n want %s\n(key derivation is part of the storage format)",
				name, got[name], w)
		}
	}
}

func TestGoldenDeterministicCiphertext(t *testing.T) {
	k := MustCellKey(fixedRoot)
	ct, err := k.Encrypt([]byte("Seattle"), Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	want := "01b7caf73a23f66693d06bd99d97a43167caa7c95bd043deb99984e2afe71f0c344598cf5e0e6f7df4b8b9e8225aa4d742798eeed18a5e97b5d57b5d79518a3e2f"
	if got := hex.EncodeToString(ct); got != want {
		t.Fatalf("DET ciphertext changed:\n got  %s\n want %s", got, want)
	}
	// And it round-trips.
	pt, err := k.Decrypt(ct)
	if err != nil || !bytes.Equal(pt, []byte("Seattle")) {
		t.Fatalf("golden roundtrip: %q %v", pt, err)
	}
}

func TestGoldenEnvelopeLayout(t *testing.T) {
	k := MustCellKey(fixedRoot)
	ct, _ := k.Encrypt([]byte("x"), Deterministic)
	if ct[0] != 0x01 {
		t.Fatalf("version byte = %#x", ct[0])
	}
	if len(ct) != 1+32+16+16 {
		t.Fatalf("envelope length = %d, want 65 (version+tag+iv+1 block)", len(ct))
	}
}

package sqltypes

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Int(2), Float(2.0), 0},
		{Float(1.0), Int(2), -1},
		{Str("abc"), Str("abd"), -1},
		{Str("ABC"), Str("abc"), 0}, // case-insensitive collation
		{Bytes([]byte{1, 2}), Bytes([]byte{1, 2, 3}), -1},
		{Bool(false), Bool(true), -1},
		{Datetime(100), Datetime(200), -1},
	}
	for i, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Fatalf("case %d: Compare(%v,%v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Null(), Int(1)); err == nil {
		t.Fatal("NULL comparison must error")
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Fatal("kind mismatch must error")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Str("Zurich"), Str("zurich")) {
		t.Fatal("collation-equal strings must be Equal")
	}
	if Equal(Null(), Null()) {
		t.Fatal("NULL = NULL must be false in SQL semantics")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"BARBARBAR", "BAR%", true},
		{"BARBARBAR", "%BAR", true},
		{"BARBARBAR", "%ARB%", true},
		{"BAR", "B_R", true},
		{"BAR", "B_", false},
		{"BAR", "bar", true}, // case-insensitive
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"ANYTHING", "%", true},
		{"abc", "a%c", true},
		{"ac", "a%c", true},
		{"abd", "a%c", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ippi%", true},
	}
	for i, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Fatalf("case %d: Like(%q,%q) = %v, want %v", i, c.s, c.p, got, c.want)
		}
	}
}

func TestHasPrefixPattern(t *testing.T) {
	if p, ok := HasPrefixPattern("SMITH%"); !ok || p != "SMITH" {
		t.Fatalf("got %q %v", p, ok)
	}
	for _, bad := range []string{"%SMITH", "SM%TH", "SMITH_", "SMITH", "S_ITH%"} {
		if _, ok := HasPrefixPattern(bad); ok {
			t.Fatalf("%q wrongly classified as prefix pattern", bad)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-3.25), Float(1e300), Float(-1e-300),
		Str(""), Str("hello"), Str("MiXeD Case"),
		Bytes(nil), Bytes([]byte{0, 1, 2, 255}),
		Bool(true), Bool(false),
		Datetime(1593561600000000),
		Null(),
	}
	for _, v := range vals {
		got, err := Decode(v.Encode())
		if err != nil {
			t.Fatalf("decode(%v): %v", v, err)
		}
		if v.Kind == KindBytes {
			if !bytes.Equal(got.B, v.B) {
				t.Fatalf("bytes roundtrip: %v vs %v", got, v)
			}
			continue
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("roundtrip: got %#v want %#v", got, v)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		{byte(KindInt), 1, 2, 3},     // short int
		{byte(KindFloat), 1},         // short float
		{byte(KindString), 'a', 'b'}, // missing separator
		{byte(KindBool), 1, 2},       // long bool
		{200, 0},                     // unknown kind
	}
	for i, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Fatalf("case %d: malformed encoding accepted", i)
		}
	}
}

// Property: the encoding is order-preserving within a kind — the heart of
// why ciphertext-free plaintext B+-trees and DET equality both work off the
// same bytes.
func TestQuickEncodingOrderPreserving(t *testing.T) {
	intProp := func(a, b int64) bool {
		c := bytes.Compare(Int(a).Encode(), Int(b).Encode())
		w := cmpInt(a, b)
		return c == w
	}
	if err := quick.Check(intProp, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatalf("int: %v", err)
	}
	floatProp := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c := bytes.Compare(Float(a).Encode(), Float(b).Encode())
		return c == cmpFloat(a, b)
	}
	if err := quick.Check(floatProp, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatalf("float: %v", err)
	}
	// Strings: restrict to NUL-free ASCII (SQL varchar has no embedded NUL).
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(32 + rng.Intn(95))
		}
		return string(b)
	}
	for i := 0; i < 2000; i++ {
		a, b := randStr(), randStr()
		c := bytes.Compare(Str(a).Encode(), Str(b).Encode())
		w, err := Compare(Str(a), Str(b))
		if err != nil {
			t.Fatal(err)
		}
		if w != 0 && c != w {
			t.Fatalf("string order: %q vs %q encode=%d value=%d", a, b, c, w)
		}
		if w == 0 && Equal(Str(a), Str(b)) != (bytesEqualFold(a, b)) {
			t.Fatalf("string equality mismatch for %q vs %q", a, b)
		}
	}
}

func bytesEqualFold(a, b string) bool { return collate(a) == collate(b) }

// Property: encode/decode identity for random ints and floats.
func TestQuickEncodeDecode(t *testing.T) {
	prop := func(i int64, f float64, bs []byte) bool {
		if v, err := Decode(Int(i).Encode()); err != nil || v.I != i {
			return false
		}
		if !math.IsNaN(f) {
			if v, err := Decode(Float(f).Encode()); err != nil || v.F != f {
				return false
			}
		}
		v, err := Decode(Bytes(bs).Encode())
		if err != nil || !bytes.Equal(v.B, bs) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestKindFromTypeName(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "BIGINT": KindInt, "varchar": KindString,
		"CHAR": KindString, "float": KindFloat, "DECIMAL": KindFloat,
		"datetime": KindDatetime, "BIT": KindBool, "VARBINARY": KindBytes,
	}
	for name, want := range cases {
		got, err := KindFromTypeName(name)
		if err != nil || got != want {
			t.Fatalf("%s: got %v err %v", name, got, err)
		}
	}
	if _, err := KindFromTypeName("GEOGRAPHY"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestValueString(t *testing.T) {
	if Int(42).String() != "42" || Null().String() != "NULL" || Bool(true).String() != "1" {
		t.Fatal("String rendering broken")
	}
}

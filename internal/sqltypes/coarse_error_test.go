package sqltypes

import (
	"errors"
	"strings"
	"testing"
)

// TestDecodeErrorIsCoarse pins the §4.4.1 error-channel contract: Decode and
// Compare operate on decrypted cell values, so their errors must be the bare
// sentinels — no kind bytes, no operand types — or plaintext-derived data
// rides out through the error string (the leak the plaintextflow analyzer
// flags interprocedurally at every Decode call site).
func TestDecodeErrorIsCoarse(t *testing.T) {
	_, err := Decode([]byte{0xEE, 1, 2, 3})
	if !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("want ErrBadEncoding, got %v", err)
	}
	if err.Error() != ErrBadEncoding.Error() {
		t.Fatalf("error carries detail beyond the sentinel: %q", err)
	}
	if strings.Contains(err.Error(), "0xEE") || strings.Contains(err.Error(), "238") {
		t.Fatalf("error leaks the undecodable byte: %q", err)
	}
}

func TestCompareErrorIsCoarse(t *testing.T) {
	_, err := Compare(Str("a"), Bool(true))
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
	if err.Error() != ErrTypeMismatch.Error() {
		t.Fatalf("error carries operand kinds: %q", err)
	}
}

package sqltypes

import (
	"errors"
	"fmt"
)

// EncScheme is the concrete encryption scheme of a column, parameter or
// intermediate value.
type EncScheme uint8

const (
	SchemePlaintext EncScheme = iota
	SchemeDeterministic
	SchemeRandomized
)

func (s EncScheme) String() string {
	switch s {
	case SchemePlaintext:
		return "PLAINTEXT"
	case SchemeDeterministic:
		return "DETERMINISTIC"
	case SchemeRandomized:
		return "RANDOMIZED"
	default:
		return fmt.Sprintf("EncScheme(%d)", uint8(s))
	}
}

// Generalized is a generalized encryption type: a point in the Figure 6
// lattice. Without enclaves there are three points — Plaintext, Deterministic
// and Randomized — ordered Plaintext ≤ Deterministic ≤ Randomized, with
// operations decreasing strictly as we go up. With enclaves the lattice gains
// the enclave-enabled variants, which admit more operations than their
// enclave-disabled counterparts at the same scheme.
type Generalized uint8

const (
	// GenPlaintext admits every operation.
	GenPlaintext Generalized = iota
	// GenDeterministic admits equality over ciphertext (no enclave needed).
	GenDeterministic
	// GenRandomizedEnclave admits equality, range and LIKE via the enclave.
	GenRandomizedEnclave
	// GenRandomized (enclave-disabled) admits no scalar operations; such
	// columns may only be fetched.
	GenRandomized
)

func (g Generalized) String() string {
	switch g {
	case GenPlaintext:
		return "Plaintext"
	case GenDeterministic:
		return "Deterministic"
	case GenRandomizedEnclave:
		return "Randomized(enclave)"
	case GenRandomized:
		return "Randomized"
	default:
		return fmt.Sprintf("Generalized(%d)", uint8(g))
	}
}

// LessEq reports the lattice order g ≤ h (g admits at least the operations h
// admits). The four points form a chain for our purposes.
func (g Generalized) LessEq(h Generalized) bool { return g <= h }

// Meet returns the greatest lower bound: the most permissive type satisfying
// both constraints. On a chain this is simply the minimum.
func (g Generalized) Meet(h Generalized) Generalized {
	if g < h {
		return g
	}
	return h
}

// OpClass classifies scalar operations by the minimum generalized type that
// still admits them.
type OpClass uint8

const (
	// OpEquality: point lookups, equi-joins, equality grouping.
	OpEquality OpClass = iota
	// OpRange: <, >, <=, >=, BETWEEN.
	OpRange
	// OpLike: string pattern matching.
	OpLike
	// OpOrderBy: sorting. Not supported over encrypted columns in AEv2
	// (§5.3 removed ORDER BY C_FIRST from TPC-C for this reason).
	OpOrderBy
)

func (o OpClass) String() string {
	switch o {
	case OpEquality:
		return "equality"
	case OpRange:
		return "range comparison"
	case OpLike:
		return "LIKE"
	case OpOrderBy:
		return "ORDER BY"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(o))
	}
}

// Admits reports whether an operand of generalized type g may participate in
// operation class op, and whether doing so requires the enclave (§2.4.3/4).
func (g Generalized) Admits(op OpClass) (ok, needsEnclave bool) {
	switch g {
	case GenPlaintext:
		return true, false
	case GenDeterministic:
		return op == OpEquality, false
	case GenRandomizedEnclave:
		ok = op == OpEquality || op == OpRange || op == OpLike
		return ok, ok
	default: // GenRandomized
		return false, false
	}
}

// EncType is the full encryption type of an operand: the scheme, the CEK it
// is bound to, and whether that CEK is enclave-enabled. Plaintext operands
// have an empty CEKName.
type EncType struct {
	Scheme         EncScheme
	CEKName        string
	EnclaveEnabled bool
}

// PlaintextType is the encryption type of unencrypted operands.
var PlaintextType = EncType{Scheme: SchemePlaintext}

// Generalized maps the concrete type to its lattice point.
func (t EncType) Generalized() Generalized {
	switch t.Scheme {
	case SchemePlaintext:
		return GenPlaintext
	case SchemeDeterministic:
		return GenDeterministic
	default:
		if t.EnclaveEnabled {
			return GenRandomizedEnclave
		}
		return GenRandomized
	}
}

// IsPlaintext reports whether the operand carries no encryption.
func (t EncType) IsPlaintext() bool { return t.Scheme == SchemePlaintext }

func (t EncType) String() string {
	if t.IsPlaintext() {
		return "PLAINTEXT"
	}
	encl := ""
	if t.EnclaveEnabled {
		encl = ", enclave"
	}
	return fmt.Sprintf("%s(cek=%s%s)", t.Scheme, t.CEKName, encl)
}

// ErrTypeConflict is returned when the constraint system is unsatisfiable —
// e.g. equating operands bound to different CEKs, or applying an operation
// that the column's scheme does not admit.
var ErrTypeConflict = errors.New("sqltypes: encryption type constraint conflict")

// Deduction is the Union–Find based encryption type deduction of §4.3. The
// binder registers operands (columns with known types, parameters with
// unknown types), adds equality constraints for predicates like `col = @v`,
// and upper-bound (inequality) constraints for the operations that appear;
// Solve assigns every operand a concrete type, preferring Plaintext when the
// system is under-constrained.
type Deduction struct {
	parent []int
	rank   []int
	// per-class state, kept at the class representative
	bound []Generalized // upper bound in the lattice
	known []*EncType    // concrete binding, if any member had a known type
	names []string      // operand name for error messages
	// enclaveCEKs accumulates the set of CEKs that must be installed in the
	// enclave for query processing (the driver ships exactly these, §4.3).
	enclaveCEKs map[string]bool
}

// NewDeduction returns an empty constraint system.
func NewDeduction() *Deduction {
	return &Deduction{enclaveCEKs: make(map[string]bool)}
}

// AddOperand registers an operand with an unknown encryption type (a
// parameter or variable) and returns its handle. The initial constraint is
// τ ≤ Randomized — i.e. no information (Example 4.2).
func (d *Deduction) AddOperand(name string) int {
	return d.add(name, GenRandomized, nil)
}

// AddKnown registers an operand whose encryption type is known from metadata
// (a column reference).
func (d *Deduction) AddKnown(name string, t EncType) int {
	tc := t
	return d.add(name, t.Generalized(), &tc)
}

func (d *Deduction) add(name string, bound Generalized, known *EncType) int {
	id := len(d.parent)
	d.parent = append(d.parent, id)
	d.rank = append(d.rank, 0)
	d.bound = append(d.bound, bound)
	d.known = append(d.known, known)
	d.names = append(d.names, name)
	return id
}

func (d *Deduction) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// RequireEqual adds the constraint that two operands have the same encryption
// type (required for both operands of any comparison, with or without
// enclaves). It merges the two Union–Find classes, failing if their concrete
// bindings disagree.
func (d *Deduction) RequireEqual(a, b int) error {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return nil
	}
	ka, kb := d.known[ra], d.known[rb]
	if ka != nil && kb != nil && *ka != *kb {
		return fmt.Errorf("%w: %s is %s but %s is %s", ErrTypeConflict,
			d.names[ra], *ka, d.names[rb], *kb)
	}
	merged := d.bound[ra].Meet(d.bound[rb])
	k := ka
	if k == nil {
		k = kb
	}
	if k != nil && !k.Generalized().LessEq(merged) {
		return fmt.Errorf("%w: %s requires %s but the context admits at most %s",
			ErrTypeConflict, d.names[ra], k.Generalized(), merged)
	}
	// union by rank
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	d.bound[ra] = merged
	d.known[ra] = k
	return nil
}

// RequireOp constrains an operand to participate in operation class op,
// tightening its lattice upper bound. If the operand already has a concrete
// type that does not admit op, the constraint fails — this is how "equality
// on RND without an enclave" or "range on DET" are rejected (§2.4.4 notes
// range indexing is not supported on deterministic columns). When the
// resolved type needs the enclave, its CEK is recorded for shipment.
func (d *Deduction) RequireOp(x int, op OpClass) error {
	r := d.find(x)
	if k := d.known[r]; k != nil {
		ok, needsEnclave := k.Generalized().Admits(op)
		if !ok {
			return fmt.Errorf("%w: %s over %s is not supported", ErrTypeConflict, op, *k)
		}
		if needsEnclave {
			d.enclaveCEKs[k.CEKName] = true
		}
		return nil
	}
	// Unknown operand: tighten the bound to the loosest type admitting op.
	var cap Generalized
	switch op {
	case OpEquality:
		cap = GenRandomizedEnclave
	case OpRange, OpLike:
		cap = GenRandomizedEnclave
	default: // OpOrderBy and anything else require plaintext
		cap = GenPlaintext
	}
	d.bound[r] = d.bound[r].Meet(cap)
	return nil
}

// RequirePlaintext constrains an operand to be unencrypted — used for
// operands of arithmetic, aggregation and ORDER BY, none of which AEv2
// supports over ciphertext.
func (d *Deduction) RequirePlaintext(x int) error {
	r := d.find(x)
	if k := d.known[r]; k != nil {
		if !k.IsPlaintext() {
			return fmt.Errorf("%w: %s must be plaintext for this operation", ErrTypeConflict, d.names[r])
		}
		return nil
	}
	d.bound[r] = d.bound[r].Meet(GenPlaintext)
	return nil
}

// Resolve returns the concrete encryption type assigned to operand x. Where
// multiple solutions exist the preference is Plaintext (§4.3).
func (d *Deduction) Resolve(x int) EncType {
	r := d.find(x)
	if k := d.known[r]; k != nil {
		return *k
	}
	return PlaintextType
}

// EnclaveCEKs lists the CEK names needed inside the enclave for this query,
// in no particular order.
func (d *Deduction) EnclaveCEKs() []string {
	out := make([]string, 0, len(d.enclaveCEKs))
	for k := range d.enclaveCEKs {
		out = append(out, k)
	}
	return out
}

// NeedsEnclave reports whether any operation in the query requires enclave
// computation.
func (d *Deduction) NeedsEnclave() bool { return len(d.enclaveCEKs) > 0 }

// Package sqltypes defines the SQL value model shared by the engine, the
// expression services and the client driver, together with the encryption
// type system of §4.3: encryption is an additional attribute of every SQL
// type, generalized encryption types form a lattice (Figure 6), and
// encryption type deduction is solved with a Union–Find constraint system.
package sqltypes

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the supported SQL scalar types.
type Kind uint8

const (
	KindNull     Kind = iota
	KindInt           // 64-bit signed integer (covers INT and BIGINT)
	KindFloat         // double precision
	KindString        // VARCHAR / CHAR / NVARCHAR
	KindBytes         // BINARY / VARBINARY
	KindBool          // BIT
	KindDatetime      // microseconds since epoch
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBytes:
		return "VARBINARY"
	case KindBool:
		return "BIT"
	case KindDatetime:
		return "DATETIME"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromTypeName maps SQL type names from DDL to Kinds.
func KindFromTypeName(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE", "NUMERIC", "DECIMAL", "MONEY":
		return KindFloat, nil
	case "VARCHAR", "CHAR", "NVARCHAR", "NCHAR", "TEXT":
		return KindString, nil
	case "BINARY", "VARBINARY":
		return KindBytes, nil
	case "BIT", "BOOL", "BOOLEAN":
		return KindBool, nil
	case "DATETIME", "DATETIME2", "DATE", "TIMESTAMP":
		return KindDatetime, nil
	default:
		return KindNull, fmt.Errorf("sqltypes: unknown type name %q", name)
	}
}

// Value is a SQL scalar. The zero Value is SQL NULL.
type Value struct {
	Kind  Kind
	I     int64
	F     float64
	S     string
	B     []byte
	Bool_ bool
}

// Constructors.
func Null() Value                 { return Value{} }
func Int(v int64) Value           { return Value{Kind: KindInt, I: v} }
func Float(v float64) Value       { return Value{Kind: KindFloat, F: v} }
func Str(v string) Value          { return Value{Kind: KindString, S: v} }
func Bytes(v []byte) Value        { return Value{Kind: KindBytes, B: v} }
func Bool(v bool) Value           { return Value{Kind: KindBool, Bool_: v} }
func Datetime(micros int64) Value { return Value{Kind: KindDatetime, I: micros} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for result display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBytes:
		return fmt.Sprintf("0x%x", v.B)
	case KindBool:
		if v.Bool_ {
			return "1"
		}
		return "0"
	case KindDatetime:
		return strconv.FormatInt(v.I, 10)
	default:
		return "?"
	}
}

// Errors returned by value operations.
var (
	ErrTypeMismatch = errors.New("sqltypes: operand type mismatch")
	ErrNullCompare  = errors.New("sqltypes: comparison with NULL is unknown")
	ErrBadEncoding  = errors.New("sqltypes: malformed value encoding")
)

// Compare orders two non-NULL values of the same kind: -1, 0 or +1. String
// comparison uses a case-insensitive collation to mirror SQL Server's
// default collations (the enclave "inherits ES's handling of collations",
// §4.4). Comparing NULL or mismatched kinds is an error — the binder is
// responsible for inserting casts.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, ErrNullCompare
	}
	if a.Kind != b.Kind {
		// INT/FLOAT interoperate as in SQL's numeric type family.
		if a.Kind == KindInt && b.Kind == KindFloat {
			return cmpFloat(float64(a.I), b.F), nil
		}
		if a.Kind == KindFloat && b.Kind == KindInt {
			return cmpFloat(a.F, float64(b.I)), nil
		}
		// Coarse on purpose: the kinds describe decrypted operands, and
		// error strings cross the enclave boundary (§4.4.1).
		return 0, ErrTypeMismatch
	}
	switch a.Kind {
	case KindInt, KindDatetime:
		return cmpInt(a.I, b.I), nil
	case KindFloat:
		return cmpFloat(a.F, b.F), nil
	case KindString:
		return strings.Compare(collate(a.S), collate(b.S)), nil
	case KindBytes:
		return bytesCompare(a.B, b.B), nil
	case KindBool:
		x, y := 0, 0
		if a.Bool_ {
			x = 1
		}
		if b.Bool_ {
			y = 1
		}
		return cmpInt(int64(x), int64(y)), nil
	default:
		return 0, ErrTypeMismatch
	}
}

// Equal reports SQL equality of two values (NULL = anything is false).
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// collate folds a string under the simplified case-insensitive collation.
func collate(s string) string { return strings.ToUpper(s) }

// Like evaluates the SQL LIKE predicate with % (any run) and _ (any single
// character) wildcards under the same case-insensitive collation.
func Like(s, pattern string) bool {
	return likeMatch(collate(s), collate(pattern))
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer matching with backtracking on the last %.
	var si, pi int
	star, sMark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && p[pi] == '%':
			star, sMark = pi, si
			pi++
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case star >= 0:
			sMark++
			si = sMark
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// HasPrefixPattern reports whether a LIKE pattern is a pure prefix match
// ("abc%"), which is the class of patterns the engine can evaluate with a
// range-index seek instead of a scan (§3.2: prefix matches via an index
// reveal ordering plus some proximity).
func HasPrefixPattern(pattern string) (prefix string, ok bool) {
	i := strings.IndexAny(pattern, "%_")
	if i < 0 || i != len(pattern)-1 || pattern[i] != '%' {
		return "", false
	}
	return pattern[:i], true
}

// Encode serializes a non-NULL value into the canonical order-preserving
// byte encoding: for values of one kind, bytes.Compare over encodings agrees
// with Compare over values. This single encoding serves three masters: it is
// the plaintext form handed to the cell cipher, the comparison key of
// equality (DET) indexes, and the key order of plaintext B+-trees.
func (v Value) Encode() []byte {
	switch v.Kind {
	case KindNull:
		return nil
	case KindInt, KindDatetime:
		var b [9]byte
		b[0] = byte(v.Kind)
		binary.BigEndian.PutUint64(b[1:], uint64(v.I)^(1<<63))
		return b[:]
	case KindFloat:
		var b [9]byte
		b[0] = byte(v.Kind)
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		binary.BigEndian.PutUint64(b[1:], bits)
		return b[:]
	case KindString:
		folded := collate(v.S)
		out := make([]byte, 1+len(folded)+1+len(v.S))
		out[0] = byte(v.Kind)
		copy(out[1:], folded)
		out[1+len(folded)] = 0
		copy(out[2+len(folded):], v.S)
		return out
	case KindBytes:
		out := make([]byte, 1+len(v.B))
		out[0] = byte(v.Kind)
		copy(out[1:], v.B)
		return out
	case KindBool:
		b := byte(0)
		if v.Bool_ {
			b = 1
		}
		return []byte{byte(v.Kind), b}
	default:
		return nil
	}
}

// Decode parses the canonical encoding back into a Value.
func Decode(b []byte) (Value, error) {
	if len(b) == 0 {
		return Null(), nil
	}
	k := Kind(b[0])
	body := b[1:]
	switch k {
	case KindInt, KindDatetime:
		if len(body) != 8 {
			return Value{}, ErrBadEncoding
		}
		u := binary.BigEndian.Uint64(body) ^ (1 << 63)
		return Value{Kind: k, I: int64(u)}, nil
	case KindFloat:
		if len(body) != 8 {
			return Value{}, ErrBadEncoding
		}
		bits := binary.BigEndian.Uint64(body)
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Float(math.Float64frombits(bits)), nil
	case KindString:
		i := indexByte(body, 0)
		if i < 0 {
			return Value{}, ErrBadEncoding
		}
		return Str(string(body[i+1:])), nil
	case KindBytes:
		out := make([]byte, len(body))
		copy(out, body)
		return Bytes(out), nil
	case KindBool:
		if len(body) != 1 {
			return Value{}, ErrBadEncoding
		}
		return Bool(body[0] != 0), nil
	default:
		// Coarse on purpose: b may be a decrypted cell, and echoing its
		// leading byte into the error would leak plaintext through the
		// error channel (§4.4.1).
		return Value{}, ErrBadEncoding
	}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

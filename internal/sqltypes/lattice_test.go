package sqltypes

import (
	"errors"
	"testing"
	"testing/quick"
)

func detType(cek string) EncType {
	return EncType{Scheme: SchemeDeterministic, CEKName: cek}
}
func rndEnclave(cek string) EncType {
	return EncType{Scheme: SchemeRandomized, CEKName: cek, EnclaveEnabled: true}
}
func rndPlain(cek string) EncType {
	return EncType{Scheme: SchemeRandomized, CEKName: cek}
}

// TestLatticeOrder checks the Figure 6 chain.
func TestLatticeOrder(t *testing.T) {
	if !GenPlaintext.LessEq(GenDeterministic) || !GenDeterministic.LessEq(GenRandomized) {
		t.Fatal("chain order broken")
	}
	if GenRandomized.LessEq(GenPlaintext) {
		t.Fatal("order is not antisymmetric")
	}
	if GenDeterministic.Meet(GenRandomizedEnclave) != GenDeterministic {
		t.Fatal("meet on chain must be min")
	}
}

// Property: Meet is commutative, associative, idempotent, and a lower bound.
func TestQuickMeetLattice(t *testing.T) {
	gen := func(x uint8) Generalized { return Generalized(x % 4) }
	prop := func(a, b, c uint8) bool {
		x, y, z := gen(a), gen(b), gen(c)
		if x.Meet(y) != y.Meet(x) {
			return false
		}
		if x.Meet(y).Meet(z) != x.Meet(y.Meet(z)) {
			return false
		}
		if x.Meet(x) != x {
			return false
		}
		m := x.Meet(y)
		return m.LessEq(x) && m.LessEq(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdmits(t *testing.T) {
	cases := []struct {
		g           Generalized
		op          OpClass
		ok, enclave bool
	}{
		{GenPlaintext, OpEquality, true, false},
		{GenPlaintext, OpOrderBy, true, false},
		{GenDeterministic, OpEquality, true, false},
		{GenDeterministic, OpRange, false, false},
		{GenDeterministic, OpLike, false, false},
		{GenDeterministic, OpOrderBy, false, false},
		{GenRandomizedEnclave, OpEquality, true, true},
		{GenRandomizedEnclave, OpRange, true, true},
		{GenRandomizedEnclave, OpLike, true, true},
		{GenRandomizedEnclave, OpOrderBy, false, false},
		{GenRandomized, OpEquality, false, false},
		{GenRandomized, OpRange, false, false},
	}
	for i, c := range cases {
		ok, encl := c.g.Admits(c.op)
		if ok != c.ok || encl != c.enclave {
			t.Fatalf("case %d: %v.Admits(%v) = (%v,%v), want (%v,%v)",
				i, c.g, c.op, ok, encl, c.ok, c.enclave)
		}
	}
}

// TestExample42 reproduces Example 4.2: `select * from T where value = @v`
// with column value DET-encrypted. The parameter must resolve to the column's
// exact encryption type.
func TestExample42(t *testing.T) {
	d := NewDeduction()
	col := d.AddKnown("T.value", detType("MyCEK"))
	p := d.AddOperand("@v")
	if err := d.RequireOp(col, OpEquality); err != nil {
		t.Fatal(err)
	}
	if err := d.RequireOp(p, OpEquality); err != nil {
		t.Fatal(err)
	}
	if err := d.RequireEqual(col, p); err != nil {
		t.Fatal(err)
	}
	got := d.Resolve(p)
	if got != detType("MyCEK") {
		t.Fatalf("parameter resolved to %v", got)
	}
	if d.NeedsEnclave() {
		t.Fatal("DET equality must not need the enclave")
	}
}

// TestEnclaveEqualityOverRND: with an enclave-enabled key, equality over a
// randomized column is allowed and the CEK is recorded for enclave shipment.
func TestEnclaveEqualityOverRND(t *testing.T) {
	d := NewDeduction()
	col := d.AddKnown("T.value", rndEnclave("MyCEK"))
	p := d.AddOperand("@v")
	if err := d.RequireOp(col, OpEquality); err != nil {
		t.Fatal(err)
	}
	if err := d.RequireEqual(col, p); err != nil {
		t.Fatal(err)
	}
	if got := d.Resolve(p); got != rndEnclave("MyCEK") {
		t.Fatalf("parameter resolved to %v", got)
	}
	if !d.NeedsEnclave() {
		t.Fatal("RND equality must need the enclave")
	}
	if ceks := d.EnclaveCEKs(); len(ceks) != 1 || ceks[0] != "MyCEK" {
		t.Fatalf("enclave CEKs = %v", ceks)
	}
}

// TestRangeOverRNDEnclave: range predicates are admitted on enclave-enabled
// randomized columns but rejected on DET and on enclave-disabled RND.
func TestRangeAdmission(t *testing.T) {
	d := NewDeduction()
	c1 := d.AddKnown("rndE", rndEnclave("K1"))
	if err := d.RequireOp(c1, OpRange); err != nil {
		t.Fatal(err)
	}
	c2 := d.AddKnown("det", detType("K2"))
	if err := d.RequireOp(c2, OpRange); !errors.Is(err, ErrTypeConflict) {
		t.Fatalf("range over DET: err = %v, want conflict", err)
	}
	c3 := d.AddKnown("rnd", rndPlain("K3"))
	if err := d.RequireOp(c3, OpEquality); !errors.Is(err, ErrTypeConflict) {
		t.Fatalf("equality over enclave-disabled RND: err = %v, want conflict", err)
	}
}

// TestOrderByRejectedOverEncrypted: ORDER BY requires plaintext in AEv2.
func TestOrderByRejectedOverEncrypted(t *testing.T) {
	d := NewDeduction()
	c := d.AddKnown("c", rndEnclave("K"))
	if err := d.RequireOp(c, OpOrderBy); !errors.Is(err, ErrTypeConflict) {
		t.Fatalf("err = %v, want conflict", err)
	}
	p := d.AddKnown("p", PlaintextType)
	if err := d.RequireOp(p, OpOrderBy); err != nil {
		t.Fatal(err)
	}
}

// TestCrossCEKJoinRejected: equating operands bound to different CEKs must
// fail (can't equi-join two columns under different keys).
func TestCrossCEKJoinRejected(t *testing.T) {
	d := NewDeduction()
	a := d.AddKnown("A.c", detType("K1"))
	b := d.AddKnown("B.c", detType("K2"))
	if err := d.RequireEqual(a, b); !errors.Is(err, ErrTypeConflict) {
		t.Fatalf("err = %v, want conflict", err)
	}
}

// TestSameCEKJoinAllowed: equi-join on two DET columns under the same CEK.
func TestSameCEKJoinAllowed(t *testing.T) {
	d := NewDeduction()
	a := d.AddKnown("A.c", detType("K"))
	b := d.AddKnown("B.c", detType("K"))
	if err := d.RequireEqual(a, b); err != nil {
		t.Fatal(err)
	}
}

// TestPlaintextEncryptedMixRejected: comparing a plaintext column with an
// encrypted one is a conflict (the enclave also enforces this at runtime).
func TestPlaintextEncryptedMixRejected(t *testing.T) {
	d := NewDeduction()
	a := d.AddKnown("A.c", PlaintextType)
	b := d.AddKnown("B.c", detType("K"))
	if err := d.RequireEqual(a, b); !errors.Is(err, ErrTypeConflict) {
		t.Fatalf("err = %v, want conflict", err)
	}
}

// TestUnderConstrainedPrefersPlaintext: the §4.3 rule — when the system has
// multiple solutions, solve with Plaintext.
func TestUnderConstrainedPrefersPlaintext(t *testing.T) {
	d := NewDeduction()
	p := d.AddOperand("@v")
	q := d.AddOperand("@w")
	if err := d.RequireEqual(p, q); err != nil {
		t.Fatal(err)
	}
	if got := d.Resolve(p); got != PlaintextType {
		t.Fatalf("resolved to %v, want plaintext", got)
	}
}

// TestTransitiveMerge: @a = col and @a = @b forces @b to the column's type
// through the union.
func TestTransitiveMerge(t *testing.T) {
	d := NewDeduction()
	col := d.AddKnown("T.c", rndEnclave("K"))
	a := d.AddOperand("@a")
	b := d.AddOperand("@b")
	if err := d.RequireEqual(a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.RequireEqual(a, col); err != nil {
		t.Fatal(err)
	}
	if got := d.Resolve(b); got != rndEnclave("K") {
		t.Fatalf("@b resolved to %v", got)
	}
}

// Property: RequireEqual is effectively symmetric and idempotent, and after a
// successful union both operands resolve identically.
func TestQuickUnionFind(t *testing.T) {
	prop := func(pairs []struct{ A, B uint8 }) bool {
		const n = 12
		d := NewDeduction()
		ids := make([]int, n)
		for i := range ids {
			ids[i] = d.AddOperand("op")
		}
		for _, p := range pairs {
			a, b := ids[int(p.A)%n], ids[int(p.B)%n]
			if err := d.RequireEqual(a, b); err != nil {
				return false // no known types, unions can't conflict
			}
			if d.Resolve(a) != d.Resolve(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

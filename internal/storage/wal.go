package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"alwaysencrypted/internal/obs/trace"
)

// RecType enumerates write-ahead log record types. Heap records carry
// physical before/after images (physical redo/undo); index records are
// logical — {key, rowid} pairs whose undo requires navigating the B+-tree,
// which for encrypted range indexes requires enclave comparisons. That split
// is precisely what creates the deferred-transaction problem of §4.5.
type RecType uint8

const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecHeapInsert  // Table, Row, New
	RecHeapDelete  // Table, Row, Old
	RecHeapUpdate  // Table, Row, Old, New (Row may move: NewRow set)
	RecIndexInsert // Index (in Table field), Key, Row
	RecIndexDelete // Index (in Table field), Key, Row
	RecCheckpoint
	RecDDL      // DDL statement text; Row carries the first heap page for CREATE TABLE
	RecAlterEnc // encryption-scheme change for one column (Table, DDL = encoded spec)
	// Bulk-insert fast path: one record carries N rows. The packed payload
	// rides in the New field, so the serialized format is unchanged.
	RecHeapInsertMulti  // Table, Row = first RowID, New = EncodeHeapRows payload
	RecIndexInsertMulti // Index (in Table field), New = EncodeIndexEntries payload
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecHeapInsert:
		return "HEAP-INSERT"
	case RecHeapDelete:
		return "HEAP-DELETE"
	case RecHeapUpdate:
		return "HEAP-UPDATE"
	case RecIndexInsert:
		return "INDEX-INSERT"
	case RecIndexDelete:
		return "INDEX-DELETE"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecDDL:
		return "DDL"
	case RecAlterEnc:
		return "ALTER-ENC"
	case RecHeapInsertMulti:
		return "HEAP-INSERT-MULTI"
	case RecIndexInsertMulti:
		return "INDEX-INSERT-MULTI"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one WAL entry.
type Record struct {
	LSN    uint64
	Txn    uint64
	Type   RecType
	Table  string // table name, or index name for index records
	Row    RowID
	NewRow RowID    // for updates that relocated the row
	Key    [][]byte // index key components
	Old    []byte   // heap before image
	New    []byte   // heap after image
	DDL    string   // statement text for RecDDL / encoded spec for RecAlterEnc
	// CLR marks a compensation log record: an undo action logged during
	// rollback so that replicas can apply undo physically instead of
	// re-deriving it. A CLR heap insert restores into an exact slot
	// (RestoreAt) rather than appending at the tail.
	CLR bool
	// Trace is the trace ID of the statement that produced this record
	// (zero when untraced). It rides replication batches so replica redo
	// apply can link back to the originating statement's trace; it is an
	// opaque random ID — never derived from data — so shipping it leaks
	// nothing beyond "these records belong to one statement", which the
	// txn ID already reveals.
	Trace trace.ID
}

// WAL is the write-ahead log: an append-only record sequence with monotonic
// LSNs. Truncation is gated by a low-water mark that deferred transactions
// pin (§4.5: if the client never supplies keys, log truncation is blocked).
type WAL struct {
	mu      sync.Mutex
	records []Record
	nextLSN uint64
	// pinned holds LSNs that must survive truncation (deferred txn begins).
	pinned map[uint64]uint64 // txn -> begin LSN
	// streams holds per-replica progress: truncation may not pass the next
	// record a connected replica still needs.
	streams map[string]uint64 // replica id -> highest acked LSN
	base    uint64            // LSN of records[0]
	waiter  chan struct{}     // closed (and replaced) on every append

	// Group commit: concurrent committers enqueue under gcMu (rank 5, the
	// outermost storage lock) and one leader drains the queue into a single
	// append+publish round under mu — one lock acquisition and one waiter
	// wake per batch, and correspondingly fatter Follow batches for
	// replication.
	gcMu     sync.Mutex
	gcQueue  []*gcWaiter
	gcLeader bool

	// SyncDelay models the latency of forcing the log to stable media. The
	// in-memory log has no real device, so the cost group commit exists to
	// amortize — one flush round per batch instead of per commit — is
	// invisible unless the model charges it. Zero (the default) keeps the
	// log free, as every functional test expects; the write benchmark sets
	// it to study commit-path batching. Set before use; not synchronized.
	SyncDelay time.Duration

	// syncMu serializes simulated flushes (rank 15): a log device retires
	// one flush at a time, which is exactly why a per-commit flush is a
	// throughput ceiling and a per-batch flush is not.
	syncMu sync.Mutex
}

// gcWaiter is one queued commit append.
type gcWaiter struct {
	rec      Record
	lsn      uint64
	done     chan struct{}
	promoted bool // woken to take over leadership, not to return
}

// NewWAL returns an empty log.
func NewWAL() *WAL {
	return &WAL{nextLSN: 1, pinned: make(map[uint64]uint64), streams: make(map[string]uint64)}
}

// Append adds a record, assigning and returning its LSN.
func (w *WAL) Append(rec Record) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.LSN = w.nextLSN
	w.nextLSN++
	if len(w.records) == 0 {
		w.base = rec.LSN
	}
	w.records = append(w.records, rec)
	w.wakeLocked()
	return rec.LSN
}

// sync charges one stable-media flush round, if the log models one.
// Sub-millisecond delays spin (time.Sleep overshoots by a timer tick, which
// at device scale is the whole budget — the enclave's crossing-cost model
// spins for the same reason); longer delays sleep and yield the CPU, as a
// real driver blocked on a device would.
func (w *WAL) sync() {
	if w.SyncDelay <= 0 {
		return
	}
	w.syncMu.Lock()
	if w.SyncDelay < time.Millisecond {
		for start := time.Now(); time.Since(start) < w.SyncDelay; {
		}
	} else {
		time.Sleep(w.SyncDelay)
	}
	w.syncMu.Unlock()
}

// AppendSync appends a record and forces the log to stable media before
// returning — the ablation commit path, where every committer pays its own
// flush round. DML records go through plain Append: they live in the log
// buffer and are made durable by the commit flush, as in ARIES.
func (w *WAL) AppendSync(rec Record) uint64 {
	lsn := w.Append(rec)
	w.sync()
	return lsn
}

// AppendAt mirrors a record that already carries an LSN assigned elsewhere —
// the replica's local copy of the primary's log. Records whose LSN is below
// the local high-water mark are ignored, which makes replaying an overlapping
// stream after reconnect harmless.
func (w *WAL) AppendAt(rec Record) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rec.LSN < w.nextLSN {
		return
	}
	if len(w.records) == 0 {
		w.base = rec.LSN
	}
	w.records = append(w.records, rec)
	w.nextLSN = rec.LSN + 1
	w.wakeLocked()
}

// AppendCommitGroup appends a commit record through the group-commit
// protocol: the caller enqueues and either becomes the leader — waiting out
// the window, then flushing every queued commit in one append round — or
// blocks until a leader has published its record. The returned LSN is
// assigned only after the record is in the log, so an acknowledged commit is
// always durable at acknowledgment time. window <= 0 coalesces whatever has
// queued behind the previous leader's round without adding latency.
func (w *WAL) AppendCommitGroup(rec Record, window time.Duration) uint64 {
	g := &gcWaiter{rec: rec, done: make(chan struct{})}
	w.gcMu.Lock()
	w.gcQueue = append(w.gcQueue, g)
	lead := !w.gcLeader
	w.gcLeader = true
	w.gcMu.Unlock()

	if !lead {
		<-g.done
		if !g.promoted {
			return g.lsn
		}
		// Promoted: the previous leader retired while this waiter's record
		// was still queued; it takes over the flush (its own record included).
	}
	if window > 0 {
		time.Sleep(window)
	}
	w.gcMu.Lock()
	batch := w.gcQueue
	w.gcQueue = nil
	// gcLeader stays set: commits arriving during the append become
	// followers of this round and are flushed by the next one.
	w.gcMu.Unlock()

	w.mu.Lock()
	for _, m := range batch {
		r := m.rec
		r.LSN = w.nextLSN
		w.nextLSN++
		if len(w.records) == 0 {
			w.base = r.LSN
		}
		w.records = append(w.records, r)
		m.lsn = r.LSN
	}
	w.wakeLocked()
	w.mu.Unlock()

	// One flush round covers the whole batch — the amortization that is the
	// point of the protocol. Commits arriving while the device is busy queue
	// behind this round and ride the next leader's (fatter) batch.
	w.sync()

	w.gcMu.Lock()
	if len(w.gcQueue) > 0 {
		next := w.gcQueue[0]
		next.promoted = true
		close(next.done)
	} else {
		w.gcLeader = false
	}
	w.gcMu.Unlock()

	for _, m := range batch {
		if m != g {
			close(m.done)
		}
	}
	return g.lsn
}

func (w *WAL) wakeLocked() {
	if w.waiter != nil {
		close(w.waiter)
		w.waiter = nil
	}
}

// NextLSN returns the LSN the next appended record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Errors from the streaming reader.
var (
	// ErrLSNTruncated means the requested start LSN has already been
	// truncated away; the follower must re-seed from a full copy.
	ErrLSNTruncated = errors.New("storage: requested LSN already truncated")
	// ErrFollowStopped is returned when the stop channel fires mid-wait.
	ErrFollowStopped = errors.New("storage: follow stopped")
)

// Follow returns up to max records starting at LSN from, blocking until at
// least one is available. If wait > 0 and nothing arrives within it, Follow
// returns an empty batch with a nil error — a heartbeat carrying the current
// next-LSN so followers can measure lag on an idle primary. The second return
// is the log's next LSN at snapshot time.
func (w *WAL) Follow(from uint64, max int, stop <-chan struct{}, wait time.Duration) ([]Record, uint64, error) {
	for {
		w.mu.Lock()
		if from < w.base {
			low := w.base
			w.mu.Unlock()
			return nil, 0, fmt.Errorf("%w: LSN %d < retained base %d", ErrLSNTruncated, from, low)
		}
		if n := len(w.records); n > 0 && from <= w.records[n-1].LSN {
			i := sort.Search(n, func(i int) bool { return w.records[i].LSN >= from })
			end := n
			if max > 0 && i+max < end {
				end = i + max
			}
			out := make([]Record, end-i)
			copy(out, w.records[i:end])
			next := w.nextLSN
			w.mu.Unlock()
			return out, next, nil
		}
		// Caught up: wait for the next append.
		if w.waiter == nil {
			w.waiter = make(chan struct{})
		}
		ch := w.waiter
		next := w.nextLSN
		w.mu.Unlock()

		var timer *time.Timer
		var timeout <-chan time.Time
		if wait > 0 {
			timer = time.NewTimer(wait)
			timeout = timer.C
		}
		select {
		case <-ch:
			if timer != nil {
				timer.Stop()
			}
		case <-stop:
			if timer != nil {
				timer.Stop()
			}
			return nil, next, ErrFollowStopped
		case <-timeout:
			return nil, next, nil
		}
	}
}

// PinStream records a replica's replication progress: records after ack must
// survive truncation while the stream is registered.
func (w *WAL) PinStream(id string, ackLSN uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.streams[id] = ackLSN
}

// UnpinStream drops a replica's hold on the log (replica disconnected; if it
// returns after truncation it must re-seed).
func (w *WAL) UnpinStream(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.streams, id)
}

// MinStreamAck returns the lowest acked LSN across registered streams and
// whether any stream is registered.
func (w *WAL) MinStreamAck() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var min uint64
	found := false
	for _, ack := range w.streams {
		if !found || ack < min {
			min = ack
			found = true
		}
	}
	return min, found
}

// Records returns a snapshot copy of the retained log.
func (w *WAL) Records() []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Record, len(w.records))
	copy(out, w.records)
	return out
}

// Len returns the number of retained records.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.records)
}

// PinTxn marks a transaction's begin LSN as required (deferred transaction).
func (w *WAL) PinTxn(txn, beginLSN uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pinned[txn] = beginLSN
}

// UnpinTxn releases a deferred transaction's hold on the log.
func (w *WAL) UnpinTxn(txn uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.pinned, txn)
}

// ErrTruncationBlocked is returned when deferred transactions pin log space.
var ErrTruncationBlocked = errors.New("storage: log truncation blocked by deferred transactions (§4.5)")

// TruncateBefore drops records with LSN < lsn. It fails if a pinned
// (deferred) transaction still needs older records.
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for txn, begin := range w.pinned {
		if begin < lsn {
			return fmt.Errorf("%w: txn %d pins LSN %d", ErrTruncationBlocked, txn, begin)
		}
	}
	for id, ack := range w.streams {
		if ack+1 < lsn {
			return fmt.Errorf("%w: replica %q acked only LSN %d", ErrTruncationBlocked, id, ack)
		}
	}
	i := 0
	for i < len(w.records) && w.records[i].LSN < lsn {
		i++
	}
	w.records = append([]Record(nil), w.records[i:]...)
	if len(w.records) > 0 {
		w.base = w.records[0].LSN
	} else {
		w.base = w.nextLSN
	}
	return nil
}

// RetainedBytes estimates the log space consumption — the resource that
// index invalidation policies can be keyed on (§4.5).
func (w *WAL) RetainedBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := 0
	for i := range w.records {
		r := &w.records[i]
		total += 64 + len(r.Table) + len(r.Old) + len(r.New)
		for _, k := range r.Key {
			total += len(k)
		}
	}
	return total
}

// Serialize encodes the retained log for durability.
func (w *WAL) Serialize() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	var buf bytes.Buffer
	wU64 := func(v uint64) { binary.Write(&buf, binary.BigEndian, v) }
	wBytes := func(b []byte) { wU64(uint64(len(b))); buf.Write(b) }
	wU64(w.nextLSN)
	wU64(uint64(len(w.records)))
	for i := range w.records {
		r := &w.records[i]
		wU64(r.LSN)
		wU64(r.Txn)
		buf.WriteByte(byte(r.Type))
		wBytes([]byte(r.Table))
		wU64(uint64(r.Row))
		wU64(uint64(r.NewRow))
		wU64(uint64(len(r.Key)))
		for _, k := range r.Key {
			wBytes(k)
		}
		wBytes(r.Old)
		wBytes(r.New)
		wBytes([]byte(r.DDL))
		if r.CLR {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		buf.Write(r.Trace[:])
	}
	return buf.Bytes()
}

// ErrBadWAL reports a corrupt serialized log.
var ErrBadWAL = errors.New("storage: malformed serialized WAL")

// LoadWAL decodes a log produced by Serialize.
func LoadWAL(data []byte) (*WAL, error) {
	r := bytes.NewReader(data)
	rU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(r, binary.BigEndian, &v)
		return v, err
	}
	rBytes := func() ([]byte, error) {
		n, err := rU64()
		if err != nil || n > uint64(r.Len()) {
			return nil, ErrBadWAL
		}
		if n == 0 {
			return nil, nil
		}
		b := make([]byte, n)
		if _, err := r.Read(b); err != nil {
			return nil, ErrBadWAL
		}
		return b, nil
	}
	w := NewWAL()
	next, err := rU64()
	if err != nil {
		return nil, ErrBadWAL
	}
	w.nextLSN = next
	n, err := rU64()
	if err != nil || n > 1<<30 {
		return nil, ErrBadWAL
	}
	for i := uint64(0); i < n; i++ {
		var rec Record
		if rec.LSN, err = rU64(); err != nil {
			return nil, ErrBadWAL
		}
		if rec.Txn, err = rU64(); err != nil {
			return nil, ErrBadWAL
		}
		t := make([]byte, 1)
		if _, err := r.Read(t); err != nil {
			return nil, ErrBadWAL
		}
		rec.Type = RecType(t[0])
		tb, err := rBytes()
		if err != nil {
			return nil, err
		}
		rec.Table = string(tb)
		row, err := rU64()
		if err != nil {
			return nil, ErrBadWAL
		}
		rec.Row = RowID(row)
		nrow, err := rU64()
		if err != nil {
			return nil, ErrBadWAL
		}
		rec.NewRow = RowID(nrow)
		nk, err := rU64()
		if err != nil || nk > 64 {
			return nil, ErrBadWAL
		}
		for j := uint64(0); j < nk; j++ {
			k, err := rBytes()
			if err != nil {
				return nil, err
			}
			rec.Key = append(rec.Key, k)
		}
		if rec.Old, err = rBytes(); err != nil {
			return nil, err
		}
		if rec.New, err = rBytes(); err != nil {
			return nil, err
		}
		ddl, err := rBytes()
		if err != nil {
			return nil, err
		}
		rec.DDL = string(ddl)
		clr := make([]byte, 1)
		if _, err := r.Read(clr); err != nil {
			return nil, ErrBadWAL
		}
		rec.CLR = clr[0] != 0
		if _, err := io.ReadFull(r, rec.Trace[:]); err != nil {
			return nil, ErrBadWAL
		}
		w.records = append(w.records, rec)
	}
	if len(w.records) > 0 {
		w.base = w.records[0].LSN
	}
	return w, nil
}

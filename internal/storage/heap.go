package storage

import (
	"errors"
	"fmt"
	"sync"
)

// Heap is an unordered row file: a chain of slotted pages. Rows are opaque
// byte strings addressed by RowID. Inserts go to the tail page (or any page
// with room found via a simple cursor); updates stay in place when they fit
// and relocate otherwise, returning the new RowID so the caller can fix up
// index entries.
type Heap struct {
	pool *BufferPool

	mu    sync.Mutex
	first PageID
	last  PageID
	rows  int64
}

// ErrRowNotFound is returned for missing or deleted rows.
var ErrRowNotFound = errors.New("storage: row not found")

// NewHeap creates an empty heap with one page.
func NewHeap(pool *BufferPool) (*Heap, error) {
	f, err := pool.NewPage(PageTypeHeap)
	if err != nil {
		return nil, err
	}
	id := f.Page().ID()
	pool.Unpin(f, true)
	return &Heap{pool: pool, first: id, last: id}, nil
}

// NewHeapAt creates an empty heap whose first page is materialized under a
// caller-chosen id — replaying a CREATE TABLE from the log, where the replica
// must reuse the page id the primary allocated.
func NewHeapAt(pool *BufferPool, id PageID) (*Heap, error) {
	f, err := pool.NewPageAt(id, PageTypeHeap)
	if err != nil {
		return nil, err
	}
	pool.Unpin(f, true)
	return &Heap{pool: pool, first: id, last: id}, nil
}

// OpenHeap reattaches to an existing heap chain starting at first,
// recounting rows (used after recovery).
func OpenHeap(pool *BufferPool, first PageID) (*Heap, error) {
	h := &Heap{pool: pool, first: first, last: first}
	id := first
	for id != InvalidPageID {
		f, err := pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		f.Latch.RLock()
		h.rows += int64(len(f.Page().LiveSlots()))
		next := f.Page().Next()
		f.Latch.RUnlock()
		pool.Unpin(f, false)
		h.last = id
		id = next
	}
	return h, nil
}

// FirstPage returns the head of the page chain (persisted in the catalog).
func (h *Heap) FirstPage() PageID { return h.first }

// Rows returns the live row count.
func (h *Heap) Rows() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rows
}

// Insert appends a record and returns its RowID. Placement is deterministic
// given the sequence of operations, which recovery relies on when replaying
// the log onto a fresh heap.
func (h *Heap) Insert(rec []byte) (RowID, error) {
	return h.InsertObserved(rec, nil)
}

// InsertObserved appends a record, invoking observe with the assigned RowID
// *before* the row becomes reachable by concurrent scans (while the page
// write latch — or, for a freshly grown page, the unlinked page — is still
// held). Snapshot readers rely on this: the engine registers the row's
// version-store entry in the observer, so no scan can ever see the new slot
// without its visibility chain already in place. observe must not block and
// may only take locks ranked above Frame.Latch (VersionStore.mu).
func (h *Heap) InsertObserved(rec []byte, observe func(RowID)) (RowID, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrRecordSize
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.insertLocked(rec, observe)
}

// insertLocked is the Insert body, factored out so batch inserts pay for
// the heap mutex once.
func (h *Heap) insertLocked(rec []byte, observe func(RowID)) (RowID, error) {
	f, err := h.pool.Fetch(h.last)
	if err != nil {
		return 0, err
	}
	f.Latch.Lock()
	slot, err := f.Page().Insert(rec)
	if err == nil {
		rid := NewRowID(h.last, slot)
		if observe != nil {
			observe(rid)
		}
		f.Latch.Unlock()
		h.pool.Unpin(f, true)
		h.rows++
		return rid, nil
	}
	f.Latch.Unlock()
	h.pool.Unpin(f, false)
	if !errors.Is(err, ErrPageFull) {
		return 0, err
	}
	// Grow the chain.
	nf, err := h.pool.NewPage(PageTypeHeap)
	if err != nil {
		return 0, err
	}
	newID := nf.Page().ID()
	nf.Latch.Lock()
	slot, err = nf.Page().Insert(rec)
	if err == nil && observe != nil {
		// The page is not linked into the chain yet, but the observer runs
		// before that happens all the same.
		observe(NewRowID(newID, slot))
	}
	nf.Latch.Unlock()
	h.pool.Unpin(nf, true)
	if err != nil {
		return 0, err
	}
	// Link the old tail to the new page.
	of, err := h.pool.Fetch(h.last)
	if err != nil {
		return 0, err
	}
	of.Latch.Lock()
	of.Page().SetNext(newID)
	of.Latch.Unlock()
	h.pool.Unpin(of, true)
	h.last = newID
	h.rows++
	return NewRowID(newID, slot), nil
}

// InsertBatch appends records under one heap-mutex acquisition — the bulk
// insert fast path. observe is invoked per row exactly as in
// InsertObserved. On a mid-batch failure the rows already placed are
// removed again and the error returned; the heap is unchanged.
func (h *Heap) InsertBatch(recs [][]byte, observe func(RowID)) ([]RowID, error) {
	for _, rec := range recs {
		if len(rec) > MaxRecordSize {
			return nil, ErrRecordSize
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	rids := make([]RowID, 0, len(recs))
	for _, rec := range recs {
		rid, err := h.insertLocked(rec, observe)
		if err != nil {
			for _, placed := range rids {
				h.deleteLocked(placed)
			}
			return nil, err
		}
		rids = append(rids, rid)
	}
	return rids, nil
}

// ErrRedoDiverged reports that replaying a logged operation produced a
// different row placement than the log records — the replica's pages no
// longer mirror the primary's and it must re-seed.
var ErrRedoDiverged = errors.New("storage: redo diverged from logged row placement")

// ApplyInsert re-executes the Insert algorithm during log replay, verifying
// that the row lands at the logged RowID. When the primary grew the chain the
// replica materializes the same page id (NewPageAt) instead of allocating, so
// page images stay byte-identical — including the tail-page compaction that a
// failed insert attempt leaves behind.
func (h *Heap) ApplyInsert(rid RowID, rec []byte) error {
	if len(rec) > MaxRecordSize {
		return ErrRecordSize
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	f, err := h.pool.Fetch(h.last)
	if err != nil {
		return err
	}
	f.Latch.Lock()
	slot, err := f.Page().Insert(rec)
	if err == nil {
		got := NewRowID(h.last, slot)
		f.Latch.Unlock()
		h.pool.Unpin(f, true)
		if got != rid {
			return fmt.Errorf("%w: inserted at %v, log says %v", ErrRedoDiverged, got, rid)
		}
		h.rows++
		return nil
	}
	f.Latch.Unlock()
	h.pool.Unpin(f, false)
	if !errors.Is(err, ErrPageFull) {
		return err
	}
	if rid.Page() == h.last {
		return fmt.Errorf("%w: tail page %d full but log places row there", ErrRedoDiverged, h.last)
	}
	nf, err := h.pool.NewPageAt(rid.Page(), PageTypeHeap)
	if err != nil {
		return err
	}
	nf.Latch.Lock()
	slot, err = nf.Page().Insert(rec)
	nf.Latch.Unlock()
	h.pool.Unpin(nf, true)
	if err != nil {
		return err
	}
	if slot != rid.Slot() {
		return fmt.Errorf("%w: fresh page slot %d, log says %d", ErrRedoDiverged, slot, rid.Slot())
	}
	of, err := h.pool.Fetch(h.last)
	if err != nil {
		return err
	}
	of.Latch.Lock()
	of.Page().SetNext(rid.Page())
	of.Latch.Unlock()
	h.pool.Unpin(of, true)
	h.last = rid.Page()
	h.rows++
	return nil
}

// ApplyUpdate re-executes an Update during log replay. An in-place update
// (rid == newRID) must succeed in place; a relocating one re-runs the failed
// in-place attempt first — mirroring the compaction it performs on the
// primary — then deletes and reinserts at the logged destination.
func (h *Heap) ApplyUpdate(rid, newRID RowID, rec []byte) error {
	if len(rec) > MaxRecordSize {
		return ErrRecordSize
	}
	f, err := h.pool.Fetch(rid.Page())
	if err != nil {
		return fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
	f.Latch.Lock()
	uerr := f.Page().Update(rid.Slot(), rec)
	f.Latch.Unlock()
	h.pool.Unpin(f, uerr == nil)
	if rid == newRID {
		if uerr != nil {
			return fmt.Errorf("%w: in-place update failed (%v), log says it fit", ErrRedoDiverged, uerr)
		}
		return nil
	}
	if uerr == nil {
		return fmt.Errorf("%w: update fit in place, log says it relocated to %v", ErrRedoDiverged, newRID)
	}
	if !errors.Is(uerr, ErrPageFull) {
		return fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
	if err := h.Delete(rid); err != nil {
		return err
	}
	return h.ApplyInsert(newRID, rec)
}

// RestoreAt puts a record back into the exact RowID it occupied before a
// delete — physical undo (§4.5: redo and heap undo are physical; only index
// undo is logical). Fails if the slot has been reused, which cannot happen
// while the deleting transaction holds the row lock.
func (h *Heap) RestoreAt(rid RowID, rec []byte) error {
	f, err := h.pool.Fetch(rid.Page())
	if err != nil {
		return fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
	f.Latch.Lock()
	err = f.Page().InsertAt(rid.Slot(), rec)
	f.Latch.Unlock()
	h.pool.Unpin(f, err == nil)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.rows++
	h.mu.Unlock()
	return nil
}

// Get copies the record at rid into a fresh slice.
func (h *Heap) Get(rid RowID) ([]byte, error) {
	f, err := h.pool.Fetch(rid.Page())
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
	f.Latch.RLock()
	rec, err := f.Page().Read(rid.Slot())
	var out []byte
	if err == nil {
		out = append([]byte(nil), rec...)
	}
	f.Latch.RUnlock()
	h.pool.Unpin(f, false)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
	return out, nil
}

// Update rewrites the record at rid. If the record no longer fits in its
// page, it is deleted and reinserted elsewhere; the returned RowID is the
// (possibly new) location.
func (h *Heap) Update(rid RowID, rec []byte) (RowID, error) {
	return h.UpdateObserved(rid, rec, nil)
}

// UpdateObserved is Update with an insert observer: when the row relocates,
// observe fires with the new RowID before the new slot becomes scannable
// (see InsertObserved). In-place updates never invoke it — the caller has
// already versioned the pre-image under the old RowID.
func (h *Heap) UpdateObserved(rid RowID, rec []byte, observe func(RowID)) (RowID, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrRecordSize
	}
	f, err := h.pool.Fetch(rid.Page())
	if err != nil {
		return 0, fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
	f.Latch.Lock()
	err = f.Page().Update(rid.Slot(), rec)
	f.Latch.Unlock()
	switch {
	case err == nil:
		h.pool.Unpin(f, true)
		return rid, nil
	case errors.Is(err, ErrPageFull):
		h.pool.Unpin(f, false)
		if derr := h.Delete(rid); derr != nil {
			return 0, derr
		}
		return h.InsertObserved(rec, observe)
	default:
		h.pool.Unpin(f, false)
		return 0, fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
}

// Delete removes the record at rid.
func (h *Heap) Delete(rid RowID) error {
	if err := h.deletePage(rid); err != nil {
		return err
	}
	h.mu.Lock()
	h.rows--
	h.mu.Unlock()
	return nil
}

// deleteLocked is Delete for callers already holding h.mu (batch rollback).
func (h *Heap) deleteLocked(rid RowID) error {
	if err := h.deletePage(rid); err != nil {
		return err
	}
	h.rows--
	return nil
}

func (h *Heap) deletePage(rid RowID) error {
	f, err := h.pool.Fetch(rid.Page())
	if err != nil {
		return fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
	f.Latch.Lock()
	err = f.Page().Delete(rid.Slot())
	f.Latch.Unlock()
	h.pool.Unpin(f, err == nil)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrRowNotFound, rid)
	}
	return nil
}

// Scan calls fn for each live row in chain order. fn's rec slice aliases
// page memory and must be copied if retained. Returning false stops the scan.
func (h *Heap) Scan(fn func(rid RowID, rec []byte) (bool, error)) error {
	id := h.first
	for id != InvalidPageID {
		f, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		f.Latch.RLock()
		p := f.Page()
		next := p.Next()
		for _, slot := range p.LiveSlots() {
			rec, err := p.Read(slot)
			if err != nil {
				continue
			}
			cont, err := fn(NewRowID(id, slot), rec)
			if err != nil || !cont {
				f.Latch.RUnlock()
				h.pool.Unpin(f, false)
				return err
			}
		}
		f.Latch.RUnlock()
		h.pool.Unpin(f, false)
		id = next
	}
	return nil
}

package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alwaysencrypted/internal/obs"
)

// BufferPool caches pages over a PageStore with LRU eviction. Frames are
// pinned while in use; each frame carries its own latch so concurrent
// readers and writers of different pages do not serialize.
type BufferPool struct {
	store PageStore
	cap   int

	mu     sync.Mutex
	frames map[PageID]*Frame
	lru    *list.List // of *Frame, front = most recently used

	// Registry-backed counters (atomic; readable without b.mu). The pointers
	// are resolved once at construction so the hot path — and evictLocked,
	// which runs under b.mu — never takes the registry's own lock.
	reg     *obs.Registry
	hits    *obs.Counter
	misses  *obs.Counter
	evicts  *obs.Counter
	flushNS *obs.Histogram // per-page write-back latency (evict + checkpoint)
	stallNS *obs.Histogram // per-miss read stall (time blocked in ReadPage)

	// stallTotal accumulates miss-stall nanoseconds (monotonic, atomic).
	// The engine snapshots it around a statement and attributes the delta
	// to the statement's trace — see MissStallNS.
	stallTotal atomic.Int64
}

// Frame is a cached page plus pin/dirty bookkeeping. Latch must be held
// while reading or mutating the page contents.
type Frame struct {
	Latch sync.RWMutex
	page  Page
	id    PageID
	pins  int
	dirty bool
	elem  *list.Element
}

// Page returns the cached page; the caller must hold the frame latch (or be
// the only pinner).
func (f *Frame) Page() *Page { return &f.page }

// ErrPoolExhausted is returned when every frame is pinned and none can be
// evicted to make room.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// NewBufferPool creates a pool of capacity frames over store, reporting into
// a private registry. Use NewBufferPoolObs to share the caller's registry.
func NewBufferPool(store PageStore, capacity int) *BufferPool {
	return NewBufferPoolObs(store, capacity, obs.New("storage"))
}

// NewBufferPoolObs is NewBufferPool with an explicit obs registry, so the
// pool's counters appear in the same snapshot as the rest of the stack.
func NewBufferPoolObs(store PageStore, capacity int, reg *obs.Registry) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	b := &BufferPool{
		store:   store,
		cap:     capacity,
		frames:  make(map[PageID]*Frame, capacity),
		lru:     list.New(),
		reg:     reg,
		hits:    reg.Counter("storage.pool.hits"),
		misses:  reg.Counter("storage.pool.misses"),
		evicts:  reg.Counter("storage.pool.evictions"),
		flushNS: reg.Histogram("storage.pool.flush_ns"),
		stallNS: reg.Histogram("storage.pool.miss_stall_ns"),
	}
	reg.GaugeFunc("storage.pool.frames", func() int64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return int64(len(b.frames))
	})
	return b
}

// Obs returns the registry the pool reports into.
func (b *BufferPool) Obs() *obs.Registry { return b.reg }

// Fetch pins the frame holding the page, reading it from the store on a
// miss. The caller must Unpin it.
func (b *BufferPool) Fetch(id PageID) (*Frame, error) {
	b.mu.Lock()
	if f, ok := b.frames[id]; ok {
		f.pins++
		b.lru.MoveToFront(f.elem)
		b.hits.Inc()
		b.mu.Unlock()
		return f, nil
	}
	b.misses.Inc()
	f, err := b.newFrameLocked(id)
	if err != nil {
		b.mu.Unlock()
		return nil, err
	}
	// Write-latch the frame before publishing it: the frame is already in
	// the map, so a concurrent Fetch can hit it and must block on the latch
	// until the page is loaded. The latch is fresh and the pool lock is
	// held, so this cannot contend or invert the lock order.
	f.Latch.Lock()
	b.mu.Unlock()
	// Read outside the pool lock; the frame is pinned so it cannot vanish.
	// The stall is timed unconditionally (a miss is I/O-bound, one clock
	// read pair is noise): the cumulative total feeds per-statement trace
	// attribution even when histogram timing is switched off.
	start := time.Now()
	err = b.store.ReadPage(id, f.page.Bytes())
	stall := time.Since(start)
	f.Latch.Unlock()
	b.stallTotal.Add(stall.Nanoseconds())
	b.stallNS.Observe(stall.Nanoseconds())
	if err != nil {
		b.mu.Lock()
		f.pins--
		delete(b.frames, id)
		b.lru.Remove(f.elem)
		b.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page in the store, formats it, and returns the
// pinned frame.
func (b *BufferPool) NewPage(pageType uint8) (*Frame, error) {
	id, err := b.store.Allocate()
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	f, err := b.newFrameLocked(id)
	if err != nil {
		b.mu.Unlock()
		return nil, err
	}
	b.mu.Unlock()
	f.page.Init(id, pageType)
	f.dirty = true
	return f, nil
}

// NewPageAt materializes a fresh page under a caller-chosen id — replication
// redo, where the replica must reproduce the primary's page allocations
// exactly rather than ask the allocator for the next free id. The page is
// written through to the store immediately so the store's allocation cursor
// advances past id (MemStore and FileStore both bump their next-page counter
// on out-of-range writes), keeping post-promotion allocations collision-free.
func (b *BufferPool) NewPageAt(id PageID, pageType uint8) (*Frame, error) {
	b.mu.Lock()
	f, err := b.newFrameLocked(id)
	if err != nil {
		b.mu.Unlock()
		return nil, err
	}
	b.mu.Unlock()
	f.page.Init(id, pageType)
	if err := b.store.WritePage(id, f.page.Bytes()); err != nil {
		b.mu.Lock()
		f.pins--
		delete(b.frames, id)
		b.lru.Remove(f.elem)
		b.mu.Unlock()
		return nil, err
	}
	f.dirty = true
	return f, nil
}

// newFrameLocked inserts a pinned frame for id, evicting if needed.
// Called with b.mu held.
func (b *BufferPool) newFrameLocked(id PageID) (*Frame, error) {
	if len(b.frames) >= b.cap {
		if err := b.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, pins: 1}
	f.elem = b.lru.PushFront(f)
	b.frames[id] = f
	return f, nil
}

// evictLocked removes the least recently used unpinned frame, flushing it if
// dirty. Called with b.mu held.
func (b *BufferPool) evictLocked() error {
	for e := b.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			start := b.reg.Now()
			if err := b.store.WritePage(f.id, f.page.Bytes()); err != nil {
				return err
			}
			b.flushNS.ObserveSince(start)
		}
		delete(b.frames, f.id)
		b.lru.Remove(e)
		b.evicts.Inc()
		return nil
	}
	return ErrPoolExhausted
}

// Unpin releases a pin, marking the frame dirty if the caller modified it.
func (b *BufferPool) Unpin(f *Frame, dirty bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
}

// FlushAll writes every dirty frame back to the store (checkpoint).
func (b *BufferPool) FlushAll() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, f := range b.frames {
		if !f.dirty {
			continue
		}
		// Read-latch the frame: a pinned writer may be mutating the page
		// under its write latch without holding the pool lock.
		start := b.reg.Now()
		f.Latch.RLock()
		err := b.store.WritePage(id, f.page.Bytes())
		f.Latch.RUnlock()
		if err != nil {
			return fmt.Errorf("storage: flushing page %d: %w", id, err)
		}
		b.flushNS.ObserveSince(start)
		f.dirty = false
	}
	return nil
}

// Stats reports hit/miss/eviction counters. It is a compatibility shim over
// the obs registry, which is the single source of truth.
func (b *BufferPool) Stats() (hits, misses, evictions uint64) {
	return b.hits.Value(), b.misses.Value(), b.evicts.Value()
}

// MissStallNS returns the cumulative nanoseconds Fetch callers have spent
// blocked reading missed pages from the store. The engine snapshots it
// before and after a statement and attributes the delta to the
// statement's trace. Under concurrent sessions the delta is an upper
// bound (another session's miss lands in whichever statements overlap
// it); exact per-page attribution would mean threading trace state
// through every page access, which the hot path cannot afford.
func (b *BufferPool) MissStallNS() int64 { return b.stallTotal.Load() }

package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// LockManager provides row-granularity exclusive locks with FIFO queuing and
// a wait timeout (the deadlock backstop). Deferred transactions from
// recovery hold their locks indefinitely until resolved — the §4.5
// availability hazard that constant-time recovery mitigates.
type LockManager struct {
	mu    sync.Mutex
	locks map[lockKey]*lockState
	// held tracks each transaction's locks for ReleaseAll.
	held map[uint64]map[lockKey]struct{}

	// Timeout bounds lock waits; zero means a generous default.
	Timeout time.Duration
}

type lockKey struct {
	Table string
	Row   RowID
}

type lockState struct {
	owner   uint64
	waiters []chan struct{}
}

// ErrLockTimeout is returned when a lock wait exceeds the timeout — the
// caller should abort its transaction.
var ErrLockTimeout = errors.New("storage: lock wait timeout (possible deadlock); abort the transaction")

// NewLockManager returns an empty lock table.
func NewLockManager() *LockManager {
	return &LockManager{
		locks:   make(map[lockKey]*lockState),
		held:    make(map[uint64]map[lockKey]struct{}),
		Timeout: 5 * time.Second,
	}
}

// Lock acquires an exclusive lock on (table, row) for txn, blocking until it
// is granted or the timeout fires. Re-acquiring a held lock is a no-op.
func (lm *LockManager) Lock(txn uint64, table string, row RowID) error {
	key := lockKey{Table: table, Row: row}
	lm.mu.Lock()
	st, ok := lm.locks[key]
	if !ok {
		lm.locks[key] = &lockState{owner: txn}
		lm.noteHeld(txn, key)
		lm.mu.Unlock()
		return nil
	}
	if st.owner == txn {
		lm.mu.Unlock()
		return nil
	}
	waiter := make(chan struct{}, 1)
	st.waiters = append(st.waiters, waiter)
	timeout := lm.Timeout
	lm.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-waiter:
		// Granted: ownership was transferred to this waiter under lm.mu.
		lm.mu.Lock()
		lm.locks[key].owner = txn
		lm.noteHeld(txn, key)
		lm.mu.Unlock()
		return nil
	case <-timer.C:
		lm.mu.Lock()
		// Remove our waiter entry; if a grant raced in, accept it.
		st, ok := lm.locks[key]
		if ok {
			for i, w := range st.waiters {
				if w == waiter {
					st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
					lm.mu.Unlock()
					return fmt.Errorf("%w: txn %d on %s%s", ErrLockTimeout, txn, table, row)
				}
			}
		}
		// Grant raced with the timeout: we own the lock now.
		select {
		case <-waiter:
		default:
		}
		if ok {
			st.owner = txn
			lm.noteHeld(txn, key)
			lm.mu.Unlock()
			return nil
		}
		lm.locks[key] = &lockState{owner: txn}
		lm.noteHeld(txn, key)
		lm.mu.Unlock()
		return nil
	}
}

// LockNew acquires locks on freshly allocated rows — rows no other
// transaction can have seen, so no lock can already exist and no waiting
// can occur. One mutex acquisition covers the whole batch, which at
// bulk-insert rates matters. It must NOT be used for pre-existing rows:
// an existing lock entry for any of them (even our own) is a caller bug.
func (lm *LockManager) LockNew(txn uint64, table string, rows []RowID) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	set, ok := lm.held[txn]
	if !ok {
		set = make(map[lockKey]struct{}, len(rows))
		lm.held[txn] = set
	}
	for _, row := range rows {
		key := lockKey{Table: table, Row: row}
		if _, exists := lm.locks[key]; exists {
			return fmt.Errorf("storage: LockNew on contended row %s%s", table, row)
		}
		lm.locks[key] = &lockState{owner: txn}
		set[key] = struct{}{}
	}
	return nil
}

// noteHeld records ownership; called with lm.mu held.
func (lm *LockManager) noteHeld(txn uint64, key lockKey) {
	set, ok := lm.held[txn]
	if !ok {
		set = make(map[lockKey]struct{})
		lm.held[txn] = set
	}
	set[key] = struct{}{}
}

// Unlock releases one lock, granting it to the next FIFO waiter if any.
func (lm *LockManager) Unlock(txn uint64, table string, row RowID) {
	key := lockKey{Table: table, Row: row}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.releaseLocked(txn, key)
}

// ReleaseAll releases every lock held by txn (commit/abort/resolution).
func (lm *LockManager) ReleaseAll(txn uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for key := range lm.held[txn] {
		lm.releaseLocked(txn, key)
	}
	delete(lm.held, txn)
}

func (lm *LockManager) releaseLocked(txn uint64, key lockKey) {
	st, ok := lm.locks[key]
	if !ok || st.owner != txn {
		return
	}
	if set := lm.held[txn]; set != nil {
		delete(set, key)
	}
	if len(st.waiters) == 0 {
		delete(lm.locks, key)
		return
	}
	next := st.waiters[0]
	st.waiters = st.waiters[1:]
	st.owner = 0 // in transfer; the waiter claims it on wake
	next <- struct{}{}
}

// Holder reports the owning transaction of a lock, if held.
func (lm *LockManager) Holder(table string, row RowID) (uint64, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st, ok := lm.locks[lockKey{Table: table, Row: row}]
	if !ok {
		return 0, false
	}
	return st.owner, true
}

// HeldCount reports how many locks txn holds (diagnostics, tests).
func (lm *LockManager) HeldCount(txn uint64) int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.held[txn])
}

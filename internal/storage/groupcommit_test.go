package storage

import (
	"sync"
	"testing"
	"time"
)

// TestGroupCommitConcurrent drives many concurrent committers through
// AppendCommitGroup and checks the fundamental guarantees: every caller
// gets a unique LSN, the LSN is assigned (durable) by return time, and the
// log holds exactly one commit record per caller.
func TestGroupCommitConcurrent(t *testing.T) {
	for _, window := range []time.Duration{0, 200 * time.Microsecond} {
		w := NewWAL()
		const n = 64
		lsns := make([]uint64, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				lsns[i] = w.AppendCommitGroup(Record{Txn: uint64(i + 1), Type: RecCommit}, window)
			}(i)
		}
		wg.Wait()

		seen := make(map[uint64]bool, n)
		for i, lsn := range lsns {
			if lsn == 0 {
				t.Fatalf("window %v: committer %d returned LSN 0", window, i)
			}
			if seen[lsn] {
				t.Fatalf("window %v: duplicate LSN %d", window, lsn)
			}
			seen[lsn] = true
		}
		recs := w.Records()
		if len(recs) != n {
			t.Fatalf("window %v: %d records logged, want %d", window, len(recs), n)
		}
		for _, rec := range recs {
			if rec.Type != RecCommit || !seen[rec.LSN] {
				t.Fatalf("window %v: unexpected record %+v", window, rec)
			}
		}
	}
}

// TestGroupCommitSequential: a lone committer must not deadlock waiting for
// followers that never arrive, with and without a window.
func TestGroupCommitSequential(t *testing.T) {
	w := NewWAL()
	if lsn := w.AppendCommitGroup(Record{Txn: 1, Type: RecCommit}, 0); lsn != 1 {
		t.Fatalf("first commit LSN = %d, want 1", lsn)
	}
	if lsn := w.AppendCommitGroup(Record{Txn: 2, Type: RecCommit}, time.Millisecond); lsn != 2 {
		t.Fatalf("second commit LSN = %d, want 2", lsn)
	}
}

// TestGroupCommitAckAfterAppend: by the time AppendCommitGroup returns, the
// record is visible to Follow readers at the returned LSN — acknowledgment
// implies durability in the log.
func TestGroupCommitAckAfterAppend(t *testing.T) {
	w := NewWAL()
	lsn := w.AppendCommitGroup(Record{Txn: 42, Type: RecCommit}, 0)
	recs, _, err := w.Follow(lsn, 1, nil, 0)
	if err != nil || len(recs) != 1 || recs[0].Txn != 42 {
		t.Fatalf("Follow(%d) = %v recs, err %v", lsn, len(recs), err)
	}
}

// TestSyncDelayCharged: AppendSync pays at least the configured flush
// latency per call, on both the spin (<1ms) and sleep (>=1ms) paths. Only
// lower bounds are asserted — upper bounds flake on loaded machines.
func TestSyncDelayCharged(t *testing.T) {
	for _, delay := range []time.Duration{200 * time.Microsecond, time.Millisecond} {
		w := NewWAL()
		w.SyncDelay = delay
		const n = 4
		start := time.Now()
		for i := 0; i < n; i++ {
			w.AppendSync(Record{Txn: uint64(i + 1), Type: RecCommit})
		}
		if elapsed := time.Since(start); elapsed < n*delay {
			t.Fatalf("delay %v: %d synced appends took %v, want >= %v", delay, n, elapsed, n*delay)
		}
		if got := len(w.Records()); got != n {
			t.Fatalf("delay %v: %d records, want %d", delay, got, n)
		}
	}
}

// TestGroupCommitAmortizesSync: with a slow simulated log device, concurrent
// committers must share flush rounds — total wall time stays far below one
// flush per commit. The generous bound (half the per-commit cost) still
// requires real batching: commits arriving while the device is busy must
// ride a shared round, not each pay their own.
func TestGroupCommitAmortizesSync(t *testing.T) {
	w := NewWAL()
	w.SyncDelay = 2 * time.Millisecond
	const n = 32
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if lsn := w.AppendCommitGroup(Record{Txn: uint64(i + 1), Type: RecCommit}, 0); lsn == 0 {
				t.Errorf("committer %d returned LSN 0", i)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if got := len(w.Records()); got != n {
		t.Fatalf("%d records, want %d", got, n)
	}
	if limit := n * w.SyncDelay / 2; elapsed >= limit {
		t.Fatalf("%d commits took %v — no flush amortization (limit %v)", n, elapsed, limit)
	}
}

// TestGroupCommitInterleavedAppends: group commits interleaved with plain
// appends keep the LSN sequence dense and ordered.
func TestGroupCommitInterleavedAppends(t *testing.T) {
	w := NewWAL()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				w.Append(Record{Txn: uint64(100 + i), Type: RecHeapInsert})
			} else {
				w.AppendCommitGroup(Record{Txn: uint64(100 + i), Type: RecCommit}, 0)
			}
		}(i)
	}
	wg.Wait()
	recs := w.Records()
	if len(recs) != 16 {
		t.Fatalf("%d records, want 16", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want dense sequence", i, rec.LSN)
		}
	}
}

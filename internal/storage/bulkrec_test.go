package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestHeapRowsRoundTrip(t *testing.T) {
	rids := []RowID{3, 9, 1 << 40}
	recs := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-payload")}
	payload := EncodeHeapRows(rids, recs)
	gotRids, gotRecs, err := DecodeHeapRows(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRids) != len(rids) {
		t.Fatalf("decoded %d rows, want %d", len(gotRids), len(rids))
	}
	for i := range rids {
		if gotRids[i] != rids[i] || !bytes.Equal(gotRecs[i], recs[i]) {
			t.Fatalf("row %d: (%d,%q), want (%d,%q)", i, gotRids[i], gotRecs[i], rids[i], recs[i])
		}
	}
}

func TestIndexEntriesRoundTrip(t *testing.T) {
	keys := [][][]byte{
		{[]byte("k1"), []byte("comp2")},
		{[]byte("solo")},
	}
	rids := []RowID{7, 8}
	payload := EncodeIndexEntries(keys, rids)
	gotKeys, gotRids, err := DecodeIndexEntries(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != 2 || gotRids[0] != 7 || gotRids[1] != 8 {
		t.Fatalf("decoded %d entries, rids %v", len(gotKeys), gotRids)
	}
	for i := range keys {
		if len(gotKeys[i]) != len(keys[i]) {
			t.Fatalf("entry %d: %d components, want %d", i, len(gotKeys[i]), len(keys[i]))
		}
		for j := range keys[i] {
			if !bytes.Equal(gotKeys[i][j], keys[i][j]) {
				t.Fatalf("entry %d comp %d: %q, want %q", i, j, gotKeys[i][j], keys[i][j])
			}
		}
	}
}

// TestDecodeBulkMalformed: truncated, overrun and trailing-garbage payloads
// must all surface ErrBadBulkPayload, never panic or misparse.
func TestDecodeBulkMalformed(t *testing.T) {
	heap := EncodeHeapRows([]RowID{1, 2}, [][]byte{[]byte("aa"), []byte("bb")})
	index := EncodeIndexEntries([][][]byte{{[]byte("k")}}, []RowID{1})

	cases := map[string][]byte{
		"heap empty":           {},
		"heap truncated count": heap[:3],
		"heap truncated row":   heap[:len(heap)-1],
		"heap trailing bytes":  append(append([]byte(nil), heap...), 0xFF),
		"index truncated":      index[:len(index)-2],
		"index trailing":       append(append([]byte(nil), index...), 0),
	}
	for name, payload := range cases {
		var err error
		if name[0] == 'h' {
			_, _, err = DecodeHeapRows(payload)
		} else {
			_, _, err = DecodeIndexEntries(payload)
		}
		if !errors.Is(err, ErrBadBulkPayload) {
			t.Fatalf("%s: err = %v, want ErrBadBulkPayload", name, err)
		}
	}
}

package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageStore is the persistence layer under the buffer pool: "disk" in the
// paper's architecture. Implementations must be safe for concurrent use.
type PageStore interface {
	// Allocate reserves a fresh page id.
	Allocate() (PageID, error)
	// ReadPage fills buf (PageSize bytes) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (PageSize bytes) as the page contents.
	WritePage(id PageID, buf []byte) error
	// PageCount reports the number of allocated pages (diagnostics).
	PageCount() int
	// Close releases resources.
	Close() error
}

// ErrNoSuchPage is returned when reading a page that was never written.
var ErrNoSuchPage = errors.New("storage: no such page")

// MemStore is an in-memory PageStore — the default for tests and benchmarks.
type MemStore struct {
	mu    sync.RWMutex
	pages map[PageID][]byte
	next  PageID
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{pages: make(map[PageID][]byte), next: 1}
}

// Allocate implements PageStore.
func (s *MemStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	s.pages[id] = make([]byte, PageSize)
	return id, nil
}

// ReadPage implements PageStore.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	copy(buf, p)
	return nil
}

// WritePage implements PageStore.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		p = make([]byte, PageSize)
		s.pages[id] = p
		if id >= s.next {
			s.next = id + 1
		}
	}
	copy(p, buf)
	return nil
}

// PageCount implements PageStore.
func (s *MemStore) PageCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// Close implements PageStore.
func (s *MemStore) Close() error { return nil }

// FileStore is a file-backed PageStore: page i lives at offset i*PageSize.
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	next PageID
}

// OpenFileStore opens or creates a file-backed store at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening page file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	next := PageID(st.Size()/PageSize) + 1
	return &FileStore{f: f, next: next}, nil
}

// Allocate implements PageStore.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	// Extend the file so reads of fresh pages succeed.
	zero := make([]byte, PageSize)
	if _, err := s.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return 0, err
	}
	return id, nil
}

// ReadPage implements PageStore.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	if _, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("%w: %d: %v", ErrNoSuchPage, id, err)
	}
	return nil
}

// WritePage implements PageStore.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	if id >= s.next {
		s.next = id + 1
	}
	s.mu.Unlock()
	_, err := s.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// PageCount implements PageStore.
func (s *FileStore) PageCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.next) - 1
}

// Close implements PageStore.
func (s *FileStore) Close() error { return s.f.Close() }

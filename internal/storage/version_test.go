package storage

import "testing"

// TestSnapshotVisibility walks the core MVCC rules: an uncommitted change
// overrides to its pre-image, a commit after the snapshot point stays
// invisible, and a commit before the snapshot point falls through to the
// heap image.
func TestSnapshotVisibility(t *testing.T) {
	vs := NewVersionStore()

	// Txn 1 commits an update of row 7 (pre-image "v1") before any reader.
	vs.Record(1, "T", 7, []byte("v1"))
	vs.Commit(1)

	// No snapshot active at commit: the chain evicts immediately, the heap
	// image is authoritative.
	snap := vs.Acquire(0)
	if img, over := snap.RowImage("T", 7); over {
		t.Fatalf("committed+evicted row overridden to %q", img)
	}

	// Txn 2 updates row 7 while snap is open: snap must see the pre-image.
	vs.Record(2, "T", 7, []byte("v2"))
	if img, over := snap.RowImage("T", 7); !over || string(img) != "v2" {
		t.Fatalf("uncommitted change: img=%q over=%v, want v2 override", img, over)
	}
	vs.Commit(2)
	// Committed after the snapshot point: still overridden.
	if img, over := snap.RowImage("T", 7); !over || string(img) != "v2" {
		t.Fatalf("post-snapshot commit: img=%q over=%v, want v2 override", img, over)
	}

	// A fresh snapshot sits above txn 2's commit: heap image authoritative.
	snap2 := vs.Acquire(0)
	if img, over := snap2.RowImage("T", 7); over {
		t.Fatalf("fresh snapshot overridden to %q", img)
	}
	snap2.Release()
	snap.Release()
}

// TestSnapshotReadYourWrites: a transaction's own uncommitted versions are
// skipped so it reads its own changes from the heap.
func TestSnapshotReadYourWrites(t *testing.T) {
	vs := NewVersionStore()
	vs.Record(9, "T", 3, []byte("before"))
	self := vs.Acquire(9)
	defer self.Release()
	if img, over := self.RowImage("T", 3); over {
		t.Fatalf("own write overridden to %q", img)
	}
	other := vs.Acquire(0)
	defer other.Release()
	if img, over := other.RowImage("T", 3); !over || string(img) != "before" {
		t.Fatalf("foreign reader: img=%q over=%v, want before", img, over)
	}
}

// TestSnapshotInsertInvisible: a nil pre-image (row did not exist) resolves
// to an invisible row for snapshots that predate the insert.
func TestSnapshotInsertInvisible(t *testing.T) {
	vs := NewVersionStore()
	snap := vs.Acquire(0)
	defer snap.Release()
	vs.Record(4, "T", 11, nil)
	img, over := snap.RowImage("T", 11)
	if !over || img != nil {
		t.Fatalf("pre-insert snapshot: img=%q over=%v, want nil override", img, over)
	}
}

// TestSnapshotGhosts: a delete the snapshot does not see keeps the row
// reachable through Ghosts, excluding rows the scan already produced.
func TestSnapshotGhosts(t *testing.T) {
	vs := NewVersionStore()
	snap := vs.Acquire(0)
	defer snap.Release()
	vs.Record(5, "T", 1, []byte("gone"))
	vs.Commit(5)

	ghosts := snap.Ghosts("T", nil)
	if len(ghosts) != 1 || ghosts[0].Row != 1 || string(ghosts[0].Data) != "gone" {
		t.Fatalf("ghosts = %+v, want one row 1 image gone", ghosts)
	}
	// A scan that did produce row 1 suppresses the ghost.
	if g := snap.Ghosts("T", func(r RowID) bool { return r == 1 }); len(g) != 0 {
		t.Fatalf("seen row still ghosted: %+v", g)
	}
	// The owning transaction's own delete never ghosts for itself.
	selfSnap := vs.Acquire(5)
	defer selfSnap.Release()
	if g := selfSnap.Ghosts("T", nil); len(g) != 0 {
		t.Fatalf("own delete ghosted: %+v", g)
	}
}

// TestWatermarkEviction: versions a live snapshot still needs survive the
// commit, queue for eviction, and are reclaimed — with the retained-bytes
// gauge returning to zero — once the snapshot releases.
func TestWatermarkEviction(t *testing.T) {
	vs := NewVersionStore()
	snap := vs.Acquire(0)

	vs.Record(6, "T", 2, []byte("pinned-image"))
	vs.Commit(6)
	if vs.Size() != 1 {
		t.Fatalf("size = %d with snapshot pinning, want 1", vs.Size())
	}
	if vs.RetainedBytes() == 0 {
		t.Fatal("retained bytes zero while version pinned")
	}
	if img, over := snap.RowImage("T", 2); !over || string(img) != "pinned-image" {
		t.Fatalf("pinned version unreadable: img=%q over=%v", img, over)
	}

	snap.Release()
	if vs.Size() != 0 {
		t.Fatalf("size = %d after release, want 0", vs.Size())
	}
	if got := vs.RetainedBytes(); got != 0 {
		t.Fatalf("retained bytes = %d after release, want 0", got)
	}
	if vs.TableTouched("T") {
		t.Fatal("TableTouched true after full eviction")
	}
}

// TestCommitEvictsImmediatelyWithoutSnapshots: no active reader means the
// chain dies at commit.
func TestCommitEvictsImmediatelyWithoutSnapshots(t *testing.T) {
	vs := NewVersionStore()
	vs.Record(8, "T", 5, []byte("x"))
	vs.Commit(8)
	if vs.Size() != 0 || vs.RetainedBytes() != 0 {
		t.Fatalf("size=%d retained=%d after snapshot-free commit, want 0/0",
			vs.Size(), vs.RetainedBytes())
	}
}

// TestSnapshotReleaseIdempotent: Release twice must not free versions a
// remaining snapshot still needs.
func TestSnapshotReleaseIdempotent(t *testing.T) {
	vs := NewVersionStore()
	old := vs.Acquire(0)
	dup := vs.Acquire(0)
	vs.Record(3, "T", 9, []byte("held"))
	vs.Commit(3)

	dup.Release()
	dup.Release()
	if vs.ActiveSnapshots() != 1 {
		t.Fatalf("active snapshots = %d, want 1", vs.ActiveSnapshots())
	}
	if vs.Size() != 1 {
		t.Fatalf("double release evicted a pinned version: size = %d", vs.Size())
	}
	if img, over := old.RowImage("T", 9); !over || string(img) != "held" {
		t.Fatalf("old snapshot lost its image: img=%q over=%v", img, over)
	}
	old.Release()
	if vs.Size() != 0 {
		t.Fatalf("size = %d after last release, want 0", vs.Size())
	}
}

// TestDropReclaimsGauge: rollback cleanup returns every byte to the gauge
// and clears the per-table counter.
func TestDropReclaimsGauge(t *testing.T) {
	vs := NewVersionStore()
	vs.Record(2, "T", 1, []byte("aaaa"))
	vs.Record(2, "T", 2, nil)
	vs.Drop(2)
	if vs.Size() != 0 || vs.RetainedBytes() != 0 || vs.TableTouched("T") {
		t.Fatalf("size=%d retained=%d touched=%v after Drop",
			vs.Size(), vs.RetainedBytes(), vs.TableTouched("T"))
	}
}

package storage

import "sync"

// VersionStore implements the persistence side of constant-time recovery
// (CTR, §4.5): before a transaction overwrites or deletes a row, its last
// committed image is versioned here. After a crash, clients immediately see
// the latest committed version with all locks released, while uncommitted
// changes are cleaned in the background — the cleaner keeps retrying work
// that needs enclave keys until a client connects and supplies them.
type VersionStore struct {
	mu       sync.RWMutex
	versions map[verKey][]Version
}

type verKey struct {
	Table string
	Row   RowID
}

// Version is one retained row image.
type Version struct {
	Txn       uint64
	Data      []byte // committed image prior to Txn's change; nil = row did not exist
	Committed bool   // whether Txn itself committed (set at commit)
}

// NewVersionStore returns an empty store.
func NewVersionStore() *VersionStore {
	return &VersionStore{versions: make(map[verKey][]Version)}
}

// Record saves the pre-image of (table, row) before txn modifies it.
func (vs *VersionStore) Record(txn uint64, table string, row RowID, before []byte) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	key := verKey{Table: table, Row: row}
	img := append([]byte(nil), before...)
	if before == nil {
		img = nil
	}
	vs.versions[key] = append(vs.versions[key], Version{Txn: txn, Data: img})
}

// MarkCommitted flags txn's versions as superseded by a committed change;
// the cleaner may then discard them.
func (vs *VersionStore) MarkCommitted(txn uint64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	for key, vers := range vs.versions {
		for i := range vers {
			if vers[i].Txn == txn {
				vers[i].Committed = true
			}
		}
		vs.versions[key] = vers
	}
}

// CommittedImage returns the last committed image of a row that has pending
// uncommitted versions, and whether such a version exists. exists=false
// means the row has no retained versions (its current heap image is the
// committed one).
func (vs *VersionStore) CommittedImage(table string, row RowID) (data []byte, exists bool) {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	vers := vs.versions[verKey{Table: table, Row: row}]
	for i := range vers {
		if !vers[i].Committed {
			// The earliest uncommitted version holds the pre-image the
			// reader should see.
			return vers[i].Data, true
		}
	}
	return nil, false
}

// PendingTxns lists transactions with uncommitted retained versions — the
// version cleaner's work list.
func (vs *VersionStore) PendingTxns() []uint64 {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	seen := make(map[uint64]bool)
	var out []uint64
	for _, vers := range vs.versions {
		for i := range vers {
			if !vers[i].Committed && !seen[vers[i].Txn] {
				seen[vers[i].Txn] = true
				out = append(out, vers[i].Txn)
			}
		}
	}
	return out
}

// Drop discards all versions belonging to txn (cleanup complete).
func (vs *VersionStore) Drop(txn uint64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	for key, vers := range vs.versions {
		kept := vers[:0]
		for i := range vers {
			if vers[i].Txn != txn {
				kept = append(kept, vers[i])
			}
		}
		if len(kept) == 0 {
			delete(vs.versions, key)
		} else {
			vs.versions[key] = kept
		}
	}
}

// Size reports the number of retained versions (diagnostics).
func (vs *VersionStore) Size() int {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	n := 0
	for _, vers := range vs.versions {
		n += len(vers)
	}
	return n
}

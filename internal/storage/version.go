package storage

import (
	"sync"
	"sync/atomic"
)

// VersionStore is the snapshot-visibility store. It started life as the
// persistence side of constant-time recovery (CTR, §4.5) — before a
// transaction overwrites or deletes a row, the last committed image is
// versioned here so post-crash readers immediately see committed data — and
// now doubles as the MVCC substrate for snapshot-isolation reads: every
// version carries its writer's commit timestamp, readers hold a Snapshot
// pinned to a point on the commit clock, and ImageAsOf walks a row's chain
// to the image that snapshot should see. Readers therefore never touch the
// lock manager; write-write conflicts stay on row locks.
//
// Retention is bounded by the oldest active snapshot (the watermark): a
// committed version every live snapshot can already see past is dead weight
// and is evicted — immediately at commit when no snapshot is active, or
// lazily as snapshots release. The images stored here are row encodings
// exactly as the heap holds them: for encrypted columns that is ciphertext,
// so snapshot reads widen nothing in the §3 trust boundary.
type VersionStore struct {
	mu       sync.RWMutex
	versions map[verKey][]Version
	// byTxn indexes each transaction's touched keys so commit stamping and
	// Drop are O(keys touched), not O(store).
	byTxn map[uint64][]verKey
	// clock is the commit timestamp source; a snapshot sees exactly the
	// commits stamped at or below its acquisition reading.
	clock uint64
	// snaps holds the timestamps of active snapshots, keyed by handle id.
	snaps    map[uint64]uint64
	nextSnap uint64
	// evictq holds keys whose freshly committed versions could not be
	// evicted at commit time because a snapshot still needed them.
	evictq []evictEntry
	// retained tracks version payload bytes for the
	// storage.version.retained_bytes gauge.
	retained atomic.Int64
	// perTable counts live versions per table, read lock-free on the scan
	// hot path so tables nobody is writing skip the chain lookup entirely.
	perTable sync.Map // table name -> *atomic.Int64
}

type verKey struct {
	Table string
	Row   RowID
}

type evictEntry struct {
	ts  uint64
	key verKey
}

// Version is one retained row image: the state of the row *before* Txn's
// change. CommitTS is zero while Txn is in flight and the clock reading
// stamped when it commits.
type Version struct {
	Txn      uint64
	Data     []byte // image prior to Txn's change; nil = row did not exist
	CommitTS uint64 // 0 = uncommitted
}

// NewVersionStore returns an empty store.
func NewVersionStore() *VersionStore {
	return &VersionStore{
		versions: make(map[verKey][]Version),
		byTxn:    make(map[uint64][]verKey),
		snaps:    make(map[uint64]uint64),
	}
}

func (vs *VersionStore) tableCounter(table string) *atomic.Int64 {
	if c, ok := vs.perTable.Load(table); ok {
		return c.(*atomic.Int64)
	}
	c, _ := vs.perTable.LoadOrStore(table, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// TableTouched reports, lock-free, whether the table has any retained
// versions. Scans consult it per row; a false answer means the heap image is
// authoritative and no chain lookup is needed.
func (vs *VersionStore) TableTouched(table string) bool {
	c, ok := vs.perTable.Load(table)
	return ok && c.(*atomic.Int64).Load() > 0
}

// Record saves the pre-image of (table, row) before txn modifies it. It may
// be called under a page latch (Heap insert observers register the version
// before the new slot becomes scannable), so VersionStore.mu ranks below
// Frame.Latch in the lock order.
func (vs *VersionStore) Record(txn uint64, table string, row RowID, before []byte) {
	var img []byte
	if before != nil {
		img = append([]byte(nil), before...)
	}
	key := verKey{Table: table, Row: row}
	vs.mu.Lock()
	vs.versions[key] = append(vs.versions[key], Version{Txn: txn, Data: img})
	vs.byTxn[txn] = append(vs.byTxn[txn], key)
	vs.mu.Unlock()
	vs.tableCounter(table).Add(1)
	vs.retained.Add(int64(len(img)) + versionOverhead)
}

// versionOverhead approximates per-version bookkeeping bytes for the
// retained-bytes gauge.
const versionOverhead = 48

// Commit stamps every version txn wrote with a fresh commit timestamp and
// returns it. Versions that no active snapshot can still need are evicted on
// the spot; the rest queue for eviction as snapshots release.
func (vs *VersionStore) Commit(txn uint64) uint64 {
	vs.mu.Lock()
	vs.clock++
	ts := vs.clock
	keys := vs.byTxn[txn]
	delete(vs.byTxn, txn)
	for _, key := range keys {
		chain := vs.versions[key]
		for i := range chain {
			if chain[i].Txn == txn && chain[i].CommitTS == 0 {
				chain[i].CommitTS = ts
			}
		}
	}
	wm := vs.watermarkLocked()
	for _, key := range keys {
		if ts <= wm {
			vs.evictChainLocked(key, wm)
		} else {
			vs.evictq = append(vs.evictq, evictEntry{ts: ts, key: key})
		}
	}
	vs.mu.Unlock()
	return ts
}

// MarkCommitted is the pre-snapshot name for Commit, kept for the CTR
// recovery paths (which stamp and then Drop explicitly).
func (vs *VersionStore) MarkCommitted(txn uint64) { vs.Commit(txn) }

// watermarkLocked returns the highest commit timestamp every reader has
// moved past: the oldest active snapshot's timestamp, or the current clock
// when no snapshot is active.
func (vs *VersionStore) watermarkLocked() uint64 {
	wm := vs.clock
	for _, ts := range vs.snaps {
		if ts < wm {
			wm = ts
		}
	}
	return wm
}

// evictChainLocked drops the committed prefix of a chain that is at or below
// the watermark — versions every snapshot already sees past.
func (vs *VersionStore) evictChainLocked(key verKey, wm uint64) {
	chain := vs.versions[key]
	i := 0
	for i < len(chain) && chain[i].CommitTS != 0 && chain[i].CommitTS <= wm {
		vs.retained.Add(-(int64(len(chain[i].Data)) + versionOverhead))
		i++
	}
	if i == 0 {
		return
	}
	vs.tableCounter(key.Table).Add(int64(-i))
	if i == len(chain) {
		delete(vs.versions, key)
		return
	}
	vs.versions[key] = append([]Version(nil), chain[i:]...)
}

// drainEvictqLocked retries queued evictions now visible below the watermark.
func (vs *VersionStore) drainEvictqLocked() {
	wm := vs.watermarkLocked()
	kept := vs.evictq[:0]
	for _, e := range vs.evictq {
		if e.ts <= wm {
			vs.evictChainLocked(e.key, wm)
		} else {
			kept = append(kept, e)
		}
	}
	vs.evictq = kept
}

// Snapshot is a reader's fixed view of the commit clock. Acquire/Release
// must pair exactly once: a leaked snapshot pins version retention forever,
// a double release can free versions another reader still needs.
type Snapshot struct {
	vs       *VersionStore
	id       uint64
	ts       uint64
	self     uint64 // owning txn: its own uncommitted writes are visible
	released bool
}

// Acquire opens a snapshot at the current commit clock. selfTxn (0 for none)
// names the transaction whose own uncommitted writes the snapshot should see
// — read-your-writes within a transaction.
func (vs *VersionStore) Acquire(selfTxn uint64) *Snapshot {
	vs.mu.Lock()
	vs.nextSnap++
	s := &Snapshot{vs: vs, id: vs.nextSnap, ts: vs.clock, self: selfTxn}
	vs.snaps[s.id] = s.ts
	vs.mu.Unlock()
	return s
}

// TS returns the snapshot's position on the commit clock.
func (s *Snapshot) TS() uint64 { return s.ts }

// Release ends the snapshot, advancing the watermark and evicting versions
// nobody can see anymore.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	vs := s.vs
	vs.mu.Lock()
	delete(vs.snaps, s.id)
	vs.drainEvictqLocked()
	vs.mu.Unlock()
}

// RowImage resolves the snapshot-visible image of a row. overridden=false
// means the current heap image is the one this snapshot should see;
// overridden=true with nil img means the row is invisible (it did not exist
// at the snapshot point); otherwise img is the visible pre-change encoding.
// Callers must consult RowImage *after* reading the heap bytes: writers
// record the pre-image before mutating the page, so heap-then-chain reads
// are always consistent.
func (s *Snapshot) RowImage(table string, row RowID) (img []byte, overridden bool) {
	vs := s.vs
	if !vs.TableTouched(table) {
		return nil, false
	}
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	chain := vs.versions[verKey{Table: table, Row: row}]
	for i := range chain {
		v := &chain[i]
		if v.Txn == s.self {
			continue // own writes are visible; later versions decide
		}
		if v.CommitTS == 0 || v.CommitTS > s.ts {
			// The change is uncommitted or committed after the snapshot:
			// the image before it is what this snapshot sees.
			return v.Data, true
		}
	}
	return nil, false
}

// GhostRow is a row a heap scan can no longer produce (deleted or relocated
// by a change this snapshot does not see) but that is still visible to the
// snapshot through its retained pre-image.
type GhostRow struct {
	Row  RowID
	Data []byte
}

// Ghosts enumerates the table's snapshot-visible rows whose RowID the
// caller's scan did not emit (seen reports those it did). Scans and index
// probes call it after the pass over live rows so deleted-but-visible rows
// still reach the filter.
func (s *Snapshot) Ghosts(table string, seen func(RowID) bool) []GhostRow {
	vs := s.vs
	if !vs.TableTouched(table) {
		return nil
	}
	var out []GhostRow
	vs.mu.RLock()
	for key := range vs.versions {
		if key.Table != table || (seen != nil && seen(key.Row)) {
			continue
		}
		chain := vs.versions[key]
		for i := range chain {
			v := &chain[i]
			if v.Txn == s.self {
				continue
			}
			if v.CommitTS == 0 || v.CommitTS > s.ts {
				if v.Data != nil {
					out = append(out, GhostRow{Row: key.Row, Data: v.Data})
				}
				break
			}
		}
	}
	vs.mu.RUnlock()
	return out
}

// CommittedImage returns the image preceding a row's earliest uncommitted
// version, and whether such a version exists. exists=false means no
// uncommitted writer retains a version for the row (its current heap image
// is the committed one). This is the CTR reader contract, unchanged by the
// snapshot generalization.
func (vs *VersionStore) CommittedImage(table string, row RowID) (data []byte, exists bool) {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	vers := vs.versions[verKey{Table: table, Row: row}]
	for i := range vers {
		if vers[i].CommitTS == 0 {
			return vers[i].Data, true
		}
	}
	return nil, false
}

// PendingTxns lists transactions with uncommitted retained versions — the
// version cleaner's work list.
func (vs *VersionStore) PendingTxns() []uint64 {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	seen := make(map[uint64]bool)
	var out []uint64
	for _, vers := range vs.versions {
		for i := range vers {
			if vers[i].CommitTS == 0 && !seen[vers[i].Txn] {
				seen[vers[i].Txn] = true
				out = append(out, vers[i].Txn)
			}
		}
	}
	return out
}

// Drop discards all versions belonging to txn (rollback or recovery cleanup
// complete).
func (vs *VersionStore) Drop(txn uint64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	delete(vs.byTxn, txn)
	for key, vers := range vs.versions {
		kept := vers[:0]
		removed := 0
		for i := range vers {
			if vers[i].Txn != txn {
				kept = append(kept, vers[i])
			} else {
				vs.retained.Add(-(int64(len(vers[i].Data)) + versionOverhead))
				removed++
			}
		}
		if removed > 0 {
			vs.tableCounter(key.Table).Add(int64(-removed))
		}
		if len(kept) == 0 {
			delete(vs.versions, key)
		} else {
			vs.versions[key] = kept
		}
	}
}

// Size reports the number of retained versions (diagnostics).
func (vs *VersionStore) Size() int {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	n := 0
	for _, vers := range vs.versions {
		n += len(vers)
	}
	return n
}

// RetainedBytes reports the approximate bytes held by retained versions —
// the storage.version.retained_bytes gauge source.
func (vs *VersionStore) RetainedBytes() int64 { return vs.retained.Load() }

// ActiveSnapshots reports how many snapshots are open (diagnostics, tests).
func (vs *VersionStore) ActiveSnapshots() int {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	return len(vs.snaps)
}

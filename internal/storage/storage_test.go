package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPageInsertReadDelete(t *testing.T) {
	var p Page
	p.Init(7, PageTypeHeap)
	if p.ID() != 7 || p.Type() != PageTypeHeap {
		t.Fatal("header broken")
	}
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Read(s1); string(r) != "hello" {
		t.Fatalf("read s1 = %q", r)
	}
	if r, _ := p.Read(s2); string(r) != "world!" {
		t.Fatalf("read s2 = %q", r)
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(s1); !errors.Is(err, ErrSlotDeleted) {
		t.Fatalf("read deleted: %v", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrSlotDeleted) {
		t.Fatalf("double delete: %v", err)
	}
	// Tombstoned slots are never reused by Insert (RowID stability for
	// physical undo); only InsertAt may restore them.
	s3, err := p.Insert([]byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatalf("tombstoned slot %d was reused by Insert", s1)
	}
	if err := p.InsertAt(s1, []byte("restored")); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Read(s1); string(r) != "restored" {
		t.Fatalf("restored slot = %q", r)
	}
	if err := p.InsertAt(s1, []byte("x")); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("InsertAt into occupied slot: %v", err)
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	var p Page
	p.Init(1, PageTypeHeap)
	s, _ := p.Insert([]byte("abcdef"))
	if err := p.Update(s, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Read(s); string(r) != "xy" {
		t.Fatalf("shrunk update = %q", r)
	}
	big := bytes.Repeat([]byte{'z'}, 100)
	if err := p.Update(s, big); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Read(s); !bytes.Equal(r, big) {
		t.Fatal("grown update mismatch")
	}
}

func TestPageFullAndCompaction(t *testing.T) {
	var p Page
	p.Init(1, PageTypeHeap)
	rec := bytes.Repeat([]byte{1}, 1000)
	var slots []int
	for {
		s, err := p.Insert(rec)
		if err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatal(err)
			}
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 7 {
		t.Fatalf("only %d 1000-byte records fit", len(slots))
	}
	// Delete every other record, then inserts must succeed via compaction.
	for i := 0; i < len(slots); i += 2 {
		p.Delete(slots[i])
	}
	for i := 0; i < len(slots)/2; i++ {
		if _, err := p.Insert(rec); err != nil {
			t.Fatalf("insert %d after compaction: %v", i, err)
		}
	}
	// Survivors intact.
	for i := 1; i < len(slots); i += 2 {
		r, err := p.Read(slots[i])
		if err != nil || !bytes.Equal(r, rec) {
			t.Fatalf("survivor %d damaged: %v", slots[i], err)
		}
	}
}

func TestPageRejectsOversizeRecord(t *testing.T) {
	var p Page
	p.Init(1, PageTypeHeap)
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordSize) {
		t.Fatalf("err = %v", err)
	}
}

// Property: a random sequence of insert/delete/update operations maintains
// slot consistency: reads return exactly what was last written.
func TestQuickPageOperations(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p Page
		p.Init(1, PageTypeHeap)
		shadow := make(map[int][]byte)
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0:
				rec := make([]byte, 1+rng.Intn(64))
				rng.Read(rec)
				s, err := p.Insert(rec)
				if err != nil {
					if !errors.Is(err, ErrPageFull) {
						return false
					}
					continue
				}
				if _, exists := shadow[s]; exists {
					return false // reused a live slot
				}
				shadow[s] = append([]byte(nil), rec...)
			case 1:
				for s := range shadow {
					if err := p.Delete(s); err != nil {
						return false
					}
					delete(shadow, s)
					break
				}
			case 2:
				for s := range shadow {
					rec := make([]byte, 1+rng.Intn(64))
					rng.Read(rec)
					if err := p.Update(s, rec); err != nil {
						if errors.Is(err, ErrPageFull) {
							break
						}
						return false
					}
					shadow[s] = append([]byte(nil), rec...)
					break
				}
			}
		}
		for s, want := range shadow {
			got, err := p.Read(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolFetchEvict(t *testing.T) {
	store := NewMemStore()
	pool := NewBufferPool(store, 4)
	var ids []PageID
	for i := 0; i < 10; i++ {
		f, err := pool.NewPage(PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		f.Page().Insert([]byte(fmt.Sprintf("page-%d", i)))
		ids = append(ids, f.Page().ID())
		pool.Unpin(f, true)
	}
	// All pages readable back despite pool cap of 4 (evictions flushed).
	for i, id := range ids {
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := f.Page().Read(0)
		if err != nil || string(rec) != fmt.Sprintf("page-%d", i) {
			t.Fatalf("page %d content: %q err %v", id, rec, err)
		}
		pool.Unpin(f, false)
	}
	_, misses, evictions := pool.Stats()
	if evictions == 0 || misses == 0 {
		t.Fatalf("expected evictions and misses, got %d %d", evictions, misses)
	}
}

func TestBufferPoolExhaustion(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 4)
	var frames []*Frame
	for i := 0; i < 4; i++ {
		f, err := pool.NewPage(PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := pool.NewPage(PageTypeHeap); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v", err)
	}
	pool.Unpin(frames[0], false)
	if _, err := pool.NewPage(PageTypeHeap); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	store, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool(store, 8)
	heap, err := NewHeap(pool)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RowID
	for i := 0; i < 100; i++ {
		rid, err := heap.Insert([]byte(fmt.Sprintf("row-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	first := heap.FirstPage()
	store.Close()

	// Reopen from disk.
	store2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	pool2 := NewBufferPool(store2, 8)
	heap2, err := OpenHeap(pool2, first)
	if err != nil {
		t.Fatal(err)
	}
	if heap2.Rows() != 100 {
		t.Fatalf("rows after reopen = %d", heap2.Rows())
	}
	for i, rid := range rids {
		rec, err := heap2.Get(rid)
		if err != nil || string(rec) != fmt.Sprintf("row-%03d", i) {
			t.Fatalf("row %d: %q err %v", i, rec, err)
		}
	}
}

func TestHeapCRUDAndScan(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 16)
	heap, err := NewHeap(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Insert enough to span multiple pages.
	n := 2000
	rids := make([]RowID, n)
	for i := 0; i < n; i++ {
		rid, err := heap.Insert([]byte(fmt.Sprintf("value-%06d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if heap.Rows() != int64(n) {
		t.Fatalf("rows = %d", heap.Rows())
	}
	// Update with growth forcing relocation.
	big := bytes.Repeat([]byte{'B'}, 500)
	newRID, err := heap.Update(rids[0], big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := heap.Get(newRID)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("relocated row: %v", err)
	}
	// Delete and verify.
	if err := heap.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := heap.Get(rids[1]); !errors.Is(err, ErrRowNotFound) {
		t.Fatalf("get deleted: %v", err)
	}
	// Scan sees n-1 rows (one deleted, one relocated still counted once).
	count := 0
	if err := heap.Scan(func(rid RowID, rec []byte) (bool, error) {
		count++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n-1 {
		t.Fatalf("scan saw %d rows, want %d", count, n-1)
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	pool := NewBufferPool(NewMemStore(), 8)
	heap, _ := NewHeap(pool)
	for i := 0; i < 10; i++ {
		heap.Insert([]byte{byte(i)})
	}
	seen := 0
	heap.Scan(func(rid RowID, rec []byte) (bool, error) {
		seen++
		return seen < 3, nil
	})
	if seen != 3 {
		t.Fatalf("seen = %d", seen)
	}
}

func TestWALAppendTruncatePin(t *testing.T) {
	w := NewWAL()
	l1 := w.Append(Record{Txn: 1, Type: RecBegin})
	w.Append(Record{Txn: 1, Type: RecHeapInsert, Table: "T", New: []byte("x")})
	l3 := w.Append(Record{Txn: 1, Type: RecCommit})
	if l1 != 1 || l3 != 3 || w.Len() != 3 {
		t.Fatalf("lsns %d %d len %d", l1, l3, w.Len())
	}
	// Pin txn 2 at LSN 2 — truncation past it must fail.
	w.PinTxn(2, 2)
	if err := w.TruncateBefore(3); !errors.Is(err, ErrTruncationBlocked) {
		t.Fatalf("err = %v", err)
	}
	w.UnpinTxn(2)
	if err := w.TruncateBefore(3); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 || w.Records()[0].LSN != 3 {
		t.Fatalf("after truncate: len %d", w.Len())
	}
}

func TestWALSerializeRoundTrip(t *testing.T) {
	w := NewWAL()
	w.Append(Record{Txn: 1, Type: RecBegin})
	w.Append(Record{Txn: 1, Type: RecHeapUpdate, Table: "Account", Row: NewRowID(3, 4),
		NewRow: NewRowID(3, 5), Old: []byte("old"), New: []byte("new")})
	w.Append(Record{Txn: 1, Type: RecIndexInsert, Table: "idx", Row: NewRowID(3, 5),
		Key: [][]byte{[]byte("k1"), []byte("k2")}})
	w.Append(Record{Txn: 1, Type: RecCommit})

	got, err := LoadWAL(w.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Records(), got.Records()
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].LSN != b[i].LSN || a[i].Type != b[i].Type || a[i].Table != b[i].Table ||
			a[i].Row != b[i].Row || a[i].NewRow != b[i].NewRow ||
			!bytes.Equal(a[i].Old, b[i].Old) || !bytes.Equal(a[i].New, b[i].New) ||
			len(a[i].Key) != len(b[i].Key) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Truncations of the serialized form are rejected.
	ser := w.Serialize()
	for _, n := range []int{1, 8, 16, len(ser) / 2, len(ser) - 1} {
		if _, err := LoadWAL(ser[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

func TestLockManagerBasics(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Lock(1, "T", NewRowID(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Reentrant.
	if err := lm.Lock(1, "T", NewRowID(1, 1)); err != nil {
		t.Fatal(err)
	}
	if owner, ok := lm.Holder("T", NewRowID(1, 1)); !ok || owner != 1 {
		t.Fatalf("holder = %d %v", owner, ok)
	}
	// Contender blocks, then acquires after release.
	done := make(chan error, 1)
	go func() { done <- lm.Lock(2, "T", NewRowID(1, 1)) }()
	select {
	case <-done:
		t.Fatal("lock granted while held")
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if owner, _ := lm.Holder("T", NewRowID(1, 1)); owner != 2 {
		t.Fatalf("owner = %d", owner)
	}
	lm.ReleaseAll(2)
	if _, held := lm.Holder("T", NewRowID(1, 1)); held {
		t.Fatal("lock still held")
	}
}

func TestLockManagerTimeout(t *testing.T) {
	lm := NewLockManager()
	lm.Timeout = 30 * time.Millisecond
	lm.Lock(1, "T", NewRowID(1, 1))
	if err := lm.Lock(2, "T", NewRowID(1, 1)); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v", err)
	}
	// Owner unaffected.
	if owner, _ := lm.Holder("T", NewRowID(1, 1)); owner != 1 {
		t.Fatalf("owner = %d", owner)
	}
}

func TestLockManagerConcurrentCounter(t *testing.T) {
	lm := NewLockManager()
	row := NewRowID(1, 1)
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(txn uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := lm.Lock(txn, "T", row); err != nil {
					t.Error(err)
					return
				}
				counter++
				lm.Unlock(txn, "T", row)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if counter != 400 {
		t.Fatalf("counter = %d (lost updates)", counter)
	}
}

func TestVersionStoreCTRSemantics(t *testing.T) {
	vs := NewVersionStore()
	row := NewRowID(1, 1)
	// Txn 7 updates the row: pre-image retained.
	vs.Record(7, "Account", row, []byte("balance=100"))
	img, ok := vs.CommittedImage("Account", row)
	if !ok || string(img) != "balance=100" {
		t.Fatalf("committed image = %q %v", img, ok)
	}
	if txns := vs.PendingTxns(); len(txns) != 1 || txns[0] != 7 {
		t.Fatalf("pending = %v", txns)
	}
	// After commit the version is cleanable and readers use the heap image.
	vs.MarkCommitted(7)
	if _, ok := vs.CommittedImage("Account", row); ok {
		t.Fatal("committed txn still pending")
	}
	vs.Drop(7)
	if vs.Size() != 0 {
		t.Fatalf("size = %d", vs.Size())
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 1024)
	heap, _ := NewHeap(pool)
	rec := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heap.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferPoolFetchHit(b *testing.B) {
	pool := NewBufferPool(NewMemStore(), 64)
	f, _ := pool.NewPage(PageTypeHeap)
	id := f.Page().ID()
	pool.Unpin(f, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := pool.Fetch(id)
		if err != nil {
			b.Fatal(err)
		}
		pool.Unpin(f, false)
	}
}

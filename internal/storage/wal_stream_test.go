package storage

import (
	"errors"
	"testing"
	"time"
)

func appendN(w *WAL, n int) {
	for i := 0; i < n; i++ {
		w.Append(Record{Type: RecCheckpoint})
	}
}

func TestFollowBatching(t *testing.T) {
	w := NewWAL()
	appendN(w, 5)

	recs, next, err := w.Follow(1, 2, nil, 0)
	if err != nil || len(recs) != 2 || recs[0].LSN != 1 || recs[1].LSN != 2 {
		t.Fatalf("Follow(1,2) = %v recs, next %d, err %v", len(recs), next, err)
	}
	if next != 6 {
		t.Fatalf("next = %d, want 6", next)
	}
	recs, _, err = w.Follow(3, 100, nil, 0)
	if err != nil || len(recs) != 3 || recs[2].LSN != 5 {
		t.Fatalf("Follow(3,100) = %v recs, err %v", len(recs), err)
	}
}

func TestFollowBlocksUntilAppend(t *testing.T) {
	w := NewWAL()
	appendN(w, 1)
	got := make(chan uint64, 1)
	go func() {
		recs, _, err := w.Follow(2, 10, nil, 0)
		if err != nil || len(recs) == 0 {
			got <- 0
			return
		}
		got <- recs[0].LSN
	}()
	time.Sleep(10 * time.Millisecond)
	w.Append(Record{Type: RecCheckpoint})
	select {
	case lsn := <-got:
		if lsn != 2 {
			t.Fatalf("woke with LSN %d, want 2", lsn)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Follow never woke on append")
	}
}

func TestFollowHeartbeatAndStop(t *testing.T) {
	w := NewWAL()
	appendN(w, 3)

	// Caught up + wait expires: empty batch, nil error, current next-LSN —
	// the heartbeat an idle primary ships for lag measurement.
	recs, next, err := w.Follow(4, 10, nil, 5*time.Millisecond)
	if err != nil || len(recs) != 0 || next != 4 {
		t.Fatalf("heartbeat = %d recs, next %d, err %v", len(recs), next, err)
	}

	stop := make(chan struct{})
	close(stop)
	if _, _, err := w.Follow(4, 10, stop, time.Second); !errors.Is(err, ErrFollowStopped) {
		t.Fatalf("stopped Follow err = %v", err)
	}
}

func TestFollowTruncatedStart(t *testing.T) {
	w := NewWAL()
	appendN(w, 10)
	if err := w.TruncateBefore(6); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Follow(3, 10, nil, 0); !errors.Is(err, ErrLSNTruncated) {
		t.Fatalf("Follow below base err = %v", err)
	}
	// The base itself still streams.
	recs, _, err := w.Follow(6, 10, nil, 0)
	if err != nil || len(recs) != 5 {
		t.Fatalf("Follow(base) = %d recs, err %v", len(recs), err)
	}
}

func TestStreamPinsGateTruncation(t *testing.T) {
	w := NewWAL()
	appendN(w, 10)

	w.PinStream("r1", 3) // r1 has applied through LSN 3
	w.PinStream("r2", 8)
	if min, ok := w.MinStreamAck(); !ok || min != 3 {
		t.Fatalf("MinStreamAck = %d, %v", min, ok)
	}

	// Truncation may drop what every replica has applied (LSN < 4)…
	if err := w.TruncateBefore(4); err != nil {
		t.Fatal(err)
	}
	// …but not records r1 still needs.
	if err := w.TruncateBefore(6); !errors.Is(err, ErrTruncationBlocked) {
		t.Fatalf("truncation past a replica = %v", err)
	}

	// Progress unblocks it; disconnect releases the hold entirely.
	w.PinStream("r1", 9)
	if err := w.TruncateBefore(9); err != nil {
		t.Fatal(err)
	}
	w.UnpinStream("r1")
	w.UnpinStream("r2")
	if _, ok := w.MinStreamAck(); ok {
		t.Fatal("streams still registered after unpin")
	}
	if err := w.TruncateBefore(11); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAtMirrorsAndDedups(t *testing.T) {
	w := NewWAL()
	w.AppendAt(Record{LSN: 5, Type: RecCheckpoint})
	w.AppendAt(Record{LSN: 3, Type: RecCheckpoint}) // below high-water: ignored
	w.AppendAt(Record{LSN: 6, Type: RecCheckpoint})
	if got := w.NextLSN(); got != 7 {
		t.Fatalf("NextLSN = %d, want 7", got)
	}
	recs := w.Records()
	if len(recs) != 2 || recs[0].LSN != 5 || recs[1].LSN != 6 {
		t.Fatalf("records = %+v", recs)
	}
}

package storage

import (
	"testing"

	"alwaysencrypted/internal/obs"
)

// TestBufferPoolObs checks that pool activity lands in the shared registry
// and that Stats() agrees with the registry (it is a shim, not a second set
// of counters).
func TestBufferPoolObs(t *testing.T) {
	reg := obs.New("t")
	pool := NewBufferPoolObs(NewMemStore(), 4, reg)

	var ids []PageID
	for i := 0; i < 8; i++ {
		f, err := pool.NewPage(PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.Page().ID())
		pool.Unpin(f, true)
	}
	for _, id := range ids {
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f, false)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	hits, misses, evictions := pool.Stats()
	if snap.Counters["storage.pool.hits"] != hits ||
		snap.Counters["storage.pool.misses"] != misses ||
		snap.Counters["storage.pool.evictions"] != evictions {
		t.Fatalf("Stats() disagrees with registry: %v vs %+v", []uint64{hits, misses, evictions}, snap.Counters)
	}
	if misses == 0 || evictions == 0 {
		t.Fatalf("expected misses and evictions: hits=%d misses=%d evictions=%d", hits, misses, evictions)
	}
	// Dirty evictions and FlushAll both write pages back; each write must
	// record a flush latency sample.
	if snap.Histograms["storage.pool.flush_ns"].Count == 0 {
		t.Fatal("no flush latency samples recorded")
	}
	if g := snap.Gauges["storage.pool.frames"]; g <= 0 || g > 4 {
		t.Fatalf("frames gauge = %d, want 1..4", g)
	}
}

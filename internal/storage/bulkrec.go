package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Multi-row record payloads. A bulk insert logs one RecHeapInsertMulti per
// table batch and one RecIndexInsertMulti per index, instead of N records
// each. The payloads pack into the Record.New byte field, so Serialize /
// LoadWAL and the replication wire format need no changes — an old log
// simply never contains the new types.

// ErrBadBulkPayload reports a corrupt multi-row payload.
var ErrBadBulkPayload = errors.New("storage: malformed multi-row record payload")

// EncodeHeapRows packs parallel (RowID, row encoding) slices into a
// RecHeapInsertMulti payload.
func EncodeHeapRows(rids []RowID, recs [][]byte) []byte {
	size := 4
	for _, r := range recs {
		size += 8 + 4 + len(r)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint32(out, uint32(len(rids)))
	for i, rid := range rids {
		out = binary.BigEndian.AppendUint64(out, uint64(rid))
		out = binary.BigEndian.AppendUint32(out, uint32(len(recs[i])))
		out = append(out, recs[i]...)
	}
	return out
}

// DecodeHeapRows unpacks an EncodeHeapRows payload.
func DecodeHeapRows(payload []byte) ([]RowID, [][]byte, error) {
	if len(payload) < 4 {
		return nil, nil, ErrBadBulkPayload
	}
	n := binary.BigEndian.Uint32(payload)
	payload = payload[4:]
	rids := make([]RowID, 0, n)
	recs := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(payload) < 12 {
			return nil, nil, ErrBadBulkPayload
		}
		rid := RowID(binary.BigEndian.Uint64(payload))
		sz := binary.BigEndian.Uint32(payload[8:])
		payload = payload[12:]
		if uint32(len(payload)) < sz {
			return nil, nil, ErrBadBulkPayload
		}
		rids = append(rids, rid)
		recs = append(recs, payload[:sz:sz])
		payload = payload[sz:]
	}
	if len(payload) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBulkPayload, len(payload))
	}
	return rids, recs, nil
}

// EncodeIndexEntries packs parallel (composite key, RowID) slices into a
// RecIndexInsertMulti payload.
func EncodeIndexEntries(keys [][][]byte, rids []RowID) []byte {
	size := 4
	for _, key := range keys {
		size += 8 + 4
		for _, comp := range key {
			size += 4 + len(comp)
		}
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint32(out, uint32(len(rids)))
	for i, key := range keys {
		out = binary.BigEndian.AppendUint64(out, uint64(rids[i]))
		out = binary.BigEndian.AppendUint32(out, uint32(len(key)))
		for _, comp := range key {
			out = binary.BigEndian.AppendUint32(out, uint32(len(comp)))
			out = append(out, comp...)
		}
	}
	return out
}

// DecodeIndexEntries unpacks an EncodeIndexEntries payload.
func DecodeIndexEntries(payload []byte) ([][][]byte, []RowID, error) {
	if len(payload) < 4 {
		return nil, nil, ErrBadBulkPayload
	}
	n := binary.BigEndian.Uint32(payload)
	payload = payload[4:]
	keys := make([][][]byte, 0, n)
	rids := make([]RowID, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(payload) < 12 {
			return nil, nil, ErrBadBulkPayload
		}
		rid := RowID(binary.BigEndian.Uint64(payload))
		nc := binary.BigEndian.Uint32(payload[8:])
		payload = payload[12:]
		if nc > 64 {
			return nil, nil, ErrBadBulkPayload
		}
		key := make([][]byte, 0, nc)
		for j := uint32(0); j < nc; j++ {
			if len(payload) < 4 {
				return nil, nil, ErrBadBulkPayload
			}
			sz := binary.BigEndian.Uint32(payload)
			payload = payload[4:]
			if uint32(len(payload)) < sz {
				return nil, nil, ErrBadBulkPayload
			}
			key = append(key, payload[:sz:sz])
			payload = payload[sz:]
		}
		keys = append(keys, key)
		rids = append(rids, rid)
	}
	if len(payload) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBulkPayload, len(payload))
	}
	return keys, rids, nil
}

package storage

import (
	"sync"
	"testing"
	"time"
)

// slowStore delays reads so that concurrent Fetches of the same cold page
// overlap the load window instead of racing past it.
type slowStore struct {
	PageStore
	delay time.Duration
}

func (s *slowStore) ReadPage(id PageID, buf []byte) error {
	time.Sleep(s.delay)
	return s.PageStore.ReadPage(id, buf)
}

// TestFetchConcurrentColdMiss drives many goroutines at the same cold page.
// The loser of the map race gets the frame the winner is still loading from
// the store; without the winner holding the frame latch across ReadPage, the
// race detector flags the load racing the hit path's reads.
func TestFetchConcurrentColdMiss(t *testing.T) {
	mem := NewMemStore()
	id, err := mem.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var p Page
	p.Init(id, PageTypeHeap)
	if err := mem.WritePage(id, p.Bytes()); err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool(&slowStore{PageStore: mem, delay: 10 * time.Millisecond}, 8)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			f, err := pool.Fetch(id)
			if err != nil {
				t.Error(err)
				return
			}
			f.Latch.RLock()
			if got := f.Page().ID(); got != id {
				t.Errorf("page %d: read id %d", id, got)
			}
			f.Latch.RUnlock()
			pool.Unpin(f, false)
		}()
	}
	close(start)
	wg.Wait()
}

// TestFlushAllConcurrentWriter checkpoints while another goroutine mutates a
// pinned page under its latch, as the heap layer does. FlushAll must take
// each frame's read latch before copying the page out.
func TestFlushAllConcurrentWriter(t *testing.T) {
	store := NewMemStore()
	pool := NewBufferPool(store, 8)
	f, err := pool.NewPage(PageTypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Page().ID()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := []byte("checkpoint-race-record")
		for {
			select {
			case <-done:
				return
			default:
			}
			f.Latch.Lock()
			if _, err := f.Page().Insert(rec); err != nil {
				f.Latch.Unlock()
				return
			}
			f.Latch.Unlock()
			pool.Unpin(f, true)
			if _, err = pool.Fetch(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := pool.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	pool.Unpin(f, true)
}

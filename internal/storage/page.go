// Package storage is the paged storage engine underneath the SQL engine:
// 8 KiB slotted pages, a pluggable page store (memory or file backed), a
// buffer pool with LRU eviction, heap files for table rows, a write-ahead
// log with physical redo records and logical index records (the split that
// creates the §4.5 recovery problem for encrypted indexes), a row lock
// manager supporting deferred transactions, and a version store implementing
// constant-time recovery (CTR).
//
// This package never interprets cell contents: rows move through it as
// opaque bytes, which is the architectural observation of §3 — most of a
// database engine only moves or copies values and is unaffected by whether
// they are encrypted.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed page size, matching SQL Server's 8 KiB pages.
const PageSize = 8192

// PageID identifies a page within a store. Page 0 is reserved as invalid.
type PageID uint32

// InvalidPageID marks "no page" in links and headers.
const InvalidPageID PageID = 0

// Page layout:
//
//	offset 0:  pageID   uint32
//	offset 4:  pageType uint8
//	offset 5:  reserved uint8
//	offset 6:  slotCount uint16
//	offset 8:  freeStart uint16 (start of free space; records grow up)
//	offset 10: freeEnd   uint16 (end of free space; slot dir grows down)
//	offset 12: next      uint32 (chain link: heap next page / btree sibling)
//	offset 16: payload
//
// The slot directory lives at the end of the page, 4 bytes per slot:
// {offset uint16, length uint16}; a deleted slot has offset 0xFFFF.
const (
	pageHeaderSize = 16
	slotEntrySize  = 4
	deletedOffset  = 0xFFFF
)

// Page type tags.
const (
	PageTypeFree uint8 = iota
	PageTypeHeap
	PageTypeBTreeLeaf
	PageTypeBTreeInner
	PageTypeMeta
)

// Page is an 8 KiB slotted page. Methods do not lock; callers hold the
// owning latch (buffer pool frame or table mutex).
type Page struct {
	buf [PageSize]byte
}

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("storage: page full")
	ErrBadSlot     = errors.New("storage: invalid slot")
	ErrRecordSize  = errors.New("storage: record too large for a page")
	ErrSlotDeleted = errors.New("storage: slot deleted")
)

// MaxRecordSize is the largest record a single page can hold.
const MaxRecordSize = PageSize - pageHeaderSize - slotEntrySize

// Init formats the page in place.
func (p *Page) Init(id PageID, pageType uint8) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	binary.LittleEndian.PutUint32(p.buf[0:], uint32(id))
	p.buf[4] = pageType
	p.setSlotCount(0)
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(PageSize)
	p.SetNext(InvalidPageID)
}

// ID returns the page id stored in the header.
func (p *Page) ID() PageID { return PageID(binary.LittleEndian.Uint32(p.buf[0:])) }

// Type returns the page type tag.
func (p *Page) Type() uint8 { return p.buf[4] }

// SetType updates the page type tag.
func (p *Page) SetType(t uint8) { p.buf[4] = t }

// Next returns the chain link.
func (p *Page) Next() PageID { return PageID(binary.LittleEndian.Uint32(p.buf[12:])) }

// SetNext updates the chain link.
func (p *Page) SetNext(id PageID) { binary.LittleEndian.PutUint32(p.buf[12:], uint32(id)) }

// SlotCount returns the size of the slot directory, including deleted slots.
func (p *Page) SlotCount() int { return int(binary.LittleEndian.Uint16(p.buf[6:])) }

func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[6:], uint16(n)) }
func (p *Page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.buf[8:])) }
func (p *Page) setFreeStart(v int) { binary.LittleEndian.PutUint16(p.buf[8:], uint16(v)) }
func (p *Page) freeEnd() int       { return int(binary.LittleEndian.Uint16(p.buf[10:])) }
func (p *Page) setFreeEnd(v int)   { binary.LittleEndian.PutUint16(p.buf[10:], uint16(v)) }

func (p *Page) slotEntry(i int) (off, length int) {
	base := PageSize - (i+1)*slotEntrySize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p *Page) setSlotEntry(i, off, length int) {
	base := PageSize - (i+1)*slotEntrySize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// FreeSpace reports the bytes available for a new record (including its
// slot directory entry).
func (p *Page) FreeSpace() int {
	free := p.freeEnd() - p.freeStart() - p.SlotCount()*slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// HasRoomFor reports whether a record of n bytes fits (possibly after
// compaction).
func (p *Page) HasRoomFor(n int) bool {
	return p.FreeSpace() >= n+slotEntrySize
}

// Insert places a record and returns its slot number. Reuses deleted slots.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrRecordSize
	}
	if !p.HasRoomFor(len(rec)) {
		// Contiguous space is exhausted but tombstoned records may be
		// reclaimable; compact and re-check.
		p.compact()
		if !p.HasRoomFor(len(rec)) {
			return 0, ErrPageFull
		}
	}
	// Slots are never reused by Insert: tombstoned slots stay reserved so
	// RowIDs remain stable for physical undo (InsertAt restores them).
	slot := p.SlotCount()
	if p.freeEnd()-p.freeStart()-p.SlotCount()*slotEntrySize-slotEntrySize < len(rec) {
		p.compact()
	}
	off := p.freeStart()
	copy(p.buf[off:], rec)
	p.setFreeStart(off + len(rec))
	p.setSlotCount(slot + 1)
	p.setSlotEntry(slot, off, len(rec))
	return slot, nil
}

// InsertAt restores a record into a specific slot — the physical-undo path
// for deletes. The slot must be tombstoned (or one past the end).
func (p *Page) InsertAt(slot int, rec []byte) error {
	if len(rec) > MaxRecordSize {
		return ErrRecordSize
	}
	switch {
	case slot >= 0 && slot < p.SlotCount():
		if off, _ := p.slotEntry(slot); off != deletedOffset {
			return fmt.Errorf("%w: slot %d occupied", ErrBadSlot, slot)
		}
	case slot == p.SlotCount():
		// Extending by one slot.
	default:
		return fmt.Errorf("%w: slot %d out of range", ErrBadSlot, slot)
	}
	need := len(rec)
	if slot == p.SlotCount() {
		need += slotEntrySize
	}
	if p.freeEnd()-p.freeStart()-p.SlotCount()*slotEntrySize < need {
		p.compact()
		if p.freeEnd()-p.freeStart()-p.SlotCount()*slotEntrySize < need {
			return ErrPageFull
		}
	}
	off := p.freeStart()
	copy(p.buf[off:], rec)
	p.setFreeStart(off + len(rec))
	if slot == p.SlotCount() {
		p.setSlotCount(slot + 1)
	}
	p.setSlotEntry(slot, off, len(rec))
	return nil
}

// Read returns the record in slot i. The slice aliases page memory; callers
// copy if they retain it past the page latch.
func (p *Page) Read(i int) ([]byte, error) {
	if i < 0 || i >= p.SlotCount() {
		return nil, ErrBadSlot
	}
	off, length := p.slotEntry(i)
	if off == deletedOffset {
		return nil, ErrSlotDeleted
	}
	return p.buf[off : off+length], nil
}

// Delete tombstones slot i. Space is reclaimed lazily by compaction.
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.SlotCount() {
		return ErrBadSlot
	}
	off, _ := p.slotEntry(i)
	if off == deletedOffset {
		return ErrSlotDeleted
	}
	p.setSlotEntry(i, deletedOffset, 0)
	return nil
}

// Update replaces slot i in place if the new record fits in the page,
// otherwise returns ErrPageFull and the caller relocates the row.
func (p *Page) Update(i int, rec []byte) error {
	if i < 0 || i >= p.SlotCount() {
		return ErrBadSlot
	}
	off, length := p.slotEntry(i)
	if off == deletedOffset {
		return ErrSlotDeleted
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlotEntry(i, off, len(rec))
		return nil
	}
	// Try appending a fresh copy of the record.
	if p.freeEnd()-p.freeStart()-p.SlotCount()*slotEntrySize < len(rec) {
		// Tombstone first so compaction reclaims the old copy, but remember
		// the entry in case the update still doesn't fit.
		p.setSlotEntry(i, deletedOffset, 0)
		p.compact()
		if p.freeEnd()-p.freeStart()-p.SlotCount()*slotEntrySize < len(rec) {
			p.setSlotEntry(i, off, length) // restore; caller relocates
			return ErrPageFull
		}
	} else {
		p.setSlotEntry(i, deletedOffset, 0)
	}
	newOff := p.freeStart()
	copy(p.buf[newOff:], rec)
	p.setFreeStart(newOff + len(rec))
	p.setSlotEntry(i, newOff, len(rec))
	return nil
}

// compact rewrites live records contiguously, dropping dead space.
func (p *Page) compact() {
	var scratch [PageSize]byte
	w := pageHeaderSize
	for i := 0; i < p.SlotCount(); i++ {
		off, length := p.slotEntry(i)
		if off == deletedOffset {
			continue
		}
		copy(scratch[w:], p.buf[off:off+length])
		p.setSlotEntry(i, w, length)
		w += length
	}
	copy(p.buf[pageHeaderSize:w], scratch[pageHeaderSize:w])
	p.setFreeStart(w)
}

// Bytes exposes the raw page for the store and WAL.
func (p *Page) Bytes() []byte { return p.buf[:] }

// LiveSlots iterates the non-deleted slot numbers in order.
func (p *Page) LiveSlots() []int {
	out := make([]int, 0, p.SlotCount())
	for i := 0; i < p.SlotCount(); i++ {
		if off, _ := p.slotEntry(i); off != deletedOffset {
			out = append(out, i)
		}
	}
	return out
}

// RowID addresses a record: page id in the high 48 bits, slot in the low 16.
type RowID uint64

// NewRowID composes a RowID.
func NewRowID(page PageID, slot int) RowID {
	return RowID(uint64(page)<<16 | uint64(uint16(slot)))
}

// Page returns the page component.
func (r RowID) Page() PageID { return PageID(r >> 16) }

// Slot returns the slot component.
func (r RowID) Slot() int { return int(uint16(r)) }

func (r RowID) String() string { return fmt.Sprintf("(%d:%d)", r.Page(), r.Slot()) }

package aesql

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	aedriver "alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/pool"
	"alwaysencrypted/internal/sqltypes"
)

// conn is one database/sql driver connection: a virtual session over the
// connector's shared pool. It holds no transport connection between
// statements — each Exec/Query checks one out, runs, and releases it — so
// replica routing stays per-statement even though database/sql pins a driver
// connection per logical session. An explicit transaction pins a primary
// transport connection for its whole extent.
//
// lastWrite is the session's read-your-writes watermark: the LSN of the
// session's most recent primary statement. Reads route to a replica only
// when its applied LSN has reached this bound (under consistency=session).
type conn struct {
	pool *pool.Pool
	cfg  Config

	lastWrite uint64
	// txn is the pinned primary connection while a transaction is open.
	txn    *pool.PooledConn
	closed bool
}

var (
	errClosed = errors.New("aesql: connection closed")
	errInTxn  = errors.New("aesql: transaction already open")
)

// minLSN is the freshness bound a replica must satisfy to serve this
// session's next read.
func (c *conn) minLSN() uint64 {
	switch c.cfg.Consistency {
	case ConsistencyGlobal:
		return c.pool.LastWrite()
	default:
		return c.lastWrite
	}
}

// readOnly reports statements safe to route to a read replica: plain
// SELECTs. Everything else — DML, DDL, transaction control — needs the
// primary.
func readOnly(query string) bool {
	return strings.HasPrefix(strings.ToUpper(strings.TrimSpace(query)), "SELECT")
}

// exec is the single statement path: route, check out, run, fold the
// response LSN into the session watermark, release.
func (c *conn) exec(ctx context.Context, query string, args []driver.NamedValue) (*aedriver.Rows, error) {
	if c.closed {
		return nil, errClosed
	}
	params, err := bindParams(query, args)
	if err != nil {
		return nil, err
	}
	if c.txn != nil {
		rows, err := c.txn.Exec(query, params)
		if err == nil {
			c.lastWrite = c.txn.LastLSN()
		}
		return rows, err
	}

	var pc *pool.PooledConn
	if readOnly(query) && c.cfg.Consistency != ConsistencyPrimary {
		pc, err = c.pool.AcquireRead(ctx, c.minLSN())
	} else {
		pc, err = c.pool.Acquire(ctx)
	}
	if err != nil {
		return nil, err
	}
	rows, err := pc.Exec(query, params)
	if err == nil && !pc.Replica() {
		// Primary statements move the session watermark; replica reads never
		// do (their LSN is the replica's position, not a write of ours).
		c.lastWrite = pc.LastLSN()
	}
	pc.Release()
	return rows, err
}

// ExecContext implements driver.ExecerContext.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	rows, err := c.exec(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(rows.Affected)}, nil
}

// QueryContext implements driver.QueryerContext.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	r, err := c.exec(ctx, query, args)
	if err != nil {
		return nil, err
	}
	return &rows{rs: r}, nil
}

// Prepare implements driver.Conn. Statements re-route per execution; the
// describe metadata is already cached pool-wide, so "preparing" is just
// binding the text.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext.
func (c *conn) PrepareContext(_ context.Context, query string) (driver.Stmt, error) {
	if c.closed {
		return nil, errClosed
	}
	return &stmt{conn: c, query: query}, nil
}

// Begin implements driver.Conn (legacy path).
func (c *conn) Begin() (driver.Tx, error) {
	return c.BeginTx(context.Background(), driver.TxOptions{})
}

// BeginTx implements driver.ConnBeginTx: pin a primary connection and open
// an explicit transaction on it. Failover never silently retries half a
// transaction (PR 4); a mid-transaction primary death surfaces as an error
// and the application restarts the transaction.
func (c *conn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if c.closed {
		return nil, errClosed
	}
	if c.txn != nil {
		return nil, errInTxn
	}
	if opts.Isolation != 0 {
		return nil, fmt.Errorf("aesql: isolation level %d not supported", opts.Isolation)
	}
	pc, err := c.pool.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	if err := pc.Begin(); err != nil {
		pc.Release()
		return nil, err
	}
	c.txn = pc
	return &tx{conn: c}, nil
}

// Ping implements driver.Pinger via a primary round trip.
func (c *conn) Ping(ctx context.Context) error {
	if c.closed {
		return driver.ErrBadConn
	}
	pc, err := c.pool.Acquire(ctx)
	if err != nil {
		return err
	}
	_, err = pc.Conn().Ping()
	pc.Release()
	return err
}

// ResetSession implements driver.SessionResetter. The session watermark is
// deliberately kept: carrying it across reuse can only cause a spurious
// primary read for the next logical session, never a stale one.
func (c *conn) ResetSession(context.Context) error {
	if c.closed {
		return driver.ErrBadConn
	}
	return nil
}

// IsValid implements driver.Validator.
func (c *conn) IsValid() bool { return !c.closed }

// CheckNamedValue implements driver.NamedValueChecker: convert eagerly so
// unsupported types fail before any transport work.
func (c *conn) CheckNamedValue(nv *driver.NamedValue) error {
	v, err := toValue(nv.Value)
	if err != nil {
		return err
	}
	nv.Value = v
	return nil
}

// Close implements driver.Conn. A leaked transaction is rolled back so its
// pinned transport connection returns to the pool.
func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.txn != nil {
		err := c.txn.Rollback()
		c.txn.Release()
		c.txn = nil
		return err
	}
	return nil
}

// tx implements driver.Tx over the conn's pinned primary connection.
type tx struct{ conn *conn }

func (t *tx) Commit() error {
	c := t.conn
	if c.txn == nil {
		return errors.New("aesql: commit outside transaction")
	}
	err := c.txn.Commit()
	if err == nil {
		c.lastWrite = c.txn.LastLSN()
	}
	c.txn.Release()
	c.txn = nil
	return err
}

func (t *tx) Rollback() error {
	c := t.conn
	if c.txn == nil {
		return errors.New("aesql: rollback outside transaction")
	}
	err := c.txn.Rollback()
	c.txn.Release()
	c.txn = nil
	return err
}

// stmt implements driver.Stmt + context variants. Routing happens per
// execution, exactly as for direct Exec/Query.
type stmt struct {
	conn  *conn
	query string
}

func (s *stmt) Close() error { return nil }

// NumInput returns -1: the driver binds by name and cannot know the
// placeholder count without the server's describe output.
func (s *stmt) NumInput() int { return -1 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), ordinalArgs(args))
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), ordinalArgs(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.conn.ExecContext(ctx, s.query, args)
}

func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.conn.QueryContext(ctx, s.query, args)
}

// CheckNamedValue lets prepared statements accept the same types as the conn.
func (s *stmt) CheckNamedValue(nv *driver.NamedValue) error {
	return s.conn.CheckNamedValue(nv)
}

func ordinalArgs(args []driver.Value) []driver.NamedValue {
	nvs := make([]driver.NamedValue, len(args))
	for i, v := range args {
		nvs[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return nvs
}

// result implements driver.Result. The engine has no auto-increment ids.
type result struct{ affected int64 }

func (r result) LastInsertId() (int64, error) {
	return 0, errors.New("aesql: LastInsertId not supported")
}
func (r result) RowsAffected() (int64, error) { return r.affected, nil }

// rows adapts the driver's fully-materialized result set to driver.Rows.
// Decryption already happened in aedriver before this sees the data.
type rows struct {
	rs  *aedriver.Rows
	pos int
}

func (r *rows) Columns() []string { return r.rs.Columns }

func (r *rows) Close() error { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rs.Values) {
		return io.EOF
	}
	row := r.rs.Values[r.pos]
	r.pos++
	for i, v := range row {
		dest[i] = fromValue(v)
	}
	return nil
}

// ParamNames returns the distinct @name placeholders of a statement in
// first-appearance order — the order positional (ordinal) arguments bind in.
// Quoted string literals are skipped, so '@' inside a literal is data.
func ParamNames(query string) []string {
	var names []string
	seen := map[string]bool{}
	inStr := false
	for i := 0; i < len(query); i++ {
		ch := query[i]
		if inStr {
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case ch == '\'':
			inStr = true
		case ch == '@':
			j := i + 1
			for j < len(query) && isIdentByte(query[j]) {
				j++
			}
			if j > i+1 {
				name := query[i+1 : j]
				if !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
				i = j - 1
			}
		}
	}
	return names
}

func isIdentByte(b byte) bool {
	return b == '_' || (b >= '0' && b <= '9') || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// bindParams maps database/sql arguments onto the engine's named-parameter
// map: sql.Named args bind by name, positional args bind to the statement's
// distinct placeholders in first-appearance order (go-sqlparams style).
func bindParams(query string, args []driver.NamedValue) (map[string]sqltypes.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	var names []string
	params := make(map[string]sqltypes.Value, len(args))
	for _, nv := range args {
		name := nv.Name
		if name == "" {
			if names == nil {
				names = ParamNames(query)
			}
			if nv.Ordinal < 1 || nv.Ordinal > len(names) {
				return nil, fmt.Errorf("aesql: statement has %d named placeholders, no position for arg %d",
					len(names), nv.Ordinal)
			}
			name = names[nv.Ordinal-1]
		}
		name = strings.TrimPrefix(name, "@")
		v, err := toValue(nv.Value)
		if err != nil {
			return nil, fmt.Errorf("aesql: arg @%s: %w", name, err)
		}
		sv, ok := v.(sqltypes.Value)
		if !ok {
			// CheckNamedValue already converted on the database/sql path;
			// this covers direct driver use.
			return nil, fmt.Errorf("aesql: arg @%s: unexpected %T", name, v)
		}
		params[name] = sv
	}
	return params, nil
}

// toValue converts a Go value into the engine's value model. time.Time maps
// to DATETIME microseconds (UTC).
func toValue(v any) (driver.Value, error) {
	switch x := v.(type) {
	case nil:
		return sqltypes.Null(), nil
	case sqltypes.Value:
		return x, nil
	case int64:
		return sqltypes.Int(x), nil
	case int:
		return sqltypes.Int(int64(x)), nil
	case float64:
		return sqltypes.Float(x), nil
	case bool:
		return sqltypes.Bool(x), nil
	case string:
		return sqltypes.Str(x), nil
	case []byte:
		return sqltypes.Bytes(append([]byte(nil), x...)), nil
	case time.Time:
		return sqltypes.Datetime(x.UTC().UnixMicro()), nil
	default:
		return nil, fmt.Errorf("unsupported argument type %T", v)
	}
}

// fromValue converts an engine value to the database/sql value model.
func fromValue(v sqltypes.Value) driver.Value {
	switch v.Kind {
	case sqltypes.KindNull:
		return nil
	case sqltypes.KindInt:
		return v.I
	case sqltypes.KindFloat:
		return v.F
	case sqltypes.KindString:
		return v.S
	case sqltypes.KindBytes:
		return v.B
	case sqltypes.KindBool:
		return v.Bool_
	case sqltypes.KindDatetime:
		return time.UnixMicro(v.I).UTC()
	default:
		return nil
	}
}

// Package aesql exposes the Always Encrypted client stack through the
// standard database/sql interface: a driver ("aedb") layered over
// internal/pool and internal/driver, so applications get the paper's §4.1
// transparency — describe-driven parameter encryption, attestation, CEK
// handling — behind the API they already use, with connection pooling and
// LSN-bounded replica read routing underneath.
//
// Usage:
//
//	aesql.RegisterTrust("prod", aesql.Trust{Policy: &policy, Providers: reg})
//	db, _ := sql.Open("aedb", "aedb://10.0.0.1:1433,10.0.0.2:1433/?ae=1&trust=prod")
//	db.QueryRowContext(ctx, "SELECT name FROM patients WHERE ssn = @ssn", sql.Named("ssn", s))
//
// The DSN host part lists endpoints comma-separated, primary first, read
// replicas after. Because database/sql maintains its own pool of driver
// connections, aesql connections are virtual sessions: each statement checks
// a transport connection out of the shared internal/pool underneath (writes
// and transactions pin the primary; fresh-enough reads ride replicas) and
// returns it immediately, so replica routing works per statement even though
// database/sql pins a driver connection per logical session.
//
// Read-your-writes is a session guarantee: each driver connection tracks the
// LSN of its last write and never reads from a replica that has not applied
// it. Under database/sql a session is a driver connection, so the guarantee
// holds within a sql.Conn or sql.Tx scope (and for sequential use of one
// *sql.DB); `consistency=global` widens the bound to every write the whole
// pool has seen, `consistency=primary` disables replica reads entirely.
package aesql

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"alwaysencrypted/internal/attestation"
	aedriver "alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/keys"
	"alwaysencrypted/internal/obs"
	"alwaysencrypted/internal/pool"
)

// Trust bundles the client-side security material a DSN cannot carry as a
// string: attestation trust anchors and key providers. Register a bundle
// under a name and reference it from the DSN with trust=<name> — the string
// stays loggable while the keys stay out of it.
type Trust struct {
	// Policy validates server attestations (required for ae=1 with enclaves).
	Policy *attestation.Policy
	// Providers resolves CMK key paths to key material.
	Providers *keys.ProviderRegistry
	// TrustedKeyPaths restricts acceptable CMK key paths (§4.1).
	TrustedKeyPaths []string
	// Obs receives driver and pool instruments; nil disables them.
	Obs *obs.Registry
}

var (
	trustMu  sync.Mutex
	trustReg = map[string]Trust{}
)

// RegisterTrust registers (or replaces) a named trust bundle for DSN lookup.
func RegisterTrust(name string, t Trust) {
	trustMu.Lock()
	trustReg[name] = t
	trustMu.Unlock()
}

func lookupTrust(name string) (Trust, bool) {
	trustMu.Lock()
	t, ok := trustReg[name]
	trustMu.Unlock()
	return t, ok
}

// Consistency selects the freshness bound for replica-routed reads.
type Consistency int

const (
	// ConsistencySession (default): a read must reflect this session's own
	// writes. Per-statement reads ride replicas as soon as the replica has
	// applied the session's last write.
	ConsistencySession Consistency = iota
	// ConsistencyGlobal: a read must reflect every write the pool has
	// observed from any session — stronger, but under a steady write load
	// replicas rarely qualify.
	ConsistencyGlobal
	// ConsistencyPrimary: never read from replicas.
	ConsistencyPrimary
)

// Config is the parsed form of an aedb DSN.
type Config struct {
	// Primary is the primary endpoint; Replicas the read replicas.
	Primary  string
	Replicas []string
	// AlwaysEncrypted maps to the driver's AE connection-string property.
	AlwaysEncrypted bool
	// TrustName names a bundle registered via RegisterTrust ("" for none —
	// plaintext-only connections need no anchors).
	TrustName string
	// Consistency is the replica read-routing mode.
	Consistency Consistency
	// MaxConns / MaxIdle / HealthInterval tune the underlying pool
	// (zero = pool defaults).
	MaxConns       int
	MaxIdle        int
	HealthInterval time.Duration
	// DisableDescribeCache opts out of the pool's shared describe cache.
	DisableDescribeCache bool
}

// DSN renders the config back into a connection string.
func (c Config) DSN() string {
	hosts := strings.Join(append([]string{c.Primary}, c.Replicas...), ",")
	q := url.Values{}
	if c.AlwaysEncrypted {
		q.Set("ae", "1")
	}
	if c.TrustName != "" {
		q.Set("trust", c.TrustName)
	}
	switch c.Consistency {
	case ConsistencyGlobal:
		q.Set("consistency", "global")
	case ConsistencyPrimary:
		q.Set("consistency", "primary")
	}
	if c.MaxConns > 0 {
		q.Set("maxconns", strconv.Itoa(c.MaxConns))
	}
	if c.MaxIdle > 0 {
		q.Set("maxidle", strconv.Itoa(c.MaxIdle))
	}
	if c.HealthInterval != 0 {
		q.Set("health", c.HealthInterval.String())
	}
	if c.DisableDescribeCache {
		q.Set("describecache", "0")
	}
	s := "aedb://" + hosts + "/"
	if enc := q.Encode(); enc != "" {
		s += "?" + enc
	}
	return s
}

// ParseDSN parses an aedb connection string:
//
//	aedb://primary[,replica...]/?ae=1&trust=name&consistency=session|global|primary
//	      &maxconns=8&maxidle=8&health=50ms&describecache=0
func ParseDSN(dsn string) (Config, error) {
	var cfg Config
	rest, ok := strings.CutPrefix(dsn, "aedb://")
	if !ok {
		return cfg, fmt.Errorf("aesql: DSN must start with aedb://, got %q", dsn)
	}
	hostPart := rest
	var query string
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		hostPart = rest[:i]
		query = strings.TrimPrefix(strings.TrimPrefix(rest[i:], "/"), "?")
	}
	hosts := strings.Split(hostPart, ",")
	if hostPart == "" || len(hosts) == 0 {
		return cfg, errors.New("aesql: DSN has no endpoints")
	}
	cfg.Primary = hosts[0]
	cfg.Replicas = hosts[1:]

	vals, err := url.ParseQuery(query)
	if err != nil {
		return cfg, fmt.Errorf("aesql: DSN query: %w", err)
	}
	for key := range vals {
		switch key {
		case "ae", "trust", "consistency", "maxconns", "maxidle", "health", "describecache":
		default:
			return cfg, fmt.Errorf("aesql: unknown DSN parameter %q", key)
		}
	}
	switch v := vals.Get("ae"); v {
	case "", "0", "false":
	case "1", "true":
		cfg.AlwaysEncrypted = true
	default:
		return cfg, fmt.Errorf("aesql: bad ae=%q", v)
	}
	cfg.TrustName = vals.Get("trust")
	switch v := vals.Get("consistency"); v {
	case "", "session":
		cfg.Consistency = ConsistencySession
	case "global":
		cfg.Consistency = ConsistencyGlobal
	case "primary":
		cfg.Consistency = ConsistencyPrimary
	default:
		return cfg, fmt.Errorf("aesql: bad consistency=%q", v)
	}
	if v := vals.Get("maxconns"); v != "" {
		if cfg.MaxConns, err = strconv.Atoi(v); err != nil || cfg.MaxConns <= 0 {
			return cfg, fmt.Errorf("aesql: bad maxconns=%q", v)
		}
	}
	if v := vals.Get("maxidle"); v != "" {
		if cfg.MaxIdle, err = strconv.Atoi(v); err != nil || cfg.MaxIdle <= 0 {
			return cfg, fmt.Errorf("aesql: bad maxidle=%q", v)
		}
	}
	if v := vals.Get("health"); v != "" {
		if cfg.HealthInterval, err = time.ParseDuration(v); err != nil {
			return cfg, fmt.Errorf("aesql: bad health=%q", v)
		}
	}
	if v := vals.Get("describecache"); v == "0" || v == "false" {
		cfg.DisableDescribeCache = true
	}
	return cfg, nil
}

// Driver is the database/sql driver; registered as "aedb" in init.
type Driver struct{}

// Open implements driver.Driver. database/sql prefers OpenConnector (we
// implement DriverContext); Open shares the same connector per DSN so that
// even the legacy path pools correctly.
func (d Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.(*Connector).connect()
}

// OpenConnector implements driver.DriverContext: one Connector (and one
// underlying pool) per DSN, shared across every sql.DB opened with it.
func (d Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	cfg, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	connMu.Lock()
	defer connMu.Unlock()
	if c, ok := connectors[dsn]; ok {
		return c, nil
	}
	c := &Connector{cfg: cfg}
	connectors[dsn] = c
	return c, nil
}

var (
	connMu     sync.Mutex
	connectors = map[string]*Connector{}
)

// NewConnector builds a connector from an explicit Config (bypassing the DSN
// string), for callers that want sql.OpenDB with programmatic configuration.
func NewConnector(cfg Config) *Connector { return &Connector{cfg: cfg} }

// Connector implements driver.Connector: it owns the shared pool, created
// lazily on first Connect so that sql.Open (which never dials) stays cheap.
type Connector struct {
	cfg Config

	mu   sync.Mutex
	pool *pool.Pool
}

// Connect implements driver.Connector.
func (c *Connector) Connect(context.Context) (sqldriver.Conn, error) {
	return c.connect()
}

func (c *Connector) connect() (sqldriver.Conn, error) {
	p, err := c.Pool()
	if err != nil {
		return nil, err
	}
	return &conn{pool: p, cfg: c.cfg}, nil
}

// Pool returns the connector's shared pool, creating it on first use.
func (c *Connector) Pool() (*pool.Pool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool != nil {
		return c.pool, nil
	}
	var trust Trust
	if c.cfg.TrustName != "" {
		t, ok := lookupTrust(c.cfg.TrustName)
		if !ok {
			return nil, fmt.Errorf("aesql: trust bundle %q not registered", c.cfg.TrustName)
		}
		trust = t
	}
	if c.cfg.AlwaysEncrypted && trust.Policy == nil {
		return nil, errors.New("aesql: ae=1 requires a registered trust bundle with an attestation policy")
	}
	p, err := pool.New(pool.Config{
		Primary:  c.cfg.Primary,
		Replicas: c.cfg.Replicas,
		Driver: aedriver.Config{
			AlwaysEncrypted: c.cfg.AlwaysEncrypted,
			Providers:       trust.Providers,
			TrustedKeyPaths: trust.TrustedKeyPaths,
			Policy:          trust.Policy,
		},
		MaxConns:             c.cfg.MaxConns,
		MaxIdle:              c.cfg.MaxIdle,
		HealthInterval:       c.cfg.HealthInterval,
		DisableDescribeCache: c.cfg.DisableDescribeCache,
		Obs:                  trust.Obs,
	})
	if err != nil {
		return nil, err
	}
	c.pool = p
	return p, nil
}

// Driver implements driver.Connector.
func (c *Connector) Driver() sqldriver.Driver { return Driver{} }

// Close implements io.Closer: database/sql calls it from DB.Close, shutting
// the shared pool down.
func (c *Connector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool != nil {
		c.pool.Close()
		c.pool = nil
	}
	connMu.Lock()
	for dsn, reg := range connectors {
		if reg == c {
			delete(connectors, dsn)
		}
	}
	connMu.Unlock()
	return nil
}

func init() {
	sql.Register("aedb", Driver{})
}

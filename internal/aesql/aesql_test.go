package aesql_test

import (
	"context"
	"database/sql"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"alwaysencrypted/internal/aesql"
	"alwaysencrypted/internal/core"
	aedriver "alwaysencrypted/internal/driver"
	"alwaysencrypted/internal/obs"
)

// startHalfDeadServer accepts, reads one request frame and closes without
// responding — the transport failure where the statement may or may not have
// executed (same shape as the driver's own failover tests).
func startHalfDeadServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var hdr [4]byte
				if _, err := io.ReadFull(c, hdr[:]); err != nil {
					return
				}
				io.CopyN(io.Discard, c, int64(binary.BigEndian.Uint32(hdr[:])))
			}(conn)
		}
	}()
	return l.Addr().String()
}

func TestParseDSNRoundTrip(t *testing.T) {
	cases := []aesql.Config{
		{Primary: "10.0.0.1:1433"},
		{Primary: "10.0.0.1:1433", Replicas: []string{"10.0.0.2:1433", "10.0.0.3:1433"}},
		{Primary: "p:1", AlwaysEncrypted: true, TrustName: "prod"},
		{Primary: "p:1", Consistency: aesql.ConsistencyGlobal, MaxConns: 4},
		{Primary: "p:1", Consistency: aesql.ConsistencyPrimary, MaxIdle: 2,
			HealthInterval: 250 * time.Millisecond, DisableDescribeCache: true},
	}
	for _, want := range cases {
		dsn := want.DSN()
		got, err := aesql.ParseDSN(dsn)
		if err != nil {
			t.Errorf("ParseDSN(%q): %v", dsn, err)
			continue
		}
		// DSN() renders no replicas as an absent list; normalize for compare.
		if len(got.Replicas) == 0 {
			got.Replicas = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %q: got %+v, want %+v", dsn, got, want)
		}
	}
}

func TestParseDSNErrors(t *testing.T) {
	bad := []string{
		"sqlserver://host/",
		"aedb:///?ae=1",
		"aedb://h:1/?bogus=1",
		"aedb://h:1/?ae=maybe",
		"aedb://h:1/?consistency=eventual",
		"aedb://h:1/?maxconns=0",
		"aedb://h:1/?maxidle=-3",
		"aedb://h:1/?health=fast",
	}
	for _, dsn := range bad {
		if _, err := aesql.ParseDSN(dsn); err == nil {
			t.Errorf("ParseDSN(%q) accepted, want error", dsn)
		}
	}
}

func TestParamNames(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{"SELECT 1", nil},
		{"INSERT INTO t (a, b) VALUES (@a, @b)", []string{"a", "b"}},
		{"UPDATE t SET a = @v WHERE a < @v AND b = @w", []string{"v", "w"}},
		{"SELECT * FROM t WHERE note = 'mail@example.com' AND id = @id", []string{"id"}},
		{"SELECT * FROM t WHERE s = 'it''s' AND v = @x_1", []string{"x_1"}},
	}
	for _, c := range cases {
		if got := aesql.ParamNames(c.query); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParamNames(%q) = %v, want %v", c.query, got, c.want)
		}
	}
}

// startAEServer boots a primary with provisioned keys and registers its trust
// bundle under the given name for DSN lookup.
func startAEServer(t *testing.T, trustName, replListen string) *core.Server {
	t.Helper()
	srv, err := core.StartServer(core.ServerConfig{EnclaveThreads: 2, ReplListen: replListen})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	admin := core.NewKeyAdmin(srv)
	if err := admin.CreateMasterKey("CMK1", true); err != nil {
		t.Fatal(err)
	}
	if err := admin.CreateColumnKey("CEK1", "CMK1"); err != nil {
		t.Fatal(err)
	}
	pol := srv.Policy()
	aesql.RegisterTrust(trustName, aesql.Trust{
		Policy:    &pol,
		Providers: admin.Registry(),
		Obs:       obs.New("aesql-test"),
	})
	return srv
}

// The whole stack behind database/sql: AE DDL, named and positional
// parameters, transparent decryption, prepared statements, transactions.
func TestDatabaseSQLEndToEnd(t *testing.T) {
	srv := startAEServer(t, "e2e", "")
	cfg := aesql.Config{Primary: srv.Addr(), AlwaysEncrypted: true, TrustName: "e2e"}
	db := sql.OpenDB(aesql.NewConnector(cfg))
	defer db.Close()
	ctx := context.Background()

	if err := db.PingContext(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := db.ExecContext(ctx, "CREATE TABLE patients (id int PRIMARY KEY, name varchar(32), ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"); err != nil {
		t.Fatal(err)
	}

	// Named parameters encrypt transparently on the way in.
	res, err := db.ExecContext(ctx, "INSERT INTO patients (id, name, ssn) VALUES (@id, @name, @ssn)",
		sql.Named("id", 1), sql.Named("name", "alice"), sql.Named("ssn", "123-45-6789"))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("rows affected = %d", n)
	}

	// Positional arguments bind to distinct placeholders in appearance order.
	if _, err := db.ExecContext(ctx, "INSERT INTO patients (id, name, ssn) VALUES (@id, @name, @ssn)",
		2, "bob", "987-65-4321"); err != nil {
		t.Fatal(err)
	}

	// Reads decrypt transparently on the way out — including a predicate on
	// the encrypted column itself (enclave expression under the covers).
	var name string
	if err := db.QueryRowContext(ctx, "SELECT name FROM patients WHERE ssn = @ssn",
		sql.Named("ssn", "987-65-4321")).Scan(&name); err != nil {
		t.Fatal(err)
	}
	if name != "bob" {
		t.Fatalf("name = %q, want bob", name)
	}

	// Prepared statement, reused with different arguments.
	stmt, err := db.PrepareContext(ctx, "SELECT ssn FROM patients WHERE id = @id")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for id, want := range map[int]string{1: "123-45-6789", 2: "987-65-4321"} {
		var ssn string
		if err := stmt.QueryRowContext(ctx, id).Scan(&ssn); err != nil {
			t.Fatal(err)
		}
		if ssn != want {
			t.Fatalf("ssn(%d) = %q, want %q", id, ssn, want)
		}
	}

	// Multi-row iteration.
	rows, err := db.QueryContext(ctx, "SELECT id, ssn FROM patients")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]string{}
	for rows.Next() {
		var id int64
		var ssn string
		if err := rows.Scan(&id, &ssn); err != nil {
			t.Fatal(err)
		}
		got[id] = ssn
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != "123-45-6789" {
		t.Fatalf("scan = %v", got)
	}

	// A committed transaction's writes stick; a rolled-back one's vanish.
	tx, err := db.BeginTx(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecContext(ctx, "INSERT INTO patients (id, name, ssn) VALUES (@id, @name, @ssn)",
		sql.Named("id", 3), sql.Named("name", "carol"), sql.Named("ssn", "111-22-3333")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, err = db.BeginTx(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecContext(ctx, "DELETE FROM patients WHERE id = @id", sql.Named("id", 3)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRowContext(ctx, "SELECT id FROM patients WHERE id = @id", 3).Scan(&n); err != nil {
		t.Fatalf("rolled-back delete removed the row: %v", err)
	}
}

func TestSQLRequiresRegisteredTrust(t *testing.T) {
	db := sql.OpenDB(aesql.NewConnector(aesql.Config{
		Primary: "127.0.0.1:1", AlwaysEncrypted: true, TrustName: "never-registered",
	}))
	defer db.Close()
	err := db.Ping()
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("ping err = %v, want unregistered-trust error", err)
	}
}

// ErrIndeterminate must survive the trip through database/sql: an in-flight
// INSERT on a dying primary is the application's call to resolve, not the
// stack's to retry.
func TestSQLFailoverIndeterminate(t *testing.T) {
	srv, err := core.StartServer(core.ServerConfig{EnclaveThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	admin, err := srv.Connect(core.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if _, err := admin.Exec("CREATE TABLE t (id int PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}

	db := sql.OpenDB(aesql.NewConnector(aesql.Config{
		Primary:  startHalfDeadServer(t),
		Replicas: []string{srv.Addr()},
	}))
	defer db.Close()
	ctx := context.Background()

	_, err = db.ExecContext(ctx, "INSERT INTO t (id) VALUES (@id)", 1)
	if !errors.Is(err, aedriver.ErrIndeterminate) {
		t.Fatalf("in-flight DML err = %v, want ErrIndeterminate", err)
	}
	// The application retries on the failed-over connection; reads confirm
	// exactly one row.
	if _, err := db.ExecContext(ctx, "INSERT INTO t (id) VALUES (@id)", 1); err != nil {
		t.Fatalf("app retry: %v", err)
	}
	var id int64
	if err := db.QueryRowContext(ctx, "SELECT id FROM t WHERE id = @id", 1).Scan(&id); err != nil {
		t.Fatal(err)
	}
}

// Read-your-writes as a session guarantee under database/sql: within one
// sql.Conn, a read issued right after a write never returns stale data — it
// falls back to the primary while the replica lags and rides the replica once
// it has applied the write.
func TestSQLReadYourWrites(t *testing.T) {
	srv := startAEServer(t, "ryw", "127.0.0.1:0")
	trust := srv.Trust()
	rs, err := core.StartReplicaServer(core.ReplicaConfig{
		Primary: srv.ReplAddr(), EnclaveThreads: 2, Trust: &trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// The trust bundle also carries the obs registry the pool's routing
	// counters record into (plaintext session, so no policy is needed).
	connector := aesql.NewConnector(aesql.Config{
		Primary:        srv.Addr(),
		Replicas:       []string{rs.Addr()},
		TrustName:      "ryw",
		HealthInterval: -1, // drive the watermark refresh by hand
	})
	db := sql.OpenDB(connector)
	defer db.Close()
	ctx := context.Background()

	sc, err := db.Conn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	if _, err := sc.ExecContext(ctx, "CREATE TABLE t (id int PRIMARY KEY, v int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ExecContext(ctx, "INSERT INTO t (id, v) VALUES (@id, @v)", 1, 42); err != nil {
		t.Fatal(err)
	}
	// Immediately read back: the replica has not been observed at the write's
	// LSN, so the session must fall back to the primary rather than risk a
	// stale row.
	var v int64
	if err := sc.QueryRowContext(ctx, "SELECT v FROM t WHERE id = @id", 1).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("read-your-writes returned %d, want 42", v)
	}
	p, err := connector.Pool()
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.StalenessFallbacks == 0 {
		t.Errorf("stats = %+v, want the lagging replica counted as a staleness fallback", st)
	}

	// Catch the replica up, refresh the pool's watermark, and the same
	// session's reads move to the replica — still seeing the write.
	if err := rs.Replication.WaitForLSN(srv.Engine.WAL().NextLSN(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	p.PingReplicas()
	before := p.Stats().ReplicaReads
	if err := sc.QueryRowContext(ctx, "SELECT v FROM t WHERE id = @id", 1).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("replica read returned %d, want 42", v)
	}
	if after := p.Stats().ReplicaReads; after != before+1 {
		t.Errorf("replica reads %d -> %d, want the caught-up read routed to the replica", before, after)
	}
}

package aesql

import (
	"context"
	"fmt"

	"alwaysencrypted/internal/sqltypes"
)

// BulkInserter is the bulk-load fast path of aesql driver connections.
// database/sql has no bulk API, so reach it through sql.Conn.Raw:
//
//	conn, _ := db.Conn(ctx)
//	err := conn.Raw(func(dc any) error {
//		n, err := dc.(aesql.BulkInserter).BulkInsert(ctx, "orders", cols, rows)
//		...
//		return err
//	})
//
// Cell values accept the same Go types as statement arguments (int64,
// float64, string, []byte, bool, time.Time, nil). Encrypted columns are
// encrypted client-side before anything reaches the wire, exactly as for
// single-row inserts.
type BulkInserter interface {
	BulkInsert(ctx context.Context, table string, cols []string, rows [][]any) (int64, error)
}

// BulkInsert implements BulkInserter. Inside an explicit transaction the
// load rides the pinned primary connection and the transaction's commit;
// outside one it routes to the primary and commits in driver-sized chunks
// (bulkcopy batch semantics — a mid-load failure leaves earlier chunks
// committed, and the returned count says how many rows are in).
func (c *conn) BulkInsert(ctx context.Context, table string, cols []string, rows [][]any) (int64, error) {
	if c.closed {
		return 0, errClosed
	}
	conv := make([][]sqltypes.Value, len(rows))
	for r, row := range rows {
		cells := make([]sqltypes.Value, len(row))
		for i, raw := range row {
			v, err := toValue(raw)
			if err != nil {
				return 0, fmt.Errorf("aesql: bulk row %d col %d: %w", r, i, err)
			}
			sv, ok := v.(sqltypes.Value)
			if !ok {
				return 0, fmt.Errorf("aesql: bulk row %d col %d: unexpected %T", r, i, v)
			}
			cells[i] = sv
		}
		conv[r] = cells
	}

	if c.txn != nil {
		n, err := c.txn.Conn().BulkInsert(table, cols, conv)
		if err == nil {
			c.lastWrite = c.txn.LastLSN()
		}
		return int64(n), err
	}
	pc, err := c.pool.Acquire(ctx)
	if err != nil {
		return 0, err
	}
	n, err := pc.Conn().BulkInsert(table, cols, conv)
	if err == nil && !pc.Replica() {
		c.lastWrite = pc.LastLSN()
	}
	pc.Release()
	return int64(n), err
}

package enclave

import (
	"crypto/sha256"
	"strings"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/sqltypes"
)

// ConversionParse is the parse-tree summary of an ALTER TABLE ALTER COLUMN
// statement that SQL Server supplies as proof material (§3.2): the enclave
// cross-checks it against the raw query text and the client-authorized hash
// before exposing its Encrypt function.
type ConversionParse struct {
	Table    string
	Column   string
	ToCEK    string // empty when converting to plaintext (decryption-only)
	ToScheme sqltypes.EncScheme
}

// ConversionProof is what SQL Server presents to unlock a type conversion:
// the raw DDL text (whose SHA-256 the client sealed into the session) plus
// the parse tree the server derived from it.
type ConversionProof struct {
	QueryText string
	Parse     ConversionParse
}

// validate implements the §3.2 check: (1) the SHA-256 of the query text must
// have been explicitly authorized by the client over the secure channel, and
// (2) the parse tree must be consistent with the text — the statement is an
// ALTER TABLE ALTER COLUMN naming exactly the table, column and target key
// of the requested conversion. Without (1) the untrusted server would hold a
// free encryption oracle; without (2) it could reuse an authorized statement
// to authorize a different conversion.
func (s *session) validateConversion(p *ConversionProof) error {
	h := sha256.Sum256([]byte(p.QueryText))
	if !s.authorized[h] {
		return ErrNotAuthorized
	}
	text := strings.ToUpper(p.QueryText)
	if !strings.Contains(text, "ALTER TABLE") || !strings.Contains(text, "ALTER COLUMN") {
		return ErrNotAuthorized
	}
	for _, ident := range []string{p.Parse.Table, p.Parse.Column, p.Parse.ToCEK} {
		if ident == "" {
			continue
		}
		if !containsIdent(text, strings.ToUpper(ident)) {
			return ErrNotAuthorized
		}
	}
	return nil
}

// containsIdent reports whether ident appears in text delimited by
// non-identifier characters, so CEK "K1" does not match "K10".
func containsIdent(text, ident string) bool {
	for i := 0; i+len(ident) <= len(text); i++ {
		j := strings.Index(text[i:], ident)
		if j < 0 {
			return false
		}
		start := i + j
		end := start + len(ident)
		beforeOK := start == 0 || !isIdentChar(text[start-1])
		afterOK := end == len(text) || !isIdentChar(text[end])
		if beforeOK && afterOK {
			return true
		}
		i = start
	}
	return false
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}

// ConvertCells re-encrypts a batch of cells from one encryption type to
// another inside the enclave: the machinery behind enclave-side initial
// encryption and CEK rotation (§2.4.2), which avoids the week-long client
// round trip of AEv1 for terabyte databases. Empty cells (SQL NULL) pass
// through. The conversion requires a valid client authorization proof for
// the session — this is the only path on which the enclave will encrypt.
func (e *Enclave) ConvertCells(sid uint64, proof *ConversionProof, from, to sqltypes.EncType, cells [][]byte) ([][]byte, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	e.mu.RLock()
	s, ok := e.sessions[sid]
	e.mu.RUnlock()
	if !ok {
		return nil, ErrNoSession
	}
	if err := s.validateConversion(proof); err != nil {
		return nil, err
	}
	// The target of the conversion must match what the client authorized.
	if to.IsPlaintext() {
		if proof.Parse.ToCEK != "" {
			return nil, ErrNotAuthorized
		}
	} else if proof.Parse.ToCEK != to.CEKName || proof.Parse.ToScheme != to.Scheme {
		return nil, ErrNotAuthorized
	}

	var fromKey, toKey *aecrypto.CellKey
	var err error
	ring := (*enclaveKeyRing)(e)
	if !from.IsPlaintext() {
		if fromKey, err = ring.CellKey(from.CEKName); err != nil {
			return nil, err
		}
	}
	if !to.IsPlaintext() {
		if toKey, err = ring.CellKey(to.CEKName); err != nil {
			return nil, err
		}
	}
	toType := aecrypto.Randomized
	if to.Scheme == sqltypes.SchemeDeterministic {
		toType = aecrypto.Deterministic
	}

	out := make([][]byte, len(cells))
	convert := func() error {
		for i, cell := range cells {
			if len(cell) == 0 {
				continue // NULLs are stored unencrypted as absent values
			}
			pt := cell
			if fromKey != nil {
				pt, err = fromKey.Decrypt(cell)
				if err != nil {
					return err
				}
			}
			if toKey == nil {
				out[i] = pt
				continue
			}
			ct, err := toKey.Encrypt(pt, toType)
			if err != nil {
				return err
			}
			out[i] = ct
		}
		return nil
	}
	e.enter(func() { err = convert() })
	if err != nil {
		return nil, err
	}
	e.converts.Add(uint64(len(cells)))
	return out, nil
}

// Compare decrypts two ciphertexts under the named CEK and returns their
// three-way plaintext ordering — the primitive routed to the enclave by
// range-index maintenance and lookups (§3.1.2, Figure 4). The comparison
// result returns to the host in the clear; that ordering disclosure is
// exactly the Figure 5 leakage for RND comparisons.
func (e *Enclave) Compare(cekName string, a, b []byte) (int, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	ring := (*enclaveKeyRing)(e)
	key, err := ring.CellKey(cekName)
	if err != nil {
		return 0, err
	}
	var res int
	cmp := func() error {
		pa, err := key.Decrypt(a)
		if err != nil {
			return err
		}
		pb, err := key.Decrypt(b)
		if err != nil {
			return err
		}
		va, err := sqltypes.Decode(pa)
		if err != nil {
			return err
		}
		vb, err := sqltypes.Decode(pb)
		if err != nil {
			return err
		}
		res, err = sqltypes.Compare(va, vb)
		return err
	}
	e.enter(func() { err = cmp() })
	if err != nil {
		return 0, err
	}
	e.evals.Add(1)
	return res, nil
}

package enclave

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alwaysencrypted/internal/obs"
)

// TestWorkQueueCloseRacingSubmit tears the queue down while submitters are
// in flight: every submitted closure must still run exactly once (on a
// worker or inline after close), and nothing may deadlock. Run under -race.
func TestWorkQueueCloseRacingSubmit(t *testing.T) {
	for round := 0; round < 20; round++ {
		reg := obs.New("t")
		q := newWorkQueue(2, 0, 0, reg)
		const submitters = 8
		var ran atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				q.submit(func() { ran.Add(1) })
			}()
		}
		close(start)
		q.close() // races with the submits
		wg.Wait()
		if got := ran.Load(); got != submitters {
			t.Fatalf("round %d: %d of %d submitted closures ran", round, got, submitters)
		}
	}
}

// TestWorkQueueSpinToPark exercises the §4.6 idle transition: a worker that
// finds no work during its spin window must exit the enclave (a park and a
// crossing), then wake and re-enter when work arrives.
func TestWorkQueueSpinToPark(t *testing.T) {
	reg := obs.New("t")
	q := newWorkQueue(1, 100*time.Microsecond, 0, reg)
	defer q.close()

	parks := reg.Counter("enclave.queue.parks")
	crossings := reg.Counter("enclave.crossings")

	// Let the worker spin out and park.
	deadline := time.Now().Add(2 * time.Second)
	for parks.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never parked")
		}
		time.Sleep(time.Millisecond)
	}
	afterPark := crossings.Value()
	if afterPark < 2 {
		t.Fatalf("crossings = %d after park, want >= 2 (enter + exit)", afterPark)
	}

	// Waking a parked worker pays a re-entry crossing and still runs the task.
	done := make(chan struct{})
	q.submit(func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("parked worker never woke for submitted work")
	}
	if crossings.Value() <= afterPark {
		t.Fatalf("wake did not pay a crossing: %d -> %d", afterPark, crossings.Value())
	}
	if reg.Counter("enclave.queue.tasks").Value() != 1 {
		t.Fatalf("tasks = %d, want 1", reg.Counter("enclave.queue.tasks").Value())
	}
}

// TestWorkQueueSpinHit: a busy queue should be drained without parking —
// tasks picked up during the spin window count as spin hits.
func TestWorkQueueSpinHit(t *testing.T) {
	reg := obs.New("t")
	q := newWorkQueue(1, 5*time.Millisecond, 0, reg)
	defer q.close()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.submit(func() { time.Sleep(10 * time.Microsecond) })
		}()
	}
	wg.Wait()
	if hits := reg.Counter("enclave.queue.spin_hits").Value(); hits == 0 {
		t.Fatal("no spin hits on a busy queue")
	}
	if tasks := reg.Counter("enclave.queue.tasks").Value(); tasks != 50 {
		t.Fatalf("tasks = %d, want 50", tasks)
	}
}

// TestWorkQueueConcurrentHistogramNoLoss drives many host goroutines
// through the queue, each task recording into one histogram from whichever
// enclave worker runs it, and asserts no sample is lost. This is the -race
// guarantee the instrumentation layer gives the §4.6 worker pool.
func TestWorkQueueConcurrentHistogramNoLoss(t *testing.T) {
	reg := obs.New("t")
	q := newWorkQueue(4, 20*time.Microsecond, 0, reg)
	defer q.close()
	h := reg.Histogram("test.samples")
	const submitters = 8
	const perSubmitter = 500
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				v := base + int64(j)
				q.submit(func() { h.Observe(v) })
			}
		}(int64(i * perSubmitter))
	}
	wg.Wait()
	if got := h.Count(); got != submitters*perSubmitter {
		t.Fatalf("lost samples: %d of %d recorded", got, submitters*perSubmitter)
	}
	// Queue wait histogram must have seen every task too.
	if waits := reg.Histogram("enclave.queue.wait_ns").Count(); waits != submitters*perSubmitter {
		t.Fatalf("wait histogram saw %d of %d tasks", waits, submitters*perSubmitter)
	}
}

// TestEvalInstrumentation checks the per-call instruments EvalExpression
// maintains: call latency, batch sizes, per-opcode tallies.
func TestEvalInstrumentation(t *testing.T) {
	e := testEnclave(t, Options{Threads: 2})
	_, key, handle := setupExprSession(t, e)
	const calls = 10
	for i := 0; i < calls; i++ {
		if _, err := e.EvalExpression(handle, [][]byte{encInt(t, key, 42), encInt(t, key, 42)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Obs().Snapshot()
	if got := snap.Histograms["enclave.eval.call_ns"].Count; got != calls {
		t.Fatalf("eval.call_ns count = %d, want %d", got, calls)
	}
	if got := snap.Histograms["enclave.eval.batch"].P50; got != 2 {
		t.Fatalf("eval.batch p50 = %d, want 2", got)
	}
	// The equality program contains comparison opcodes; their tally must
	// grow once per evaluation.
	if got := snap.Counters["enclave.ops.comp"]; got != calls {
		t.Fatalf("ops.comp = %d, want %d", got, calls)
	}
	if snap.Counters["enclave.evals"] != calls {
		t.Fatalf("evals = %d, want %d", snap.Counters["enclave.evals"], calls)
	}
}

package enclave

import (
	"crypto/ecdh"
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"alwaysencrypted/internal/aecrypto"
	"alwaysencrypted/internal/attestation"
	"alwaysencrypted/internal/exprsvc"
	"alwaysencrypted/internal/sqltypes"
)

// testEnclave loads an enclave with fast test options, returning the enclave
// and the author key used to sign the image.
func testEnclave(t testing.TB, opts Options) *Enclave {
	t.Helper()
	author, err := aecrypto.GenerateRSAKey()
	if err != nil {
		t.Fatal(err)
	}
	image, err := SignImage(author, []byte("enclave-es-binary"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if opts.SpinDuration == 0 {
		opts.SpinDuration = 5 * time.Microsecond
	}
	if opts.CrossingCost == 0 {
		opts.CrossingCost = 100 * time.Nanosecond
	}
	e, err := Load(image, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// clientSession performs the client half of session setup and CEK install,
// returning the session id, shared secret and a nonce counter.
type clientSession struct {
	sid     uint64
	secret  [32]byte
	counter uint64
}

func newClientSession(t testing.TB, e *Enclave) *clientSession {
	t.Helper()
	dh, err := attestation.NewClientDH()
	if err != nil {
		t.Fatal(err)
	}
	sid, report, _, err := e.NewSession(dh.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Derive the same secret the enclave holds, as the verified client would.
	peer, err := ecdh.P256().NewPublicKey(report.EnclaveDHPub)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := dh.ECDH(peer)
	if err != nil {
		t.Fatal(err)
	}
	return &clientSession{sid: sid, secret: attestation.DeriveSecret(shared)}
}

func (c *clientSession) nextNonce() uint64 {
	c.counter++
	return c.counter
}

func (c *clientSession) installCEK(t testing.TB, e *Enclave, name string, root []byte) {
	t.Helper()
	n := c.nextNonce()
	sealed, err := SealForSession(c.secret, n, "cek:"+name, root)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InstallCEK(c.sid, name, n, sealed); err != nil {
		t.Fatal(err)
	}
}

func (c *clientSession) authorize(t testing.TB, e *Enclave, queryText string) {
	t.Helper()
	h := sha256.Sum256([]byte(queryText))
	n := c.nextNonce()
	sealed, err := SealForSession(c.secret, n, "authorize-ddl", h[:])
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AuthorizeStatement(c.sid, n, sealed); err != nil {
		t.Fatal(err)
	}
}

func TestImageVerify(t *testing.T) {
	author, _ := aecrypto.GenerateRSAKey()
	img, err := SignImage(author, []byte("bin"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Verify(); err != nil {
		t.Fatal(err)
	}
	img.Version = 2 // tamper
	if err := img.Verify(); !errors.Is(err, ErrBadImage) {
		t.Fatalf("tampered image: %v", err)
	}
	img.Version = 1
	img.Binary = []byte("evil")
	if err := img.Verify(); !errors.Is(err, ErrBadImage) {
		t.Fatalf("tampered binary: %v", err)
	}
}

func TestLoadRejectsBadImage(t *testing.T) {
	author, _ := aecrypto.GenerateRSAKey()
	img, _ := SignImage(author, []byte("bin"), 1)
	img.Binary = []byte("evil")
	if _, err := Load(img, 1, Options{}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionAndCEKInstall(t *testing.T) {
	e := testEnclave(t, Options{Threads: 2})
	cs := newClientSession(t, e)
	root, _ := aecrypto.GenerateKey()
	cs.installCEK(t, e, "MyCEK", root)
	if !e.HasCEK("MyCEK") {
		t.Fatal("CEK not installed")
	}
	if e.HasCEK("Other") {
		t.Fatal("phantom CEK")
	}
}

// TestReplayRejected: the strong adversary replays the TDS stream carrying a
// sealed CEK; the nonce check must reject the second delivery (§4.2).
func TestReplayRejected(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	cs := newClientSession(t, e)
	root, _ := aecrypto.GenerateKey()
	n := cs.nextNonce()
	sealed, err := SealForSession(cs.secret, n, "cek:K", root)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InstallCEK(cs.sid, "K", n, sealed); err != nil {
		t.Fatal(err)
	}
	if err := e.InstallCEK(cs.sid, "K", n, sealed); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("replay: err = %v", err)
	}
}

// TestOutOfOrderNoncesAccepted: multi-threaded drivers deliver nonces out of
// order; the range tracker must accept any fresh nonce (this is the case the
// O(1) strawman gets wrong).
func TestOutOfOrderNoncesAccepted(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	cs := newClientSession(t, e)
	root, _ := aecrypto.GenerateKey()
	for _, n := range []uint64{5, 3, 4, 1, 2, 10, 7} {
		sealed, err := SealForSession(cs.secret, n, "cek:K", root)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.InstallCEK(cs.sid, "K", n, sealed); err != nil {
			t.Fatalf("nonce %d rejected: %v", n, err)
		}
	}
}

// TestTamperedEnvelopeRejected: flipping sealed bytes or lying about the
// label must fail GCM authentication.
func TestTamperedEnvelopeRejected(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	cs := newClientSession(t, e)
	root, _ := aecrypto.GenerateKey()
	n := cs.nextNonce()
	sealed, _ := SealForSession(cs.secret, n, "cek:K", root)
	tampered := append([]byte{}, sealed...)
	tampered[0] ^= 1
	if err := e.InstallCEK(cs.sid, "K", n, tampered); !errors.Is(err, ErrSealOpenFailed) {
		t.Fatalf("err = %v", err)
	}
	// Correct bytes but renamed key (AAD mismatch): also rejected.
	n2 := cs.nextNonce()
	sealed2, _ := SealForSession(cs.secret, n2, "cek:K", root)
	if err := e.InstallCEK(cs.sid, "EvilName", n2, sealed2); !errors.Is(err, ErrSealOpenFailed) {
		t.Fatalf("relabel: err = %v", err)
	}
}

func TestUnknownSessionRejected(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	if err := e.InstallCEK(999, "K", 1, []byte("x")); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
}

// encInfo helper for expression tests.
func rndInfo(cek string) exprsvc.EncInfo {
	return exprsvc.EncInfo{Kind: sqltypes.KindInt, Enc: sqltypes.EncType{
		Scheme: sqltypes.SchemeRandomized, CEKName: cek, EnclaveEnabled: true}}
}

func setupExprSession(t testing.TB, e *Enclave) (*clientSession, *aecrypto.CellKey, uint64) {
	t.Helper()
	cs := newClientSession(t, e)
	root, _ := aecrypto.GenerateKey()
	cs.installCEK(t, e, "K", root)
	key := aecrypto.MustCellKey(root)

	info := rndInfo("K")
	expr := exprsvc.Cmp{Op: exprsvc.CmpEQ,
		L: exprsvc.SlotRef{Slot: 0, Info: info},
		R: exprsvc.SlotRef{Slot: 1, Info: info}}
	prog, err := exprsvc.Compile("eq", expr, []exprsvc.EncInfo{info, info})
	if err != nil {
		t.Fatal(err)
	}
	handle, err := e.RegisterExpression(prog.Subs[0])
	if err != nil {
		t.Fatal(err)
	}
	return cs, key, handle
}

func encInt(t testing.TB, key *aecrypto.CellKey, v int64) []byte {
	t.Helper()
	ct, err := key.Encrypt(sqltypes.Int(v).Encode(), aecrypto.Randomized)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// TestRegisterAndEval: end-to-end expression evaluation through the queue.
func TestRegisterAndEval(t *testing.T) {
	for _, sync := range []bool{false, true} {
		e := testEnclave(t, Options{Threads: 2, Synchronous: sync})
		_, key, handle := setupExprSession(t, e)
		outs, err := e.EvalExpression(handle, [][]byte{encInt(t, key, 42), encInt(t, key, 42)})
		if err != nil {
			t.Fatal(err)
		}
		v, err := sqltypes.Decode(outs[0])
		if err != nil || !v.Bool_ {
			t.Fatalf("sync=%v: 42=42 gave %v err %v", sync, v, err)
		}
		outs, err = e.EvalExpression(handle, [][]byte{encInt(t, key, 42), encInt(t, key, 7)})
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := sqltypes.Decode(outs[0]); v.Bool_ {
			t.Fatalf("sync=%v: 42=7 evaluated true", sync)
		}
		e.Close()
	}
}

func TestEvalUnknownHandle(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	if _, err := e.EvalExpression(12345, nil); !errors.Is(err, ErrNoHandle) {
		t.Fatalf("err = %v", err)
	}
}

func TestEvalWithoutKeyFails(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	info := rndInfo("NotInstalled")
	expr := exprsvc.Cmp{Op: exprsvc.CmpEQ,
		L: exprsvc.SlotRef{Slot: 0, Info: info},
		R: exprsvc.SlotRef{Slot: 1, Info: info}}
	prog, _ := exprsvc.Compile("eq", expr, []exprsvc.EncInfo{info, info})
	handle, err := e.RegisterExpression(prog.Subs[0])
	if err != nil {
		t.Fatal(err)
	}
	junkKey := aecrypto.MustCellKey(make([]byte, 32))
	ct, _ := junkKey.Encrypt(sqltypes.Int(1).Encode(), aecrypto.Randomized)
	if _, err := e.EvalExpression(handle, [][]byte{ct, ct}); !errors.Is(err, ErrKeyNotInEnclave) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterRejectsGarbage(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	if _, err := e.RegisterExpression([]byte("not a program")); err == nil {
		t.Fatal("garbage program registered")
	}
}

// TestEnclaveCompare: the range-index primitive (Figure 4).
func TestEnclaveCompare(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	cs := newClientSession(t, e)
	root, _ := aecrypto.GenerateKey()
	cs.installCEK(t, e, "K", root)
	key := aecrypto.MustCellKey(root)
	a := encInt(t, key, 6)
	b := encInt(t, key, 8)
	if c, err := e.Compare("K", a, b); err != nil || c != -1 {
		t.Fatalf("6 vs 8: c=%d err=%v", c, err)
	}
	if c, err := e.Compare("K", b, a); err != nil || c != 1 {
		t.Fatalf("8 vs 6: c=%d err=%v", c, err)
	}
	if c, err := e.Compare("K", a, a); err != nil || c != 0 {
		t.Fatalf("6 vs 6: c=%d err=%v", c, err)
	}
	if _, err := e.Compare("Missing", a, b); !errors.Is(err, ErrKeyNotInEnclave) {
		t.Fatalf("missing key: %v", err)
	}
}

// TestConversionAuthorization: initial encryption works only with a valid
// client-authorized proof; the server cannot invent or repurpose one (§3.2).
func TestConversionAuthorization(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	cs := newClientSession(t, e)
	root, _ := aecrypto.GenerateKey()
	cs.installCEK(t, e, "CEK1", root)
	key := aecrypto.MustCellKey(root)

	ddl := "ALTER TABLE Customer ALTER COLUMN ssn VARCHAR ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, ENCRYPTION_TYPE = Randomized)"
	cs.authorize(t, e, ddl)
	proof := &ConversionProof{QueryText: ddl, Parse: ConversionParse{
		Table: "Customer", Column: "ssn", ToCEK: "CEK1", ToScheme: sqltypes.SchemeRandomized}}
	to := sqltypes.EncType{Scheme: sqltypes.SchemeRandomized, CEKName: "CEK1", EnclaveEnabled: true}

	cells := [][]byte{sqltypes.Str("123-45-6789").Encode(), nil, sqltypes.Str("987-65-4321").Encode()}
	out, err := e.ConvertCells(cs.sid, proof, sqltypes.PlaintextType, to, cells)
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != nil {
		t.Fatal("NULL cell was encrypted")
	}
	pt, err := key.Decrypt(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sqltypes.Decode(pt); v.S != "123-45-6789" {
		t.Fatalf("roundtrip: %v", v)
	}

	// Unauthorized text: rejected.
	badProof := &ConversionProof{QueryText: "ALTER TABLE Customer ALTER COLUMN other ...", Parse: proof.Parse}
	if _, err := e.ConvertCells(cs.sid, badProof, sqltypes.PlaintextType, to, cells); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("unauthorized text: %v", err)
	}
	// Authorized text but mismatched parse tree (server lies about target).
	lying := &ConversionProof{QueryText: ddl, Parse: ConversionParse{
		Table: "Customer", Column: "ssn", ToCEK: "EvilCEK", ToScheme: sqltypes.SchemeRandomized}}
	toEvil := to
	toEvil.CEKName = "EvilCEK"
	if _, err := e.ConvertCells(cs.sid, lying, sqltypes.PlaintextType, toEvil, cells); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("lying parse: %v", err)
	}
	// Authorized statement replayed for a different target type: rejected.
	detTo := sqltypes.EncType{Scheme: sqltypes.SchemeDeterministic, CEKName: "CEK1"}
	if _, err := e.ConvertCells(cs.sid, proof, sqltypes.PlaintextType, detTo, cells); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("scheme mismatch: %v", err)
	}
}

// TestKeyRotationThroughEnclave: CEK rotation re-encrypts ciphertext from
// the old key to the new key without plaintext leaving the enclave.
func TestKeyRotationThroughEnclave(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	cs := newClientSession(t, e)
	oldRoot, _ := aecrypto.GenerateKey()
	newRoot, _ := aecrypto.GenerateKey()
	cs.installCEK(t, e, "OldK", oldRoot)
	cs.installCEK(t, e, "NewK", newRoot)
	oldKey := aecrypto.MustCellKey(oldRoot)
	newKey := aecrypto.MustCellKey(newRoot)

	ddl := "ALTER TABLE T ALTER COLUMN c INT ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = NewK, ENCRYPTION_TYPE = Randomized)"
	cs.authorize(t, e, ddl)
	proof := &ConversionProof{QueryText: ddl, Parse: ConversionParse{
		Table: "T", Column: "c", ToCEK: "NewK", ToScheme: sqltypes.SchemeRandomized}}

	from := sqltypes.EncType{Scheme: sqltypes.SchemeRandomized, CEKName: "OldK", EnclaveEnabled: true}
	to := sqltypes.EncType{Scheme: sqltypes.SchemeRandomized, CEKName: "NewK", EnclaveEnabled: true}
	ct, _ := oldKey.Encrypt(sqltypes.Int(99).Encode(), aecrypto.Randomized)
	out, err := e.ConvertCells(cs.sid, proof, from, to, [][]byte{ct})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := newKey.Decrypt(out[0])
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sqltypes.Decode(pt); v.I != 99 {
		t.Fatalf("rotated value: %v", v)
	}
	if _, err := oldKey.Decrypt(out[0]); err == nil {
		t.Fatal("rotated ciphertext still opens under old key")
	}
}

// TestDumpExposesNoSecrets: the crash-dump view contains only counters —
// enclave memory is stripped (§3.3).
func TestDumpExposesNoSecrets(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	cs := newClientSession(t, e)
	root, _ := aecrypto.GenerateKey()
	cs.installCEK(t, e, "K", root)
	dump := e.Dump()
	if dump.Sessions != 1 || dump.InstalledCEKs != 1 {
		t.Fatalf("dump counters wrong: %+v", dump)
	}
	// The Stats type is pure counters by construction; this test pins that:
	// adding a field carrying key material would be caught in review here.
}

// TestFaultIsolation: a malicious serialized program that drives the stack
// machine into a panic yields the coarse ErrFault, not a crash and not
// internal detail.
func TestFaultIsolation(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	// A program whose code references out-of-range sub-program state:
	// GetData on slot 5 of a 1-input program errors cleanly; craft instead a
	// nil-deref via a LIKE on non-strings after a forged EncInfo —
	// ultimately any panic path must surface as ErrFault. We simulate a
	// fault by registering a program with a huge negative arg.
	p := &exprsvc.Program{
		Name:    "fault",
		Inputs:  []exprsvc.EncInfo{exprsvc.Plain(sqltypes.KindInt)},
		Outputs: []exprsvc.EncInfo{exprsvc.Plain(sqltypes.KindBool)},
		Code:    []exprsvc.Instr{{Op: exprsvc.OpGetData, Arg: -1}},
	}
	h, err := e.RegisterExpression(p.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.EvalExpression(h, [][]byte{nil})
	if err == nil {
		t.Fatal("expected error")
	}
	// Either a clean stack error or the coarse fault — never a panic.
	if e.Dump().Sessions != 0 {
		t.Fatal("unexpected sessions")
	}
}

func TestCloseRejectsFurtherCalls(t *testing.T) {
	e := testEnclave(t, Options{Threads: 1})
	e.Close()
	if _, err := e.EvalExpression(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := e.InstallCEK(1, "K", 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	e.Close() // idempotent
}

// TestQueueStats: queued mode reports task counts and worker sleeps.
func TestQueueStats(t *testing.T) {
	e := testEnclave(t, Options{Threads: 2, SpinDuration: time.Microsecond})
	_, key, handle := setupExprSession(t, e)
	for i := 0; i < 20; i++ {
		if _, err := e.EvalExpression(handle, [][]byte{encInt(t, key, 1), encInt(t, key, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Dump()
	if st.QueueTasks < 20 {
		t.Fatalf("queue tasks = %d", st.QueueTasks)
	}
	if st.Evaluations < 20 {
		t.Fatalf("evaluations = %d", st.Evaluations)
	}
}

func BenchmarkEnclaveCallQueued(b *testing.B) {
	e := testEnclave(b, Options{Threads: 4, SpinDuration: 20 * time.Microsecond, CrossingCost: time.Microsecond})
	_, key, handle := setupExprSession(b, e)
	in := [][]byte{encInt(b, key, 42), encInt(b, key, 42)}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.EvalExpression(handle, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEnclaveCallSync(b *testing.B) {
	e := testEnclave(b, Options{Synchronous: true, CrossingCost: time.Microsecond})
	_, key, handle := setupExprSession(b, e)
	in := [][]byte{encInt(b, key, 42), encInt(b, key, 42)}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.EvalExpression(handle, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
